// Ablation A5 — depend(interopobj:) streams (paper §3.5, Figure 5):
// independent kernel chains dispatched synchronously vs into one
// stream vs across four interop streams. The modeled device timeline
// shows the overlap asynchronous dispatch buys.
#include <cstdio>
#include <vector>

#include "core/ompx.h"
#include "fig8_common.h"

namespace {

constexpr int kChains = 4;
constexpr int kKernelsPerChain = 8;
constexpr unsigned kTeams = 64;
constexpr unsigned kThreads = 256;

ompx::LaunchSpec kernel_spec(simt::Device& dev, const char* name) {
  ompx::LaunchSpec spec;
  spec.num_teams = {kTeams};
  spec.thread_limit = {kThreads};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = name;
  spec.cost.global_bytes_per_thread = 512;
  spec.device = &dev;
  return spec;
}

/// Each chain repeatedly doubles its own slice (serial within a chain,
/// independent across chains).
void chain_step(std::vector<double>& data, int chain) {
  const std::size_t per = data.size() / kChains;
  double* p = data.data() + chain * per;
  const std::int64_t n = static_cast<std::int64_t>(per);
  auto& t = simt::this_thread();
  const std::int64_t total =
      static_cast<std::int64_t>(t.grid_dim.count() * t.block_dim.count());
  for (std::int64_t i = ompx::global_thread_id(); i < n; i += total)
    p[i] *= 1.0000001;
}

double run_synchronous(simt::Device& dev, std::vector<double>& data) {
  // Synchronous target regions: each launch completes before the next,
  // so the device timeline is the serial sum of kernel times.
  dev.clear_launch_log();
  for (int k = 0; k < kKernelsPerChain; ++k)
    for (int chain = 0; chain < kChains; ++chain) {
      auto spec = kernel_spec(dev, "sync_chain");
      std::vector<double>* d = &data;
      ompx::launch(spec, [d, chain] { chain_step(*d, chain); });
    }
  return dev.modeled_kernel_ms_total();
}

double run_streams(simt::Device& dev, std::vector<double>& data) {
  const double t0 = dev.modeled_now_ms();
  std::vector<omp::Interop> objs;
  for (int i = 0; i < kChains; ++i)
    objs.push_back(omp::interop_init_targetsync(dev));
  for (int k = 0; k < kKernelsPerChain; ++k)
    for (int chain = 0; chain < kChains; ++chain) {
      auto spec = kernel_spec(dev, "interop_chain");
      spec.nowait = true;
      spec.depend_interop = &objs[chain];  // depend(interopobj: obj)
      std::vector<double>* d = &data;
      ompx::launch(spec, [d, chain] { chain_step(*d, chain); });
    }
  for (auto& obj : objs) ompx::taskwait(obj);  // taskwait depend(interopobj:)
  const double elapsed = dev.modeled_now_ms() - t0;
  for (auto& obj : objs) omp::interop_destroy(obj);
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace renders the 4-chain overlap as one Chrome-trace track per
  // interop stream — the timeline this ablation is about.
  bench::TraceGuard trace(argc, argv, "abl_interop_streams_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  std::printf("=== Ablation A5 — depend(interopobj:) streams vs synchronous "
              "launches ===\n(%d independent chains x %d kernels)\n\n",
              kChains, kKernelsPerChain);
  simt::Device& dev = simt::sim_a100();
  std::vector<double> a(1 << 16, 1.0), b(1 << 16, 1.0);
  const double sync_ms = run_synchronous(dev, a);
  const double stream_ms = run_streams(dev, b);
  std::printf("%-36s %10.3f ms\n", "synchronous target regions", sync_ms);
  std::printf("%-36s %10.3f ms\n", "4 interop streams (Fig. 5 pattern)",
              stream_ms);
  std::printf("overlap speedup: %.2fx (ideal: %dx for %d independent "
              "chains)\n\n",
              sync_ms / stream_ms, kChains, kChains);
  if (a != b) {
    std::printf("ERROR: results differ\n");
    return 1;
  }
  std::printf("Results identical; the extended depend clause turns stream-"
              "style CUDA code\ninto OpenMP without restructuring (§3.5).\n");
  return 0;
}
