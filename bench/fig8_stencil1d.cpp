// Regenerates Figure 8f (NVIDIA) and 8l (AMD): Stencil 1D.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/stencil1d/stencil1d.h"
#include "fig8_common.h"

namespace {

// --graph: the stencil's repetition loop re-issued as graph replays.
// Every iteration applies the same tiled kernel to the same input, so
// one captured iteration (recorded, not executed) replayed
// `iterations` times is the whole benchmark; the checksum must match
// the host reference.
void graph_demo(simt::Device& dev) {
  using namespace apps::stencil1d;
  const Options o;
  const SimulationData d = make_data(o);
  const std::uint64_t ref = reference_checksum(d);
  ompx::set_default_device(dev);
  const ompx::LaunchMode saved = ompx::launch_mode();
  ompx::set_launch_mode(ompx::LaunchMode::kAsync);

  const std::int64_t n = o.n;
  auto* din = ompx::malloc_n<int>(d.input.size());
  auto* dout = ompx::malloc_n<int>(n);
  OMPX_REQUIRE(ompx_memcpy(din, d.input.data(), d.input.size() * sizeof(int)));

  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(simt::ceil_div(n, kBlock))};
  spec.thread_limit = {kBlock};
  spec.name = "stencil1d_graph";
  spec.device = &dev;

  simt::Stream& s = dev.default_stream();
  ompx::stream_begin_capture(s);
  ompx::launch(spec, [=] {
    int* tile = ompx::groupprivate<int>(kBlock + 2 * kRadius);
    const std::int64_t g = ompx::global_thread_id();
    const int l = ompx_thread_id_x() + kRadius;
    const std::int64_t src = std::min(g, n - 1) + kRadius;
    tile[l] = din[src];
    if (ompx_thread_id_x() < kRadius) {
      tile[l - kRadius] = din[src - kRadius];
      tile[l + kBlock] =
          din[std::min<std::int64_t>(src + kBlock, n + 2 * kRadius - 1)];
    }
    ompx_sync_thread_block();
    if (g < n) {
      int acc = 0;
      for (int off = -kRadius; off <= kRadius; ++off) acc += tile[l + off];
      dout[g] = acc;
    }
  });
  {
    ompx::Graph graph = ompx::end_capture(s);
    graph.instantiate();
    for (int it = 0; it < o.iterations; ++it) graph.launch(s);
    std::vector<int> out(n);
    OMPX_REQUIRE(ompx_memcpy(out.data(), dout, n * sizeof(int)));  // syncs first
    bench::print_graph_row(dev, graph.node_count(), graph.replay_count(),
                           checksum_of(out), ref);
  }
  ompx::free_on(dev, din);
  ompx::free_on(dev, dout);
  ompx::set_launch_mode(saved);
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_stencil1d_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  bench::run_fig8({
      "Stencil 1D", "8f", "8l",
      "ompx outperforms the native versions on both systems; omp is two "
      "orders of magnitude slower (145.6ms vs ~1.4ms on A100, 60.87ms vs "
      "~1.2ms on MI250) because the generic state machine cannot be "
      "rewritten and the tile is globalized (§4.2.6)"});
  if (bench::graph_flag(argc, argv)) {
    std::printf("-- graph capture/replay (one captured iteration, "
                "replayed %d times) --\n", apps::stencil1d::Options{}.iterations);
    for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()})
      graph_demo(*dev);
  }
  return 0;
}
