// Regenerates Figure 8f (NVIDIA) and 8l (AMD): Stencil 1D.
#include "fig8_common.h"

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_stencil1d_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::run_fig8({
      "Stencil 1D", "8f", "8l",
      "ompx outperforms the native versions on both systems; omp is two "
      "orders of magnitude slower (145.6ms vs ~1.4ms on A100, 60.87ms vs "
      "~1.2ms on MI250) because the generic state machine cannot be "
      "rewritten and the tile is globalized (§4.2.6)"});
  return 0;
}
