// Regenerates Figure 8e (NVIDIA) and 8k (AMD): Adam.
#include "fig8_common.h"

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_adam_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::run_fig8({
      "Adam", "8e", "8k",
      "ompx matches cuda on the A100 and is ~16.6% faster than hip on the "
      "MI250; omp is ~8x slower due to the LLVM issue launching only 32 "
      "threads per thread block (§4.2.5)"});
  return 0;
}
