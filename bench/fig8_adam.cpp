// Regenerates Figure 8e (NVIDIA) and 8k (AMD): Adam.
#include <cstdio>
#include <vector>

#include "apps/adam/adam.h"
#include "fig8_common.h"

namespace {

// --graph: the Adam loop as a captured graph. The per-step timestep
// moves to device memory so one captured iteration serves every step:
// a single-thread "tick" kernel advances it, the update kernel reads
// it. Capture records without executing, so `steps` replays perform
// the whole optimization; the checksum must still match the host
// reference bit-for-bit.
void graph_demo(simt::Device& dev) {
  using namespace apps::adam;
  const Options o;
  const SimulationData d = make_data(o);
  const std::uint64_t ref = reference_checksum(d);
  ompx::set_default_device(dev);
  // Capture needs stream-ordered submission; pin async in case the
  // environment selected OMPX_LAUNCH=sync (whose eager synchronize is
  // an error inside a capture region, as in CUDA).
  const ompx::LaunchMode saved = ompx::launch_mode();
  ompx::set_launch_mode(ompx::LaunchMode::kAsync);

  auto* p = ompx::malloc_n<float>(o.n);
  auto* m = ompx::malloc_n<float>(o.n);
  auto* vv = ompx::malloc_n<float>(o.n);
  auto* g = ompx::malloc_n<float>(o.n);
  auto* tdev = ompx::malloc_n<int>(1);
  OMPX_REQUIRE(ompx_memcpy(p, d.params0.data(), o.n * sizeof(float)));
  OMPX_REQUIRE(ompx_memcpy(g, d.grads.data(), o.n * sizeof(float)));
  OMPX_REQUIRE(ompx_memset(m, 0, o.n * sizeof(float)));
  OMPX_REQUIRE(ompx_memset(vv, 0, o.n * sizeof(float)));
  OMPX_REQUIRE(ompx_memset(tdev, 0, sizeof(int)));

  ompx::LaunchSpec tick;
  tick.num_teams = {1};
  tick.thread_limit = {1};
  tick.mode = simt::ExecMode::kDirect;
  tick.name = "adam_tick";
  tick.device = &dev;

  constexpr int kBlock = 256;
  ompx::LaunchSpec step;
  step.num_teams = {static_cast<unsigned>(simt::ceil_div(o.n, kBlock))};
  step.thread_limit = {kBlock};
  step.mode = simt::ExecMode::kDirect;
  step.name = "adam_step_graph";
  step.device = &dev;

  const int n = o.n;
  simt::Stream& s = dev.default_stream();
  ompx::stream_begin_capture(s);
  ompx::launch(tick, [=] { (*tdev)++; });
  ompx::launch(step, [=] {
    const int i = static_cast<int>(ompx::global_thread_id());
    const int t = *tdev;
    if (i < n) adam_update(i, t, o, g, p, m, vv);
  });
  {
    ompx::Graph graph = ompx::end_capture(s);
    graph.instantiate();
    for (int t = 0; t < o.steps; ++t) graph.launch(s);
    std::vector<float> result(o.n);
    OMPX_REQUIRE(ompx_memcpy(result.data(), p, o.n * sizeof(float)));  // syncs first
    bench::print_graph_row(dev, graph.node_count(), graph.replay_count(),
                           checksum_of(result), ref);
  }
  for (void* q : {static_cast<void*>(p), static_cast<void*>(m),
                  static_cast<void*>(vv), static_cast<void*>(g),
                  static_cast<void*>(tdev)})
    ompx::free_on(dev, q);
  ompx::set_launch_mode(saved);
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_adam_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  bench::run_fig8({
      "Adam", "8e", "8k",
      "ompx matches cuda on the A100 and is ~16.6% faster than hip on the "
      "MI250; omp is ~8x slower due to the LLVM issue launching only 32 "
      "threads per thread block (§4.2.5)"});
  if (bench::graph_flag(argc, argv)) {
    std::printf("-- graph capture/replay (one captured step, %s) --\n",
                "replayed per timestep");
    for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()})
      graph_demo(*dev);
  }
  return 0;
}
