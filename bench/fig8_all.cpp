// Regenerates the complete Figure 8 grid in one run — all six
// benchmarks, both systems, four bars — and derives the paper's
// headline: a performance-portability summary (geometric mean of
// ompx-vs-native ratios per system).
#include <cmath>
#include <cstdio>
#include <vector>

#include "fig8_common.h"

namespace {

struct Cell {
  std::string app;
  double ompx = 0, omp = 0, native = 0, vendor = 0;
  bool omp_valid = true;
};

Cell run_app(const apps::AppDesc& app, simt::Device& dev) {
  Cell c;
  c.app = app.name;
  for (apps::Version v :
       {apps::Version::kOmpx, apps::Version::kOmp, apps::Version::kNative,
        apps::Version::kNativeVendor}) {
    const auto r = apps::run_cell(app, v, dev);
    switch (v) {
      case apps::Version::kOmpx: c.ompx = r.kernel_ms; break;
      case apps::Version::kOmp:
        c.omp = r.kernel_ms;
        c.omp_valid = r.valid;
        break;
      case apps::Version::kNative: c.native = r.kernel_ms; break;
      case apps::Version::kNativeVendor: c.vendor = r.kernel_ms; break;
    }
  }
  return c;
}

void print_system(simt::Device& dev) {
  const bool nv = dev.config().vendor == simt::Vendor::kNvidia;
  std::printf("== %s (%s bars: %s / omp / %s / %s) ==\n",
              dev.config().name.c_str(), nv ? "Fig. 8a-f" : "Fig. 8g-l",
              "ompx", nv ? "cuda" : "hip", nv ? "cuda-nvcc" : "hip-hipcc");
  std::printf("%-12s %10s %10s %10s %10s %12s\n", "benchmark", "ompx",
              "omp", nv ? "cuda" : "hip", nv ? "nvcc" : "hipcc",
              "ompx/native");
  double log_sum = 0.0;
  int count = 0;
  for (const auto& app : apps::registry()) {
    const Cell c = run_app(app, dev);
    char omp_buf[32];
    if (c.omp_valid)
      std::snprintf(omp_buf, sizeof omp_buf, "%10.4f", c.omp);
    else
      std::snprintf(omp_buf, sizeof omp_buf, "%10s", "invalid");
    std::printf("%-12s %10.4f %s %10.4f %10.4f %11.2fx\n", c.app.c_str(),
                c.ompx, omp_buf, c.native, c.vendor, c.ompx / c.native);
    log_sum += std::log(c.ompx / c.native);
    count++;
  }
  std::printf("geomean ompx/native: %.3fx  (< 1 means the OpenMP kernel "
              "language wins overall)\n\n",
              std::exp(log_sum / count));
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_all_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  std::printf("=== Figure 8 (complete grid) — execution time, modeled ms ===\n");
  std::printf("paper headline: \"OpenMP, augmented with our extensions, can "
              "not only match but\nalso in some cases exceed the performance "
              "of kernel languages\"\n\n");
  print_system(simt::sim_a100());
  print_system(simt::sim_mi250());
  return 0;
}
