// Regenerates Figure 6: the benchmark table (name, description, paper
// command line), extended with the scaled parameters this reproduction
// runs.
#include <cstdio>

#include "apps/harness.h"

int main() {
  std::printf("=== Figure 6 — Benchmarks, summaries, and command lines ===\n\n");
  std::printf("%-12s %-45s %-28s %s\n", "Name", "Description",
              "Paper command line", "This reproduction");
  std::printf("%-12s %-45s %-28s %s\n", "----", "-----------",
              "------------------", "-----------------");
  for (const auto& app : apps::registry()) {
    std::printf("%-12s %-45s %-28s %s\n", app.name.c_str(),
                app.description.c_str(), app.paper_cli.c_str(),
                app.scaled_params.c_str());
  }
  std::printf("\nAll six are HeCBench applications, ported from their CUDA "
              "versions to the\nOpenMP kernel language (ompx) as in the "
              "paper; each also ships omp and\nnative (kl) versions.\n");
  return 0;
}
