// Shared printer for the Figure 8 sub-plots: one benchmark, two
// systems, four bars, paper-style.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "apps/harness.h"
#include "core/ompx.h"

namespace bench {

/// `--trace[=path]` support for the bench CLIs: if the flag is present,
/// capture launch telemetry for the guard's lifetime and dump the
/// Chrome trace-event JSON (chrome://tracing / Perfetto) on exit.
class TraceGuard {
 public:
  TraceGuard(int argc, char** argv, const char* default_path = "trace.json") {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace")
        path_ = default_path;
      else if (arg.rfind("--trace=", 0) == 0)
        path_ = arg.substr(8);
    }
    if (!path_.empty()) ompx::Profiler::start();
  }
  ~TraceGuard() {
    if (path_.empty()) return;
    ompx::Profiler::stop();
    if (ompx::Profiler::dump(path_))
      std::fprintf(stderr, "trace written to %s\n", path_.c_str());
    else
      std::fprintf(stderr, "ERROR: cannot write trace to %s\n", path_.c_str());
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
};

/// `--san[=checks]` support for the bench CLIs: if the flag is present,
/// the sanitizer runs for the guard's lifetime (default: all checks;
/// `--san=race,mem` selects) and the destructor prints the
/// "ompxsan: N error(s)" report to stderr — what the CI smoke greps.
class SanGuard {
 public:
  SanGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--san")
        checks_ = simt::kSanAll;
      else if (arg.rfind("--san=", 0) == 0)
        checks_ = simt::San::parse_checks(arg.substr(6).c_str());
    }
    if (checks_ != 0) ompx::San::enable(checks_);
  }
  ~SanGuard() {
    if (checks_ == 0) return;
    simt::San::instance().print_report();
    ompx::San::disable();
  }
  SanGuard(const SanGuard&) = delete;
  SanGuard& operator=(const SanGuard&) = delete;

 private:
  std::uint32_t checks_ = 0;
};

/// `--devices=N` support for the bench CLIs: shard every plain
/// synchronous ompx::launch across the first N registry devices
/// (ompx::set_shard_devices) for the guard's lifetime. N is clamped
/// to [1, device count]; results are bit-identical to a single-device
/// run and the combined LaunchRecord lands on the primary device.
class ShardGuard {
 public:
  ShardGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--devices=", 0) == 0) devices_ = std::atoi(arg.c_str() + 10);
    }
    if (devices_ > 1) {
      ompx::set_shard_devices(devices_);
      std::fprintf(stderr, "sharding launches across %d device(s)\n",
                   ompx::shard_devices());
    }
  }
  ~ShardGuard() {
    if (devices_ > 1) ompx::set_shard_devices(1);
  }
  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  int devices_ = 1;
};

/// `--fault=<spec>` support for the bench CLIs: arm the deterministic
/// fault injector (OMPX_FAULT grammar, see README "Robustness & fault
/// injection") for the guard's lifetime. The destructor reports how
/// many faults actually fired and disarms, so one driver run cannot
/// leak an armed injector into the next. A bad spec is a usage error:
/// print the parse failure and exit 2.
class FaultGuard {
 public:
  FaultGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--fault=", 0) == 0) spec_ = arg.substr(8);
    }
    if (spec_.empty()) return;
    if (ompx_fault_enable(spec_.c_str()) != OMPX_SUCCESS) {
      std::fprintf(stderr, "ERROR: bad --fault spec '%s': %s\n", spec_.c_str(),
                   ompx_last_result_detail());
      std::exit(2);
    }
    std::fprintf(stderr, "fault injection armed: %s\n", spec_.c_str());
  }
  ~FaultGuard() {
    if (spec_.empty()) return;
    std::fprintf(stderr, "fault injection: %llu fault(s) injected\n",
                 ompx_fault_injected_count());
    ompx_fault_disable();
  }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;

 private:
  std::string spec_;
};

/// `--graph` support for the bench CLIs: the iterative benchmarks
/// (Adam, Stencil-1D) re-run their ompx version as a captured graph —
/// one iteration recorded between stream_begin_capture/end_capture,
/// instantiated once, then replayed for the remaining iterations — and
/// verify the checksum against the host reference. Single-launch
/// benchmarks accept the flag but have nothing to capture; their
/// drivers print a pointer to the iterative demos instead. Runs under
/// TraceGuard, so `--graph --trace` shows the replay spans and the
/// fence arrows chaining them.
inline bool graph_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--graph") return true;
  return false;
}

/// Printer for one device's graph-demo row.
inline void print_graph_row(const simt::Device& dev, std::size_t nodes,
                            std::uint64_t replays, std::uint64_t sum,
                            std::uint64_t ref) {
  std::printf("  %-24s nodes=%zu replays=%llu checksum %016llx %s\n",
              dev.config().name.c_str(), nodes,
              static_cast<unsigned long long>(replays),
              static_cast<unsigned long long>(sum),
              sum == ref ? "ok" : "FAIL");
}

struct Fig8Spec {
  const char* app_name;          ///< registry name
  const char* nv_subfig;         ///< e.g. "8a"
  const char* amd_subfig;        ///< e.g. "8g"
  const char* expected_shape;    ///< the paper's finding, quoted
};

inline const apps::AppDesc& find_app(const char* name) {
  for (const auto& a : apps::registry())
    if (a.name == name) return a;
  std::fprintf(stderr, "unknown app %s\n", name);
  std::abort();
}

inline void run_fig8(const Fig8Spec& spec) {
  const apps::AppDesc& app = find_app(spec.app_name);
  std::printf("=== Figure %s / %s — %s ===\n", spec.nv_subfig, spec.amd_subfig,
              app.name.c_str());
  std::printf("description : %s\n", app.description.c_str());
  std::printf("paper CLI   : %s\n", app.paper_cli.c_str());
  std::printf("this run    : %s (scaled for CPU-hosted simulation)\n",
              app.scaled_params.c_str());
  std::printf("paper shape : %s\n\n", spec.expected_shape);

  const apps::Version versions[] = {
      apps::Version::kOmpx, apps::Version::kOmp, apps::Version::kNative,
      apps::Version::kNativeVendor};

  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const bool nv = dev->config().vendor == simt::Vendor::kNvidia;
    std::printf("-- %s (Fig. %s) --\n", dev->config().name.c_str(),
                nv ? spec.nv_subfig : spec.amd_subfig);
    double baseline = 0.0;  // the native-clang bar is the paper's baseline
    std::vector<apps::RunResult> rows;
    for (apps::Version v : versions) {
      // Graceful degradation: an injected (or real) runtime failure in
      // one cell becomes an INVALID row, not a dead driver — the
      // remaining bars and the second system still print.
      try {
        rows.push_back(apps::run_cell(app, v, *dev));
      } catch (const std::exception& e) {
        apps::RunResult r;
        r.app = app.name;
        r.version = apps::bar_label(v, *dev);
        r.device = dev->config().name;
        r.valid = false;
        r.note = std::string("fault: ") + e.what();
        rows.push_back(r);
      }
    }
    for (const auto& r : rows)
      if (r.version == "cuda" || r.version == "hip") baseline = r.kernel_ms;
    std::printf("  %-10s %12s %10s  %s\n", "version", "modeled-ms",
                "vs-native", "verification");
    for (const auto& r : rows) {
      if (!r.valid) {
        std::printf("  %-10s %12s %10s  INVALID (%s)\n", r.version.c_str(),
                    "-", "-", r.note.empty() ? "excluded" : r.note.c_str());
        continue;
      }
      std::printf("  %-10s %12.4f %9.2fx  ok (checksum %016llx)\n",
                  r.version.c_str(), r.kernel_ms,
                  baseline > 0 ? r.kernel_ms / baseline : 0.0,
                  static_cast<unsigned long long>(r.checksum));
    }
    std::printf("\n");
  }
}

}  // namespace bench
