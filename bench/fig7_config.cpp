// Regenerates Figure 7: hardware and software configuration of the two
// systems — here, the two simulated device configurations standing in
// for them (the substitution DESIGN.md documents).
#include <cstdio>

#include "simt/device.h"

namespace {
void print_device(const simt::DeviceConfig& c, const char* paper_gpu,
                  const char* paper_sdk) {
  std::printf("%-22s: %s (simulating %s)\n", "GPU", c.name.c_str(), paper_gpu);
  std::printf("%-22s: %s\n", "SDK (paper)", paper_sdk);
  std::printf("%-22s: %u\n", "warp/wavefront size", c.warp_size);
  std::printf("%-22s: %u\n", "SMs / CUs", c.num_sms);
  std::printf("%-22s: %u\n", "max threads/block", c.max_threads_per_block);
  std::printf("%-22s: %u\n", "max threads/SM", c.max_threads_per_sm);
  std::printf("%-22s: %u\n", "registers/SM", c.regs_per_sm);
  std::printf("%-22s: %llu KiB\n", "shared mem (LDS)/SM",
              static_cast<unsigned long long>(c.smem_per_sm / 1024));
  std::printf("%-22s: %.0f GiB\n", "global memory",
              static_cast<double>(c.global_mem_bytes) / (1ull << 30));
  std::printf("%-22s: %.2f GHz\n", "clock", c.clock_ghz);
  std::printf("%-22s: %.0f GB/s\n", "memory bandwidth", c.mem_bw_gbps);
  std::printf("%-22s: %.1f TFLOP/s (FMA)\n", "peak compute",
              c.peak_gflops() / 1000.0);
  std::printf("\n");
}
}  // namespace

int main() {
  std::printf("=== Figure 7 — Hardware and software configuration ===\n\n");
  std::printf("--- AMD system ---\n");
  print_device(simt::sim_mi250().config(), "AMD MI250 (one GCD)",
               "ROCm 5.5 / CPU: AMD EPYC 7532 / 256 GB");
  std::printf("--- NVIDIA system ---\n");
  print_device(simt::sim_a100().config(), "NVIDIA A100 (40 GB)",
               "CUDA 11.8 / CPU: AMD EPYC 7532 / 512 GB");
  std::printf("Prototype compiler stand-in: calibrated CompilerProfiles per "
              "program version\n(the paper's prototype is based on LLVM 18; "
              "see EXPERIMENTS.md).\n");
  return 0;
}
