// Ablation A4 — multi-dimensional num_teams/thread_limit (paper §3.2)
// vs manual 1-D flattening: identical results, identical modeled cost,
// but the 3-D form ports dim3-based CUDA code by text replacement.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/ompx.h"

namespace {

constexpr unsigned kNx = 64, kNy = 32, kNz = 16;
constexpr unsigned kBx = 8, kBy = 8, kBz = 4;

simt::KernelCost cost3d() {
  simt::KernelCost c;
  c.flops_per_thread = 6;
  c.global_bytes_per_thread = 8;
  return c;
}

double run_3d(simt::Device& dev, std::vector<float>& out) {
  dev.clear_launch_log();
  float* p = out.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {kNx / kBx, kNy / kBy, kNz / kBz};  // §3.2 syntax
  spec.thread_limit = {kBx, kBy, kBz};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "multidim_3d";
  spec.cost = cost3d();
  spec.device = &dev;
  return ompx::launch(spec, [=] {
           const unsigned x = ompx_block_id_x() * kBx + ompx_thread_id_x();
           const unsigned y = ompx_block_id_y() * kBy + ompx_thread_id_y();
           const unsigned z = ompx_block_id_z() * kBz + ompx_thread_id_z();
           p[(z * kNy + y) * kNx + x] =
               static_cast<float>(x) + 2.0f * y + 3.0f * z;
         })
      .modeled_ms();
}

double run_flat(simt::Device& dev, std::vector<float>& out) {
  dev.clear_launch_log();
  float* p = out.data();
  const unsigned total = kNx * kNy * kNz;
  const unsigned block = kBx * kBy * kBz;
  ompx::LaunchSpec spec;
  spec.num_teams = {total / block};
  spec.thread_limit = {block};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "multidim_flat";
  spec.cost = cost3d();
  spec.device = &dev;
  return ompx::launch(spec, [=] {
           // The pre-extension workaround (§2.8): translate the workload
           // into one dimension and reconstruct the coordinates by hand.
           const std::int64_t i = ompx::global_thread_id();
           const unsigned x = static_cast<unsigned>(i % kNx);
           const unsigned y = static_cast<unsigned>((i / kNx) % kNy);
           const unsigned z = static_cast<unsigned>(i / (kNx * kNy));
           p[(z * kNy + y) * kNx + x] =
               static_cast<float>(x) + 2.0f * y + 3.0f * z;
         })
      .modeled_ms();
}

}  // namespace

int main() {
  std::printf("=== Ablation A4 — multi-dimensional launch vs manual "
              "flattening ===\n(domain %ux%ux%u, block %ux%ux%u)\n\n",
              kNx, kNy, kNz, kBx, kBy, kBz);
  simt::Device& dev = simt::sim_a100();
  std::vector<float> a(kNx * kNy * kNz, -1.0f), b(kNx * kNy * kNz, -2.0f);
  const double t3 = run_3d(dev, a);
  const double tf = run_flat(dev, b);
  const double sum3 = std::accumulate(a.begin(), a.end(), 0.0);
  const double sumf = std::accumulate(b.begin(), b.end(), 0.0);
  std::printf("%-28s %10.3f us  (sum %.0f)\n", "num_teams(x,y,z) 3-D", t3 * 1e3,
              sum3);
  std::printf("%-28s %10.3f us  (sum %.0f)\n", "manual 1-D flattening",
              tf * 1e3, sumf);
  if (a != b) {
    std::printf("\nERROR: results differ\n");
    return 1;
  }
  std::printf("\nIdentical results and cost; the 3-D form is what lets dim3 "
              "CUDA launches port\nby text replacement (§3.2).\n");
  return 0;
}
