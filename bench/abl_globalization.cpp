// Ablation A2 — variable placement: registers/stack (bare) vs
// globalized device heap (generic-mode OpenMP) vs groupprivate shared
// memory (the paper's extension), on a stencil microkernel.
//
// This isolates the §4.2.6 mechanism: the same tile buffer placed three
// ways, identical results, very different modeled cost.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/ompx.h"

namespace {

constexpr int kRadius = 4;
constexpr int kBlock = 128;
constexpr std::int64_t kN = 1 << 16;

struct Placement {
  const char* name;
  double modeled_ms;
  long long checksum;
};

Placement run_shared(simt::Device& dev, const std::vector<int>& in,
                     std::vector<int>& out) {
  dev.clear_launch_log();
  const int* din = in.data();
  int* dout = out.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(kN / kBlock)};
  spec.thread_limit = {kBlock};
  spec.name = "tile_groupprivate";
  spec.cost.global_bytes_per_thread = 8.5;
  spec.cost.shared_bytes_per_thread = (2 * kRadius + 2) * 4.0;
  spec.device = &dev;
  ompx::LaunchResult r = ompx::launch(spec, [=] {
    int* tile = ompx::groupprivate<int>(kBlock + 2 * kRadius);
    const std::int64_t g = ompx::global_thread_id();
    const int l = ompx_thread_id_x() + kRadius;
    tile[l] = din[g + kRadius];
    if (ompx_thread_id_x() < kRadius) {
      tile[l - kRadius] = din[g];
      tile[l + kBlock] = din[g + kRadius + kBlock];
    }
    ompx_sync_thread_block();
    int acc = 0;
    for (int o = -kRadius; o <= kRadius; ++o) acc += tile[l + o];
    dout[g] = acc;
  });
  return {"groupprivate (shared)", r.modeled_ms(),
          std::accumulate(out.begin(), out.end(), 0LL)};
}

Placement run_globalized(simt::Device& dev, const std::vector<int>& in,
                         std::vector<int>& out) {
  dev.clear_launch_log();
  omp::TargetClauses c;
  c.device = &dev;
  c.num_teams = static_cast<int>(kN / kBlock);
  c.thread_limit = kBlock;
  c.name = "tile_globalized";
  c.cost.global_bytes_per_thread = 8.5 + (2 * kRadius + 2) * 4.0;
  const int* din = in.data();
  int* dout = out.data();
  omp::target_teams_generic(c, [&](omp::DeviceEnv&) {
    return [=](omp::TeamCtx& team) {
      int* tile = static_cast<int*>(
          team.globalized((kBlock + 2 * kRadius) * sizeof(int)));
      const std::int64_t base =
          static_cast<std::int64_t>(team.team()) * kBlock;
      team.parallel(0, [=](int tid) {
        const std::int64_t g = base + tid;
        const int l = tid + kRadius;
        tile[l] = din[g + kRadius];
        if (tid < kRadius) {
          tile[l - kRadius] = din[g];
          tile[l + kBlock] = din[g + kRadius + kBlock];
        }
      });
      team.parallel(0, [=](int tid) {
        const std::int64_t g = base + tid;
        const int l = tid + kRadius;
        int acc = 0;
        for (int o = -kRadius; o <= kRadius; ++o) acc += tile[l + o];
        dout[g] = acc;
      });
    };
  });
  return {"globalized (device heap, generic mode)",
          ompx::launch_record(&dev).time.total_ms,
          std::accumulate(out.begin(), out.end(), 0LL)};
}

Placement run_private(simt::Device& dev, const std::vector<int>& in,
                      std::vector<int>& out) {
  // No staging at all: every thread reads its window from global memory
  // (the register/L1 path — what a compiler does when it can demote).
  dev.clear_launch_log();
  const int* din = in.data();
  int* dout = out.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(kN / kBlock)};
  spec.thread_limit = {kBlock};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "tile_private";
  spec.cost.global_bytes_per_thread = 8.5 + (2 * kRadius) * 4.0 * 0.3;
  spec.device = &dev;
  ompx::LaunchResult r = ompx::launch(spec, [=] {
    const std::int64_t g = ompx::global_thread_id();
    int acc = 0;
    for (int o = -kRadius; o <= kRadius; ++o)
      acc += din[g + kRadius + o];
    dout[g] = acc;
  });
  return {"private / demoted (global reads, cached)", r.modeled_ms(),
          std::accumulate(out.begin(), out.end(), 0LL)};
}

}  // namespace

int main() {
  std::printf("=== Ablation A2 — tile placement: shared vs globalized vs "
              "private ===\n(1-D stencil microkernel, n=%lld, sim-a100)\n\n",
              static_cast<long long>(kN));
  simt::Device& dev = simt::sim_a100();
  std::vector<int> in(kN + 2 * kRadius);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<int>(i % 13);
  std::vector<int> out(kN, 0);

  const Placement shared = run_shared(dev, in, out);
  const Placement heap = run_globalized(dev, in, out);
  const Placement priv = run_private(dev, in, out);

  std::printf("%-42s %12s %10s\n", "placement", "modeled-us", "vs-shared");
  for (const Placement& p : {shared, priv, heap}) {
    std::printf("%-42s %12.3f %9.2fx  (checksum %lld)\n", p.name,
                p.modeled_ms * 1000.0, p.modeled_ms / shared.modeled_ms,
                p.checksum);
  }
  if (shared.checksum != heap.checksum || shared.checksum != priv.checksum) {
    std::printf("\nERROR: placements disagree!\n");
    return 1;
  }
  std::printf("\nAll placements compute identical results; globalization "
              "pays heap traffic\nplus the generic state machine — exactly "
              "what groupprivate avoids (§2.5, §4.2.6).\n");
  return 0;
}
