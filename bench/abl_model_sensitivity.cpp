// Ablation A6 — calibration robustness.
//
// EXPERIMENTS.md flags every calibrated constant in the performance
// model. This ablation perturbs the most influential ones (generic
// state-machine handshake cost, per-launch dispatch cost, runtime init)
// by 0.5x / 2x and re-derives the paper's two most mechanism-sensitive
// findings — the Stencil-1D omp collapse (§4.2.6) and the Adam omp
// slowdown (§4.2.5) — on private devices with scaled EventCosts. The
// orderings must survive every perturbation; only magnitudes move.
#include <cstdio>
#include <memory>

#include "apps/adam/adam.h"
#include "apps/stencil1d/stencil1d.h"
#include "core/ompx.h"

namespace {

struct Ratios {
  double stencil_omp_over_ompx;
  double adam_omp_over_ompx;
};

Ratios measure(double scale) {
  // A private sim-a100-shaped device with scaled per-event costs. The
  // apps only dispatch on vendor, so they run unmodified.
  auto dev = std::make_unique<simt::Device>([] {
    simt::DeviceConfig c = simt::make_sim_a100_config();
    c.name = "sensitivity";
    return c;
  }());
  simt::EventCosts& ec = dev->costs();
  ec.handshake_generic_ns *= scale;
  ec.handshake_ns *= scale;
  ec.launch_us *= scale;
  ec.runtime_init_us *= scale;
  ec.dispatch_ns *= scale;
  ec.barrier_ns *= scale;

  Ratios r{};
  {
    apps::stencil1d::Options o;
    o.n = 1 << 17;
    o.iterations = 2;
    const auto ompx = apps::stencil1d::run(apps::Version::kOmpx, *dev, o);
    const auto omp = apps::stencil1d::run(apps::Version::kOmp, *dev, o);
    r.stencil_omp_over_ompx = omp.kernel_ms / ompx.kernel_ms;
  }
  {
    apps::adam::Options o;
    o.steps = 10;
    const auto ompx = apps::adam::run(apps::Version::kOmpx, *dev, o);
    const auto omp = apps::adam::run(apps::Version::kOmp, *dev, o);
    r.adam_omp_over_ompx = omp.kernel_ms / ompx.kernel_ms;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation A6 — sensitivity of figure shapes to calibrated "
              "event costs ===\n");
  std::printf("(per-event costs scaled together; orderings must survive)\n\n");
  std::printf("%10s %26s %24s\n", "scale", "stencil omp/ompx (>>1?)",
              "adam omp/ompx (>1?)");
  bool ok = true;
  for (double scale : {0.5, 1.0, 2.0}) {
    const Ratios r = measure(scale);
    std::printf("%9.2fx %25.1fx %23.2fx\n", scale, r.stencil_omp_over_ompx,
                r.adam_omp_over_ompx);
    ok &= r.stencil_omp_over_ompx > 10.0;  // still orders of magnitude
    ok &= r.adam_omp_over_ompx > 2.0;      // still clearly slower
  }
  if (!ok) {
    std::printf("\nERROR: an ordering flipped under perturbation\n");
    return 1;
  }
  std::printf("\nBoth findings are driven by measured mechanism counts "
              "(handshakes, globalized\ntraffic, concurrency starvation); "
              "the calibrated constants scale magnitudes\nbut cannot flip "
              "the orderings.\n");
  return 0;
}
