// Ablation A7 — the vendor-library wrapper layer's cost (§3.6).
//
// The paper's wrapper must be "lightweight": its dispatch adds nothing
// measurable over calling the vendor library directly, and one wrapper
// code path reaches both vendors' GEMMs. Sweeps square DGEMM sizes,
// printing modeled GFLOP/s through the wrapper vs the vendor library
// called directly, on both devices.
#include <cmath>
#include <cstdio>
#include <vector>

#include "blas/ompx_blas.h"
#include "core/ompx.h"

namespace {

std::vector<double> matrix(int n, unsigned salt) {
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = 0.25 * static_cast<double>((i * 2654435761u + salt) % 17) - 2.0;
  return m;
}

double modeled_gemm_ms(simt::Device& dev) {
  return ompx::launch_record(&dev).time.total_ms;
}

double direct_vendor_gemm(simt::Device& dev, int n, const double* a,
                          const double* b, double* c) {
  dev.clear_launch_log();
  if (dev.config().vendor == simt::Vendor::kNvidia) {
    nvblas::Handle h = nullptr;
    nvblas::create(&h);
    const double one = 1.0, zero = 0.0;
    nvblas::dgemm(h, nvblas::kOpN, nvblas::kOpN, n, n, n, &one, a, n, b, n,
                  &zero, c, n);
    nvblas::destroy(h);
  } else {
    rocblas::Handle h = nullptr;
    rocblas::create_handle(&h);
    rocblas::dgemm(h, rocblas::Operation::kNone, rocblas::Operation::kNone, n,
                   n, n, 1.0, a, n, b, n, 0.0, c, n);
    rocblas::destroy_handle(h);
  }
  return modeled_gemm_ms(dev);
}

double wrapped_gemm(simt::Device& dev, int n, const double* a, const double* b,
                    double* c) {
  dev.clear_launch_log();
  ompx::blas::Handle h(dev);
  h.gemm(ompx::blas::Op::kN, ompx::blas::Op::kN, n, n, n, 1.0, a, n, b, n, 0.0,
         c, n);
  return modeled_gemm_ms(dev);
}

}  // namespace

int main() {
  std::printf("=== Ablation A7 — ompx::blas wrapper vs direct vendor calls "
              "===\n(square DGEMM; modeled GFLOP/s; wrapper overhead must be "
              "~0)\n\n");
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    std::printf("-- %s --\n", dev->config().name.c_str());
    std::printf("%8s %14s %14s %10s\n", "n", "vendor GF/s", "wrapper GF/s",
                "overhead");
    for (int n : {64, 128, 256}) {
      const auto a = matrix(n, 1), b = matrix(n, 2);
      std::vector<double> c1(static_cast<std::size_t>(n) * n),
          c2(static_cast<std::size_t>(n) * n);
      const double flops = 2.0 * n * static_cast<double>(n) * n;
      const double tv = direct_vendor_gemm(*dev, n, a.data(), b.data(),
                                           c1.data());
      const double tw = wrapped_gemm(*dev, n, a.data(), b.data(), c2.data());
      if (c1 != c2) {
        std::printf("ERROR: wrapper and vendor results differ at n=%d\n", n);
        return 1;
      }
      std::printf("%8d %14.1f %14.1f %9.2f%%\n", n, flops / (tv * 1e6),
                  flops / (tw * 1e6), (tw / tv - 1.0) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("Identical results and cost through the wrapper: the dispatch "
              "is resolved at\nhandle creation, off the hot path (§3.6).\n");
  return 0;
}
