// Regenerates Figure 8d (NVIDIA) and 8j (AMD): AIDW.
#include <cstdio>

#include "fig8_common.h"

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_aidw_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  bench::run_fig8({
      "AIDW", "8d", "8j",
      "on the MI250 every version aligns; on the A100 ompx matches "
      "cuda-nvcc but trails clang-cuda by ~5% (shared variables demoted "
      "in the CUDA version) (§4.2.4)"});
  if (bench::graph_flag(argc, argv))
    std::printf("--graph: AIDW is a single-launch benchmark; nothing to "
                "capture. See fig8_adam / fig8_stencil1d for the "
                "capture/replay demos.\n");
  return 0;
}
