// Regenerates Figure 8a (NVIDIA) and 8g (AMD): XSBench.
#include <cstdio>

#include "fig8_common.h"

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_xsbench_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  bench::run_fig8({
      "XSBench", "8a", "8g",
      "ompx consistently outperforms the native versions compiled with "
      "both LLVM/Clang and the vendor compiler on both systems; the omp "
      "version is excluded for reporting an invalid checksum (§4.2.1)"});
  if (bench::graph_flag(argc, argv))
    std::printf("--graph: XSBench is a single-launch benchmark; nothing to "
                "capture. See fig8_adam / fig8_stencil1d for the "
                "capture/replay demos.\n");
  return 0;
}
