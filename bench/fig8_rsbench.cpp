// Regenerates Figure 8b (NVIDIA) and 8h (AMD): RSBench.
#include <cstdio>

#include "fig8_common.h"

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_rsbench_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  bench::run_fig8({
      "RSBench", "8b", "8h",
      "ompx exceeds the LLVM/Clang native version on both systems; on the "
      "A100 the omp version outperforms cuda thanks to the heap-to-shared "
      "optimization (162 registers + 2KB shared memory) (§4.2.2)"});
  if (bench::graph_flag(argc, argv))
    std::printf("--graph: RSBench is a single-launch benchmark; nothing to "
                "capture. See fig8_adam / fig8_stencil1d for the "
                "capture/replay demos.\n");
  return 0;
}
