// Multi-tenant traffic replay: N closed-loop clients hammer one
// simulated device through the serving layer (src/serve), drawing
// requests from a seeded trace whose six endpoints are shaped like the
// Fig. 8 application kernels. Reports request-latency percentiles
// (p50/p95/p99), aggregate launches/s, and the per-client fairness
// spread (scheduler quanta vs the fair share).
//
//   serve_traffic [--clients=N] [--requests=M] [--seed=S] [--quantum=Q]
//                 [--trace-out=path] [--json[=path]]
//                 [--fault=<spec>] [--san[=checks]] [--trace[=path]]
//
// Every request is individually fault-tolerant: an injected OOM, an
// admission rejection, a watchdog timeout, or a device loss fails that
// request alone (counted and reported), the client keeps replaying, and
// the driver still exits 0 with percentiles — the CI smoke runs
// `--clients=4 --fault=oom:p=0.01,seed=7` and expects a p99 and no
// starved client. Exit 1 means a correctness failure: a checksum
// mismatch on a request that reported success, or a client that ended
// the replay with zero completed launches.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fig8_common.h"
#include "serve/serve.h"
#include "simt/simt.h"

namespace {

/// One trace endpoint, shaped after a Fig. 8 application kernel: the
/// grid/block silhouette and a rough roofline cost, not the app itself
/// (the bench measures the serving layer, not the kernels).
struct Endpoint {
  const char* name;
  std::uint32_t grid;
  std::uint32_t block;
  double flops_per_thread;
  double bytes_per_thread;
  std::size_t alloc_bytes;  ///< scratch the request rents from its quota
};

constexpr Endpoint kEndpoints[] = {
    {"xsbench", 64, 256, 120.0, 96.0, 64 << 10},
    {"rsbench", 48, 256, 400.0, 48.0, 48 << 10},
    {"su3", 32, 128, 950.0, 64.0, 96 << 10},
    {"aidw", 24, 128, 300.0, 32.0, 32 << 10},
    {"adam", 96, 256, 60.0, 72.0, 128 << 10},
    {"stencil1d", 128, 64, 30.0, 24.0, 16 << 10},
};
constexpr std::size_t kNumEndpoints =
    sizeof kEndpoints / sizeof kEndpoints[0];

/// Deterministic per-client request stream (splitmix64).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RequestLog {
  int client;
  std::uint32_t endpoint;
  double latency_ms;
  bool ok;
  const char* error;  ///< static string, "" when ok
};

struct ClientOutcome {
  std::uint64_t ok = 0;
  std::uint64_t oom = 0;
  std::uint64_t admission = 0;
  std::uint64_t timeout = 0;
  std::uint64_t device_lost = 0;
  std::uint64_t other = 0;
  std::uint64_t checksum_bad = 0;
  std::vector<RequestLog> log;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted[idx];
}

int int_flag(int argc, char** argv, const char* name, int fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::atoi(argv[i] + len + 1);
  return fallback;
}

std::string str_flag(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::string(argv[i] + len + 1);
  return "";
}

void replay_client(serve::ClientContext* client, int id, int requests,
                   std::uint64_t seed, ClientOutcome* out) {
  Rng rng{seed + static_cast<std::uint64_t>(id) * 0x51ed2701u};
  out->log.reserve(static_cast<std::size_t>(requests));
  for (int r = 0; r < requests; ++r) {
    const Endpoint& ep = kEndpoints[rng.next() % kNumEndpoints];
    const double t0 = now_ms();
    bool ok = false;
    const char* error = "";
    std::atomic<std::uint64_t> sum{0};
    try {
      void* scratch = client->malloc(ep.alloc_bytes);
      simt::LaunchParams p;
      p.grid = {ep.grid, 1, 1};
      p.block = {ep.block, 1, 1};
      p.name = ep.name;
      p.cost.flops_per_thread = ep.flops_per_thread;
      p.cost.global_bytes_per_thread = ep.bytes_per_thread;
      try {
        client->launch(p, [&sum] {
          const simt::ThreadCtx& t = simt::this_thread();
          const std::uint64_t gid =
              static_cast<std::uint64_t>(t.block_idx.x) * t.block_dim.x +
              t.flat_tid;
          sum.fetch_add(gid, std::memory_order_relaxed);
        });
        const std::uint64_t threads =
            std::uint64_t{ep.grid} * std::uint64_t{ep.block};
        if (sum.load() == threads * (threads - 1) / 2) {
          ok = true;
        } else {
          error = "checksum";
          out->checksum_bad++;
        }
      } catch (...) {
        client->free(scratch);
        throw;
      }
      client->free(scratch);
    } catch (const simt::DeviceOOMError&) {
      error = "oom";
      out->oom++;
    } catch (const simt::AdmissionError&) {
      error = "admission";
      out->admission++;
    } catch (const simt::TimeoutError&) {
      error = "timeout";
      out->timeout++;
    } catch (const simt::DeviceLostError&) {
      error = "device_lost";
      out->device_lost++;
    } catch (const std::exception&) {
      error = "error";
      out->other++;
    }
    if (ok) out->ok++;
    out->log.push_back(
        {id, static_cast<std::uint32_t>(&ep - kEndpoints), now_ms() - t0,
         ok, error});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "serve_traffic_trace.json");
  bench::SanGuard san(argc, argv);
  bench::FaultGuard fault(argc, argv);

  const int clients = std::max(1, int_flag(argc, argv, "--clients", 8));
  const int requests = std::max(1, int_flag(argc, argv, "--requests", 64));
  const int quantum = std::max(1, int_flag(argc, argv, "--quantum", 16));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(int_flag(argc, argv, "--seed", 42));
  const std::string trace_out = str_flag(argc, argv, "--trace-out");
  std::string json_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    }
  }

  serve::Server server;
  server.set_quantum_blocks(static_cast<std::uint32_t>(quantum));
  serve::ClientLimits limits;
  limits.memory_quota_bytes = 4 << 20;
  limits.max_pending = 8;
  std::vector<serve::ClientContext*> handles(
      static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i)
    handles[static_cast<std::size_t>(i)] =
        server.create_client(&simt::sim_a100(), limits);

  std::vector<ClientOutcome> outcomes(static_cast<std::size_t>(clients));
  const double wall0 = now_ms();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int i = 0; i < clients; ++i)
      threads.emplace_back(replay_client, handles[static_cast<std::size_t>(i)],
                           i, requests, seed,
                           &outcomes[static_cast<std::size_t>(i)]);
    for (auto& t : threads) t.join();
  }
  const double wall_ms = now_ms() - wall0;

  // --- aggregate -----------------------------------------------------------
  std::vector<double> latencies;
  std::uint64_t ok = 0, oom = 0, admission = 0, timeout = 0, lost = 0,
                other = 0, checksum_bad = 0;
  for (const ClientOutcome& o : outcomes) {
    ok += o.ok;
    oom += o.oom;
    admission += o.admission;
    timeout += o.timeout;
    lost += o.device_lost;
    other += o.other;
    checksum_bad += o.checksum_bad;
    for (const RequestLog& r : o.log)
      if (r.ok) latencies.push_back(r.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  const double launches_per_s =
      wall_ms > 0.0 ? static_cast<double>(ok) / (wall_ms / 1000.0) : 0.0;

  std::uint64_t quanta_total = 0, quanta_min = ~0ull, quanta_max = 0;
  std::uint64_t starved = 0;
  for (int i = 0; i < clients; ++i) {
    const serve::ClientStats st =
        handles[static_cast<std::size_t>(i)]->stats();
    quanta_total += st.quanta;
    quanta_min = std::min(quanta_min, st.quanta);
    quanta_max = std::max(quanta_max, st.quanta);
    if (outcomes[static_cast<std::size_t>(i)].ok == 0) starved++;
  }
  const double fair_share =
      static_cast<double>(quanta_total) / static_cast<double>(clients);
  const double min_share_ratio =
      fair_share > 0.0 ? static_cast<double>(quanta_min) / fair_share : 1.0;

  if (!trace_out.empty()) {
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve_traffic: cannot write %s\n",
                   trace_out.c_str());
    } else {
      std::fprintf(f, "client,endpoint,latency_ms,status\n");
      for (const ClientOutcome& o : outcomes)
        for (const RequestLog& r : o.log)
          std::fprintf(f, "%d,%s,%.4f,%s\n", r.client,
                       kEndpoints[r.endpoint].name, r.latency_ms,
                       r.ok ? "ok" : r.error);
      std::fclose(f);
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    }
  }

  if (json) {
    std::string out;
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\n"
                  "  \"bench\": \"serve_traffic\",\n"
                  "  \"clients\": %d, \"requests_per_client\": %d,\n"
                  "  \"quantum_blocks\": %d, \"seed\": %llu,\n"
                  "  \"completed\": %llu, \"failed\": %llu,\n"
                  "  \"latency_ms\": { \"p50\": %.3f, \"p95\": %.3f, "
                  "\"p99\": %.3f },\n",
                  clients, requests, quantum,
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(ok),
                  static_cast<unsigned long long>(oom + admission + timeout +
                                                  lost + other),
                  p50, p95, p99);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"launches_per_s\": %.0f,\n"
                  "  \"fairness\": { \"quanta_min\": %llu, \"quanta_max\": "
                  "%llu, \"min_share_ratio\": %.3f },\n"
                  "  \"faults\": { \"oom\": %llu, \"admission\": %llu, "
                  "\"timeout\": %llu, \"device_lost\": %llu, \"other\": "
                  "%llu }\n"
                  "}\n",
                  launches_per_s,
                  static_cast<unsigned long long>(quanta_min),
                  static_cast<unsigned long long>(quanta_max),
                  min_share_ratio, static_cast<unsigned long long>(oom),
                  static_cast<unsigned long long>(admission),
                  static_cast<unsigned long long>(timeout),
                  static_cast<unsigned long long>(lost),
                  static_cast<unsigned long long>(other));
    out += buf;
    if (json_path.empty()) {
      std::fputs(out.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "serve_traffic: cannot write %s\n",
                     json_path.c_str());
        return 1;
      }
      std::fputs(out.c_str(), f);
      std::fclose(f);
    }
  } else {
    std::printf("serve_traffic: %d clients x %d requests, quantum %d "
                "blocks, seed %llu\n",
                clients, requests, quantum,
                static_cast<unsigned long long>(seed));
    std::printf("  latency ms: p50=%.3f p95=%.3f p99=%.3f (n=%zu)\n", p50,
                p95, p99, latencies.size());
    std::printf("  throughput: %.0f launches/s (%llu completed in %.1f "
                "ms)\n",
                launches_per_s, static_cast<unsigned long long>(ok),
                wall_ms);
    std::printf("  fairness: quanta min=%llu max=%llu fair=%.1f "
                "min/fair=%.2f\n",
                static_cast<unsigned long long>(quanta_min),
                static_cast<unsigned long long>(quanta_max), fair_share,
                min_share_ratio);
    std::printf("  faults: oom=%llu admission=%llu timeout=%llu "
                "device_lost=%llu other=%llu\n",
                static_cast<unsigned long long>(oom),
                static_cast<unsigned long long>(admission),
                static_cast<unsigned long long>(timeout),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(other));
    for (int i = 0; i < clients; ++i) {
      const serve::ClientStats st =
          handles[static_cast<std::size_t>(i)]->stats();
      const ClientOutcome& o = outcomes[static_cast<std::size_t>(i)];
      std::printf("  client %d: ok=%llu fail=%llu quanta=%llu "
                  "blocks=%llu bytes_peak=%llu\n",
                  i, static_cast<unsigned long long>(o.ok),
                  static_cast<unsigned long long>(
                      o.oom + o.admission + o.timeout + o.device_lost +
                      o.other),
                  static_cast<unsigned long long>(st.quanta),
                  static_cast<unsigned long long>(st.blocks_executed),
                  static_cast<unsigned long long>(st.bytes_peak));
    }
  }

  for (serve::ClientContext* c : handles) server.destroy_client(c);

  // Correctness gate: a request that claimed success must have the
  // right checksum, and a closed-loop client can only end with zero
  // completions if the scheduler starved it.
  if (checksum_bad != 0) {
    std::fprintf(stderr, "serve_traffic: %llu checksum failure(s)\n",
                 static_cast<unsigned long long>(checksum_bad));
    return 1;
  }
  if (starved != 0) {
    std::fprintf(stderr, "serve_traffic: %llu starved client(s)\n",
                 static_cast<unsigned long long>(starved));
    return 1;
  }
  return 0;
}
