// Ablation A3 — warp-level primitives (paper §3.3.2): block reduction
// implemented three ways — ompx_shfl_down_sync tree, shared-memory
// tree, and global atomics — on both warp sizes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/ompx.h"

namespace {

constexpr unsigned kTeams = 256;
constexpr unsigned kThreads = 256;

double reduce_shfl(simt::Device& dev, double* result) {
  dev.clear_launch_log();
  *result = 0.0;
  ompx::LaunchSpec spec;
  spec.num_teams = {kTeams};
  spec.thread_limit = {kThreads};
  spec.name = "reduce_shfl";
  spec.cost.flops_per_thread = 12;
  spec.cost.global_bytes_per_thread = 8;
  spec.device = &dev;
  return ompx::launch(spec, [=] {
           double v = 1.0;
           const int ws = ompx_warp_size();
           for (int d = ws / 2; d > 0; d /= 2)
             v += ompx_shfl_down_sync_d(~0ull, v, static_cast<unsigned>(d));
           // One shared slot per warp, then lane 0 of warp 0 combines.
           double* warp_sums = ompx::groupprivate<double>(kThreads / 32);
           const int warp = ompx_thread_id_x() / ws;
           if (ompx_lane_id() == 0) warp_sums[warp] = v;
           ompx_sync_thread_block();
           if (ompx_thread_id_x() == 0) {
             double s = 0;
             for (int w = 0; w < ompx_block_dim_x() / ws; ++w)
               s += warp_sums[w];
             ompx::atomic_add(result, s);
           }
         })
      .modeled_ms();
}

double reduce_shared(simt::Device& dev, double* result) {
  dev.clear_launch_log();
  *result = 0.0;
  ompx::LaunchSpec spec;
  spec.num_teams = {kTeams};
  spec.thread_limit = {kThreads};
  spec.name = "reduce_shared";
  spec.cost.flops_per_thread = 10;
  spec.cost.global_bytes_per_thread = 8;
  spec.cost.shared_bytes_per_thread = 2.0 * 8.0 * 8.0;  // log2(256) passes
  spec.device = &dev;
  return ompx::launch(spec, [=] {
           double* scratch = ompx::groupprivate<double>(kThreads);
           const int tid = ompx_thread_id_x();
           scratch[tid] = 1.0;
           ompx_sync_thread_block();
           for (int stride = kThreads / 2; stride > 0; stride /= 2) {
             if (tid < stride) scratch[tid] += scratch[tid + stride];
             ompx_sync_thread_block();
           }
           if (tid == 0) ompx::atomic_add(result, scratch[0]);
         })
      .modeled_ms();
}

double reduce_atomic(simt::Device& dev, double* result) {
  dev.clear_launch_log();
  *result = 0.0;
  ompx::LaunchSpec spec;
  spec.num_teams = {kTeams};
  spec.thread_limit = {kThreads};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "reduce_atomic";
  spec.cost.flops_per_thread = 2;
  spec.cost.global_bytes_per_thread = 8;
  spec.device = &dev;
  return ompx::launch(spec, [=] { ompx::atomic_add(result, 1.0); })
      .modeled_ms();
}

void print_table() {
  std::printf("=== Ablation A3 — block reduction: shfl vs shared vs atomics "
              "===\n(%u teams x %u threads, result must equal %u)\n\n",
              kTeams, kThreads, kTeams * kThreads);
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    std::printf("-- %s (warp size %u) --\n", dev->config().name.c_str(),
                dev->config().warp_size);
    double r1 = 0, r2 = 0, r3 = 0;
    const double t1 = reduce_shfl(*dev, &r1);
    const double t2 = reduce_shared(*dev, &r2);
    const double t3 = reduce_atomic(*dev, &r3);
    std::printf("  %-28s %10.3f us  (sum %.0f)\n", "ompx_shfl_down_sync tree",
                t1 * 1e3, r1);
    std::printf("  %-28s %10.3f us  (sum %.0f)\n", "shared-memory tree",
                t2 * 1e3, r2);
    std::printf("  %-28s %10.3f us  (sum %.0f)\n", "global atomics", t3 * 1e3,
                r3);
    const double expect = static_cast<double>(kTeams) * kThreads;
    if (r1 != expect || r2 != expect || r3 != expect) {
      std::printf("  ERROR: reduction mismatch\n");
      std::exit(1);
    }
    std::printf("\n");
  }
}

void BM_ShflReduce(benchmark::State& state) {
  double r = 0;
  for (auto _ : state) benchmark::DoNotOptimize(reduce_shfl(simt::sim_a100(), &r));
}
BENCHMARK(BM_ShflReduce)->Unit(benchmark::kMillisecond);

void BM_SharedReduce(benchmark::State& state) {
  double r = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(reduce_shared(simt::sim_a100(), &r));
}
BENCHMARK(BM_SharedReduce)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
