// Ablation A1 — what ompx_bare removes (paper §3.1).
//
// Launches the same empty / tiny kernels with bare = true (no device
// runtime) and bare = false (SPMD runtime init), sweeping grid sizes,
// and reports the modeled per-launch overhead plus host wall time of
// the simulation via google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/ompx.h"

namespace {

double modeled_launch_ms(bool bare, unsigned teams, unsigned threads) {
  simt::Device& dev = simt::sim_a100();
  dev.clear_launch_log();
  ompx::LaunchSpec spec;
  spec.bare = bare;
  spec.num_teams = {teams};
  spec.thread_limit = {threads};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = bare ? "abl_bare" : "abl_runtime";
  spec.device = &dev;
  return ompx::launch(spec, [] {}).modeled_ms();
}

void print_table() {
  std::printf("=== Ablation A1 — ompx_bare vs runtime-initialized launch ===\n");
  std::printf("(modeled microseconds per empty launch, sim-a100)\n\n");
  std::printf("%8s %8s %12s %12s %10s\n", "teams", "threads", "bare-us",
              "runtime-us", "overhead");
  for (unsigned teams : {1u, 16u, 256u, 4096u}) {
    for (unsigned threads : {32u, 256u}) {
      const double b = modeled_launch_ms(true, teams, threads) * 1000.0;
      const double r = modeled_launch_ms(false, teams, threads) * 1000.0;
      std::printf("%8u %8u %12.3f %12.3f %9.1f%%\n", teams, threads, b, r,
                  (r / b - 1.0) * 100.0);
    }
  }
  std::printf("\nBare mode skips device runtime initialization and the "
              "OpenMP execution-model\nbookkeeping — the paper's rationale "
              "for the ompx_bare clause.\n\n");
}

void BM_LaunchBare(benchmark::State& state) {
  simt::Device& dev = simt::sim_a100();
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(state.range(0))};
  spec.thread_limit = {64};
  spec.mode = simt::ExecMode::kDirect;
  spec.device = &dev;
  spec.name = "bm_bare";
  for (auto _ : state) ompx::launch(spec, [] {}).wait();
  dev.clear_launch_log();
}
BENCHMARK(BM_LaunchBare)->Arg(1)->Arg(64)->Arg(1024);

void BM_LaunchRuntime(benchmark::State& state) {
  simt::Device& dev = simt::sim_a100();
  ompx::LaunchSpec spec;
  spec.bare = false;
  spec.num_teams = {static_cast<unsigned>(state.range(0))};
  spec.thread_limit = {64};
  spec.mode = simt::ExecMode::kDirect;
  spec.device = &dev;
  spec.name = "bm_runtime";
  for (auto _ : state) ompx::launch(spec, [] {}).wait();
  dev.clear_launch_log();
}
BENCHMARK(BM_LaunchRuntime)->Arg(1)->Arg(64)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
