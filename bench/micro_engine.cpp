// Host-side microbenchmarks of the SIMT engine itself (google-benchmark,
// real wall time): fiber switch cost, barrier rendezvous, warp
// collectives, direct-vs-cooperative launch overhead, stream dispatch.
// These justify the engine design choices DESIGN.md documents (custom
// asm context switch, direct mode, stack/fiber pooling).
//
// `micro_engine --json[=path]` skips the google-benchmark table and
// emits a machine-readable summary of the engine hot-path metrics
// (ns/switch, launches/s, fiber-reuse rate, work-steal count) instead;
// the checked-in BENCH_micro_engine.json is produced this way.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/ompx.h"
#include "simt/simt.h"

namespace {

void BM_FiberCreateResume(benchmark::State& state) {
  simt::FiberStackPool pool;
  for (auto _ : state) {
    simt::Fiber f(pool, [] {});
    f.resume();
  }
}
BENCHMARK(BM_FiberCreateResume);

void BM_FiberSwitchPingPong(benchmark::State& state) {
  simt::FiberStackPool pool;
  bool stop = false;
  simt::Fiber f(pool, [&] {
    while (!stop) simt::Fiber::current()->yield();
  });
  for (auto _ : state) f.resume();  // one switch in, one out
  stop = true;
  f.resume();
}
BENCHMARK(BM_FiberSwitchPingPong);

void BM_DirectLaunchPerThread(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {static_cast<unsigned>(state.range(0))};
  p.block = {256};
  p.mode = simt::ExecMode::kDirect;
  p.name = "bm_direct";
  for (auto _ : state) dev.launch_sync(p, [] {});
  state.SetItemsProcessed(state.iterations() * p.grid.count() *
                          p.block.count());
}
BENCHMARK(BM_DirectLaunchPerThread)->Arg(16)->Arg(256);

void BM_CooperativeLaunchPerThread(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {static_cast<unsigned>(state.range(0))};
  p.block = {256};
  p.name = "bm_coop";
  for (auto _ : state) dev.launch_sync(p, [] {});
  state.SetItemsProcessed(state.iterations() * p.grid.count() *
                          p.block.count());
}
BENCHMARK(BM_CooperativeLaunchPerThread)->Arg(16)->Arg(256);

void BM_ConvergentLaunchPerThread(benchmark::State& state) {
  // Same cooperative launch, forced onto the fiber-free lane loop
  // (LaneExec::kConvergent): the gap to BM_CooperativeLaunchPerThread
  // is what the fiber switch costs a sync-free kernel.
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {static_cast<unsigned>(state.range(0))};
  p.block = {256};
  p.lane_exec = simt::LaneExec::kConvergent;
  p.name = "bm_convergent";
  for (auto _ : state) dev.launch_sync(p, [] {});
  state.SetItemsProcessed(state.iterations() * p.grid.count() *
                          p.block.count());
}
BENCHMARK(BM_ConvergentLaunchPerThread)->Arg(16)->Arg(256);

void BM_BlockBarrier(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  const int barriers = 16;
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {static_cast<unsigned>(state.range(0))};
  p.name = "bm_barrier";
  for (auto _ : state) {
    dev.launch_sync(p, [&] {
      auto& t = simt::this_thread();
      for (int i = 0; i < barriers; ++i) t.block->sync_threads(t);
    });
  }
  state.SetItemsProcessed(state.iterations() * barriers);
}
BENCHMARK(BM_BlockBarrier)->Arg(32)->Arg(256);

void BM_WarpShuffle(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  const int rounds = 64;
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {32};
  p.name = "bm_shfl";
  for (auto _ : state) {
    dev.launch_sync(p, [&] {
      auto& t = simt::this_thread();
      std::uint64_t v = t.lane;
      for (int i = 0; i < rounds; ++i)
        v = t.warp->collective(t, simt::WarpOp::kShflXor, v, 1, ~0ull);
      benchmark::DoNotOptimize(v);
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_WarpShuffle);

void BM_StreamDispatch(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.mode = simt::ExecMode::kDirect;
  p.name = "bm_stream";
  simt::Stream& s = dev.default_stream();
  for (auto _ : state) {
    s.launch(p, [] {});
    s.synchronize();
  }
}
BENCHMARK(BM_StreamDispatch);

void BM_MappingEnterExit(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  omp::MappingTable table(dev);
  std::vector<char> host(1 << 16);
  for (auto _ : state) {
    table.enter(omp::map_tofrom(host.data(), host.size()));
    table.exit(omp::map_tofrom(host.data(), host.size()));
  }
}
BENCHMARK(BM_MappingEnterExit);

// --- machine-readable summary mode (--json[=path]) -----------------------

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Raw fiber context-switch cost, ns per one-way switch.
double measure_switch_ns() {
  simt::FiberStackPool pool;
  bool stop = false;
  simt::Fiber f(pool, [&] {
    while (!stop) simt::Fiber::current()->yield();
  });
  const int iters = 2'000'000;
  f.resume();  // warm
  const double t0 = now_ms();
  for (int i = 0; i < iters; ++i) f.resume();  // one switch in, one out
  const double ms = now_ms() - t0;
  stop = true;
  f.resume();
  return ms * 1e6 / (2.0 * iters);
}

/// One timed row of the exec-mode comparison: mean ms per launch plus
/// the scheduler counters that prove which path actually ran.
struct ExecRow {
  double ms_per_launch = 0.0;
  std::uint64_t lane_loops = 0;   ///< threads run fiber-free (convergent)
  std::uint64_t deflations = 0;   ///< convergent probes that hit a collective
  std::uint64_t fibers_created = 0;
  std::uint64_t fiber_reuses = 0;
};

template <typename Kernel>
ExecRow measure_exec(simt::Device& dev, simt::LaunchParams p,
                     simt::LaneExec exec, int warm, int iters,
                     const Kernel& kernel) {
  p.lane_exec = exec;
  ExecRow row;
  // Counters accumulate across warm-up too, so a one-time deflation
  // probe (hint learning) is visible in the row even though the timed
  // window only sees the learned steady state.
  for (int i = 0; i < warm; ++i) {
    const simt::LaunchRecord r = dev.launch_sync(p, kernel);
    row.lane_loops += r.stats.sched_lane_loops;
    row.deflations += r.stats.sched_deflations;
  }
  const double t0 = now_ms();
  for (int i = 0; i < iters; ++i) {
    const simt::LaunchRecord r = dev.launch_sync(p, kernel);
    row.lane_loops += r.stats.sched_lane_loops;
    row.deflations += r.stats.sched_deflations;
    row.fibers_created += r.stats.fibers_created;
    row.fiber_reuses += r.stats.fiber_reuses;
  }
  row.ms_per_launch = (now_ms() - t0) / iters;
  return row;
}

int emit_json(const std::string& path) {
  const double switch_ns = measure_switch_ns();

  // Sync-free cooperative launch, fiber vs convergent: the same launch
  // through both lane-execution modes (simt::LaneExec). The fiber row
  // is the fiber-recycling fast path; the convergent row runs every
  // thread as a plain call on the worker (no fiber, no context
  // switch). One block per launch on one worker so launches/s isolates
  // engine overhead, not host parallelism.
  simt::EngineOptions opts;
  opts.workers = 1;
  simt::Device dev(simt::make_sim_a100_config(), opts);
  simt::LaunchParams p;
  p.grid = {16};
  p.block = {256};
  p.name = "json_sync_free";
  const int warm = 20, iters = 200;
  const double sync_threads = 16.0 * 256.0;
  const ExecRow sf_fiber = measure_exec(dev, p, simt::LaneExec::kFiber, warm,
                                        iters, [] {});
  const ExecRow sf_conv = measure_exec(dev, p, simt::LaneExec::kConvergent,
                                       warm, iters, [] {});
  const double sync_free_ms = sf_fiber.ms_per_launch;
  const std::uint64_t created = sf_fiber.fibers_created;
  const std::uint64_t reused = sf_fiber.fiber_reuses;
  const double reuse_rate =
      created + reused == 0
          ? 0.0
          : static_cast<double>(reused) / static_cast<double>(created + reused);

  // Same launch with telemetry capture on: the traced-vs-untraced pair
  // quantifies the profiler's per-launch cost (spans + counter folds).
  // The untraced pass above already exercised the zero-overhead-off
  // path (one relaxed atomic load per launch).
  simt::Profiler::instance().start();
  for (int i = 0; i < warm; ++i) dev.launch_sync(p, [] {});
  double t0 = now_ms();
  for (int i = 0; i < iters; ++i) dev.launch_sync(p, [] {});
  const double traced_ms = (now_ms() - t0) / iters;
  simt::Profiler::instance().stop();
  simt::Profiler::instance().reset();

  // Barrier-heavy launch: the ready-queue batch-drain path. The
  // convergent row starts with a clean hint registry, so its first
  // launch pays one deflation probe, note_exec_deflation pins
  // needs_fibers, and every later launch routes straight to fibers —
  // the row demonstrates parity, not speedup.
  p.name = "json_barrier16";
  p.grid = {1};
  const int barriers = 16;
  auto barrier_kernel = [&] {
    auto& t = simt::this_thread();
    for (int i = 0; i < barriers; ++i) t.block->sync_threads(t);
  };
  const ExecRow bh_fiber = measure_exec(dev, p, simt::LaneExec::kFiber, warm,
                                        iters, barrier_kernel);
  simt::clear_exec_hints();
  const ExecRow bh_conv = measure_exec(dev, p, simt::LaneExec::kConvergent,
                                       warm, iters, barrier_kernel);

  // Atomics-only kernel, three ways. Fibers; convergent without a hint
  // (the first atomic deflates each block's lane loop and pins
  // needs_fibers — parity, like the barrier row); and convergent under
  // the ompx-analyze verdict "convergent, atomics inline-safe", where
  // note_atomic runs the RMW inline in the lane loop: zero fibers,
  // zero deflations. The hint is not hand-written — register_exec_hints
  // runs the analyzer over the kernel's own source.
  p.name = "json_atomic";
  p.grid = {16};
  std::uint64_t atomic_cell = 0;
  auto atomic_kernel = [&] {
    simt::atomic_add(&atomic_cell, std::uint64_t{1});
  };
  const ExecRow at_fiber = measure_exec(dev, p, simt::LaneExec::kFiber, warm,
                                        iters, atomic_kernel);
  simt::clear_exec_hints();
  const ExecRow at_deflate = measure_exec(dev, p, simt::LaneExec::kConvergent,
                                          warm, iters, atomic_kernel);
  simt::clear_exec_hints();
  const int hinted = ompx::register_exec_hints(R"(
    p.name = "json_atomic";
    dev.launch_sync(p, [&] {
      simt::atomic_add(&atomic_cell, std::uint64_t{1});
    });
  )");
  const ExecRow at_inline = measure_exec(dev, p, simt::LaneExec::kConvergent,
                                         warm, iters, atomic_kernel);

  // Sanitizer-off overhead: the same shared-memory traffic through the
  // instrumented accessors (ompx::san) vs raw pointers, sanitizer
  // disabled. The instrumented path must cost one relaxed atomic load
  // per access — the pair below is the evidence.
  p.name = "json_san_off";
  p.grid = {16};
  p.mode = simt::ExecMode::kCooperative;
  const int rounds = 32;
  auto raw_kernel = [&] {
    auto& t = simt::this_thread();
    auto* tile = static_cast<double*>(
        t.block->shared_alloc(t, 256 * sizeof(double), alignof(double)));
    double acc = 0.0;
    for (int r = 0; r < rounds; ++r) {
      tile[t.flat_tid] = static_cast<double>(t.flat_tid + r);
      acc += tile[t.flat_tid];
    }
    benchmark::DoNotOptimize(acc);
  };
  auto checked_kernel = [&] {
    auto tile = ompx::san::shared_array<double>(256);
    auto& t = simt::this_thread();
    double acc = 0.0;
    for (int r = 0; r < rounds; ++r) {
      tile[t.flat_tid] = static_cast<double>(t.flat_tid + r);
      acc += tile[t.flat_tid];
    }
    benchmark::DoNotOptimize(acc);
  };
  for (int i = 0; i < warm; ++i) dev.launch_sync(p, raw_kernel);
  t0 = now_ms();
  for (int i = 0; i < iters; ++i) dev.launch_sync(p, raw_kernel);
  const double raw_ms = (now_ms() - t0) / iters;
  for (int i = 0; i < warm; ++i) dev.launch_sync(p, checked_kernel);
  t0 = now_ms();
  for (int i = 0; i < iters; ++i) dev.launch_sync(p, checked_kernel);
  const double checked_ms = (now_ms() - t0) / iters;

  // Async engine: a launch-bound iteration (16 tiny kernels, the Adam /
  // Stencil-1D shape) submitted three ways. (a) uncaptured async
  // launches — each submission pays validation, exec-policy lookup,
  // record assembly and a launch-log push; (b) graph replay — the same
  // 16 kernels captured once, instantiated, then re-issued as a single
  // stream op whose nodes skip all per-launch setup; (c) the same op
  // count split across two independent streams to show real host-side
  // overlap from the worker pool.
  simt::Device adev(simt::make_sim_a100_config());
  simt::LaunchParams ap;
  ap.grid = {1};
  ap.block = {64};
  ap.mode = simt::ExecMode::kDirect;
  ap.name = "json_async";
  constexpr int kChain = 16;   // launches per iteration
  constexpr int kReps = 200;   // iterations per timed pass
  simt::Stream& as = adev.default_stream();
  for (int i = 0; i < kChain; ++i) as.launch(ap, [] {});  // warm
  as.synchronize();
  t0 = now_ms();
  for (int r = 0; r < kReps; ++r)
    for (int i = 0; i < kChain; ++i) as.launch(ap, [] {});
  as.synchronize();
  const double async_ms = now_ms() - t0;
  const double async_launches_s = kChain * kReps / (async_ms / 1000.0);

  as.begin_capture();
  for (int i = 0; i < kChain; ++i) as.launch(ap, [] {});
  std::unique_ptr<simt::Graph> graph = as.end_capture();
  graph->instantiate();
  as.launch_graph(*graph);  // warm
  as.synchronize();
  t0 = now_ms();
  for (int r = 0; r < kReps; ++r) as.launch_graph(*graph);
  as.synchronize();
  const double replay_ms = now_ms() - t0;
  const double replay_launches_s = kChain * kReps / (replay_ms / 1000.0);

  // Overlap: N ops through one stream vs N/2 + N/2 through two
  // independent streams. Under a worker pool with >= 2 workers the
  // two-stream wall time must be well under the serialized time.
  simt::Stream* s1 = adev.create_stream();
  simt::Stream* s2 = adev.create_stream();
  auto spin_kernel = [] {
    volatile unsigned acc = 0;
    for (int i = 0; i < 20000; ++i) acc += static_cast<unsigned>(i);
  };
  constexpr int kOverlapOps = 64;
  for (int i = 0; i < 4; ++i) s1->launch(ap, spin_kernel);  // warm
  s1->synchronize();
  t0 = now_ms();
  for (int i = 0; i < kOverlapOps; ++i) s1->launch(ap, spin_kernel);
  s1->synchronize();
  const double one_stream_ms = now_ms() - t0;
  t0 = now_ms();
  for (int i = 0; i < kOverlapOps / 2; ++i) {
    s1->launch(ap, spin_kernel);
    s2->launch(ap, spin_kernel);
  }
  s1->synchronize();
  s2->synchronize();
  const double two_stream_ms = now_ms() - t0;

  // Work-stealing block distribution: many blocks, several workers.
  simt::EngineOptions multi;
  multi.workers = 4;
  simt::Device dev4(simt::make_sim_a100_config(), multi);
  p.name = "json_steal";
  p.grid = {1024};
  p.mode = simt::ExecMode::kDirect;
  const simt::LaunchRecord steal_rec = dev4.launch_sync(p, [] {});

  std::string out;
  char buf[1024];
  // ns_per_thread divides the whole launch (dispatch + scheduling +
  // kernel body) evenly over its threads — the per-lane engine tax.
  auto exec_rows = [&](const ExecRow& fiber, const ExecRow& conv,
                       double threads) {
    std::snprintf(
        buf, sizeof buf,
        "    \"fiber\": {\n"
        "      \"ms_per_launch\": %.3f,\n"
        "      \"launches_per_s\": %.0f,\n"
        "      \"ns_per_thread\": %.1f\n"
        "    },\n"
        "    \"convergent\": {\n"
        "      \"ms_per_launch\": %.3f,\n"
        "      \"launches_per_s\": %.0f,\n"
        "      \"ns_per_thread\": %.1f,\n"
        "      \"lane_loops\": %llu,\n"
        "      \"deflations\": %llu,\n"
        "      \"speedup_vs_fiber\": %.2f\n"
        "    },\n",
        fiber.ms_per_launch, 1000.0 / fiber.ms_per_launch,
        fiber.ms_per_launch * 1e6 / threads, conv.ms_per_launch,
        1000.0 / conv.ms_per_launch, conv.ms_per_launch * 1e6 / threads,
        static_cast<unsigned long long>(conv.lane_loops),
        static_cast<unsigned long long>(conv.deflations),
        fiber.ms_per_launch / conv.ms_per_launch);
    out += buf;
  };
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"bench\": \"micro_engine\",\n"
                "  \"fiber_switch_ns\": %.1f,\n"
                "  \"sync_free\": {\n"
                "    \"grid\": 16, \"block\": 256, \"workers\": 1, "
                "\"threads\": 4096,\n",
                switch_ns);
  out += buf;
  exec_rows(sf_fiber, sf_conv, sync_threads);
  std::snprintf(
      buf, sizeof buf,
      "    \"fibers_created\": %llu,\n"
      "    \"fiber_reuses\": %llu,\n"
      "    \"fiber_reuse_rate\": %.4f\n"
      "  },\n",
      static_cast<unsigned long long>(created),
      static_cast<unsigned long long>(reused), reuse_rate);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"trace_overhead\": {\n"
      "    \"grid\": 16, \"block\": 256, \"workers\": 1,\n"
      "    \"ms_per_launch_untraced\": %.3f,\n"
      "    \"ms_per_launch_traced\": %.3f\n"
      "  },\n"
      "  \"barrier_heavy\": {\n"
      "    \"grid\": 1, \"block\": 256, \"barriers\": %d, \"threads\": 256,\n",
      sync_free_ms, traced_ms, barriers);
  out += buf;
  exec_rows(bh_fiber, bh_conv, 256.0);
  std::snprintf(
      buf, sizeof buf,
      "    \"note\": \"convergent deflates once, learns needs_fibers, then "
      "matches fiber\"\n"
      "  },\n"
      "  \"atomic_inline\": {\n"
      "    \"grid\": 16, \"block\": 256, \"threads\": 4096,\n"
      "    \"hints_registered\": %d,\n",
      hinted);
  out += buf;
  exec_rows(at_fiber, at_deflate, sync_threads);
  std::snprintf(
      buf, sizeof buf,
      "    \"convergent_hinted\": {\n"
      "      \"ms_per_launch\": %.3f,\n"
      "      \"launches_per_s\": %.0f,\n"
      "      \"ns_per_thread\": %.1f,\n"
      "      \"lane_loops\": %llu,\n"
      "      \"deflations\": %llu,\n"
      "      \"speedup_vs_fiber\": %.2f\n"
      "    },\n"
      "    \"note\": \"hint comes from register_exec_hints over the kernel "
      "source: atomics run inline, no fibers, no deflations\"\n"
      "  },\n",
      at_inline.ms_per_launch, 1000.0 / at_inline.ms_per_launch,
      at_inline.ms_per_launch * 1e6 / sync_threads,
      static_cast<unsigned long long>(at_inline.lane_loops),
      static_cast<unsigned long long>(at_inline.deflations),
      at_fiber.ms_per_launch / at_inline.ms_per_launch);
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  \"san_overhead\": {\n"
      "    \"grid\": 16, \"block\": 256, \"rounds\": %d, \"san\": \"off\",\n"
      "    \"ms_per_launch_raw\": %.3f,\n"
      "    \"ms_per_launch_checked\": %.3f\n"
      "  },\n"
      "  \"work_stealing\": {\n"
      "    \"grid\": 1024, \"block\": 256, \"workers\": 4,\n"
      "    \"steals\": %llu\n"
      "  },\n"
      "  \"engine_async\": {\n"
      "    \"grid\": %llu, \"block\": %llu, \"chain\": %d,"
      " \"stream_workers\": %u,\n"
      "    \"async_launches_per_s\": %.0f,\n"
      "    \"graph_replay_launches_per_s\": %.0f,\n"
      "    \"replay_speedup\": %.2f,\n"
      "    \"one_stream_ms\": %.3f,\n"
      "    \"two_stream_ms\": %.3f,\n"
      "    \"overlap_ratio\": %.3f\n"
      "  }\n"
      "}\n",
      rounds, raw_ms, checked_ms,
      static_cast<unsigned long long>(steal_rec.stats.sched_steals),
      static_cast<unsigned long long>(ap.grid.count()),
      static_cast<unsigned long long>(ap.block.count()), kChain,
      adev.stream_worker_count(), async_launches_s, replay_launches_s,
      replay_launches_s / async_launches_s, one_stream_ms, two_stream_ms,
      two_stream_ms / one_stream_ms);
  out += buf;

  if (path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_engine: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return emit_json("");
    if (std::strncmp(argv[i], "--json=", 7) == 0) return emit_json(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
