// Host-side microbenchmarks of the SIMT engine itself (google-benchmark,
// real wall time): fiber switch cost, barrier rendezvous, warp
// collectives, direct-vs-cooperative launch overhead, stream dispatch.
// These justify the engine design choices DESIGN.md documents (custom
// asm context switch, direct mode, stack pooling).
#include <benchmark/benchmark.h>

#include "core/ompx.h"
#include "simt/simt.h"

namespace {

void BM_FiberCreateResume(benchmark::State& state) {
  simt::FiberStackPool pool;
  for (auto _ : state) {
    simt::Fiber f(pool, [] {});
    f.resume();
  }
}
BENCHMARK(BM_FiberCreateResume);

void BM_FiberSwitchPingPong(benchmark::State& state) {
  simt::FiberStackPool pool;
  bool stop = false;
  simt::Fiber f(pool, [&] {
    while (!stop) simt::Fiber::current()->yield();
  });
  for (auto _ : state) f.resume();  // one switch in, one out
  stop = true;
  f.resume();
}
BENCHMARK(BM_FiberSwitchPingPong);

void BM_DirectLaunchPerThread(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {static_cast<unsigned>(state.range(0))};
  p.block = {256};
  p.mode = simt::ExecMode::kDirect;
  p.name = "bm_direct";
  for (auto _ : state) dev.launch_sync(p, [] {});
  state.SetItemsProcessed(state.iterations() * p.grid.count() *
                          p.block.count());
}
BENCHMARK(BM_DirectLaunchPerThread)->Arg(16)->Arg(256);

void BM_CooperativeLaunchPerThread(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {static_cast<unsigned>(state.range(0))};
  p.block = {256};
  p.name = "bm_coop";
  for (auto _ : state) dev.launch_sync(p, [] {});
  state.SetItemsProcessed(state.iterations() * p.grid.count() *
                          p.block.count());
}
BENCHMARK(BM_CooperativeLaunchPerThread)->Arg(16)->Arg(256);

void BM_BlockBarrier(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  const int barriers = 16;
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {static_cast<unsigned>(state.range(0))};
  p.name = "bm_barrier";
  for (auto _ : state) {
    dev.launch_sync(p, [&] {
      auto& t = simt::this_thread();
      for (int i = 0; i < barriers; ++i) t.block->sync_threads(t);
    });
  }
  state.SetItemsProcessed(state.iterations() * barriers);
}
BENCHMARK(BM_BlockBarrier)->Arg(32)->Arg(256);

void BM_WarpShuffle(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  const int rounds = 64;
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {32};
  p.name = "bm_shfl";
  for (auto _ : state) {
    dev.launch_sync(p, [&] {
      auto& t = simt::this_thread();
      std::uint64_t v = t.lane;
      for (int i = 0; i < rounds; ++i)
        v = t.warp->collective(t, simt::WarpOp::kShflXor, v, 1, ~0ull);
      benchmark::DoNotOptimize(v);
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds);
}
BENCHMARK(BM_WarpShuffle);

void BM_StreamDispatch(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.mode = simt::ExecMode::kDirect;
  p.name = "bm_stream";
  simt::Stream& s = dev.default_stream();
  for (auto _ : state) {
    s.launch(p, [] {});
    s.synchronize();
  }
}
BENCHMARK(BM_StreamDispatch);

void BM_MappingEnterExit(benchmark::State& state) {
  simt::Device dev(simt::make_sim_a100_config());
  omp::MappingTable table(dev);
  std::vector<char> host(1 << 16);
  for (auto _ : state) {
    table.enter(omp::map_tofrom(host.data(), host.size()));
    table.exit(omp::map_tofrom(host.data(), host.size()));
  }
}
BENCHMARK(BM_MappingEnterExit);

}  // namespace

BENCHMARK_MAIN();
