// Regenerates Figure 8c (NVIDIA) and 8i (AMD): SU3.
#include <cstdio>

#include "fig8_common.h"

int main(int argc, char** argv) {
  bench::TraceGuard trace(argc, argv, "fig8_su3_trace.json");
  bench::SanGuard san(argc, argv);
  bench::ShardGuard shard(argc, argv);
  bench::FaultGuard fault(argc, argv);
  bench::run_fig8({
      "SU3", "8c", "8i",
      "on the A100 ompx lags cuda by ~9% (24 vs 26 registers; 3.9 KiB vs "
      "29 KiB device binary); on the MI250 ompx outperforms hip by ~28%; "
      "ompx beats omp on both systems (§4.2.3)"});
  if (bench::graph_flag(argc, argv))
    std::printf("--graph: SU3 is a single-launch benchmark; nothing to "
                "capture. See fig8_adam / fig8_stencil1d for the "
                "capture/replay demos.\n");
  return 0;
}
