# Empty compiler generated dependencies file for blas_portable.
# This may be replaced when dependencies are built.
