file(REMOVE_RECURSE
  "CMakeFiles/blas_portable.dir/blas_portable.cpp.o"
  "CMakeFiles/blas_portable.dir/blas_portable.cpp.o.d"
  "blas_portable"
  "blas_portable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas_portable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
