file(REMOVE_RECURSE
  "CMakeFiles/simt_style.dir/simt_style.cpp.o"
  "CMakeFiles/simt_style.dir/simt_style.cpp.o.d"
  "simt_style"
  "simt_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
