# Empty compiler generated dependencies file for simt_style.
# This may be replaced when dependencies are built.
