
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/simt_style.cpp" "examples/CMakeFiles/simt_style.dir/simt_style.cpp.o" "gcc" "examples/CMakeFiles/simt_style.dir/simt_style.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ompx.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/omp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
