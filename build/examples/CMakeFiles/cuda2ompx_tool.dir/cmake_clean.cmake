file(REMOVE_RECURSE
  "CMakeFiles/cuda2ompx_tool.dir/cuda2ompx_tool.cpp.o"
  "CMakeFiles/cuda2ompx_tool.dir/cuda2ompx_tool.cpp.o.d"
  "cuda2ompx_tool"
  "cuda2ompx_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda2ompx_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
