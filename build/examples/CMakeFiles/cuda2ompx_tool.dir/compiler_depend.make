# Empty compiler generated dependencies file for cuda2ompx_tool.
# This may be replaced when dependencies are built.
