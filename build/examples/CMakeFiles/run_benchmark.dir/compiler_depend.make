# Empty compiler generated dependencies file for run_benchmark.
# This may be replaced when dependencies are built.
