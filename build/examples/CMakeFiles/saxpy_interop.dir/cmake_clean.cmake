file(REMOVE_RECURSE
  "CMakeFiles/saxpy_interop.dir/saxpy_interop.cpp.o"
  "CMakeFiles/saxpy_interop.dir/saxpy_interop.cpp.o.d"
  "saxpy_interop"
  "saxpy_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saxpy_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
