# Empty dependencies file for saxpy_interop.
# This may be replaced when dependencies are built.
