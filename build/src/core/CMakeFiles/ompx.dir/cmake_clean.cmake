file(REMOVE_RECURSE
  "CMakeFiles/ompx.dir/ompx_device.cpp.o"
  "CMakeFiles/ompx.dir/ompx_device.cpp.o.d"
  "CMakeFiles/ompx.dir/ompx_host.cpp.o"
  "CMakeFiles/ompx.dir/ompx_host.cpp.o.d"
  "CMakeFiles/ompx.dir/ompx_launch.cpp.o"
  "CMakeFiles/ompx.dir/ompx_launch.cpp.o.d"
  "libompx.a"
  "libompx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
