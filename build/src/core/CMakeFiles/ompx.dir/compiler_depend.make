# Empty compiler generated dependencies file for ompx.
# This may be replaced when dependencies are built.
