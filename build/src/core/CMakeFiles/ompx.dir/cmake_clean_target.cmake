file(REMOVE_RECURSE
  "libompx.a"
)
