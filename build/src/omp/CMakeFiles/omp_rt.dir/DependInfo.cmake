
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omp/device_rt.cpp" "src/omp/CMakeFiles/omp_rt.dir/device_rt.cpp.o" "gcc" "src/omp/CMakeFiles/omp_rt.dir/device_rt.cpp.o.d"
  "/root/repo/src/omp/mapping.cpp" "src/omp/CMakeFiles/omp_rt.dir/mapping.cpp.o" "gcc" "src/omp/CMakeFiles/omp_rt.dir/mapping.cpp.o.d"
  "/root/repo/src/omp/target.cpp" "src/omp/CMakeFiles/omp_rt.dir/target.cpp.o" "gcc" "src/omp/CMakeFiles/omp_rt.dir/target.cpp.o.d"
  "/root/repo/src/omp/task.cpp" "src/omp/CMakeFiles/omp_rt.dir/task.cpp.o" "gcc" "src/omp/CMakeFiles/omp_rt.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
