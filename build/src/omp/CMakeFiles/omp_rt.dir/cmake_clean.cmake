file(REMOVE_RECURSE
  "CMakeFiles/omp_rt.dir/device_rt.cpp.o"
  "CMakeFiles/omp_rt.dir/device_rt.cpp.o.d"
  "CMakeFiles/omp_rt.dir/mapping.cpp.o"
  "CMakeFiles/omp_rt.dir/mapping.cpp.o.d"
  "CMakeFiles/omp_rt.dir/target.cpp.o"
  "CMakeFiles/omp_rt.dir/target.cpp.o.d"
  "CMakeFiles/omp_rt.dir/task.cpp.o"
  "CMakeFiles/omp_rt.dir/task.cpp.o.d"
  "libomp_rt.a"
  "libomp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
