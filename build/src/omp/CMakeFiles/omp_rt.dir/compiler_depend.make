# Empty compiler generated dependencies file for omp_rt.
# This may be replaced when dependencies are built.
