file(REMOVE_RECURSE
  "libomp_rt.a"
)
