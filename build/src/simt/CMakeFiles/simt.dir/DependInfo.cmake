
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/simt/fiber_switch_x86_64.S" "/root/repo/build/src/simt/CMakeFiles/simt.dir/fiber_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/block.cpp" "src/simt/CMakeFiles/simt.dir/block.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/block.cpp.o.d"
  "/root/repo/src/simt/device.cpp" "src/simt/CMakeFiles/simt.dir/device.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/device.cpp.o.d"
  "/root/repo/src/simt/fiber.cpp" "src/simt/CMakeFiles/simt.dir/fiber.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/fiber.cpp.o.d"
  "/root/repo/src/simt/memory.cpp" "src/simt/CMakeFiles/simt.dir/memory.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/memory.cpp.o.d"
  "/root/repo/src/simt/perf.cpp" "src/simt/CMakeFiles/simt.dir/perf.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/perf.cpp.o.d"
  "/root/repo/src/simt/shared_arena.cpp" "src/simt/CMakeFiles/simt.dir/shared_arena.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/shared_arena.cpp.o.d"
  "/root/repo/src/simt/stream.cpp" "src/simt/CMakeFiles/simt.dir/stream.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/stream.cpp.o.d"
  "/root/repo/src/simt/warp.cpp" "src/simt/CMakeFiles/simt.dir/warp.cpp.o" "gcc" "src/simt/CMakeFiles/simt.dir/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
