# Empty compiler generated dependencies file for simt.
# This may be replaced when dependencies are built.
