file(REMOVE_RECURSE
  "CMakeFiles/simt.dir/block.cpp.o"
  "CMakeFiles/simt.dir/block.cpp.o.d"
  "CMakeFiles/simt.dir/device.cpp.o"
  "CMakeFiles/simt.dir/device.cpp.o.d"
  "CMakeFiles/simt.dir/fiber.cpp.o"
  "CMakeFiles/simt.dir/fiber.cpp.o.d"
  "CMakeFiles/simt.dir/fiber_switch_x86_64.S.o"
  "CMakeFiles/simt.dir/memory.cpp.o"
  "CMakeFiles/simt.dir/memory.cpp.o.d"
  "CMakeFiles/simt.dir/perf.cpp.o"
  "CMakeFiles/simt.dir/perf.cpp.o.d"
  "CMakeFiles/simt.dir/shared_arena.cpp.o"
  "CMakeFiles/simt.dir/shared_arena.cpp.o.d"
  "CMakeFiles/simt.dir/stream.cpp.o"
  "CMakeFiles/simt.dir/stream.cpp.o.d"
  "CMakeFiles/simt.dir/warp.cpp.o"
  "CMakeFiles/simt.dir/warp.cpp.o.d"
  "libsimt.a"
  "libsimt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
