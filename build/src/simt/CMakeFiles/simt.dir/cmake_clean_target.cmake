file(REMOVE_RECURSE
  "libsimt.a"
)
