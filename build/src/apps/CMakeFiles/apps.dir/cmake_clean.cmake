file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/adam/versions.cpp.o"
  "CMakeFiles/apps.dir/adam/versions.cpp.o.d"
  "CMakeFiles/apps.dir/aidw/versions.cpp.o"
  "CMakeFiles/apps.dir/aidw/versions.cpp.o.d"
  "CMakeFiles/apps.dir/cli.cpp.o"
  "CMakeFiles/apps.dir/cli.cpp.o.d"
  "CMakeFiles/apps.dir/harness.cpp.o"
  "CMakeFiles/apps.dir/harness.cpp.o.d"
  "CMakeFiles/apps.dir/rsbench/data.cpp.o"
  "CMakeFiles/apps.dir/rsbench/data.cpp.o.d"
  "CMakeFiles/apps.dir/rsbench/versions.cpp.o"
  "CMakeFiles/apps.dir/rsbench/versions.cpp.o.d"
  "CMakeFiles/apps.dir/stencil1d/versions.cpp.o"
  "CMakeFiles/apps.dir/stencil1d/versions.cpp.o.d"
  "CMakeFiles/apps.dir/su3/versions.cpp.o"
  "CMakeFiles/apps.dir/su3/versions.cpp.o.d"
  "CMakeFiles/apps.dir/xsbench/data.cpp.o"
  "CMakeFiles/apps.dir/xsbench/data.cpp.o.d"
  "CMakeFiles/apps.dir/xsbench/versions.cpp.o"
  "CMakeFiles/apps.dir/xsbench/versions.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
