
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adam/versions.cpp" "src/apps/CMakeFiles/apps.dir/adam/versions.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/adam/versions.cpp.o.d"
  "/root/repo/src/apps/aidw/versions.cpp" "src/apps/CMakeFiles/apps.dir/aidw/versions.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/aidw/versions.cpp.o.d"
  "/root/repo/src/apps/cli.cpp" "src/apps/CMakeFiles/apps.dir/cli.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/cli.cpp.o.d"
  "/root/repo/src/apps/harness.cpp" "src/apps/CMakeFiles/apps.dir/harness.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/harness.cpp.o.d"
  "/root/repo/src/apps/rsbench/data.cpp" "src/apps/CMakeFiles/apps.dir/rsbench/data.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/rsbench/data.cpp.o.d"
  "/root/repo/src/apps/rsbench/versions.cpp" "src/apps/CMakeFiles/apps.dir/rsbench/versions.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/rsbench/versions.cpp.o.d"
  "/root/repo/src/apps/stencil1d/versions.cpp" "src/apps/CMakeFiles/apps.dir/stencil1d/versions.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/stencil1d/versions.cpp.o.d"
  "/root/repo/src/apps/su3/versions.cpp" "src/apps/CMakeFiles/apps.dir/su3/versions.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/su3/versions.cpp.o.d"
  "/root/repo/src/apps/xsbench/data.cpp" "src/apps/CMakeFiles/apps.dir/xsbench/data.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/xsbench/data.cpp.o.d"
  "/root/repo/src/apps/xsbench/versions.cpp" "src/apps/CMakeFiles/apps.dir/xsbench/versions.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/xsbench/versions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/simt.dir/DependInfo.cmake"
  "/root/repo/build/src/kl/CMakeFiles/kl.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/omp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ompx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
