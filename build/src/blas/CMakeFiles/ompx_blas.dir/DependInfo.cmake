
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/ompx_blas.cpp" "src/blas/CMakeFiles/ompx_blas.dir/ompx_blas.cpp.o" "gcc" "src/blas/CMakeFiles/ompx_blas.dir/ompx_blas.cpp.o.d"
  "/root/repo/src/blas/vendor_nv.cpp" "src/blas/CMakeFiles/ompx_blas.dir/vendor_nv.cpp.o" "gcc" "src/blas/CMakeFiles/ompx_blas.dir/vendor_nv.cpp.o.d"
  "/root/repo/src/blas/vendor_roc.cpp" "src/blas/CMakeFiles/ompx_blas.dir/vendor_roc.cpp.o" "gcc" "src/blas/CMakeFiles/ompx_blas.dir/vendor_roc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simt/CMakeFiles/simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
