file(REMOVE_RECURSE
  "CMakeFiles/ompx_blas.dir/ompx_blas.cpp.o"
  "CMakeFiles/ompx_blas.dir/ompx_blas.cpp.o.d"
  "CMakeFiles/ompx_blas.dir/vendor_nv.cpp.o"
  "CMakeFiles/ompx_blas.dir/vendor_nv.cpp.o.d"
  "CMakeFiles/ompx_blas.dir/vendor_roc.cpp.o"
  "CMakeFiles/ompx_blas.dir/vendor_roc.cpp.o.d"
  "libompx_blas.a"
  "libompx_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ompx_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
