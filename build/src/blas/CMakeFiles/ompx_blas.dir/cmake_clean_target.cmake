file(REMOVE_RECURSE
  "libompx_blas.a"
)
