# Empty dependencies file for ompx_blas.
# This may be replaced when dependencies are built.
