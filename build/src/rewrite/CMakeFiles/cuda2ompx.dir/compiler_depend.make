# Empty compiler generated dependencies file for cuda2ompx.
# This may be replaced when dependencies are built.
