file(REMOVE_RECURSE
  "CMakeFiles/cuda2ompx.dir/cuda2ompx.cpp.o"
  "CMakeFiles/cuda2ompx.dir/cuda2ompx.cpp.o.d"
  "libcuda2ompx.a"
  "libcuda2ompx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda2ompx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
