file(REMOVE_RECURSE
  "libcuda2ompx.a"
)
