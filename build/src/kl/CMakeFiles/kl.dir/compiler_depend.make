# Empty compiler generated dependencies file for kl.
# This may be replaced when dependencies are built.
