file(REMOVE_RECURSE
  "libkl.a"
)
