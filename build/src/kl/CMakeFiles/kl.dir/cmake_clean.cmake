file(REMOVE_RECURSE
  "CMakeFiles/kl.dir/kl.cpp.o"
  "CMakeFiles/kl.dir/kl.cpp.o.d"
  "libkl.a"
  "libkl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
