# Empty dependencies file for test_kl_constant.
# This may be replaced when dependencies are built.
