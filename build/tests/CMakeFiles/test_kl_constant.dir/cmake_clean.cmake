file(REMOVE_RECURSE
  "CMakeFiles/test_kl_constant.dir/kl/kl_constant_test.cpp.o"
  "CMakeFiles/test_kl_constant.dir/kl/kl_constant_test.cpp.o.d"
  "test_kl_constant"
  "test_kl_constant.pdb"
  "test_kl_constant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kl_constant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
