file(REMOVE_RECURSE
  "CMakeFiles/test_ompx_buffer.dir/core/ompx_buffer_test.cpp.o"
  "CMakeFiles/test_ompx_buffer.dir/core/ompx_buffer_test.cpp.o.d"
  "test_ompx_buffer"
  "test_ompx_buffer.pdb"
  "test_ompx_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompx_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
