# Empty dependencies file for test_simt_failure.
# This may be replaced when dependencies are built.
