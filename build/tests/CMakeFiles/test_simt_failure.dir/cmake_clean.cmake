file(REMOVE_RECURSE
  "CMakeFiles/test_simt_failure.dir/simt/failure_test.cpp.o"
  "CMakeFiles/test_simt_failure.dir/simt/failure_test.cpp.o.d"
  "test_simt_failure"
  "test_simt_failure.pdb"
  "test_simt_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
