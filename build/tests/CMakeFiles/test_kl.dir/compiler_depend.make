# Empty compiler generated dependencies file for test_kl.
# This may be replaced when dependencies are built.
