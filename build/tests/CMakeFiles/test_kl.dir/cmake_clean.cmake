file(REMOVE_RECURSE
  "CMakeFiles/test_kl.dir/kl/kl_test.cpp.o"
  "CMakeFiles/test_kl.dir/kl/kl_test.cpp.o.d"
  "test_kl"
  "test_kl.pdb"
  "test_kl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
