# Empty compiler generated dependencies file for test_simt_property.
# This may be replaced when dependencies are built.
