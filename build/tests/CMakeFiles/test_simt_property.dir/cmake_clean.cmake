file(REMOVE_RECURSE
  "CMakeFiles/test_simt_property.dir/simt/property_test.cpp.o"
  "CMakeFiles/test_simt_property.dir/simt/property_test.cpp.o.d"
  "test_simt_property"
  "test_simt_property.pdb"
  "test_simt_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
