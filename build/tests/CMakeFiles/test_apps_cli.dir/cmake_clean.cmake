file(REMOVE_RECURSE
  "CMakeFiles/test_apps_cli.dir/apps/cli_test.cpp.o"
  "CMakeFiles/test_apps_cli.dir/apps/cli_test.cpp.o.d"
  "test_apps_cli"
  "test_apps_cli.pdb"
  "test_apps_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
