# Empty compiler generated dependencies file for test_apps_cli.
# This may be replaced when dependencies are built.
