file(REMOVE_RECURSE
  "CMakeFiles/test_simt_stream.dir/simt/stream_test.cpp.o"
  "CMakeFiles/test_simt_stream.dir/simt/stream_test.cpp.o.d"
  "test_simt_stream"
  "test_simt_stream.pdb"
  "test_simt_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
