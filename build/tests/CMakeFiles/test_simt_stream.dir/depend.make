# Empty dependencies file for test_simt_stream.
# This may be replaced when dependencies are built.
