file(REMOVE_RECURSE
  "CMakeFiles/test_simt_stream_edge.dir/simt/stream_edge_test.cpp.o"
  "CMakeFiles/test_simt_stream_edge.dir/simt/stream_edge_test.cpp.o.d"
  "test_simt_stream_edge"
  "test_simt_stream_edge.pdb"
  "test_simt_stream_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_stream_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
