# Empty compiler generated dependencies file for test_simt_stream_edge.
# This may be replaced when dependencies are built.
