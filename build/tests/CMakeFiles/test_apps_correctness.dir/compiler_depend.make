# Empty compiler generated dependencies file for test_apps_correctness.
# This may be replaced when dependencies are built.
