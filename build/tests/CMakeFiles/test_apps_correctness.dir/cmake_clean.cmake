file(REMOVE_RECURSE
  "CMakeFiles/test_apps_correctness.dir/apps/apps_correctness_test.cpp.o"
  "CMakeFiles/test_apps_correctness.dir/apps/apps_correctness_test.cpp.o.d"
  "test_apps_correctness"
  "test_apps_correctness.pdb"
  "test_apps_correctness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
