# Empty compiler generated dependencies file for test_omp_target.
# This may be replaced when dependencies are built.
