file(REMOVE_RECURSE
  "CMakeFiles/test_omp_target.dir/omp/target_test.cpp.o"
  "CMakeFiles/test_omp_target.dir/omp/target_test.cpp.o.d"
  "test_omp_target"
  "test_omp_target.pdb"
  "test_omp_target[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
