# Empty dependencies file for test_ompx_host_api.
# This may be replaced when dependencies are built.
