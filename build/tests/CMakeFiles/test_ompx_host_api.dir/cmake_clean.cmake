file(REMOVE_RECURSE
  "CMakeFiles/test_ompx_host_api.dir/core/ompx_host_api_test.cpp.o"
  "CMakeFiles/test_ompx_host_api.dir/core/ompx_host_api_test.cpp.o.d"
  "test_ompx_host_api"
  "test_ompx_host_api.pdb"
  "test_ompx_host_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompx_host_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
