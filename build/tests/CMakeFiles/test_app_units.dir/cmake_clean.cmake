file(REMOVE_RECURSE
  "CMakeFiles/test_app_units.dir/apps/app_units_test.cpp.o"
  "CMakeFiles/test_app_units.dir/apps/app_units_test.cpp.o.d"
  "test_app_units"
  "test_app_units.pdb"
  "test_app_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
