# Empty dependencies file for test_app_units.
# This may be replaced when dependencies are built.
