# Empty compiler generated dependencies file for test_omp_mapping.
# This may be replaced when dependencies are built.
