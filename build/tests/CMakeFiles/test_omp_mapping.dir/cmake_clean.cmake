file(REMOVE_RECURSE
  "CMakeFiles/test_omp_mapping.dir/omp/mapping_test.cpp.o"
  "CMakeFiles/test_omp_mapping.dir/omp/mapping_test.cpp.o.d"
  "test_omp_mapping"
  "test_omp_mapping.pdb"
  "test_omp_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
