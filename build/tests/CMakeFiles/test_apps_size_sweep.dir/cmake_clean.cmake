file(REMOVE_RECURSE
  "CMakeFiles/test_apps_size_sweep.dir/apps/apps_size_sweep_test.cpp.o"
  "CMakeFiles/test_apps_size_sweep.dir/apps/apps_size_sweep_test.cpp.o.d"
  "test_apps_size_sweep"
  "test_apps_size_sweep.pdb"
  "test_apps_size_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
