# Empty compiler generated dependencies file for test_apps_size_sweep.
# This may be replaced when dependencies are built.
