file(REMOVE_RECURSE
  "CMakeFiles/test_cuda2ompx.dir/rewrite/cuda2ompx_test.cpp.o"
  "CMakeFiles/test_cuda2ompx.dir/rewrite/cuda2ompx_test.cpp.o.d"
  "test_cuda2ompx"
  "test_cuda2ompx.pdb"
  "test_cuda2ompx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuda2ompx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
