# Empty compiler generated dependencies file for test_cuda2ompx.
# This may be replaced when dependencies are built.
