# Empty dependencies file for test_simt_fiber.
# This may be replaced when dependencies are built.
