file(REMOVE_RECURSE
  "CMakeFiles/test_simt_fiber.dir/simt/fiber_test.cpp.o"
  "CMakeFiles/test_simt_fiber.dir/simt/fiber_test.cpp.o.d"
  "test_simt_fiber"
  "test_simt_fiber.pdb"
  "test_simt_fiber[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
