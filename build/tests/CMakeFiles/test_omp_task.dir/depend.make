# Empty dependencies file for test_omp_task.
# This may be replaced when dependencies are built.
