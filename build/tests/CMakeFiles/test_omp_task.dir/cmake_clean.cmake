file(REMOVE_RECURSE
  "CMakeFiles/test_omp_task.dir/omp/task_test.cpp.o"
  "CMakeFiles/test_omp_task.dir/omp/task_test.cpp.o.d"
  "test_omp_task"
  "test_omp_task.pdb"
  "test_omp_task[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
