file(REMOVE_RECURSE
  "CMakeFiles/test_xsbench_control.dir/apps/xsbench_control_test.cpp.o"
  "CMakeFiles/test_xsbench_control.dir/apps/xsbench_control_test.cpp.o.d"
  "test_xsbench_control"
  "test_xsbench_control.pdb"
  "test_xsbench_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xsbench_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
