# Empty compiler generated dependencies file for test_xsbench_control.
# This may be replaced when dependencies are built.
