file(REMOVE_RECURSE
  "CMakeFiles/test_simt_memory.dir/simt/memory_test.cpp.o"
  "CMakeFiles/test_simt_memory.dir/simt/memory_test.cpp.o.d"
  "test_simt_memory"
  "test_simt_memory.pdb"
  "test_simt_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
