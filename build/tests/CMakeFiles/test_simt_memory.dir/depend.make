# Empty dependencies file for test_simt_memory.
# This may be replaced when dependencies are built.
