file(REMOVE_RECURSE
  "CMakeFiles/test_ompx_capi.dir/core/ompx_capi_test.cpp.o"
  "CMakeFiles/test_ompx_capi.dir/core/ompx_capi_test.cpp.o.d"
  "test_ompx_capi"
  "test_ompx_capi.pdb"
  "test_ompx_capi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompx_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
