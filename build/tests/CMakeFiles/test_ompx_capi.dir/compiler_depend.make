# Empty compiler generated dependencies file for test_ompx_capi.
# This may be replaced when dependencies are built.
