# Empty dependencies file for test_ompx.
# This may be replaced when dependencies are built.
