file(REMOVE_RECURSE
  "CMakeFiles/test_ompx.dir/core/ompx_test.cpp.o"
  "CMakeFiles/test_ompx.dir/core/ompx_test.cpp.o.d"
  "test_ompx"
  "test_ompx.pdb"
  "test_ompx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ompx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
