# Empty dependencies file for test_simt_warp.
# This may be replaced when dependencies are built.
