file(REMOVE_RECURSE
  "CMakeFiles/test_simt_perf.dir/simt/perf_test.cpp.o"
  "CMakeFiles/test_simt_perf.dir/simt/perf_test.cpp.o.d"
  "test_simt_perf"
  "test_simt_perf.pdb"
  "test_simt_perf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
