# Empty dependencies file for test_omp_device_rt.
# This may be replaced when dependencies are built.
