file(REMOVE_RECURSE
  "CMakeFiles/test_omp_device_rt.dir/omp/device_rt_test.cpp.o"
  "CMakeFiles/test_omp_device_rt.dir/omp/device_rt_test.cpp.o.d"
  "test_omp_device_rt"
  "test_omp_device_rt.pdb"
  "test_omp_device_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp_device_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
