file(REMOVE_RECURSE
  "CMakeFiles/test_simt_workers.dir/simt/workers_test.cpp.o"
  "CMakeFiles/test_simt_workers.dir/simt/workers_test.cpp.o.d"
  "test_simt_workers"
  "test_simt_workers.pdb"
  "test_simt_workers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
