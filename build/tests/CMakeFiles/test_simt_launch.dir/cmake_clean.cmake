file(REMOVE_RECURSE
  "CMakeFiles/test_simt_launch.dir/simt/launch_test.cpp.o"
  "CMakeFiles/test_simt_launch.dir/simt/launch_test.cpp.o.d"
  "test_simt_launch"
  "test_simt_launch.pdb"
  "test_simt_launch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
