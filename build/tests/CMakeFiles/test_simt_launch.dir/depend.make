# Empty dependencies file for test_simt_launch.
# This may be replaced when dependencies are built.
