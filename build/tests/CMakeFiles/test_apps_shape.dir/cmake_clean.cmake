file(REMOVE_RECURSE
  "CMakeFiles/test_apps_shape.dir/apps/apps_shape_test.cpp.o"
  "CMakeFiles/test_apps_shape.dir/apps/apps_shape_test.cpp.o.d"
  "test_apps_shape"
  "test_apps_shape.pdb"
  "test_apps_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
