# Empty compiler generated dependencies file for test_apps_shape.
# This may be replaced when dependencies are built.
