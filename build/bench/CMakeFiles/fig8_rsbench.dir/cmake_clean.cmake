file(REMOVE_RECURSE
  "CMakeFiles/fig8_rsbench.dir/fig8_rsbench.cpp.o"
  "CMakeFiles/fig8_rsbench.dir/fig8_rsbench.cpp.o.d"
  "fig8_rsbench"
  "fig8_rsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
