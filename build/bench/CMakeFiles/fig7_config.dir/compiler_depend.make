# Empty compiler generated dependencies file for fig7_config.
# This may be replaced when dependencies are built.
