file(REMOVE_RECURSE
  "CMakeFiles/fig7_config.dir/fig7_config.cpp.o"
  "CMakeFiles/fig7_config.dir/fig7_config.cpp.o.d"
  "fig7_config"
  "fig7_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
