file(REMOVE_RECURSE
  "CMakeFiles/fig8_all.dir/fig8_all.cpp.o"
  "CMakeFiles/fig8_all.dir/fig8_all.cpp.o.d"
  "fig8_all"
  "fig8_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
