# Empty compiler generated dependencies file for fig8_all.
# This may be replaced when dependencies are built.
