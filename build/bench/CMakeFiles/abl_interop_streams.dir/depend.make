# Empty dependencies file for abl_interop_streams.
# This may be replaced when dependencies are built.
