file(REMOVE_RECURSE
  "CMakeFiles/abl_interop_streams.dir/abl_interop_streams.cpp.o"
  "CMakeFiles/abl_interop_streams.dir/abl_interop_streams.cpp.o.d"
  "abl_interop_streams"
  "abl_interop_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interop_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
