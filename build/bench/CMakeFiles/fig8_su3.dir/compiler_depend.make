# Empty compiler generated dependencies file for fig8_su3.
# This may be replaced when dependencies are built.
