file(REMOVE_RECURSE
  "CMakeFiles/abl_globalization.dir/abl_globalization.cpp.o"
  "CMakeFiles/abl_globalization.dir/abl_globalization.cpp.o.d"
  "abl_globalization"
  "abl_globalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_globalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
