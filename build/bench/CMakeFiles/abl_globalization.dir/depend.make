# Empty dependencies file for abl_globalization.
# This may be replaced when dependencies are built.
