file(REMOVE_RECURSE
  "CMakeFiles/abl_warp_primitives.dir/abl_warp_primitives.cpp.o"
  "CMakeFiles/abl_warp_primitives.dir/abl_warp_primitives.cpp.o.d"
  "abl_warp_primitives"
  "abl_warp_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_warp_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
