# Empty compiler generated dependencies file for abl_warp_primitives.
# This may be replaced when dependencies are built.
