file(REMOVE_RECURSE
  "CMakeFiles/abl_bare_overhead.dir/abl_bare_overhead.cpp.o"
  "CMakeFiles/abl_bare_overhead.dir/abl_bare_overhead.cpp.o.d"
  "abl_bare_overhead"
  "abl_bare_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bare_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
