# Empty dependencies file for abl_bare_overhead.
# This may be replaced when dependencies are built.
