file(REMOVE_RECURSE
  "CMakeFiles/fig8_xsbench.dir/fig8_xsbench.cpp.o"
  "CMakeFiles/fig8_xsbench.dir/fig8_xsbench.cpp.o.d"
  "fig8_xsbench"
  "fig8_xsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_xsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
