# Empty dependencies file for fig8_xsbench.
# This may be replaced when dependencies are built.
