# Empty compiler generated dependencies file for abl_model_sensitivity.
# This may be replaced when dependencies are built.
