file(REMOVE_RECURSE
  "CMakeFiles/abl_model_sensitivity.dir/abl_model_sensitivity.cpp.o"
  "CMakeFiles/abl_model_sensitivity.dir/abl_model_sensitivity.cpp.o.d"
  "abl_model_sensitivity"
  "abl_model_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_model_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
