# Empty dependencies file for fig8_adam.
# This may be replaced when dependencies are built.
