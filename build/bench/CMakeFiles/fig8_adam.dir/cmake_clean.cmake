file(REMOVE_RECURSE
  "CMakeFiles/fig8_adam.dir/fig8_adam.cpp.o"
  "CMakeFiles/fig8_adam.dir/fig8_adam.cpp.o.d"
  "fig8_adam"
  "fig8_adam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_adam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
