file(REMOVE_RECURSE
  "CMakeFiles/fig6_benchmarks.dir/fig6_benchmarks.cpp.o"
  "CMakeFiles/fig6_benchmarks.dir/fig6_benchmarks.cpp.o.d"
  "fig6_benchmarks"
  "fig6_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
