# Empty compiler generated dependencies file for fig6_benchmarks.
# This may be replaced when dependencies are built.
