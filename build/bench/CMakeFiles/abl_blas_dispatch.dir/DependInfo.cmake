
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_blas_dispatch.cpp" "bench/CMakeFiles/abl_blas_dispatch.dir/abl_blas_dispatch.cpp.o" "gcc" "bench/CMakeFiles/abl_blas_dispatch.dir/abl_blas_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ompx.dir/DependInfo.cmake"
  "/root/repo/build/src/kl/CMakeFiles/kl.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/omp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/simt/CMakeFiles/simt.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/ompx_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
