file(REMOVE_RECURSE
  "CMakeFiles/abl_blas_dispatch.dir/abl_blas_dispatch.cpp.o"
  "CMakeFiles/abl_blas_dispatch.dir/abl_blas_dispatch.cpp.o.d"
  "abl_blas_dispatch"
  "abl_blas_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_blas_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
