# Empty compiler generated dependencies file for abl_blas_dispatch.
# This may be replaced when dependencies are built.
