file(REMOVE_RECURSE
  "CMakeFiles/fig8_aidw.dir/fig8_aidw.cpp.o"
  "CMakeFiles/fig8_aidw.dir/fig8_aidw.cpp.o.d"
  "fig8_aidw"
  "fig8_aidw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_aidw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
