# Empty dependencies file for fig8_aidw.
# This may be replaced when dependencies are built.
