# Empty dependencies file for fig8_stencil1d.
# This may be replaced when dependencies are built.
