file(REMOVE_RECURSE
  "CMakeFiles/fig8_stencil1d.dir/fig8_stencil1d.cpp.o"
  "CMakeFiles/fig8_stencil1d.dir/fig8_stencil1d.cpp.o.d"
  "fig8_stencil1d"
  "fig8_stencil1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stencil1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
