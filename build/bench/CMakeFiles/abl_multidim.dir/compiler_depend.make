# Empty compiler generated dependencies file for abl_multidim.
# This may be replaced when dependencies are built.
