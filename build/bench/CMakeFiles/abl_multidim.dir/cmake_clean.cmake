file(REMOVE_RECURSE
  "CMakeFiles/abl_multidim.dir/abl_multidim.cpp.o"
  "CMakeFiles/abl_multidim.dir/abl_multidim.cpp.o.d"
  "abl_multidim"
  "abl_multidim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multidim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
