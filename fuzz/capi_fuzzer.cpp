// libFuzzer harness for the ompx_*/kl* C ABI error contract.
//
// The fuzzer drives bounded random call sequences — including calls on
// destroyed handles, null out-params, bad indices, and calls inside
// armed fault windows — and asserts nothing: the contract under test
// is "no crash, no hang, no sanitizer report, whatever the sequence".
// Every input ends with full cleanup so leaks are real leaks.
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ompx.h"
#include "kl/kl.h"

using namespace kl;

namespace {

// Deterministic byte stream reader.
struct Input {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t next() { return pos < size ? data[pos++] : 0; }
  bool done() const { return pos >= size; }
};

void noop_kernel(void*) {}

// Small deterministic fault specs; the fuzzer arms them mid-sequence.
// Stall durations are kept to 1 ms so inputs stay fast.
const char* const kFaultSpecs[] = {
    "oom",
    "oom:after=1",
    "oom:every=2",
    "oom:p=0.5,seed=7",
    "host_oom:every=3",
    "stall:ms=1,every=4",
    "peer",
    "graph:after=0",
    "device_lost:after=2",
    "oom:every=2;graph;host_oom:after=1",
};

constexpr std::size_t kMaxOps = 64;
constexpr std::size_t kMaxStreams = 4;
constexpr std::size_t kMaxBuffers = 8;
constexpr std::size_t kMaxClients = 3;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  Input in{data, size};

  std::vector<ompx_stream_t> streams;
  std::vector<ompx_stream_t> dead_streams;  // destroyed, still probed
  std::vector<ompx_event_t> events;
  std::vector<ompx_event_t> dead_events;
  std::vector<ompx_graph_t> graphs;
  std::vector<void*> buffers;
  // malloc_async blocks kept live past the call, paired with the
  // stream that owns them — the substrate for cross-API free probes.
  std::vector<std::pair<void*, ompx_stream_t>> async_buffers;
  std::vector<ompx_client_t> clients;

  auto pick = [&](auto& v) -> decltype(v.front()) {
    return v[in.next() % v.size()];
  };

  for (std::size_t op = 0; op < kMaxOps && !in.done(); ++op) {
    switch (in.next() % 28) {
      case 0:  // small device allocation (may fail under oom faults)
        if (buffers.size() < kMaxBuffers) {
          void* p = ompx_malloc(16 + in.next() * 8);
          if (p != nullptr) buffers.push_back(p);
        }
        break;
      case 1:
        if (!buffers.empty()) {
          const std::size_t i = in.next() % buffers.size();
          (void)ompx_free(buffers[i]);
          buffers.erase(buffers.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      case 2:
        if (buffers.size() >= 2)
          (void)ompx_memcpy(pick(buffers), pick(buffers), 8);
        break;
      case 3:
        if (!buffers.empty())
          (void)ompx_memset(pick(buffers), in.next(), 16);
        break;
      case 4:
        if (streams.size() < kMaxStreams) {
          ompx_stream_t s = ompx_stream_create();
          if (s != nullptr) streams.push_back(s);
        }
        break;
      case 5:
        if (!streams.empty()) {
          const std::size_t i = in.next() % streams.size();
          if (ompx_stream_destroy(streams[i]) == OMPX_SUCCESS)
            dead_streams.push_back(streams[i]);
          streams.erase(streams.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      case 6:
        if (!streams.empty()) (void)ompx_stream_synchronize(pick(streams));
        break;
      case 7:  // use-after-destroy probes: must fail cleanly, never crash
        if (!dead_streams.empty()) {
          ompx_stream_t s = pick(dead_streams);
          (void)ompx_stream_synchronize(s);
          (void)ompx_stream_begin_capture(s);
          (void)ompx_stream_is_capturing(s);
          (void)ompx_stream_destroy(s);
        }
        break;
      case 8:
        if (!streams.empty() && !buffers.empty())
          (void)ompx_memset_async(pick(buffers), in.next(), 8, pick(streams));
        break;
      case 9:
        if (!streams.empty()) {
          ompx_stream_t s = pick(streams);
          void* p = ompx_malloc_async(32 + in.next(), s);
          if (p != nullptr) (void)ompx_free_async(p, s);
        }
        break;
      case 10:
        if (!streams.empty()) (void)ompx_stream_begin_capture(pick(streams));
        break;
      case 11:
        if (!streams.empty()) {
          ompx_graph_t g = nullptr;
          if (ompx_stream_end_capture(pick(streams), &g) == OMPX_SUCCESS &&
              g != nullptr)
            graphs.push_back(g);
        }
        break;
      case 12:
        if (!graphs.empty()) (void)ompx_graph_instantiate(pick(graphs));
        break;
      case 13:
        if (!graphs.empty() && !streams.empty())
          (void)ompx_graph_launch(pick(graphs), pick(streams));
        break;
      case 14:
        if (!graphs.empty()) {
          const std::size_t i = in.next() % graphs.size();
          ompx_graph_t g = graphs[i];
          (void)ompx_graph_destroy(g);
          graphs.erase(graphs.begin() + static_cast<std::ptrdiff_t>(i));
          // Double destroy and post-destroy enumeration probes.
          (void)ompx_graph_destroy(g);
          std::size_t n = 0;
          (void)ompx_graph_node_count(g, &n);
        }
        break;
      case 15:
        events.push_back(ompx_event_create());
        if (events.back() == nullptr) events.pop_back();
        break;
      case 16:
        if (!events.empty() && !streams.empty())
          (void)ompx_event_record(pick(events), pick(streams));
        break;
      case 17:
        if (!events.empty()) {
          const std::size_t i = in.next() % events.size();
          if (ompx_event_destroy(events[i]) == OMPX_SUCCESS)
            dead_events.push_back(events[i]);
          events.erase(events.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      case 18:
        if (!dead_events.empty()) {
          ompx_event_t e = pick(dead_events);
          (void)ompx_event_synchronize(e);
          (void)ompx_event_elapsed_ms(e, e);
        }
        break;
      case 19: {  // kl mirror calls, including bad indices
        void* p = nullptr;
        if (klMalloc(&p, 64 + in.next()) == klSuccess) (void)klFree(p);
        (void)klSetDevice(static_cast<int>(in.next()) - 2);
        (void)klSetDevice(0);
        break;
      }
      case 20:  // arm / rotate / disarm fault injection mid-sequence
        if (in.next() % 3 == 0)
          (void)ompx_fault_disable();
        else
          (void)ompx_fault_enable(
              kFaultSpecs[in.next() %
                          (sizeof kFaultSpecs / sizeof kFaultSpecs[0])]);
        break;
      case 21: {  // C-ABI kernel launch, null and non-null streams
        const unsigned grid[3] = {1u + in.next() % 4u, 1, 1};
        const unsigned block[3] = {32, 1, 1};
        (void)ompx_launch_kernel(
            &noop_kernel, nullptr, grid, block,
            streams.empty() ? nullptr : pick(streams));
        break;
      }
      case 22:  // introspection is always safe to call
        (void)ompx_result_string(
            static_cast<ompx_result_t>(in.next() % 12));
        (void)ompx_last_result_detail();
        (void)ompx_peek_last_result();
        (void)ompx_get_last_result();
        (void)klGetErrorString(static_cast<klError>(in.next() % 12));
        (void)klGetLastErrorDetail();
        (void)ompx_fault_active();
        (void)ompx_fault_injected_count();
        (void)ompx_get_watchdog_ms();
        (void)ompx_serve_quantum();
        {
          ompx_mempool_stats_t mp;
          (void)ompx_mempool_get_stats(static_cast<int>(in.next() % 3), &mp);
        }
        break;
      case 23:  // deliberate contract violations
        (void)ompx_memcpy(nullptr, nullptr, 8);
        (void)ompx_stream_synchronize(nullptr);
        (void)ompx_device_can_access_peer(nullptr, 0, 1);
        (void)ompx_graph_get_nodes(nullptr, nullptr, 0, nullptr);
        (void)ompx_device_reset(-1);
        (void)klEventElapsedTime(nullptr, nullptr, nullptr);
        break;
      case 24:  // async allocation kept live across later ops
        if (!streams.empty() && async_buffers.size() < kMaxBuffers) {
          ompx_stream_t s = pick(streams);
          void* p = ompx_malloc_async(32 + in.next(), s);
          if (p != nullptr) async_buffers.emplace_back(p, s);
        }
        break;
      case 25:  // mismatched-allocator frees: rejected, never corrupting
        if (!buffers.empty() && !streams.empty())
          (void)ompx_free_async(pick(buffers), pick(streams));
        if (!async_buffers.empty()) {
          const std::size_t i = in.next() % async_buffers.size();
          void* p = async_buffers[i].first;
          ompx_result_t r = OMPX_ERROR_UNKNOWN;
          switch (in.next() % 3) {
            case 0:  // plain frees of a stream-owned block
              r = ompx_free(p);
              (void)klFree(p);
              break;
            case 1:  // some stream (the owner only by luck)
              r = ompx_free_async(p, pick(streams));
              break;
            default:  // the documented path
              r = ompx_free_async(p, async_buffers[i].second);
              break;
          }
          if (r == OMPX_SUCCESS)
            async_buffers.erase(async_buffers.begin() +
                                static_cast<std::ptrdiff_t>(i));
        }
        break;
      case 26:  // serving clients: create / launch / alloc / destroy
        if (clients.size() < kMaxClients && in.next() % 2 == 0) {
          ompx_client_limits_t lim{};
          lim.memory_quota_bytes = 1u << (10u + in.next() % 6u);
          lim.max_pending = 1u + in.next() % 4u;
          lim.priority = static_cast<int>(in.next() % 3u);
          lim.weight = 1u + in.next() % 4u;
          ompx_client_t c =
              ompx_client_create(static_cast<int>(in.next() % 3u) - 1,
                                 in.next() % 2 ? &lim : nullptr);
          if (c != nullptr) clients.push_back(c);
        } else if (!clients.empty()) {
          const std::size_t i = in.next() % clients.size();
          (void)ompx_client_destroy(clients[i]);
          // Stale-handle probes after destroy: must fail cleanly.
          ompx_client_stats_t st;
          (void)ompx_client_get_stats(clients[i], &st);
          (void)ompx_client_synchronize(clients[i]);
          clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      case 27:  // client traffic (quota + admission rejections included)
        if (!clients.empty()) {
          ompx_client_t c = pick(clients);
          const unsigned grid[3] = {1u + in.next() % 8u, 1, 1};
          const unsigned block[3] = {32, 1, 1};
          if (in.next() % 2)
            (void)ompx_client_launch_kernel(c, &noop_kernel, nullptr, grid,
                                            block);
          else
            (void)ompx_client_launch_async(c, &noop_kernel, nullptr, grid,
                                           block);
          void* p = ompx_client_malloc(c, 64u + in.next() * 64u);
          if (p != nullptr && in.next() % 2) (void)ompx_client_free(c, p);
          // Leaked-on-purpose allocations are reclaimed by destroy.
          (void)ompx_serve_set_quantum(1u + in.next() % 64u);
        }
        break;
    }
  }

  // Teardown: disarm faults first so cleanup itself cannot be injected,
  // then recover lost devices and release every live handle.
  (void)ompx_fault_disable();
  (void)ompx_set_watchdog_ms(0.0);
  for (int d = 0; d < ompx_get_num_devices(); ++d) (void)ompx_device_reset(d);
  (void)ompx_set_device(0);
  for (ompx_graph_t g : graphs) (void)ompx_graph_destroy(g);
  for (ompx_event_t e : events) (void)ompx_event_destroy(e);
  for (ompx_stream_t s : streams) {
    // End any capture still open so destroy can drain the stream.
    if (ompx_stream_is_capturing(s)) {
      ompx_graph_t g = nullptr;
      if (ompx_stream_end_capture(s, &g) == OMPX_SUCCESS)
        (void)ompx_graph_destroy(g);
    }
    (void)ompx_stream_destroy(s);
  }
  for (void* p : buffers) (void)ompx_free(p);
  // Stream destroys above released the async-origin claims, so the
  // plain free is now the documented way to release survivors.
  for (auto& ab : async_buffers) (void)ompx_free(ab.first);
  // destroy_client reclaims whatever the traffic op leaked on purpose.
  for (ompx_client_t c : clients) (void)ompx_client_destroy(c);
  (void)ompx_device_synchronize();
  (void)ompx_get_last_result();
  (void)klGetLastError();
  return 0;
}
