// Failure-injection tests: the engine must convert misuse into precise
// diagnostics rather than hangs, corruption, or silent wrong answers.
#include <gtest/gtest.h>

#include <atomic>

#include "simt/simt.h"

namespace {

using namespace simt;

Device& fresh() {
  static Device dev{[] {
    DeviceConfig c = make_sim_a100_config();
    c.name = "failure-test";
    return c;
  }()};
  return dev;
}

TEST(Failure, EarlyExitWithExtraBarriersCompletes) {
  // Half the block syncs three times, half once then exits. The
  // exited-threads-release-barriers rule means this terminates (no
  // hang), matching kernel-language behaviour.
  LaunchParams p;
  p.grid = {1};
  p.block = {64};
  p.name = "divergent_barrier";
  std::atomic<int> done{0};
  fresh().launch_sync(p, [&] {
    auto& t = this_thread();
    if (t.thread_idx.x < 32) {
      t.block->sync_threads(t);
      t.block->sync_threads(t);
      t.block->sync_threads(t);
    } else {
      t.block->sync_threads(t);
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(Failure, AbandonedWarpCollectiveDiagnosed) {
  // One thread waits on a warp collective its partner never joins
  // (the partner exits instead): a precise error, not a hang.
  LaunchParams p;
  p.grid = {1};
  p.block = {64};
  p.name = "abandoned_collective";
  EXPECT_THROW(fresh().launch_sync(p,
                                   [] {
                                     auto& t = this_thread();
                                     if (t.flat_tid == 0) {
                                       t.warp->collective(
                                           t, WarpOp::kSync, 0, 0, 0b11);
                                     } else if (t.flat_tid >= 32) {
                                       t.block->sync_threads(t);
                                     }
                                   }),
               std::logic_error);
}

TEST(Failure, KernelExceptionCarriesMessage) {
  LaunchParams p;
  p.grid = {2};
  p.block = {8};
  p.name = "throwing";
  try {
    fresh().launch_sync(p, [] {
      if (this_thread().flat_tid == 3)
        throw std::runtime_error("element 3 went bad");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "element 3 went bad");
  }
}

TEST(Failure, DeviceStaysUsableAfterKernelThrow) {
  LaunchParams p;
  p.grid = {1};
  p.block = {4};
  p.name = "recover";
  EXPECT_THROW(fresh().launch_sync(p, [] { throw std::bad_alloc(); }),
               std::bad_alloc);
  std::atomic<int> n{0};
  fresh().launch_sync(p, [&] { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 4);
}

TEST(Failure, OutOfMemoryIsExactAndRecoverable) {
  DeviceConfig cfg = make_sim_a100_config();
  cfg.global_mem_bytes = 1 << 20;  // 1 MiB device
  Device dev(cfg);
  void* a = dev.memory().allocate(700 * 1024);
  EXPECT_THROW(dev.memory().allocate(400 * 1024), std::bad_alloc);
  // Exactly-fitting allocation after free works (no fragmentation lies).
  dev.memory().deallocate(a);
  void* b = dev.memory().allocate(1024 * 1024);
  EXPECT_NE(b, nullptr);
  dev.memory().deallocate(b);
}

TEST(Failure, SharedMemoryOverflowDiagnosed) {
  LaunchParams p;
  p.grid = {1};
  p.block = {32};
  p.name = "smem_overflow";
  EXPECT_THROW(fresh().launch_sync(p,
                                   [] {
                                     auto& t = this_thread();
                                     // 64 KiB request on a 48 KiB/block
                                     // device.
                                     t.block->shared_alloc(t, 64 * 1024, 16);
                                   }),
               std::bad_alloc);
}

TEST(Failure, WrongDynamicSmemRejectedBeforeExecution) {
  LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.dynamic_smem_bytes = 1 << 20;
  bool ran = false;
  EXPECT_THROW(fresh().launch_sync(p, [&] { ran = true; }),
               std::invalid_argument);
  EXPECT_FALSE(ran);  // validation precedes any thread execution
}

TEST(Failure, StreamSurvivesRepeatedAsyncErrors) {
  Device& dev = fresh();
  Stream& s = dev.default_stream();
  LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.name = "async_err";
  for (int round = 0; round < 3; ++round) {
    s.launch(p, [] { throw std::runtime_error("async boom"); });
    EXPECT_THROW(dev.synchronize(), std::runtime_error);
  }
  std::atomic<bool> ok{false};
  s.launch(p, [&] { ok.store(true); });
  dev.synchronize();
  EXPECT_TRUE(ok.load());
}

TEST(Failure, GridOfZeroBlocksRejected) {
  LaunchParams p;
  p.grid = {0};
  p.block = {32};
  EXPECT_THROW(fresh().launch_sync(p, [] {}), std::invalid_argument);
}

TEST(Failure, CollectiveFromHostContextThrows) {
  // Device-side APIs outside a kernel are a hard error, not UB.
  EXPECT_THROW(this_thread(), std::logic_error);
}

TEST(Failure, MismatchedSharedSequencesAcrossThreads) {
  LaunchParams p;
  p.grid = {1};
  p.block = {2};
  p.name = "shared_seq";
  EXPECT_THROW(
      fresh().launch_sync(p,
                          [] {
                            auto& t = this_thread();
                            if (t.flat_tid == 0) {
                              t.block->shared_alloc(t, 64, 8);
                              t.block->shared_alloc(t, 32, 8);
                            } else {
                              t.block->shared_alloc(t, 64, 8);
                              t.block->shared_alloc(t, 16, 8);  // diverges
                            }
                          }),
      std::logic_error);
}

}  // namespace
