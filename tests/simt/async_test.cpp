// Async execution & graph capture: the differential suite pinning the
// redesigned ticket-based launch API to the synchronous semantics it
// replaced.
//
//  - sync-vs-async differential over the six fig8 apps: checksums and
//    modeled kernel time must be bit-identical in both LaunchModes
//    (the async engine may reorder host work, never device results);
//  - ticket wait/query semantics of ompx::LaunchResult;
//  - stream-ordered allocator reuse accounting (C ABI surface);
//  - graph capture/replay equivalence against re-submitting the same
//    ops, node enumeration via the two-call idiom, use-after-destroy;
//  - stream destroy with in-flight ops, destroy-while-capturing.
//
// CI also runs this binary under TSan (-fsanitize=thread): the worker
// pool, tickets and the capture redirect must be clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/harness.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"
#include "core/ompx.h"
#include "simt/simt.h"

namespace {

using apps::Version;

/// Saves/restores the process-wide launch mode around each test.
class Async : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = ompx::launch_mode(); }
  void TearDown() override {
    ompx::set_launch_mode(saved_);
    simt::sim_a100().synchronize();
  }

 private:
  ompx::LaunchMode saved_ = ompx::LaunchMode::kAsync;
};

// ---------------------------------------------------------------------------
// Sync-vs-async differential over the six fig8 apps.

struct AppRun {
  std::string app;
  std::uint64_t checksum = 0;
  double kernel_ms = 0.0;
  bool valid = false;
};

std::vector<AppRun> run_all_apps(simt::Device& dev) {
  std::vector<AppRun> out;
  auto push = [&](const apps::RunResult& r) {
    out.push_back({r.app, r.checksum, r.kernel_ms, r.valid});
  };
  {
    apps::xsbench::Options o;
    o.lookups = 2000;
    o.n_gridpoints = 128;
    push(apps::xsbench::run(Version::kOmpx, dev, o));
  }
  {
    apps::rsbench::Options o;
    o.lookups = 1000;
    o.n_poles = 64;
    o.n_windows = 8;
    push(apps::rsbench::run(Version::kOmpx, dev, o));
  }
  {
    apps::su3::Options o;
    o.lattice_sites = 1024;
    o.iterations = 2;
    push(apps::su3::run(Version::kOmpx, dev, o));
  }
  {
    apps::adam::Options o;
    o.n = 2048;
    o.steps = 8;
    push(apps::adam::run(Version::kOmpx, dev, o));
  }
  {
    apps::aidw::Options o;
    o.n_data = 256;
    o.n_query = 256;
    push(apps::aidw::run(Version::kOmpx, dev, o));
  }
  {
    apps::stencil1d::Options o;
    o.n = 1 << 14;
    o.iterations = 2;
    push(apps::stencil1d::run(Version::kOmpx, dev, o));
  }
  return out;
}

TEST_F(Async, SyncVsAsyncDifferentialOverSixApps) {
  simt::Device& dev = simt::sim_a100();

  ompx::set_launch_mode(ompx::LaunchMode::kSync);
  const std::vector<AppRun> sync_rows = run_all_apps(dev);

  ompx::set_launch_mode(ompx::LaunchMode::kAsync);
  const std::vector<AppRun> async_rows = run_all_apps(dev);

  ASSERT_EQ(sync_rows.size(), async_rows.size());
  for (std::size_t i = 0; i < sync_rows.size(); ++i) {
    SCOPED_TRACE(sync_rows[i].app);
    EXPECT_TRUE(sync_rows[i].valid);
    EXPECT_TRUE(async_rows[i].valid);
    // Device-observable state is mode-independent: same checksum, same
    // modeled kernel time, bit for bit.
    EXPECT_EQ(sync_rows[i].checksum, async_rows[i].checksum);
    EXPECT_EQ(sync_rows[i].kernel_ms, async_rows[i].kernel_ms);
  }
}

// ---------------------------------------------------------------------------
// Ticket semantics.

TEST_F(Async, TicketWaitDeliversTheRecord) {
  ompx::set_launch_mode(ompx::LaunchMode::kAsync);
  auto* out = ompx::malloc_n<int>(256);
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {256};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "ticket_wait_kernel";
  ompx::LaunchResult r =
      ompx::launch(spec, [=] { out[ompx::global_thread_id()] = 3; });
  r.wait();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.record.name, "ticket_wait_kernel");
  EXPECT_EQ(r.record.stats.threads, 256u);
  EXPECT_GT(r.record.time.total_ms, 0.0);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(out[i], 3);
  r.wait();  // idempotent
  EXPECT_TRUE(r.completed);
  ompx::free_on(ompx::default_device(), out);
}

TEST_F(Async, TicketQueryTurnsTrueWithoutBlocking) {
  ompx::set_launch_mode(ompx::LaunchMode::kAsync);
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {32};
  spec.name = "ticket_query_kernel";
  ompx::LaunchResult r = ompx::launch(spec, [] {});
  while (!r.query()) {
  }
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.record.name, "ticket_query_kernel");
}

TEST_F(Async, ModeledAndWallTimesWaitAutomatically) {
  ompx::set_launch_mode(ompx::LaunchMode::kAsync);
  ompx::LaunchSpec spec;
  spec.num_teams = {2};
  spec.thread_limit = {64};
  spec.name = "ticket_times";
  ompx::LaunchResult r = ompx::launch(spec, [] {});
  EXPECT_GT(r.modeled_ms(), 0.0);  // implicit wait
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.wall_ms(), 0.0);
}

TEST_F(Async, SyncModeCompletesEagerly) {
  ompx::set_launch_mode(ompx::LaunchMode::kSync);
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {32};
  spec.name = "sync_mode_kernel";
  const ompx::LaunchResult r = ompx::launch(spec, [] {});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.record.name, "sync_mode_kernel");
}

TEST_F(Async, LaunchRecordSynchronizesInFlightLaunches) {
  ompx::set_launch_mode(ompx::LaunchMode::kAsync);
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {32};
  spec.name = "record_sync_kernel";
  ompx::launch(spec, [] {});
  // No explicit wait: launch_record must synchronize the device first.
  EXPECT_EQ(ompx::launch_record().name, "record_sync_kernel");
}

// ---------------------------------------------------------------------------
// Stream-ordered allocator reuse accounting (through the C ABI).

TEST_F(Async, AsyncAllocReusesFromTheStreamPool) {
  ompx_mempool_stats_t before{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &before), OMPX_SUCCESS);

  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  constexpr std::size_t kBytes = 4096;
  void* a = ompx_malloc_async(kBytes, s);
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(ompx_free_async(a, s), OMPX_SUCCESS);
  void* b = ompx_malloc_async(kBytes, s);
  EXPECT_EQ(b, a) << "same-size malloc_async must recycle the pooled block";
  // A different size cannot be served from the pool.
  void* c = ompx_malloc_async(kBytes * 2, s);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(c, a);
  ASSERT_EQ(ompx_free_async(b, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_free_async(c, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);

  ompx_mempool_stats_t after{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &after), OMPX_SUCCESS);
  EXPECT_GE(after.reuse_hits, before.reuse_hits + 1);
  EXPECT_GE(after.misses, before.misses + 2);
  EXPECT_GE(after.frees, before.frees + 3);
  EXPECT_GE(after.bytes_reused, before.bytes_reused + kBytes);
  EXPECT_GE(after.pooled_blocks, 2ull);  // both blocks parked for reuse

  // destroy_stream trims the pool: the parked blocks return to the heap.
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  ompx_mempool_stats_t trimmed{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &trimmed), OMPX_SUCCESS);
  EXPECT_LE(trimmed.pooled_bytes, after.pooled_bytes);

  EXPECT_EQ(ompx_mempool_get_stats(0, nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_mempool_get_stats(-7, &after), OMPX_ERROR_INVALID_DEVICE);
}

TEST_F(Async, StreamDestroyCountsReclaimedBlocks) {
  // Blocks parked for reuse are returned to the heap when the stream
  // dies, and the trim is visible in the stats (regression: pooled
  // blocks of an abandoned stream used to vanish from the accounting).
  ompx_mempool_stats_t before{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &before), OMPX_SUCCESS);
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  constexpr std::size_t kBytes = 8192;
  void* a = ompx_malloc_async(kBytes, s);
  void* b = ompx_malloc_async(kBytes, s);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(ompx_free_async(a, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_free_async(b, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  ompx_mempool_stats_t after{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &after), OMPX_SUCCESS);
  EXPECT_GE(after.reclaimed_blocks, before.reclaimed_blocks + 2);
  EXPECT_GE(after.reclaimed_bytes, before.reclaimed_bytes + 2 * kBytes);
}

TEST_F(Async, TimedOutStreamLeaksNothingAndReleasesItsBlocks) {
  // The --fault=stall + watchdog seam: once the watchdog kills a
  // stream, malloc_async on it must fail cleanly WITHOUT leaking the
  // backing allocation (regression: the allocation was made before the
  // enqueue was refused), free_async must leave the block live, and
  // destroying the dead stream hands surviving blocks back to the
  // plain allocator so they are never stranded.
  simt::Device& dev = simt::sim_a100();
  ASSERT_EQ(ompx_set_watchdog_ms(100.0), OMPX_SUCCESS);
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  void* early = ompx_malloc_async(4096, s);
  ASSERT_NE(early, nullptr);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  {
    // A 1.5 s stall against a 100 ms budget wedges the stream for good.
    ompx::FaultScope fault("stall:after=0,ms=1500");
    ASSERT_EQ(ompx_memset_async(early, 0, 4096, s), OMPX_SUCCESS);
    EXPECT_EQ(ompx_stream_synchronize(s), OMPX_ERROR_TIMEOUT);
  }
  const std::uint64_t live = dev.memory().bytes_in_use();
  EXPECT_EQ(ompx_malloc_async(256, s), nullptr);
  EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_TIMEOUT);
  EXPECT_EQ(dev.memory().bytes_in_use(), live)
      << "refused malloc_async leaked its backing allocation";
  // free_async on the dead stream cannot enqueue: the block stays live.
  EXPECT_EQ(ompx_free_async(early, s), OMPX_ERROR_TIMEOUT);
  EXPECT_EQ(dev.memory().bytes_in_use(), live);
  // Stream destroy releases the async claim: the survivor is now
  // plain-freeable (documented escape hatch), and nothing remains.
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_free(early), OMPX_SUCCESS);
  EXPECT_EQ(dev.memory().bytes_in_use(), live - 4096);
  ASSERT_EQ(ompx_set_watchdog_ms(0.0), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

// ---------------------------------------------------------------------------
// Graph capture / replay.

TEST_F(Async, GraphReplayMatchesRecapturedExecution) {
  simt::Device& dev = ompx::default_device();
  simt::Stream* s = dev.create_stream();
  auto* buf = ompx::malloc_n<int>(1024);

  simt::LaunchParams p;
  p.grid = {4};
  p.block = {256};
  p.mode = simt::ExecMode::kDirect;
  p.name = "graph_step";
  auto step = [buf] {
    auto& t = simt::this_thread();
    const auto i = t.block->block_index().x * 256 + t.flat_tid;
    buf[i] += static_cast<int>(i % 7) + 1;
  };

  // Reference: three plain (uncaptured) submissions.
  std::vector<int> want(1024, 0);
  s->memset_async(buf, 0, 1024 * sizeof(int));
  for (int rep = 0; rep < 3; ++rep) s->launch(p, step);
  s->synchronize();
  std::memcpy(want.data(), buf, want.size() * sizeof(int));

  // Capture one step, replay it three times over a re-zeroed buffer.
  s->memset_async(buf, 0, 1024 * sizeof(int));
  s->synchronize();
  ompx::stream_begin_capture(*s);
  s->launch(p, step);
  ompx::Graph g = ompx::end_capture(*s);
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.node_count(), 1u);
  g.instantiate();
  for (int rep = 0; rep < 3; ++rep) g.launch(*s);
  s->synchronize();
  EXPECT_EQ(g.replay_count(), 3u);
  EXPECT_EQ(std::memcmp(want.data(), buf, want.size() * sizeof(int)), 0)
      << "three replays must equal three re-submitted launches";

  ompx::free_on(dev, buf);
  dev.destroy_stream(s);
}

TEST_F(Async, GraphNodeEnumerationTwoCallIdiom) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  auto* flag = ompx::malloc_n<int>(64);

  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_is_capturing(s), 1);
  ASSERT_EQ(ompx_memset_async(flag, 0, 64 * sizeof(int), s), OMPX_SUCCESS);
  const unsigned grid[3] = {1, 1, 1};
  const unsigned block[3] = {64, 1, 1};
  ASSERT_EQ(ompx_launch_kernel(
                [](void* arg) {
                  static_cast<int*>(arg)[ompx::global_thread_id()] = 1;
                },
                flag, grid, block, s),
            OMPX_SUCCESS);
  ompx_graph_t g = nullptr;
  ASSERT_EQ(ompx_stream_end_capture(s, &g), OMPX_SUCCESS);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(ompx_stream_is_capturing(s), 0);

  // Two-call enumeration: size first, then fill (partial fill allowed).
  std::size_t count = 0;
  ASSERT_EQ(ompx_graph_node_count(g, &count), OMPX_SUCCESS);
  ASSERT_EQ(count, 2u);
  std::vector<ompx_graph_node_info_t> nodes(count);
  std::size_t written = 0;
  ASSERT_EQ(ompx_graph_get_nodes(g, nodes.data(), 1, &written), OMPX_SUCCESS);
  EXPECT_EQ(written, 1u);  // capacity-clamped
  ASSERT_EQ(ompx_graph_get_nodes(g, nodes.data(), count, &written),
            OMPX_SUCCESS);
  ASSERT_EQ(written, 2u);
  EXPECT_STREQ(nodes[0].kind, "memset");
  EXPECT_STREQ(nodes[1].kind, "kernel");

  ASSERT_EQ(ompx_graph_instantiate(g), OMPX_SUCCESS);
  ASSERT_EQ(ompx_graph_launch(g, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(flag[i], 1);

  ASSERT_EQ(ompx_graph_destroy(g), OMPX_SUCCESS);
  // Use-after-destroy is detected, not UB.
  EXPECT_EQ(ompx_graph_launch(g, s), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_instantiate(g), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_node_count(g, &count), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_destroy(g), OMPX_ERROR_INVALID_VALUE);

  ompx::free_on(ompx::default_device(), flag);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
}

TEST_F(Async, GraphNullArgumentHandling) {
  std::size_t count = 0;
  EXPECT_EQ(ompx_graph_node_count(nullptr, &count), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_instantiate(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_launch(nullptr, nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_destroy(nullptr), OMPX_SUCCESS);  // free(NULL) rule

  ompx_stream_t s = ompx_stream_create();
  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  // Null out-param still ends the capture (the stream must stay usable)
  // but reports the bad argument.
  EXPECT_EQ(ompx_stream_end_capture(s, nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_stream_is_capturing(s), 0);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
}

// ---------------------------------------------------------------------------
// Stream destroy semantics.

TEST_F(Async, StreamDestroyDrainsInFlightOps) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  auto* st = static_cast<simt::Stream*>(s);
  std::atomic<int> ran{0};
  simt::LaunchParams p;
  p.grid = {2};
  p.block = {64};
  p.mode = simt::ExecMode::kDirect;
  p.name = "destroy_drain";
  for (int i = 0; i < 16; ++i) {
    st->launch(p, [&ran] {
      if (simt::this_thread().flat_tid == 0 &&
          simt::this_thread().block->block_index().x == 0)
        ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // No synchronize: destroy itself must drain the worker pool.
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  EXPECT_EQ(ran.load(), 16);
}

TEST_F(Async, DestroyWhileCapturingFailsCleanly) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  // Clean result code, no UB — and the capture is still open.
  EXPECT_NE(ompx_stream_destroy(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_is_capturing(s), 1);
  ompx_graph_t g = nullptr;
  ASSERT_EQ(ompx_stream_end_capture(s, &g), OMPX_SUCCESS);
  ASSERT_EQ(ompx_graph_destroy(g), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
}

TEST_F(Async, SynchronizeWhileCapturingIsAnError) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  EXPECT_NE(ompx_stream_synchronize(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_end_capture(s, nullptr), OMPX_ERROR_INVALID_VALUE);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
}

TEST_F(Async, CaptureRejectsFreeOfForeignPointer) {
  simt::Device& dev = ompx::default_device();
  simt::Stream* s = dev.create_stream();
  auto* plain = ompx::malloc_n<int>(16);  // not graph-owned
  s->begin_capture();
  EXPECT_THROW(s->free_async(plain), std::invalid_argument);
  auto g = s->end_capture();
  simt::destroy_graph(g.release());
  ompx::free_on(dev, plain);
  dev.destroy_stream(s);
}

}  // namespace
