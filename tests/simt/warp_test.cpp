// Warp collective tests, parameterized over warp size 32 (sim-a100
// shape) and 64 (sim-mi250 shape).
#include <gtest/gtest.h>

#include <vector>

#include "simt/simt.h"

namespace {

using namespace simt;

DeviceConfig cfg_with_warp(std::uint32_t warp) {
  DeviceConfig c = make_sim_a100_config();
  c.name = "warp-test";
  c.warp_size = warp;
  return c;
}

std::uint64_t full_mask() { return ~0ull; }

class WarpCollectives : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  std::uint32_t ws() const { return GetParam(); }

  /// Runs `body` on a single block of `threads` threads.
  template <typename F>
  LaunchRecord run(std::uint32_t threads, F&& body) {
    Device dev(cfg_with_warp(ws()));
    LaunchParams p;
    p.grid = {1};
    p.block = {threads};
    return dev.launch_sync(p, std::forward<F>(body));
  }
};

TEST_P(WarpCollectives, ShflIdxBroadcastFromLaneZero) {
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    const std::uint64_t mine = 100 + t.lane;
    got[t.lane] = t.warp->collective(t, WarpOp::kShflIdx, mine,
                                     /*src=*/0, full_mask());
  });
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(got[i], 100u);
}

TEST_P(WarpCollectives, ShflIdxPerLaneSource) {
  // Each lane reads from lane (lane+1) % width: a rotation.
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    got[t.lane] = t.warp->collective(t, WarpOp::kShflIdx, t.lane,
                                     (t.lane + 1) % n, full_mask());
  });
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(got[i], (i + 1) % n);
}

TEST_P(WarpCollectives, ShflDownReductionSumsWarp) {
  // The classic warp tree reduction: after log2(ws) rounds lane 0 holds
  // the sum of all lane values.
  const std::uint32_t n = ws();
  std::uint64_t lane0_sum = 0;
  run(n, [&] {
    auto& t = this_thread();
    std::uint64_t v = t.lane + 1;  // sum = n(n+1)/2
    for (std::uint32_t d = t.warp->width() / 2; d > 0; d /= 2)
      v += t.warp->collective(t, WarpOp::kShflDown, v, d, full_mask());
    if (t.lane == 0) lane0_sum = v;
  });
  EXPECT_EQ(lane0_sum, static_cast<std::uint64_t>(n) * (n + 1) / 2);
}

TEST_P(WarpCollectives, ShflUpKeepsOwnValueAtLowLanes) {
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    got[t.lane] =
        t.warp->collective(t, WarpOp::kShflUp, t.lane * 10, 2, full_mask());
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t expect = i < 2 ? i * 10 : (i - 2) * 10;
    EXPECT_EQ(got[i], expect) << "lane " << i;
  }
}

TEST_P(WarpCollectives, ShflXorButterflyExchange) {
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    got[t.lane] =
        t.warp->collective(t, WarpOp::kShflXor, t.lane, 1, full_mask());
  });
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(got[i], i ^ 1u);
}

TEST_P(WarpCollectives, BallotCollectsPredicateBits) {
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    const std::uint64_t pred = t.lane % 2;  // odd lanes true
    got[t.lane] = t.warp->collective(t, WarpOp::kBallot, pred, 0, full_mask());
  });
  std::uint64_t expect = 0;
  for (std::uint32_t i = 1; i < n; i += 2) expect |= 1ull << i;
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(got[i], expect);
}

TEST_P(WarpCollectives, AnyAndAllVotes) {
  const std::uint32_t n = ws();
  std::uint64_t any_result = 99, all_result = 99;
  run(n, [&] {
    auto& t = this_thread();
    const std::uint64_t pred = t.lane == 3 ? 1 : 0;
    const auto any = t.warp->collective(t, WarpOp::kAny, pred, 0, full_mask());
    const auto all = t.warp->collective(t, WarpOp::kAll, pred, 0, full_mask());
    if (t.lane == 0) {
      any_result = any;
      all_result = all;
    }
  });
  EXPECT_EQ(any_result, 1u);
  EXPECT_EQ(all_result, 0u);
}

TEST_P(WarpCollectives, AllTrueWhenEveryLaneTrue) {
  std::uint64_t all_result = 0;
  run(ws(), [&] {
    auto& t = this_thread();
    const auto all = t.warp->collective(t, WarpOp::kAll, 1, 0, full_mask());
    if (t.lane == 0) all_result = all;
  });
  EXPECT_EQ(all_result, 1u);
}

TEST_P(WarpCollectives, PartialWarpCollectiveWorks) {
  // Block smaller than the warp: the last (only) warp is partial.
  const std::uint32_t n = ws() / 2;
  std::uint64_t lane0 = 0;
  run(n, [&] {
    auto& t = this_thread();
    std::uint64_t v = 1;
    for (std::uint32_t d = t.warp->width() / 2; d > 0; d /= 2)
      v += t.warp->collective(t, WarpOp::kShflDown, v, d, full_mask());
    if (t.lane == 0) lane0 = v;
  });
  // Width rounds to a power-of-two tree over n lanes; n is a power of two.
  EXPECT_EQ(lane0, n);
}

TEST_P(WarpCollectives, SubsetMaskSynchronizesOnlyNamedLanes) {
  // Only even lanes participate; odd lanes never reach the collective.
  const std::uint32_t n = ws();
  LaneMask mask = 0;
  for (std::uint32_t i = 0; i < n; i += 2) mask |= 1ull << i;
  std::vector<std::uint64_t> got(n, 1234);
  run(n, [&] {
    auto& t = this_thread();
    if (t.lane % 2 == 0)
      got[t.lane] =
          t.warp->collective(t, WarpOp::kBallot, 1, 0, mask);
  });
  for (std::uint32_t i = 0; i < n; i += 2) EXPECT_EQ(got[i], mask);
  for (std::uint32_t i = 1; i < n; i += 2) EXPECT_EQ(got[i], 1234u);
}

TEST_P(WarpCollectives, MultipleWarpsIndependent) {
  const std::uint32_t n = 4 * ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    // Broadcast each warp's id from lane 0.
    got[t.flat_tid] = t.warp->collective(t, WarpOp::kShflIdx,
                                         t.warp_id * 1000, 0, full_mask());
  });
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(got[i], (i / ws()) * 1000u);
}

TEST_P(WarpCollectives, WarpSyncCountsSeparately) {
  auto rec = run(2 * ws(), [&] {
    auto& t = this_thread();
    t.warp->collective(t, WarpOp::kSync, 0, 0, full_mask());
    t.warp->collective(t, WarpOp::kSync, 0, 0, full_mask());
  });
  EXPECT_EQ(rec.stats.warp_syncs, 2u * 2u);  // 2 warps x 2 syncs
  EXPECT_EQ(rec.stats.warp_collectives, 0u);
}

TEST_P(WarpCollectives, MismatchedOpsThrow) {
  EXPECT_THROW(run(ws(),
                   [&] {
                     auto& t = this_thread();
                     if (t.lane % 2 == 0)
                       t.warp->collective(t, WarpOp::kBallot, 1, 0,
                                          full_mask());
                     else
                       t.warp->collective(t, WarpOp::kAny, 1, 0, full_mask());
                   }),
               std::logic_error);
}

TEST_P(WarpCollectives, LaneMissingFromOwnMaskThrows) {
  EXPECT_THROW(run(ws(),
                   [&] {
                     auto& t = this_thread();
                     // Every lane passes a mask excluding itself.
                     const LaneMask m = ~(1ull << t.lane);
                     t.warp->collective(t, WarpOp::kSync, 0, 0, m);
                   }),
               std::logic_error);
}

TEST_P(WarpCollectives, ExitWhileNamedInPendingCollectiveThrows) {
  // The scheduler resumes lanes in ascending order, so lanes 0..ws-2
  // deposit first (snapshotting a full-warp participant mask that
  // includes the last lane), then the last lane exits without arriving.
  EXPECT_THROW(run(ws(),
                   [&] {
                     auto& t = this_thread();
                     if (t.lane == t.warp->width() - 1) return;
                     t.warp->collective(t, WarpOp::kSync, 0, 0, full_mask());
                   }),
               std::logic_error);
}

TEST_P(WarpCollectives, ExitBeforeCollectiveShrinksParticipants) {
  // A lane that exits before any deposit simply stops being a
  // participant (lenient mask semantics): the remaining lanes complete.
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> got(n, 0);
  run(n, [&] {
    auto& t = this_thread();
    if (t.lane == 0) return;  // exits before anyone deposits
    got[t.lane] = t.warp->collective(t, WarpOp::kBallot, 1, 0, full_mask());
  });
  LaneMask expect = 0;
  for (std::uint32_t i = 1; i < n; ++i) expect |= 1ull << i;
  for (std::uint32_t i = 1; i < n; ++i) EXPECT_EQ(got[i], expect);
}

TEST_P(WarpCollectives, SequentialCollectivesKeepResultsSeparate) {
  const std::uint32_t n = ws();
  std::vector<std::uint64_t> first(n), second(n);
  run(n, [&] {
    auto& t = this_thread();
    first[t.lane] =
        t.warp->collective(t, WarpOp::kShflXor, t.lane + 1, 1, full_mask());
    second[t.lane] =
        t.warp->collective(t, WarpOp::kShflXor, (t.lane + 1) * 2, 1,
                           full_mask());
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(first[i], (i ^ 1u) + 1);
    EXPECT_EQ(second[i], ((i ^ 1u) + 1) * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, WarpCollectives,
                         ::testing::Values(32u, 64u));

TEST(WarpFloat, ShuffleBitCastRoundTrips) {
  // Float payloads ride through as bit patterns; verify a double.
  Device dev(cfg_with_warp(32));
  LaunchParams p;
  p.grid = {1};
  p.block = {32};
  std::vector<double> got(32, 0.0);
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    const double mine = 0.5 + t.lane;
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(mine));
    __builtin_memcpy(&bits, &mine, sizeof(bits));
    const std::uint64_t r =
        t.warp->collective(t, WarpOp::kShflXor, bits, 1, ~0ull);
    double out;
    __builtin_memcpy(&out, &r, sizeof(out));
    got[t.lane] = out;
  });
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(got[i], 0.5 + (i ^ 1));
}

}  // namespace
