// Multi-device layer: registry-wide pointer resolution, peer copies
// (direct and host-staged, with modeled-cost ordering), CUDA-faithful
// per-thread device selection at the kl layer, registry-wide memcheck,
// and shard_launch equivalence against single-device runs — including
// all six Fig. 8 application kernels.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "apps/harness.h"
#include "core/ompx.h"
#include "kl/kl.h"
#include "simt/simt.h"

namespace {

using namespace simt;

class MultiDevice : public ::testing::Test {
 protected:
  void SetUp() override {
    ompx_set_device(0);
    ompx::set_shard_devices(1);
    San::instance().disable();
    San::instance().reset();
    // Peer access off unless a test enables it.
    sim_a100().disable_peer_access(sim_mi250());
    sim_mi250().disable_peer_access(sim_a100());
  }
  void TearDown() override {
    ompx::set_shard_devices(1);
    San::instance().disable();
    San::instance().reset();
    sim_a100().disable_peer_access(sim_mi250());
    sim_mi250().disable_peer_access(sim_a100());
  }
};

// --- registry-wide pointer resolution ------------------------------------

TEST_F(MultiDevice, ResolveDeviceFindsTheOwningDevice) {
  int host_var = 0;
  EXPECT_EQ(resolve_device(&host_var), nullptr);
  EXPECT_EQ(resolve_device(nullptr), nullptr);
  EXPECT_EQ(resolve_device_index(&host_var), -1);

  auto* a = static_cast<char*>(sim_a100().memory().allocate(256));
  auto* m = static_cast<char*>(sim_mi250().memory().allocate(256));
  EXPECT_EQ(resolve_device(a), &sim_a100());
  EXPECT_EQ(resolve_device(m), &sim_mi250());
  EXPECT_EQ(resolve_device_index(a), 0);
  EXPECT_EQ(resolve_device_index(m), 1);
  // Interior pointers resolve too.
  EXPECT_EQ(resolve_device(a + 100), &sim_a100());
  EXPECT_EQ(resolve_device(m + 255), &sim_mi250());

  sim_a100().memory().deallocate(a);
  sim_mi250().memory().deallocate(m);
  EXPECT_EQ(resolve_device(a), nullptr);
  EXPECT_EQ(resolve_device_index(m), -1);
}

// --- peer copies ---------------------------------------------------------

TEST_F(MultiDevice, PeerCopyMovesBytesAndChargesBothDevices) {
  constexpr std::size_t n = 64 * 1024;
  auto* src = static_cast<unsigned char*>(sim_a100().memory().allocate(n));
  auto* dst = static_cast<unsigned char*>(sim_mi250().memory().allocate(n));
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<unsigned char>(i);

  const double a_before = sim_a100().modeled_transfer_ms_total();
  const double m_before = sim_mi250().modeled_transfer_ms_total();
  const double ms = peer_copy(sim_mi250(), dst, sim_a100(), src, n);
  EXPECT_GT(ms, 0.0);
  EXPECT_EQ(std::memcmp(dst, src, n), 0);
  // Charged on both endpoints, with the externally modeled time.
  EXPECT_NEAR(sim_a100().modeled_transfer_ms_total() - a_before, ms, 1e-12);
  EXPECT_NEAR(sim_mi250().modeled_transfer_ms_total() - m_before, ms, 1e-12);

  sim_a100().memory().deallocate(src);
  sim_mi250().memory().deallocate(dst);
}

TEST_F(MultiDevice, PeerCopyModeledTimeIsMonotonicInBytes) {
  constexpr std::size_t n = 1 << 20;
  auto* src = static_cast<char*>(sim_a100().memory().allocate(n));
  auto* dst = static_cast<char*>(sim_mi250().memory().allocate(n));
  double prev = 0.0;
  for (std::size_t bytes : {std::size_t{4096}, n / 16, n / 4, n}) {
    const double ms = peer_copy(sim_mi250(), dst, sim_a100(), src, bytes);
    EXPECT_GT(ms, prev) << bytes << " bytes";
    prev = ms;
  }
  sim_a100().memory().deallocate(src);
  sim_mi250().memory().deallocate(dst);
}

TEST_F(MultiDevice, DirectPeerLinkBeatsHostStaging) {
  constexpr std::size_t n = 8 << 20;
  auto* src = static_cast<char*>(sim_a100().memory().allocate(n));
  auto* dst = static_cast<char*>(sim_mi250().memory().allocate(n));

  const double staged = peer_copy(sim_mi250(), dst, sim_a100(), src, n);
  sim_mi250().enable_peer_access(sim_a100());
  const double direct = peer_copy(sim_mi250(), dst, sim_a100(), src, n);
  // Staged pays two host-link legs; direct runs at the slower
  // endpoint's peer-link rate — strictly faster for any real config.
  EXPECT_LT(direct, staged);
  const EventCosts ec;
  EXPECT_NEAR(direct,
              model_peer_transfer_ms(sim_a100().config(),
                                     sim_mi250().config(), n, ec),
              1e-12);
  EXPECT_NEAR(staged, sim_a100().model_transfer_ms(n) +
                          sim_mi250().model_transfer_ms(n),
              1e-12);
  // One enabled direction suffices (cudaMemcpyPeer semantics): the
  // reverse copy takes the peer link as well.
  const double reverse = peer_copy(sim_a100(), src, sim_mi250(), dst, n);
  EXPECT_NEAR(reverse, direct, 1e-12);

  sim_a100().memory().deallocate(src);
  sim_mi250().memory().deallocate(dst);
}

TEST_F(MultiDevice, PeerCopyValidatesEachEndpointAgainstItsOwnDevice) {
  auto* a = static_cast<char*>(sim_a100().memory().allocate(128));
  auto* m = static_cast<char*>(sim_mi250().memory().allocate(128));
  // Overrun of the destination range.
  EXPECT_THROW(peer_copy(sim_mi250(), m + 64, sim_a100(), a, 128),
               std::out_of_range);
  // Host pointer passed as a device range.
  char host[16];
  EXPECT_THROW(peer_copy(sim_mi250(), m, sim_a100(), host, 16),
               std::out_of_range);
  sim_a100().memory().deallocate(a);
  sim_mi250().memory().deallocate(m);
}

// --- kl layer ------------------------------------------------------------

TEST_F(MultiDevice, KlPeerApisRoundTrip) {
  using namespace kl;
  int can = -1;
  ASSERT_EQ(klDeviceCanAccessPeer(&can, 0, 1), klSuccess);
  EXPECT_EQ(can, 1);
  ASSERT_EQ(klDeviceCanAccessPeer(&can, 1, 1), klSuccess);
  EXPECT_EQ(can, 0);
  EXPECT_EQ(klDeviceCanAccessPeer(&can, 0, 9), klErrorInvalidDevice);
  EXPECT_EQ(klDeviceCanAccessPeer(nullptr, 0, 1), klErrorInvalidValue);

  constexpr int n = 512;
  ASSERT_EQ(klSetDevice(0), klSuccess);
  int* src = nullptr;
  ASSERT_EQ(klMalloc(&src, n * sizeof(int)), klSuccess);
  ASSERT_EQ(klSetDevice(1), klSuccess);
  int* dst = nullptr;
  ASSERT_EQ(klMalloc(&dst, n * sizeof(int)), klSuccess);

  std::vector<int> in(n);
  std::iota(in.begin(), in.end(), 23);
  ASSERT_EQ(klSetDevice(0), klSuccess);
  ASSERT_EQ(klMemcpy(src, in.data(), n * sizeof(int), klMemcpyHostToDevice),
            klSuccess);
  ASSERT_EQ(klDeviceEnablePeerAccess(1), klSuccess);
  ASSERT_EQ(klMemcpyPeer(dst, 1, src, 0, n * sizeof(int)), klSuccess);
  ASSERT_EQ(klDeviceDisablePeerAccess(1), klSuccess);
  EXPECT_EQ(klDeviceEnablePeerAccess(1, 3), klErrorInvalidValue);
  EXPECT_EQ(klMemcpyPeer(dst, 7, src, 0, 4), klErrorInvalidDevice);
  (void)klGetLastError();

  std::vector<int> out(n, 0);
  ASSERT_EQ(klSetDevice(1), klSuccess);
  ASSERT_EQ(klMemcpy(out.data(), dst, n * sizeof(int), klMemcpyDeviceToHost),
            klSuccess);
  EXPECT_EQ(in, out);
  ASSERT_EQ(klFree(dst), klSuccess);
  ASSERT_EQ(klSetDevice(0), klSuccess);
  ASSERT_EQ(klFree(src), klSuccess);
}

// --- memcheck across devices ---------------------------------------------

TEST_F(MultiDevice, SanDoesNotReportPeerDevicePointerAsHostPointer) {
  // A kernel on sim-a100 touching sim-mi250 memory is legal in the
  // in-process simulation (UVA-style); before the registry-wide check
  // it was misdiagnosed as a host pointer.
  San::instance().enable(kSanMem);
  auto* peer = static_cast<int*>(sim_mi250().memory().allocate(sizeof(int)));
  *peer = 5;
  LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.name = "cross_device_read";
  int seen = 0;
  sim_a100().launch_sync(p, [&] {
    ompx::san::GlobalPtr<int> q(peer);
    seen = *q;
  });
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(San::instance().error_count(), 0u) << San::instance().report();
  sim_mi250().memory().deallocate(peer);
}

TEST_F(MultiDevice, SanReportsPeerDeviceOobAgainstOwningDevice) {
  San::instance().enable(kSanMem);
  auto* peer = static_cast<int*>(sim_mi250().memory().allocate(4 * sizeof(int)));
  LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.name = "cross_device_oob";
  sim_a100().launch_sync(p, [&] {
    ompx::san::GlobalPtr<int> q(peer, 4);
    int v = q[4];  // one past the end of the peer allocation
    (void)v;
  });
  std::vector<SanDiag> oob;
  for (const auto& d : San::instance().diagnostics())
    if (d.kind == SanKind::kGlobalOob) oob.push_back(d);
  ASSERT_FALSE(oob.empty());
  // Named against the owning device, not misfiled as a host pointer.
  EXPECT_NE(oob.front().message.find("sim-mi250"), std::string::npos)
      << oob.front().message;
  sim_mi250().memory().deallocate(peer);
}

// --- sharded launches ----------------------------------------------------

TEST_F(MultiDevice, ShardLaunchMatchesSingleDeviceResults) {
  constexpr std::uint32_t blocks = 64, threads = 128;
  constexpr std::size_t n = blocks * threads;
  std::vector<std::uint64_t> single(n, 0), sharded(n, 0);
  std::vector<std::uint64_t> grids(n, 0);

  ompx::LaunchSpec spec;
  spec.num_teams = {blocks};
  spec.thread_limit = {threads};
  spec.name = "shard_probe";
  auto body_into = [&](std::vector<std::uint64_t>& out,
                       std::vector<std::uint64_t>* gdim) {
    auto* o = out.data();
    auto* g = gdim != nullptr ? gdim->data() : nullptr;
    return [o, g] {
      const std::uint64_t id = ompx::global_thread_id();
      o[id] = id * 3 + 1;
      if (g != nullptr) g[id] = static_cast<std::uint64_t>(ompx::grid_dim());
    };
  };

  ompx::LaunchResult ref = ompx::launch(spec, body_into(single, nullptr));
  ref.wait();
  std::vector<simt::Device*> devs{&sim_a100(), &sim_mi250()};
  const ompx::LaunchResult sh =
      ompx::shard_launch(spec, devs, body_into(sharded, &grids));

  EXPECT_EQ(single, sharded);
  // Every block saw the full logical grid, regardless of its shard.
  for (std::uint64_t g : grids) ASSERT_EQ(g, blocks);

  // The combined record reports the whole launch on the primary device.
  EXPECT_TRUE(sh.completed);
  EXPECT_EQ(sh.record.stats.blocks, ref.record.stats.blocks);
  EXPECT_EQ(sh.record.stats.threads, ref.record.stats.threads);
  EXPECT_EQ(sh.record.grid.x, blocks);
  EXPECT_EQ(sim_a100().last_launch().name, std::string("shard_probe"));
  // Shards run concurrently: the combined modeled time cannot exceed
  // the single-device time (each shard is a strict subset of the work).
  EXPECT_LE(sh.record.time.total_ms, ref.record.time.total_ms * 1.001);
  EXPECT_GT(sh.record.time.total_ms, 0.0);
}

TEST_F(MultiDevice, ShardOverrideRoutesPlainLaunches) {
  constexpr std::uint32_t blocks = 8, threads = 64;
  std::vector<int> out(blocks * threads, 0);
  auto* o = out.data();
  ompx::set_shard_devices(2);
  EXPECT_EQ(ompx::shard_devices(), 2);
  ompx::LaunchSpec spec;
  spec.num_teams = {blocks};
  spec.thread_limit = {threads};
  spec.name = "shard_override";
  const ompx::LaunchResult r =
      ompx::launch(spec, [o] { o[ompx::global_thread_id()] = 1; });
  ompx::set_shard_devices(1);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.record.stats.blocks, blocks);
  for (int v : out) ASSERT_EQ(v, 1);
  // Clamped to the registry size, floored at 1.
  ompx::set_shard_devices(99);
  EXPECT_EQ(ompx::shard_devices(), 2);
  ompx::set_shard_devices(-4);
  EXPECT_EQ(ompx::shard_devices(), 1);
}

TEST_F(MultiDevice, ShardLaunchSplitsTheLargestGridAxis) {
  // A {1, 6, 1} grid must shard along y, not x.
  constexpr std::uint32_t gy = 6, threads = 32;
  std::vector<int> seen(gy, 0);
  auto* s = seen.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {1, gy, 1};
  spec.thread_limit = {threads};
  spec.name = "shard_axis_y";
  std::vector<simt::Device*> devs{&sim_a100(), &sim_mi250()};
  ompx::shard_launch(spec, devs, [s] {
    if (ompx::thread_id() == 0) s[ompx::block_id(ompx::dim_y)] = 1;
  });
  for (int v : seen) ASSERT_EQ(v, 1);  // all 6 y-blocks executed once
}

// --- degenerate grids (regression: the single-shard special case) ---------

TEST_F(MultiDevice, DegenerateOneBlockGridShardsSafely) {
  // A 1x1x1 grid with a 4-way shard request: one shard, no empty
  // shards, no division by zero — and the combined record is still the
  // one the launch log sees.
  ompx::set_shard_devices(4);  // clamps to the registry (2 devices)
  std::vector<int> tids(32, -1);
  auto* t = tids.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {32};
  spec.name = "shard_one_block";
  const ompx::LaunchResult r =
      ompx::launch(spec, [t] { t[ompx::thread_id()] = ompx::thread_id(); });
  ompx::set_shard_devices(1);
  EXPECT_TRUE(r.completed);
  for (int i = 0; i < 32; ++i) ASSERT_EQ(tids[i], i);
  EXPECT_EQ(r.record.stats.blocks, 1u);
  EXPECT_EQ(r.record.stats.threads, 32u);
  EXPECT_EQ(r.record.grid.x, 1u);
  EXPECT_GT(r.record.time.total_ms, 0.0);
  EXPECT_EQ(sim_a100().last_launch().name, std::string("shard_one_block"));
}

TEST_F(MultiDevice, GridSmallerThanDeviceListUsesFewerShards) {
  // 3 blocks over a 2-device list: shards of 2 + 1, every block exactly
  // once, and the combined record covers all 3.
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  auto* hp = hits.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {3};
  spec.thread_limit = {16};
  spec.name = "shard_three_blocks";
  std::vector<simt::Device*> devs{&sim_a100(), &sim_mi250()};
  const ompx::LaunchResult r = ompx::shard_launch(spec, devs, [hp] {
    if (ompx::thread_id() == 0) hp[ompx::block_id(ompx::dim_x)].fetch_add(1);
  });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1) << "block " << i;
  EXPECT_EQ(r.record.stats.blocks, 3u);
  EXPECT_EQ(r.record.stats.threads, 3u * 16u);
}

TEST_F(MultiDevice, SingleShardLaunchOrdersBehindPendingStreamWork) {
  // Regression: the degenerate path used to bypass the per-device
  // default stream with a direct launch_sync, so a one-block sharded
  // launch could overtake async work already queued on the stream. It
  // must observe the queued host op's write.
  int flag = 0;
  simt::Stream& st = sim_a100().default_stream();
  st.host_fn([&flag] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    flag = 7;
  });
  int seen = -1;
  auto* sp = &seen;
  auto* fp = &flag;
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {1};
  spec.name = "shard_ordering";
  std::vector<simt::Device*> devs{&sim_a100()};
  ompx::shard_launch(spec, devs, [sp, fp] { *sp = *fp; });
  EXPECT_EQ(seen, 7) << "sharded launch overtook queued stream work";
  sim_a100().synchronize();
}

TEST_F(MultiDevice, ShardedFig8AppsMatchSingleDeviceChecksums) {
  // The acceptance bar: every Fig. 8 application kernel produces
  // byte-identical verification results sharded across both devices.
  for (const apps::AppDesc& app : apps::registry()) {
    ompx::set_shard_devices(1);
    const apps::RunResult ref =
        apps::run_cell(app, apps::Version::kOmpx, sim_a100());
    ompx::set_shard_devices(2);
    const apps::RunResult sh =
        apps::run_cell(app, apps::Version::kOmpx, sim_a100());
    ompx::set_shard_devices(1);
    EXPECT_TRUE(ref.valid) << app.name;
    EXPECT_TRUE(sh.valid) << app.name << ": " << sh.note;
    EXPECT_EQ(ref.checksum, sh.checksum) << app.name;
  }
}

}  // namespace
