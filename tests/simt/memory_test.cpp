// Unit tests for the device memory manager and the shared-memory arena.
#include "simt/memory.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "simt/shared_arena.h"

namespace {

using simt::CopyKind;
using simt::DeviceMemory;
using simt::SharedArena;

TEST(DeviceMemory, AllocateTracksUsage) {
  DeviceMemory mem(1 << 20);
  void* p = mem.allocate(1000);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(mem.bytes_in_use(), 1000u);
  EXPECT_EQ(mem.live_allocations(), 1u);
  mem.deallocate(p);
  EXPECT_EQ(mem.bytes_in_use(), 0u);
  EXPECT_EQ(mem.live_allocations(), 0u);
}

TEST(DeviceMemory, AllocationIs256ByteAligned) {
  DeviceMemory mem(1 << 20);
  for (std::size_t sz : {1u, 7u, 100u, 255u, 257u}) {
    void* p = mem.allocate(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u) << sz;
    mem.deallocate(p);
  }
}

TEST(DeviceMemory, ZeroByteAllocationReturnsNull) {
  DeviceMemory mem(1 << 20);
  EXPECT_EQ(mem.allocate(0), nullptr);
  mem.deallocate(nullptr);  // no-op, must not throw
}

TEST(DeviceMemory, CapacityEnforced) {
  DeviceMemory mem(4096);
  void* p = mem.allocate(4000);
  EXPECT_THROW(mem.allocate(200), std::bad_alloc);
  mem.deallocate(p);
  EXPECT_NO_THROW(mem.deallocate(mem.allocate(200)));
}

TEST(DeviceMemory, DoubleFreeThrows) {
  DeviceMemory mem(1 << 20);
  void* p = mem.allocate(64);
  mem.deallocate(p);
  EXPECT_THROW(mem.deallocate(p), std::invalid_argument);
}

TEST(DeviceMemory, FreeingHostPointerThrows) {
  DeviceMemory mem(1 << 20);
  int host_var = 0;
  EXPECT_THROW(mem.deallocate(&host_var), std::invalid_argument);
}

TEST(DeviceMemory, ContainsHandlesInteriorPointers) {
  DeviceMemory mem(1 << 20);
  auto* p = static_cast<char*>(mem.allocate(100));
  EXPECT_TRUE(mem.contains(p));
  EXPECT_TRUE(mem.contains(p + 50));
  EXPECT_TRUE(mem.contains(p + 99));
  EXPECT_FALSE(mem.contains(p + 100));
  int host_var = 0;
  EXPECT_FALSE(mem.contains(&host_var));
  mem.deallocate(p);
  EXPECT_FALSE(mem.contains(p));
}

TEST(DeviceMemory, AllocationSizeExactBaseOnly) {
  DeviceMemory mem(1 << 20);
  auto* p = static_cast<char*>(mem.allocate(100));
  EXPECT_EQ(mem.allocation_size(p), 100u);
  EXPECT_EQ(mem.allocation_size(p + 1), 0u);
  mem.deallocate(p);
}

TEST(DeviceMemory, CopyHostToDeviceAndBack) {
  DeviceMemory mem(1 << 20);
  std::vector<int> host_in{1, 2, 3, 4, 5};
  std::vector<int> host_out(5, 0);
  void* dev = mem.allocate(5 * sizeof(int));
  mem.copy(dev, host_in.data(), 5 * sizeof(int), CopyKind::kHostToDevice);
  mem.copy(host_out.data(), dev, 5 * sizeof(int), CopyKind::kDeviceToHost);
  EXPECT_EQ(host_in, host_out);
  mem.deallocate(dev);
}

TEST(DeviceMemory, CopyValidatesDeviceRanges) {
  DeviceMemory mem(1 << 20);
  std::vector<int> host(10);
  void* dev = mem.allocate(8);
  // Overrunning the device allocation is caught.
  EXPECT_THROW(mem.copy(dev, host.data(), 16, CopyKind::kHostToDevice),
               std::out_of_range);
  EXPECT_THROW(mem.copy(host.data(), dev, 16, CopyKind::kDeviceToHost),
               std::out_of_range);
  // Host pointer passed as device side is caught.
  EXPECT_THROW(mem.copy(host.data(), host.data(), 4, CopyKind::kDeviceToHost),
               std::out_of_range);
  mem.deallocate(dev);
}

TEST(DeviceMemory, MemsetValidatesAndWrites) {
  DeviceMemory mem(1 << 20);
  auto* dev = static_cast<unsigned char*>(mem.allocate(16));
  mem.set(dev, 0xAB, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(dev[i], 0xAB);
  EXPECT_THROW(mem.set(dev, 0, 17), std::out_of_range);
  mem.deallocate(dev);
}

TEST(DeviceMemory, DeviceToDeviceCopy) {
  DeviceMemory mem(1 << 20);
  auto* a = static_cast<int*>(mem.allocate(4 * sizeof(int)));
  auto* b = static_cast<int*>(mem.allocate(4 * sizeof(int)));
  for (int i = 0; i < 4; ++i) a[i] = i * 10;
  mem.copy(b, a, 4 * sizeof(int), CopyKind::kDeviceToDevice);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b[i], i * 10);
  mem.deallocate(a);
  mem.deallocate(b);
}

// ------------------------------------------------------------ SharedArena

TEST(SharedArena, DynamicSegmentReservedAtBase) {
  SharedArena arena(48 * 1024, 256);
  EXPECT_EQ(arena.dynamic_size(), 256u);
  EXPECT_EQ(arena.used(), 256u);
  void* p = arena.allocate(64);
  EXPECT_GE(static_cast<char*>(p),
            static_cast<char*>(arena.dynamic_base()) + 256);
}

TEST(SharedArena, AllocationsRespectAlignment) {
  SharedArena arena(48 * 1024, 0);
  arena.allocate(3);
  void* p = arena.allocate(8, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(SharedArena, CapacityOverflowThrows) {
  SharedArena arena(1024, 0);
  arena.allocate(1000);
  EXPECT_THROW(arena.allocate(100), std::bad_alloc);
}

TEST(SharedArena, DynamicLargerThanCapacityThrows) {
  EXPECT_THROW(SharedArena(1024, 2048), std::invalid_argument);
}

TEST(SharedArena, HighWaterTracksPeak) {
  SharedArena arena(4096, 0);
  arena.allocate(100);
  arena.allocate(200);
  EXPECT_GE(arena.high_water(), 300u);
}

TEST(SharedArena, BadAlignmentThrows) {
  SharedArena arena(4096, 0);
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 0), std::invalid_argument);
}

}  // namespace
