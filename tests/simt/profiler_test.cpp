// Launch telemetry subsystem: span capture across launch_sync, stream
// ops, and transfers; the counters registry; destroy semantics; and the
// Chrome trace-event exporter (validated with a self-contained JSON
// parser — the schema contract chrome://tracing / Perfetto relies on).
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/simt.h"

namespace {

// --- minimal JSON parser (validation only) -------------------------------
//
// Just enough JSON to check the trace export is well-formed and to walk
// traceEvents: objects, arrays, strings, numbers, true/false/null.

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull } kind =
      Kind::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': case 'f': case 'n': case 'r': case 't': break;
          case 'u': pos_ += 4; break;
          default: throw std::runtime_error("bad escape");
        }
      } else {
        v.string += c;
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) { v.boolean = true; pos_ += 4; }
    else if (s_.compare(pos_, 5, "false") == 0) { v.boolean = false; pos_ += 5; }
    else throw std::runtime_error("bad literal");
    return v;
  }

  JsonValue null() {
    JsonValue v;
    if (s_.compare(pos_, 4, "null") != 0)
      throw std::runtime_error("bad literal");
    pos_ += 4;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- fixtures ------------------------------------------------------------

/// The profiler is a process-wide singleton, so every test starts and
/// ends from a clean, disabled capture.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    simt::Profiler::instance().stop();
    simt::Profiler::instance().reset();
  }
  void TearDown() override {
    simt::Profiler::instance().stop();
    simt::Profiler::instance().reset();
  }

  static simt::LaunchParams params(const char* name, unsigned grid = 4,
                                   unsigned block = 64) {
    simt::LaunchParams p;
    p.grid = {grid};
    p.block = {block};
    p.name = name;
    return p;
  }
};

TEST_F(ProfilerTest, DisabledCapturesNothing) {
  ASSERT_FALSE(simt::profiling_enabled());
  simt::Device dev(simt::make_sim_a100_config());
  dev.launch_sync(params("untraced"), [] {});
  dev.add_transfer(256);
  EXPECT_TRUE(simt::Profiler::instance().spans().empty());
  EXPECT_EQ(simt::Profiler::instance().counters().launches, 0u);
}

TEST_F(ProfilerTest, KernelSpanCarriesModelAndStats) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Profiler::instance().start();
  ASSERT_TRUE(simt::profiling_enabled());
  const simt::LaunchRecord rec = dev.launch_sync(params("traced", 8, 32), [] {
    auto& t = simt::this_thread();
    t.block->sync_threads(t);
  });
  simt::Profiler::instance().stop();

  const auto spans = simt::Profiler::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  const simt::TraceSpan& s = spans[0];
  EXPECT_EQ(s.kind, simt::SpanKind::kKernel);
  EXPECT_EQ(s.name, "traced");
  EXPECT_EQ(s.track, 0u);  // host-synchronous launch -> sync track
  EXPECT_DOUBLE_EQ(s.dur_ms, rec.time.total_ms);
  EXPECT_EQ(s.grid.x, 8u);
  EXPECT_EQ(s.block.x, 32u);
  EXPECT_EQ(s.stats.blocks, rec.stats.blocks);
  EXPECT_EQ(s.stats.block_barriers, rec.stats.block_barriers);
  EXPECT_GE(s.wall_ms, 0.0);
}

TEST_F(ProfilerTest, CountersAggregateAcrossOperations) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Profiler::instance().start();
  dev.launch_sync(params("k1", 2, 32), [] {});
  dev.launch_sync(params("k2", 3, 32), [] {});
  dev.add_transfer(1024);
  simt::Profiler::instance().stop();

  const simt::ProfilerCounters c = simt::Profiler::instance().counters();
  EXPECT_EQ(c.launches, 2u);
  EXPECT_EQ(c.blocks, 5u);
  EXPECT_EQ(c.threads, 5u * 32u);
  EXPECT_EQ(c.memcpys, 1u);
  EXPECT_EQ(c.bytes_copied, 1024u);
  EXPECT_GT(c.modeled_kernel_ms, 0.0);
  EXPECT_GT(c.host_wall_ms, 0.0);

  simt::Profiler::instance().reset();
  EXPECT_EQ(simt::Profiler::instance().counters().launches, 0u);
  EXPECT_TRUE(simt::Profiler::instance().spans().empty());
}

TEST_F(ProfilerTest, SyncTrackTimestampsAreMonotonic) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Profiler::instance().start();
  for (int i = 0; i < 4; ++i) dev.launch_sync(params("mono"), [] {});
  simt::Profiler::instance().stop();

  const auto spans = simt::Profiler::instance().spans();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].ts_ms, spans[i - 1].ts_ms + spans[i - 1].dur_ms -
                                  1e-12);
  }
}

TEST_F(ProfilerTest, StreamOpsLandOnStreamTracks) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Stream* s = dev.create_stream();
  simt::Profiler::instance().start();
  s->launch(params("streamed", 2, 32), [] {});
  void* d = dev.memory().allocate(512);
  char host[512] = {};
  s->memcpy_async(d, host, sizeof host, simt::CopyKind::kHostToDevice);
  s->synchronize();
  simt::Profiler::instance().stop();

  const auto spans = simt::Profiler::instance().spans();
  ASSERT_EQ(spans.size(), 2u);  // executor records; no double-record
  EXPECT_EQ(spans[0].kind, simt::SpanKind::kKernel);
  EXPECT_EQ(spans[0].track, s->id() + 1);
  EXPECT_EQ(spans[1].kind, simt::SpanKind::kMemcpy);
  EXPECT_EQ(spans[1].track, s->id() + 1);
  EXPECT_EQ(spans[1].bytes, 512u);
  // Back-to-back ops on one stream: the memcpy starts when the kernel ends.
  EXPECT_GE(spans[1].ts_ms, spans[0].ts_ms + spans[0].dur_ms - 1e-12);
  dev.memory().deallocate(d);
  dev.destroy_stream(s);
}

TEST_F(ProfilerTest, EventRecordAndWaitShareAFlowId) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Stream* a = dev.create_stream();
  simt::Stream* b = dev.create_stream();
  simt::Event* ev = dev.create_event();
  simt::Profiler::instance().start();
  a->launch(params("producer", 8, 64), [] {});
  a->record(*ev);
  b->wait(*ev);
  b->launch(params("consumer", 1, 32), [] {});
  dev.synchronize();
  simt::Profiler::instance().stop();

  std::uint64_t record_flow = 0, wait_flow = 0;
  for (const auto& s : simt::Profiler::instance().spans()) {
    if (s.kind == simt::SpanKind::kEventRecord) record_flow = s.flow_id;
    if (s.kind == simt::SpanKind::kEventWait) wait_flow = s.flow_id;
  }
  EXPECT_NE(record_flow, 0u);  // recorded events get a flow arrow id
  EXPECT_EQ(record_flow, wait_flow);
  dev.destroy_event(ev);
  dev.destroy_stream(a);
  dev.destroy_stream(b);
}

TEST_F(ProfilerTest, DestroyStreamDrainsAndKeepsTimelineMonotonic) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Stream* s = dev.create_stream();
  int ran = 0;
  s->host_fn([&] { ran = 1; });
  s->launch(params("pre_destroy", 16, 64), [] {});
  const double before = dev.modeled_now_ms();
  dev.destroy_stream(s);  // drains both queued ops
  EXPECT_EQ(ran, 1);
  // The destroyed stream's modeled time survives into the device clock.
  EXPECT_GE(dev.modeled_now_ms(), before);
  const double after_destroy = dev.modeled_now_ms();
  EXPECT_GT(after_destroy, 0.0);
  dev.synchronize();
  EXPECT_GE(dev.modeled_now_ms(), after_destroy);
}

TEST_F(ProfilerTest, DestroyStreamRejectsDefaultAndIgnoresNull) {
  simt::Device dev(simt::make_sim_a100_config());
  EXPECT_THROW(dev.destroy_stream(&dev.default_stream()),
               std::invalid_argument);
  dev.destroy_stream(nullptr);  // no-op
  dev.destroy_event(nullptr);   // no-op
}

TEST_F(ProfilerTest, DestroyEventWaitsForInFlightReferences) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Stream* s = dev.create_stream();
  simt::Event* ev = dev.create_event();
  s->launch(params("before_record", 8, 64), [] {});
  s->record(*ev);
  s->wait(*ev);
  dev.destroy_event(ev);  // blocks until the queue no longer references it
  s->synchronize();
  dev.destroy_stream(s);
}

TEST_F(ProfilerTest, ChromeTraceExportIsValidAndSchemaComplete) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Stream* s = dev.create_stream();
  simt::Event* ev = dev.create_event();
  simt::Profiler::instance().start();
  dev.launch_sync(params("sync_kernel", 4, 64), [] {});
  s->launch(params("stream_kernel", 2, 32), [] {});
  s->record(*ev);
  dev.default_stream().wait(*ev);
  dev.add_transfer(2048);
  dev.synchronize();
  simt::Profiler::instance().stop();

  const std::string json = simt::Profiler::instance().chrome_trace_json();
  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json).parse()) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  // Top-level schema.
  ASSERT_TRUE(root.object.count("traceEvents"));
  ASSERT_TRUE(root.object.count("displayTimeUnit"));
  ASSERT_TRUE(root.object.count("otherData"));
  const JsonValue& events = root.object["traceEvents"];
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(events.array.empty());

  // Every event carries the keys chrome://tracing requires, slices have
  // non-negative durations, and per-(pid, tid) timestamps never go
  // backwards.
  std::map<std::pair<double, double>, double> track_cursor;
  std::size_t slices = 0, metadata = 0, flow_starts = 0, flow_ends = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    ASSERT_TRUE(e.object.count("ph"));
    ASSERT_TRUE(e.object.count("pid"));
    ASSERT_TRUE(e.object.count("name"));
    const std::string ph = e.object.at("ph").string;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_TRUE(e.object.count("tid"));
    ASSERT_TRUE(e.object.count("ts"));
    const double pid = e.object.at("pid").number;
    const double tid = e.object.at("tid").number;
    const double ts = e.object.at("ts").number;
    if (ph == "X") {
      ++slices;
      ASSERT_TRUE(e.object.count("dur"));
      EXPECT_GE(e.object.at("dur").number, 0.0);
      const auto key = std::make_pair(pid, tid);
      const auto it = track_cursor.find(key);
      if (it != track_cursor.end()) EXPECT_GE(ts, it->second - 1e-9);
      track_cursor[key] = ts;
    } else if (ph == "s") {
      ++flow_starts;
      ASSERT_TRUE(e.object.count("id"));
    } else if (ph == "f") {
      ++flow_ends;
      ASSERT_TRUE(e.object.count("id"));
      ASSERT_TRUE(e.object.count("bp"));  // bind to enclosing slice
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_GE(slices, 5u);  // 2 kernels + record + wait + memcpy
  EXPECT_GE(metadata, 3u);  // process_name + >= 2 thread_name entries
  EXPECT_EQ(flow_starts, 1u);
  EXPECT_EQ(flow_ends, 1u);

  // The default stream and the created stream render as separate
  // tracks, plus the host-sync track: >= 3 distinct (pid, tid) pairs.
  EXPECT_GE(track_cursor.size(), 3u);

  // Counters registry rides along under otherData.
  const JsonValue& other = root.object["otherData"];
  ASSERT_EQ(other.kind, JsonValue::Kind::kObject);
  EXPECT_TRUE(other.object.count("launches"));
  EXPECT_TRUE(other.object.count("bytes_copied"));
  EXPECT_TRUE(other.object.count("modeled_kernel_ms"));

  dev.destroy_event(ev);
  dev.destroy_stream(s);
}

TEST_F(ProfilerTest, SpanKindNamesAreStable) {
  EXPECT_STREQ(simt::span_kind_name(simt::SpanKind::kKernel), "kernel");
  EXPECT_STREQ(simt::span_kind_name(simt::SpanKind::kMemcpy), "memcpy");
}

}  // namespace
