// Multi-tenant serving layer tests: per-client accounting isolation,
// block-granularity time slicing (a small request completes while a
// huge one is still being chunked), priority classes and WRR weights,
// admission control, quota enforcement, fault containment (a client
// whose request times out or loses the device does not disturb its
// siblings), and clean teardown — including destroy-with-pending-work
// and the C-ABI / kl client handles. The multithreaded stress test is
// the tier-1 gate for OMPX_SAN=race,mem,sync and TSan runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/ompx.h"
#include "kl/kl.h"
#include "serve/serve.h"
#include "simt/simt.h"

namespace {

using namespace kl;
using serve::ClientContext;
using serve::ClientLimits;
using serve::ClientStats;
using serve::Server;

simt::LaunchParams grid1d(std::uint32_t blocks, std::uint32_t threads,
                          const char* name) {
  simt::LaunchParams p;
  p.grid = {blocks, 1, 1};
  p.block = {threads, 1, 1};
  p.name = name;
  return p;
}

// --- basic execution ------------------------------------------------------

TEST(ServeBasic, LaunchRunsFullGridAndCombinesRecord) {
  Server server;
  ClientContext* c = server.create_client(&simt::sim_a100());
  std::atomic<std::uint64_t> count{0};
  const simt::LaunchRecord rec =
      c->launch(grid1d(32, 64, "serve_basic"),
                [&] { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), 32u * 64u);
  // The combined record reports the logical launch, not the chunks.
  EXPECT_EQ(rec.grid.x, 32u);
  EXPECT_EQ(rec.block.x, 64u);
  EXPECT_EQ(rec.stats.blocks, 32u);
  EXPECT_EQ(rec.stats.threads, 32u * 64u);
  EXPECT_GT(rec.time.total_ms, 0.0);

  const ClientStats st = c->stats();
  EXPECT_EQ(st.launches, 1u);
  EXPECT_EQ(st.launches_failed, 0u);
  EXPECT_EQ(st.blocks_executed, 32u);
  EXPECT_GE(st.quanta, 1u);
  server.destroy_client(c);
}

TEST(ServeBasic, ChunkingCoversEveryBlockExactlyOnce) {
  Server server;
  server.set_quantum_blocks(4);
  ClientContext* c = server.create_client(&simt::sim_a100());
  // 19 blocks with a quantum of 4: five chunks (4+4+4+4+3), and every
  // block must run exactly once with shard-transparent ids.
  constexpr std::uint32_t kBlocks = 19;
  std::vector<std::atomic<int>> hits(kBlocks);
  for (auto& h : hits) h.store(0);
  auto* hp = hits.data();
  c->launch(grid1d(kBlocks, 8, "serve_chunks"), [hp] {
    const simt::ThreadCtx& t = simt::this_thread();
    if (t.flat_tid == 0) hp[t.block_idx.x].fetch_add(1);
    // Chunked launches must still present the logical grid.
    if (t.grid_dim.x != kBlocks) hp[0].fetch_add(1000);
  });
  for (std::uint32_t i = 0; i < kBlocks; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "block " << i;
  const ClientStats st = c->stats();
  EXPECT_EQ(st.blocks_executed, kBlocks);
  EXPECT_EQ(st.quanta, 5u);
  server.destroy_client(c);
}

TEST(ServeBasic, LargestGridAxisIsChunked) {
  Server server;
  server.set_quantum_blocks(2);
  ClientContext* c = server.create_client(&simt::sim_a100());
  // A {1, 6, 1} grid chunks along y: three quanta, all six y-blocks.
  std::vector<std::atomic<int>> seen(6);
  for (auto& s : seen) s.store(0);
  auto* sp = seen.data();
  simt::LaunchParams p;
  p.grid = {1, 6, 1};
  p.block = {16, 1, 1};
  p.name = "serve_axis_y";
  c->launch(p, [sp] {
    const simt::ThreadCtx& t = simt::this_thread();
    if (t.flat_tid == 0) sp[t.block_idx.y].fetch_add(1);
  });
  for (int i = 0; i < 6; ++i) EXPECT_EQ(seen[i].load(), 1) << "y-block " << i;
  EXPECT_EQ(c->stats().quanta, 3u);
  server.destroy_client(c);
}

// --- quota + allocation isolation ----------------------------------------

TEST(ServeQuota, MallocChargesAndRejectsOverQuota) {
  Server server;
  ClientLimits lim;
  lim.memory_quota_bytes = 1 << 20;
  ClientContext* c = server.create_client(&simt::sim_a100(), lim);

  void* a = c->malloc(512 << 10);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(c->stats().bytes_live, 512u << 10);
  // 512K live + 768K would exceed the 1M quota.
  EXPECT_THROW(c->malloc(768 << 10), simt::DeviceOOMError);
  EXPECT_EQ(c->stats().quota_rejections, 1u);
  EXPECT_EQ(c->stats().bytes_live, 512u << 10) << "failed malloc charged";

  void* b = c->malloc(512 << 10);  // exactly at the quota
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(c->stats().bytes_peak, 1u << 20);
  c->free(a);
  c->free(b);
  const ClientStats st = c->stats();
  EXPECT_EQ(st.bytes_live, 0u);
  EXPECT_EQ(st.allocs, 2u);
  EXPECT_EQ(st.frees, 2u);
  server.destroy_client(c);
}

TEST(ServeQuota, CrossClientFreeIsRejected) {
  Server server;
  ClientContext* a = server.create_client(&simt::sim_a100());
  ClientContext* b = server.create_client(&simt::sim_a100());
  void* p = a->malloc(4096);
  ASSERT_NE(p, nullptr);
  // Tenant isolation: b cannot free (or double-charge) a's pointer.
  EXPECT_THROW(b->free(p), std::invalid_argument);
  EXPECT_EQ(b->stats().frees, 0u);
  EXPECT_EQ(a->stats().bytes_live, 4096u);
  a->free(p);
  EXPECT_EQ(a->stats().bytes_live, 0u);
  server.destroy_client(a);
  server.destroy_client(b);
}

// --- admission control ----------------------------------------------------

TEST(ServeAdmission, QueueDepthLimitRejectsWithAdmissionError) {
  Server server;
  ClientLimits lim;
  lim.max_pending = 2;
  ClientContext* c = server.create_client(&simt::sim_a100(), lim);
  // A gate request holds the scheduler so the queue genuinely fills.
  std::atomic<bool> release{false};
  c->submit(grid1d(1, 1, "serve_gate"), [&] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  int rejected = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      c->submit(grid1d(1, 1, "serve_backlog"), [] {});
    } catch (const simt::AdmissionError&) {
      ++rejected;
    }
  }
  release.store(true, std::memory_order_release);
  c->synchronize();
  EXPECT_GT(rejected, 0);
  const ClientStats st = c->stats();
  EXPECT_EQ(st.admission_rejections, static_cast<std::uint64_t>(rejected));
  // Admitted requests all completed despite the rejections.
  EXPECT_EQ(st.launches + st.launches_failed + st.admission_rejections, 6u);
  EXPECT_EQ(st.launches_failed, 0u);
  server.destroy_client(c);
}

// --- scheduling: preemption, priority, weights ----------------------------

TEST(ServeSched, SmallRequestCompletesWhileHugeOneIsStillRunning) {
  Server server;
  server.set_quantum_blocks(4);
  ClientContext* huge = server.create_client(&simt::sim_a100());
  ClientContext* tiny = server.create_client(&simt::sim_a100());

  constexpr std::uint32_t kHugeBlocks = 256, kThreads = 32;
  // Hold the worker on a gate so both requests are queued before the
  // scheduler picks anything; the block order below is then decided by
  // the scheduler, not by submission timing.
  std::atomic<bool> release{false};
  huge->submit(grid1d(1, 1, "serve_gate"), [&] {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });

  std::mutex mu;
  std::vector<char> order;  // one tag per block, in scheduling order
  auto tagged = [&](char tag) {
    return [&, tag] {
      if (simt::this_thread().flat_tid == 0) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(tag);
      }
    };
  };
  huge->submit(grid1d(kHugeBlocks, kThreads, "serve_huge"), tagged('h'));
  tiny->submit(grid1d(4, kThreads, "serve_tiny"), tagged('t'));
  release.store(true, std::memory_order_release);
  tiny->synchronize();
  huge->synchronize();

  // The tiny client's 4-block request must be scheduled within the
  // huge grid's first couple of 4-block chunks, not after it drains:
  // that is the preemption the block-granular quanta buy.
  ASSERT_EQ(order.size(), std::size_t{kHugeBlocks} + 4);
  std::size_t last_tiny = 0, huge_before_tiny = 0;
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] == 't') last_tiny = i;
  for (std::size_t i = 0; i < last_tiny; ++i)
    if (order[i] == 'h') huge_before_tiny++;
  EXPECT_LE(huge_before_tiny, 8u)
      << "tiny request waited " << huge_before_tiny
      << " huge blocks: no preemption happened";

  EXPECT_EQ(huge->stats().quanta, kHugeBlocks / 4 + 1);  // +1 for the gate
  server.destroy_client(huge);
  server.destroy_client(tiny);
}

TEST(ServeSched, HigherPriorityClassRunsFirst) {
  Server server;
  server.set_quantum_blocks(2);
  ClientLimits lowlim;
  lowlim.priority = 0;
  ClientLimits highlim;
  highlim.priority = 5;
  ClientContext* low = server.create_client(&simt::sim_a100(), lowlim);
  ClientContext* high = server.create_client(&simt::sim_a100(), highlim);

  std::mutex mu;
  std::vector<int> order;
  auto tagged = [&](int tag) {
    return [&, tag] {
      const simt::ThreadCtx& t = simt::this_thread();
      if (t.flat_tid == 0) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(tag);
      }
    };
  };
  // R1 is long enough (32 quanta) that R2 and H are queued behind it.
  low->submit(grid1d(64, 8, "serve_low_r1"), tagged(1));
  low->submit(grid1d(4, 8, "serve_low_r2"), tagged(2));
  high->submit(grid1d(4, 8, "serve_high"), tagged(3));
  low->synchronize();
  high->synchronize();

  // Every high-priority block ran before any block of the low client's
  // second request: the high class preempts the low backlog.
  int last_high = -1, first_tag2 = 1 << 30;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (int i = 0; i < static_cast<int>(order.size()); ++i) {
      if (order[i] == 3) last_high = std::max(last_high, i);
      if (order[i] == 2) first_tag2 = std::min(first_tag2, i);
    }
  }
  EXPECT_GE(last_high, 0);
  EXPECT_LT(last_high, first_tag2);
  server.destroy_client(low);
  server.destroy_client(high);
}

TEST(ServeSched, WeightsBiasTheShareUnderContention) {
  Server server;
  server.set_quantum_blocks(2);
  ClientLimits heavy_lim;
  heavy_lim.weight = 3;
  ClientLimits light_lim;
  light_lim.weight = 1;
  ClientContext* heavy = server.create_client(&simt::sim_a100(), heavy_lim);
  ClientContext* light = server.create_client(&simt::sim_a100(), light_lim);

  std::mutex mu;
  std::vector<int> order;  // one entry per completed request
  auto tagged = [&](int tag) {
    return [&, tag] {
      const simt::ThreadCtx& t = simt::this_thread();
      if (t.flat_tid == 0 && t.block_idx.x == 0) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(tag);
      }
    };
  };
  // A gate keeps the worker busy while both backlogs are submitted, so
  // the WRR comparison starts from a full queue on both sides.
  std::atomic<bool> release{false};
  heavy->submit(grid1d(1, 1, "serve_wrr_gate"), [&] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
  });
  constexpr int kEach = 12;  // one quantum per request (2 blocks)
  for (int i = 0; i < kEach; ++i)
    heavy->submit(grid1d(2, 8, "serve_wrr_heavy"), tagged(1));
  for (int i = 0; i < kEach; ++i)
    light->submit(grid1d(2, 8, "serve_wrr_light"), tagged(2));
  release.store(true, std::memory_order_release);
  heavy->synchronize();
  light->synchronize();

  // Weight 3 drains ~3x faster: when the heavy client's last request
  // ran, the light client should have completed only about a third of
  // its own backlog (exact WRR predicts 4 of 12).
  int light_before_heavy_done = 0, last_heavy = -1;
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * kEach));
    for (int i = 0; i < 2 * kEach; ++i)
      if (order[i] == 1) last_heavy = i;
    for (int i = 0; i < last_heavy; ++i)
      if (order[i] == 2) ++light_before_heavy_done;
  }
  EXPECT_GE(light_before_heavy_done, 2);
  EXPECT_LE(light_before_heavy_done, 7);
  EXPECT_EQ(heavy->stats().quanta, static_cast<std::uint64_t>(kEach) + 1);
  EXPECT_EQ(light->stats().quanta, static_cast<std::uint64_t>(kEach));
  server.destroy_client(heavy);
  server.destroy_client(light);
}

// --- fault containment ----------------------------------------------------

TEST(ServeFault, DeviceLossFailsOnlyTheFaultedClient) {
  Server server;
  ClientContext* victim = server.create_client(&simt::sim_a100());
  ClientContext* sibling = server.create_client(&simt::sim_a100());

  // Sibling baseline.
  std::atomic<std::uint64_t> sum{0};
  auto body = [&] {
    sum.fetch_add(simt::this_thread().flat_tid, std::memory_order_relaxed);
  };
  sibling->launch(grid1d(8, 32, "serve_sibling"), body);
  const std::uint64_t baseline = sum.exchange(0);

  {
    ompx::FaultScope fault("device_lost:after=0");
    EXPECT_THROW(
        victim->launch(grid1d(8, 32, "serve_victim"), [] {}),
        simt::DeviceLostError);
  }
  EXPECT_EQ(victim->stats().device_losses, 1u);
  EXPECT_EQ(victim->stats().launches_failed, 1u);

  // The server reset the device: the sibling reproduces its checksum
  // and its own stats are untouched by the victim's failure.
  sibling->launch(grid1d(8, 32, "serve_sibling"), body);
  EXPECT_EQ(sum.load(), baseline);
  EXPECT_EQ(sibling->stats().launches, 2u);
  EXPECT_EQ(sibling->stats().launches_failed, 0u);
  EXPECT_EQ(sibling->stats().device_losses, 0u);
  server.destroy_client(victim);
  server.destroy_client(sibling);
}

TEST(ServeFault, WatchdogTimeoutIsChargedToTheClient) {
  Server server;
  server.set_quantum_blocks(4);
  ClientContext* victim = server.create_client(&simt::sim_a100());
  ClientContext* sibling = server.create_client(&simt::sim_a100());

  simt::set_watchdog_ms(1e-6);
  simt::LaunchParams p = grid1d(16, 64, "serve_overrun");
  p.cost.flops_per_thread = 1e9;  // modeled time far past the budget
  EXPECT_THROW(victim->launch(p, [] {}), simt::TimeoutError);
  simt::set_watchdog_ms(0.0);

  EXPECT_EQ(victim->stats().timeouts, 1u);
  EXPECT_EQ(victim->stats().launches_failed, 1u);
  // A modeled overrun is per request, not device poison: the sibling
  // (and the victim itself) keep launching.
  std::atomic<int> ran{0};
  sibling->launch(grid1d(2, 16, "serve_after_timeout"),
                  [&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2 * 16);
  victim->launch(grid1d(1, 8, "serve_victim_retry"), [] {});
  EXPECT_EQ(victim->stats().launches, 1u);
  server.destroy_client(victim);
  server.destroy_client(sibling);
}

// --- teardown -------------------------------------------------------------

TEST(ServeTeardown, DestroyReclaimsLeakedAllocationsAndDrainsQueue) {
  simt::Device& dev = simt::sim_a100();
  const std::uint64_t before = dev.memory().bytes_in_use();
  Server server;
  ClientContext* c = server.create_client(&dev);
  (void)c->malloc(64 << 10);
  (void)c->malloc(32 << 10);  // both deliberately leaked
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i)
    c->submit(grid1d(2, 8, "serve_drain"), [&] { ran.fetch_add(1); });
  // destroy_client drains the pending queue, then releases the leaks.
  server.destroy_client(c);
  EXPECT_EQ(ran.load(), 4 * 2 * 8);
  EXPECT_EQ(dev.memory().bytes_in_use(), before);
  EXPECT_EQ(server.client_count(), 0u);
  EXPECT_THROW(server.destroy_client(c), std::invalid_argument);
}

TEST(ServeTeardown, ServerDestructionWithQueuedWorkIsClean) {
  simt::Device& dev = simt::sim_a100();
  const std::uint64_t before = dev.memory().bytes_in_use();
  {
    Server server;
    ClientContext* c = server.create_client(&dev);
    (void)c->malloc(4096);
    for (int i = 0; i < 8; ++i)
      c->submit(grid1d(4, 16, "serve_dtor_backlog"), [] {});
    // No synchronize, no destroy_client: the Server destructor must
    // stop the scheduler, fail or finish the backlog, and release the
    // client's memory without crashing or hanging.
  }
  EXPECT_EQ(dev.memory().bytes_in_use(), before);
  // The device is still healthy for the next tenant.
  std::atomic<int> ran{0};
  Server server2;
  ClientContext* c2 = server2.create_client(&dev);
  c2->launch(grid1d(1, 8, "serve_after_dtor"), [&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
  server2.destroy_client(c2);
}

// --- multithreaded stress (the sanitizer/TSan gate) -----------------------

// TSan's fiber support caps how much lane-fiber traffic one process can
// generate (its stack depot overflows around ~64k recorded frames), so
// the stress run is scaled down under TSan — same shape, less volume.
#if defined(__SANITIZE_THREAD__)
#define OMPX_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OMPX_TEST_TSAN 1
#endif
#endif

TEST(ServeStress, ConcurrentClientsKeepIsolatedAccounting) {
#ifdef OMPX_TEST_TSAN
  constexpr int kClients = 4;
  constexpr int kIters = 4;
#else
  constexpr int kClients = 8;
  constexpr int kIters = 24;
#endif
  constexpr std::uint32_t kBlocks = 6, kThreads = 32;
  Server server;
  server.set_quantum_blocks(2);

  ClientLimits lim;
  lim.memory_quota_bytes = 4 << 20;
  std::vector<ClientContext*> clients(kClients);
  for (int i = 0; i < kClients; ++i)
    clients[i] = server.create_client(&simt::sim_a100(), lim);
  ASSERT_EQ(server.client_count(), static_cast<std::size_t>(kClients));

  std::vector<std::atomic<std::uint64_t>> counts(kClients);
  for (auto& c : counts) c.store(0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientContext* c = clients[i];
      std::atomic<std::uint64_t>* slot = &counts[i];
      for (int it = 0; it < kIters; ++it) {
        void* p = c->malloc(1024 + 256 * static_cast<std::size_t>(i));
        c->launch(grid1d(kBlocks, kThreads, "serve_stress"), [slot] {
          slot->fetch_add(1, std::memory_order_relaxed);
        });
        c->free(p);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    const ClientStats st = clients[i]->stats();
    EXPECT_EQ(counts[i].load(), std::uint64_t{kIters} * kBlocks * kThreads)
        << "client " << i;
    EXPECT_EQ(st.launches, static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(st.launches_failed, 0u);
    EXPECT_EQ(st.blocks_executed, std::uint64_t{kIters} * kBlocks);
    EXPECT_EQ(st.allocs, static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(st.frees, static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(st.bytes_live, 0u);
    EXPECT_EQ(st.bytes_peak, 1024u + 256u * static_cast<std::uint32_t>(i));
    // Fair-share floor: nobody starved.
    EXPECT_GT(st.quanta, 0u);
  }
  for (ClientContext* c : clients) server.destroy_client(c);
  EXPECT_EQ(server.client_count(), 0u);
}

// --- C ABI / kl handles ---------------------------------------------------

TEST(ServeCApi, ClientLifecycleQuotaAdmissionAndStats) {
  ompx_client_limits_t lim{};
  lim.memory_quota_bytes = 1 << 20;
  lim.max_pending = 64;
  ompx_client_t c = ompx_client_create(0, &lim);
  ASSERT_NE(c, nullptr);

  static std::atomic<long> count{0};
  count.store(0);
  unsigned grid[3] = {8, 1, 1}, block[3] = {32, 1, 1};
  auto fn = +[](void*) { count.fetch_add(1, std::memory_order_relaxed); };
  ASSERT_EQ(ompx_client_launch_kernel(c, fn, nullptr, grid, block),
            OMPX_SUCCESS);
  EXPECT_EQ(count.load(), 8 * 32);

  // Quota rejection surfaces as OUT_OF_MEMORY through the C seam.
  EXPECT_EQ(ompx_client_malloc(c, 2 << 20), nullptr);
  EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_OUT_OF_MEMORY);
  void* p = ompx_client_malloc(c, 4096);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(ompx_client_free(c, p), OMPX_SUCCESS);

  ASSERT_EQ(ompx_client_launch_async(c, fn, nullptr, grid, block),
            OMPX_SUCCESS);
  ASSERT_EQ(ompx_client_synchronize(c), OMPX_SUCCESS);

  ompx_client_stats_t st{};
  ASSERT_EQ(ompx_client_get_stats(c, &st), OMPX_SUCCESS);
  EXPECT_EQ(st.launches, 2ull);
  EXPECT_EQ(st.quota_rejections, 1ull);
  EXPECT_EQ(st.allocs, 1ull);
  EXPECT_EQ(st.frees, 1ull);
  EXPECT_EQ(st.bytes_live, 0ull);

  EXPECT_EQ(ompx_client_destroy(c), OMPX_SUCCESS);
  // Stale/null/bad handles are caught by the live registry.
  EXPECT_EQ(ompx_client_destroy(c), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_client_destroy(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_client_get_stats(c, &st), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_client_synchronize(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_client_create(99, nullptr), nullptr);
  EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_INVALID_DEVICE);
  (void)ompx_get_last_result();
}

TEST(ServeCApi, QuantumKnobRoundTrips) {
  const unsigned before = ompx_serve_quantum();
  EXPECT_EQ(ompx_serve_set_quantum(16), OMPX_SUCCESS);
  EXPECT_EQ(ompx_serve_quantum(), 16u);
  // Floored at one block: a zero quantum would never make progress.
  EXPECT_EQ(ompx_serve_set_quantum(0), OMPX_SUCCESS);
  EXPECT_EQ(ompx_serve_quantum(), 1u);
  EXPECT_EQ(ompx_serve_set_quantum(before), OMPX_SUCCESS);
}

TEST(ServeCApi, KlClientRoundTrip) {
  klClient_t c = nullptr;
  ASSERT_EQ(klClientCreate(&c), klSuccess);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(klClientDestroy(c), klSuccess);
  EXPECT_EQ(klClientDestroy(c), klErrorInvalidValue);
  EXPECT_EQ(klClientDestroy(nullptr), klErrorInvalidValue);
  klClient_t bad = reinterpret_cast<klClient_t>(0x1);
  EXPECT_EQ(klClientCreate(nullptr), klErrorInvalidValue);
  EXPECT_EQ(klClientCreate(&bad, 42), klErrorInvalidDevice);
  EXPECT_EQ(bad, nullptr) << "failed create must null the out-param";
  (void)klGetLastError();
}

}  // namespace
