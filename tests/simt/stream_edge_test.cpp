// Stream/event edge cases beyond the basic semantics suite: event
// reuse and re-record, device-to-device async copies, host-callback
// failures, and modeled-timeline monotonicity.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "simt/simt.h"

namespace {

using namespace simt;

class StreamEdge : public ::testing::Test {
 protected:
  Device dev{[] {
    DeviceConfig c = make_sim_a100_config();
    c.name = "stream-edge";
    return c;
  }()};

  LaunchParams tiny(const char* name = "k") {
    LaunchParams p;
    p.grid = {1};
    p.block = {1};
    p.mode = ExecMode::kDirect;
    p.name = name;
    return p;
  }
};

TEST_F(StreamEdge, EventReRecordMovesTimestampForward) {
  Stream& s = dev.default_stream();
  Event* ev = dev.create_event();
  LaunchParams p = tiny("timed");
  p.grid = {64};
  p.block = {256};
  p.cost.global_bytes_per_thread = 512;

  s.launch(p, [] {});
  s.record(*ev);
  ev->synchronize();
  const double t1 = ev->modeled_ms();

  s.launch(p, [] {});
  s.record(*ev);  // reuse the same event
  ev->synchronize();
  const double t2 = ev->modeled_ms();
  EXPECT_GT(t2, t1);
  EXPECT_TRUE(ev->query());
}

TEST_F(StreamEdge, EventWaitAfterRecordIsImmediatelySatisfied) {
  Stream* s1 = dev.create_stream();
  Stream* s2 = dev.create_stream();
  Event* ev = dev.create_event();
  std::atomic<int> order{0};
  s1->launch(tiny("a"), [&] { order.store(1); });
  s1->record(*ev);
  s1->synchronize();  // record already executed
  s2->wait(*ev);      // must not block anything
  std::atomic<int> seen{-1};
  s2->launch(tiny("b"), [&] { seen.store(order.load()); });
  s2->synchronize();
  EXPECT_EQ(seen.load(), 1);
}

TEST_F(StreamEdge, DeviceToDeviceAsyncCopyChains) {
  auto* a = static_cast<int*>(dev.memory().allocate(256 * sizeof(int)));
  auto* b = static_cast<int*>(dev.memory().allocate(256 * sizeof(int)));
  auto* c = static_cast<int*>(dev.memory().allocate(256 * sizeof(int)));
  std::vector<int> h(256);
  for (int i = 0; i < 256; ++i) h[i] = i * 3;
  Stream& s = dev.default_stream();
  s.memcpy_async(a, h.data(), 256 * sizeof(int), CopyKind::kHostToDevice);
  s.memcpy_async(b, a, 256 * sizeof(int), CopyKind::kDeviceToDevice);
  s.memcpy_async(c, b, 256 * sizeof(int), CopyKind::kDeviceToDevice);
  std::vector<int> out(256, 0);
  s.memcpy_async(out.data(), c, 256 * sizeof(int), CopyKind::kDeviceToHost);
  s.synchronize();
  EXPECT_EQ(out, h);
  for (auto* p : {a, b, c}) dev.memory().deallocate(p);
}

TEST_F(StreamEdge, HostCallbackExceptionBecomesAsyncError) {
  Stream& s = dev.default_stream();
  s.host_fn([] { throw std::runtime_error("host callback failed"); });
  EXPECT_THROW(dev.synchronize(), std::runtime_error);
  // Subsequent work proceeds.
  std::atomic<bool> ok{false};
  s.host_fn([&] { ok.store(true); });
  dev.synchronize();
  EXPECT_TRUE(ok.load());
}

TEST_F(StreamEdge, TimelineMonotoneUnderMixedOps) {
  Stream* s = dev.create_stream();
  auto* d = static_cast<char*>(dev.memory().allocate(1 << 16));
  std::vector<char> h(1 << 16, 7);
  double prev = s->modeled_ready_ms();
  for (int round = 0; round < 5; ++round) {
    s->memcpy_async(d, h.data(), h.size(), CopyKind::kHostToDevice);
    s->memset_async(d, round, 1 << 12);
    LaunchParams p = tiny("mix");
    p.grid = {8};
    p.block = {64};
    p.cost.flops_per_thread = 100;
    s->launch(p, [] {});
    s->synchronize();
    const double now = s->modeled_ready_ms();
    EXPECT_GT(now, prev);
    prev = now;
  }
  dev.memory().deallocate(d);
}

TEST_F(StreamEdge, AsyncMemcpyValidationFailsTheStream) {
  Stream& s = dev.default_stream();
  auto* d = static_cast<char*>(dev.memory().allocate(16));
  std::vector<char> h(64, 0);
  // Overrunning async H2D copy: executes on the worker, surfaces at sync.
  s.memcpy_async(d, h.data(), 64, CopyKind::kHostToDevice);
  EXPECT_THROW(dev.synchronize(), std::out_of_range);
  dev.memory().deallocate(d);
}

TEST_F(StreamEdge, ManyEventsInterleaved) {
  Stream* s = dev.create_stream();
  std::vector<Event*> evs;
  for (int i = 0; i < 20; ++i) {
    s->launch(tiny("seq"), [] {});
    evs.push_back(dev.create_event());
    s->record(*evs.back());
  }
  s->synchronize();
  double prev = -1.0;
  for (Event* ev : evs) {
    EXPECT_TRUE(ev->query());
    EXPECT_GE(ev->modeled_ms(), prev);
    prev = ev->modeled_ms();
  }
}

}  // namespace
