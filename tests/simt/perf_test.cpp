// Property tests for the analytic performance model: occupancy algebra,
// roofline behaviour, and the monotonicity properties the paper's
// mechanisms rely on (more traffic => more time, fewer resident threads
// => no faster, runtime machinery => strictly slower).
#include <gtest/gtest.h>

#include "simt/device.h"
#include "simt/perf.h"

namespace {

using namespace simt;

const DeviceConfig a100 = make_sim_a100_config();
const DeviceConfig mi250 = make_sim_mi250_config();

LaunchStats stats_for(std::uint64_t blocks, std::uint32_t tpb) {
  LaunchStats s;
  s.blocks = blocks;
  s.threads = blocks * tpb;
  return s;
}

TEST(Occupancy, ThreadLimitBindsFirstForLeanKernels) {
  CompilerProfile lean;
  lean.regs_per_thread = 16;  // not limiting
  EXPECT_EQ(resident_threads_per_sm(a100, 256, lean, 0), 2048u);
  EXPECT_EQ(resident_threads_per_sm(a100, 1024, lean, 0), 2048u);
}

TEST(Occupancy, RegisterPressureLimitsResidency) {
  CompilerProfile fat;
  fat.regs_per_thread = 162;  // the paper's RSBench omp figure
  // 65536 / (162*256) = 1 block of 256 threads per SM.
  EXPECT_EQ(resident_threads_per_sm(a100, 256, fat, 0), 256u);
  CompilerProfile lean;
  lean.regs_per_thread = 32;
  EXPECT_GT(resident_threads_per_sm(a100, 256, lean, 0),
            resident_threads_per_sm(a100, 256, fat, 0));
}

TEST(Occupancy, SharedMemoryLimitsResidency) {
  CompilerProfile p;
  p.regs_per_thread = 16;
  // 48 KB static smem: 164KB/48KB = 3 blocks/SM on sim-a100.
  p.static_smem_bytes = 48 * 1024;
  EXPECT_EQ(resident_threads_per_sm(a100, 256, p, 0), 3u * 256u);
  // Dynamic smem adds on top.
  p.static_smem_bytes = 24 * 1024;
  EXPECT_EQ(resident_threads_per_sm(a100, 256, p, 24 * 1024), 3u * 256u);
}

TEST(Occupancy, WarpGranularityCharged) {
  CompilerProfile p;
  p.regs_per_thread = 16;
  // 33 threads occupy 2 warps (64 thread slots) on warp-32 hardware.
  const auto r33 = resident_threads_per_sm(a100, 33, p, 0);
  const auto r64 = resident_threads_per_sm(a100, 64, p, 0);
  EXPECT_EQ(r33 / 33, r64 / 64);  // same number of resident blocks
}

TEST(Occupancy, BlockSlotLimitCapsTinyBlocks) {
  CompilerProfile p;
  p.regs_per_thread = 16;
  // 32-thread blocks: max_blocks_per_sm (32) binds -> 1024 threads, half
  // the SM capacity. This is the mechanism behind Adam's 8x omp slowdown.
  EXPECT_EQ(resident_threads_per_sm(a100, 32, p, 0), 32u * 32u);
}

TEST(Model, MemoryBoundKernelScalesWithBytes) {
  KernelCost c1;
  c1.global_bytes_per_thread = 64;
  KernelCost c2 = c1;
  c2.global_bytes_per_thread = 128;
  CompilerProfile prof;
  auto s = stats_for(4096, 256);
  const auto t1 = model_time(a100, prof, c1, s, 256, 0);
  const auto t2 = model_time(a100, prof, c2, s, 256, 0);
  EXPECT_NEAR(t2.memory_ms / t1.memory_ms, 2.0, 1e-9);
  EXPECT_GT(t2.total_ms, t1.total_ms);
}

TEST(Model, RooflineTakesMaxOfComputeAndMemory) {
  KernelCost c;
  c.global_bytes_per_thread = 64;
  c.flops_per_thread = 1e6;  // strongly compute bound
  CompilerProfile prof;
  auto s = stats_for(4096, 256);
  const auto t = model_time(a100, prof, c, s, 256, 0);
  EXPECT_GT(t.compute_ms, t.memory_ms);
  EXPECT_NEAR(t.total_ms, t.overhead_ms + t.compute_ms, 1e-12);
}

TEST(Model, LowConcurrencyStretchesMemoryTime) {
  // Same total bytes split over 8x fewer threads (each doing 8x work)
  // on an unsaturated device: ~8x slower. This is the Adam omp shape.
  KernelCost per_thread;
  per_thread.global_bytes_per_thread = 64;
  CompilerProfile prof;
  auto full = stats_for(40, 256);  // 10240 threads, well under the knee
  KernelCost fat = per_thread;
  fat.global_bytes_per_thread = 64 * 8;
  auto eighth = stats_for(40, 32);  // 1280 threads
  const auto t_full = model_time(a100, prof, per_thread, full, 256, 0);
  const auto t_eighth = model_time(a100, prof, fat, eighth, 32, 0);
  EXPECT_NEAR(t_eighth.memory_ms / t_full.memory_ms, 8.0, 0.01);
}

TEST(Model, SaturatedDeviceInsensitiveToExtraThreads) {
  KernelCost c;
  c.global_bytes_per_thread = 256;
  CompilerProfile prof;
  auto s1 = stats_for(1u << 14, 256);
  auto s2 = stats_for(1u << 15, 256);
  const auto t1 = model_time(a100, prof, c, s1, 256, 0);
  const auto t2 = model_time(a100, prof, c, s2, 256, 0);
  // Twice the saturated work takes twice the time (bandwidth-bound).
  EXPECT_NEAR(t2.memory_ms / t1.memory_ms, 2.0, 1e-9);
}

TEST(Model, RuntimeMachineryAddsOverhead) {
  KernelCost c;
  c.flops_per_thread = 100;
  CompilerProfile prof;
  auto bare = stats_for(1024, 256);
  auto rt = bare;
  rt.runtime_init = true;
  rt.parallel_handshakes = bare.blocks * 10;
  rt.workshare_dispatches = bare.blocks * 100;
  const auto t_bare = model_time(a100, prof, c, bare, 256, 0);
  const auto t_rt = model_time(a100, prof, c, rt, 256, 0);
  EXPECT_GT(t_rt.overhead_ms, t_bare.overhead_ms);
  EXPECT_GT(t_rt.total_ms, t_bare.total_ms);
}

TEST(Model, GlobalizationChargesGlobalTraffic) {
  KernelCost c;
  c.global_bytes_per_thread = 16;
  CompilerProfile prof;
  auto plain = stats_for(4096, 256);
  auto globalized = plain;
  globalized.globalized_bytes = plain.threads * 64;
  const auto t0 = model_time(a100, prof, c, plain, 256, 0);
  const auto t1 = model_time(a100, prof, c, globalized, 256, 0);
  EXPECT_GT(t1.memory_ms, t0.memory_ms);
}

TEST(Model, HeapToSharedMovesSpillOffGlobal) {
  // The RSBench §4.2.2 mechanism: spill traffic in shared instead of
  // global memory shrinks the memory roofline term.
  KernelCost c;
  c.global_bytes_per_thread = 32;
  c.local_spill_bytes_per_thread = 96;
  CompilerProfile prof;
  auto in_global = stats_for(4096, 256);
  auto in_shared = in_global;
  in_shared.spill_in_shared = true;
  const auto tg = model_time(a100, prof, c, in_global, 256, 0);
  const auto ts = model_time(a100, prof, c, in_shared, 256, 0);
  EXPECT_GT(tg.memory_ms, ts.memory_ms);
  EXPECT_GT(ts.shared_ms, tg.shared_ms);
}

TEST(Model, CompilerEfficiencyScalesComputeOnly) {
  KernelCost c;
  c.flops_per_thread = 1e5;
  c.global_bytes_per_thread = 8;
  CompilerProfile good, bad;
  bad.compute_efficiency = 0.8;
  auto s = stats_for(4096, 256);
  const auto tg = model_time(a100, good, c, s, 256, 0);
  const auto tb = model_time(a100, bad, c, s, 256, 0);
  EXPECT_NEAR(tb.compute_ms / tg.compute_ms, 1.0 / 0.8, 1e-9);
  EXPECT_NEAR(tb.memory_ms, tg.memory_ms, 1e-12);
}

TEST(Model, BigBinaryPaysIcachePenalty) {
  // The SU3 §4.2.3 mechanism: 29 KiB ompx binary vs 3.9 KiB CUDA.
  KernelCost c;
  c.flops_per_thread = 1e5;
  CompilerProfile small_bin, big_bin;
  small_bin.binary_kib = 3.9;
  big_bin.binary_kib = 29.0;
  auto s = stats_for(4096, 128);
  const auto ts = model_time(a100, small_bin, c, s, 128, 0);
  const auto tb = model_time(a100, big_bin, c, s, 128, 0);
  EXPECT_GT(tb.compute_ms, ts.compute_ms);
  EXPECT_LT(tb.compute_ms / ts.compute_ms, 1.2);  // mild effect
}

TEST(Model, TransferModelLinearInBytes) {
  const double t1 = model_transfer_ms(a100, 1 << 20);
  const double t2 = model_transfer_ms(a100, 1 << 21);
  EXPECT_GT(t2, t1);
  // Latency term means t2 < 2*t1.
  EXPECT_LT(t2, 2 * t1);
}

TEST(Model, DevicesDiffer) {
  // MI250's higher bandwidth shows up for memory-bound work.
  KernelCost c;
  c.global_bytes_per_thread = 256;
  CompilerProfile prof;
  auto s = stats_for(1u << 14, 256);
  const auto ta = model_time(a100, prof, c, s, 256, 0);
  const auto tm = model_time(mi250, prof, c, s, 256, 0);
  EXPECT_LT(tm.memory_ms, ta.memory_ms);
}

TEST(Model, OccupancyReported) {
  KernelCost c;
  CompilerProfile prof;
  prof.regs_per_thread = 32;
  auto s = stats_for(1024, 256);
  const auto t = model_time(a100, prof, c, s, 256, 0);
  EXPECT_GT(t.occupancy, 0.0);
  EXPECT_LE(t.occupancy, 1.0);
}

}  // namespace
