// Unit tests for the fiber layer: creation, yielding, interleaving,
// recycling (reset / FiberPool), stack pooling, and guard-page
// integrity.
#include "simt/fiber.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "simt/simt.h"

namespace {

using simt::Fiber;
using simt::FiberPool;
using simt::FiberStackPool;

TEST(Fiber, RunsToCompletionOnFirstResume) {
  FiberStackPool pool;
  int x = 0;
  Fiber f(pool, [&] { x = 42; });
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  FiberStackPool pool;
  std::vector<int> trace;
  Fiber f(pool, [&] {
    trace.push_back(1);
    Fiber::current()->yield();
    trace.push_back(3);
    Fiber::current()->yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentIsNullInSchedulerContext) {
  FiberStackPool pool;
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f(pool, [&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ManyFibersInterleaveRoundRobin) {
  FiberStackPool pool;
  constexpr int kN = 64;
  std::vector<int> order;
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < kN; ++i) {
    fibers.push_back(std::make_unique<Fiber>(pool, [&, i] {
      order.push_back(i);
      Fiber::current()->yield();
      order.push_back(i + kN);
    }));
  }
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) EXPECT_TRUE(f->done());
  ASSERT_EQ(order.size(), 2 * kN);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(order[i], i);
    EXPECT_EQ(order[kN + i], i + kN);
  }
}

TEST(Fiber, LocalStateSurvivesYield) {
  FiberStackPool pool;
  double result = 0.0;
  Fiber f(pool, [&] {
    double acc = 1.5;           // lives on the fiber stack
    std::string s = "fiber";    // heap + stack mix
    Fiber::current()->yield();
    acc *= 2.0;
    Fiber::current()->yield();
    result = acc + static_cast<double>(s.size());
  });
  f.resume();
  f.resume();
  f.resume();
  EXPECT_DOUBLE_EQ(result, 8.0);
}

TEST(Fiber, FloatingPointStateAcrossSwitches) {
  FiberStackPool pool;
  // Two fibers doing FP work interleaved: values must not leak between
  // contexts (the switch saves mxcsr/x87cw; data regs are caller-saved).
  double a = 0, b = 0;
  Fiber f1(pool, [&] {
    double x = 1.0;
    for (int i = 0; i < 10; ++i) {
      x = x * 1.5 + 0.25;
      Fiber::current()->yield();
    }
    a = x;
  });
  Fiber f2(pool, [&] {
    double x = 2.0;
    for (int i = 0; i < 10; ++i) {
      x = x * 0.5 - 0.125;
      Fiber::current()->yield();
    }
    b = x;
  });
  while (!f1.done() || !f2.done()) {
    if (!f1.done()) f1.resume();
    if (!f2.done()) f2.resume();
  }
  double xa = 1.0, xb = 2.0;
  for (int i = 0; i < 10; ++i) {
    xa = xa * 1.5 + 0.25;
    xb = xb * 0.5 - 0.125;
  }
  EXPECT_DOUBLE_EQ(a, xa);
  EXPECT_DOUBLE_EQ(b, xb);
}

TEST(Fiber, ResumeAfterDoneThrows) {
  FiberStackPool pool;
  Fiber f(pool, [] {});
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(FiberStackPool, ReusesReleasedStacks) {
  FiberStackPool pool(64 * 1024, /*max_cached=*/8);
  void* s1 = pool.lease();
  pool.release(s1);
  EXPECT_EQ(pool.cached(), 1u);
  void* s2 = pool.lease();
  EXPECT_EQ(s1, s2);  // LIFO reuse
  pool.release(s2);
}

TEST(FiberStackPool, RoundsStackSizeToPageSize) {
  FiberStackPool pool(1000);  // sub-page request
  EXPECT_GE(pool.stack_size(), 1000u);
  EXPECT_EQ(pool.stack_size() % 4096, 0u);
}

TEST(FiberStackPool, CapsCachedStacks) {
  FiberStackPool pool(64 * 1024, /*max_cached=*/2);
  void* a = pool.lease();
  void* b = pool.lease();
  void* c = pool.lease();
  pool.release(a);
  pool.release(b);
  pool.release(c);  // beyond cap: unmapped
  EXPECT_EQ(pool.cached(), 2u);
}

TEST(Fiber, DeepRecursionWithinStackLimit) {
  FiberStackPool pool(256 * 1024);
  // ~100 frames x ~1KB stays within 256 KB.
  std::function<int(int)> rec = [&](int n) -> int {
    volatile char pad[1024];
    pad[0] = static_cast<char>(n);
    return n == 0 ? pad[0] : rec(n - 1) + 1;
  };
  int result = -1;
  Fiber f(pool, [&] { result = rec(100); });
  f.resume();
  EXPECT_EQ(result, 100);
}

TEST(Fiber, SequentialFibersReuseOneStack) {
  FiberStackPool pool;
  const std::size_t mapped_before = pool.total_mapped();
  for (int i = 0; i < 100; ++i) {
    Fiber f(pool, [] {});
    f.resume();
  }
  // 100 sequential fibers should not map 100 stacks.
  EXPECT_LE(pool.total_mapped() - mapped_before, 1u);
}

// --- recycling: Fiber::reset and FiberPool ---------------------------------

TEST(FiberReset, FinishedFiberRunsAgain) {
  FiberStackPool pool;
  int runs = 0;
  Fiber f(pool, [&] { runs++; });
  f.resume();
  EXPECT_TRUE(f.done());
  f.reset();
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_EQ(runs, 2);
}

TEST(FiberReset, NewEntryAndYieldStateWorkAfterReset) {
  FiberStackPool pool;
  std::vector<int> trace;
  Fiber f(pool, [&] { trace.push_back(1); });
  f.resume();
  f.reset([&] {
    trace.push_back(2);
    Fiber::current()->yield();
    trace.push_back(3);
  });
  f.resume();
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(FiberReset, SuspendedFiberRefusesReset) {
  FiberStackPool pool;
  Fiber f(pool, [] { Fiber::current()->yield(); });
  f.resume();  // now suspended mid-run
  EXPECT_THROW(f.reset(), std::logic_error);
  f.resume();  // let it finish so the stack unwinds normally
  EXPECT_TRUE(f.done());
}

TEST(FiberReset, ExceptionFromRecycledFiberRethrowsFromResume) {
  FiberStackPool pool;
  Fiber f(pool, [] {});
  f.resume();
  f.reset([] { throw std::runtime_error("recycled boom"); });
  try {
    f.resume();
    FAIL() << "expected the kernel exception to rethrow from resume()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "recycled boom");
  }
  EXPECT_TRUE(f.done());
  // A fiber that threw is finished and can be re-armed again.
  bool ran = false;
  f.reset([&] { ran = true; });
  f.resume();
  EXPECT_TRUE(ran);
}

TEST(FiberPoolTest, AcquireRecycleReusesTheSameFiber) {
  FiberStackPool stacks;
  FiberPool pool(stacks);
  auto f = pool.acquire([] {});
  Fiber* first = f.get();
  f->resume();
  pool.recycle(std::move(f));
  EXPECT_EQ(pool.cached(), 1u);
  int x = 0;
  auto g = pool.acquire([&] { x = 7; });
  EXPECT_EQ(g.get(), first);  // same object, re-armed
  g->resume();
  EXPECT_EQ(x, 7);
}

TEST(FiberPoolTest, SuspendedFiberIsDroppedNotCached) {
  FiberStackPool stacks;
  FiberPool pool(stacks);
  auto f = pool.acquire([] { Fiber::current()->yield(); });
  f->resume();  // suspended
  pool.recycle(std::move(f));
  EXPECT_EQ(pool.cached(), 0u);
}

TEST(FiberRecycling, SyncFreeBlockConstructsFarFewerFibersThanThreads) {
  // The ready-queue scheduler reuses a finished thread's fiber for the
  // next thread: a sync-free block of N threads needs O(1) fibers, not
  // N. (Counters include cross-launch FiberPool hits as reuses, so
  // created + reuses == threads.)
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {256};
  p.name = "sync_free_recycling";
  // Pin the fiber path: under OMPX_EXEC=convergent a sync-free block
  // runs fiber-free entirely, which is a different (stronger) property
  // than the recycling this test asserts.
  p.lane_exec = simt::LaneExec::kFiber;
  const simt::LaunchRecord rec = dev.launch_sync(p, [] {});
  EXPECT_EQ(rec.stats.fibers_created + rec.stats.fiber_reuses, 256u);
  EXPECT_LE(rec.stats.fibers_created, 4u) << "sync-free block should run "
                                             "on a handful of fibers";
  EXPECT_GE(rec.stats.fiber_reuses, 252u);
}

TEST(FiberRecycling, BarrierKernelStillOneFiberPerThread) {
  // Every thread suspends at the barrier, so recycling cannot kick in
  // within the launch; all 64 fibers must exist simultaneously.
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {64};
  p.name = "barrier_no_recycling";
  const simt::LaunchRecord rec = dev.launch_sync(p, [] {
    auto& t = simt::this_thread();
    t.block->sync_threads(t);
  });
  EXPECT_EQ(rec.stats.fibers_created + rec.stats.fiber_reuses, 64u);
}

TEST(FiberRecycling, KernelExceptionFromRecycledFiberPropagates) {
  // Force heavy recycling, then throw from a late thread: the rethrow
  // must reach the launch site with the original message.
  simt::Device dev(simt::make_sim_a100_config());
  simt::LaunchParams p;
  p.grid = {1};
  p.block = {128};
  p.name = "recycled_throw";
  try {
    dev.launch_sync(p, [] {
      auto& t = simt::this_thread();
      if (t.flat_tid == 100) throw std::runtime_error("thread 100 went bad");
    });
    FAIL() << "expected kernel exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("thread 100 went bad"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
