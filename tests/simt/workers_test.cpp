// Multi-worker block execution: results and statistics are identical
// for any worker count (blocks are independent, CUDA semantics).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simt/atomics.h"
#include "simt/simt.h"

namespace {

using namespace simt;

Device make_dev(unsigned workers) {
  DeviceConfig c = make_sim_a100_config();
  c.name = "workers-test";
  EngineOptions o;
  o.workers = workers;
  return Device(c, o);
}

class WorkerSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(WorkerSweep, ResultsIdenticalToSequential) {
  Device dev = make_dev(GetParam());
  constexpr std::uint64_t kBlocks = 37, kThreads = 64;
  std::vector<std::uint64_t> out(kBlocks * kThreads, 0);
  auto* p = out.data();
  LaunchParams lp;
  lp.grid = {kBlocks};
  lp.block = {kThreads};
  lp.name = "worker_sweep";
  auto rec = dev.launch_sync(lp, [=] {
    auto& t = this_thread();
    const std::uint64_t flat =
        t.grid_dim.linear(t.block_idx) * t.block_dim.count() + t.flat_tid;
    t.block->sync_threads(t);  // exercise the cooperative path too
    p[flat] = flat * 7 + t.warp_id;
  });
  for (std::uint64_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], i * 7 + (i % kThreads) / 32);
  EXPECT_EQ(rec.stats.block_barriers, kBlocks);
  EXPECT_EQ(rec.stats.threads, kBlocks * kThreads);
}

TEST_P(WorkerSweep, AtomicsAcrossWorkersAreExact) {
  Device dev = make_dev(GetParam());
  long long sum = 0;
  LaunchParams lp;
  lp.grid = {64};
  lp.block = {128};
  lp.mode = ExecMode::kDirect;
  lp.name = "worker_atomics";
  auto rec = dev.launch_sync(lp, [&] { atomic_add(&sum, 3LL); });
  EXPECT_EQ(sum, 3LL * 64 * 128);
  EXPECT_EQ(rec.stats.atomics, 64u * 128u);
}

TEST_P(WorkerSweep, ExceptionsPropagateFromAnyWorker) {
  Device dev = make_dev(GetParam());
  LaunchParams lp;
  lp.grid = {16};
  lp.block = {8};
  lp.mode = ExecMode::kDirect;
  lp.name = "worker_throw";
  EXPECT_THROW(dev.launch_sync(lp,
                               [] {
                                 const auto& t = this_thread();
                                 if (t.grid_dim.linear(t.block_idx) == 11 &&
                                     t.flat_tid == 3)
                                   throw std::runtime_error("worker 11/3");
                               }),
               std::runtime_error);
  // Still usable afterwards.
  std::atomic<int> n{0};
  dev.launch_sync(lp, [&] { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16 * 8);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
