// Differential tests for the two cooperative block schedulers: the
// default ready-queue scheduler (O(waiters) wakeups, fiber recycling,
// batch drain) must produce results, counters, and modeled time
// identical to the legacy O(nthreads)-per-round sweep, for any worker
// count, on barrier-, warp-, and early-exit-heavy kernels. The
// deadlock census must also keep its exact message shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simt/simt.h"

namespace {

using namespace simt;

Device make_dev(BlockScheduler sched, unsigned workers) {
  DeviceConfig c = make_sim_a100_config();
  c.name = "sched-test";
  EngineOptions o;
  o.workers = workers;
  o.scheduler = sched;
  return Device(c, o);
}

struct RunResult {
  std::vector<std::uint64_t> out;
  LaunchRecord rec;
};

using KernelMaker = std::function<KernelFn(std::uint64_t* out)>;

constexpr std::uint64_t kBlocks = 7;
constexpr std::uint32_t kThreads = 64;

RunResult run_one(BlockScheduler sched, unsigned workers,
                  const KernelMaker& mk, const char* name) {
  Device dev = make_dev(sched, workers);
  RunResult r;
  r.out.assign(kBlocks * kThreads, 0);
  LaunchParams p;
  p.grid = {kBlocks};
  p.block = {kThreads};
  p.name = name;
  r.rec = dev.launch_sync(p, mk(r.out.data()));
  return r;
}

/// Runs `mk` under both schedulers and several worker counts and checks
/// every run against the ready-queue single-worker reference: same
/// outputs, same semantic counters, bit-identical modeled time.
void expect_identical_across_schedulers(const KernelMaker& mk,
                                        const char* name) {
  const RunResult ref = run_one(BlockScheduler::kReadyQueue, 1, mk, name);
  for (const BlockScheduler sched :
       {BlockScheduler::kReadyQueue, BlockScheduler::kSweep}) {
    for (const unsigned workers : {1u, 3u}) {
      const RunResult r = run_one(sched, workers, mk, name);
      EXPECT_EQ(r.out, ref.out)
          << name << ": outputs diverged (sched="
          << (sched == BlockScheduler::kSweep ? "sweep" : "queue")
          << ", workers=" << workers << ")";
      EXPECT_EQ(r.rec.stats.block_barriers, ref.rec.stats.block_barriers);
      EXPECT_EQ(r.rec.stats.warp_collectives, ref.rec.stats.warp_collectives);
      EXPECT_EQ(r.rec.stats.warp_syncs, ref.rec.stats.warp_syncs);
      EXPECT_EQ(r.rec.stats.atomics, ref.rec.stats.atomics);
      EXPECT_EQ(r.rec.stats.globalized_bytes, ref.rec.stats.globalized_bytes);
      // Modeled time must be bit-identical: execution diagnostics
      // (fiber counts, steals) never feed the performance model.
      EXPECT_EQ(r.rec.time.total_ms, ref.rec.time.total_ms);
    }
  }
}

TEST(SchedulerDifferential, BarrierHeavyTreeReduction) {
  // Tree reduction over block-shared memory: a wrong or premature
  // barrier wakeup reads a partial sum and corrupts the result.
  expect_identical_across_schedulers(
      [](std::uint64_t* out) -> KernelFn {
        return [out] {
          auto& t = this_thread();
          const std::uint64_t n = t.block_dim.count();
          const std::uint64_t flat = t.grid_dim.linear(t.block_idx) * n +
                                     t.flat_tid;
          auto* sh = static_cast<std::uint64_t*>(
              t.block->shared_alloc(t, n * sizeof(std::uint64_t), 8));
          sh[t.flat_tid] = flat * 3 + 1;
          t.block->sync_threads(t);
          for (std::uint64_t s = n / 2; s > 0; s /= 2) {
            if (t.flat_tid < s) sh[t.flat_tid] += sh[t.flat_tid + s];
            t.block->sync_threads(t);
          }
          out[flat] = sh[0] + t.flat_tid;
        };
      },
      "barrier_tree");
}

TEST(SchedulerDifferential, WarpHeavyButterflyAndBallot) {
  // Butterfly xor-shuffle reduction plus a ballot: warp rendezvous
  // wakeups must deliver every lane the full-warp result.
  expect_identical_across_schedulers(
      [](std::uint64_t* out) -> KernelFn {
        return [out] {
          auto& t = this_thread();
          const std::uint64_t flat =
              t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
              t.flat_tid;
          std::uint64_t v = flat + 1;
          for (std::uint64_t d = 1; d < 32; d <<= 1)
            v += t.warp->collective(t, WarpOp::kShflXor, v, d, ~0ull);
          const std::uint64_t ballot = t.warp->collective(
              t, WarpOp::kBallot, t.lane & 1, 0, ~0ull);
          t.block->sync_threads(t);
          out[flat] = v ^ ballot;
        };
      },
      "warp_butterfly");
}

TEST(SchedulerDifferential, EarlyExitWavesReleaseBarriers) {
  // Threads drop out in waves while survivors keep syncing: exited
  // threads must release the barrier identically under both schedulers.
  expect_identical_across_schedulers(
      [](std::uint64_t* out) -> KernelFn {
        return [out] {
          auto& t = this_thread();
          const std::uint64_t flat =
              t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
              t.flat_tid;
          auto* sh = static_cast<std::uint64_t*>(
              t.block->shared_alloc(t, sizeof(std::uint64_t), 8));
          if (t.flat_tid == 0) *sh = 0;
          t.block->sync_threads(t);
          for (std::uint32_t round = 0; round < 4; ++round) {
            if (t.flat_tid % 4 == round && t.flat_tid != 0) {
              out[flat] = 100 + round;
              return;
            }
            *sh += 1;  // single-threaded block scheduler: no race
            t.block->sync_threads(t);
          }
          out[flat] = *sh;
        };
      },
      "early_exit_waves");
}

RunResult run_exec(LaneExec exec, unsigned workers, const KernelMaker& mk,
                   const char* name) {
  Device dev = make_dev(BlockScheduler::kReadyQueue, workers);
  RunResult r;
  r.out.assign(kBlocks * kThreads, 0);
  LaunchParams p;
  p.grid = {kBlocks};
  p.block = {kThreads};
  p.name = name;
  p.lane_exec = exec;
  r.rec = dev.launch_sync(p, mk(r.out.data()));
  return r;
}

/// Runs `mk` under the fiber path and the convergent lane loop and
/// checks outputs, semantic counters, and modeled time are identical.
/// Modeled time is *bit*-identical by construction: the lane-loop
/// counters (sched_lane_loops / sched_deflations) live in the
/// host-diagnostics section of LaunchStats, which never feeds the
/// performance model — execution strategy changes wall time only.
void expect_identical_across_exec_modes(const KernelMaker& mk,
                                        const char* name) {
  clear_exec_hints();
  const RunResult ref = run_exec(LaneExec::kFiber, 1, mk, name);
  for (const unsigned workers : {1u, 3u}) {
    clear_exec_hints();  // each run re-probes instead of inheriting verdicts
    const RunResult r = run_exec(LaneExec::kConvergent, workers, mk, name);
    EXPECT_EQ(r.out, ref.out)
        << name << ": outputs diverged (exec=convergent, workers=" << workers
        << ")";
    EXPECT_EQ(r.rec.stats.block_barriers, ref.rec.stats.block_barriers);
    EXPECT_EQ(r.rec.stats.warp_collectives, ref.rec.stats.warp_collectives);
    EXPECT_EQ(r.rec.stats.warp_syncs, ref.rec.stats.warp_syncs);
    EXPECT_EQ(r.rec.stats.atomics, ref.rec.stats.atomics);
    EXPECT_EQ(r.rec.stats.globalized_bytes, ref.rec.stats.globalized_bytes);
    EXPECT_EQ(r.rec.time.total_ms, ref.rec.time.total_ms);
    EXPECT_EQ(r.rec.exec_mode, "convergent");
  }
  EXPECT_EQ(ref.rec.exec_mode, "fiber");
  EXPECT_EQ(ref.rec.stats.sched_lane_loops, 0u);
}

TEST(ExecModeDifferential, SyncFreeKernelRunsEveryThreadInline) {
  const KernelMaker mk = [](std::uint64_t* out) -> KernelFn {
    return [out] {
      auto& t = this_thread();
      const std::uint64_t flat =
          t.grid_dim.linear(t.block_idx) * t.block_dim.count() + t.flat_tid;
      out[flat] = flat * 7 + 3;
    };
  };
  expect_identical_across_exec_modes(mk, "exec_sync_free");
  // The convergent run must actually have taken the fiber-free path:
  // every thread inline, zero fibers, zero deflations.
  clear_exec_hints();
  const RunResult r = run_exec(LaneExec::kConvergent, 1, mk, "exec_sync_free");
  EXPECT_EQ(r.rec.stats.sched_lane_loops, kBlocks * kThreads);
  EXPECT_EQ(r.rec.stats.sched_deflations, 0u);
  EXPECT_EQ(r.rec.stats.fibers_created + r.rec.stats.fiber_reuses, 0u);
}

TEST(ExecModeDifferential, BarrierTreeDeflatesOncePerBlockThenMatches) {
  const KernelMaker mk = [](std::uint64_t* out) -> KernelFn {
    return [out] {
      auto& t = this_thread();
      const std::uint64_t n = t.block_dim.count();
      const std::uint64_t flat = t.grid_dim.linear(t.block_idx) * n +
                                 t.flat_tid;
      auto* sh = static_cast<std::uint64_t*>(
          t.block->shared_alloc(t, n * sizeof(std::uint64_t), 8));
      sh[t.flat_tid] = flat * 3 + 1;
      t.block->sync_threads(t);
      for (std::uint64_t s = n / 2; s > 0; s /= 2) {
        if (t.flat_tid < s) sh[t.flat_tid] += sh[t.flat_tid + s];
        t.block->sync_threads(t);
      }
      out[flat] = sh[0] + t.flat_tid;
    };
  };
  expect_identical_across_exec_modes(mk, "exec_barrier_tree");
  // Thread 0 of the first block probes, deflates at its first barrier,
  // and note_exec_deflation pins needs_fibers — so only the first block
  // of the launch pays a probe, and the next launch pays none.
  clear_exec_hints();
  const RunResult probe =
      run_exec(LaneExec::kConvergent, 1, mk, "exec_barrier_tree");
  EXPECT_EQ(probe.rec.stats.sched_deflations, kBlocks);
  EXPECT_EQ(probe.rec.stats.sched_lane_loops, 0u);
  EXPECT_TRUE(exec_hint("exec_barrier_tree").needs_fibers);
  const RunResult learned =
      run_exec(LaneExec::kConvergent, 1, mk, "exec_barrier_tree");
  EXPECT_EQ(learned.rec.stats.sched_deflations, 0u);
  EXPECT_EQ(learned.rec.exec_mode, "fiber");
}

TEST(ExecModeDifferential, WarpButterflyAndEarlyExitWaves) {
  expect_identical_across_exec_modes(
      [](std::uint64_t* out) -> KernelFn {
        return [out] {
          auto& t = this_thread();
          const std::uint64_t flat =
              t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
              t.flat_tid;
          std::uint64_t v = flat + 1;
          for (std::uint64_t d = 1; d < 32; d <<= 1)
            v += t.warp->collective(t, WarpOp::kShflXor, v, d, ~0ull);
          const std::uint64_t ballot = t.warp->collective(
              t, WarpOp::kBallot, t.lane & 1, 0, ~0ull);
          t.block->sync_threads(t);
          out[flat] = v ^ ballot;
        };
      },
      "exec_warp_butterfly");
  expect_identical_across_exec_modes(
      [](std::uint64_t* out) -> KernelFn {
        return [out] {
          auto& t = this_thread();
          const std::uint64_t flat =
              t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
              t.flat_tid;
          auto* sh = static_cast<std::uint64_t*>(
              t.block->shared_alloc(t, sizeof(std::uint64_t), 8));
          if (t.flat_tid == 0) *sh = 0;
          t.block->sync_threads(t);
          for (std::uint32_t round = 0; round < 4; ++round) {
            if (t.flat_tid % 4 == round && t.flat_tid != 0) {
              out[flat] = 100 + round;
              return;
            }
            *sh += 1;
            t.block->sync_threads(t);
          }
          out[flat] = *sh;
        };
      },
      "exec_early_exit");
}

TEST(ExecModeDifferential, AtomicsDeflateBeforeExecutingTheRmw) {
  // The kernel's only collective-ish operation is a global atomic: the
  // convergent probe must deflate *before* the RMW executes, so the
  // replayed thread adds exactly once and the final sum matches fiber
  // mode exactly.
  const KernelMaker mk = [](std::uint64_t* out) -> KernelFn {
    return [out] {
      auto& t = this_thread();
      atomic_add(out, std::uint64_t{1});
      const std::uint64_t flat =
          t.grid_dim.linear(t.block_idx) * t.block_dim.count() + t.flat_tid;
      if (flat != 0) out[flat] = flat + 11;
    };
  };
  expect_identical_across_exec_modes(mk, "exec_atomic_sum");
  clear_exec_hints();
  const RunResult r = run_exec(LaneExec::kConvergent, 1, mk, "exec_atomic_sum");
  EXPECT_EQ(r.out[0], kBlocks * kThreads);
  EXPECT_EQ(r.rec.stats.atomics, kBlocks * kThreads);
  EXPECT_GE(r.rec.stats.sched_deflations, 1u);
}

TEST(ExecModeDifferential, AtomicsOkHintRunsAtomicsInlineNoDeflation) {
  // With the analyzer's atomics_ok verdict registered, the lane loop
  // runs the RMW in place: every lane completes fiber-free, nothing
  // deflates, and the sum is exact (each lane adds exactly once).
  const KernelMaker mk = [](std::uint64_t* out) -> KernelFn {
    return [out] { atomic_add(out, std::uint64_t{1}); };
  };
  clear_exec_hints();
  set_exec_hint("exec_atomic_inline", {true, false, true});
  const RunResult r =
      run_exec(LaneExec::kConvergent, 1, mk, "exec_atomic_inline");
  EXPECT_EQ(r.out[0], kBlocks * kThreads);
  EXPECT_EQ(r.rec.stats.sched_deflations, 0u);
  EXPECT_EQ(r.rec.stats.sched_lane_loops, kBlocks * kThreads);
  EXPECT_EQ(r.rec.stats.atomics, kBlocks * kThreads);
  clear_exec_hints();
}

TEST(ExecModeDifferential, BarrierAfterInlineAtomicIsALogicError) {
  // atomics_ok promises no rendezvous after an atomic — once the RMW
  // ran inline the lane's prefix is not replayable, so a barrier must
  // fail loudly (wrong hint) instead of deflating into corruption.
  clear_exec_hints();
  set_exec_hint("exec_atomic_then_sync", {true, false, true});
  Device dev = make_dev(BlockScheduler::kReadyQueue, 1);
  LaunchParams p;
  p.grid = {1};
  p.block = {kThreads};
  p.name = "exec_atomic_then_sync";
  p.lane_exec = LaneExec::kConvergent;
  std::uint64_t cell = 0;
  try {
    dev.launch_sync(p, [&cell] {
      auto& t = this_thread();
      atomic_add(&cell, std::uint64_t{1});
      t.block->sync_threads(t);
    });
    FAIL() << "barrier after an inline atomic must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("atomics_ok"), std::string::npos)
        << e.what();
  }
  clear_exec_hints();
}

TEST(ExecModeDifferential, UnhintedAtomicStillDeflatesSafely) {
  // Without the hint the old conservative behavior is untouched: the
  // probe deflates before the RMW executes and the result is exact.
  const KernelMaker mk = [](std::uint64_t* out) -> KernelFn {
    return [out] { atomic_add(out, std::uint64_t{1}); };
  };
  clear_exec_hints();
  const RunResult r =
      run_exec(LaneExec::kConvergent, 1, mk, "exec_atomic_unhinted");
  EXPECT_EQ(r.out[0], kBlocks * kThreads);
  EXPECT_GE(r.rec.stats.sched_deflations, 1u);
  EXPECT_TRUE(exec_hint("exec_atomic_unhinted").needs_fibers);
  clear_exec_hints();
}

TEST(ExecModeDifferential, CensusMessageShapeIdenticalUnderConvergent) {
  // The deflation probe must not distort the deadlock census: thread 0
  // deflates at its warp collective, the block restarts on fibers, and
  // the report reads exactly as in fiber mode.
  clear_exec_hints();
  for (const LaneExec exec : {LaneExec::kFiber, LaneExec::kConvergent}) {
    Device dev = make_dev(BlockScheduler::kReadyQueue, 1);
    LaunchParams p;
    p.grid = {1};
    p.block = {kThreads};
    p.name = "census_exec";
    p.lane_exec = exec;
    clear_exec_hints();
    try {
      dev.launch_sync(p, [] {
        auto& t = this_thread();
        if (t.flat_tid == 0) {
          t.warp->collective(t, WarpOp::kSync, 0, 0, 0b11);
        } else {
          t.block->sync_threads(t);
        }
      });
      FAIL() << "expected a deadlock diagnosis";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("SIMT deadlock in block scheduler"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("(kernel 'census_exec', block (0,0,0))"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("64 live threads, 63 at block barrier, "
                         "1 in warp collectives"),
                std::string::npos)
          << msg;
    }
  }
}

TEST(ExecPolicy, AutoConsultsHintsAndDeflationLearns) {
  const ExecPolicy saved = exec_policy();
  clear_exec_hints();
  set_exec_policy(ExecPolicy::kAuto);
  Device dev = make_dev(BlockScheduler::kReadyQueue, 1);
  LaunchParams p;
  p.grid = {2};
  p.block = {32};
  p.name = "auto_kernel";
  // Unhinted kernels stay on fibers under auto (conservative default).
  LaunchRecord rec = dev.launch_sync(p, [] {});
  EXPECT_EQ(rec.exec_mode, "fiber");
  // A convergent hint opts the kernel in...
  set_exec_hint("auto_kernel", {true, false});
  rec = dev.launch_sync(p, [] {});
  EXPECT_EQ(rec.exec_mode, "convergent");
  EXPECT_EQ(rec.stats.sched_lane_loops, 64u);
  // ...and a hint that was wrong about synchronization is corrected by
  // the first deflation: auto routes back to fibers from then on.
  set_exec_hint("auto_sync_kernel", {true, false});
  p.name = "auto_sync_kernel";
  rec = dev.launch_sync(p, [] {
    auto& t = this_thread();
    t.block->sync_threads(t);
  });
  EXPECT_EQ(rec.exec_mode, "convergent");
  EXPECT_GE(rec.stats.sched_deflations, 1u);
  EXPECT_TRUE(exec_hint("auto_sync_kernel").needs_fibers);
  rec = dev.launch_sync(p, [] {
    auto& t = this_thread();
    t.block->sync_threads(t);
  });
  EXPECT_EQ(rec.exec_mode, "fiber");
  set_exec_policy(saved);
  clear_exec_hints();
}

TEST(SchedulerDeadlock, CensusMessageShapeIdenticalAcrossSchedulers) {
  // Thread 0 waits on a two-lane warp collective lane 1 never joins
  // (lane 1 sits at the block barrier with everyone else): a genuine
  // deadlock. Both schedulers must report the same precise census.
  for (const BlockScheduler sched :
       {BlockScheduler::kReadyQueue, BlockScheduler::kSweep}) {
    Device dev = make_dev(sched, 1);
    LaunchParams p;
    p.grid = {1};
    p.block = {kThreads};
    p.name = "census";
    try {
      dev.launch_sync(p, [] {
        auto& t = this_thread();
        if (t.flat_tid == 0) {
          t.warp->collective(t, WarpOp::kSync, 0, 0, 0b11);
        } else {
          t.block->sync_threads(t);
        }
      });
      FAIL() << "expected a deadlock diagnosis";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("SIMT deadlock in block scheduler"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("(kernel 'census', block (0,0,0))"),
                std::string::npos)
          << msg;
      EXPECT_NE(msg.find("64 live threads, 63 at block barrier, "
                         "1 in warp collectives"),
                std::string::npos)
          << msg;
    }
  }
}

TEST(SchedulerOptions, ExplicitStealChunkProducesSameResults) {
  // steal_chunk_blocks only changes how blocks are batched onto
  // workers, never what they compute.
  const KernelMaker mk = [](std::uint64_t* out) -> KernelFn {
    return [out] {
      auto& t = this_thread();
      const std::uint64_t flat =
          t.grid_dim.linear(t.block_idx) * t.block_dim.count() + t.flat_tid;
      t.block->sync_threads(t);
      out[flat] = flat * 13 + 5;
    };
  };
  const RunResult ref = run_one(BlockScheduler::kReadyQueue, 1, mk, "chunk");
  for (const std::uint64_t chunk : {1ull, 2ull, 64ull}) {
    DeviceConfig c = make_sim_a100_config();
    c.name = "sched-test";
    EngineOptions o;
    o.workers = 3;
    o.steal_chunk_blocks = chunk;
    Device dev(c, o);
    std::vector<std::uint64_t> out(kBlocks * kThreads, 0);
    LaunchParams p;
    p.grid = {kBlocks};
    p.block = {kThreads};
    p.name = "chunk";
    const LaunchRecord rec = dev.launch_sync(p, mk(out.data()));
    EXPECT_EQ(out, ref.out) << "chunk=" << chunk;
    EXPECT_EQ(rec.stats.block_barriers, ref.rec.stats.block_barriers);
    EXPECT_EQ(rec.time.total_ms, ref.rec.time.total_ms);
  }
}

}  // namespace
