// C-ABI error-contract conformance tests.
//
// Every ompx_* / kl* entry point must be exception-free across the C
// boundary and must honor the written contract: null out-params and
// bad indices report INVALID_VALUE / INVALID_DEVICE, destroyed handles
// are caught by the live registry instead of invoking UB, enumeration
// is two-call with explicit capacity, and the last-result slot is
// per-thread. These tests pin the contract entry point by entry point.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/ompx.h"
#include "kl/kl.h"

namespace {

using namespace kl;

TEST(ConformanceResults, OmpxResultStringsDistinctAndNonNull) {
  const ompx_result_t codes[] = {
      OMPX_SUCCESS,
      OMPX_ERROR_INVALID_VALUE,
      OMPX_ERROR_MEMORY_ALLOCATION,
      OMPX_ERROR_INVALID_DEVICE,
      OMPX_ERROR_LAUNCH_FAILURE,
      OMPX_ERROR_OUT_OF_MEMORY,
      OMPX_ERROR_DEVICE_LOST,
      OMPX_ERROR_TIMEOUT,
      OMPX_ERROR_ADMISSION,
      OMPX_ERROR_UNKNOWN,
  };
  std::vector<std::string> seen;
  for (ompx_result_t c : codes) {
    const char* s = ompx_result_string(c);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(std::string(s).empty());
    for (const auto& prev : seen) EXPECT_NE(prev, s);
    seen.emplace_back(s);
  }
}

TEST(ConformanceResults, KlErrorStringsDistinctAndNonNull) {
  const klError codes[] = {
      klSuccess,          klErrorInvalidValue, klErrorMemoryAllocation,
      klErrorInvalidDevice, klErrorLaunchFailure, klErrorNotReady,
      klErrorDeviceLost,  klErrorTimeout,      klErrorAdmission,
      klErrorUnknown,
  };
  std::vector<std::string> seen;
  for (klError c : codes) {
    const char* s = klGetErrorString(c);
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(std::string(s).empty());
    for (const auto& prev : seen) EXPECT_NE(prev, s);
    seen.emplace_back(s);
  }
}

// The last-result slot is per host thread (cudaGetLastError semantics):
// a failure on one thread must never be observable from another.
TEST(ConformanceResults, LastResultIsThreadLocal) {
  ASSERT_EQ(ompx_get_last_result(), OMPX_SUCCESS);
  std::thread other([] {
    // Fail on the other thread only.
    EXPECT_EQ(ompx_set_device(-1), OMPX_ERROR_INVALID_DEVICE);
    EXPECT_EQ(ompx_peek_last_result(), OMPX_ERROR_INVALID_DEVICE);
    EXPECT_EQ(klSetDevice(-7), klErrorInvalidDevice);
    EXPECT_EQ(klPeekAtLastError(), klErrorInvalidDevice);
    // get clears, a second get sees success again.
    EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_INVALID_DEVICE);
    EXPECT_EQ(ompx_get_last_result(), OMPX_SUCCESS);
    EXPECT_EQ(klGetLastError(), klErrorInvalidDevice);
    EXPECT_EQ(klGetLastError(), klSuccess);
  });
  other.join();
  // This thread's slot never saw the other thread's failures.
  EXPECT_EQ(ompx_peek_last_result(), OMPX_SUCCESS);
  EXPECT_EQ(klPeekAtLastError(), klSuccess);
}

TEST(ConformanceDevice, BadIndicesReportInvalidDevice) {
  int count = 0;
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  EXPECT_EQ(ompx_set_device(-1), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_set_device(ompx_get_num_devices()),
            OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_device_reset(-3), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_mempool_trim(1000), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(klSetDevice(-1), klErrorInvalidDevice);
  EXPECT_EQ(klGetDeviceCount(&count), klSuccess);
  EXPECT_EQ(klSetDevice(count), klErrorInvalidDevice);
  EXPECT_EQ(klSetDevice(0), klSuccess);
}

TEST(ConformanceDevice, NullOutParamsReportInvalidValue) {
  EXPECT_EQ(klGetDevice(nullptr), klErrorInvalidValue);
  EXPECT_EQ(klGetDeviceCount(nullptr), klErrorInvalidValue);
  EXPECT_EQ(ompx_device_can_access_peer(nullptr, 0, 1),
            OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_mempool_get_stats(0, nullptr), OMPX_ERROR_INVALID_VALUE);
  float ms = 0.0f;
  EXPECT_EQ(klEventElapsedTime(&ms, nullptr, nullptr), klErrorInvalidValue);
  EXPECT_EQ(klEventElapsedTime(nullptr, nullptr, nullptr),
            klErrorInvalidValue);
}

TEST(ConformanceStream, NullHandleContract) {
  // Destroying null is a CUDA-tolerated no-op; *using* null is an error.
  EXPECT_EQ(ompx_stream_destroy(nullptr), OMPX_SUCCESS);
  EXPECT_EQ(ompx_event_destroy(nullptr), OMPX_SUCCESS);
  EXPECT_EQ(ompx_graph_destroy(nullptr), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_synchronize(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_event_synchronize(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_stream_is_capturing(nullptr), 0);
  int x = 0;
  EXPECT_EQ(ompx_memcpy_async(&x, &x, sizeof x, nullptr),
            OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_malloc_async(16, nullptr), nullptr);
  EXPECT_EQ(ompx_peek_last_result(), OMPX_ERROR_INVALID_VALUE);
  (void)ompx_get_last_result();
}

TEST(ConformanceStream, UseAfterDestroyIsCaughtOmpx) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  ompx_event_t e = ompx_event_create();
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(ompx_event_record(e, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_event_destroy(e), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);

  // Every later use of the dead handles must fail cleanly with
  // INVALID_VALUE — no crash, no UB, and a usable detail string.
  EXPECT_EQ(ompx_stream_synchronize(s), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_stream_destroy(s), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_event_record(e, nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_event_synchronize(e), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_stream_wait_event(nullptr, e), OMPX_ERROR_INVALID_VALUE);
  int x = 0;
  EXPECT_EQ(ompx_memset_async(&x, 0, sizeof x, s), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_stream_begin_capture(s), OMPX_ERROR_INVALID_VALUE);
  const std::string detail = ompx_last_result_detail();
  EXPECT_NE(detail.find("invalid or destroyed"), std::string::npos);
  (void)ompx_get_last_result();
}

TEST(ConformanceStream, UseAfterDestroyIsCaughtKl) {
  klStream_t s = nullptr;
  ASSERT_EQ(klStreamCreate(&s), klSuccess);
  ASSERT_NE(s, nullptr);
  klEvent_t e = nullptr;
  ASSERT_EQ(klEventCreate(&e), klSuccess);
  ASSERT_EQ(klEventRecord(e, s), klSuccess);
  ASSERT_EQ(klStreamSynchronize(s), klSuccess);
  ASSERT_EQ(klEventDestroy(e), klSuccess);
  ASSERT_EQ(klStreamDestroy(s), klSuccess);

  EXPECT_EQ(klStreamSynchronize(s), klErrorInvalidValue);
  EXPECT_EQ(klStreamDestroy(s), klErrorInvalidValue);
  EXPECT_EQ(klEventSynchronize(e), klErrorInvalidValue);
  EXPECT_EQ(klEventRecord(e), klErrorInvalidValue);
  int x = 0;
  EXPECT_EQ(klMemsetAsync(&x, 0, sizeof x, s), klErrorInvalidValue);
  EXPECT_EQ(klStreamBeginCapture(s), klErrorInvalidValue);
  const std::string detail = klGetLastErrorDetail();
  EXPECT_NE(detail.find("invalid or destroyed"), std::string::npos);
  (void)klGetLastError();
}

TEST(ConformanceGraph, TwoCallEnumerationHonorsCapacity) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  void* buf = ompx_malloc(256);
  ASSERT_NE(buf, nullptr);
  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_is_capturing(s), 1);
  ASSERT_EQ(ompx_memset_async(buf, 0, 256, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_memset_async(buf, 1, 128, s), OMPX_SUCCESS);
  ompx_graph_t g = nullptr;
  ASSERT_EQ(ompx_stream_end_capture(s, &g), OMPX_SUCCESS);
  ASSERT_NE(g, nullptr);

  std::size_t count = 0;
  ASSERT_EQ(ompx_graph_node_count(g, &count), OMPX_SUCCESS);
  ASSERT_EQ(count, 2u);
  // Capacity smaller than the node count: fill what fits, report it.
  ompx_graph_node_info_t one[1];
  std::size_t written = 99;
  ASSERT_EQ(ompx_graph_get_nodes(g, one, 1, &written), OMPX_SUCCESS);
  EXPECT_EQ(written, 1u);
  // Zero capacity with a null array is a valid "probe" call.
  ASSERT_EQ(ompx_graph_get_nodes(g, nullptr, 0, &written), OMPX_SUCCESS);
  EXPECT_EQ(written, 0u);
  // Null written pointer is the caller's bug, reported not crashed.
  EXPECT_EQ(ompx_graph_get_nodes(g, one, 1, nullptr),
            OMPX_ERROR_INVALID_VALUE);

  ASSERT_EQ(ompx_graph_destroy(g), OMPX_SUCCESS);
  // Use after destroy: caught by the live-handle registry.
  EXPECT_EQ(ompx_graph_node_count(g, &count), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_graph_launch(g, s), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_free(buf), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

TEST(ConformanceGraph, EndCaptureNullOutParamDiscardsCapture) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_end_capture(s, nullptr), OMPX_ERROR_INVALID_VALUE);
  // The stream is usable again: the discarded capture did not wedge it.
  EXPECT_EQ(ompx_stream_is_capturing(s), 0);
  EXPECT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

TEST(ConformanceWatchdog, BudgetRoundTripsAndDisables) {
  const double saved = ompx_get_watchdog_ms();
  ASSERT_EQ(ompx_set_watchdog_ms(12.5), OMPX_SUCCESS);
  EXPECT_DOUBLE_EQ(ompx_get_watchdog_ms(), 12.5);
  ASSERT_EQ(klSetWatchdogMs(250.0), klSuccess);
  EXPECT_DOUBLE_EQ(ompx_get_watchdog_ms(), 250.0);
  // <= 0 disables.
  ASSERT_EQ(ompx_set_watchdog_ms(0.0), OMPX_SUCCESS);
  EXPECT_DOUBLE_EQ(ompx_get_watchdog_ms(), 0.0);
  ASSERT_EQ(ompx_set_watchdog_ms(-1.0), OMPX_SUCCESS);
  EXPECT_LE(ompx_get_watchdog_ms(), 0.0);
  ASSERT_EQ(ompx_set_watchdog_ms(saved), OMPX_SUCCESS);
}

TEST(ConformanceFault, SpecValidationAndStatus) {
  ASSERT_EQ(ompx_fault_active(), 0);
  // Malformed specs are rejected with INVALID_VALUE and leave the
  // injector disarmed.
  EXPECT_EQ(ompx_fault_enable("bogus_site"), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_fault_enable("oom:after="), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_fault_enable("oom:p=1.5"), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_fault_enable("oom:after=2junk"), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_fault_active(), 0);
  (void)ompx_get_last_result();

  // A valid spec arms; disable disarms; null spec also disarms.
  ASSERT_EQ(ompx_fault_enable("oom:after=1000000"), OMPX_SUCCESS);
  EXPECT_EQ(ompx_fault_active(), 1);
  ASSERT_EQ(ompx_fault_disable(), OMPX_SUCCESS);
  EXPECT_EQ(ompx_fault_active(), 0);
  ASSERT_EQ(ompx_fault_enable("stall:ms=1,every=1000000"), OMPX_SUCCESS);
  EXPECT_EQ(ompx_fault_active(), 1);
  ASSERT_EQ(ompx_fault_enable(nullptr), OMPX_SUCCESS);
  EXPECT_EQ(ompx_fault_active(), 0);

  // kl mirrors the same validation.
  EXPECT_EQ(klFaultInject("nope"), klErrorInvalidValue);
  (void)klGetLastError();
  ASSERT_EQ(klFaultInject("graph:after=1000000"), klSuccess);
  EXPECT_EQ(ompx_fault_active(), 1);
  ASSERT_EQ(klFaultInject(nullptr), klSuccess);
  EXPECT_EQ(ompx_fault_active(), 0);
}

// Cross-API free audit: mixing the plain and stream-ordered allocator
// families must be rejected with a clean INVALID_VALUE, never by
// corrupting the pool (a block parked for reuse that a plain free also
// released would dangle until trim double-frees it).
TEST(ConformanceCrossApiFree, AsyncFreeOfPlainPointerIsRejected) {
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  ompx_mempool_stats_t before{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &before), OMPX_SUCCESS);
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);

  void* plain = ompx_malloc(4096);
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(ompx_free_async(plain, s), OMPX_ERROR_INVALID_VALUE);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  // The rejection left the pool untouched: nothing was parked, so a
  // same-size malloc_async cannot alias the still-live plain block.
  ompx_mempool_stats_t after{};
  ASSERT_EQ(ompx_mempool_get_stats(0, &after), OMPX_SUCCESS);
  EXPECT_EQ(after.frees, before.frees);
  void* other = ompx_malloc_async(4096, s);
  ASSERT_NE(other, nullptr);
  EXPECT_NE(other, plain);
  // The allocation is still live and freeable through its own API.
  EXPECT_EQ(ompx_free(plain), OMPX_SUCCESS);
  EXPECT_EQ(ompx_free_async(other, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

TEST(ConformanceCrossApiFree, PlainFreeOfAsyncPointerIsRejected) {
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  void* p = ompx_malloc_async(2048, s);
  ASSERT_NE(p, nullptr);
  // While the stream owns the block, both plain frees must refuse —
  // ompx and kl are the same registry underneath.
  EXPECT_EQ(ompx_free(p), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(klFree(p), klErrorInvalidValue);
  // The correct path still works after the rejections.
  EXPECT_EQ(ompx_free_async(p, s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  (void)ompx_get_last_result();
  (void)klGetLastError();
}

TEST(ConformanceCrossApiFree, StreamDestroyReleasesAsyncOwnership) {
  // A malloc_async block that outlives its stream is not stranded:
  // destroying the stream releases the async claim, so the plain free
  // becomes the documented way to release it.
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  void* p = ompx_malloc_async(1024, s);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_free(p), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

TEST(ConformanceCrossApiFree, PeerPointerIsRoutedToItsOwnDevice) {
  // free_async on a stream of the wrong device: the registry resolves
  // the true owner and refuses with INVALID_VALUE instead of touching
  // the wrong device's pool.
  ASSERT_EQ(ompx_set_device(1), OMPX_SUCCESS);
  void* peer = ompx_malloc(512);
  ASSERT_NE(peer, nullptr);
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ompx_free_async(peer, s), OMPX_ERROR_INVALID_VALUE);
  ASSERT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  // Still live; the owning device frees it.
  EXPECT_EQ(ompx_free(peer), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

TEST(ConformanceFault, FaultScopeRestoresPreviousSpec) {
  ASSERT_EQ(ompx_fault_active(), 0);
  {
    ompx::FaultScope outer("oom:after=1000000");
    EXPECT_EQ(ompx_fault_active(), 1);
    {
      ompx::FaultScope inner("graph:after=1000000");
      EXPECT_EQ(ompx_fault_active(), 1);
    }
    // Inner scope restored the outer spec, not "disabled".
    EXPECT_EQ(ompx_fault_active(), 1);
  }
  EXPECT_EQ(ompx_fault_active(), 0);
}

}  // namespace
