// Fault-injection end-to-end tests: every documented OMPX_FAULT site
// fires deterministically, surfaces as a clean ompx_result_t / klError
// (never a crash or a hang), and the process keeps working afterwards —
// retry succeeds, other streams and devices stay usable, and checksums
// are unchanged once the fault window closes.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "apps/harness.h"
#include "core/ompx.h"
#include "kl/kl.h"
#include "simt/simt.h"

namespace {

using namespace kl;

int registry_index_of(simt::Device& dev) {
  const auto& reg = simt::device_registry();
  for (std::size_t i = 0; i < reg.size(); ++i)
    if (reg[i] == &dev) return static_cast<int>(i);
  return -1;
}

TEST(FaultOom, EveryAllocationFailsCleanlyBothLayers) {
  ompx::FaultScope fault("oom");
  // ompx: nullptr with OUT_OF_MEMORY in the thread slot.
  EXPECT_EQ(ompx_malloc(1024), nullptr);
  EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_OUT_OF_MEMORY);
  // kl: klErrorMemoryAllocation (the CUDA code CUDA apps test for) and
  // a nulled out-param.
  void* p = reinterpret_cast<void*>(0x1);
  EXPECT_EQ(klMalloc(&p, 1024), klErrorMemoryAllocation);
  EXPECT_EQ(p, nullptr);
  (void)klGetLastError();
}

TEST(FaultOom, OneShotFailureThenRetrySucceeds) {
  void* p = nullptr;
  {
    ompx::FaultScope fault("oom:after=0");
    p = ompx_malloc(1024);
    EXPECT_EQ(p, nullptr);
    EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_OUT_OF_MEMORY);
    // The `after` trigger is one-shot: the retry allocates.
    p = ompx_malloc(1024);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(ompx_free(p), OMPX_SUCCESS);
}

TEST(FaultOom, InjectedCountReportsFiredFaults) {
  ompx::FaultScope fault("oom:every=1");
  const unsigned long long before = ompx_fault_injected_count();
  EXPECT_EQ(ompx_malloc(64), nullptr);
  EXPECT_EQ(ompx_malloc(64), nullptr);
  EXPECT_GE(ompx_fault_injected_count(), before + 2);
  (void)ompx_get_last_result();
}

// The stream-ordered allocator must trim its own free pool and retry
// before reporting device OOM: a pooled block of the wrong size is
// reclaimable capacity, not a reason to fail.
TEST(FaultOom, MallocAsyncTrimsPoolBeforeReportingOom) {
  simt::DeviceConfig cfg = simt::make_sim_a100_config();
  cfg.name = "tiny-mem";
  cfg.global_mem_bytes = 1u << 20;  // 1 MiB
  simt::Device dev(cfg);
  simt::Stream* s = dev.create_stream();
  // Fill most of memory, then park the block in the stream pool.
  void* a = s->malloc_async(600u << 10);
  ASSERT_NE(a, nullptr);
  s->free_async(a);
  s->synchronize();
  // A 700 KiB request cannot coexist with the pooled 600 KiB block,
  // and the pool cannot recycle it (wrong size). Only trim-and-retry
  // makes this succeed.
  void* b = s->malloc_async(700u << 10);
  ASSERT_NE(b, nullptr);
  s->free_async(b);
  s->synchronize();
  dev.destroy_stream(s);
}

TEST(FaultHostAlloc, StreamAndEventCreationFailCleanly) {
  {
    ompx::FaultScope fault("host_oom");
    EXPECT_EQ(ompx_stream_create(), nullptr);
    EXPECT_EQ(ompx_peek_last_result(), OMPX_ERROR_MEMORY_ALLOCATION);
    EXPECT_EQ(ompx_event_create(), nullptr);
    klStream_t s = reinterpret_cast<klStream_t>(0x1);
    EXPECT_EQ(klStreamCreate(&s), klErrorMemoryAllocation);
    EXPECT_EQ(s, nullptr);
    (void)ompx_get_last_result();
    (void)klGetLastError();
  }
  // Outside the window creation works again.
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
}

TEST(FaultGraph, InstantiateFailsThenRetrySucceeds) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  void* buf = ompx_malloc(128);
  ASSERT_NE(buf, nullptr);
  ASSERT_EQ(ompx_stream_begin_capture(s), OMPX_SUCCESS);
  ASSERT_EQ(ompx_memset_async(buf, 7, 128, s), OMPX_SUCCESS);
  ompx_graph_t g = nullptr;
  ASSERT_EQ(ompx_stream_end_capture(s, &g), OMPX_SUCCESS);
  {
    ompx::FaultScope fault("graph");
    EXPECT_NE(ompx_graph_instantiate(g), OMPX_SUCCESS);
  }
  // The failed instantiation left the graph reusable.
  EXPECT_EQ(ompx_graph_instantiate(g), OMPX_SUCCESS);
  EXPECT_EQ(ompx_graph_launch(g, s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_synchronize(s), OMPX_SUCCESS);
  EXPECT_EQ(ompx_graph_destroy(g), OMPX_SUCCESS);
  EXPECT_EQ(ompx_free(buf), OMPX_SUCCESS);
  EXPECT_EQ(ompx_stream_destroy(s), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

TEST(FaultPeer, PeerCopyFailsThenRetrySucceeds) {
  ASSERT_GE(ompx_get_num_devices(), 2);
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  void* src = ompx_malloc(256);
  ASSERT_NE(src, nullptr);
  ASSERT_EQ(ompx_set_device(1), OMPX_SUCCESS);
  void* dst = ompx_malloc(256);
  ASSERT_NE(dst, nullptr);
  {
    ompx::FaultScope fault("peer");
    EXPECT_EQ(ompx_memcpy_peer(dst, 1, src, 0, 256),
              OMPX_ERROR_LAUNCH_FAILURE);
  }
  EXPECT_EQ(ompx_memcpy_peer(dst, 1, src, 0, 256), OMPX_SUCCESS);
  EXPECT_EQ(ompx_free(dst), OMPX_SUCCESS);
  ASSERT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  EXPECT_EQ(ompx_free(src), OMPX_SUCCESS);
  (void)ompx_get_last_result();
}

// Device loss and recovery through the kl layer: the first launch after
// arming poisons the device, every subsequent call reports
// klErrorDeviceLost, and klDeviceReset restores service.
TEST(FaultDeviceLost, KlReportsLossUntilReset) {
  using namespace kl;
  ASSERT_EQ(klSetDevice(0), klSuccess);
  ASSERT_EQ(klFaultInject("device_lost:after=0"), klSuccess);
  KernelAttrs attrs;
  attrs.name = "fault_probe";
  const klError launch_err =
      launch({1}, {32}, 0, nullptr, attrs, [] {});
  const klError sync_err = klDeviceSynchronize();
  ASSERT_EQ(klFaultInject(nullptr), klSuccess);
  // The loss surfaces on the launch or on the synchronize, depending on
  // where submission noticed it — either way as klErrorDeviceLost.
  EXPECT_TRUE(launch_err == klErrorDeviceLost ||
              sync_err == klErrorDeviceLost);
  // Poisoned: even a plain allocation refuses.
  void* p = nullptr;
  EXPECT_EQ(klMalloc(&p, 64), klErrorDeviceLost);
  // Recovery.
  ASSERT_EQ(klDeviceReset(), klSuccess);
  ASSERT_EQ(klMalloc(&p, 64), klSuccess);
  EXPECT_EQ(klFree(p), klSuccess);
  (void)klGetLastError();
}

// The full matrix the issue asks for: for every fig8 app, a clean
// baseline, then an injected device loss that surfaces as a catchable
// error (not a crash), then reset + rerun reproducing the baseline
// checksum exactly.
TEST(FaultDeviceLost, AllAppsFailCleanlyAndRecoverWithSameChecksum) {
  simt::Device& dev = simt::sim_a100();
  const int index = registry_index_of(dev);
  ASSERT_GE(index, 0);
  for (const apps::AppDesc& app : apps::registry()) {
    SCOPED_TRACE(app.name);
    const apps::RunResult baseline =
        apps::run_cell(app, apps::Version::kOmpx, dev);
    ASSERT_TRUE(baseline.valid);

    bool threw = false;
    {
      ompx::FaultScope fault("device_lost:after=0");
      try {
        (void)apps::run_cell(app, apps::Version::kOmpx, dev);
      } catch (const std::exception&) {
        threw = true;
      }
    }
    EXPECT_TRUE(threw) << "injected device loss did not surface";
    ASSERT_EQ(ompx_device_reset(index), OMPX_SUCCESS);

    const apps::RunResult retry =
        apps::run_cell(app, apps::Version::kOmpx, dev);
    EXPECT_TRUE(retry.valid);
    EXPECT_EQ(retry.checksum, baseline.checksum);
  }
}

// Wall-clock watchdog: a stalled op kills only its own stream, with
// OMPX_ERROR_TIMEOUT semantics, while sibling streams keep working and
// the host never blocks past the budget.
TEST(FaultWatchdog, WallClockHangKillsOnlyTheOffendingStream) {
  simt::Device dev(simt::make_sim_a100_config());
  simt::Stream* victim = dev.create_stream();
  simt::Stream* bystander = dev.create_stream();
  ASSERT_EQ(ompx_set_watchdog_ms(100.0), OMPX_SUCCESS);
  {
    // One-shot 1.5 s stall on the next stream op: a hang 15x the
    // budget. The watchdog must abandon it, not wait it out.
    ompx::FaultScope fault("stall:after=0,ms=1500");
    victim->host_fn([] {});
    EXPECT_THROW(victim->synchronize(), simt::TimeoutError);
  }
  // The dead stream stays dead...
  EXPECT_THROW(victim->host_fn([] {}), simt::TimeoutError);
  // ...but its sibling and the rest of the device keep working.
  int ran = 0;
  bystander->host_fn([&] { ran = 1; });
  bystander->synchronize();
  EXPECT_EQ(ran, 1);
  // Destroying a timed-out stream parks it safely (its zombie worker
  // may still hold the pointer); both destroys must return cleanly.
  dev.destroy_stream(victim);
  dev.destroy_stream(bystander);
  ASSERT_EQ(ompx_set_watchdog_ms(0.0), OMPX_SUCCESS);
}

// Modeled-time watchdog: a kernel whose *simulated* duration exceeds
// the budget fails with klErrorTimeout without wedging the stream.
TEST(FaultWatchdog, ModeledOverrunReportsTimeout) {
  using namespace kl;
  ASSERT_EQ(klSetDevice(0), klSuccess);
  klStream_t s = nullptr;
  ASSERT_EQ(klStreamCreate(&s), klSuccess);
  ASSERT_EQ(klSetWatchdogMs(1e-7), klSuccess);
  KernelAttrs attrs;
  attrs.name = "watchdog_overrun";
  attrs.cost.flops_per_thread = 1e6;
  const klError launch_err =
      launch({64}, {256}, 0, s, attrs, [] {});
  klError observed = launch_err;
  if (observed == klSuccess) observed = klStreamSynchronize(s);
  ASSERT_EQ(klSetWatchdogMs(0.0), klSuccess);
  EXPECT_EQ(observed, klErrorTimeout);
  // Modeled overruns are per launch, not stream poison: the stream
  // still accepts and completes work.
  EXPECT_EQ(klStreamSynchronize(s), klSuccess);
  EXPECT_EQ(klStreamDestroy(s), klSuccess);
  (void)klGetLastError();
}

}  // namespace
