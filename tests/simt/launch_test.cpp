// Integration tests for the block runner and the synchronous launch
// path: indexing, barriers, shared memory, direct mode, error handling.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/atomics.h"
#include "simt/simt.h"

namespace {

using namespace simt;

// Standalone device for tests that need custom configs; the registry
// devices are exercised too.
DeviceConfig tiny_config(std::uint32_t warp = 32) {
  DeviceConfig c = make_sim_a100_config();
  c.name = "tiny";
  c.warp_size = warp;
  return c;
}

TEST(Launch, EveryThreadRunsExactlyOnce) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {4, 2, 2};
  p.block = {8, 4, 2};
  const std::uint64_t total = p.grid.count() * p.block.count();
  std::vector<int> hits(total, 0);
  auto rec = dev.launch_sync(p, [&] {
    auto& t = this_thread();
    const std::uint64_t bid = t.grid_dim.linear(t.block_idx);
    const std::uint64_t tid = t.block_dim.linear(t.thread_idx);
    hits[bid * t.block_dim.count() + tid]++;
  });
  EXPECT_EQ(rec.stats.threads, total);
  EXPECT_EQ(rec.stats.blocks, p.grid.count());
  for (auto h : hits) EXPECT_EQ(h, 1);
}

TEST(Launch, MultiDimIndexingMatchesCudaConvention) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {2, 3, 1};
  p.block = {4, 2, 1};
  // Record global x/y coordinates per thread.
  std::vector<std::pair<unsigned, unsigned>> coords(p.grid.count() *
                                                    p.block.count());
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    const unsigned gx = t.block_idx.x * t.block_dim.x + t.thread_idx.x;
    const unsigned gy = t.block_idx.y * t.block_dim.y + t.thread_idx.y;
    const std::uint64_t flat =
        t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
        t.block_dim.linear(t.thread_idx);
    coords[flat] = {gx, gy};
  });
  // Every (gx, gy) in the 8x6 global domain appears exactly once.
  std::vector<int> seen(8 * 6, 0);
  for (auto [gx, gy] : coords) seen[gy * 8 + gx]++;
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Launch, BarrierMakesWritesVisibleAcrossPhases) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {128};
  std::vector<int> stage(128, 0);
  std::vector<int> out(128, 0);
  bool ok = true;
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    const unsigned i = t.thread_idx.x;
    stage[i] = static_cast<int>(i) + 1;
    t.block->sync_threads(t);
    // Read a neighbour written by another thread before the barrier.
    const unsigned j = (i + 64) % 128;
    out[i] = stage[j];
    if (out[i] != static_cast<int>(j) + 1) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(Launch, BarrierReversedReadWriteOrder) {
  // Threads write AFTER the barrier what others read BEFORE it would be
  // a race; here we verify the opposite phase ordering with two barriers.
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {2};
  p.block = {64};
  std::vector<int> sum_per_block(2, 0);
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    int* shared =
        static_cast<int*>(t.block->shared_alloc(t, 64 * sizeof(int), 16));
    shared[t.thread_idx.x] = 1;
    t.block->sync_threads(t);
    if (t.thread_idx.x == 0) {
      int s = 0;
      for (int i = 0; i < 64; ++i) s += shared[i];
      sum_per_block[t.block_idx.x] = s;
    }
    t.block->sync_threads(t);
  });
  EXPECT_EQ(sum_per_block[0], 64);
  EXPECT_EQ(sum_per_block[1], 64);
}

TEST(Launch, SharedAllocReturnsSamePointerToAllThreads) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {32};
  std::vector<void*> ptrs(32, nullptr);
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    ptrs[t.thread_idx.x] = t.block->shared_alloc(t, 256, 16);
  });
  for (int i = 1; i < 32; ++i) EXPECT_EQ(ptrs[i], ptrs[0]);
}

TEST(Launch, SharedAllocDistinctAcrossBlocks) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {2};
  p.block = {1};
  // Each block writes its id into its own shared var; no cross-talk
  // (verified by the block-local readback below).
  std::vector<int> got(2, -1);
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    int* v = static_cast<int*>(t.block->shared_alloc(t, sizeof(int), 4));
    *v = static_cast<int>(t.block_idx.x) + 7;
    got[t.block_idx.x] = *v;
  });
  EXPECT_EQ(got[0], 7);
  EXPECT_EQ(got[1], 8);
}

TEST(Launch, SharedAllocSizeMismatchThrows) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {2};
  EXPECT_THROW(dev.launch_sync(p,
                               [&] {
                                 auto& t = this_thread();
                                 const std::size_t sz =
                                     t.thread_idx.x == 0 ? 64 : 128;
                                 t.block->shared_alloc(t, sz, 16);
                               }),
               std::logic_error);
}

TEST(Launch, DynamicSharedSegmentSharedByBlock) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {16};
  p.dynamic_smem_bytes = 16 * sizeof(int);
  int total = 0;
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    int* dyn = static_cast<int*>(t.block->dynamic_shared());
    dyn[t.thread_idx.x] = 2;
    t.block->sync_threads(t);
    if (t.thread_idx.x == 0) {
      for (int i = 0; i < 16; ++i) total += dyn[i];
    }
  });
  EXPECT_EQ(total, 32);
}

TEST(Launch, DirectModeRunsAllThreads) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {8};
  p.block = {64};
  p.mode = ExecMode::kDirect;
  std::atomic<int> count{0};
  dev.launch_sync(p, [&] { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), 8 * 64);
}

TEST(Launch, DirectModeBarrierThrows) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {2};
  p.mode = ExecMode::kDirect;
  EXPECT_THROW(dev.launch_sync(p,
                               [&] {
                                 auto& t = this_thread();
                                 t.block->sync_threads(t);
                               }),
               std::logic_error);
}

TEST(Launch, EarlyExitThreadsDoNotBlockBarrier) {
  // Kernel-language behaviour: threads that returned are not waited on.
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {64};
  int after_barrier = 0;
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    if (t.thread_idx.x >= 32) return;  // half the block exits early
    t.block->sync_threads(t);
    after_barrier++;
  });
  EXPECT_EQ(after_barrier, 32);
}

TEST(Launch, ValidationRejectsBadLaunches) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {1};
  p.block = {2048};  // > max_threads_per_block (1024)
  EXPECT_THROW(dev.launch_sync(p, [] {}), std::invalid_argument);
  p.block = {0};
  EXPECT_THROW(dev.launch_sync(p, [] {}), std::invalid_argument);
  p.block = {32};
  p.dynamic_smem_bytes = 1 << 20;
  EXPECT_THROW(dev.launch_sync(p, [] {}), std::invalid_argument);
}

TEST(Launch, ThisThreadOutsideKernelThrows) {
  EXPECT_THROW(this_thread(), std::logic_error);
  EXPECT_FALSE(in_kernel());
}

TEST(Launch, BarrierCountsReported) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {4};
  p.block = {32};
  auto rec = dev.launch_sync(p, [&] {
    auto& t = this_thread();
    t.block->sync_threads(t);
    t.block->sync_threads(t);
    t.block->sync_threads(t);
  });
  EXPECT_EQ(rec.stats.block_barriers, 4u * 3u);
}

TEST(Launch, AtomicsAcrossBlocksAndCounted) {
  Device dev(tiny_config());
  LaunchParams p;
  p.grid = {16};
  p.block = {64};
  long total = 0;
  auto rec = dev.launch_sync(p, [&] { atomic_add(&total, 1L); });
  EXPECT_EQ(total, 16 * 64);
  EXPECT_EQ(rec.stats.atomics, 16u * 64u);
}

TEST(Launch, GridStrideLoopCoversDomain) {
  Device dev(tiny_config());
  constexpr int n = 10000;
  std::vector<int> data(n, 0);
  LaunchParams p;
  p.grid = {8};
  p.block = {128};
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    const int stride = static_cast<int>(t.grid_dim.x * t.block_dim.x);
    for (int i = static_cast<int>(t.block_idx.x * t.block_dim.x +
                                  t.thread_idx.x);
         i < n; i += stride)
      data[i] += 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), n);
}

TEST(Launch, LaunchLogAccumulatesAndClears) {
  Device dev(tiny_config());
  dev.clear_launch_log();
  LaunchParams p;
  p.grid = {1};
  p.block = {1};
  p.name = "logged";
  dev.launch_sync(p, [] {});
  dev.launch_sync(p, [] {});
  EXPECT_EQ(dev.launch_log().size(), 2u);
  EXPECT_EQ(dev.last_launch().name, "logged");
  EXPECT_GT(dev.modeled_kernel_ms_total(), 0.0);
  dev.clear_launch_log();
  EXPECT_TRUE(dev.launch_log().empty());
  EXPECT_THROW(dev.last_launch(), std::logic_error);
}

class WarpSizeLaunch : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WarpSizeLaunch, LaneAndWarpIdsConsistent) {
  Device dev(tiny_config(GetParam()));
  const std::uint32_t ws = GetParam();
  LaunchParams p;
  p.grid = {1};
  p.block = {3 * ws + ws / 2};  // partial last warp
  bool ok = true;
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    if (t.lane != t.flat_tid % ws) ok = false;
    if (t.warp_id != t.flat_tid / ws) ok = false;
    if (t.warp->warp_id() != t.warp_id) ok = false;
    const std::uint32_t expect_width =
        t.warp_id < 3 ? ws : ws / 2;  // last warp is partial
    if (t.warp->width() != expect_width) ok = false;
  });
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, WarpSizeLaunch, ::testing::Values(32u, 64u));

}  // namespace
