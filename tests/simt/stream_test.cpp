// Stream / event semantics: per-stream FIFO, cross-stream independence,
// events, host callbacks, async errors, modeled timelines, deadlock
// detection.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "simt/simt.h"

namespace {

using namespace simt;

class StreamTest : public ::testing::Test {
 protected:
  // A private device per test keeps stream state isolated.
  Device dev{[] {
    DeviceConfig c = make_sim_a100_config();
    c.name = "stream-test";
    return c;
  }()};

  LaunchParams tiny(const char* name = "k") {
    LaunchParams p;
    p.grid = {1};
    p.block = {1};
    p.name = name;
    return p;
  }
};

TEST_F(StreamTest, OpsOnOneStreamExecuteInOrder) {
  std::vector<int> order;
  Stream& s = dev.default_stream();
  for (int i = 0; i < 8; ++i)
    s.launch(tiny(), [&order, i] { order.push_back(i); });
  s.synchronize();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(StreamTest, HostFnRunsInStreamOrder) {
  std::vector<int> order;
  Stream& s = dev.default_stream();
  s.launch(tiny(), [&] { order.push_back(1); });
  s.host_fn([&] { order.push_back(2); });
  s.launch(tiny(), [&] { order.push_back(3); });
  s.synchronize();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(StreamTest, MemcpyAsyncOrderedWithKernels) {
  auto* d = static_cast<int*>(dev.memory().allocate(sizeof(int)));
  int h_in = 7, h_out = 0;
  Stream& s = dev.default_stream();
  s.memcpy_async(d, &h_in, sizeof(int), CopyKind::kHostToDevice);
  s.launch(tiny(), [d] { *d *= 6; });
  s.memcpy_async(&h_out, d, sizeof(int), CopyKind::kDeviceToHost);
  s.synchronize();
  EXPECT_EQ(h_out, 42);
  dev.memory().deallocate(d);
}

TEST_F(StreamTest, MemsetAsyncWorks) {
  auto* d = static_cast<unsigned char*>(dev.memory().allocate(8));
  Stream& s = dev.default_stream();
  s.memset_async(d, 0x5A, 8);
  s.synchronize();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(d[i], 0x5A);
  dev.memory().deallocate(d);
}

TEST_F(StreamTest, EventOrdersAcrossStreams) {
  Stream* s1 = dev.create_stream();
  Stream* s2 = dev.create_stream();
  Event* ev = dev.create_event();
  std::atomic<int> stage{0};
  int observed = -1;

  s2->wait(*ev);  // submitted before the record: s2 must block
  s2->launch(tiny("after"), [&] { observed = stage.load(); });
  s1->launch(tiny("before"), [&] { stage.store(1); });
  s1->record(*ev);

  dev.synchronize();
  EXPECT_EQ(observed, 1);
}

TEST_F(StreamTest, EventSynchronizeFromHost) {
  Stream& s = dev.default_stream();
  Event* ev = dev.create_event();
  std::atomic<bool> ran{false};
  s.launch(tiny(), [&] { ran.store(true); });
  s.record(*ev);
  ev->synchronize();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(ev->query());
}

TEST_F(StreamTest, UnrecordedEventSyncReturnsImmediately) {
  Event* ev = dev.create_event();
  EXPECT_FALSE(ev->query());
  ev->synchronize();  // CUDA semantics: success, no wait
}

TEST_F(StreamTest, AsyncKernelErrorSurfacesAtSynchronize) {
  Stream& s = dev.default_stream();
  s.launch(tiny(), [] { throw std::runtime_error("boom in kernel"); });
  EXPECT_THROW(dev.synchronize(), std::runtime_error);
  // Error is consumed; the device is usable again.
  bool ran = false;
  s.launch(tiny(), [&] { ran = true; });
  dev.synchronize();
  EXPECT_TRUE(ran);
}

TEST_F(StreamTest, DependencyDeadlockDetected) {
  Stream* s1 = dev.create_stream();
  Event* ev = dev.create_event();
  s1->wait(*ev);                      // nothing will ever record ev
  s1->launch(tiny(), [] {});
  EXPECT_THROW(dev.synchronize(), std::runtime_error);
}

TEST_F(StreamTest, ModeledTimelineAdvancesPerStream) {
  Stream* s1 = dev.create_stream();
  const double before = s1->modeled_ready_ms();
  LaunchParams p = tiny("modeled");
  p.grid = {64};
  p.block = {256};
  p.cost.flops_per_thread = 1000;
  s1->launch(p, [] {});
  s1->synchronize();
  EXPECT_GT(s1->modeled_ready_ms(), before);
  EXPECT_GE(dev.modeled_now_ms(), s1->modeled_ready_ms());
}

TEST_F(StreamTest, IndependentStreamsOverlapInModel) {
  // Two equal kernels on two streams: modeled device time ~ one kernel,
  // not two (the analytic timeline overlaps independent streams).
  Stream* s1 = dev.create_stream();
  Stream* s2 = dev.create_stream();
  LaunchParams p = tiny("overlap");
  p.grid = {32};
  p.block = {256};
  p.cost.global_bytes_per_thread = 64;
  const double t0_1 = s1->modeled_ready_ms();
  const double t0_2 = s2->modeled_ready_ms();
  s1->launch(p, [] {});
  s2->launch(p, [] {});
  dev.synchronize();
  const double d1 = s1->modeled_ready_ms() - t0_1;
  const double d2 = s2->modeled_ready_ms() - t0_2;
  EXPECT_NEAR(d1, d2, 1e-9);
  // Serial execution on ONE stream would be d1 + d2; overlapped device
  // "now" advances by max(d1, d2) only.
  EXPECT_LT(dev.modeled_now_ms(), t0_1 + d1 + d2 + 1e-12);
}

TEST_F(StreamTest, EventWaitPropagatesModeledTimestamp) {
  Stream* s1 = dev.create_stream();
  Stream* s2 = dev.create_stream();
  Event* ev = dev.create_event();
  LaunchParams big = tiny("big");
  big.grid = {128};
  big.block = {256};
  big.cost.global_bytes_per_thread = 4096;
  s1->launch(big, [] {});
  s1->record(*ev);
  s2->wait(*ev);
  s2->launch(tiny("small"), [] {});
  dev.synchronize();
  // s2's timeline must include s1's big kernel via the event.
  EXPECT_GE(s2->modeled_ready_ms(), ev->modeled_ms());
  EXPECT_GE(ev->modeled_ms(), s1->modeled_ready_ms() - 1e-9);
}

TEST_F(StreamTest, QueryReflectsCompletion) {
  Stream& s = dev.default_stream();
  std::atomic<bool> release{false};
  s.host_fn([&] {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_FALSE(s.query());
  release.store(true);
  s.synchronize();
  EXPECT_TRUE(s.query());
}

TEST_F(StreamTest, ManyStreamsManyOps) {
  constexpr int kStreams = 8, kOps = 25;
  std::atomic<int> count{0};
  std::vector<Stream*> streams;
  for (int i = 0; i < kStreams; ++i) streams.push_back(dev.create_stream());
  for (int op = 0; op < kOps; ++op)
    for (auto* s : streams)
      s->launch(tiny(), [&] { count.fetch_add(1); });
  dev.synchronize();
  EXPECT_EQ(count.load(), kStreams * kOps);
}

TEST_F(StreamTest, TransferAccounting) {
  dev.clear_launch_log();
  auto* d = static_cast<char*>(dev.memory().allocate(1 << 20));
  std::vector<char> h(1 << 20);
  Stream& s = dev.default_stream();
  s.memcpy_async(d, h.data(), h.size(), CopyKind::kHostToDevice);
  s.synchronize();
  EXPECT_GT(dev.modeled_transfer_ms_total(), 0.0);
  dev.memory().deallocate(d);
}

}  // namespace
