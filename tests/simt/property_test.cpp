// Property tests: invariants of the engine swept over launch shapes,
// warp sizes and execution modes (TEST_P product sweeps).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <tuple>
#include <vector>

#include "simt/atomics.h"
#include "simt/simt.h"

namespace {

using namespace simt;

// ---------------------------------------------------------------------
// Sweep 1: every thread runs exactly once, for grid x block x mode
// combinations, on both warp sizes.
// ---------------------------------------------------------------------

using ShapeParam = std::tuple<std::uint32_t /*warp*/, Dim3 /*grid*/,
                              Dim3 /*block*/, ExecMode>;

class LaunchShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(LaunchShapeSweep, EveryThreadExactlyOnceAndIndexed) {
  const auto [warp, grid, block, mode] = GetParam();
  DeviceConfig cfg = make_sim_a100_config();
  cfg.name = "sweep";
  cfg.warp_size = warp;
  Device dev(cfg);

  LaunchParams p;
  p.grid = grid;
  p.block = block;
  p.mode = mode;
  p.name = "shape_sweep";

  const std::uint64_t total = grid.count() * block.count();
  std::vector<std::atomic<int>> hits(total);
  for (auto& h : hits) h.store(0);
  bool index_ok = true;

  dev.launch_sync(p, [&] {
    const auto& t = this_thread();
    if (!t.grid_dim.contains(t.block_idx) ||
        !t.block_dim.contains(t.thread_idx))
      index_ok = false;
    if (t.lane != t.flat_tid % warp || t.warp_id != t.flat_tid / warp)
      index_ok = false;
    const std::uint64_t flat =
        t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
        t.block_dim.linear(t.thread_idx);
    hits[flat].fetch_add(1, std::memory_order_relaxed);
  });

  EXPECT_TRUE(index_ok);
  for (std::uint64_t i = 0; i < total; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "thread " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LaunchShapeSweep,
    ::testing::Combine(
        ::testing::Values(32u, 64u),
        ::testing::Values(Dim3{1}, Dim3{7}, Dim3{4, 3}, Dim3{2, 2, 2}),
        ::testing::Values(Dim3{1}, Dim3{33}, Dim3{16, 8}, Dim3{8, 4, 4},
                          Dim3{256}),
        ::testing::Values(ExecMode::kCooperative, ExecMode::kDirect)));

// ---------------------------------------------------------------------
// Sweep 2: barrier count accounting is exact for any block shape.
// ---------------------------------------------------------------------

class BarrierSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(BarrierSweep, BarrierEventsCountBlocksTimesBarriers) {
  const auto [block_threads, nbarriers] = GetParam();
  Device dev(make_sim_a100_config());
  LaunchParams p;
  p.grid = {3};
  p.block = {block_threads};
  p.name = "barrier_sweep";
  auto rec = dev.launch_sync(p, [&, nb = nbarriers] {
    auto& t = this_thread();
    for (int i = 0; i < nb; ++i) t.block->sync_threads(t);
  });
  EXPECT_EQ(rec.stats.block_barriers,
            3u * static_cast<std::uint64_t>(nbarriers));
}

INSTANTIATE_TEST_SUITE_P(Blocks, BarrierSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 32u,
                                                              100u, 256u),
                                            ::testing::Values(0, 1, 5)));

// ---------------------------------------------------------------------
// Sweep 3: warp tree reduction is exact for every power-of-two width
// on both warp sizes (partial warps included).
// ---------------------------------------------------------------------

class WarpReduceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(WarpReduceSweep, ShflTreeSumsAnyLaneValues) {
  const auto [warp, active] = GetParam();
  if (active > warp) GTEST_SKIP();
  DeviceConfig cfg = make_sim_a100_config();
  cfg.warp_size = warp;
  Device dev(cfg);
  LaunchParams p;
  p.grid = {1};
  p.block = {active};
  std::uint64_t lane0 = 0;
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    std::uint64_t v = (t.lane + 1) * (t.lane + 1);  // non-uniform payload
    for (std::uint32_t d = t.warp->width() / 2; d > 0; d /= 2)
      v += t.warp->collective(t, WarpOp::kShflDown, v, d, ~0ull);
    if (t.lane == 0) lane0 = v;
  });
  std::uint64_t expect = 0;
  for (std::uint32_t l = 0; l < active; ++l)
    expect += static_cast<std::uint64_t>(l + 1) * (l + 1);
  EXPECT_EQ(lane0, expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, WarpReduceSweep,
                         ::testing::Combine(::testing::Values(32u, 64u),
                                            ::testing::Values(2u, 4u, 8u, 16u,
                                                              32u, 64u)));

// ---------------------------------------------------------------------
// Sweep 4: the hardware warp-reduce collectives agree with a scalar
// fold for add/min/max over signed payloads.
// ---------------------------------------------------------------------

class HwReduceSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HwReduceSweep, ReduceOpsMatchScalarFold) {
  const std::uint32_t warp = GetParam();
  DeviceConfig cfg = make_sim_a100_config();
  cfg.warp_size = warp;
  Device dev(cfg);
  LaunchParams p;
  p.grid = {1};
  p.block = {warp};
  std::int64_t got_add = 0, got_min = 0, got_max = 0;
  dev.launch_sync(p, [&] {
    auto& t = this_thread();
    // Payload mixes signs: lane l holds (l - warp/2) * 3.
    const auto v = static_cast<std::int64_t>(
        (static_cast<int>(t.lane) - static_cast<int>(warp / 2)) * 3);
    const auto add = t.warp->collective(t, WarpOp::kReduceAdd,
                                        static_cast<std::uint64_t>(v), 0, ~0ull);
    const auto mn = t.warp->collective(t, WarpOp::kReduceMin,
                                       static_cast<std::uint64_t>(v), 0, ~0ull);
    const auto mx = t.warp->collective(t, WarpOp::kReduceMax,
                                       static_cast<std::uint64_t>(v), 0, ~0ull);
    if (t.lane == 0) {
      got_add = static_cast<std::int64_t>(add);
      got_min = static_cast<std::int64_t>(mn);
      got_max = static_cast<std::int64_t>(mx);
    }
  });
  std::int64_t add = 0, mn = INT64_MAX, mx = INT64_MIN;
  for (std::uint32_t l = 0; l < warp; ++l) {
    const auto v = static_cast<std::int64_t>(
        (static_cast<int>(l) - static_cast<int>(warp / 2)) * 3);
    add += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_EQ(got_add, add);
  EXPECT_EQ(got_min, mn);
  EXPECT_EQ(got_max, mx);
}

INSTANTIATE_TEST_SUITE_P(Warps, HwReduceSweep, ::testing::Values(32u, 64u));

// ---------------------------------------------------------------------
// Sweep 5: cooperative and direct mode produce identical results for a
// sync-free kernel across shapes (the fast-path-equivalence property).
// ---------------------------------------------------------------------

class ModeEquivalence : public ::testing::TestWithParam<Dim3> {};

TEST_P(ModeEquivalence, DirectEqualsCooperative) {
  const Dim3 block = GetParam();
  Device dev(make_sim_a100_config());
  const Dim3 grid{5};
  const std::uint64_t total = grid.count() * block.count();
  std::vector<std::uint64_t> a(total), b(total);

  for (auto* out : {&a, &b}) {
    LaunchParams p;
    p.grid = grid;
    p.block = block;
    p.mode = out == &a ? ExecMode::kCooperative : ExecMode::kDirect;
    auto* data = out->data();
    dev.launch_sync(p, [=] {
      const auto& t = this_thread();
      const std::uint64_t flat =
          t.grid_dim.linear(t.block_idx) * t.block_dim.count() +
          t.block_dim.linear(t.thread_idx);
      data[flat] = flat * 2654435761u + t.lane;
    });
  }
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Blocks, ModeEquivalence,
                         ::testing::Values(Dim3{1}, Dim3{64}, Dim3{8, 8},
                                           Dim3{5, 5, 5}, Dim3{1024}));

// ---------------------------------------------------------------------
// Dim3 algebra properties.
// ---------------------------------------------------------------------

TEST(Dim3Property, LinearDelinearizeRoundTrips) {
  const Dim3 extents[] = {{1}, {7}, {4, 3}, {2, 5, 3}, {16, 16, 4}};
  for (const Dim3& e : extents) {
    for (std::uint64_t i = 0; i < e.count(); ++i) {
      const Dim3 p = e.delinearize(i);
      EXPECT_TRUE(e.contains(p));
      EXPECT_EQ(e.linear(p), i) << e.to_string();
    }
  }
}

TEST(Dim3Property, CountMatchesEnumeration) {
  const Dim3 e{3, 4, 5};
  std::uint64_t n = 0;
  for (std::uint32_t z = 0; z < e.z; ++z)
    for (std::uint32_t y = 0; y < e.y; ++y)
      for (std::uint32_t x = 0; x < e.x; ++x) {
        EXPECT_TRUE(e.contains({x, y, z}));
        n++;
      }
  EXPECT_EQ(n, e.count());
  EXPECT_FALSE(e.contains({3, 0, 0}));
  EXPECT_FALSE(e.contains({0, 4, 0}));
  EXPECT_FALSE(e.contains({0, 0, 5}));
}

TEST(Dim3Property, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

// ---------------------------------------------------------------------
// Atomic helpers agree with sequential folds under heavy contention.
// ---------------------------------------------------------------------

TEST(AtomicsProperty, ContendedFoldsMatch) {
  Device dev(make_sim_a100_config());
  LaunchParams p;
  p.grid = {32};
  p.block = {128};
  p.mode = ExecMode::kDirect;
  long long sum = 0;
  int maxv = INT32_MIN, minv = INT32_MAX;
  dev.launch_sync(p, [&] {
    const auto& t = this_thread();
    const int v = static_cast<int>(
        (t.grid_dim.linear(t.block_idx) * 131 + t.flat_tid * 17) % 1000) - 500;
    atomic_add(&sum, static_cast<long long>(v));
    atomic_max(&maxv, v);
    atomic_min(&minv, v);
  });
  long long esum = 0;
  int emax = INT32_MIN, emin = INT32_MAX;
  for (std::uint64_t b = 0; b < 32; ++b)
    for (std::uint64_t t = 0; t < 128; ++t) {
      const int v = static_cast<int>((b * 131 + t * 17) % 1000) - 500;
      esum += v;
      emax = std::max(emax, v);
      emin = std::min(emin, v);
    }
  EXPECT_EQ(sum, esum);
  EXPECT_EQ(maxv, emax);
  EXPECT_EQ(minv, emin);
}

}  // namespace
