// ompxsan end-to-end: every seeded defect class must produce its
// specific diagnostic (category + precise fields), and the guard
// tests pin the false-positive boundaries — same-thread reuse,
// cross-epoch handoffs, and atomics must stay silent.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ompx.h"
#include "kl/kl.h"
#include "simt/simt.h"

namespace {

using namespace simt;

Device& dev() { return sim_a100(); }

/// Every test runs with a clean sanitizer: nothing recorded, nothing
/// enabled, and nothing left on for the next test.
class SanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    San::instance().disable();
    San::instance().reset();
  }
  void TearDown() override {
    San::instance().disable();
    San::instance().reset();
  }

  static std::vector<SanDiag> diags_of(SanKind k) {
    std::vector<SanDiag> out;
    for (const auto& d : San::instance().diagnostics())
      if (d.kind == k) out.push_back(d);
    return out;
  }
};

LaunchParams one_block(const char* name, unsigned threads = 64) {
  LaunchParams p;
  p.grid = {1};
  p.block = {threads};
  p.name = name;
  return p;
}

// --- racecheck -----------------------------------------------------------

TEST_F(SanTest, SharedRaceReportsBothThreadsAndAddress) {
  San::instance().enable(kSanRace);
  LaunchParams p = one_block("race_kernel");
  dev().launch_sync(p, [] {
    auto& t = this_thread();
    ompx::san::Shared<int> cell;
    cell = static_cast<int>(t.flat_tid);  // every thread writes: WAW race
  });
  const auto races = diags_of(SanKind::kSharedRace);
  ASSERT_FALSE(races.empty());
  const SanDiag& d = races.front();
  EXPECT_NE(d.message.find("write-after-write"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("race_kernel"), std::string::npos);
  EXPECT_NE(d.tid_a, ~0u);
  EXPECT_NE(d.tid_b, ~0u);
  EXPECT_NE(d.tid_a, d.tid_b);
  EXPECT_NE(d.addr, nullptr);
}

TEST_F(SanTest, SharedReadAfterForeignWriteIsRaw) {
  San::instance().enable(kSanRace);
  LaunchParams p = one_block("raw_kernel", 2);
  dev().launch_sync(p, [] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<int>(2);
    if (t.flat_tid == 0) tile[1] = 7;  // writes the OTHER thread's slot
    int v = tile[t.flat_tid];          // tid 1 reads it: RAW, no barrier
    (void)v;
  });
  const auto races = diags_of(SanKind::kSharedRace);
  ASSERT_FALSE(races.empty());
  EXPECT_NE(races.front().message.find("read-after-write"), std::string::npos)
      << races.front().message;
}

TEST_F(SanTest, SameThreadReuseDoesNotReport) {
  San::instance().enable(kSanRace);
  LaunchParams p = one_block("same_thread");
  dev().launch_sync(p, [] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<double>(64);
    tile[t.flat_tid] = 1.0;            // own slot
    double v = tile[t.flat_tid];       // own slot again: not a race
    tile[t.flat_tid] = v + 1.0;
  });
  EXPECT_EQ(San::instance().error_count(), 0u) << San::instance().report();
}

TEST_F(SanTest, BarrierSeparatedHandoffDoesNotReport) {
  San::instance().enable(kSanRace);
  LaunchParams p = one_block("cross_epoch");
  dev().launch_sync(p, [] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<int>(64);
    tile[t.flat_tid] = static_cast<int>(t.flat_tid);
    t.block->sync_threads(t);  // epoch boundary
    int v = tile[63 - t.flat_tid];  // foreign slot, different epoch: fine
    (void)v;
  });
  EXPECT_EQ(San::instance().error_count(), 0u) << San::instance().report();
}

TEST_F(SanTest, AtomicsDoNotReport) {
  San::instance().enable(kSanRace);
  LaunchParams p = one_block("atomic_kernel");
  dev().launch_sync(p, [] {
    ompx::san::Shared<int> sum;
    sum.atomic_add(1);  // every thread, same address: a rendezvous
  });
  EXPECT_EQ(San::instance().error_count(), 0u) << San::instance().report();
}

// --- memcheck ------------------------------------------------------------

TEST_F(SanTest, CheckedOutOfBoundsReadIsDiagnosedAndPoisoned) {
  San::instance().enable(kSanMem);
  ompx::DeviceBuffer<int> buf(8, &dev());
  buf.fill_bytes(0);
  int seen = 0;
  LaunchParams p = one_block("oob_kernel", 1);
  dev().launch_sync(p, [&] {
    auto a = buf.checked();
    seen = a[8];  // one past the end
  });
  const auto oob = diags_of(SanKind::kGlobalOob);
  ASSERT_FALSE(oob.empty());
  EXPECT_NE(oob.front().message.find("out-of-bounds"), std::string::npos)
      << oob.front().message;
  int poison;
  std::memset(&poison, kFreePattern, sizeof poison);
  EXPECT_EQ(seen, poison);  // the bad load never touched memory
}

TEST_F(SanTest, CheckedOutOfBoundsWriteIsDropped) {
  San::instance().enable(kSanMem);
  ompx::DeviceBuffer<int> a(4, &dev());
  ompx::DeviceBuffer<int> b(4, &dev());
  a.fill_bytes(0);
  b.fill_bytes(0);
  LaunchParams p = one_block("oob_store", 1);
  dev().launch_sync(p, [&] {
    auto pa = a.checked();
    pa[4] = 1234;  // one past the end: recorded + dropped
  });
  EXPECT_GE(diags_of(SanKind::kGlobalOob).size(), 1u);
  for (int v : b.download()) EXPECT_EQ(v, 0);  // neighbour unharmed
}

TEST_F(SanTest, UseAfterFreeIsDiagnosed) {
  San::instance().enable(kSanMem);
  int* stale = static_cast<int*>(dev().memory().allocate(16 * sizeof(int)));
  dev().memory().deallocate(stale);  // quarantined, not recycled
  LaunchParams p = one_block("uaf_kernel", 1);
  dev().launch_sync(p, [&] {
    ompx::san::GlobalPtr<int> q(stale, 16);
    int v = q[0];
    (void)v;
  });
  const auto uaf = diags_of(SanKind::kUseAfterFree);
  ASSERT_FALSE(uaf.empty());
  EXPECT_NE(uaf.front().message.find("use-after-free"), std::string::npos)
      << uaf.front().message;
}

TEST_F(SanTest, HostPointerInKernelIsDiagnosed) {
  San::instance().enable(kSanMem);
  int host_var = 41;
  LaunchParams p = one_block("hostptr_kernel", 1);
  dev().launch_sync(p, [&] {
    ompx::san::GlobalPtr<int> q(&host_var);
    *q = 42;  // not device memory: recorded + dropped
  });
  const auto hp = diags_of(SanKind::kHostPointer);
  ASSERT_FALSE(hp.empty());
  EXPECT_NE(hp.front().message.find("not a device"), std::string::npos)
      << hp.front().message;
  EXPECT_EQ(host_var, 41);
}

TEST_F(SanTest, RedzoneCatchesRawPointerOverrun) {
  San::instance().enable(kSanMem);
  // A raw (uninstrumented) overrun: nothing sees the store itself, but
  // the redzone poison check at free does.
  char* ptr = static_cast<char*>(dev().memory().allocate(100));
  ptr[100] = 'X';  // first byte past the user range
  dev().memory().deallocate(ptr);
  const auto rz = diags_of(SanKind::kRedzoneCorruption);
  ASSERT_FALSE(rz.empty());
  EXPECT_NE(rz.front().message.find("redzone"), std::string::npos)
      << rz.front().message;
}

TEST_F(SanTest, FreePoisonsPayload) {
  San::instance().enable(kSanMem);
  unsigned char* ptr =
      static_cast<unsigned char*>(dev().memory().allocate(64));
  std::memset(ptr, 0, 64);
  dev().memory().deallocate(ptr);
  // Quarantine keeps the pages mapped, so the poison is observable.
  for (int i = 0; i < 64; ++i) ASSERT_EQ(ptr[i], kFreePattern) << i;
}

TEST_F(SanTest, LeakReportListsLiveAllocations) {
  San::instance().enable(kSanMem);
  {
    Device local{[] {
      DeviceConfig c = make_sim_a100_config();
      c.name = "leak-test";
      return c;
    }()};
    void* a = local.memory().allocate(128);
    void* b = local.memory().allocate(256);
    (void)a;
    const auto leaks = local.memory().leak_report();
    ASSERT_EQ(leaks.size(), 2u);
    local.memory().deallocate(b);
    EXPECT_EQ(local.memory().leak_report().size(), 1u);
    // `a` stays live through ~Device: recorded as a leak diagnostic.
  }
  const auto leaks = diags_of(SanKind::kLeak);
  ASSERT_FALSE(leaks.empty());
  EXPECT_EQ(leaks.front().bytes, 128u);
}

// --- sync / divergence ---------------------------------------------------

TEST_F(SanTest, PartialMaskNamingExitedLaneIsDiagnosed) {
  San::instance().enable(kSanSync);
  LaunchParams p = one_block("dead_lane", 32);
  EXPECT_THROW(dev().launch_sync(p,
                                 [] {
                                   auto& t = this_thread();
                                   if (t.lane == 1) return;  // lane 1 exits
                                   // The barrier orders the exit before the
                                   // collective (exited threads release it).
                                   t.block->sync_threads(t);
                                   if (t.lane == 0) {
                                     // explicitly names dead lane 1
                                     t.warp->collective(t, WarpOp::kSync, 0,
                                                        0, 0b11);
                                   }
                                 }),
               std::logic_error);
  const auto bad = diags_of(SanKind::kInvalidWarpMask);
  ASSERT_FALSE(bad.empty());
  EXPECT_NE(bad.front().message.find("exited lane"), std::string::npos)
      << bad.front().message;
}

TEST_F(SanTest, FullMaskWithEarlyExitIsNotDiagnosed) {
  San::instance().enable(kSanSync);
  LaunchParams p = one_block("full_mask", 32);
  dev().launch_sync(p, [] {
    auto& t = this_thread();
    if (t.lane >= 16) return;  // half the warp exits
    t.block->sync_threads(t);  // orders the exits before the collective
    // Default full mask: collectives proceed over the live lanes, the
    // documented semantics — never a diagnostic.
    std::uint64_t v =
        t.warp->collective(t, WarpOp::kShflXor, t.lane, 1, ~0ull);
    (void)v;
  });
  EXPECT_EQ(San::instance().count(SanKind::kInvalidWarpMask), 0u)
      << San::instance().report();
}

TEST_F(SanTest, BarrierDivergenceDeadlockIsNamed) {
  San::instance().enable(kSanSync);
  LaunchParams p = one_block("bdiv", 64);
  try {
    dev().launch_sync(p, [] {
      auto& t = this_thread();
      if (t.flat_tid == 0) {
        t.warp->collective(t, WarpOp::kSync, 0, 0, 0b11);
      } else {
        t.block->sync_threads(t);
      }
    });
    FAIL() << "expected a deadlock diagnosis";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SIMT deadlock in block scheduler"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("barrier divergence"), std::string::npos) << msg;
  }
  const auto bd = diags_of(SanKind::kBarrierDivergence);
  ASSERT_FALSE(bd.empty());
  EXPECT_EQ(bd.front().kernel, "bdiv");
}

TEST_F(SanTest, SharedAllocMismatchNamesBothThreads) {
  San::instance().enable(kSanSync | kSanRace);
  LaunchParams p = one_block("alloc_mismatch", 2);
  try {
    dev().launch_sync(p, [] {
      auto& t = this_thread();
      t.block->shared_alloc(t, t.flat_tid == 0 ? 64 : 32, 8);
      t.block->sync_threads(t);
    });
    FAIL() << "expected a shared_alloc mismatch diagnosis";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("64"), std::string::npos) << msg;
    EXPECT_NE(msg.find("32"), std::string::npos) << msg;
    EXPECT_NE(msg.find("thread 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("thread 1"), std::string::npos) << msg;
  }
  EXPECT_GE(San::instance().count(SanKind::kSharedAllocMismatch), 1u);
}

// --- activation surfaces -------------------------------------------------

TEST_F(SanTest, ParseChecks) {
  EXPECT_EQ(San::parse_checks("race"), kSanRace);
  EXPECT_EQ(San::parse_checks("race,mem"), kSanRace | kSanMem);
  EXPECT_EQ(San::parse_checks("race,mem,sync"), kSanAll);
  EXPECT_EQ(San::parse_checks("all"), kSanAll);
  EXPECT_EQ(San::parse_checks(""), kSanAll);
  EXPECT_EQ(San::parse_checks(nullptr), kSanAll);
  EXPECT_EQ(San::parse_checks("1"), kSanAll);
  EXPECT_EQ(San::parse_checks("sync,bogus"), kSanSync);
}

TEST_F(SanTest, CApiRoundTrip) {
  ompx_san_enable("race,mem");
  EXPECT_EQ(ompx_san_enabled(), kSanRace | kSanMem);
  ompx_san_disable();
  EXPECT_EQ(ompx_san_enabled(), 0u);
  EXPECT_EQ(ompx_san_error_count(), 0ull);
}

TEST_F(SanTest, RaiiWindowEnablesAndDisables) {
  {
    ompx::San san(kSanRace, /*report_on_exit=*/false);
    EXPECT_EQ(San::instance().checks(), kSanRace);
  }
  EXPECT_EQ(San::instance().checks(), 0u);
}

TEST_F(SanTest, KlApiRoundTrip) {
  EXPECT_EQ(kl::klSanEnable("sync"), kl::klSuccess);
  EXPECT_EQ(San::instance().checks(), kSanSync);
  unsigned long long errors = 99;
  EXPECT_EQ(kl::klSanReport(&errors), kl::klSuccess);
  EXPECT_EQ(errors, 0ull);
  EXPECT_EQ(kl::klSanDisable(), kl::klSuccess);
  EXPECT_EQ(San::instance().checks(), 0u);
}

TEST_F(SanTest, ReportAlwaysCarriesCountLine) {
  EXPECT_NE(San::instance().report().find("ompxsan: 0 error(s)"),
            std::string::npos);
  San::instance().enable(kSanRace);
  LaunchParams p = one_block("counted");
  dev().launch_sync(p, [] {
    ompx::san::Shared<int> cell;
    cell = 1;
  });
  const auto n = San::instance().error_count();
  ASSERT_GE(n, 1u);
  EXPECT_NE(San::instance().report().find(
                "ompxsan: " + std::to_string(n) + " error(s)"),
            std::string::npos);
}

// --- exec-mode compatibility ---------------------------------------------
//
// The convergent lane loop must be invisible to ompxsan: the racecheck
// shadow records the same accesses against the same barrier epochs
// whether threads run inline or on fibers, so every seeded defect keeps
// its diagnostic (same kind, same pair, same epoch) and every guard
// test stays silent. Kernels that synchronize deflate to fibers and
// must land in exactly the fiber-mode state.

/// Diagnostic fingerprint of one launch of `kernel` under `exec`:
/// sanitizer reset, exec hints cleared (a prior deflation must not leak
/// into the next run), one launch, diagnostics of `kind` returned with
/// the launch record.
struct SanExecRun {
  LaunchRecord rec;
  std::vector<SanDiag> diags;
};

template <typename Kernel>
SanExecRun run_san_exec(LaneExec exec, unsigned checks, SanKind kind,
                        const char* name, unsigned threads,
                        const Kernel& kernel) {
  San::instance().reset();
  San::instance().enable(checks);
  clear_exec_hints();
  LaunchParams p;
  p.grid = {1};
  p.block = {threads};
  p.name = name;
  p.lane_exec = exec;
  SanExecRun out;
  out.rec = dev().launch_sync(p, kernel);
  for (const auto& d : San::instance().diagnostics())
    if (d.kind == kind) out.diags.push_back(d);
  return out;
}

TEST_F(SanTest, SeededRaceReportsIdenticallyUnderLaneLoop) {
  const auto kernel = [] {
    auto& t = this_thread();
    ompx::san::Shared<int> cell;
    cell = static_cast<int>(t.flat_tid);  // every thread writes: WAW race
  };
  const SanExecRun fib = run_san_exec(LaneExec::kFiber, kSanRace,
                                      SanKind::kSharedRace, "exec_waw", 64,
                                      kernel);
  const SanExecRun conv = run_san_exec(LaneExec::kConvergent, kSanRace,
                                       SanKind::kSharedRace, "exec_waw", 64,
                                       kernel);
  // The seeded race is sync-free, so the convergent run stays inline...
  EXPECT_EQ(conv.rec.exec_mode, "convergent");
  EXPECT_EQ(conv.rec.stats.sched_lane_loops, 64u);
  EXPECT_EQ(conv.rec.stats.sched_deflations, 0u);
  // ...and the shadow cells see the identical access history.
  ASSERT_EQ(fib.diags.size(), conv.diags.size());
  ASSERT_FALSE(fib.diags.empty());
  for (std::size_t i = 0; i < fib.diags.size(); ++i) {
    EXPECT_EQ(fib.diags[i].message, conv.diags[i].message);
    EXPECT_EQ(fib.diags[i].tid_a, conv.diags[i].tid_a);
    EXPECT_EQ(fib.diags[i].tid_b, conv.diags[i].tid_b);
    EXPECT_EQ(fib.diags[i].epoch, conv.diags[i].epoch);
  }
}

TEST_F(SanTest, SeededRawRaceKeepsEpochAcrossDeflation) {
  // Seeds a RAW race *after* a barrier (epoch 1): the barrier deflates
  // the convergent run, and the post-deflation shadow state must still
  // attribute the conflict to the same epoch and thread pair.
  const auto kernel = [] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<int>(64);
    tile[t.flat_tid] = static_cast<int>(t.flat_tid);
    t.block->sync_threads(t);             // epoch 0 -> 1
    if (t.flat_tid == 0) tile[1] = 7;     // writes thread 1's slot
    int v = tile[t.flat_tid];             // tid 1 reads it: RAW in epoch 1
    (void)v;
  };
  const SanExecRun fib = run_san_exec(LaneExec::kFiber, kSanRace,
                                      SanKind::kSharedRace, "exec_raw", 64,
                                      kernel);
  const SanExecRun conv = run_san_exec(LaneExec::kConvergent, kSanRace,
                                       SanKind::kSharedRace, "exec_raw", 64,
                                       kernel);
  EXPECT_EQ(conv.rec.stats.sched_deflations, 1u);
  ASSERT_EQ(fib.diags.size(), conv.diags.size());
  ASSERT_FALSE(fib.diags.empty());
  for (std::size_t i = 0; i < fib.diags.size(); ++i) {
    EXPECT_EQ(fib.diags[i].message, conv.diags[i].message);
    EXPECT_EQ(fib.diags[i].epoch, conv.diags[i].epoch);
  }
  EXPECT_GE(fib.diags.front().epoch, 1u);
}

TEST_F(SanTest, RacecheckGuardsStaySilentUnderLaneLoop) {
  // The false-positive boundaries must not move: same-thread reuse
  // (pure lane loop), barrier-separated handoff (deflates), and atomics
  // (deflate before the RMW) are all silent in both modes.
  const auto same_thread = [] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<double>(64);
    tile[t.flat_tid] = 1.0;
    double v = tile[t.flat_tid];
    tile[t.flat_tid] = v + 1.0;
  };
  const auto handoff = [] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<int>(64);
    tile[t.flat_tid] = static_cast<int>(t.flat_tid);
    t.block->sync_threads(t);
    int v = tile[63 - t.flat_tid];
    (void)v;
  };
  const auto atomics = [] {
    ompx::san::Shared<int> sum;
    sum.atomic_add(1);
  };
  for (const LaneExec exec : {LaneExec::kFiber, LaneExec::kConvergent}) {
    const auto a = run_san_exec(exec, kSanRace, SanKind::kSharedRace,
                                "exec_same_thread", 64, same_thread);
    EXPECT_EQ(a.diags.size(), 0u) << San::instance().report();
    const auto b = run_san_exec(exec, kSanRace, SanKind::kSharedRace,
                                "exec_handoff", 64, handoff);
    EXPECT_EQ(b.diags.size(), 0u) << San::instance().report();
    const auto c = run_san_exec(exec, kSanRace, SanKind::kSharedRace,
                                "exec_atomics", 64, atomics);
    EXPECT_EQ(c.diags.size(), 0u) << San::instance().report();
  }
}

TEST_F(SanTest, MemcheckOobDiagnosedAndPoisonedInline) {
  // memcheck runs entirely in the global-pointer accessors — no engine
  // rendezvous — so a convergent run diagnoses and poisons the bad load
  // without ever leaving the lane loop.
  ompx::DeviceBuffer<int> buf(8, &dev());
  buf.fill_bytes(0);
  int seen = 0;
  const auto r = run_san_exec(LaneExec::kConvergent, kSanMem,
                              SanKind::kGlobalOob, "exec_oob", 1, [&] {
                                auto a = buf.checked();
                                seen = a[8];  // one past the end
                              });
  EXPECT_EQ(r.rec.exec_mode, "convergent");
  EXPECT_EQ(r.rec.stats.sched_lane_loops, 1u);
  ASSERT_FALSE(r.diags.empty());
  int poison;
  std::memset(&poison, kFreePattern, sizeof poison);
  EXPECT_EQ(seen, poison);
}

TEST_F(SanTest, SyncCheckDeadlockCensusIdenticalUnderConvergent) {
  // Barrier divergence: the convergent probe deflates at the first
  // barrier/collective, so the deadlock diagnosis (and its kSanSync
  // record) must come out of the fiber scheduler verbatim.
  const auto kernel = [] {
    auto& t = this_thread();
    if (t.flat_tid == 0) {
      t.warp->collective(t, WarpOp::kSync, 0, 0, 0b11);
    } else {
      t.block->sync_threads(t);
    }
  };
  std::string msgs[2];
  int i = 0;
  for (const LaneExec exec : {LaneExec::kFiber, LaneExec::kConvergent}) {
    San::instance().reset();
    San::instance().enable(kSanSync);
    clear_exec_hints();
    LaunchParams p = one_block("exec_bdiv", 64);
    p.lane_exec = exec;
    try {
      dev().launch_sync(p, kernel);
      FAIL() << "expected a deadlock diagnosis";
    } catch (const std::runtime_error& e) {
      msgs[i++] = e.what();
    }
    EXPECT_GE(San::instance().count(SanKind::kBarrierDivergence), 1u);
  }
  EXPECT_EQ(msgs[0], msgs[1]);
  EXPECT_NE(msgs[0].find("barrier divergence"), std::string::npos) << msgs[0];
}

TEST_F(SanTest, AccessorsWorkWithSanitizerOff) {
  // The instrumented accessors must be pure pass-throughs when off.
  ompx::DeviceBuffer<int> buf(4, &dev());
  buf.fill_bytes(0);
  LaunchParams p = one_block("off_path", 4);
  dev().launch_sync(p, [&] {
    auto& t = this_thread();
    auto tile = ompx::san::shared_array<int>(4);
    tile[t.flat_tid] = static_cast<int>(t.flat_tid);
    auto a = buf.checked();
    a[t.flat_tid] = tile[t.flat_tid] * 2;
  });
  const auto host = buf.download();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(host[i], 2 * i);
  EXPECT_EQ(San::instance().error_count(), 0u);
}

}  // namespace
