// The expanded §3.4 host APIs: device management, streams, events,
// async copies — and their composition with depend(interopobj:).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ompx.h"

namespace {

class OmpxHostApi : public ::testing::Test {
 protected:
  void SetUp() override { ompx_set_device(0); }
};

TEST_F(OmpxHostApi, DeviceManagement) {
  EXPECT_EQ(ompx_get_num_devices(), 2);
  EXPECT_EQ(ompx_get_device(), 0);
  ompx_set_device(1);
  EXPECT_EQ(ompx_get_device(), 1);
  EXPECT_EQ(&ompx::default_device(), &simt::sim_mi250());
  ompx_set_device(0);
  EXPECT_THROW(ompx_set_device(7), std::invalid_argument);
  EXPECT_THROW(ompx_set_device(-1), std::invalid_argument);
}

TEST_F(OmpxHostApi, AsyncCopyThroughStream) {
  constexpr int n = 4096;
  auto* d = static_cast<int*>(ompx_malloc(n * sizeof(int)));
  std::vector<int> in(n);
  std::iota(in.begin(), in.end(), 3);
  std::vector<int> out(n, 0);
  ompx_stream_t s = ompx_stream_create();
  ompx_memcpy_async(d, in.data(), n * sizeof(int), s);
  ompx_memcpy_async(out.data(), d, n * sizeof(int), s);
  ompx_stream_synchronize(s);
  EXPECT_EQ(in, out);
  ompx_free(d);
}

TEST_F(OmpxHostApi, MemsetAsyncAndNullStreamRejected) {
  auto* d = static_cast<unsigned char*>(ompx_malloc(128));
  ompx_stream_t s = ompx_stream_create();
  ompx_memset_async(d, 0x3c, 128, s);
  ompx_stream_synchronize(s);
  for (int i = 0; i < 128; ++i) ASSERT_EQ(d[i], 0x3c);
  ompx_free(d);
  EXPECT_THROW(ompx_memset_async(d, 0, 1, nullptr), std::invalid_argument);
  EXPECT_THROW(ompx_stream_synchronize(nullptr), std::invalid_argument);
}

TEST_F(OmpxHostApi, EventsTimeAKernelSequence) {
  ompx_stream_t s = ompx_stream_create();
  ompx_event_t start = ompx_event_create();
  ompx_event_t stop = ompx_event_create();

  // Route kernels into the same stream through an interop object (the
  // §3.4 stream and the §3.5 interop object are the same thing).
  omp::Interop obj{&ompx::default_device(), static_cast<simt::Stream*>(s)};
  ompx_event_record(start, s);
  for (int i = 0; i < 3; ++i) {
    ompx::LaunchSpec spec;
    spec.num_teams = {32};
    spec.thread_limit = {128};
    spec.nowait = true;
    spec.depend_interop = &obj;
    spec.mode = simt::ExecMode::kDirect;
    spec.name = "timed_seq";
    spec.cost.global_bytes_per_thread = 256;
    ompx::launch(spec, [] {});
  }
  ompx_event_record(stop, s);
  ompx_event_synchronize(stop);
  const float ms = ompx_event_elapsed_ms(start, stop);
  EXPECT_GT(ms, 0.0f);
}

TEST_F(OmpxHostApi, StreamWaitEventOrdersAcrossStreams) {
  ompx_stream_t s1 = ompx_stream_create();
  ompx_stream_t s2 = ompx_stream_create();
  ompx_event_t ev = ompx_event_create();

  constexpr int n = 1024;
  auto* d = static_cast<int*>(ompx_malloc(n * sizeof(int)));
  std::vector<int> ones(n, 1), out(n, 0);

  // s2 must observe s1's upload.
  ompx_stream_wait_event(s2, ev);
  ompx_memcpy_async(out.data(), d, n * sizeof(int), s2);
  ompx_memcpy_async(d, ones.data(), n * sizeof(int), s1);
  ompx_event_record(ev, s1);
  ompx_stream_synchronize(s2);
  for (int v : out) ASSERT_EQ(v, 1);
  ompx_free(d);
}

TEST_F(OmpxHostApi, NullEventHandlesRejected) {
  ompx_stream_t s = ompx_stream_create();
  ompx_event_t ev = ompx_event_create();
  EXPECT_THROW(ompx_event_record(nullptr, s), std::invalid_argument);
  EXPECT_THROW(ompx_event_record(ev, nullptr), std::invalid_argument);
  EXPECT_THROW(ompx_event_synchronize(nullptr), std::invalid_argument);
  EXPECT_THROW(ompx_event_elapsed_ms(ev, nullptr), std::invalid_argument);
}

}  // namespace
