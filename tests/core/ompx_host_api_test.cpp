// The expanded §3.4 host APIs: device management, streams, events,
// async copies — and their composition with depend(interopobj:).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "core/ompx.h"

namespace {

class OmpxHostApi : public ::testing::Test {
 protected:
  void SetUp() override {
    ompx_set_device(0);
    (void)ompx_get_last_result();  // clean error slot per test
  }
};

TEST_F(OmpxHostApi, DeviceManagement) {
  EXPECT_EQ(ompx_get_num_devices(), 2);
  EXPECT_EQ(ompx_get_device(), 0);
  EXPECT_EQ(ompx_set_device(1), OMPX_SUCCESS);
  EXPECT_EQ(ompx_get_device(), 1);
  EXPECT_EQ(&ompx::default_device(), &simt::sim_mi250());
  EXPECT_EQ(ompx_set_device(0), OMPX_SUCCESS);
  // Bad indices are reported as error codes, never thrown across the C
  // boundary, and leave the current device untouched.
  EXPECT_EQ(ompx_set_device(7), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_set_device(-1), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_get_device(), 0);
  EXPECT_STREQ(ompx_result_string(OMPX_ERROR_INVALID_DEVICE),
               "invalid device index");
}

TEST_F(OmpxHostApi, LastResultIsClearOnRead) {
  EXPECT_EQ(ompx_peek_last_result(), OMPX_SUCCESS);
  ASSERT_EQ(ompx_set_device(99), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_peek_last_result(), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_NE(std::string(ompx_last_result_detail()).find("99"),
            std::string::npos);
  EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_get_last_result(), OMPX_SUCCESS);  // cleared by the read
}

TEST_F(OmpxHostApi, CurrentDeviceIsPerHostThread) {
  // CUDA semantics: cudaSetDevice is per host thread, and a fresh
  // thread starts at device 0 no matter what other threads selected.
  ASSERT_EQ(ompx_set_device(1), OMPX_SUCCESS);
  int fresh_thread_device = -2;
  int after_set_inside = -2;
  std::thread worker([&] {
    fresh_thread_device = ompx_get_device();
    ASSERT_EQ(ompx_set_device(1), OMPX_SUCCESS);
    after_set_inside = ompx_get_device();
  });
  worker.join();
  EXPECT_EQ(fresh_thread_device, 0);
  EXPECT_EQ(after_set_inside, 1);
  // The worker's selection did not leak back into this thread.
  EXPECT_EQ(ompx_get_device(), 1);
  ompx_set_device(0);
}

TEST_F(OmpxHostApi, MemcpyClassifiesCrossDeviceCopyAsPeerCopy) {
  // Regression for the direction-inference bug: memcpy_on used to
  // classify against the *current* device's registry only, so a copy
  // whose destination lived on another device was misread as
  // device-to-host (and a cross-device pair as host-to-host) — wrong
  // cost, no accounting on the owning devices.
  constexpr int n = 2048;
  simt::Device& a100 = simt::sim_a100();
  simt::Device& mi250 = simt::sim_mi250();
  auto* src = static_cast<int*>(ompx::malloc_on(a100, n * sizeof(int)));
  auto* dst = static_cast<int*>(ompx::malloc_on(mi250, n * sizeof(int)));
  std::vector<int> in(n);
  std::iota(in.begin(), in.end(), 11);
  ompx::memcpy_on(a100, src, in.data(), n * sizeof(int));

  const double a_before = a100.modeled_transfer_ms_total();
  const double m_before = mi250.modeled_transfer_ms_total();
  // Current device is sim-a100; the destination is sim-mi250 memory.
  ompx_memcpy(dst, src, n * sizeof(int));
  EXPECT_EQ(ompx_peek_last_result(), OMPX_SUCCESS);
  // The copy is accounted as a transfer on *both* owning devices.
  EXPECT_GT(a100.modeled_transfer_ms_total(), a_before);
  EXPECT_GT(mi250.modeled_transfer_ms_total(), m_before);

  std::vector<int> out(n, 0);
  ompx::memcpy_on(mi250, out.data(), dst, n * sizeof(int));
  EXPECT_EQ(in, out);
  ompx::free_on(a100, src);
  ompx::free_on(mi250, dst);
}

TEST_F(OmpxHostApi, FreeAndMemsetRouteToOwningDevice) {
  // free/memset through the "wrong" current device must reach the
  // owning device's registry instead of failing.
  simt::Device& mi250 = simt::sim_mi250();
  auto* p = static_cast<unsigned char*>(ompx::malloc_on(mi250, 64));
  ASSERT_EQ(ompx_get_device(), 0);  // current device is sim-a100
  EXPECT_EQ(ompx_memset(p, 0x5a, 64), OMPX_SUCCESS);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(p[i], 0x5a);
  EXPECT_EQ(ompx_free(p), OMPX_SUCCESS);
  EXPECT_EQ(mi250.memory().allocation_size(p), 0u);
}

TEST_F(OmpxHostApi, PeerCopyCApi) {
  constexpr int n = 1024;
  void* src = ompx::malloc_on(simt::sim_a100(), n * sizeof(int));
  void* dst = ompx::malloc_on(simt::sim_mi250(), n * sizeof(int));
  std::vector<int> in(n);
  std::iota(in.begin(), in.end(), -7);
  ompx::memcpy_on(simt::sim_a100(), src, in.data(), n * sizeof(int));

  EXPECT_EQ(ompx_memcpy_peer(dst, 1, src, 0, n * sizeof(int)), OMPX_SUCCESS);
  std::vector<int> out(n, 0);
  ompx::memcpy_on(simt::sim_mi250(), out.data(), dst, n * sizeof(int));
  EXPECT_EQ(in, out);

  // Bad device indices and foreign ranges surface as error codes.
  EXPECT_EQ(ompx_memcpy_peer(dst, 9, src, 0, 8), OMPX_ERROR_INVALID_DEVICE);
  EXPECT_EQ(ompx_memcpy_peer(dst, 1, src, -3, 8), OMPX_ERROR_INVALID_DEVICE);
  // src belongs to device 0, not device 1: bounds validation rejects it.
  EXPECT_EQ(ompx_memcpy_peer(dst, 1, src, 1, 8), OMPX_ERROR_INVALID_VALUE);
  (void)ompx_get_last_result();

  ompx::free_on(simt::sim_a100(), src);
  ompx::free_on(simt::sim_mi250(), dst);
}

TEST_F(OmpxHostApi, PeerAccessManagement) {
  int can = -1;
  ASSERT_EQ(ompx_device_can_access_peer(&can, 0, 1), OMPX_SUCCESS);
  EXPECT_EQ(can, 1);
  ASSERT_EQ(ompx_device_can_access_peer(&can, 0, 0), OMPX_SUCCESS);
  EXPECT_EQ(can, 0);  // a device is not its own peer
  EXPECT_EQ(ompx_device_can_access_peer(nullptr, 0, 1),
            OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_device_can_access_peer(&can, 0, 5),
            OMPX_ERROR_INVALID_DEVICE);

  EXPECT_EQ(ompx_device_enable_peer_access(1, 7), OMPX_ERROR_INVALID_VALUE);
  ASSERT_EQ(ompx_device_enable_peer_access(1, 0), OMPX_SUCCESS);
  EXPECT_TRUE(simt::sim_a100().peer_access_enabled(simt::sim_mi250()));
  ASSERT_EQ(ompx_device_enable_peer_access(1, 0), OMPX_SUCCESS);  // idempotent
  ASSERT_EQ(ompx_device_disable_peer_access(1), OMPX_SUCCESS);
  EXPECT_FALSE(simt::sim_a100().peer_access_enabled(simt::sim_mi250()));
  (void)ompx_get_last_result();
}

TEST_F(OmpxHostApi, AsyncCopyThroughStream) {
  constexpr int n = 4096;
  auto* d = static_cast<int*>(ompx_malloc(n * sizeof(int)));
  std::vector<int> in(n);
  std::iota(in.begin(), in.end(), 3);
  std::vector<int> out(n, 0);
  ompx_stream_t s = ompx_stream_create();
  ompx_memcpy_async(d, in.data(), n * sizeof(int), s);
  ompx_memcpy_async(out.data(), d, n * sizeof(int), s);
  ompx_stream_synchronize(s);
  EXPECT_EQ(in, out);
  ompx_free(d);
}

TEST_F(OmpxHostApi, MemsetAsyncAndNullStreamRejected) {
  auto* d = static_cast<unsigned char*>(ompx_malloc(128));
  ompx_stream_t s = ompx_stream_create();
  ompx_memset_async(d, 0x3c, 128, s);
  ompx_stream_synchronize(s);
  for (int i = 0; i < 128; ++i) ASSERT_EQ(d[i], 0x3c);
  ompx_free(d);
  EXPECT_EQ(ompx_memset_async(d, 0, 1, nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_stream_synchronize(nullptr), OMPX_ERROR_INVALID_VALUE);
  (void)ompx_get_last_result();
}

TEST_F(OmpxHostApi, EventsTimeAKernelSequence) {
  ompx_stream_t s = ompx_stream_create();
  ompx_event_t start = ompx_event_create();
  ompx_event_t stop = ompx_event_create();

  // Route kernels into the same stream through an interop object (the
  // §3.4 stream and the §3.5 interop object are the same thing).
  omp::Interop obj{&ompx::default_device(), static_cast<simt::Stream*>(s)};
  ompx_event_record(start, s);
  for (int i = 0; i < 3; ++i) {
    ompx::LaunchSpec spec;
    spec.num_teams = {32};
    spec.thread_limit = {128};
    spec.nowait = true;
    spec.depend_interop = &obj;
    spec.mode = simt::ExecMode::kDirect;
    spec.name = "timed_seq";
    spec.cost.global_bytes_per_thread = 256;
    ompx::launch(spec, [] {});
  }
  ompx_event_record(stop, s);
  ompx_event_synchronize(stop);
  const float ms = ompx_event_elapsed_ms(start, stop);
  EXPECT_GT(ms, 0.0f);
}

TEST_F(OmpxHostApi, StreamWaitEventOrdersAcrossStreams) {
  ompx_stream_t s1 = ompx_stream_create();
  ompx_stream_t s2 = ompx_stream_create();
  ompx_event_t ev = ompx_event_create();

  constexpr int n = 1024;
  auto* d = static_cast<int*>(ompx_malloc(n * sizeof(int)));
  std::vector<int> ones(n, 1), out(n, 0);

  // s2 must observe s1's upload.
  ompx_stream_wait_event(s2, ev);
  ompx_memcpy_async(out.data(), d, n * sizeof(int), s2);
  ompx_memcpy_async(d, ones.data(), n * sizeof(int), s1);
  ompx_event_record(ev, s1);
  ompx_stream_synchronize(s2);
  for (int v : out) ASSERT_EQ(v, 1);
  ompx_free(d);
}

TEST_F(OmpxHostApi, NullEventHandlesRejected) {
  ompx_stream_t s = ompx_stream_create();
  ompx_event_t ev = ompx_event_create();
  EXPECT_EQ(ompx_event_record(nullptr, s), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_event_record(ev, nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_event_synchronize(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_event_elapsed_ms(ev, nullptr), -1.0f);
  EXPECT_EQ(ompx_get_last_result(), OMPX_ERROR_INVALID_VALUE);
}

}  // namespace
