// Tests for the ompx extension layer: the paper's contribution.
//  - C and C++ device APIs agree with each other and with kl intrinsics
//  - ompx_bare launches carry zero runtime machinery
//  - multi-dimensional num_teams / thread_limit
//  - depend(interopobj:) stream dispatch + taskwait (Figure 5)
//  - host APIs (ompx_malloc & friends)
#include "core/ompx.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kl/kl.h"

namespace {

simt::Device& a100() { return simt::sim_a100(); }
simt::Device& mi250() { return simt::sim_mi250(); }

TEST(OmpxDevice, CAndCppApisAgreeWithEngine) {
  ompx::LaunchSpec spec;
  spec.num_teams = {4, 3, 2};
  spec.thread_limit = {8, 4, 2};
  spec.name = "api_agreement";
  spec.mode = simt::ExecMode::kDirect;
  bool ok = true;
  ompx::launch(spec, [&] {
    const auto& t = simt::this_thread();
    if (ompx_thread_id_x() != static_cast<int>(t.thread_idx.x)) ok = false;
    if (ompx_thread_id_y() != static_cast<int>(t.thread_idx.y)) ok = false;
    if (ompx_thread_id_z() != static_cast<int>(t.thread_idx.z)) ok = false;
    if (ompx_block_id_x() != static_cast<int>(t.block_idx.x)) ok = false;
    if (ompx_block_id_y() != static_cast<int>(t.block_idx.y)) ok = false;
    if (ompx_block_dim_x() != 8 || ompx_block_dim_y() != 4 ||
        ompx_block_dim_z() != 2)
      ok = false;
    if (ompx_grid_dim_x() != 4 || ompx_grid_dim_y() != 3 ||
        ompx_grid_dim_z() != 2)
      ok = false;
    if (ompx::thread_id(ompx::dim_x) != ompx_thread_id_x()) ok = false;
    if (ompx::block_id(ompx::dim_y) != ompx_block_id_y()) ok = false;
    if (ompx::grid_dim(ompx::dim_z) != ompx_grid_dim_z()) ok = false;
    if (ompx_lane_id() != static_cast<int>(t.lane)) ok = false;
    if (ompx_warp_size() != 32) ok = false;
  }).wait();
  EXPECT_TRUE(ok);
}

TEST(OmpxDevice, MatchesKlIntrinsicsThreadForThread) {
  // Differential test: the same kernel through ompx and kl writes
  // identical index patterns.
  constexpr int n = 2048;
  std::vector<std::int64_t> via_ompx(n), via_kl(n);
  auto* po = via_ompx.data();
  auto* pk = via_kl.data();

  ompx::LaunchSpec spec;
  spec.num_teams = {8};
  spec.thread_limit = {256};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "diff_ompx";
  ompx::launch(spec, [=] {
    const std::int64_t i = ompx::global_thread_id();
    po[i] = i * 3 + ompx_lane_id();
  });

  kl::KernelAttrs attrs;
  attrs.mode = simt::ExecMode::kDirect;
  attrs.name = "diff_kl";
  ASSERT_EQ(kl::klSetDevice(0), kl::klSuccess);
  kl::launch({8}, {256}, 0, nullptr, attrs, [=] {
    const std::int64_t i = static_cast<std::int64_t>(kl::global_thread_id_x());
    pk[i] = i * 3 + kl::laneId();
  });
  kl::klDeviceSynchronize();
  EXPECT_EQ(via_ompx, via_kl);
}

TEST(OmpxLaunch, BareModeHasNoRuntimeMachinery) {
  a100().clear_launch_log();
  ompx::LaunchSpec spec;
  spec.num_teams = {16};
  spec.thread_limit = {64};
  spec.name = "bare";
  ompx::launch(spec, [] {}).wait();
  const auto rec = a100().last_launch();
  EXPECT_FALSE(rec.stats.runtime_init);
  EXPECT_FALSE(rec.stats.generic_mode);
  EXPECT_EQ(rec.stats.parallel_handshakes, 0u);
  EXPECT_EQ(rec.stats.globalized_bytes, 0u);
}

TEST(OmpxLaunch, NonBareInitializesRuntime) {
  a100().clear_launch_log();
  ompx::LaunchSpec spec;
  spec.bare = false;
  spec.name = "nonbare";
  ompx::launch(spec, [] {}).wait();
  EXPECT_TRUE(a100().last_launch().stats.runtime_init);
}

TEST(OmpxLaunch, BareIsCheaperThanNonBare) {
  a100().clear_launch_log();
  ompx::LaunchSpec bare;
  bare.num_teams = {8};
  bare.name = "abl_bare";
  ompx::launch(bare, [] {}).wait();
  const double t_bare = a100().last_launch().time.total_ms;
  ompx::LaunchSpec nonbare = bare;
  nonbare.bare = false;
  nonbare.name = "abl_nonbare";
  ompx::launch(nonbare, [] {}).wait();
  const double t_nonbare = a100().last_launch().time.total_ms;
  EXPECT_LT(t_bare, t_nonbare);
}

TEST(OmpxLaunch, MultiDimensionalGridAndBlock) {
  // §3.2: num_teams(4, 2, 2), thread_limit(8, 8) — every coordinate
  // covered exactly once.
  ompx::LaunchSpec spec;
  spec.num_teams = {4, 2, 2};
  spec.thread_limit = {8, 8};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "multidim";
  const std::uint64_t total = 4 * 2 * 2 * 8 * 8;
  std::vector<int> hits(total, 0);
  auto* h = hits.data();
  ompx::launch(spec, [=] {
    const std::uint64_t block_flat =
        (static_cast<std::uint64_t>(ompx_block_id_z()) * 2 +
         ompx_block_id_y()) * 4 + ompx_block_id_x();
    const std::uint64_t thread_flat =
        static_cast<std::uint64_t>(ompx_thread_id_y()) * 8 +
        ompx_thread_id_x();
    h[block_flat * 64 + thread_flat]++;
  }).wait();
  for (int v : hits) ASSERT_EQ(v, 1);
}

TEST(OmpxDevice, GroupprivateSharedAcrossTeamThreads) {
  // Figure 4: shared variables via groupprivate.
  ompx::LaunchSpec spec;
  spec.num_teams = {4};
  spec.thread_limit = {128};
  spec.name = "groupprivate";
  std::vector<int> sums(4, 0);
  auto* out = sums.data();
  ompx::launch(spec, [=] {
    int* shared = ompx::groupprivate<int>(128);
    shared[ompx_thread_id_x()] = 1;
    ompx_sync_thread_block();
    if (ompx_thread_id_x() == 0) {
      int s = 0;
      for (int i = 0; i < 128; ++i) s += shared[i];
      out[ompx_block_id_x()] = s;
    }
  }).wait();
  for (int s : sums) EXPECT_EQ(s, 128);
}

TEST(OmpxDevice, DynamicGroupprivateSegment) {
  ompx::LaunchSpec spec;
  spec.num_teams = {2};
  spec.thread_limit = {32};
  spec.dynamic_groupprivate_bytes = 32 * sizeof(float);
  spec.name = "dyn_groupprivate";
  std::vector<float> out(2, 0.0f);
  auto* po = out.data();
  ompx::launch(spec, [=] {
    float* dyn = ompx::dynamic_groupprivate<float>();
    dyn[ompx_thread_id_x()] = 0.5f;
    ompx_sync_thread_block();
    if (ompx_thread_id_x() == 0) {
      float s = 0;
      for (int i = 0; i < 32; ++i) s += dyn[i];
      po[ompx_block_id_x()] = s;
    }
  }).wait();
  EXPECT_FLOAT_EQ(out[0], 16.0f);
  EXPECT_FLOAT_EQ(out[1], 16.0f);
}

TEST(OmpxDevice, WarpPrimitivesOnBothWarpSizes) {
  for (simt::Device* dev : {&a100(), &mi250()}) {
    ompx::LaunchSpec spec;
    spec.device = dev;
    spec.num_teams = {1};
    spec.thread_limit = {dev->config().warp_size};
    spec.name = "warp_prims";
    std::uint64_t ballot = 0;
    double reduced = 0;
    auto* pb = &ballot;
    auto* pr = &reduced;
    ompx::launch(spec, [=] {
      const std::uint64_t b = ompx_ballot_sync(~0ull, ompx_lane_id() % 2);
      double v = 1.0;
      for (int d = ompx_warp_size() / 2; d > 0; d /= 2)
        v += ompx_shfl_down_sync_d(~0ull, v, static_cast<unsigned>(d));
      if (ompx_lane_id() == 0) {
        *pb = b;
        *pr = v;
      }
    }).wait();
    const unsigned ws = dev->config().warp_size;
    std::uint64_t expect = 0;
    for (unsigned i = 1; i < ws; i += 2) expect |= 1ull << i;
    EXPECT_EQ(ballot, expect) << dev->config().name;
    EXPECT_DOUBLE_EQ(reduced, static_cast<double>(ws)) << dev->config().name;
  }
}

TEST(OmpxHost, MallocMemcpyInferredDirection) {
  ompx::set_default_device(a100());
  constexpr int n = 512;
  auto* d = static_cast<int*>(ompx_malloc(n * sizeof(int)));
  ASSERT_NE(d, nullptr);
  std::vector<int> h(n);
  std::iota(h.begin(), h.end(), 5);
  ompx_memcpy(d, h.data(), n * sizeof(int));  // inferred H2D
  std::vector<int> back(n, 0);
  ompx_memcpy(back.data(), d, n * sizeof(int));  // inferred D2H
  EXPECT_EQ(h, back);
  EXPECT_TRUE(ompx::is_device_ptr(a100(), d));
  EXPECT_FALSE(ompx::is_device_ptr(a100(), h.data()));
  ompx_free(d);
}

TEST(OmpxHost, MemsetAndSynchronize) {
  ompx::set_default_device(a100());
  auto* d = static_cast<unsigned char*>(ompx_malloc(64));
  ompx_memset(d, 0x7, 64);
  ompx_device_synchronize();
  for (int i = 0; i < 64; ++i) ASSERT_EQ(d[i], 0x7);
  ompx_free(d);
}

TEST(OmpxInterop, DependInteropDispatchesIntoStream) {
  // Figure 5: nowait target regions ordered through one interop object.
  omp::Interop obj = omp::interop_init_targetsync(a100());
  ASSERT_TRUE(obj.valid());

  constexpr int n = 1 << 14;
  std::vector<int> data(n, 1);
  auto* p = data.data();

  for (int round = 0; round < 4; ++round) {
    ompx::LaunchSpec spec;
    spec.num_teams = {n / 256};
    spec.thread_limit = {256};
    spec.nowait = true;
    spec.depend_interop = &obj;
    spec.mode = simt::ExecMode::kDirect;
    spec.name = "interop_chain";
    ompx::launch(spec, [=] {
      const std::int64_t i = ompx::global_thread_id();
      p[i] *= 2;  // stream FIFO makes the rounds sequential
    });
  }
  ompx::taskwait(obj);  // taskwait depend(interopobj: obj)
  for (int v : data) ASSERT_EQ(v, 16);
  omp::interop_destroy(obj);
  EXPECT_FALSE(obj.valid());
}

TEST(OmpxInterop, TwoInteropStreamsAreIndependent) {
  omp::Interop s1 = omp::interop_init_targetsync(a100());
  omp::Interop s2 = omp::interop_init_targetsync(a100());
  std::atomic<int> c1{0}, c2{0};
  for (int i = 0; i < 3; ++i) {
    ompx::LaunchSpec a;
    a.nowait = true;
    a.depend_interop = &s1;
    a.mode = simt::ExecMode::kDirect;
    a.num_teams = {2};
    a.thread_limit = {32};
    ompx::launch(a, [&] { c1.fetch_add(1); });
    ompx::LaunchSpec b = a;
    b.depend_interop = &s2;
    ompx::launch(b, [&] { c2.fetch_add(1); });
  }
  ompx::taskwait(s1);
  ompx::taskwait(s2);
  EXPECT_EQ(c1.load(), 3 * 64);
  EXPECT_EQ(c2.load(), 3 * 64);
  omp::interop_destroy(s1);
  omp::interop_destroy(s2);
}

TEST(OmpxInterop, WrongDeviceInteropRejected) {
  omp::Interop obj = omp::interop_init_targetsync(mi250());
  ompx::LaunchSpec spec;
  spec.device = &a100();
  spec.depend_interop = &obj;
  EXPECT_THROW(ompx::launch(spec, [] {}), std::invalid_argument);
  omp::interop_destroy(obj);
}

TEST(OmpxLaunch, NowaitWithDependsOrdersTasks) {
  std::vector<int> order;
  int token = 0;
  ompx::LaunchSpec first;
  first.nowait = true;
  first.depends = {omp::dep_out(&token)};
  first.num_teams = {1};
  first.thread_limit = {1};
  first.name = "nowait_1";
  ompx::launch(first, [&] { order.push_back(1); });
  ompx::LaunchSpec second = first;
  second.depends = {omp::dep_in(&token)};
  second.name = "nowait_2";
  ompx::launch(second, [&] { order.push_back(2); });
  ompx::taskwait();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(OmpxLaunch, UnsupportedDimensionsDisregarded) {
  // §3.2: "any dimensions exceeding a device's capability will be
  // disregarded." A 1-D-only device folds y/z away.
  simt::DeviceConfig cfg = simt::make_sim_a100_config();
  cfg.name = "one-dim";
  cfg.grid_dims_supported = 1;
  simt::Device dev(cfg);
  dev.clear_launch_log();
  ompx::LaunchSpec spec;
  spec.device = &dev;
  spec.num_teams = {4, 3, 2};
  spec.thread_limit = {16, 2, 2};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "dims";
  std::atomic<int> count{0};
  ompx::launch(spec, [&] { count.fetch_add(1); }).wait();
  const auto rec = dev.last_launch();
  EXPECT_EQ(rec.grid, (simt::Dim3{4, 1, 1}));
  EXPECT_EQ(rec.block, (simt::Dim3{16, 1, 1}));
  EXPECT_EQ(count.load(), 4 * 16);
}

TEST(OmpxDevice, ReduceApisMatchShuffleTree) {
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {32};
  spec.name = "reduce_vs_tree";
  int via_reduce = -1, via_tree = -1;
  ompx::launch(spec, [&] {
    const int mine = ompx_lane_id() * 3 + 1;
    const int r = ompx_reduce_add_sync_i(~0ull, mine);
    int v = mine;
    for (int d = ompx_warp_size() / 2; d > 0; d /= 2)
      v += ompx::shfl_down_sync(~0ull, v, static_cast<unsigned>(d));
    if (ompx_lane_id() == 0) {
      via_reduce = r;
      via_tree = v;
    }
  }).wait();
  EXPECT_EQ(via_reduce, via_tree);
  EXPECT_EQ(via_reduce, 32 * 1 + 3 * (31 * 32 / 2));
}

TEST(OmpxLaunch, SynchronousLaunchOnSecondDevice) {
  ompx::LaunchSpec spec;
  spec.device = &mi250();
  spec.num_teams = {2};
  spec.thread_limit = {64};
  spec.name = "on_mi250";
  int warp = 0;
  ompx::launch(spec, [&] {
    if (ompx::global_thread_id() == 0) warp = ompx_warp_size();
  }).wait();
  EXPECT_EQ(warp, 64);
}

}  // namespace
