// Exhaustive coverage of the C-shaped ompx device API (§3.3): every
// extern "C" entry point, on both warp sizes. These are the symbols a
// C (or Fortran-binding) translation unit links against, so each one
// is exercised individually rather than through the C++ templates.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ompx.h"

namespace {

class CApi : public ::testing::TestWithParam<int> {
 protected:
  simt::Device& dev() {
    return *simt::device_registry()[static_cast<std::size_t>(GetParam())];
  }
  unsigned ws() { return dev().config().warp_size; }

  template <typename F>
  void run_warp(F&& body) {
    ompx::LaunchSpec spec;
    spec.device = &dev();
    spec.num_teams = {1};
    spec.thread_limit = {ws()};
    spec.name = "capi";
    ompx::launch(spec, std::forward<F>(body)).wait();
  }
};

TEST_P(CApi, ShflSyncIntBroadcast) {
  std::vector<int> got(ws(), -1);
  auto* p = got.data();
  run_warp([=] {
    p[ompx_lane_id()] = ompx_shfl_sync_i(~0ull, 100 + ompx_lane_id(), 5);
  });
  for (unsigned l = 0; l < ws(); ++l) EXPECT_EQ(got[l], 105);
}

TEST_P(CApi, ShflUpSyncInt) {
  std::vector<int> got(ws(), -1);
  auto* p = got.data();
  run_warp([=] {
    p[ompx_lane_id()] = ompx_shfl_up_sync_i(~0ull, ompx_lane_id() * 2, 1);
  });
  EXPECT_EQ(got[0], 0);  // lane 0 keeps its own value
  for (unsigned l = 1; l < ws(); ++l) EXPECT_EQ(got[l], 2 * (int(l) - 1));
}

TEST_P(CApi, ShflDownSyncInt) {
  std::vector<int> got(ws(), -1);
  auto* p = got.data();
  run_warp([=] {
    p[ompx_lane_id()] = ompx_shfl_down_sync_i(~0ull, ompx_lane_id(), 2);
  });
  for (unsigned l = 0; l + 2 < ws(); ++l) EXPECT_EQ(got[l], int(l) + 2);
  EXPECT_EQ(got[ws() - 1], int(ws()) - 1);  // tail keeps own value
}

TEST_P(CApi, ShflXorSyncInt) {
  std::vector<int> got(ws(), -1);
  auto* p = got.data();
  run_warp([=] {
    p[ompx_lane_id()] = ompx_shfl_xor_sync_i(~0ull, ompx_lane_id(), 3);
  });
  for (unsigned l = 0; l < ws(); ++l) EXPECT_EQ(got[l], int(l ^ 3u));
}

TEST_P(CApi, ShflSyncDoubleAndFloat) {
  std::vector<double> gd(ws(), -1);
  std::vector<float> gf(ws(), -1);
  auto* pd = gd.data();
  auto* pf = gf.data();
  run_warp([=] {
    pd[ompx_lane_id()] =
        ompx_shfl_sync_d(~0ull, 0.5 + ompx_lane_id(), 0);
    pf[ompx_lane_id()] =
        ompx_shfl_down_sync_f(~0ull, 1.5f * ompx_lane_id(), 1);
  });
  for (unsigned l = 0; l < ws(); ++l) {
    EXPECT_DOUBLE_EQ(gd[l], 0.5);
    const float expect = l + 1 < ws() ? 1.5f * (l + 1) : 1.5f * l;
    EXPECT_FLOAT_EQ(gf[l], expect);
  }
  // Double shfl_down variant too.
  std::vector<double> gdd(ws(), -1);
  auto* pdd = gdd.data();
  run_warp([=] {
    pdd[ompx_lane_id()] =
        ompx_shfl_down_sync_d(~0ull, 2.0 * ompx_lane_id(), 4);
  });
  for (unsigned l = 0; l + 4 < ws(); ++l) EXPECT_DOUBLE_EQ(gdd[l], 2.0 * (l + 4));
}

TEST_P(CApi, VotesAnyAllBallot) {
  int any_none = -1, all_all = -1, any_one = -1, all_one = -1;
  std::uint64_t ballot = 0;
  run_warp([&] {
    const int none = ompx_any_sync(~0ull, 0);
    const int all1 = ompx_all_sync(~0ull, 1);
    const int one = ompx_any_sync(~0ull, ompx_lane_id() == 2);
    const int allone = ompx_all_sync(~0ull, ompx_lane_id() == 2);
    const std::uint64_t b = ompx_ballot_sync(~0ull, ompx_lane_id() < 4);
    if (ompx_lane_id() == 0) {
      any_none = none;
      all_all = all1;
      any_one = one;
      all_one = allone;
      ballot = b;
    }
  });
  EXPECT_EQ(any_none, 0);
  EXPECT_EQ(all_all, 1);
  EXPECT_EQ(any_one, 1);
  EXPECT_EQ(all_one, 0);
  EXPECT_EQ(ballot, 0xfull);
}

TEST_P(CApi, ReduceCApis) {
  int add = 0, mn = 0, mx = 0;
  run_warp([&] {
    const int a = ompx_reduce_add_sync_i(~0ull, 2);
    const int lo = ompx_reduce_min_sync_i(~0ull, int(ompx_lane_id()) - 5);
    const int hi = ompx_reduce_max_sync_i(~0ull, int(ompx_lane_id()) - 5);
    if (ompx_lane_id() == 0) {
      add = a;
      mn = lo;
      mx = hi;
    }
  });
  EXPECT_EQ(add, 2 * int(ws()));
  EXPECT_EQ(mn, -5);
  EXPECT_EQ(mx, int(ws()) - 6);
}

TEST_P(CApi, LaneAndWarpSizeQueries) {
  std::vector<int> lanes(ws(), -1);
  int seen_ws = 0;
  auto* p = lanes.data();
  run_warp([&, p] {
    p[ompx_lane_id()] = ompx_lane_id();
    if (ompx_lane_id() == 0) seen_ws = ompx_warp_size();
  });
  EXPECT_EQ(seen_ws, int(ws()));
  for (unsigned l = 0; l < ws(); ++l) EXPECT_EQ(lanes[l], int(l));
}

INSTANTIATE_TEST_SUITE_P(BothDevices, CApi, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? "warp32" : "warp64";
                         });

TEST(CApiHost, EntryPointsHaveCLinkage) {
  // The addresses must resolve as plain C symbols (the §3.3 Fortran
  // extensibility story depends on this). Taking addresses through
  // function pointers is enough to pin the linkage contract.
  using fn_i = int (*)();
  const fn_i fns[] = {&ompx_thread_id_x, &ompx_block_id_y, &ompx_grid_dim_z,
                      &ompx_lane_id, &ompx_warp_size, &ompx_get_num_devices,
                      &ompx_get_device};
  for (auto* f : fns) EXPECT_NE(f, nullptr);
  void (*sync)() = &ompx_sync_thread_block;
  EXPECT_NE(sync, nullptr);
  // Telemetry and lifecycle entry points added with the profiling API.
  void (*profv[])() = {&ompx_profiler_start, &ompx_profiler_stop,
                       &ompx_profiler_reset};
  for (auto* f : profv) EXPECT_NE(f, nullptr);
  int (*enabled)() = &ompx_profiler_enabled;
  EXPECT_NE(enabled, nullptr);
  int (*dump)(const char*) = &ompx_profiler_dump;
  EXPECT_NE(dump, nullptr);
  int (*info)(ompx_launch_info_t*) = &ompx_get_last_launch_info;
  EXPECT_NE(info, nullptr);
  ompx_result_t (*sdestroy)(ompx_stream_t) = &ompx_stream_destroy;
  EXPECT_NE(sdestroy, nullptr);
  ompx_result_t (*edestroy)(ompx_event_t) = &ompx_event_destroy;
  EXPECT_NE(edestroy, nullptr);
  // The multi-device additions are plain C symbols too.
  ompx_result_t (*peer)(void*, int, const void*, int, std::size_t) =
      &ompx_memcpy_peer;
  EXPECT_NE(peer, nullptr);
  ompx_result_t (*enable)(int, unsigned int) = &ompx_device_enable_peer_access;
  EXPECT_NE(enable, nullptr);
  ompx_result_t (*disable)(int) = &ompx_device_disable_peer_access;
  EXPECT_NE(disable, nullptr);
  ompx_result_t (*can)(int*, int, int) = &ompx_device_can_access_peer;
  EXPECT_NE(can, nullptr);
  const char* (*rstr)(ompx_result_t) = &ompx_result_string;
  EXPECT_NE(rstr, nullptr);
  ompx_result_t (*last)(void) = &ompx_get_last_result;
  EXPECT_NE(last, nullptr);
}

// --- launch telemetry (uniform profiling API, C and C++ views) -----------

namespace capi_profiler {

/// One small named launch on the default device.
void one_launch(const char* name) {
  ompx::LaunchSpec spec;
  spec.num_teams = {2};
  spec.thread_limit = {32};
  spec.name = name;
  ompx::launch(spec, [] {}).wait();
}

}  // namespace capi_profiler

TEST(CApiHost, ProfilerStartStopEnabledReset) {
  ompx_profiler_stop();
  ompx_profiler_reset();
  EXPECT_EQ(ompx_profiler_enabled(), 0);
  ompx_profiler_start();
  EXPECT_EQ(ompx_profiler_enabled(), 1);
  capi_profiler::one_launch("capi_traced");
  ompx_profiler_stop();
  EXPECT_EQ(ompx_profiler_enabled(), 0);
  EXPECT_GE(ompx::Profiler::counters().launches, 1u);
  ompx_profiler_reset();
  EXPECT_EQ(ompx::Profiler::counters().launches, 0u);
}

TEST(CApiHost, ProfilerDumpWritesParseableTrace) {
  ompx_profiler_reset();
  ompx_profiler_start();
  capi_profiler::one_launch("capi_dump");
  ompx_profiler_stop();
  const std::string path =
      ::testing::TempDir() + "/ompx_capi_trace.json";
  ASSERT_EQ(ompx_profiler_dump(path.c_str()), 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("capi_dump"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  // Invalid path reports failure instead of throwing across the C ABI.
  EXPECT_EQ(ompx_profiler_dump("/nonexistent-dir/trace.json"), -1);
  ompx_profiler_reset();
}

TEST(CApiHost, ScopedProfilerMirrorsCApi) {
  ompx_profiler_stop();
  ompx_profiler_reset();
  {
    ompx::Profiler scoped;  // no dump path: capture window only
    EXPECT_EQ(ompx_profiler_enabled(), 1);
    capi_profiler::one_launch("scoped_traced");
  }
  EXPECT_EQ(ompx_profiler_enabled(), 0);
  EXPECT_EQ(ompx::Profiler::counters().launches, 1u);
  EXPECT_NE(ompx::Profiler::trace_json().find("scoped_traced"),
            std::string::npos);
  ompx::Profiler::reset();
}

TEST(CApiHost, GetLastLaunchInfo) {
  EXPECT_EQ(ompx_get_last_launch_info(nullptr), -1);
  capi_profiler::one_launch("capi_info_kernel");
  ompx_launch_info_t info;
  ASSERT_EQ(ompx_get_last_launch_info(&info), 0);
  EXPECT_STREQ(info.name, "capi_info_kernel");
  EXPECT_EQ(info.grid[0], 2u);
  EXPECT_EQ(info.block[0], 32u);
  EXPECT_EQ(info.blocks, 2ull);
  EXPECT_EQ(info.threads, 64ull);
  EXPECT_GE(info.modeled_total_ms, 0.0);
  EXPECT_GE(info.wall_ms, 0.0);
}

TEST(CApiHost, ExecHintAndPolicyRoundTrip) {
  const simt::ExecPolicy saved = simt::exec_policy();
  EXPECT_EQ(ompx_set_exec_policy(nullptr), OMPX_ERROR_INVALID_VALUE);
  EXPECT_EQ(ompx_set_exec_policy("bogus"), OMPX_ERROR_INVALID_VALUE);
  ASSERT_EQ(ompx_set_exec_policy("convergent"), OMPX_SUCCESS);
  simt::clear_exec_hints();

  ompx::LaunchSpec spec;
  spec.num_teams = {2};
  spec.thread_limit = {32};
  spec.mode = simt::ExecMode::kCooperative;
  spec.name = "capi_exec_kernel";
  ompx::launch(spec, [] {}).wait();
  ompx_launch_info_t info;
  ASSERT_EQ(ompx_get_last_launch_info(&info), 0);
  EXPECT_STREQ(info.exec_mode, "convergent");
  EXPECT_EQ(info.lane_loops, 64ull);  // every thread ran fiber-free

  // needs_fibers pins the fiber path even under the convergent policy.
  ASSERT_EQ(ompx_set_exec_hint("capi_exec_kernel", 0, 1), OMPX_SUCCESS);
  ompx::launch(spec, [] {}).wait();
  ASSERT_EQ(ompx_get_last_launch_info(&info), 0);
  EXPECT_STREQ(info.exec_mode, "fiber");
  EXPECT_EQ(info.lane_loops, 0ull);

  EXPECT_EQ(ompx_set_exec_hint(nullptr, 1, 0), OMPX_ERROR_INVALID_VALUE);
  simt::clear_exec_hints();
  simt::set_exec_policy(saved);
}

TEST(CApiHost, LaunchReturnsTicket) {
  ompx::LaunchSpec spec;
  spec.num_teams = {3};
  spec.thread_limit = {32};
  spec.name = "ticket_kernel";
  ompx::LaunchResult r = ompx::launch(spec, [] {});
  r.wait();  // async by default; the ticket delivers the record
  EXPECT_TRUE(r.completed);
  EXPECT_STREQ(r.record.name.c_str(), "ticket_kernel");
  EXPECT_EQ(r.record.stats.blocks, 3u);
  EXPECT_GT(r.modeled_ms(), 0.0);
  EXPECT_GE(r.wall_ms(), 0.0);
  // launch_record() reads the same measurement back.
  EXPECT_EQ(ompx::launch_record().name, "ticket_kernel");
}

TEST(CApiHost, StreamAndEventDestroy) {
  ompx_stream_t s = ompx_stream_create();
  ASSERT_NE(s, nullptr);
  std::vector<int> a(1024, 1), b(1024, 0);
  void* d = ompx_malloc(a.size() * sizeof(int));
  ompx_memcpy_async(d, a.data(), a.size() * sizeof(int), s);
  ompx_memcpy_async(b.data(), d, a.size() * sizeof(int), s);
  ompx_event_t ev = ompx_event_create();
  ompx_event_record(ev, s);
  ompx_stream_destroy(s);  // drains the two copies before releasing
  EXPECT_EQ(a, b);
  ompx_event_destroy(ev);
  ompx_stream_destroy(nullptr);  // no-ops
  ompx_event_destroy(nullptr);
  ompx_free(d);
}

}  // namespace
