// DeviceBuffer RAII semantics + the 2-D pitched copy.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ompx.h"
#include "core/ompx_buffer.h"
#include "kl/kl.h"

namespace {

TEST(DeviceBuffer, RoundTripAndRaii) {
  const auto before = simt::sim_a100().memory().live_allocations();
  {
    std::vector<int> host(100);
    std::iota(host.begin(), host.end(), 0);
    ompx::DeviceBuffer<int> buf(host, &simt::sim_a100());
    EXPECT_EQ(buf.size(), 100u);
    EXPECT_TRUE(ompx::is_device_ptr(simt::sim_a100(), buf.data()));
    EXPECT_EQ(buf.download(), host);
  }
  EXPECT_EQ(simt::sim_a100().memory().live_allocations(), before);
}

TEST(DeviceBuffer, UsableFromKernels) {
  ompx::set_default_device(simt::sim_a100());
  ompx::DeviceBuffer<float> buf(256);
  buf.fill_bytes(0);
  ompx::LaunchSpec spec;
  spec.num_teams = {1};
  spec.thread_limit = {256};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "buffer_kernel";
  float* p = buf.data();
  ompx::launch(spec, [=] {
    p[ompx_thread_id_x()] = 0.5f * static_cast<float>(ompx_thread_id_x());
  });
  const auto host = buf.download();
  for (int i = 0; i < 256; ++i) ASSERT_FLOAT_EQ(host[i], 0.5f * i);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  ompx::DeviceBuffer<int> a(32, &simt::sim_a100());
  int* raw = a.data();
  ompx::DeviceBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  ompx::DeviceBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
}

TEST(DeviceBuffer, UploadSizeMismatchThrows) {
  ompx::DeviceBuffer<int> buf(8, &simt::sim_a100());
  std::vector<int> wrong(9, 0);
  EXPECT_THROW(buf.upload(wrong), std::invalid_argument);
}

TEST(DeviceBuffer, EmptyBufferIsInert) {
  ompx::DeviceBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.download().size(), 0u);
  buf.reset();  // double-reset is fine
}

// --------------------------------------------------------- 2-D copies

TEST(Memcpy2D, PitchedUploadExtractsSubMatrix) {
  ASSERT_EQ(kl::klSetDevice(0), kl::klSuccess);
  // Host: 8x8 row-major ints; device: a 4x4 window at column 2, row 1.
  constexpr int kHostW = 8, kW = 4, kH = 4;
  std::vector<int> host(8 * kHostW);
  std::iota(host.begin(), host.end(), 0);
  int* dev = nullptr;
  ASSERT_EQ(kl::klMalloc(&dev, kW * kH * sizeof(int)), kl::klSuccess);
  ASSERT_EQ(kl::klMemcpy2D(dev, kW * sizeof(int),
                           host.data() + 1 * kHostW + 2, kHostW * sizeof(int),
                           kW * sizeof(int), kH, kl::klMemcpyHostToDevice),
            kl::klSuccess);
  for (int r = 0; r < kH; ++r)
    for (int c = 0; c < kW; ++c)
      ASSERT_EQ(dev[r * kW + c], (r + 1) * kHostW + c + 2);
  kl::klFree(dev);
}

TEST(Memcpy2D, PitchedDownloadScattersRows) {
  ASSERT_EQ(kl::klSetDevice(0), kl::klSuccess);
  constexpr int kW = 3, kH = 2, kHostPitchInts = 5;
  int* dev = nullptr;
  ASSERT_EQ(kl::klMalloc(&dev, kW * kH * sizeof(int)), kl::klSuccess);
  for (int i = 0; i < kW * kH; ++i) dev[i] = 10 + i;
  std::vector<int> host(kHostPitchInts * kH, -1);
  ASSERT_EQ(kl::klMemcpy2D(host.data(), kHostPitchInts * sizeof(int), dev,
                           kW * sizeof(int), kW * sizeof(int), kH,
                           kl::klMemcpyDeviceToHost),
            kl::klSuccess);
  EXPECT_EQ(host[0], 10);
  EXPECT_EQ(host[2], 12);
  EXPECT_EQ(host[3], -1);  // pitch gap untouched
  EXPECT_EQ(host[kHostPitchInts], 13);
  kl::klFree(dev);
}

TEST(Memcpy2D, ValidatesPitchAndBounds) {
  ASSERT_EQ(kl::klSetDevice(0), kl::klSuccess);
  int* dev = nullptr;
  ASSERT_EQ(kl::klMalloc(&dev, 64), kl::klSuccess);
  std::vector<char> host(256);
  // Pitch smaller than width.
  EXPECT_EQ(kl::klMemcpy2D(dev, 4, host.data(), 16, 8, 2,
                           kl::klMemcpyHostToDevice),
            kl::klErrorInvalidValue);
  // Footprint overruns the 64-byte allocation: 4 rows, 32-byte pitch.
  EXPECT_EQ(kl::klMemcpy2D(dev, 32, host.data(), 32, 16, 4,
                           kl::klMemcpyHostToDevice),
            kl::klErrorInvalidValue);
  // In-bounds pitched copy succeeds.
  EXPECT_EQ(kl::klMemcpy2D(dev, 32, host.data(), 32, 16, 2,
                           kl::klMemcpyHostToDevice),
            kl::klSuccess);
  kl::klFree(dev);
}

TEST(Memcpy2D, ZeroExtentIsNoop) {
  simt::DeviceMemory mem(1 << 16);
  char h[4] = {1, 2, 3, 4};
  EXPECT_EQ(mem.copy_2d(h, 4, h, 4, 0, 7, simt::CopyKind::kHostToHost), 0u);
  EXPECT_EQ(mem.copy_2d(h, 4, h, 4, 2, 0, simt::CopyKind::kHostToHost), 0u);
}

}  // namespace
