// Vendor BLAS libraries + the ompx::blas wrapper layer (§3.6).
#include "blas/ompx_blas.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace {

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

// Host reference implementations.
void ref_gemm(int m, int n, int k, double alpha, const std::vector<double>& a,
              const std::vector<double>& b, double beta,
              std::vector<double>& c) {
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      double s = 0;
      for (int l = 0; l < k; ++l) s += a[i + l * m] * b[l + j * k];
      c[i + j * m] = alpha * s + beta * c[i + j * m];
    }
}

TEST(VendorNv, HandleLifecycleAndVendorLock) {
  nvblas::Handle h = nullptr;
  ASSERT_EQ(nvblas::create(&h), nvblas::kSuccess);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(nvblas::destroy(h), nvblas::kSuccess);
  EXPECT_EQ(nvblas::destroy(nullptr), nvblas::kNotInitialized);
  EXPECT_EQ(nvblas::create(nullptr), nvblas::kInvalidValue);
}

TEST(VendorNv, DaxpyAndValidation) {
  nvblas::Handle h = nullptr;
  ASSERT_EQ(nvblas::create(&h), nvblas::kSuccess);
  auto x = random_vec(1000, 1), y = random_vec(1000, 2);
  auto y0 = y;
  const double alpha = 2.5;
  ASSERT_EQ(nvblas::daxpy(h, 1000, &alpha, x.data(), 1, y.data(), 1),
            nvblas::kSuccess);
  for (int i = 0; i < 1000; ++i)
    ASSERT_NEAR(y[i], y0[i] + 2.5 * x[i], 1e-12);
  EXPECT_EQ(nvblas::daxpy(h, -1, &alpha, x.data(), 1, y.data(), 1),
            nvblas::kInvalidValue);
  EXPECT_EQ(nvblas::daxpy(h, 10, nullptr, x.data(), 1, y.data(), 1),
            nvblas::kInvalidValue);
  nvblas::destroy(h);
}

TEST(VendorRoc, DaxpyByValueScalars) {
  rocblas::Handle h = nullptr;
  ASSERT_EQ(rocblas::create_handle(&h), rocblas::Status::kSuccess);
  auto x = random_vec(500, 3), y = random_vec(500, 4);
  auto y0 = y;
  ASSERT_EQ(rocblas::daxpy(h, 500, -1.5, x.data(), 1, y.data(), 1),
            rocblas::Status::kSuccess);
  for (int i = 0; i < 500; ++i) ASSERT_NEAR(y[i], y0[i] - 1.5 * x[i], 1e-12);
  EXPECT_EQ(rocblas::daxpy(h, -1, 1.0, x.data(), 1, y.data(), 1),
            rocblas::Status::kInvalidSize);
  rocblas::destroy_handle(h);
}

class WrapperOnDevice : public ::testing::TestWithParam<int> {
 protected:
  simt::Device& dev() {
    return *simt::device_registry()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(WrapperOnDevice, DispatchesToMatchingVendor) {
  ompx::blas::Handle h(dev());
  EXPECT_EQ(h.is_nvidia(), dev().config().vendor == simt::Vendor::kNvidia);
}

TEST_P(WrapperOnDevice, AxpyDotScalNrm2) {
  ompx::blas::Handle h(dev());
  auto x = random_vec(2000, 10), y = random_vec(2000, 11);
  auto y0 = y;
  h.axpy(2000, 0.75, x.data(), y.data());
  for (int i = 0; i < 2000; ++i) ASSERT_NEAR(y[i], y0[i] + 0.75 * x[i], 1e-12);

  double ref_dot = 0;
  for (int i = 0; i < 2000; ++i) ref_dot += x[i] * y[i];
  EXPECT_NEAR(h.dot(2000, x.data(), y.data()), ref_dot, 1e-9);

  auto z = x;
  h.scal(2000, 3.0, z.data());
  for (int i = 0; i < 2000; ++i) ASSERT_NEAR(z[i], 3.0 * x[i], 1e-12);

  double ref_n2 = 0;
  for (double v : x) ref_n2 += v * v;
  EXPECT_NEAR(h.nrm2(2000, x.data()), std::sqrt(ref_n2), 1e-9);
}

TEST_P(WrapperOnDevice, GemmMatchesReference) {
  const int m = 33, n = 17, k = 25;
  auto a = random_vec(static_cast<std::size_t>(m) * k, 20);
  auto b = random_vec(static_cast<std::size_t>(k) * n, 21);
  auto c = random_vec(static_cast<std::size_t>(m) * n, 22);
  auto c_ref = c;
  ref_gemm(m, n, k, 1.25, a, b, 0.5, c_ref);
  ompx::blas::Handle h(dev());
  h.gemm(ompx::blas::Op::kN, ompx::blas::Op::kN, m, n, k, 1.25, a.data(), m,
         b.data(), k, 0.5, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], c_ref[i], 1e-9);
}

TEST_P(WrapperOnDevice, GemmTransposed) {
  const int m = 8, n = 6, k = 10;
  // A stored as k x m (so op(A)=A^T is m x k).
  auto a = random_vec(static_cast<std::size_t>(k) * m, 30);
  auto b = random_vec(static_cast<std::size_t>(k) * n, 31);
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  ompx::blas::Handle h(dev());
  h.gemm(ompx::blas::Op::kT, ompx::blas::Op::kN, m, n, k, 1.0, a.data(), k,
         b.data(), k, 0.0, c.data(), m);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      double s = 0;
      for (int l = 0; l < k; ++l) s += a[l + i * k] * b[l + j * k];
      ASSERT_NEAR(c[i + j * m], s, 1e-9);
    }
}

TEST_P(WrapperOnDevice, GemvMatchesReference) {
  const int m = 40, n = 23;
  auto a = random_vec(static_cast<std::size_t>(m) * n, 40);
  auto x = random_vec(n, 41);
  auto y = random_vec(m, 42);
  auto y_ref = y;
  for (int i = 0; i < m; ++i) {
    double s = 0;
    for (int l = 0; l < n; ++l) s += a[i + l * m] * x[l];
    y_ref[i] = 2.0 * s + 1.0 * y_ref[i];
  }
  ompx::blas::Handle h(dev());
  h.gemv(ompx::blas::Op::kN, m, n, 2.0, a.data(), m, x.data(), 1.0, y.data());
  for (int i = 0; i < m; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-9);
}

TEST_P(WrapperOnDevice, SinglePrecisionAxpyDot) {
  ompx::blas::Handle h(dev());
  std::vector<float> x(1500), y(1500), y0;
  for (int i = 0; i < 1500; ++i) {
    x[i] = 0.25f * static_cast<float>(i % 17) - 1.0f;
    y[i] = 0.5f - 0.125f * static_cast<float>(i % 9);
  }
  y0 = y;
  h.axpy(1500, 1.5f, x.data(), y.data());
  for (int i = 0; i < 1500; ++i)
    ASSERT_FLOAT_EQ(y[i], y0[i] + 1.5f * x[i]);
  double ref = 0;
  for (int i = 0; i < 1500; ++i)
    ref += static_cast<double>(x[i]) * y[i];
  EXPECT_NEAR(h.dot(1500, x.data(), y.data()), static_cast<float>(ref), 1e-3);
}

TEST_P(WrapperOnDevice, SinglePrecisionGemm) {
  const int m = 24, n = 18, k = 12;
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.5f);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = 0.1f * static_cast<float>(i % 13) - 0.6f;
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = 0.2f * static_cast<float>(i % 7) - 0.7f;
  auto c_ref = c;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      float s = 0;
      for (int l = 0; l < k; ++l) s += a[i + l * m] * b[l + j * k];
      c_ref[i + j * m] = 2.0f * s + 0.25f * c_ref[i + j * m];
    }
  ompx::blas::Handle h(dev());
  h.gemm(ompx::blas::Op::kN, ompx::blas::Op::kN, m, n, k, 2.0f, a.data(), m,
         b.data(), k, 0.25f, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], 1e-4);
}

TEST(VendorFloat, SaxpyApiShapesDiffer) {
  // cuBLAS-shaped: scalar by pointer; rocBLAS-shaped: by value — the
  // wrapper exists precisely to hide this (§3.6).
  std::vector<float> x(10, 1.0f), y(10, 0.0f);
  const float alpha = 4.0f;
  nvblas::Handle nh = nullptr;
  ASSERT_EQ(nvblas::create(&nh), nvblas::kSuccess);
  ASSERT_EQ(nvblas::saxpy(nh, 10, &alpha, x.data(), 1, y.data(), 1),
            nvblas::kSuccess);
  nvblas::destroy(nh);
  rocblas::Handle rh = nullptr;
  ASSERT_EQ(rocblas::create_handle(&rh), rocblas::Status::kSuccess);
  ASSERT_EQ(rocblas::saxpy(rh, 10, alpha, x.data(), 1, y.data(), 1),
            rocblas::Status::kSuccess);
  rocblas::destroy_handle(rh);
  for (float v : y) EXPECT_FLOAT_EQ(v, 8.0f);  // both paths applied once
}

INSTANTIATE_TEST_SUITE_P(BothVendors, WrapperOnDevice, ::testing::Values(0, 1));

TEST(Wrapper, SameCodeRunsOnBothVendors) {
  // The §3.6 pitch: one code path, two vendor backends, same numerics.
  auto x = random_vec(1024, 50);
  auto y1 = random_vec(1024, 51);
  auto y2 = y1;
  {
    ompx::blas::Handle h(simt::sim_a100());
    h.axpy(1024, 2.0, x.data(), y1.data());
  }
  {
    ompx::blas::Handle h(simt::sim_mi250());
    h.axpy(1024, 2.0, x.data(), y2.data());
  }
  EXPECT_EQ(y1, y2);
}

}  // namespace
