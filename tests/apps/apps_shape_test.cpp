// Figure-shape acceptance tests: the orderings and approximate factors
// DESIGN.md §5 commits to for Figure 8, asserted on modeled kernel
// times at moderate problem sizes. These are the regression guards for
// the reproduction's headline claims.
#include <gtest/gtest.h>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"

namespace {

using apps::Version;

double t(const apps::RunResult& r) { return r.kernel_ms; }

TEST(Shape, XSBenchOmpxBeatsNativeOnBothSystems) {
  apps::xsbench::Options o;
  o.lookups = 20000;
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const auto ompx = apps::xsbench::run(Version::kOmpx, *dev, o);
    const auto native = apps::xsbench::run(Version::kNative, *dev, o);
    const auto vendor = apps::xsbench::run(Version::kNativeVendor, *dev, o);
    EXPECT_LT(t(ompx), t(native)) << dev->config().name;
    EXPECT_LT(t(ompx), t(vendor)) << dev->config().name;
    // "Consistently outperforms", not dramatically: within ~25%.
    EXPECT_GT(t(ompx), 0.7 * t(native)) << dev->config().name;
  }
}

TEST(Shape, XSBenchOmpExcludedForInvalidChecksum) {
  apps::xsbench::Options o;
  o.lookups = 5000;
  const auto omp = apps::xsbench::run(Version::kOmp, simt::sim_a100(), o);
  EXPECT_FALSE(omp.valid);
  EXPECT_FALSE(omp.note.empty());
}

TEST(Shape, RSBenchOmpxBeatsClangNativeBothSystems) {
  apps::rsbench::Options o;
  o.lookups = 8000;
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const auto ompx = apps::rsbench::run(Version::kOmpx, *dev, o);
    const auto native = apps::rsbench::run(Version::kNative, *dev, o);
    EXPECT_LT(t(ompx), t(native)) << dev->config().name;
  }
}

TEST(Shape, RSBenchOmpBeatsCudaOnA100Only) {
  // §4.2.2: heap-to-shared moves the omp version ahead of cuda on the
  // NVIDIA system; on the AMD system omp stays behind hip.
  apps::rsbench::Options o;
  o.lookups = 8000;
  const auto omp_nv = apps::rsbench::run(Version::kOmp, simt::sim_a100(), o);
  const auto cuda = apps::rsbench::run(Version::kNative, simt::sim_a100(), o);
  EXPECT_LT(t(omp_nv), t(cuda));
  const auto omp_amd = apps::rsbench::run(Version::kOmp, simt::sim_mi250(), o);
  const auto hip = apps::rsbench::run(Version::kNative, simt::sim_mi250(), o);
  EXPECT_GT(t(omp_amd), t(hip));
}

TEST(Shape, Su3CudaLeadsOmpxByRoughly9PercentOnA100) {
  apps::su3::Options o;
  o.lattice_sites = 32768;
  o.iterations = 4;
  const auto ompx = apps::su3::run(Version::kOmpx, simt::sim_a100(), o);
  const auto cuda = apps::su3::run(Version::kNative, simt::sim_a100(), o);
  const double ratio = t(ompx) / t(cuda);
  EXPECT_GT(ratio, 1.03);  // cuda ahead...
  EXPECT_LT(ratio, 1.20);  // ...by roughly 9%, not 2x
}

TEST(Shape, Su3OmpxLeadsHipByRoughly28PercentOnMi250) {
  apps::su3::Options o;
  o.lattice_sites = 32768;
  o.iterations = 4;
  const auto ompx = apps::su3::run(Version::kOmpx, simt::sim_mi250(), o);
  const auto hip = apps::su3::run(Version::kNative, simt::sim_mi250(), o);
  const double gain = t(hip) / t(ompx);
  EXPECT_GT(gain, 1.15);
  EXPECT_LT(gain, 1.45);
}

TEST(Shape, Su3OmpxBeatsOmpOnBothSystems) {
  apps::su3::Options o;
  o.lattice_sites = 16384;
  o.iterations = 2;
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const auto ompx = apps::su3::run(Version::kOmpx, *dev, o);
    const auto omp = apps::su3::run(Version::kOmp, *dev, o);
    EXPECT_LT(t(ompx), t(omp)) << dev->config().name;
  }
}

TEST(Shape, AidwClangCudaLeadsOmpxSlightlyOnA100) {
  // §4.2.4: shared-variable demotion puts clang-cuda ~5% ahead; nvcc
  // matches ompx.
  apps::aidw::Options o;
  const auto ompx = apps::aidw::run(Version::kOmpx, simt::sim_a100(), o);
  const auto cuda = apps::aidw::run(Version::kNative, simt::sim_a100(), o);
  const auto nvcc = apps::aidw::run(Version::kNativeVendor, simt::sim_a100(), o);
  const double ratio = t(ompx) / t(cuda);
  EXPECT_GT(ratio, 1.01);
  EXPECT_LT(ratio, 1.15);
  EXPECT_NEAR(t(ompx) / t(nvcc), 1.0, 0.05);
}

TEST(Shape, AidwParityOnMi250) {
  apps::aidw::Options o;
  const auto ompx = apps::aidw::run(Version::kOmpx, simt::sim_mi250(), o);
  const auto hip = apps::aidw::run(Version::kNative, simt::sim_mi250(), o);
  const auto hipcc =
      apps::aidw::run(Version::kNativeVendor, simt::sim_mi250(), o);
  EXPECT_NEAR(t(ompx) / t(hip), 1.0, 0.08);
  EXPECT_NEAR(t(ompx) / t(hipcc), 1.0, 0.08);
}

TEST(Shape, AdamOmpEightTimesSlower) {
  apps::adam::Options o;
  o.steps = 20;
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const auto ompx = apps::adam::run(Version::kOmpx, *dev, o);
    const auto omp = apps::adam::run(Version::kOmp, *dev, o);
    const double slowdown = t(omp) / t(ompx);
    EXPECT_GT(slowdown, 4.0) << dev->config().name;
    EXPECT_LT(slowdown, 14.0) << dev->config().name;
  }
}

TEST(Shape, AdamOmpxMatchesCudaOnA100) {
  apps::adam::Options o;
  o.steps = 20;
  const auto ompx = apps::adam::run(Version::kOmpx, simt::sim_a100(), o);
  const auto cuda = apps::adam::run(Version::kNative, simt::sim_a100(), o);
  EXPECT_NEAR(t(ompx) / t(cuda), 1.0, 0.06);
}

TEST(Shape, AdamOmpxFasterThanHipOnMi250) {
  apps::adam::Options o;
  o.steps = 20;
  const auto ompx = apps::adam::run(Version::kOmpx, simt::sim_mi250(), o);
  const auto hipcc =
      apps::adam::run(Version::kNativeVendor, simt::sim_mi250(), o);
  EXPECT_LT(t(ompx), t(hipcc));
}

TEST(Shape, StencilOmpOrdersOfMagnitudeSlower) {
  apps::stencil1d::Options o;
  o.n = 1 << 18;
  o.iterations = 2;
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const auto ompx = apps::stencil1d::run(Version::kOmpx, *dev, o);
    const auto omp = apps::stencil1d::run(Version::kOmp, *dev, o);
    const double slowdown = t(omp) / t(ompx);
    EXPECT_GT(slowdown, 25.0) << dev->config().name;
  }
}

TEST(Shape, StencilOmpxAtLeastMatchesNative) {
  apps::stencil1d::Options o;
  o.n = 1 << 18;
  o.iterations = 2;
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    const auto ompx = apps::stencil1d::run(Version::kOmpx, *dev, o);
    const auto native = apps::stencil1d::run(Version::kNative, *dev, o);
    EXPECT_LE(t(ompx), t(native) * 1.02) << dev->config().name;
  }
}

}  // namespace
