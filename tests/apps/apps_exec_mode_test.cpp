// Exec-mode differential: every fig8 benchmark must be bit-identical
// under OMPX_EXEC=fiber and OMPX_EXEC=convergent — same checksum, same
// validity, and the same engine op counts (barriers, collectives,
// atomics, handshakes, globalized bytes). Modeled kernel time is
// compared *exactly*: the lane loop only changes host-side scheduling
// diagnostics (sched_lane_loops / sched_deflations), which never feed
// the performance model, so any drift here is a real modeling bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/harness.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"
#include "core/ompx.h"
#include "simt/profiler.h"
#include "simt/simt.h"

namespace {

using apps::Version;

const Version kAllVersions[] = {Version::kOmpx, Version::kOmp,
                                Version::kNative, Version::kNativeVendor};

/// One app run under one exec policy, with the engine ops it performed.
struct ExecCell {
  apps::RunResult result;
  simt::ProfilerCounters ops;
};

/// Saves/restores the process-wide exec policy and clears learned hints
/// around every test, so a deflation in one cell cannot steer the next.
class AppsExecMode : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = simt::exec_policy();
    simt::clear_exec_hints();
  }
  void TearDown() override {
    simt::set_exec_policy(saved_);
    simt::clear_exec_hints();
    simt::Profiler::instance().stop();
  }

  static ExecCell run_cell(simt::ExecPolicy policy,
                           const std::function<apps::RunResult()>& run) {
    simt::set_exec_policy(policy);
    simt::clear_exec_hints();
    auto& prof = simt::Profiler::instance();
    prof.start();
    prof.reset();
    ExecCell cell;
    cell.result = run();
    cell.ops = prof.counters();
    prof.stop();
    return cell;
  }

  /// The differential itself: fiber is the reference; convergent must
  /// reproduce its checksum, validity, op counts, and modeled time.
  static void expect_exec_equivalent(const std::function<apps::RunResult()>& run,
                                     const char* what,
                                     std::uint64_t* conv_lane_loops = nullptr) {
    const ExecCell fib = run_cell(simt::ExecPolicy::kFiber, run);
    const ExecCell conv = run_cell(simt::ExecPolicy::kConvergent, run);
    EXPECT_EQ(fib.result.checksum, conv.result.checksum) << what;
    EXPECT_EQ(fib.result.valid, conv.result.valid) << what;
    EXPECT_EQ(fib.ops.launches, conv.ops.launches) << what;
    EXPECT_EQ(fib.ops.blocks, conv.ops.blocks) << what;
    EXPECT_EQ(fib.ops.threads, conv.ops.threads) << what;
    EXPECT_EQ(fib.ops.block_barriers, conv.ops.block_barriers) << what;
    EXPECT_EQ(fib.ops.warp_collectives, conv.ops.warp_collectives) << what;
    EXPECT_EQ(fib.ops.atomics, conv.ops.atomics) << what;
    EXPECT_EQ(fib.ops.parallel_handshakes, conv.ops.parallel_handshakes)
        << what;
    EXPECT_EQ(fib.ops.globalized_bytes, conv.ops.globalized_bytes) << what;
    // Bit-identical, not approximately: see the header comment.
    EXPECT_EQ(fib.ops.modeled_kernel_ms, conv.ops.modeled_kernel_ms) << what;
    EXPECT_EQ(fib.ops.lane_loops, 0u) << what;  // fiber mode never inlines
    if (conv_lane_loops != nullptr) *conv_lane_loops = conv.ops.lane_loops;
  }

 private:
  simt::ExecPolicy saved_ = simt::ExecPolicy::kAuto;
};

TEST_F(AppsExecMode, XSBenchAllVersions) {
  apps::xsbench::Options o;
  o.lookups = 5000;
  o.n_gridpoints = 256;
  for (Version v : kAllVersions) {
    expect_exec_equivalent(
        [&] { return apps::xsbench::run(v, simt::sim_a100(), o); },
        apps::version_name(v));
  }
}

TEST_F(AppsExecMode, RSBenchAllVersions) {
  apps::rsbench::Options o;
  o.lookups = 2000;
  o.n_poles = 128;
  o.n_windows = 16;
  for (Version v : kAllVersions) {
    expect_exec_equivalent(
        [&] { return apps::rsbench::run(v, simt::sim_a100(), o); },
        apps::version_name(v));
  }
}

TEST_F(AppsExecMode, Su3AllVersions) {
  apps::su3::Options o;
  o.lattice_sites = 2048;
  o.iterations = 2;
  for (Version v : kAllVersions) {
    expect_exec_equivalent(
        [&] { return apps::su3::run(v, simt::sim_a100(), o); },
        apps::version_name(v));
  }
}

TEST_F(AppsExecMode, AidwAllVersions) {
  apps::aidw::Options o;
  o.n_data = 512;
  o.n_query = 512;
  o.tile = 128;
  for (Version v : kAllVersions) {
    expect_exec_equivalent(
        [&] { return apps::aidw::run(v, simt::sim_a100(), o); },
        apps::version_name(v));
  }
}

TEST_F(AppsExecMode, AdamAllVersions) {
  apps::adam::Options o;
  o.n = 2000;
  o.steps = 10;
  for (Version v : kAllVersions) {
    expect_exec_equivalent(
        [&] { return apps::adam::run(v, simt::sim_a100(), o); },
        apps::version_name(v));
  }
}

TEST_F(AppsExecMode, StencilAllVersionsBothDevices) {
  apps::stencil1d::Options o;
  o.n = 1 << 14;
  o.iterations = 2;
  simt::Device* devices[] = {&simt::sim_a100(), &simt::sim_mi250()};
  for (simt::Device* dev : devices) {
    for (Version v : kAllVersions) {
      expect_exec_equivalent(
          [&] { return apps::stencil1d::run(v, *dev, o); },
          apps::version_name(v));
    }
  }
}

TEST_F(AppsExecMode, AnalyzerVerdictRoutesXSBenchOntoTheLaneLoop) {
  // End-to-end over a real app kernel: the static analyzer reads
  // xsbench's versions.cpp, proves xsbench_event convergent with
  // inline-safe atomics, registers the hint — and a cooperative run
  // under the default kAuto policy takes the lane-loop fast path
  // (fiber-free, atomics inline, zero deflations), with the checksum
  // still matching the fiber reference.
  apps::xsbench::Options o;
  o.lookups = 5000;
  o.n_gridpoints = 256;
  o.mode = simt::ExecMode::kCooperative;
  const auto run = [&] {
    return apps::xsbench::run(Version::kOmpx, simt::sim_a100(), o);
  };
  const ExecCell fib = run_cell(simt::ExecPolicy::kFiber, run);

  simt::set_exec_policy(simt::ExecPolicy::kAuto);
  simt::clear_exec_hints();
  std::ifstream in(std::string(OMPX_SOURCE_DIR) +
                   "/src/apps/xsbench/versions.cpp");
  ASSERT_TRUE(in.good());
  std::ostringstream src;
  src << in.rdbuf();
  ASSERT_GE(ompx::register_exec_hints(src.str()), 1);
  const simt::ExecHint h = simt::exec_hint("xsbench_event");
  ASSERT_TRUE(h.convergent);
  ASSERT_TRUE(h.atomics_ok);

  auto& prof = simt::Profiler::instance();
  prof.start();
  prof.reset();
  const apps::RunResult conv = run();
  const auto ops = prof.counters();
  prof.stop();
  EXPECT_EQ(conv.checksum, fib.result.checksum);
  EXPECT_TRUE(conv.valid);
  EXPECT_GT(ops.lane_loops, 0u)
      << "statically-proven-convergent kernel never took the lane loop";
  EXPECT_EQ(ops.atomics, fib.ops.atomics);
}

TEST_F(AppsExecMode, ConvergentPolicyActuallyInlinesSomewhere) {
  // The six fig8 apps either launch their sync-free kernels in direct
  // mode (plain calls, fiber-free by construction) or synchronize and
  // deflate — so the app table alone would let the lane loop pass
  // vacuously. A sync-free *cooperative* launch through the same
  // layered API the apps use proves the policy engages: every thread
  // of the launch runs inline.
  simt::set_exec_policy(simt::ExecPolicy::kConvergent);
  simt::clear_exec_hints();
  auto& prof = simt::Profiler::instance();
  prof.start();
  prof.reset();
  ompx::set_default_device(simt::sim_a100());
  auto* out = ompx::malloc_n<int>(1024);
  ompx::LaunchSpec spec;
  spec.num_teams = {4};
  spec.thread_limit = {256};
  spec.mode = simt::ExecMode::kCooperative;
  spec.name = "exec_mode_probe";
  ompx::launch(spec, [=] {
    out[ompx::global_thread_id()] = 1;
  }).wait();
  const auto ops = prof.counters();
  prof.stop();
  ompx::free_on(simt::sim_a100(), out);
  EXPECT_EQ(ops.lane_loops, 1024u)
      << "convergent policy never engaged the lane loop";
}

}  // namespace
