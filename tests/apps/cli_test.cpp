// Paper-CLI parsing: the exact Figure 6 command lines must parse, and
// their scaled mappings must match DESIGN.md's per-app documentation.
#include "apps/cli.h"

#include <gtest/gtest.h>

namespace {

using namespace apps;

TEST(Cli, XsbenchPaperLineParses) {
  const auto o = cli::parse_xsbench({"-m", "event"});
  EXPECT_EQ(o.lookups, 50000);
  EXPECT_GE(o.n_gridpoints, 64);
  // Unscaled keeps the XSBench small-preset magnitudes.
  const auto big = cli::parse_xsbench({"-m", "event"}, /*scaled=*/false);
  EXPECT_EQ(big.lookups, 17000000);
  EXPECT_EQ(big.n_gridpoints, 11303);
}

TEST(Cli, XsbenchExplicitFlagsOverride) {
  const auto o = cli::parse_xsbench({"-m", "event", "-l", "34000", "-g", "2200"});
  EXPECT_EQ(o.lookups, 34000 / 340 < 1000 ? 1000 : 34000 / 340);
  const auto raw =
      cli::parse_xsbench({"-m", "event", "-l", "34000", "-g", "2200"}, false);
  EXPECT_EQ(raw.lookups, 34000);
  EXPECT_EQ(raw.n_gridpoints, 2200);
}

TEST(Cli, XsbenchRejectsHistoryMethod) {
  EXPECT_THROW(cli::parse_xsbench({"-m", "history"}), std::invalid_argument);
}

TEST(Cli, RsbenchPaperLineParses) {
  const auto o = cli::parse_rsbench({"-m", "event"});
  EXPECT_EQ(o.lookups, 20000);
  EXPECT_EQ(o.n_poles % o.n_windows, 0);  // whole windows invariant
}

TEST(Cli, Su3PaperLineParses) {
  // The paper's full line: -i 1000 -l 32 -t 128 -v 3 -w 1.
  const auto o = cli::parse_su3(
      {"-i", "1000", "-l", "32", "-t", "128", "-v", "3", "-w", "1"});
  EXPECT_EQ(o.iterations, 10);
  EXPECT_EQ(o.lattice_sites, 32768);  // 32^4 / 32
  EXPECT_EQ(o.threads_per_block, 128);
  const auto raw = cli::parse_su3({"-i", "1000", "-l", "8", "-t", "64"}, false);
  EXPECT_EQ(raw.lattice_sites, 4096);
  EXPECT_EQ(raw.iterations, 1000);
}

TEST(Cli, Su3ThreadClamping) {
  EXPECT_EQ(cli::parse_su3({"-t", "8"}).threads_per_block, 32);
  EXPECT_EQ(cli::parse_su3({"-t", "4096"}).threads_per_block, 1024);
}

TEST(Cli, AidwPaperLineParses) {
  const auto o = cli::parse_aidw({"100", "0", "100"});
  EXPECT_GE(o.n_data, 512);
  EXPECT_GE(o.n_query, 512);
  const auto raw = cli::parse_aidw({"100", "0", "100"}, false);
  EXPECT_EQ(raw.n_data, 100000);
  EXPECT_EQ(raw.n_query, 100000);
  EXPECT_THROW(cli::parse_aidw({"100"}), std::invalid_argument);
}

TEST(Cli, AdamPaperLineParses) {
  const auto o = cli::parse_adam({"10000", "200", "100"});
  EXPECT_EQ(o.n, 10000);
  EXPECT_EQ(o.steps, 50);
  const auto raw = cli::parse_adam({"10000", "200", "100"}, false);
  EXPECT_EQ(raw.steps, 200);
}

TEST(Cli, StencilPaperLineParses) {
  const auto o = cli::parse_stencil1d({"134217728", "1000"});
  EXPECT_EQ(o.n, 134217728 / 128);  // 2^27 -> 2^20
  EXPECT_EQ(o.iterations, 8);
  const auto raw = cli::parse_stencil1d({"134217728", "1000"}, false);
  EXPECT_EQ(raw.n, 134217728);
  EXPECT_EQ(raw.iterations, 1000);
}

TEST(Cli, BadIntegersDiagnosed) {
  EXPECT_THROW(cli::parse_adam({"ten", "200", "100"}), std::invalid_argument);
  EXPECT_THROW(cli::parse_stencil1d({"1x", "10"}), std::invalid_argument);
  EXPECT_THROW(cli::parse_su3({"-i", "12.5"}), std::invalid_argument);
}

TEST(Cli, ParsedOptionsActuallyRun) {
  // End to end: the paper CLI, scaled, through a real (tiny) run.
  auto o = cli::parse_adam({"2000", "40", "1"});
  const auto r = adam::run(Version::kOmpx, simt::sim_a100(), o);
  EXPECT_TRUE(r.valid);
}

}  // namespace
