// Scientific control for the XSBench omp exclusion (§4.2.1 / D4).
//
// The shipped omp port reproduces the paper's invalid checksum through
// its thread-enumeration seeding defect. This control shows the OpenMP
// runtime layer itself is NOT the cause: the same lookup kernel run
// through the same omp directive layer, but with the canonical
// loop-index seeding, verifies — isolating the defect to the port's
// seeding, exactly as EXPERIMENTS.md documents.
#include <gtest/gtest.h>

#include "apps/xsbench/xsbench.h"
#include "omp/omp.h"

namespace {

using apps::xsbench::lookup_one;
using apps::xsbench::make_data;
using apps::xsbench::Options;
using apps::xsbench::reference_hash;

std::uint64_t run_omp_fixed_seeding(const apps::xsbench::SimulationData& d,
                                    simt::Device& dev) {
  std::uint64_t h = 0;
  omp::TargetClauses c;
  c.device = &dev;
  c.thread_limit = 256;
  c.name = "xsbench_omp_fixed";
  c.maps = {
      omp::map_to(d.energy.data(), d.energy.size() * sizeof(double)),
      omp::map_to(d.xs.data(), d.xs.size() * sizeof(double)),
      omp::map_to(d.num_nucs.data(), d.num_nucs.size() * sizeof(int)),
      omp::map_to(d.mats.data(), d.mats.size() * sizeof(int)),
      omp::map_to(d.concs.data(), d.concs.size() * sizeof(double)),
      omp::map_tofrom(&h, sizeof(h)),
  };
  const Options opt = d.opt;
  omp::target_teams_distribute_parallel_for(
      c, opt.lookups, [&](omp::DeviceEnv& env) {
        const double* energy = env.translate(d.energy.data());
        const double* xs = env.translate(d.xs.data());
        const int* num_nucs = env.translate(d.num_nucs.data());
        const int* mats = env.translate(d.mats.data());
        const double* concs = env.translate(d.concs.data());
        std::uint64_t* hash = env.translate(&h);
        return [=](std::int64_t i) {
          // The fix: seed by the loop index, as the canonical versions do.
          const int arg = lookup_one(static_cast<std::uint64_t>(i), energy,
                                     xs, num_nucs, mats, concs,
                                     opt.n_gridpoints, opt.max_nucs_per_mat,
                                     opt.n_mats);
          const std::uint64_t contrib =
              apps::mix64(static_cast<std::uint64_t>(i) ^
                          (static_cast<std::uint64_t>(arg) + 1));
          std::uint64_t seen = *hash;
          while (true) {
            const std::uint64_t prev =
                simt::atomic_cas(hash, seen, seen ^ contrib);
            if (prev == seen) break;
            seen = prev;
          }
        };
      });
  return h;
}

TEST(XsbenchControl, FixedSeedingVerifiesThroughTheOmpLayer) {
  Options o;
  o.lookups = 4000;
  o.n_gridpoints = 256;
  const auto d = make_data(o);
  const std::uint64_t ref = reference_hash(d);
  for (simt::Device* dev : {&simt::sim_a100(), &simt::sim_mi250()}) {
    EXPECT_EQ(run_omp_fixed_seeding(d, *dev), ref) << dev->config().name;
  }
}

TEST(XsbenchControl, ShippedPortStillFailsAsThePaperReports) {
  Options o;
  o.lookups = 4000;
  o.n_gridpoints = 256;
  const auto r =
      apps::xsbench::run(apps::Version::kOmp, simt::sim_a100(), o);
  EXPECT_FALSE(r.valid);
}

}  // namespace
