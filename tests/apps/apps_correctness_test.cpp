// Correctness of every (benchmark, version, device) cell at reduced
// problem sizes: every version must reproduce the benchmark's reference
// checksum — except the omp XSBench port, which reproduces the paper's
// "invalid checksum" defect and must be flagged invalid.
#include <gtest/gtest.h>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/harness.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"

namespace {

using apps::Version;

const Version kAllVersions[] = {Version::kOmpx, Version::kOmp,
                                Version::kNative, Version::kNativeVendor};

simt::Device* devices[] = {&simt::sim_a100(), &simt::sim_mi250()};

class AppsOnDevice : public ::testing::TestWithParam<int> {
 protected:
  simt::Device& dev() { return *devices[GetParam()]; }
};

TEST_P(AppsOnDevice, XSBenchVersionsVerifyExceptOmp) {
  apps::xsbench::Options o;
  o.lookups = 5000;
  o.n_gridpoints = 256;
  for (Version v : kAllVersions) {
    const auto r = apps::xsbench::run(v, dev(), o);
    if (v == Version::kOmp) {
      EXPECT_FALSE(r.valid) << "omp XSBench must reproduce the paper's "
                               "invalid-checksum defect";
    } else {
      EXPECT_TRUE(r.valid) << apps::version_name(v);
    }
    EXPECT_GT(r.kernel_ms, 0.0) << apps::version_name(v);
  }
}

TEST_P(AppsOnDevice, RSBenchAllVersionsVerify) {
  apps::rsbench::Options o;
  o.lookups = 2000;
  o.n_poles = 128;
  o.n_windows = 16;
  for (Version v : kAllVersions) {
    const auto r = apps::rsbench::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v);
    EXPECT_GT(r.kernel_ms, 0.0);
  }
}

TEST_P(AppsOnDevice, Su3AllVersionsVerify) {
  apps::su3::Options o;
  o.lattice_sites = 2048;
  o.iterations = 2;
  for (Version v : kAllVersions) {
    const auto r = apps::su3::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v);
  }
}

TEST_P(AppsOnDevice, AidwAllVersionsVerify) {
  apps::aidw::Options o;
  o.n_data = 512;
  o.n_query = 512;
  o.tile = 128;
  for (Version v : kAllVersions) {
    const auto r = apps::aidw::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v);
  }
}

TEST_P(AppsOnDevice, AdamAllVersionsVerify) {
  apps::adam::Options o;
  o.n = 2000;
  o.steps = 10;
  for (Version v : kAllVersions) {
    const auto r = apps::adam::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v);
  }
}

TEST_P(AppsOnDevice, StencilAllVersionsVerify) {
  apps::stencil1d::Options o;
  o.n = 1 << 14;
  o.iterations = 2;
  for (Version v : kAllVersions) {
    const auto r = apps::stencil1d::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v);
  }
}

INSTANTIATE_TEST_SUITE_P(BothDevices, AppsOnDevice, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? "sim_a100" : "sim_mi250";
                         });

TEST(AppsRegistry, HasSixBenchmarksInPaperOrder) {
  const auto& reg = apps::registry();
  ASSERT_EQ(reg.size(), 6u);
  EXPECT_EQ(reg[0].name, "XSBench");
  EXPECT_EQ(reg[1].name, "RSBench");
  EXPECT_EQ(reg[2].name, "SU3");
  EXPECT_EQ(reg[3].name, "AIDW");
  EXPECT_EQ(reg[4].name, "Adam");
  EXPECT_EQ(reg[5].name, "Stencil 1D");
  for (const auto& a : reg) {
    EXPECT_FALSE(a.description.empty());
    EXPECT_FALSE(a.paper_cli.empty());
    EXPECT_TRUE(a.run != nullptr);
  }
}

TEST(AppsHarness, BarLabelsMatchThePaper) {
  EXPECT_EQ(apps::bar_label(Version::kNative, simt::sim_a100()), "cuda");
  EXPECT_EQ(apps::bar_label(Version::kNative, simt::sim_mi250()), "hip");
  EXPECT_EQ(apps::bar_label(Version::kNativeVendor, simt::sim_a100()),
            "cuda-nvcc");
  EXPECT_EQ(apps::bar_label(Version::kNativeVendor, simt::sim_mi250()),
            "hip-hipcc");
  EXPECT_EQ(apps::bar_label(Version::kOmpx, simt::sim_a100()), "ompx");
}

TEST(AppsHarness, RunCellFillsBookkeeping) {
  apps::AppDesc desc = apps::registry()[4];  // Adam, cheap enough
  const auto r = apps::run_cell(desc, Version::kOmpx, simt::sim_a100());
  EXPECT_EQ(r.app, "Adam");
  EXPECT_EQ(r.version, "ompx");
  EXPECT_EQ(r.device, "sim-a100");
  EXPECT_GT(r.wall_ms, 0.0);
  EXPECT_TRUE(r.valid);
}

}  // namespace
