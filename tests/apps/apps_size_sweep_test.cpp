// Size-invariance properties: every port verifies at several problem
// sizes (catching boundary bugs that one fixed size would hide), and
// modeled kernel time grows monotonically with problem size.
#include <gtest/gtest.h>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"

namespace {

using apps::Version;

simt::Device& dev() { return simt::sim_a100(); }

class XsbenchSizes : public ::testing::TestWithParam<std::int64_t> {};
TEST_P(XsbenchSizes, OmpxVerifiesAtEverySize) {
  apps::xsbench::Options o;
  o.lookups = GetParam();
  o.n_gridpoints = 128;
  const auto r = apps::xsbench::run(Version::kOmpx, dev(), o);
  EXPECT_TRUE(r.valid) << "lookups=" << GetParam();
}
INSTANTIATE_TEST_SUITE_P(Sizes, XsbenchSizes,
                         ::testing::Values(1, 255, 256, 257, 4096));

class StencilSizes : public ::testing::TestWithParam<std::int64_t> {};
TEST_P(StencilSizes, AllVersionsHandleBoundaryBlocks) {
  // Sizes around block granularity stress the halo/partial-block paths.
  apps::stencil1d::Options o;
  o.n = GetParam();
  o.iterations = 1;
  for (Version v : {Version::kOmpx, Version::kNative, Version::kOmp}) {
    const auto r = apps::stencil1d::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v) << " n=" << GetParam();
  }
}
INSTANTIATE_TEST_SUITE_P(Sizes, StencilSizes,
                         ::testing::Values(256, 512, 1024, 4096));

class AdamSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
TEST_P(AdamSizes, OmpAndOmpxAgreeAcrossShapes) {
  const auto [n, steps] = GetParam();
  apps::adam::Options o;
  o.n = n;
  o.steps = steps;
  const auto a = apps::adam::run(Version::kOmpx, dev(), o);
  const auto b = apps::adam::run(Version::kOmp, dev(), o);
  EXPECT_TRUE(a.valid);
  EXPECT_TRUE(b.valid);
  EXPECT_EQ(a.checksum, b.checksum);
}
INSTANTIATE_TEST_SUITE_P(Shapes, AdamSizes,
                         ::testing::Combine(::testing::Values(100, 1000, 2049),
                                            ::testing::Values(1, 7)));

TEST(SizeScaling, ModeledTimeMonotoneInProblemSize) {
  // Doubling the lattice must not shrink modeled kernel time.
  double prev = 0.0;
  for (int sites : {4096, 8192, 16384}) {
    apps::su3::Options o;
    o.lattice_sites = sites;
    o.iterations = 2;
    const auto r = apps::su3::run(Version::kOmpx, dev(), o);
    ASSERT_TRUE(r.valid);
    EXPECT_GE(r.kernel_ms, prev) << "sites=" << sites;
    prev = r.kernel_ms;
  }
}

TEST(SizeScaling, AidwTinyAndRectangularShapes) {
  for (auto [nd, nq] : {std::pair{128, 64}, {64, 128}, {256, 256}}) {
    apps::aidw::Options o;
    o.n_data = nd;
    o.n_query = nq;
    o.tile = 64;
    const auto r = apps::aidw::run(Version::kOmpx, dev(), o);
    EXPECT_TRUE(r.valid) << nd << "x" << nq;
  }
}

TEST(SizeScaling, RsbenchSmallestConfig) {
  apps::rsbench::Options o;
  o.lookups = 64;
  o.n_poles = 16;
  o.n_windows = 4;
  o.n_nuclides = 4;
  for (Version v : {Version::kOmpx, Version::kOmp, Version::kNative}) {
    const auto r = apps::rsbench::run(v, dev(), o);
    EXPECT_TRUE(r.valid) << apps::version_name(v);
  }
}

}  // namespace
