// Unit tests of the benchmark ports' internals: data-generator
// invariants and kernel-math properties, independent of any device run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"

namespace {

// ----------------------------------------------------------- XSBench

TEST(XsbenchUnit, EnergyGridsStrictlyAscending) {
  apps::xsbench::Options o;
  o.n_nuclides = 8;
  o.n_gridpoints = 256;
  const auto d = apps::xsbench::make_data(o);
  for (int n = 0; n < o.n_nuclides; ++n)
    for (int g = 1; g < o.n_gridpoints; ++g)
      ASSERT_LT(d.energy[n * o.n_gridpoints + g - 1],
                d.energy[n * o.n_gridpoints + g])
          << "nuclide " << n << " gridpoint " << g;
}

TEST(XsbenchUnit, MaterialsReferenceValidNuclides) {
  apps::xsbench::Options o;
  const auto d = apps::xsbench::make_data(o);
  ASSERT_EQ(static_cast<int>(d.num_nucs.size()), o.n_mats);
  // Material 0 is the "fuel": the densest composition.
  EXPECT_EQ(d.num_nucs[0], o.max_nucs_per_mat);
  for (int m = 0; m < o.n_mats; ++m) {
    ASSERT_GE(d.num_nucs[m], 2);
    ASSERT_LE(d.num_nucs[m], o.max_nucs_per_mat);
    for (int i = 0; i < d.num_nucs[m]; ++i) {
      const int nuc = d.mats[m * o.max_nucs_per_mat + i];
      ASSERT_GE(nuc, 0);
      ASSERT_LT(nuc, o.n_nuclides);
      ASSERT_GT(d.concs[m * o.max_nucs_per_mat + i], 0.0);
    }
  }
}

TEST(XsbenchUnit, LookupIsDeterministicInSeed) {
  apps::xsbench::Options o;
  o.lookups = 1;
  const auto d = apps::xsbench::make_data(o);
  for (std::uint64_t seed : {0ull, 1ull, 12345ull}) {
    const int a = apps::xsbench::lookup_one(
        seed, d.energy.data(), d.xs.data(), d.num_nucs.data(), d.mats.data(),
        d.concs.data(), o.n_gridpoints, o.max_nucs_per_mat, o.n_mats);
    const int b = apps::xsbench::lookup_one(
        seed, d.energy.data(), d.xs.data(), d.num_nucs.data(), d.mats.data(),
        d.concs.data(), o.n_gridpoints, o.max_nucs_per_mat, o.n_mats);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);  // one of the 5 cross-section channels
  }
}

TEST(XsbenchUnit, ReferenceHashStableAndSeedSensitive) {
  apps::xsbench::Options o;
  o.lookups = 500;
  const auto d = apps::xsbench::make_data(o);
  const auto h1 = apps::xsbench::reference_hash(d);
  const auto h2 = apps::xsbench::reference_hash(d);
  EXPECT_EQ(h1, h2);
  apps::xsbench::Options o2 = o;
  o2.lookups = 501;  // one extra lookup must change the hash
  const auto d2 = apps::xsbench::make_data(o2);
  EXPECT_NE(apps::xsbench::reference_hash(d2), h1);
}

// ----------------------------------------------------------- RSBench

TEST(RsbenchUnit, WindowsPartitionPoles) {
  apps::rsbench::Options o;
  const auto d = apps::rsbench::make_data(o);
  for (int n = 0; n < o.n_nuclides; ++n) {
    int covered = 0;
    for (int w = 0; w < o.n_windows; ++w) {
      const auto& win = d.windows[n * o.n_windows + w];
      ASSERT_EQ(win.start, covered);
      ASSERT_GT(win.end, win.start);
      covered = win.end;
    }
    ASSERT_EQ(covered, o.n_poles);
  }
}

TEST(RsbenchUnit, PoleDataWellFormed) {
  apps::rsbench::Options o;
  const auto d = apps::rsbench::make_data(o);
  for (const auto& p : d.poles) {
    ASSERT_GE(p.l_value, 0);
    ASSERT_LT(p.l_value, 4);
    ASSERT_GT(p.mp_ea.imag(), 0.0);  // poles live off the real axis
  }
}

TEST(RsbenchUnit, LookupScratchIndependent) {
  // The caller-provided scratch must not leak state between lookups.
  apps::rsbench::Options o;
  const auto d = apps::rsbench::make_data(o);
  std::complex<double> scratch_a[4], scratch_b[4];
  std::fill(scratch_b, scratch_b + 4, std::complex<double>(99.0, -99.0));
  const int a = apps::rsbench::lookup_one(
      42, d.poles.data(), d.windows.data(), d.pseudo_k0rs.data(),
      d.num_nucs.data(), d.mats.data(), d.concs.data(), o, scratch_a);
  const int b = apps::rsbench::lookup_one(
      42, d.poles.data(), d.windows.data(), d.pseudo_k0rs.data(),
      d.num_nucs.data(), d.mats.data(), d.concs.data(), o, scratch_b);
  EXPECT_EQ(a, b);  // pre-existing garbage in scratch is irrelevant
}

// --------------------------------------------------------------- SU3

TEST(Su3Unit, MultiplyByIdentityIsIdentityMap) {
  apps::su3::Matrix a{};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      a.e[i][j] = {0.25f * (i + 1), -0.5f * (j - 1)};
  apps::su3::Matrix id{};
  for (int i = 0; i < 3; ++i) id.e[i][i] = {1.0f, 0.0f};
  const auto c = apps::su3::mult_su3_nn(a, id);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(c.e[i][j].real(), a.e[i][j].real());
      EXPECT_FLOAT_EQ(c.e[i][j].imag(), a.e[i][j].imag());
    }
}

TEST(Su3Unit, MultiplyMatchesManualExpansion) {
  apps::su3::Matrix a{}, b{};
  int k = 1;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      a.e[i][j] = {static_cast<float>(k), static_cast<float>(-k)};
      b.e[i][j] = {static_cast<float>(k % 3), static_cast<float>(k % 2)};
      k++;
    }
  const auto c = apps::su3::mult_su3_nn(a, b);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      std::complex<float> s{0, 0};
      for (int l = 0; l < 3; ++l) s += a.e[i][l] * b.e[l][j];
      EXPECT_EQ(c.e[i][j], s);
    }
}

TEST(Su3Unit, ChecksumSensitiveToSingleElement) {
  apps::su3::Options o;
  o.lattice_sites = 64;
  const auto d = apps::su3::make_data(o);
  std::vector<apps::su3::Matrix> c(d.a.size());
  for (std::size_t s = 0; s < c.size(); ++s)
    c[s] = apps::su3::mult_su3_nn(d.a[s], d.b[s % 4]);
  const auto h1 = apps::su3::checksum_of(c);
  c[10].e[1][2] += std::complex<float>(0.5f, 0.0f);
  EXPECT_NE(apps::su3::checksum_of(c), h1);
}

// -------------------------------------------------------------- AIDW

TEST(AidwUnit, AdaptiveAlphaClampedAndMonotone) {
  const float spacing = 1.5f;
  float prev = 0.0f;
  for (float d2 : {0.0f, 0.1f, 0.5f, 1.0f, 2.0f, 5.0f, 25.0f, 1000.0f}) {
    const float a = apps::aidw::adaptive_alpha(d2, spacing);
    EXPECT_GE(a, 1.0f);
    EXPECT_LE(a, 3.0f);
    EXPECT_GE(a, prev);  // denser -> smaller exponent, monotone in d2
    prev = a;
  }
  EXPECT_FLOAT_EQ(apps::aidw::adaptive_alpha(0.0f, spacing), 1.0f);
  EXPECT_FLOAT_EQ(apps::aidw::adaptive_alpha(1e6f, spacing), 3.0f);
}

TEST(AidwUnit, InterpolationNearDataPointApproachesItsValue) {
  apps::aidw::Options o;
  o.n_data = 256;
  o.n_query = 1;
  auto d = apps::aidw::make_data(o);
  // Plant the query on top of data point 7.
  d.qx[0] = d.dx[7];
  d.qy[0] = d.dy[7];
  const float v = apps::aidw::interpolate_one_host(d, 0);
  EXPECT_NEAR(v, d.dz[7], 1e-3);
}

TEST(AidwUnit, ConstantFieldInterpolatesExactly) {
  apps::aidw::Options o;
  o.n_data = 128;
  o.n_query = 16;
  auto d = apps::aidw::make_data(o);
  std::fill(d.dz.begin(), d.dz.end(), 2.5f);
  for (int q = 0; q < o.n_query; ++q)
    EXPECT_NEAR(apps::aidw::interpolate_one_host(d, q), 2.5f, 1e-4);
}

// -------------------------------------------------------------- Adam

TEST(AdamUnit, FirstStepMovesAgainstGradient) {
  apps::adam::Options o;
  o.n = 4;
  float g[4] = {1.0f, -1.0f, 0.5f, 0.0f};
  float p[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  float m[4] = {}, v[4] = {};
  for (int i = 0; i < 4; ++i) apps::adam::adam_update(i, 1, o, g, p, m, v);
  EXPECT_LT(p[0], 0.0f);  // positive gradient -> parameter decreases
  EXPECT_GT(p[1], 0.0f);
  EXPECT_LT(p[2], 0.0f);
  EXPECT_FLOAT_EQ(p[3], 0.0f);  // zero gradient -> no movement
}

TEST(AdamUnit, BiasCorrectionMakesFirstStepsFullSize) {
  // With bias correction the very first update magnitude is ~lr.
  apps::adam::Options o;
  o.n = 1;
  float g[1] = {0.3f};
  float p[1] = {0.0f}, m[1] = {}, v[1] = {};
  apps::adam::adam_update(0, 1, o, g, p, m, v);
  EXPECT_NEAR(std::fabs(p[0]), o.lr, o.lr * 0.1);
}

TEST(AdamUnit, ReferenceChecksumDependsOnSteps) {
  apps::adam::Options o;
  o.n = 512;
  o.steps = 5;
  const auto d = apps::adam::make_data(o);
  const auto h5 = apps::adam::reference_checksum(d);
  apps::adam::Options o2 = o;
  o2.steps = 6;
  apps::adam::SimulationData d2 = d;
  d2.opt = o2;
  EXPECT_NE(apps::adam::reference_checksum(d2), h5);
}

// --------------------------------------------------------- Stencil-1D

TEST(StencilUnit, ConstantInputGivesWindowSum) {
  apps::stencil1d::Options o;
  o.n = 1024;
  apps::stencil1d::SimulationData d;
  d.opt = o;
  d.input.assign(o.n + 2 * apps::stencil1d::kRadius, 3);
  // Every output element must be (2R+1)*3.
  const auto checksum = apps::stencil1d::reference_checksum(d);
  std::vector<int> expect(o.n, (2 * apps::stencil1d::kRadius + 1) * 3);
  EXPECT_EQ(checksum, apps::stencil1d::checksum_of(expect));
}

TEST(StencilUnit, ChecksumPositionSensitive) {
  // The weighted checksum must distinguish permutations (a plain sum
  // would not), since workshare bugs typically permute outputs.
  std::vector<int> a{1, 2, 3, 4};
  std::vector<int> b{4, 3, 2, 1};
  EXPECT_NE(apps::stencil1d::checksum_of(a), apps::stencil1d::checksum_of(b));
}

}  // namespace
