// Cross-layer integration and concurrency stress: the engine, kl, omp
// and ompx layers used together the way a real application would.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "apps/harness.h"
#include "core/ompx.h"
#include "kl/kl.h"

namespace {

TEST(Integration, TwoHostThreadsDriveTwoDevicesConcurrently) {
  std::atomic<int> failures{0};
  auto drive = [&](int device_index) {
    if (kl::klSetDevice(device_index) != kl::klSuccess) {
      failures.fetch_add(1);
      return;
    }
    constexpr int n = 1 << 14;
    float* d = nullptr;
    if (kl::klMalloc(&d, n * sizeof(float)) != kl::klSuccess) {
      failures.fetch_add(1);
      return;
    }
    std::vector<float> h(n, 1.0f);
    kl::klMemcpy(d, h.data(), n * sizeof(float), kl::klMemcpyHostToDevice);
    kl::KernelAttrs attrs;
    attrs.mode = simt::ExecMode::kDirect;
    attrs.name = "integration_scale";
    for (int round = 0; round < 10; ++round) {
      kl::launch({n / 256}, {256}, 0, nullptr, attrs, [=] {
        const auto i = kl::global_thread_id_x();
        d[i] += 1.0f;
      });
    }
    kl::klDeviceSynchronize();
    kl::klMemcpy(h.data(), d, n * sizeof(float), kl::klMemcpyDeviceToHost);
    for (float v : h)
      if (v != 11.0f) {
        failures.fetch_add(1);
        break;
      }
    kl::klFree(d);
  };
  std::thread t0(drive, 0), t1(drive, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Integration, MixedLayersShareOneDeviceAllocation) {
  // kl allocates, an omp target region computes through the mapping of
  // a *different* host array, and an ompx bare kernel post-processes the
  // kl allocation — all on sim-a100, interleaved.
  ASSERT_EQ(kl::klSetDevice(0), kl::klSuccess);
  simt::Device& dev = simt::sim_a100();
  constexpr int n = 2048;

  int* d_raw = nullptr;
  ASSERT_EQ(kl::klMalloc(&d_raw, n * sizeof(int)), kl::klSuccess);
  std::vector<int> seed(n);
  std::iota(seed.begin(), seed.end(), 0);
  kl::klMemcpy(d_raw, seed.data(), n * sizeof(int), kl::klMemcpyHostToDevice);

  // omp region: classic mapped computation into a host vector.
  std::vector<int> mapped(n, 0);
  omp::TargetClauses c;
  c.device = &dev;
  c.name = "integration_omp";
  c.maps = {omp::map_from(mapped.data(), n * sizeof(int))};
  omp::target_teams_distribute_parallel_for(c, n, [&](omp::DeviceEnv& env) {
    int* out = env.translate(mapped.data());
    return [=](std::int64_t i) { out[i] = static_cast<int>(3 * i); };
  });

  // ompx bare kernel reads the kl allocation directly.
  ompx::LaunchSpec spec;
  spec.device = &dev;
  spec.num_teams = {n / 256};
  spec.thread_limit = {256};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "integration_ompx";
  ompx::launch(spec, [=] {
    const auto i = ompx::global_thread_id();
    d_raw[i] *= 2;
  });

  std::vector<int> out(n);
  kl::klMemcpy(out.data(), d_raw, n * sizeof(int), kl::klMemcpyDeviceToHost);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], 2 * i);
    ASSERT_EQ(mapped[i], 3 * i);
  }
  kl::klFree(d_raw);
}

TEST(Integration, AllSyncFeaturesInOneCooperativeKernel) {
  // groupprivate + block barrier + warp shuffle + warp ballot + device
  // atomics, composed: a two-level reduction with a popcount check.
  simt::Device& dev = simt::sim_a100();
  constexpr unsigned kTeams = 16, kThreads = 256;
  long long grand_total = 0;
  std::uint64_t odd_lanes_seen = 0;
  ompx::LaunchSpec spec;
  spec.device = &dev;
  spec.num_teams = {kTeams};
  spec.thread_limit = {kThreads};
  spec.name = "integration_all_sync";
  ompx::launch(spec, [&] {
    const int tid = ompx_thread_id_x();
    const int ws = ompx_warp_size();
    // Warp stage: shuffle-tree sum of (tid+1).
    long long v = tid + 1;
    for (int d = ws / 2; d > 0; d /= 2)
      v += ompx::shfl_down_sync(~0ull, v, static_cast<unsigned>(d));
    const std::uint64_t odd = ompx_ballot_sync(~0ull, ompx_lane_id() & 1);
    // Block stage: warp leaders deposit into groupprivate storage.
    auto* warp_sums = ompx::groupprivate<long long>(kThreads / 32);
    if (ompx_lane_id() == 0)
      warp_sums[tid / ws] = v;
    ompx_sync_thread_block();
    if (tid == 0) {
      long long team_sum = 0;
      for (unsigned w = 0; w < kThreads / static_cast<unsigned>(ws); ++w)
        team_sum += warp_sums[w];
      ompx::atomic_add(&grand_total, team_sum);
      if (ompx_block_id_x() == 0)
        simt::atomic_add(&odd_lanes_seen, static_cast<std::uint64_t>(
                                              __builtin_popcountll(odd)));
    }
  }).wait();
  const long long per_team =
      static_cast<long long>(kThreads) * (kThreads + 1) / 2;
  EXPECT_EQ(grand_total, static_cast<long long>(kTeams) * per_team);
  EXPECT_EQ(odd_lanes_seen, 16u);  // 16 odd lanes per 32-lane warp
}

TEST(Integration, RepeatedAppRunsLeaveNoResidue) {
  // Mapping tables, device memory and launch logs must come back to
  // baseline across repeated full app runs.
  simt::Device& dev = simt::sim_mi250();
  const auto live_before = dev.memory().live_allocations();
  for (int i = 0; i < 3; ++i) {
    apps::AppDesc desc;  // use the registry's Adam (cheap, maps + kl)
    for (const auto& a : apps::registry())
      if (a.name == "Adam") desc = a;
    const auto r1 = apps::run_cell(desc, apps::Version::kOmp, dev);
    const auto r2 = apps::run_cell(desc, apps::Version::kNative, dev);
    ASSERT_TRUE(r1.valid);
    ASSERT_TRUE(r2.valid);
  }
  EXPECT_EQ(dev.memory().live_allocations(), live_before);
}

TEST(Integration, InteropStreamsPlusHostTasksCompose) {
  // Figure 5's stream path and the classic depend task path used in one
  // program: a host task produces data, an interop-stream kernel chain
  // consumes it, a final taskwait drains everything.
  simt::Device& dev = simt::sim_a100();
  omp::Interop obj = omp::interop_init_targetsync(dev);
  constexpr int n = 4096;
  std::vector<double> host(n, 0.0);
  auto* buf = static_cast<double*>(omp::target_alloc(n * sizeof(double), dev));

  int token = 0;
  omp::TaskGraph::global().submit(
      [&] {
        std::vector<double> init(n, 2.0);
        omp::target_memcpy(buf, init.data(), n * sizeof(double), true, false,
                           dev);
      },
      {omp::dep_out(&token)});
  omp::TaskGraph::global().submit(
      [&] {
        for (int round = 0; round < 3; ++round) {
          ompx::LaunchSpec spec;
          spec.device = &dev;
          spec.num_teams = {n / 256};
          spec.thread_limit = {256};
          spec.nowait = true;
          spec.depend_interop = &obj;
          spec.mode = simt::ExecMode::kDirect;
          spec.name = "integration_chain";
          ompx::launch(spec, [=] {
            buf[ompx::global_thread_id()] += 0.5;
          });
        }
        ompx::taskwait(obj);
      },
      {omp::dep_in(&token)});
  omp::taskwait();
  omp::target_memcpy(host.data(), buf, n * sizeof(double), false, true, dev);
  for (double v : host) ASSERT_DOUBLE_EQ(v, 3.5);
  omp::target_free(buf, dev);
  omp::interop_destroy(obj);
}

}  // namespace
