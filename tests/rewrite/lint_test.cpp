// ompx_lint unit tests: each rule fires on its seeded defect and stays
// silent on the idioms the six app ports actually use (reduction
// trees, full-mask early exit, ::-qualified builtins).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rewrite/lint.h"

namespace {

using rewrite::LintFinding;
using rewrite::LintOptions;
using rewrite::LintRule;
using rewrite::lint_source;

std::vector<LintFinding> of(const std::vector<LintFinding>& fs, LintRule r) {
  std::vector<LintFinding> out;
  for (const auto& f : fs)
    if (f.rule == r) out.push_back(f);
  return out;
}

TEST(LintDivergentSync, FlagsBarrierUnderThreadIdCondition) {
  const auto fs = lint_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid < 16) {
    kl::syncthreads();
  }
}
)");
  const auto hits = of(fs, LintRule::kDivergentSync);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
}

TEST(LintDivergentSync, PropagatesThroughAssignedVariables) {
  const auto fs = lint_source(R"(
void k() {
  int lo = kl::threadIdx().x * 2;
  while (lo < 4) {
    kl::syncthreads();
    lo += 8;
  }
}
)");
  EXPECT_EQ(of(fs, LintRule::kDivergentSync).size(), 1u);
}

TEST(LintDivergentSync, ElseBranchOfDivergentIfIsAlsoDivergent) {
  const auto fs = lint_source(R"(
void k(int tid) {
  int t = ompx_thread_id_x();
  if (t == 0) {
    do_nothing();
  } else {
    ompx_sync_thread_block();
  }
}
)");
  EXPECT_EQ(of(fs, LintRule::kDivergentSync).size(), 1u);
}

TEST(LintDivergentSync, UniformConditionIsClean) {
  const auto fs = lint_source(R"(
void k(int n) {
  if (n > 4) {
    kl::syncthreads();
  }
  for (int i = 0; i < n; ++i) {
    __syncthreads();
  }
}
)",
                              {true, true, false});
  EXPECT_TRUE(of(fs, LintRule::kDivergentSync).empty());
}

TEST(LintDivergentSync, BlockIdxIsUniform) {
  // blockIdx differs across blocks, not across the threads that must
  // meet at the barrier — never divergent.
  const auto fs = lint_source(R"(
void k() {
  if (blockIdx.x == 0) {
    __syncthreads();
  }
}
)",
                              {true, true, false});
  EXPECT_TRUE(of(fs, LintRule::kDivergentSync).empty());
}

TEST(LintSharedRead, FlagsReadAfterWriteWithoutBarrier) {
  const auto fs = lint_source(R"(
void k(int tid) {
  auto tile = ompx::groupprivate<double>(256);
  tile[tid] = 1.0;
  double v = tile[255 - tid];
}
)");
  const auto hits = of(fs, LintRule::kUnsyncedSharedRead);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].symbol, "tile");
  EXPECT_EQ(hits[0].line, 5);
}

TEST(LintSharedRead, BarrierClearsTheHazard) {
  const auto fs = lint_source(R"(
void k(int tid) {
  auto tile = ompx::groupprivate<double>(256);
  tile[tid] = 1.0;
  kl::syncthreads();
  double v = tile[255 - tid];
}
)");
  EXPECT_TRUE(of(fs, LintRule::kUnsyncedSharedRead).empty());
}

TEST(LintSharedRead, ReductionTreeIdiomIsClean) {
  // `a[tid] += a[tid + s];` reads against the PRE-statement state: the
  // barrier at the top of the loop body already ordered the writes.
  const auto fs = lint_source(R"(
void k(int tid) {
  auto a = ompx::groupprivate<double>(256);
  a[tid] = 1.0;
  for (int s = 1; s < 128; s *= 2) {
    kl::sync_thread_block();
    a[tid] += a[tid + s];
  }
}
)");
  EXPECT_TRUE(of(fs, LintRule::kUnsyncedSharedRead).empty());
}

TEST(LintSharedRead, CudaSharedDeclIsTracked) {
  const auto fs = lint_source(R"(
__global__ void k() {
  __shared__ float tile[256];
  tile[threadIdx.x] = 1.0f;
  float v = tile[0];
}
)",
                              {true, true, false});
  EXPECT_EQ(of(fs, LintRule::kUnsyncedSharedRead).size(), 1u);
}

TEST(LintUnported, FlagsBareCudaBuiltins) {
  const auto fs = lint_source(R"(
void k() {
  int i = threadIdx.x + blockIdx.x * blockDim.x;
  __syncthreads();
}
)",
                              {false, false, true});
  const auto hits = of(fs, LintRule::kUnportedBuiltin);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].symbol, "threadIdx");
}

TEST(LintUnported, FlagsPeerCopyHostApis) {
  const auto fs = lint_source(R"(
void move(void* dst, void* src, std::size_t n) {
  cudaDeviceEnablePeerAccess(1, 0);
  cudaMemcpyPeer(dst, 1, src, 0, n);
}
)",
                              {false, false, true});
  const auto hits = of(fs, LintRule::kUnportedBuiltin);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].symbol, "cudaDeviceEnablePeerAccess");
  EXPECT_EQ(hits[1].symbol, "cudaMemcpyPeer");
  EXPECT_NE(hits[1].message.find("ompx_memcpy_peer"), std::string::npos);
}

TEST(LintUnported, PortedPeerCopyIsClean) {
  const auto fs = lint_source(R"(
void move(void* dst, void* src, std::size_t n) {
  ompx_device_enable_peer_access(1, 0);
  ompx_memcpy_peer(dst, 1, src, 0, n);
}
)",
                              {false, false, true});
  EXPECT_TRUE(of(fs, LintRule::kUnportedBuiltin).empty());
}

TEST(LintUnported, QualifiedNamesAreThisLibrarys) {
  const auto fs = lint_source(R"(
void k() {
  int i = kl::threadIdx().x + kl::blockIdx().x * kl::blockDim().x;
  kl::syncthreads();
}
)");
  EXPECT_TRUE(of(fs, LintRule::kUnportedBuiltin).empty());
}

TEST(LintUnported, DimBuiltinCallFormIsTheKlSpelling) {
  // Under `using namespace kl`, ported kernels write `threadIdx().x` —
  // a call, which CUDA's struct `threadIdx.x` can never be.
  const auto fs = lint_source(R"(
void k() {
  int i = threadIdx().x + blockIdx().x * blockDim().x;
}
)",
                              {false, false, true});
  EXPECT_TRUE(of(fs, LintRule::kUnportedBuiltin).empty());
}

TEST(LintSuppression, AllowCommentSilencesSameLine) {
  const auto fs = lint_source(R"(
void k(int tid) {
  auto b = ompx::groupprivate<int>(32);
  b[tid] = tid;
  int y = b[0];  // ompx-lint-allow
}
)");
  EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, AllowCommentSilencesNextLine) {
  const auto fs = lint_source(R"(
void k(int tid) {
  auto b = ompx::groupprivate<int>(32);
  b[tid] = tid;
  // ompx-lint-allow: deliberate same-interval read, exercised in tests
  int y = b[0];
}
)");
  EXPECT_TRUE(fs.empty());
}

TEST(LintScanner, CommentsAndStringsAreIgnored) {
  const auto fs = lint_source(R"(
void k() {
  // __syncthreads() in a comment
  /* threadIdx.x in a block comment */
  const char* s = "__syncthreads() in a string";
}
)",
                              {true, true, true});
  EXPECT_TRUE(fs.empty());
}

TEST(LintFormat, OneLinePerFindingWithRuleName) {
  const auto fs = lint_source("int i = threadIdx.x;\n", {false, false, true});
  ASSERT_EQ(fs.size(), 1u);
  const std::string text = rewrite::format_lint(fs, "kern.cu");
  EXPECT_NE(text.find("kern.cu:1:"), std::string::npos) << text;
  EXPECT_NE(text.find("[unported-builtin]"), std::string::npos) << text;
}

// --- classify_exec: the static side of the convergent lane loop ------

TEST(ClassifyExec, PureElementwiseKernelIsConvergent) {
  const auto c = rewrite::classify_exec(R"(
void k(const float* a, float* b, int n) {
  int i = kl::blockIdx().x * kl::blockDim().x + kl::threadIdx().x;
  if (i < n) b[i] = 2.0f * a[i];
}
)");
  EXPECT_TRUE(c.convergent);
  EXPECT_FALSE(c.needs_fibers);
  EXPECT_TRUE(c.reason.empty());
}

TEST(ClassifyExec, BarrierForcesFibersAndNamesTheToken) {
  const auto c = rewrite::classify_exec(R"(
void k() {
  __syncthreads();
}
)");
  EXPECT_FALSE(c.convergent);
  EXPECT_TRUE(c.needs_fibers);
  EXPECT_NE(c.reason.find("__syncthreads"), std::string::npos) << c.reason;
}

TEST(ClassifyExec, EverySpellingLayerCounts) {
  // The classifier must see kl::, ompx::, CUDA, and C-API spellings of
  // barriers and warp collectives alike — every rendezvous forces the
  // fiber path.
  for (const char* frag :
       {"kl::syncthreads();", "ompx_sync_thread_block();",
        "__shfl_down_sync(mask, v, 1);", "ompx::shfl_down(v, 1);",
        "__ballot_sync(mask, pred);", "warp_reduce(v);"}) {
    const auto c = rewrite::classify_exec(std::string("void k() { ") + frag +
                                          " }");
    EXPECT_TRUE(c.needs_fibers) << frag;
    EXPECT_FALSE(c.convergent) << frag;
    EXPECT_FALSE(c.reason.empty()) << frag;
  }
}

TEST(ClassifyExec, AtomicsAloneStayConvergentWithAtomicsOk) {
  // An atomic is a side effect, not a rendezvous: a kernel whose only
  // collectives are atomics is proven convergent, and atomics_ok lets
  // the lane loop run them inline instead of deflating.
  for (const char* frag : {"atomicAdd(&x, 1);", "simt::atomic_add(&x, 1);",
                           "atomicCAS(&x, a, b);"}) {
    const auto c = rewrite::classify_exec(std::string("void k() { ") + frag +
                                          " }");
    EXPECT_TRUE(c.convergent) << frag;
    EXPECT_FALSE(c.needs_fibers) << frag;
    EXPECT_TRUE(c.atomics_ok) << frag;
    EXPECT_FALSE(c.reason.empty()) << frag;
  }
}

TEST(ClassifyExec, BarrierPlusAtomicForcesFibersNotInline) {
  const auto c = rewrite::classify_exec(
      "void k() { atomicAdd(&x, 1); __syncthreads(); }");
  EXPECT_TRUE(c.needs_fibers);
  EXPECT_FALSE(c.atomics_ok);
}

TEST(ClassifyExec, TokensInCommentsAndStringsDoNotCount) {
  const auto c = rewrite::classify_exec(R"(
void k(float* b) {
  // __syncthreads() would be needed if the tile were shared
  const char* msg = "atomicAdd disabled";
  b[kl::threadIdx().x] = 1.0f;
  (void)msg;
}
)");
  EXPECT_TRUE(c.convergent) << c.reason;
}

TEST(LintOptionsTest, RulesCanBeDisabledIndependently) {
  const std::string src = R"(
void k() {
  int tid = threadIdx.x;
  if (tid < 8) {
    __syncthreads();
  }
}
)";
  EXPECT_TRUE(lint_source(src, {false, false, false}).empty());
  EXPECT_EQ(lint_source(src, {true, false, false}).size(), 1u);
}

}  // namespace
