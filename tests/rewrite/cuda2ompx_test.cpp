// The cuda2ompx rewriting tool (the paper's §6 future work): every
// mapping-table row rewrites correctly, reports are accurate, and the
// Figure 1 program round-trips into compilable ompx shape.
#include "rewrite/cuda2ompx.h"

#include <gtest/gtest.h>

namespace {

using rewrite::cuda_to_ompx;
using rewrite::Report;

std::string rw(const std::string& s, Report* r = nullptr) {
  return cuda_to_ompx(s, r);
}

TEST(Cuda2Ompx, ThreadIndexingBuiltins) {
  EXPECT_EQ(rw("int i = threadIdx.x;"), "int i = ompx_thread_id_x();");
  EXPECT_EQ(rw("int j = blockIdx.y * blockDim.y + threadIdx.y;"),
            "int j = ompx_block_id_y() * ompx_block_dim_y() + "
            "ompx_thread_id_y();");
  EXPECT_EQ(rw("int g = gridDim.z;"), "int g = ompx_grid_dim_z();");
  EXPECT_EQ(rw("for (int d = warpSize / 2; d; d /= 2) {}"),
            "for (int d = ompx_warp_size() / 2; d; d /= 2) {}");
  // Identifier boundaries respected: myThreadIdx.x is untouched.
  EXPECT_EQ(rw("myThreadIdx.x = 0;"), "myThreadIdx.x = 0;");
}

TEST(Cuda2Ompx, Synchronization) {
  EXPECT_EQ(rw("__syncthreads();"), "ompx_sync_thread_block();");
  EXPECT_EQ(rw("__syncwarp();"), "ompx_sync_warp(~0ull);");
  EXPECT_EQ(rw("__syncwarp(mask);"), "ompx_sync_warp(mask);");
  EXPECT_EQ(rw("v += __shfl_down_sync(m, v, 4);"),
            "v += ompx::shfl_down_sync(m, v, 4);");
  EXPECT_EQ(rw("unsigned b = __ballot_sync(m, p);"),
            "unsigned b = ompx::ballot_sync(m, p);");
  EXPECT_EQ(rw("atomicAdd(&x, 1);"), "ompx::atomic_add(&x, 1);");
  EXPECT_EQ(rw("__threadfence();"), "simt::threadfence();");
}

TEST(Cuda2Ompx, SharedMemoryDeclarations) {
  EXPECT_EQ(rw("__shared__ int tile[128];"),
            "int* tile = ompx::groupprivate<int>(128);");
  EXPECT_EQ(rw("__shared__ double cache[N + 2*R];"),
            "double* cache = ompx::groupprivate<double>(N + 2*R);");
  EXPECT_EQ(rw("extern __shared__ float dyn[];"),
            "float* dyn = ompx::dynamic_groupprivate<float>();");
  EXPECT_EQ(rw("__shared__ float total;"),
            "float& total = *ompx::groupprivate<float>(1);");
}

TEST(Cuda2Ompx, QualifiersDropped) {
  EXPECT_EQ(rw("__global__ void k(int* p) {}"), "void k(int* p) {}");
  EXPECT_EQ(rw("__device__ int helper(int a) { return a; }"),
            "int helper(int a) { return a; }");
  EXPECT_EQ(rw("float* __restrict__ p;"), "float*  p;");
}

TEST(Cuda2Ompx, HostApiCalls) {
  EXPECT_EQ(rw("cudaMalloc(&d_a, bytes);"),
            "d_a = static_cast<decltype(d_a)>(ompx_malloc(bytes));");
  EXPECT_EQ(rw("cudaMalloc((void**)&d_b, n * sizeof(int));"),
            "d_b = static_cast<decltype(d_b)>(ompx_malloc(n * sizeof(int)));");
  EXPECT_EQ(rw("cudaMemcpy(d, h, n, cudaMemcpyHostToDevice);"),
            "ompx_memcpy(d, h, n);");
  EXPECT_EQ(rw("cudaMemcpy(h, d, n, cudaMemcpyDeviceToHost);"),
            "ompx_memcpy(h, d, n);");
  EXPECT_EQ(rw("cudaFree(d_a);"), "ompx_free(d_a);");
  EXPECT_EQ(rw("cudaDeviceSynchronize();"), "ompx_device_synchronize();");
  EXPECT_EQ(rw("cudaMemset(p, 0, n);"), "ompx_memset(p, 0, n);");
}

TEST(Cuda2Ompx, MultiDeviceApiCalls) {
  EXPECT_EQ(rw("cudaSetDevice(1);"), "ompx_set_device(1);");
  EXPECT_EQ(rw("cudaGetDeviceCount(&n);"), "n = ompx_get_num_devices();");
  EXPECT_EQ(rw("cudaGetDevice(&dev);"), "dev = ompx_get_device();");
  EXPECT_EQ(rw("cudaMemcpyPeer(dst, 1, src, 0, bytes);"),
            "ompx_memcpy_peer(dst, 1, src, 0, bytes);");
  EXPECT_EQ(rw("cudaDeviceEnablePeerAccess(peer, 0);"),
            "ompx_device_enable_peer_access(peer, 0);");
  EXPECT_EQ(rw("cudaDeviceDisablePeerAccess(peer);"),
            "ompx_device_disable_peer_access(peer);");
  EXPECT_EQ(rw("cudaDeviceCanAccessPeer(&can, 0, 1);"),
            "ompx_device_can_access_peer(&can, 0, 1);");
}

TEST(Cuda2Ompx, StreamsAndEvents) {
  EXPECT_EQ(rw("cudaStream_t s;"), "ompx_stream_t s;");
  EXPECT_EQ(rw("cudaStreamCreate(&s);"), "s = ompx_stream_create();");
  EXPECT_EQ(rw("cudaStreamSynchronize(s);"), "ompx_stream_synchronize(s);");
  EXPECT_EQ(rw("cudaMemcpyAsync(d, h, n, cudaMemcpyHostToDevice, s);"),
            "ompx_memcpy_async(d, h, n, s);");
  EXPECT_EQ(rw("cudaEvent_t e; cudaEventCreate(&e); cudaEventRecord(e, s);"),
            "ompx_event_t e; e = ompx_event_create(); ompx_event_record(e, "
            "s);");
  EXPECT_EQ(rw("cudaEventElapsedTime(&ms, e0, e1);"),
            "ms = ompx_event_elapsed_ms(e0, e1);");
}

TEST(Cuda2Ompx, AsyncAllocAndGraphs) {
  EXPECT_EQ(rw("cudaMallocAsync(&p, n * sizeof(float), s);"),
            "p = static_cast<decltype(p)>(ompx_malloc_async(n * "
            "sizeof(float), s));");
  EXPECT_EQ(rw("cudaMallocAsync((void**)&p, bytes, s);"),
            "p = static_cast<decltype(p)>(ompx_malloc_async(bytes, s));");
  EXPECT_EQ(rw("cudaFreeAsync(p, s);"), "ompx_free_async(p, s);");
  EXPECT_EQ(rw("cudaStreamBeginCapture(s, cudaStreamCaptureModeGlobal);"),
            "ompx_stream_begin_capture(s);");
  EXPECT_EQ(rw("cudaStreamBeginCapture(s);"), "ompx_stream_begin_capture(s);");
  EXPECT_EQ(rw("cudaStreamEndCapture(s, &g);"),
            "ompx_stream_end_capture(s, &g);");
  // cudaGraph_t / cudaGraphExec_t collapse into one ompx_graph_t handle;
  // instantiate becomes an aliasing assignment plus in-place bake.
  EXPECT_EQ(rw("cudaGraph_t g; cudaGraphExec_t x;"),
            "ompx_graph_t g; ompx_graph_t x;");
  EXPECT_EQ(rw("cudaGraphInstantiate(&x, g, NULL, NULL, 0);"),
            "x = g; ompx_graph_instantiate(x);");
  EXPECT_EQ(rw("cudaGraphLaunch(x, s);"), "ompx_graph_launch(x, s);");
  EXPECT_EQ(rw("cudaGraphExecDestroy(x); cudaGraphDestroy(g);"),
            "ompx_graph_destroy(x); ompx_graph_destroy(g);");
}

TEST(Cuda2Ompx, ChevronLaunchSimple) {
  Report r;
  const std::string out = rw("kernel<<<gsize, bsize>>>(a, b, n);", &r);
  EXPECT_NE(out.find("spec_.num_teams = ompx::dim3(gsize);"),
            std::string::npos);
  EXPECT_NE(out.find("spec_.thread_limit = ompx::dim3(bsize);"),
            std::string::npos);
  EXPECT_NE(out.find("ompx::launch(spec_, [=] { kernel(a, b, n); });"),
            std::string::npos);
  EXPECT_GE(r.replacements, 1);
}

TEST(Cuda2Ompx, ChevronLaunchWithSmemAndStream) {
  Report r;
  const std::string out =
      rw("k<<<g, b, smem_bytes, stream>>>(p);", &r);
  EXPECT_NE(out.find("spec_.dynamic_groupprivate_bytes = smem_bytes;"),
            std::string::npos);
  EXPECT_NE(out.find("spec_.depend_interop = &stream;"), std::string::npos);
  ASSERT_FALSE(r.unported.empty());
  EXPECT_NE(r.unported[0].find("omp::Interop"), std::string::npos);
}

TEST(Cuda2Ompx, UnportableConstructsReported) {
  Report r;
  rw("__constant__ float coeffs[16]; texture<float> t;", &r);
  ASSERT_EQ(r.unported.size(), 2u);
  EXPECT_NE(r.unported[0].find("klMallocConstant"), std::string::npos);
}

TEST(Cuda2Ompx, Figure1ProgramEndToEnd) {
  // The paper's Figure 1, condensed; the output must contain the exact
  // ompx shapes the paper's Figure 4 / our quickstart example use.
  const std::string fig1 = R"(
__device__ int use(int &a, int &b) { return a + b; }

__global__ void kernel(int *a, int *b, int n) {
  __shared__ int shared[128];
  int tid = threadIdx.x;
  if (tid == 0) { /* initialize shared */ }
  __syncthreads();
  int idx = blockIdx.x * blockDim.x + tid;
  if (idx < n)
    b[idx] = use(a[idx], shared[tid]);
}

int main() {
  int *d_a, *d_b;
  cudaMalloc(&d_a, size);
  cudaMalloc(&d_b, size);
  cudaMemcpy(d_a, h_a, size, cudaMemcpyHostToDevice);
  kernel<<<gsize, bsize>>>(d_a, d_b, n);
  cudaMemcpy(h_b, d_b, size, cudaMemcpyDeviceToHost);
  cudaDeviceSynchronize();
  cudaFree(d_a);
  cudaFree(d_b);
  return 0;
}
)";
  Report r;
  const std::string out = rw(fig1, &r);
  EXPECT_NE(out.find("int* shared = ompx::groupprivate<int>(128);"),
            std::string::npos);
  EXPECT_NE(out.find("int tid = ompx_thread_id_x();"), std::string::npos);
  EXPECT_NE(out.find("ompx_sync_thread_block();"), std::string::npos);
  EXPECT_NE(out.find("int idx = ompx_block_id_x() * ompx_block_dim_x() + tid;"),
            std::string::npos);
  EXPECT_NE(out.find("ompx::launch(spec_, [=] { kernel(d_a, d_b, n); });"),
            std::string::npos);
  EXPECT_NE(out.find("ompx_device_synchronize();"), std::string::npos);
  EXPECT_EQ(out.find("__global__"), std::string::npos);
  EXPECT_EQ(out.find("cudaMalloc"), std::string::npos);
  EXPECT_EQ(out.find("<<<"), std::string::npos);
  EXPECT_TRUE(r.unported.empty());
  EXPECT_GT(r.replacements, 10);
}

TEST(Cuda2Ompx, LaunchRewriteCanBeDisabled) {
  rewrite::Options opt;
  opt.rewrite_launches = false;
  const std::string out =
      cuda_to_ompx("k<<<g, b>>>(x);", nullptr, opt);
  EXPECT_NE(out.find("<<<"), std::string::npos);
}

TEST(Cuda2Ompx, IdempotentOnAlreadyPortedCode) {
  const std::string ported =
      "int i = ompx_thread_id_x(); ompx_sync_thread_block();";
  EXPECT_EQ(rw(ported), ported);
}

}  // namespace
