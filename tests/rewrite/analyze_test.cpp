// ompx-analyze unit tests: the CFG + dataflow layer behind the lint
// rules. Each case seeds one defect (or one idiom that must stay
// clean) and checks the verdict, its line, and its severity. The
// golden section at the bottom runs the analyzer over the six shipped
// app ports and pins their exec verdicts — the same verdicts CI's
// dogfood gate enforces stay finding-free.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rewrite/analyze.h"
#include "rewrite/lint.h"
#include "simt/device.h"

namespace {

using rewrite::analyze_source;
using rewrite::AnalysisResult;
using rewrite::LintFinding;
using rewrite::LintRule;
using rewrite::Severity;

std::vector<LintFinding> of(const AnalysisResult& r, LintRule rule) {
  std::vector<LintFinding> out;
  for (const auto& f : r.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// --- divergent-sync: path-sensitive barrier verdicts -----------------

TEST(AnalyzeDivergentSync, MustDivergeIsAnErrorAtTheBarrierLine) {
  const auto r = analyze_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid < 16) {
    __syncthreads();
  }
}
)");
  const auto hits = of(r, LintRule::kDivergentSync);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(AnalyzeDivergentSync, EarlyExitBeforeBarrierIsCaught) {
  // `if (tid == 0) return;` means lane 0 never reaches the barrier —
  // control dependence through the early exit, not a brace around the
  // sync. A line-granular matcher cannot see this.
  const auto r = analyze_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid == 0) return;
  __syncthreads();
}
)");
  const auto hits = of(r, LintRule::kDivergentSync);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(AnalyzeDivergentSync, EqualCountsInBothArmsDowngradeToWarning) {
  // Both arms synchronize once: this engine's counted barrier pairs
  // them up, so it is tolerated — but lockstep GPUs may not, hence a
  // portability warning rather than silence.
  const auto r = analyze_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid < 16) {
    __syncthreads();
  } else {
    __syncthreads();
  }
}
)");
  const auto hits = of(r, LintRule::kDivergentSync);
  ASSERT_GE(hits.size(), 1u);
  for (const auto& h : hits) EXPECT_EQ(h.severity, Severity::kWarning);
  EXPECT_TRUE(of(r, LintRule::kBarrierMismatch).empty());
}

TEST(AnalyzeDivergentSync, MayDivergeIsAWarningNotAnError) {
  // `x` is lane-dependent on one path only — the join makes it May.
  const auto r = analyze_source(R"(
void k(int c) {
  int x = 0;
  if (c) x = kl::threadIdx().x;
  if (x > 0) {
    __syncthreads();
  }
}
)");
  const auto hits = of(r, LintRule::kDivergentSync);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(AnalyzeDivergentSync, LaneDependentLoopBoundFlagsBodyBarrier) {
  const auto r = analyze_source(R"(
void k(int n) {
  for (int i = kl::threadIdx().x; i < n; i += 32) {
    __syncthreads();
  }
}
)");
  const auto hits = of(r, LintRule::kDivergentSync);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4);
}

TEST(AnalyzeDivergentSync, SwitchOnLaneValueFlagsCaseBarrier) {
  const auto r = analyze_source(R"(
void k() {
  switch (kl::threadIdx().x % 4) {
    case 0:
      __syncthreads();
      break;
    default:
      break;
  }
}
)");
  EXPECT_EQ(of(r, LintRule::kDivergentSync).size(), 1u);
}

TEST(AnalyzeDivergentSync, BarrierNestedInUniformInsideLaneBranch) {
  // Uniform inner condition does not launder the outer lane-dependent
  // control dependence.
  const auto r = analyze_source(R"(
void k(int n) {
  if (kl::threadIdx().x < 16) {
    if (n > 4) {
      __syncthreads();
    }
  }
}
)");
  const auto hits = of(r, LintRule::kDivergentSync);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(AnalyzeDivergentSync, UniformLoopAndBranchStayClean) {
  const auto r = analyze_source(R"(
void k(int n) {
  if (n > 4) {
    __syncthreads();
  }
  for (int i = 0; i < n; ++i) {
    __syncthreads();
  }
  do {
    __syncthreads();
  } while (n-- > 0);
}
)");
  EXPECT_TRUE(r.findings.empty());
}

TEST(AnalyzeDivergentSync, WhileOverLaneDerivedVariablePropagates) {
  const auto r = analyze_source(R"(
void k() {
  int lo = kl::threadIdx().x * 2;
  while (lo < 4) {
    ompx_sync_thread_block();
    lo += 8;
  }
}
)");
  EXPECT_EQ(of(r, LintRule::kDivergentSync).size(), 1u);
}

// --- barrier-mismatch: sibling arm counts ----------------------------

TEST(AnalyzeBarrierMismatch, UnequalArmCountsFlagTheBranch) {
  const auto r = analyze_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid < 16) {
    __syncthreads();
    __syncthreads();
  } else {
    __syncthreads();
  }
}
)");
  const auto hits = of(r, LintRule::kBarrierMismatch);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4);  // the branch, not the arms
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(AnalyzeBarrierMismatch, MismatchClaimsArmBarriersOnce) {
  // The arm barriers belong to the mismatch verdict; they must not
  // also fire divergent-sync — one defect, one finding.
  const auto r = analyze_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid < 16) {
    __syncthreads();
    __syncthreads();
  } else {
    __syncthreads();
  }
}
)");
  EXPECT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, LintRule::kBarrierMismatch);
}

// --- unsynced-shared-read: dirty-set dataflow ------------------------

TEST(AnalyzeSharedRead, MustDirtyReadIsAnError) {
  const auto r = analyze_source(R"(
void k(int tid) {
  auto tile = ompx::groupprivate<double>(256);
  tile[tid] = 1.0;
  double v = tile[255 - tid];
}
)");
  const auto hits = of(r, LintRule::kUnsyncedSharedRead);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].symbol, "tile");
  EXPECT_EQ(hits[0].severity, Severity::kError);
}

TEST(AnalyzeSharedRead, OneSidedWriteReadsBackAsMayWarning) {
  const auto r = analyze_source(R"(
void k(int tid, int c) {
  auto tile = ompx::groupprivate<double>(256);
  if (c) {
    tile[tid] = 1.0;
  }
  double v = tile[0];
}
)");
  const auto hits = of(r, LintRule::kUnsyncedSharedRead);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(AnalyzeSharedRead, LoopCarriedHazardSurfacesViaBackEdge) {
  // Iteration i writes what iteration i+1 reads; no barrier in the
  // body. The first iteration is clean — only the back edge makes the
  // read dirty, so the join demotes it to a may-warning.
  const auto r = analyze_source(R"(
void k(int tid) {
  auto a = ompx::groupprivate<int>(256);
  for (int i = 0; i < 10; ++i) {
    int v = a[tid ^ 1];
    a[tid] = v + 1;
  }
}
)");
  ASSERT_EQ(of(r, LintRule::kUnsyncedSharedRead).size(), 1u);
}

TEST(AnalyzeSharedRead, BarrierInLoopBodyClearsTheBackEdge) {
  const auto r = analyze_source(R"(
void k(int tid) {
  auto a = ompx::groupprivate<int>(256);
  for (int i = 0; i < 10; ++i) {
    kl::syncthreads();
    int v = a[tid ^ 1];
    a[tid] = v + 1;
    kl::syncthreads();
  }
}
)");
  EXPECT_TRUE(of(r, LintRule::kUnsyncedSharedRead).empty());
}

TEST(AnalyzeSharedRead, AllocBindingIsNotAWrite) {
  // `tile = ompx::groupprivate<float>(n)` binds the allocation; it
  // does not dirty `tile`. (Regression: the heat2d example's lambda
  // over a freshly bound tile flagged a phantom hazard.)
  const auto r = analyze_source(R"(
void k(int tid, int n) {
  float* tile = ompx::groupprivate<float>(n);
  auto at = [&](int i) { return tile[i]; };
  float v = at(tid);
}
)");
  EXPECT_TRUE(of(r, LintRule::kUnsyncedSharedRead).empty());
}

TEST(AnalyzeSharedRead, BarrierOnEveryPathClearsMustDirty) {
  const auto r = analyze_source(R"(
void k(int tid, int c) {
  auto tile = ompx::groupprivate<double>(256);
  tile[tid] = 1.0;
  if (c) {
    kl::syncthreads();
  } else {
    kl::syncthreads();
  }
  double v = tile[255 - tid];
}
)");
  EXPECT_TRUE(of(r, LintRule::kUnsyncedSharedRead).empty());
}

TEST(AnalyzeSharedRead, BarrierOnOnePathOnlyStillWarns) {
  const auto r = analyze_source(R"(
void k(int tid, int c) {
  auto tile = ompx::groupprivate<double>(256);
  tile[tid] = 1.0;
  if (c) {
    kl::syncthreads();
  }
  double v = tile[255 - tid];
}
)");
  const auto hits = of(r, LintRule::kUnsyncedSharedRead);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

// --- C-ABI contract rules --------------------------------------------

TEST(AnalyzeContract, DiscardedResultAtStatementPositionWarns) {
  const auto r = analyze_source(R"(
void host(void* p) {
  ompx_free(p);
}
)");
  const auto hits = of(r, LintRule::kUncheckedResult);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
  EXPECT_NE(hits[0].message.find("OMPX_CHECK"), std::string::npos);
}

TEST(AnalyzeContract, CheckedAndAssignedResultsAreClean) {
  const auto r = analyze_source(R"(
void host(void* p, void* d, void* s) {
  OMPX_CHECK(ompx_free(p));
  ompx_result_t rc = ompx_memcpy(d, s, 16, OMPX_COPY_DEFAULT);
  if (ompx_device_synchronize() != OMPX_SUCCESS) return;
  (void)rc;
}
)");
  EXPECT_TRUE(of(r, LintRule::kUncheckedResult).empty());
}

TEST(AnalyzeContract, GetNodesWithoutCountWarns) {
  const auto r = analyze_source(R"(
void host(ompx_graph_t g, ompx_graph_node_info_t* nodes) {
  std::size_t written = 0;
  OMPX_CHECK(ompx_graph_get_nodes(g, nodes, 64, &written));
}
)");
  const auto hits = of(r, LintRule::kTwoCallEnumeration);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].severity, Severity::kWarning);
}

TEST(AnalyzeContract, TwoCallProtocolIsClean) {
  const auto r = analyze_source(R"(
void host(ompx_graph_t g, ompx_graph_node_info_t* nodes) {
  std::size_t count = 0;
  OMPX_CHECK(ompx_graph_node_count(g, &count));
  std::size_t written = 0;
  OMPX_CHECK(ompx_graph_get_nodes(g, nodes, count, &written));
}
)");
  EXPECT_TRUE(of(r, LintRule::kTwoCallEnumeration).empty());
}

// --- suppression: bare and per-rule ompx-lint-allow ------------------

TEST(AnalyzeSuppression, BareAllowSilencesAnyRule) {
  const auto r = analyze_source(R"(
void host(void* p) {
  ompx_free(p);  // ompx-lint-allow
}
)");
  EXPECT_TRUE(r.findings.empty());
}

TEST(AnalyzeSuppression, PerRuleAllowSilencesOnlyTheNamedRule) {
  const std::string src = R"(
void k() {
  int tid = kl::threadIdx().x;
  if (tid < 16) {
    __syncthreads();  // ompx-lint-allow(divergent-sync)
  }
}
)";
  EXPECT_TRUE(analyze_source(src).findings.empty());
  // The same annotation naming an unrelated rule must NOT mask it.
  std::string other = src;
  const auto pos = other.find("divergent-sync");
  other.replace(pos, std::string("divergent-sync").size(),
                "unchecked-result");
  EXPECT_EQ(analyze_source(other).findings.size(), 1u);
}

TEST(AnalyzeSuppression, CollectAllowsParsesRuleLists) {
  const auto allows = rewrite::collect_allows(
      "int a;  // ompx-lint-allow(divergent-sync, unsynced-shared-read)\n"
      "int b;  // ompx-lint-allow\n");
  EXPECT_TRUE(rewrite::allow_matches(allows, 1, "divergent-sync"));
  EXPECT_TRUE(rewrite::allow_matches(allows, 1, "unsynced-shared-read"));
  EXPECT_FALSE(rewrite::allow_matches(allows, 1, "unchecked-result"));
  EXPECT_TRUE(rewrite::allow_matches(allows, 2, "unchecked-result"));
  // Marker on line N also covers line N+1 (annotation-above style).
  EXPECT_TRUE(rewrite::allow_matches(allows, 3, "unchecked-result"));
}

// --- scanner hygiene -------------------------------------------------

TEST(AnalyzeScanner, CommentsAndStringsNeverReachTheDataflow) {
  const auto r = analyze_source(R"(
void k() {
  int tid = kl::threadIdx().x;
  // if (tid < 16) __syncthreads();
  /* tile[tid] = 1; v = tile[0]; */
  const char* s = "ompx_free(p); __syncthreads();";
  (void)tid;
  (void)s;
}
)");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_TRUE(r.kernels[0].convergent);
}

// --- exec verdicts and the engine registry ---------------------------

TEST(AnalyzeVerdict, NamedLaunchLambdaGetsItsLaunchName) {
  const auto r = analyze_source(R"(
void run(simt::Device& dev) {
  simt::LaunchParams p;
  p.name = "saxpy";
  dev.launch_sync(p, [&] {
    int i = kl::threadIdx().x;
    y[i] += a * x[i];
  });
}
)");
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_EQ(r.kernels[0].kernel, "saxpy");
  EXPECT_TRUE(r.kernels[0].named);
  EXPECT_TRUE(r.kernels[0].convergent);
  EXPECT_FALSE(r.kernels[0].needs_fibers);
}

TEST(AnalyzeVerdict, AtomicsOnlyKernelIsConvergentAtomicsOk) {
  const auto r = analyze_source(R"(
void run(simt::Device& dev) {
  simt::LaunchParams p;
  p.name = "histo";
  dev.launch_sync(p, [&] {
    simt::atomic_add(&bins[kl::threadIdx().x % 16], 1);
  });
}
)");
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_TRUE(r.kernels[0].convergent);
  EXPECT_TRUE(r.kernels[0].atomics_ok);
  EXPECT_FALSE(r.kernels[0].needs_fibers);
}

TEST(AnalyzeVerdict, BarrierKernelNeedsFibersAndNamesTheToken) {
  const auto r = analyze_source(R"(
__global__ void reduce(double* a) {
  __syncthreads();
}
)");
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_EQ(r.kernels[0].kernel, "reduce");
  EXPECT_TRUE(r.kernels[0].needs_fibers);
  EXPECT_NE(r.kernels[0].reason.find("__syncthreads"), std::string::npos);
}

TEST(AnalyzeVerdict, RegisterExecHintsFeedsTheSimtRegistry) {
  simt::clear_exec_hints();
  const int n = rewrite::register_exec_hints(R"(
void run(simt::Device& dev) {
  simt::LaunchParams p;
  p.name = "rt_atomic";
  dev.launch_sync(p, [&] { simt::atomic_add(&x, 1); });
  p.name = "rt_barrier";
  dev.launch_sync(p, [&] { __syncthreads(); });
}
)");
  EXPECT_EQ(n, 2);
  const simt::ExecHint a = simt::exec_hint("rt_atomic");
  EXPECT_TRUE(a.convergent);
  EXPECT_TRUE(a.atomics_ok);
  EXPECT_FALSE(a.needs_fibers);
  const simt::ExecHint b = simt::exec_hint("rt_barrier");
  EXPECT_TRUE(b.needs_fibers);
  EXPECT_FALSE(b.convergent);
  simt::clear_exec_hints();
}

TEST(AnalyzeVerdict, SameNameRegionsMergeConservatively) {
  simt::clear_exec_hints();
  // Two regions share one launch name; the barrier region wins.
  rewrite::register_exec_hints(R"(
void run(simt::Device& dev) {
  simt::LaunchParams p;
  p.name = "merged";
  dev.launch_sync(p, [&] { simt::atomic_add(&x, 1); });
  dev.launch_sync(p, [&] { __syncthreads(); });
}
)");
  const simt::ExecHint h = simt::exec_hint("merged");
  EXPECT_TRUE(h.needs_fibers);
  EXPECT_FALSE(h.atomics_ok);
  simt::clear_exec_hints();
}

// --- output formats --------------------------------------------------

TEST(AnalyzeFormat, ReportHasSeverityAndVerdictLines) {
  const auto r = analyze_source(R"(
void k() {
  if (kl::threadIdx().x < 16) {
    __syncthreads();
  }
}
)");
  const std::string text = rewrite::format_analysis(r, "kern.cpp");
  EXPECT_NE(text.find("kern.cpp:4: error: [divergent-sync]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("needs fibers"), std::string::npos) << text;
}

TEST(AnalyzeFormat, SarifDocumentCarriesFindingsAndKernels) {
  const auto r = analyze_source(R"(
void host(void* p) {
  ompx_free(p);
}
)");
  std::vector<std::pair<std::string, AnalysisResult>> files;
  files.emplace_back("host.cpp", r);
  const std::string sarif = rewrite::analysis_to_sarif(files);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"unchecked-result\""),
            std::string::npos);
  EXPECT_NE(sarif.find("ompx-analyze"), std::string::npos);
  EXPECT_NE(sarif.find("host.cpp"), std::string::npos);
}

// --- golden verdicts over the six shipped app ports ------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct AppGolden {
  const char* file;
  const char* kernel;
  bool needs_fibers;
  bool atomics_ok;
};

TEST(AnalyzeGolden, SixAppPortsAreFindingFreeWithPinnedVerdicts) {
  const AppGolden apps[] = {
      {"/src/apps/adam/versions.cpp", "adam_step", false, false},
      {"/src/apps/su3/versions.cpp", "su3_mult", false, false},
      {"/src/apps/aidw/versions.cpp", "aidw", true, false},
      {"/src/apps/stencil1d/versions.cpp", "stencil1d", true, false},
      {"/src/apps/xsbench/versions.cpp", "xsbench_event", false, true},
      {"/src/apps/rsbench/versions.cpp", "rsbench_event", false, false},
  };
  for (const AppGolden& app : apps) {
    const std::string src = read_file(std::string(OMPX_SOURCE_DIR) + app.file);
    ASSERT_FALSE(src.empty()) << app.file;
    const auto r = analyze_source(src);
    EXPECT_TRUE(r.findings.empty())
        << app.file << ":\n"
        << rewrite::format_lint(r.findings, app.file);
    simt::clear_exec_hints();
    EXPECT_GE(rewrite::register_exec_hints(src), 1) << app.file;
    const simt::ExecHint h = simt::exec_hint(app.kernel);
    EXPECT_EQ(h.needs_fibers, app.needs_fibers) << app.kernel;
    EXPECT_EQ(h.convergent, !app.needs_fibers) << app.kernel;
    EXPECT_EQ(h.atomics_ok, app.atomics_ok) << app.kernel;
  }
  simt::clear_exec_hints();
}

}  // namespace
