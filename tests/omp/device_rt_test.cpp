// Device-runtime emulation details: dynamic schedules, critical
// sections, and generic-mode state-machine bookkeeping.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "omp/omp.h"

namespace {

using namespace omp;

simt::Device& dev() { return simt::sim_a100(); }

TEST(DeviceRt, DynamicScheduleCoversRangeOnce) {
  constexpr int teams = 3, threads = 32;
  constexpr std::int64_t n = 1000;
  std::vector<int> hits(n, 0);
  auto* h = hits.data();
  TargetClauses c;
  c.num_teams = teams;
  c.thread_limit = threads;
  c.name = "dynamic";
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      // distribute across teams, dynamic within the team
      const std::int64_t chunk_per_team = (n + team.teams() - 1) / team.teams();
      const std::int64_t lb = team.team() * chunk_per_team;
      const std::int64_t ub = std::min<std::int64_t>(lb + chunk_per_team, n);
      team.parallel_for_dynamic(lb, ub, 7, [=](std::int64_t i) { h[i] += 1; });
    };
  });
  for (int v : hits) ASSERT_EQ(v, 1);
}

TEST(DeviceRt, DynamicScheduleCountsDispatches) {
  constexpr std::int64_t n = 96;
  TargetClauses c;
  c.num_teams = 1;
  c.thread_limit = 16;
  c.name = "dynamic_dispatch";
  dev().clear_launch_log();
  std::vector<int> sink(n, 0);
  auto* s = sink.data();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      team.parallel_for_dynamic(0, n, 8, [=](std::int64_t i) { s[i] = 1; });
    };
  });
  // 96 iterations in chunks of 8 = 12 grabs.
  EXPECT_EQ(dev().last_launch().stats.workshare_dispatches, 12u);
}

TEST(DeviceRt, DynamicScheduleRejectsBadChunk) {
  TargetClauses c;
  c.num_teams = 1;
  c.thread_limit = 4;
  EXPECT_THROW(target_teams_generic(c, [&](DeviceEnv&) {
                 return [](TeamCtx& team) {
                   team.parallel_for_dynamic(0, 10, 0, [](std::int64_t) {});
                 };
               }),
               std::invalid_argument);
}

TEST(DeviceRt, CriticalSerializesReadModifyWrite) {
  constexpr int teams = 8, threads = 64;
  long long counter = 0;  // deliberately non-atomic
  TargetClauses c;
  c.num_teams = teams;
  c.thread_limit = threads;
  c.name = "critical";
  target_teams_generic(c, [&](DeviceEnv&) {
    return [&](TeamCtx& team) {
      team.parallel(0, [&](int) {
        critical([&] { counter += 1; });
      });
    };
  });
  EXPECT_EQ(counter, static_cast<long long>(teams) * threads);
}

TEST(DeviceRt, NamedCriticalsAreIndependentLocks) {
  int a = 0, b = 0;
  TargetClauses c;
  c.num_teams = 2;
  c.thread_limit = 32;
  c.name = "named_critical";
  target_teams_generic(c, [&](DeviceEnv&) {
    return [&](TeamCtx& team) {
      team.parallel(0, [&](int tid) {
        if (tid % 2 == 0)
          critical([&] { a += 1; }, "lock_a");
        else
          critical([&] { b += 1; }, "lock_b");
      });
    };
  });
  EXPECT_EQ(a, 2 * 16);
  EXPECT_EQ(b, 2 * 16);
}

TEST(DeviceRt, CriticalUsableFromSpmdBodies) {
  long long total = 0;
  TargetClauses c;
  c.num_teams = 4;
  c.thread_limit = 32;
  c.name = "critical_spmd";
  target_teams_distribute_parallel_for(c, 4 * 32, [&](DeviceEnv&) {
    return [&](std::int64_t) {
      critical([&] { total += 2; });
    };
  });
  EXPECT_EQ(total, 2LL * 4 * 32);
}

TEST(DeviceRt, GenericModeParallelForReduce) {
  constexpr int teams = 4, threads = 32;
  constexpr std::int64_t n = 1000;
  std::vector<double> team_sums(teams, 0.0);
  TargetClauses c;
  c.num_teams = teams;
  c.thread_limit = threads;
  c.name = "generic_reduce";
  auto* ts = team_sums.data();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      const std::int64_t chunk = (n + team.teams() - 1) / team.teams();
      const std::int64_t lb = team.team() * chunk;
      const std::int64_t ub = std::min<std::int64_t>(lb + chunk, n);
      ts[team.team()] = team.parallel_for_reduce(
          lb, ub, [](std::int64_t i) { return static_cast<double>(i); });
    };
  });
  const double total =
      std::accumulate(team_sums.begin(), team_sums.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2);
}

TEST(DeviceRt, ReduceOverEmptyRangeIsZero) {
  TargetClauses c;
  c.num_teams = 1;
  c.thread_limit = 8;
  c.name = "empty_reduce";
  double got = -1.0;
  target_teams_generic(c, [&](DeviceEnv&) {
    return [&](TeamCtx& team) {
      got = team.parallel_for_reduce(5, 5, [](std::int64_t) { return 1.0; });
    };
  });
  EXPECT_DOUBLE_EQ(got, 0.0);
}

TEST(DeviceRt, DeviceQueriesInsideGenericRegions) {
  constexpr int teams = 3, threads = 24;
  std::vector<int> team_nums(teams, -1);
  std::vector<int> sizes(teams, -1);
  TargetClauses c;
  c.num_teams = teams;
  c.thread_limit = threads;
  c.name = "queries";
  auto* tn = team_nums.data();
  auto* sz = sizes.data();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      tn[team.team()] = team.team();
      sz[team.team()] = team.team_size();
    };
  });
  for (int t = 0; t < teams; ++t) {
    EXPECT_EQ(team_nums[t], t);
    EXPECT_EQ(sizes[t], threads);
  }
}

TEST(DeviceRt, MasterAndSingleSemantics) {
  constexpr int threads = 64;
  int master_hits = 0;
  int single_hits = 0;
  TargetClauses c;
  c.num_teams = 2;
  c.thread_limit = threads;
  c.name = "master_single";
  target_teams_generic(c, [&](DeviceEnv&) {
    return [&](TeamCtx& team) {
      auto* ticket = static_cast<int*>(team.groupprivate(sizeof(int)));
      *ticket = 0;
      team.parallel(0, [&](int) {
        if (master()) critical([&] { master_hits++; });
        if (single_nowait(ticket)) critical([&] { single_hits++; });
      });
    };
  });
  EXPECT_EQ(master_hits, 2);  // one master per team
  EXPECT_EQ(single_hits, 2);  // exactly one thread per team won the ticket
}

TEST(DeviceRt, NestedParallelsReuseWorkers) {
  // Sequential code between two parallel regions observes the updates
  // of the first — the state machine must round-trip cleanly.
  constexpr int threads = 48;
  int stage_one_sum = 0;
  int stage_two_sum = 0;
  TargetClauses c;
  c.num_teams = 1;
  c.thread_limit = threads;
  c.name = "nested";
  target_teams_generic(c, [&](DeviceEnv&) {
    return [&](TeamCtx& team) {
      std::vector<int> scratch(threads, 0);
      auto* s = scratch.data();
      team.parallel(0, [=](int tid) { s[tid] = tid; });
      stage_one_sum = std::accumulate(scratch.begin(), scratch.end(), 0);
      team.parallel(0, [=](int tid) { s[tid] = 2 * tid; });
      stage_two_sum = std::accumulate(scratch.begin(), scratch.end(), 0);
    };
  });
  EXPECT_EQ(stage_one_sum, threads * (threads - 1) / 2);
  EXPECT_EQ(stage_two_sum, threads * (threads - 1));
}

TEST(DeviceRt, ParallelNumThreadsClamps) {
  constexpr int threads = 64;
  int active = 0;
  TargetClauses c;
  c.num_teams = 1;
  c.thread_limit = threads;
  c.name = "num_threads";
  target_teams_generic(c, [&](DeviceEnv&) {
    return [&](TeamCtx& team) {
      team.parallel(16, [&](int) {
        critical([&] { active += 1; });
      });
    };
  });
  EXPECT_EQ(active, 16);  // num_threads(16) limits the region
}

}  // namespace
