// Host task-graph semantics: OpenMP depend-clause ordering.
#include "omp/task.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using namespace omp;

TEST(TaskGraph, IndependentTasksAllRun) {
  TaskGraph g(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) g.submit([&] { count.fetch_add(1); });
  g.taskwait();
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(g.completed(), 50u);
}

TEST(TaskGraph, OutThenInOrdering) {
  TaskGraph g(2);
  int x = 0;
  std::atomic<int> seen{-1};
  g.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    x = 42;
  }, {dep_out(&x)});
  g.submit([&] { seen.store(x); }, {dep_in(&x)});
  g.taskwait();
  EXPECT_EQ(seen.load(), 42);
}

TEST(TaskGraph, ReadersRunBeforeNextWriter) {
  TaskGraph g(2);
  int x = 1;
  std::atomic<int> r1{0}, r2{0};
  g.submit([&] { x = 10; }, {dep_out(&x)});
  g.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    r1.store(x);
  }, {dep_in(&x)});
  g.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    r2.store(x);
  }, {dep_in(&x)});
  g.submit([&] { x = 20; }, {dep_out(&x)});  // must wait for both readers
  g.taskwait();
  EXPECT_EQ(r1.load(), 10);
  EXPECT_EQ(r2.load(), 10);
  EXPECT_EQ(x, 20);
}

TEST(TaskGraph, WriteAfterWriteSerialized) {
  TaskGraph g(4);
  std::vector<int> order;
  int x = 0;
  for (int i = 0; i < 8; ++i)
    g.submit([&order, i] { order.push_back(i); }, {dep_inout(&x)});
  g.taskwait();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskGraph, IndependentChainsOverlap) {
  TaskGraph g(2);
  int a = 0, b = 0;
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    g.submit([&] { done.fetch_add(1); }, {dep_inout(&a)});
    g.submit([&] { done.fetch_add(1); }, {dep_inout(&b)});
  }
  g.taskwait();
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskGraph, WaitSpecificTask) {
  TaskGraph g(2);
  std::atomic<bool> ran{false};
  auto id = g.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ran.store(true);
  });
  g.wait(id);
  EXPECT_TRUE(ran.load());
}

TEST(TaskGraph, TaskwaitRethrowsTaskException) {
  TaskGraph g(2);
  g.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(g.taskwait(), std::runtime_error);
  // Graph remains usable.
  std::atomic<bool> ok{false};
  g.submit([&] { ok.store(true); });
  g.taskwait();
  EXPECT_TRUE(ok.load());
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g(4);
  int src = 0, left = 0, right = 0;
  std::vector<int> result;
  g.submit([&] { src = 1; }, {dep_out(&src)});
  g.submit([&] { left = src + 10; }, {dep_in(&src), dep_out(&left)});
  g.submit([&] { right = src + 20; }, {dep_in(&src), dep_out(&right)});
  g.submit([&] { result.push_back(left + right); },
           {dep_in(&left), dep_in(&right)});
  g.taskwait();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 32);
}

TEST(TaskGraph, DependOnCompletedTaskDoesNotBlock) {
  TaskGraph g(1);
  int x = 0;
  g.submit([&] { x = 5; }, {dep_out(&x)});
  g.taskwait();
  std::atomic<int> seen{-1};
  g.submit([&] { seen.store(x); }, {dep_in(&x)});
  g.taskwait();
  EXPECT_EQ(seen.load(), 5);
}

TEST(TaskGraph, ManyTasksStress) {
  TaskGraph g(4);
  std::atomic<long> sum{0};
  int chain = 0;
  for (int i = 0; i < 500; ++i) {
    if (i % 5 == 0)
      g.submit([&, i] { sum.fetch_add(i); }, {dep_inout(&chain)});
    else
      g.submit([&, i] { sum.fetch_add(i); });
  }
  g.taskwait();
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

}  // namespace
