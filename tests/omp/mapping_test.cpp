// Mapping-table semantics: the libomptarget reference-count rules.
#include "omp/mapping.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simt/device.h"
#include "simt/memory.h"

namespace {

using namespace omp;

class MappingTest : public ::testing::Test {
 protected:
  simt::Device dev{simt::make_sim_a100_config()};
  MappingTable table{dev};
};

TEST_F(MappingTest, MapToCopiesIn) {
  std::vector<int> h{1, 2, 3, 4};
  auto* d = static_cast<int*>(table.enter(map_to(h.data(), 4 * sizeof(int))));
  ASSERT_NE(d, nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], i + 1);
  table.exit(map_to(h.data(), 4 * sizeof(int)));
  EXPECT_FALSE(table.is_present(h.data()));
}

TEST_F(MappingTest, MapFromCopiesOutAtRelease) {
  std::vector<int> h(4, 0);
  auto* d = static_cast<int*>(table.enter(map_from(h.data(), 4 * sizeof(int))));
  for (int i = 0; i < 4; ++i) d[i] = 10 * i;
  table.exit(map_from(h.data(), 4 * sizeof(int)));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(h[i], 10 * i);
}

TEST_F(MappingTest, AllocDoesNotTransferEitherWay) {
  std::vector<int> h(4, 7);
  auto* d = static_cast<int*>(table.enter(map_alloc(h.data(), 4 * sizeof(int))));
  d[0] = 99;
  table.exit(map_alloc(h.data(), 4 * sizeof(int)));
  EXPECT_EQ(h[0], 7);  // no copy-back
}

TEST_F(MappingTest, RefCountingSharesOneAllocation) {
  std::vector<int> h(16, 0);
  void* d1 = table.enter(map_tofrom(h.data(), 16 * sizeof(int)));
  void* d2 = table.enter(map_tofrom(h.data(), 16 * sizeof(int)));
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(table.ref_count(h.data()), 2u);
  EXPECT_EQ(dev.memory().live_allocations(), 1u);
  table.exit(map_tofrom(h.data(), 16 * sizeof(int)));
  EXPECT_TRUE(table.is_present(h.data()));  // still one ref
  table.exit(map_tofrom(h.data(), 16 * sizeof(int)));
  EXPECT_FALSE(table.is_present(h.data()));
  EXPECT_EQ(dev.memory().live_allocations(), 0u);
}

TEST_F(MappingTest, InnerToDoesNotEraseDeviceData) {
  // Classic pattern: target data maps tofrom, inner target maps to.
  std::vector<int> h(4, 1);
  auto* d = static_cast<int*>(table.enter(map_tofrom(h.data(), 4 * sizeof(int))));
  d[0] = 42;
  h[0] = 7;
  // Inner enter with `to`: already present, refcount bump, NO transfer.
  table.enter(map_to(h.data(), 4 * sizeof(int)));
  EXPECT_EQ(d[0], 42) << "present-table hit must not re-copy";
  table.exit(map_to(h.data(), 4 * sizeof(int)));
  EXPECT_EQ(d[0], 42);
  table.exit(map_tofrom(h.data(), 4 * sizeof(int)));
  EXPECT_EQ(h[0], 42);  // final release copies back
}

TEST_F(MappingTest, AlwaysModifierForcesTransfer) {
  std::vector<int> h(4, 1);
  auto* d = static_cast<int*>(table.enter(map_tofrom(h.data(), 4 * sizeof(int))));
  h[0] = 33;
  Map m = map_to(h.data(), 4 * sizeof(int));
  m.always = true;
  table.enter(m);
  EXPECT_EQ(d[0], 33);
  table.exit(m);
  table.exit(map_tofrom(h.data(), 4 * sizeof(int)));
}

TEST_F(MappingTest, InteriorRangeResolvesIntoContainingMap) {
  std::vector<double> h(100, 0.0);
  table.enter(map_tofrom(h.data(), 100 * sizeof(double)));
  // A sub-range maps as a present-table hit.
  void* d_mid = table.enter(map_to(h.data() + 10, 5 * sizeof(double)));
  void* d_base = table.translate(h.data());
  EXPECT_EQ(static_cast<char*>(d_mid) - static_cast<char*>(d_base),
            static_cast<std::ptrdiff_t>(10 * sizeof(double)));
  table.exit(map_to(h.data() + 10, 5 * sizeof(double)));
  table.exit(map_tofrom(h.data(), 100 * sizeof(double)));
}

TEST_F(MappingTest, UpdateToFromWithoutRefcountChange) {
  std::vector<int> h(4, 5);
  auto* d = static_cast<int*>(table.enter(map_tofrom(h.data(), 4 * sizeof(int))));
  h[1] = 77;
  table.update_to(h.data(), 4 * sizeof(int));
  EXPECT_EQ(d[1], 77);
  d[2] = 88;
  table.update_from(h.data(), 4 * sizeof(int));
  EXPECT_EQ(h[2], 88);
  EXPECT_EQ(table.ref_count(h.data()), 1u);
  table.exit(map_tofrom(h.data(), 4 * sizeof(int)));
}

TEST_F(MappingTest, UpdateUnmappedThrows) {
  int x = 0;
  EXPECT_THROW(table.update_to(&x, sizeof(x)), std::runtime_error);
  EXPECT_THROW(table.update_from(&x, sizeof(x)), std::runtime_error);
}

TEST_F(MappingTest, ExitUnmappedThrows) {
  int x = 0;
  EXPECT_THROW(table.exit(map_to(&x, sizeof(x))), std::runtime_error);
}

TEST_F(MappingTest, PartialOverlapRejected) {
  std::vector<int> h(10, 0);
  table.enter(map_to(h.data() + 2, 4 * sizeof(int)));
  // New range straddles the existing mapping's start: OpenMP error.
  EXPECT_THROW(table.enter(map_to(h.data(), 4 * sizeof(int))),
               std::runtime_error);
  table.exit(map_to(h.data() + 2, 4 * sizeof(int)));
}

TEST_F(MappingTest, ReleaseDropsRegardlessOfCount) {
  std::vector<int> h(4, 0);
  table.enter(map_to(h.data(), 4 * sizeof(int)));
  table.enter(map_to(h.data(), 4 * sizeof(int)));
  table.release(h.data());
  EXPECT_FALSE(table.is_present(h.data()));
}

TEST_F(MappingTest, TranslateAbsentReturnsNull) {
  int x;
  EXPECT_EQ(table.translate(&x), nullptr);
}

TEST_F(MappingTest, FromPersistsAcrossSharedMappings) {
  // First mapping asks only `to`, second asks `from`: the copy-back
  // obligation must survive until the final release.
  std::vector<int> h(4, 1);
  auto* d = static_cast<int*>(table.enter(map_to(h.data(), 4 * sizeof(int))));
  table.enter(map_from(h.data(), 4 * sizeof(int)));
  d[3] = 1234;
  table.exit(map_to(h.data(), 4 * sizeof(int)));
  EXPECT_EQ(h[3], 1);  // not yet
  table.exit(map_from(h.data(), 4 * sizeof(int)));
  EXPECT_EQ(h[3], 1234);
}

}  // namespace
