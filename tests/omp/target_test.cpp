// Target-construct layer: SPMD loops, reductions, generic-mode state
// machine, globalization accounting, nowait tasks, and the documented
// LLVM quirks the paper's evaluation hinges on.
#include "omp/omp.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace {

using namespace omp;

simt::Device& dev() { return simt::sim_a100(); }

TEST(Target, SpmdLoopCoversEveryIterationOnce) {
  constexpr std::int64_t n = 100000;
  std::vector<int> a(n, 1), b(n, 0);
  TargetClauses c;
  c.name = "spmd_loop";
  c.maps = {map_to(a.data(), n * sizeof(int)),
            map_from(b.data(), n * sizeof(int))};
  target_teams_distribute_parallel_for(c, n, [&](DeviceEnv& env) {
    const int* da = env.translate(a.data());
    int* db = env.translate(b.data());
    return [=](std::int64_t i) { db[i] = da[i] + static_cast<int>(i); };
  });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(b[i], 1 + i);
}

TEST(Target, SpmdRespectsExplicitShape) {
  TargetClauses c;
  c.num_teams = 7;
  c.thread_limit = 64;
  c.name = "shaped";
  std::vector<int> dummy(1, 0);
  c.maps = {map_tofrom(dummy.data(), sizeof(int))};
  dev().clear_launch_log();
  target_teams_distribute_parallel_for(c, 7 * 64, [&](DeviceEnv&) {
    return [](std::int64_t) {};
  });
  const auto rec = dev().last_launch();
  EXPECT_EQ(rec.grid.x, 7u);
  EXPECT_EQ(rec.block.x, 64u);
  EXPECT_TRUE(rec.stats.runtime_init);
  EXPECT_FALSE(rec.stats.generic_mode);
}

TEST(Target, DefaultShapeCoversLoop) {
  TargetClauses c;
  c.name = "default_shape";
  dev().clear_launch_log();
  target_teams_distribute_parallel_for(c, 1000, [&](DeviceEnv&) {
    return [](std::int64_t) {};
  });
  const auto rec = dev().last_launch();
  EXPECT_EQ(rec.block.x, static_cast<unsigned>(kDefaultThreadLimit));
  EXPECT_EQ(rec.grid.x, static_cast<unsigned>((1000 + 127) / 128));
}

TEST(Target, ReductionSumsExactly) {
  constexpr std::int64_t n = 12345;
  std::vector<double> v(n);
  for (std::int64_t i = 0; i < n; ++i) v[i] = static_cast<double>(i % 7);
  TargetClauses c;
  c.name = "reduce";
  c.maps = {map_to(v.data(), n * sizeof(double))};
  const double sum =
      target_teams_distribute_parallel_for_reduce(c, n, [&](DeviceEnv& env) {
        const double* dv = env.translate(v.data());
        return [=](std::int64_t i) { return dv[i]; };
      });
  const double expect = std::accumulate(v.begin(), v.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, expect);
}

TEST(Target, ReductionOddTeamSize) {
  TargetClauses c;
  c.thread_limit = 96;  // not a power of two
  c.num_teams = 3;
  c.name = "reduce_odd";
  const double sum = target_teams_distribute_parallel_for_reduce(
      c, 1000, [&](DeviceEnv&) { return [](std::int64_t) { return 1.0; }; });
  EXPECT_DOUBLE_EQ(sum, 1000.0);
}

TEST(Target, GenericModeParallelRegions) {
  // A team body with sequential phases and two parallel regions — the
  // state-machine path.
  constexpr int teams = 4, threads = 64;
  std::vector<int> phase1(teams * threads, 0);
  std::vector<int> phase2(teams * threads, 0);
  std::vector<int> seq(teams, 0);
  TargetClauses c;
  c.num_teams = teams;
  c.thread_limit = threads;
  c.name = "generic";
  auto* p1 = phase1.data();
  auto* p2 = phase2.data();
  auto* sq = seq.data();
  dev().clear_launch_log();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      const int t = team.team();
      sq[t] += 1;  // sequential part, runs once per team
      team.parallel(0, [=](int tid) { p1[t * threads + tid] = tid; });
      sq[t] += 1;
      team.parallel(0, [=](int tid) { p2[t * threads + tid] = 2 * tid; });
    };
  });
  for (int t = 0; t < teams; ++t) {
    EXPECT_EQ(seq[t], 2);
    for (int i = 0; i < threads; ++i) {
      ASSERT_EQ(phase1[t * threads + i], i);
      ASSERT_EQ(phase2[t * threads + i], 2 * i);
    }
  }
  const auto rec = dev().last_launch();
  EXPECT_TRUE(rec.stats.generic_mode);
  EXPECT_EQ(rec.stats.parallel_handshakes, 2u * teams);
  EXPECT_GE(rec.stats.block_barriers, 4u * teams);  // 2 per handshake + init
}

TEST(Target, GenericParallelForDistributesIterations) {
  constexpr int teams = 2, threads = 32;
  std::vector<int> hits(1000, 0);
  TargetClauses c;
  c.num_teams = teams;
  c.thread_limit = threads;
  c.name = "generic_pf";
  auto* h = hits.data();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      // Teams split the range like `distribute`.
      const std::int64_t chunk = (1000 + team.teams() - 1) / team.teams();
      const std::int64_t lb = team.team() * chunk;
      const std::int64_t ub = std::min<std::int64_t>(lb + chunk, 1000);
      team.parallel_for(lb, ub, [=](std::int64_t i) { h[i] += 1; });
    };
  });
  for (int v : hits) ASSERT_EQ(v, 1);
}

TEST(Target, GlobalizationChargedToStats) {
  TargetClauses c;
  c.num_teams = 8;
  c.thread_limit = 32;
  c.name = "globalized";
  dev().clear_launch_log();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [](TeamCtx& team) {
      auto* buf = static_cast<int*>(team.globalized(256));
      team.parallel(0, [=](int tid) { buf[tid % 64] = tid; });
    };
  });
  const auto rec = dev().last_launch();
  EXPECT_EQ(rec.stats.globalized_bytes,
            8u * 256u * kGlobalizationTrafficFactor);
}

TEST(Target, GroupprivateUsesSharedNotGlobal) {
  TargetClauses c;
  c.num_teams = 2;
  c.thread_limit = 32;
  c.name = "groupprivate";
  dev().clear_launch_log();
  std::vector<int> out(2, 0);
  auto* po = out.data();
  target_teams_generic(c, [&](DeviceEnv&) {
    return [=](TeamCtx& team) {
      auto* buf = static_cast<int*>(team.groupprivate(64 * sizeof(int)));
      const int t = team.team();
      team.parallel(0, [=](int tid) { buf[tid] = tid + 1; });
      int sum = 0;
      for (int i = 0; i < 32; ++i) sum += buf[i];
      po[t] = sum;
    };
  });
  EXPECT_EQ(out[0], 32 * 33 / 2);
  EXPECT_EQ(out[1], 32 * 33 / 2);
  EXPECT_EQ(dev().last_launch().stats.globalized_bytes, 0u);
}

TEST(Target, ThreadLimitBug32Reproduced) {
  // The Adam §4.2.5 quirk: teams sized for 256 threads, runtime launches
  // 32 per team.
  TargetClauses c;
  c.num_teams = 10;
  c.thread_limit = 256;
  c.thread_limit_bug_32 = true;
  c.name = "bug32";
  std::vector<int> hits(2560, 0);
  auto* h = hits.data();
  dev().clear_launch_log();
  target_teams_distribute_parallel_for(c, 2560, [&](DeviceEnv&) {
    return [=](std::int64_t i) { h[i] += 1; };
  });
  const auto rec = dev().last_launch();
  EXPECT_EQ(rec.grid.x, 10u);
  EXPECT_EQ(rec.block.x, 32u);  // the bug
  // Correctness is preserved — every iteration still runs once.
  for (int v : hits) ASSERT_EQ(v, 1);
}

TEST(Target, TargetDataKeepsDataResidentAcrossRegions) {
  constexpr std::int64_t n = 1024;
  std::vector<int> a(n, 0);
  simt::Device& d = dev();
  {
    TargetData data(d, {map_tofrom(a.data(), n * sizeof(int))});
    for (int pass = 0; pass < 3; ++pass) {
      TargetClauses c;
      c.name = "resident";
      c.maps = {map_tofrom(a.data(), n * sizeof(int))};  // present: no-op
      target_teams_distribute_parallel_for(c, n, [&](DeviceEnv& env) {
        int* da = env.translate(a.data());
        return [=](std::int64_t i) { da[i] += 1; };
      });
      // Host copy untouched while resident.
      EXPECT_EQ(a[0], 0);
    }
    EXPECT_EQ(mapping_for(d).ref_count(a.data()), 1u);
  }
  for (auto v : a) ASSERT_EQ(v, 3);
}

TEST(Target, NowaitRunsDeferredAndTaskwaitJoins) {
  constexpr std::int64_t n = 4096;
  std::vector<int> a(n, 1), b(n, 0);
  TargetClauses c;
  c.nowait = true;
  c.name = "nowait";
  c.maps = {map_to(a.data(), n * sizeof(int)),
            map_from(b.data(), n * sizeof(int))};
  c.depends = {dep_out(b.data())};
  target_teams_distribute_parallel_for(c, n, [&](DeviceEnv& env) {
    const int* da = env.translate(a.data());
    int* db = env.translate(b.data());
    return [=](std::int64_t i) { db[i] = 3 * da[i]; };
  });
  // Chained dependent nowait region doubling b in place on device.
  TargetClauses c2 = c;
  c2.maps = {map_tofrom(b.data(), n * sizeof(int))};
  c2.depends = {dep_inout(b.data())};
  target_teams_distribute_parallel_for(c2, n, [&](DeviceEnv& env) {
    int* db = env.translate(b.data());
    return [=](std::int64_t i) { db[i] *= 2; };
  });
  taskwait();
  for (auto v : b) ASSERT_EQ(v, 6);
}

TEST(Target, UnmappedPointerDiagnosed) {
  std::vector<int> a(16, 0);
  TargetClauses c;
  c.name = "unmapped";
  EXPECT_THROW(
      target_teams_distribute_parallel_for(c, 16, [&](DeviceEnv& env) {
        int* da = env.translate(a.data());  // never mapped
        return [=](std::int64_t i) { da[i] = 1; };
      }),
      std::runtime_error);
}

TEST(Target, TargetApisAllocCopyFree) {
  simt::Device& d = dev();
  auto* p = static_cast<int*>(target_alloc(64 * sizeof(int), d));
  std::vector<int> h(64);
  std::iota(h.begin(), h.end(), 0);
  target_memcpy(p, h.data(), 64 * sizeof(int), true, false, d);
  std::vector<int> back(64, 0);
  target_memcpy(back.data(), p, 64 * sizeof(int), false, true, d);
  EXPECT_EQ(h, back);
  target_free(p, d);
}

TEST(Target, OffloadDisabledRunsOnHost) {
  // OMP_TARGET_OFFLOAD=DISABLED semantics: the same source runs with no
  // device at all — no kernels launched, host pointers used directly.
  omp::set_offload_disabled(true);
  constexpr std::int64_t n = 1000;
  std::vector<int> a(n, 2), b(n, 0);
  dev().clear_launch_log();
  TargetClauses c;
  c.name = "host_fallback";
  c.maps = {map_to(a.data(), n * sizeof(int)),
            map_from(b.data(), n * sizeof(int))};
  target_teams_distribute_parallel_for(c, n, [&](DeviceEnv& env) {
    EXPECT_TRUE(env.host_mode());
    const int* pa = env.translate(a.data());
    int* pb = env.translate(b.data());
    EXPECT_EQ(pa, a.data());  // identity translation
    return [=](std::int64_t i) { pb[i] = 5 * pa[i]; };
  });
  const double reduced = target_teams_distribute_parallel_for_reduce(
      c, n, [&](DeviceEnv& env) {
        const int* pb = env.translate(b.data());
        return [=](std::int64_t i) { return static_cast<double>(pb[i]); };
      });
  omp::set_offload_disabled(false);
  for (int v : b) ASSERT_EQ(v, 10);
  EXPECT_DOUBLE_EQ(reduced, 10.0 * n);
  EXPECT_TRUE(dev().launch_log().empty());  // nothing ran on the device
}

TEST(Target, SpmdGlobalizedLocalCharges) {
  TargetClauses c;
  c.num_teams = 4;
  c.thread_limit = 32;
  c.name = "spmd_globalized";
  dev().clear_launch_log();
  target_teams_distribute_parallel_for(c, 128, [&](DeviceEnv&) {
    return [](std::int64_t) {
      auto buf = spmd_globalized_local(64);
      buf[0] = 1;
    };
  });
  EXPECT_EQ(dev().last_launch().stats.globalized_bytes,
            128u * 64u * kGlobalizationTrafficFactor);
}

}  // namespace
