// Constant memory (__constant__, §2.5's fourth space) and the sm_80
// warp-reduce intrinsics exposed through the kl shim.
#include "kl/kl.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace {

using namespace kl;

class KlConstantTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(klSetDevice(0), klSuccess); }
};

TEST_F(KlConstantTest, SymbolRoundTripAndKernelRead) {
  float* coeffs = nullptr;
  ASSERT_EQ(klMallocConstant(&coeffs, 16 * sizeof(float)), klSuccess);
  std::vector<float> host(16);
  std::iota(host.begin(), host.end(), 1.0f);
  ASSERT_EQ(klMemcpyToSymbol(coeffs, host.data(), 16 * sizeof(float)),
            klSuccess);

  float* out = nullptr;
  ASSERT_EQ(klMalloc(&out, 16 * sizeof(float)), klSuccess);
  KernelAttrs attrs;
  attrs.mode = simt::ExecMode::kDirect;
  attrs.name = "const_read";
  ASSERT_EQ(launch({1}, {16}, 0, nullptr, attrs,
                   [=] {
                     const auto i = threadIdx().x;
                     out[i] = 2.0f * coeffs[i];  // broadcast read
                   }),
            klSuccess);
  klDeviceSynchronize();
  for (int i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(out[i], 2.0f * (i + 1));
  klFree(out);
  ASSERT_EQ(klFreeConstant(coeffs), klSuccess);
}

TEST_F(KlConstantTest, ConstantSpaceIsCapacityLimited) {
  void* p = nullptr;
  // The constant space is 64 KiB; a 128 KiB symbol must fail.
  EXPECT_EQ(klMallocConstant(&p, 128 * 1024), klErrorMemoryAllocation);
  // Global memory happily takes the same size.
  EXPECT_EQ(klMalloc(&p, 128 * 1024), klSuccess);
  klFree(p);
}

TEST_F(KlConstantTest, ConstantAndGlobalSpacesAreDistinct) {
  void* c = nullptr;
  ASSERT_EQ(klMallocConstant(&c, 64), klSuccess);
  // A constant symbol is not a global-memory pointer: klFree rejects it.
  EXPECT_EQ(klFree(c), klErrorInvalidValue);
  EXPECT_EQ(klFreeConstant(c), klSuccess);
}

TEST_F(KlConstantTest, MemcpyToSymbolValidatesRange) {
  char* c = nullptr;
  ASSERT_EQ(klMallocConstant(&c, 32), klSuccess);
  std::vector<char> host(64, 1);
  EXPECT_EQ(klMemcpyToSymbol(c, host.data(), 64), klErrorInvalidValue);
  EXPECT_EQ(klMemcpyToSymbol(c, host.data(), 32), klSuccess);
  klFreeConstant(c);
}

class KlReduceTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { ASSERT_EQ(klSetDevice(GetParam()), klSuccess); }
};

TEST_P(KlReduceTest, ReduceAddSumsTheWarp) {
  const unsigned ws = current_device().config().warp_size;
  std::vector<long long> got(ws, -1);
  auto* pg = got.data();
  KernelAttrs attrs;
  attrs.name = "reduce_add";
  ASSERT_EQ(launch({1}, {ws}, 0, nullptr, attrs,
                   [=] {
                     const long long v = laneId() + 1;
                     pg[laneId()] = reduce_add_sync(~0ull, v);
                   }),
            klSuccess);
  klDeviceSynchronize();
  const long long expect = static_cast<long long>(ws) * (ws + 1) / 2;
  for (unsigned l = 0; l < ws; ++l)
    EXPECT_EQ(got[l], expect) << "lane " << l;  // every lane gets the sum
}

TEST_P(KlReduceTest, ReduceMinMaxWithNegatives) {
  const unsigned ws = current_device().config().warp_size;
  long long mn = 0, mx = 0;
  KernelAttrs attrs;
  attrs.name = "reduce_minmax";
  ASSERT_EQ(launch({1}, {ws}, 0, nullptr, attrs,
                   [&, ws] {
                     const long long v =
                         static_cast<long long>(laneId()) - ws / 2;
                     const long long gmin = reduce_min_sync(~0ull, v);
                     const long long gmax = reduce_max_sync(~0ull, v);
                     if (laneId() == 0) {
                       mn = gmin;
                       mx = gmax;
                     }
                   }),
            klSuccess);
  klDeviceSynchronize();
  EXPECT_EQ(mn, -static_cast<long long>(ws) / 2);
  EXPECT_EQ(mx, static_cast<long long>(ws) / 2 - 1);
}

TEST_P(KlReduceTest, ReduceOverSubsetMask) {
  const unsigned ws = current_device().config().warp_size;
  simt::LaneMask mask = 0;
  for (unsigned l = 0; l < ws; l += 4) mask |= 1ull << l;  // every 4th lane
  long long sum = -1;
  KernelAttrs attrs;
  attrs.name = "reduce_subset";
  ASSERT_EQ(launch({1}, {ws}, 0, nullptr, attrs,
                   [&, mask] {
                     if (laneId() % 4 != 0) return;
                     const long long s =
                         reduce_add_sync(mask, static_cast<long long>(laneId()));
                     if (laneId() == 0) sum = s;
                   }),
            klSuccess);
  klDeviceSynchronize();
  long long expect = 0;
  for (unsigned l = 0; l < ws; l += 4) expect += l;
  EXPECT_EQ(sum, expect);
}

INSTANTIATE_TEST_SUITE_P(BothDevices, KlReduceTest, ::testing::Values(0, 1));

}  // namespace
