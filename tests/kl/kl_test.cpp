// Tests for the CUDA/HIP-shaped kl shim: host API semantics (error
// codes, memory, streams, events) and device intrinsics.
#include "kl/kl.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace {

using namespace kl;

class KlTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(klSetDevice(0), klSuccess); }
};

TEST_F(KlTest, DeviceEnumeration) {
  int count = 0;
  ASSERT_EQ(klGetDeviceCount(&count), klSuccess);
  EXPECT_EQ(count, 2);  // sim-a100 + sim-mi250
  int dev = -1;
  ASSERT_EQ(klSetDevice(1), klSuccess);
  ASSERT_EQ(klGetDevice(&dev), klSuccess);
  EXPECT_EQ(dev, 1);
  EXPECT_EQ(current_device().config().warp_size, 64u);
  ASSERT_EQ(klSetDevice(0), klSuccess);
  EXPECT_EQ(current_device().config().warp_size, 32u);
  EXPECT_EQ(klSetDevice(5), klErrorInvalidDevice);
  EXPECT_EQ(klGetDeviceCount(nullptr), klErrorInvalidValue);
}

TEST_F(KlTest, MallocMemcpyFreeRoundTrip) {
  constexpr int n = 1000;
  std::vector<int> h_in(n);
  std::iota(h_in.begin(), h_in.end(), 0);
  std::vector<int> h_out(n, -1);
  int* d = nullptr;
  ASSERT_EQ(klMalloc(&d, n * sizeof(int)), klSuccess);
  ASSERT_EQ(klMemcpy(d, h_in.data(), n * sizeof(int), klMemcpyHostToDevice),
            klSuccess);
  ASSERT_EQ(klMemcpy(h_out.data(), d, n * sizeof(int), klMemcpyDeviceToHost),
            klSuccess);
  EXPECT_EQ(h_in, h_out);
  ASSERT_EQ(klFree(d), klSuccess);
}

TEST_F(KlTest, ErrorCodesAndLastError) {
  EXPECT_EQ(klFree(reinterpret_cast<void*>(0x1234)), klErrorInvalidValue);
  EXPECT_EQ(klPeekAtLastError(), klErrorInvalidValue);
  EXPECT_EQ(klGetLastError(), klErrorInvalidValue);  // consumed
  EXPECT_EQ(klGetLastError(), klSuccess);
  EXPECT_STREQ(klGetErrorString(klErrorMemoryAllocation),
               "klErrorMemoryAllocation");
}

TEST_F(KlTest, VectorAddEndToEnd) {
  // The Figure 1 CUDA program, in kl form.
  constexpr int n = 100000;
  std::vector<int> h_a(n), h_b(n, 0);
  std::iota(h_a.begin(), h_a.end(), 1);
  int *d_a = nullptr, *d_b = nullptr;
  ASSERT_EQ(klMalloc(&d_a, n * sizeof(int)), klSuccess);
  ASSERT_EQ(klMalloc(&d_b, n * sizeof(int)), klSuccess);
  ASSERT_EQ(klMemcpy(d_a, h_a.data(), n * sizeof(int), klMemcpyHostToDevice),
            klSuccess);
  const int bsize = 128;
  const int gsize = (n + bsize - 1) / bsize;
  KernelAttrs attrs;
  attrs.name = "vecdouble";
  attrs.mode = simt::ExecMode::kDirect;
  ASSERT_EQ(launch({static_cast<unsigned>(gsize)},
                   {static_cast<unsigned>(bsize)}, 0, nullptr, attrs,
                   [=] {
                     const auto idx = static_cast<int>(global_thread_id_x());
                     if (idx < n) d_b[idx] = 2 * d_a[idx];
                   }),
            klSuccess);
  ASSERT_EQ(klDeviceSynchronize(), klSuccess);
  ASSERT_EQ(klMemcpy(h_b.data(), d_b, n * sizeof(int), klMemcpyDeviceToHost),
            klSuccess);
  for (int i = 0; i < n; ++i) ASSERT_EQ(h_b[i], 2 * (i + 1));
  klFree(d_a);
  klFree(d_b);
}

TEST_F(KlTest, SharedMemoryStencilPattern) {
  // The canonical shared-memory tile with halo, as in the Stencil-1D
  // tutorial kernel the paper ports.
  constexpr int n = 4096, radius = 3, bsize = 256;
  std::vector<int> h_in(n + 2 * radius, 1), h_out(n, 0);
  int *d_in = nullptr, *d_out = nullptr;
  ASSERT_EQ(klMalloc(&d_in, h_in.size() * sizeof(int)), klSuccess);
  ASSERT_EQ(klMalloc(&d_out, n * sizeof(int)), klSuccess);
  klMemcpy(d_in, h_in.data(), h_in.size() * sizeof(int), klMemcpyHostToDevice);
  KernelAttrs attrs;
  attrs.name = "stencil";
  ASSERT_EQ(
      launch({n / bsize}, {bsize}, 0, nullptr, attrs,
             [=] {
               int* tile = shared_array<int>(bsize + 2 * radius);
               const int g =
                   static_cast<int>(global_thread_id_x()) + radius;
               const int l = static_cast<int>(threadIdx().x) + radius;
               tile[l] = d_in[g];
               if (threadIdx().x < radius) {
                 tile[l - radius] = d_in[g - radius];
                 tile[l + bsize] = d_in[g + bsize];
               }
               syncthreads();
               int acc = 0;
               for (int o = -radius; o <= radius; ++o) acc += tile[l + o];
               d_out[g - radius] = acc;
             }),
      klSuccess);
  klDeviceSynchronize();
  klMemcpy(h_out.data(), d_out, n * sizeof(int), klMemcpyDeviceToHost);
  for (int i = 0; i < n; ++i) ASSERT_EQ(h_out[i], 2 * radius + 1);
  klFree(d_in);
  klFree(d_out);
}

TEST_F(KlTest, WarpShuffleReduction) {
  constexpr int n = 32 * 8;
  std::vector<double> warp_sums(8, 0.0);
  double* sums = warp_sums.data();
  KernelAttrs attrs;
  attrs.name = "warp_reduce";
  ASSERT_EQ(launch({1}, {n}, 0, nullptr, attrs,
                   [=] {
                     double v = 1.0;
                     for (unsigned d = warpSize() / 2; d > 0; d /= 2)
                       v += shfl_down_sync(~0ull, v, d);
                     if (laneId() == 0)
                       sums[simt::this_thread().warp_id] = v;
                   }),
            klSuccess);
  ASSERT_EQ(klDeviceSynchronize(), klSuccess);
  for (double s : warp_sums) EXPECT_DOUBLE_EQ(s, 32.0);
}

TEST_F(KlTest, EventsMeasureModeledTime) {
  klEvent_t start = nullptr, stop = nullptr;
  ASSERT_EQ(klEventCreate(&start), klSuccess);
  ASSERT_EQ(klEventCreate(&stop), klSuccess);
  KernelAttrs attrs;
  attrs.name = "timed";
  attrs.cost.global_bytes_per_thread = 1024;
  attrs.mode = simt::ExecMode::kDirect;
  ASSERT_EQ(klEventRecord(start), klSuccess);
  ASSERT_EQ(launch({256}, {256}, 0, nullptr, attrs, [] {}), klSuccess);
  ASSERT_EQ(klEventRecord(stop), klSuccess);
  ASSERT_EQ(klEventSynchronize(stop), klSuccess);
  float ms = -1.0f;
  ASSERT_EQ(klEventElapsedTime(&ms, start, stop), klSuccess);
  EXPECT_GT(ms, 0.0f);
}

TEST_F(KlTest, EventElapsedBeforeRecordIsNotReady) {
  klEvent_t start = nullptr, stop = nullptr;
  klEventCreate(&start);
  klEventCreate(&stop);
  float ms = 0;
  EXPECT_EQ(klEventElapsedTime(&ms, start, stop), klErrorNotReady);
}

TEST_F(KlTest, StreamsOverlapKernels) {
  klStream_t s1 = nullptr, s2 = nullptr;
  ASSERT_EQ(klStreamCreate(&s1), klSuccess);
  ASSERT_EQ(klStreamCreate(&s2), klSuccess);
  std::atomic<int> count{0};
  KernelAttrs attrs;
  attrs.mode = simt::ExecMode::kDirect;
  for (int i = 0; i < 4; ++i) {
    launch({4}, {64}, 0, s1, attrs, [&] { count.fetch_add(1); });
    launch({4}, {64}, 0, s2, attrs, [&] { count.fetch_add(1); });
  }
  ASSERT_EQ(klStreamSynchronize(s1), klSuccess);
  ASSERT_EQ(klStreamSynchronize(s2), klSuccess);
  EXPECT_EQ(count.load(), 8 * 4 * 64);
}

TEST_F(KlTest, LaunchFailureReportsThroughLastError) {
  KernelAttrs attrs;
  // Block larger than device max -> validation failure.
  EXPECT_EQ(launch({1}, {4096}, 0, nullptr, attrs, [] {}),
            klErrorInvalidValue);
  EXPECT_NE(std::string(klGetLastErrorDetail()).find("max_threads_per_block"),
            std::string::npos);
}

TEST_F(KlTest, SetKernelExecHintRegistersAndValidates) {
  EXPECT_EQ(klSetKernelExecHint(nullptr, 1, 0), klErrorInvalidValue);
  ASSERT_EQ(klSetKernelExecHint("kl_exec_kernel", 1, 0), klSuccess);
  EXPECT_TRUE(simt::exec_hint("kl_exec_kernel").convergent);
  EXPECT_FALSE(simt::exec_hint("kl_exec_kernel").needs_fibers);
  ASSERT_EQ(klSetKernelExecHint("kl_exec_kernel", 0, 1), klSuccess);
  EXPECT_TRUE(simt::exec_hint("kl_exec_kernel").needs_fibers);
  simt::clear_exec_hints();
  EXPECT_FALSE(simt::exec_hint("kl_exec_kernel").convergent);
}

TEST_F(KlTest, HipShapedDeviceRunsSameSource) {
  // The dual-vendor claim in miniature: identical kl source on device 1.
  ASSERT_EQ(klSetDevice(1), klSuccess);
  constexpr int n = 1 << 14;
  std::vector<float> h(n, 2.0f);
  float* d = nullptr;
  ASSERT_EQ(klMalloc(&d, n * sizeof(float)), klSuccess);
  klMemcpy(d, h.data(), n * sizeof(float), klMemcpyHostToDevice);
  KernelAttrs attrs;
  attrs.mode = simt::ExecMode::kDirect;
  launch({n / 256}, {256}, 0, nullptr, attrs, [=] {
    const auto i = global_thread_id_x();
    d[i] *= 3.0f;
  });
  klDeviceSynchronize();
  klMemcpy(h.data(), d, n * sizeof(float), klMemcpyDeviceToHost);
  for (float v : h) ASSERT_FLOAT_EQ(v, 6.0f);
  klFree(d);
  // Warp-size difference is visible to kernels:
  unsigned ws = 0;
  launch({1}, {1}, 0, nullptr, attrs, [&] { ws = warpSize(); });
  klDeviceSynchronize();
  EXPECT_EQ(ws, 64u);
}

}  // namespace
