// Streams and the extended depend clause (paper §3.5, Figure 5).
//
// Four independent SAXPY pipelines, each dispatched into its own
// stream through an interop object:
//
//   omp_interop_t obj = omp_interop_none;
//   #pragma omp interop init(targetsync: obj)
//   #pragma omp target teams ompx_bare nowait depend(interopobj: obj)
//   { ... }
//   #pragma omp taskwait depend(interopobj: obj)
//
// Build & run:  ./saxpy_interop
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ompx.h"

namespace {

constexpr int kPipelines = 4;
constexpr int kN = 1 << 16;
constexpr int kSteps = 6;

}  // namespace

int main() {
  simt::Device& dev = ompx::default_device();

  // One interop object (= one stream) per pipeline:
  //   #pragma omp interop init(targetsync: obj) — §3.5 / OpenMP 5.1.
  std::vector<omp::Interop> objs;
  for (int p = 0; p < kPipelines; ++p)
    objs.push_back(omp::interop_init_targetsync(dev));

  // Device data per pipeline.
  std::vector<float*> xs(kPipelines), ys(kPipelines);
  std::vector<float> host(kN, 1.0f);
  for (int p = 0; p < kPipelines; ++p) {
    xs[p] = ompx::malloc_n<float>(kN);
    ys[p] = ompx::malloc_n<float>(kN);
    OMPX_CHECK(ompx_memcpy(xs[p], host.data(), kN * sizeof(float)));
    OMPX_CHECK(ompx_memcpy(ys[p], host.data(), kN * sizeof(float)));
  }

  const double t0 = dev.modeled_now_ms();

  // Each pipeline chains kSteps dependent SAXPY kernels in its stream;
  // the four streams are independent and overlap on the device.
  for (int step = 0; step < kSteps; ++step) {
    for (int p = 0; p < kPipelines; ++p) {
      ompx::LaunchSpec spec;
      spec.num_teams = {kN / 256};
      spec.thread_limit = {256};
      spec.nowait = true;                 // nowait
      spec.depend_interop = &objs[p];     // depend(interopobj: obj)
      spec.mode = simt::ExecMode::kDirect;
      spec.name = "saxpy";
      spec.cost.global_bytes_per_thread = 12;
      spec.cost.flops_per_thread = 2;
      float* x = xs[p];
      float* y = ys[p];
      const float a = 0.5f + 0.25f * static_cast<float>(p);
      ompx::launch(spec, [=] {
        const std::int64_t i = ompx::global_thread_id();
        y[i] = a * x[i] + y[i];
      });
    }
  }

  // #pragma omp taskwait depend(interopobj: obj) — per-stream sync.
  for (auto& obj : objs) ompx::taskwait(obj);
  const double elapsed = dev.modeled_now_ms() - t0;

  // Verify: y = 1 + steps * a (x stays 1).
  for (int p = 0; p < kPipelines; ++p) {
    std::vector<float> out(kN);
    OMPX_CHECK(ompx_memcpy(out.data(), ys[p], kN * sizeof(float)));
    const float expect = 1.0f + kSteps * (0.5f + 0.25f * static_cast<float>(p));
    for (int i = 0; i < kN; ++i) {
      if (out[i] != expect) {
        std::fprintf(stderr, "pipeline %d MISMATCH: %f != %f\n", p, out[i],
                     expect);
        return EXIT_FAILURE;
      }
    }
  }

  std::printf("saxpy_interop: OK — %d pipelines x %d kernels overlapped "
              "across %d interop streams\n",
              kPipelines, kSteps, kPipelines);
  std::printf("modeled device time %.3f ms (a single stream would serialize "
              "to ~%.3f ms)\n",
              elapsed, elapsed * kPipelines);

  for (int p = 0; p < kPipelines; ++p) {
    OMPX_CHECK(ompx_free(xs[p]));
    OMPX_CHECK(ompx_free(ys[p]));
    omp::interop_destroy(objs[p]);
  }
  return EXIT_SUCCESS;
}
