// 2-D heat diffusion with multi-dimensional teams (paper §3.2).
//
// A Jacobi sweep over a 2-D grid written exactly like a dim3-based CUDA
// kernel: num_teams(gx, gy), thread_limit(16, 16), 2-D indexing through
// the ompx APIs, and a groupprivate tile staged per team. Compares the
// result against a host reference and reports the modeled time split.
//
// Build & run:  ./heat2d [nx ny steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ompx.h"

namespace {

constexpr int kTile = 16;

/// One Jacobi step on the host (reference).
void host_step(const std::vector<float>& in, std::vector<float>& out, int nx,
               int ny) {
  for (int y = 1; y < ny - 1; ++y)
    for (int x = 1; x < nx - 1; ++x)
      out[y * nx + x] = 0.25f * (in[y * nx + x - 1] + in[y * nx + x + 1] +
                                 in[(y - 1) * nx + x] + in[(y + 1) * nx + x]);
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 512;
  const int ny = argc > 2 ? std::atoi(argv[2]) : 256;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 4;
  if (nx % kTile != 0 || ny % kTile != 0) {
    std::fprintf(stderr, "nx and ny must be multiples of %d\n", kTile);
    return EXIT_FAILURE;
  }

  // Hot spot in the middle, cold boundary.
  std::vector<float> host(static_cast<std::size_t>(nx) * ny, 0.0f);
  for (int y = ny / 4; y < 3 * ny / 4; ++y)
    for (int x = nx / 4; x < 3 * nx / 4; ++x) host[y * nx + x] = 100.0f;

  simt::Device& dev = ompx::default_device();
  auto* a = ompx::malloc_n<float>(host.size());
  auto* b = ompx::malloc_n<float>(host.size());
  OMPX_CHECK(ompx_memcpy(a, host.data(), host.size() * sizeof(float)));
  OMPX_CHECK(ompx_memcpy(b, host.data(), host.size() * sizeof(float)));
  dev.clear_launch_log();

  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(nx / kTile),
                    static_cast<unsigned>(ny / kTile)};   // 2-D grid (§3.2)
  spec.thread_limit = {kTile, kTile};                     // 2-D block
  spec.name = "heat2d_jacobi";
  spec.cost.flops_per_thread = 4;
  spec.cost.global_bytes_per_thread = 8;  // tile-staged reads + 1 write
  spec.cost.shared_bytes_per_thread = 5 * 4;

  float* src = a;
  float* dst = b;
  for (int s = 0; s < steps; ++s) {
    const float* in = src;
    float* out = dst;
    ompx::launch(spec, [=] {
      // (kTile+2)^2 tile with halo, staged by the 16x16 team.
      float* tile = ompx::groupprivate<float>((kTile + 2) * (kTile + 2));
      const int tx = ompx_thread_id_x(), ty = ompx_thread_id_y();
      const int gx = ompx_block_id_x() * kTile + tx;
      const int gy = ompx_block_id_y() * kTile + ty;
      auto tile_at = [&](int lx, int ly) -> float& {
        return tile[(ly + 1) * (kTile + 2) + (lx + 1)];
      };
      auto src_at = [&](int x, int y) {
        x = std::min(std::max(x, 0), nx - 1);
        y = std::min(std::max(y, 0), ny - 1);
        return in[y * nx + x];
      };
      tile_at(tx, ty) = src_at(gx, gy);
      if (tx == 0) tile_at(-1, ty) = src_at(gx - 1, gy);
      if (tx == kTile - 1) tile_at(kTile, ty) = src_at(gx + 1, gy);
      if (ty == 0) tile_at(tx, -1) = src_at(gx, gy - 1);
      if (ty == kTile - 1) tile_at(tx, kTile) = src_at(gx, gy + 1);
      ompx_sync_thread_block();
      if (gx > 0 && gx < nx - 1 && gy > 0 && gy < ny - 1)
        out[gy * nx + gx] =
            0.25f * (tile_at(tx - 1, ty) + tile_at(tx + 1, ty) +
                     tile_at(tx, ty - 1) + tile_at(tx, ty + 1));
    });
    std::swap(src, dst);
  }

  std::vector<float> result(host.size());
  OMPX_CHECK(ompx_memcpy(result.data(), src, result.size() * sizeof(float)));

  // Host reference.
  std::vector<float> ra = host, rb = host;
  for (int s = 0; s < steps; ++s) {
    host_step(ra, rb, nx, ny);
    std::swap(ra, rb);
  }
  double max_err = 0.0;
  for (std::size_t i = 0; i < result.size(); ++i)
    max_err = std::max(max_err, std::fabs(static_cast<double>(result[i]) -
                                          ra[i]));
  const auto rec = ompx::launch_record(&dev);
  std::printf("heat2d: %dx%d grid, %d Jacobi steps on %s — max |err| = %.3g\n",
              nx, ny, steps, dev.config().name.c_str(), max_err);
  std::printf("per-step modeled: %.3f us (memory %.3f, shared %.3f, "
              "overhead %.3f; occupancy %.0f%%)\n",
              rec.time.total_ms * 1e3, rec.time.memory_ms * 1e3,
              rec.time.shared_ms * 1e3, rec.time.overhead_ms * 1e3,
              rec.time.occupancy * 100.0);
  OMPX_CHECK(ompx_free(a));
  OMPX_CHECK(ompx_free(b));
  return max_err < 1e-4 ? EXIT_SUCCESS : EXIT_FAILURE;
}
