// ompx_lint — the static side of ompxsan as a standalone tool.
//
//   ./ompx_lint kernel.cpp [more.cpp ...]
//   ./ompx_lint --no-unported ported/*.cpp   # divergence/sync rules only
//   ./ompx_lint --analyze src/apps/*/*.cpp   # + per-kernel exec verdicts
//   ./ompx_lint --analyze --json=out.sarif src/apps/*/*.cpp  # SARIF for CI
//
// Lints each file for barrier-divergence hazards (path-sensitive, on a
// real CFG since the ompx-analyze rework), barrier-count mismatches,
// unsynced shared-memory reads, unported CUDA builtins, and C-ABI
// contract violations (unchecked ompx_result_t, two-call enumeration)
// — see rewrite/lint.h and rewrite/analyze.h. `--analyze` additionally
// prints one exec verdict per kernel region (convergent / atomics
// inline-safe / needs fibers); `--json[=path]` writes the findings and
// verdicts as a SARIF 2.1.0 document. Exits 1 if any finding survives
// the per-line `ompx-lint-allow(<rule>)` suppressions, 0 on a clean
// run. CI runs this over the six app ports, bench/, and examples/.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rewrite/analyze.h"
#include "rewrite/lint.h"

int main(int argc, char** argv) {
  rewrite::LintOptions opt;
  bool analyze = false;
  bool json = false;
  std::string json_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-unported") == 0)
      opt.check_unported = false;
    else if (std::strcmp(argv[i], "--no-divergent-sync") == 0)
      opt.check_divergent_sync = false;
    else if (std::strcmp(argv[i], "--no-shared-sync") == 0)
      opt.check_shared_sync = false;
    else if (std::strcmp(argv[i], "--no-contract") == 0)
      opt.check_contract = false;
    else if (std::strcmp(argv[i], "--analyze") == 0)
      analyze = true;
    else if (std::strncmp(argv[i], "--json", 6) == 0) {
      json = true;
      if (argv[i][6] == '=') json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--analyze] [--json[=path]] [--no-unported] "
                   "[--no-divergent-sync] [--no-shared-sync] "
                   "[--no-contract] file [file ...]\n",
                   argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "ompx_lint: no input files (see --help)\n");
    return 2;
  }

  std::size_t total = 0;
  std::vector<std::pair<std::string, rewrite::AnalysisResult>> results;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "ompx_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (analyze || json) {
      rewrite::AnalyzeOptions aopt;
      aopt.check_divergent_sync = opt.check_divergent_sync;
      aopt.check_shared_sync = opt.check_shared_sync;
      aopt.check_contract = opt.check_contract;
      rewrite::AnalysisResult r = rewrite::analyze_source(text.str(), aopt);
      if (opt.check_unported) {
        // The unported scan lives in lint_source; merge its findings so
        // --analyze covers the full rule family.
        rewrite::LintOptions uopt;
        uopt.check_divergent_sync = false;
        uopt.check_shared_sync = false;
        uopt.check_contract = false;
        uopt.check_unported = true;
        for (auto& f : rewrite::lint_source(text.str(), uopt))
          r.findings.push_back(std::move(f));
      }
      total += r.findings.size();
      if (analyze)
        std::fputs(rewrite::format_analysis(r, path).c_str(), stdout);
      results.emplace_back(path, std::move(r));
    } else {
      const auto findings = rewrite::lint_source(text.str(), opt);
      total += findings.size();
      std::fputs(rewrite::format_lint(findings, path).c_str(), stdout);
    }
  }
  if (json) {
    const std::string sarif = rewrite::analysis_to_sarif(results);
    if (json_path.empty()) {
      std::fputs(sarif.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "ompx_lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << sarif;
    }
  }
  std::printf("ompx_lint: %zu finding(s) in %zu file(s)\n", total,
              files.size());
  return total == 0 ? 0 : 1;
}
