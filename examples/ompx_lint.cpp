// ompx_lint — the static side of ompxsan as a standalone tool.
//
//   ./ompx_lint kernel.cpp [more.cpp ...]
//   ./ompx_lint --no-unported ported/*.cpp   # divergence/sync rules only
//
// Lints each file for barrier-divergence hazards, unsynced
// shared-memory reads, and unported CUDA builtins (see
// rewrite/lint.h). Exits 1 if any finding survives the per-line
// `ompx-lint-allow` suppressions, 0 on a clean run. CI runs this over
// the six app ports.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rewrite/lint.h"

int main(int argc, char** argv) {
  rewrite::LintOptions opt;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-unported") == 0)
      opt.check_unported = false;
    else if (std::strcmp(argv[i], "--no-divergent-sync") == 0)
      opt.check_divergent_sync = false;
    else if (std::strcmp(argv[i], "--no-shared-sync") == 0)
      opt.check_shared_sync = false;
    else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: %s [--no-unported] [--no-divergent-sync] "
                   "[--no-shared-sync] file [file ...]\n",
                   argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "ompx_lint: no input files (see --help)\n");
    return 2;
  }

  std::size_t total = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "ompx_lint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto findings = rewrite::lint_source(text.str(), opt);
    total += findings.size();
    std::fputs(rewrite::format_lint(findings, path).c_str(), stdout);
  }
  std::printf("ompx_lint: %zu finding(s) in %zu file(s)\n", total,
              files.size());
  return total == 0 ? 0 : 1;
}
