// CLI runner for the six ported HeCBench applications — the
// reproduction's equivalent of invoking each benchmark binary.
//
//   ./run_benchmark                                 # list apps
//   ./run_benchmark XSBench                         # all versions, both devices
//   ./run_benchmark Adam ompx sim-mi250             # one cell
//   ./run_benchmark Adam ompx sim-a100 10000 200 100  # paper CLI (scaled)
//
// `--trace[=path]` (anywhere on the line) captures launch telemetry for
// the run and writes a Chrome trace-event JSON on exit.
// `--san[=checks]` runs the sanitizer for the whole invocation and
// prints the "ompxsan: N error(s)" report to stderr on exit.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/cli.h"
#include "apps/harness.h"
#include "core/ompx.h"

namespace {

void list_apps() {
  std::printf("available benchmarks:\n");
  for (const auto& a : apps::registry())
    std::printf("  %-12s %s (paper CLI: %s)\n", a.name.c_str(),
                a.description.c_str(), a.paper_cli.c_str());
  std::printf("\nversions: ompx omp native native-vendor\n");
  std::printf("devices : sim-a100 sim-mi250\n");
}

bool parse_version(const std::string& s, apps::Version* out) {
  if (s == "ompx") *out = apps::Version::kOmpx;
  else if (s == "omp") *out = apps::Version::kOmp;
  else if (s == "native" || s == "cuda" || s == "hip")
    *out = apps::Version::kNative;
  else if (s == "native-vendor" || s == "cuda-nvcc" || s == "hip-hipcc")
    *out = apps::Version::kNativeVendor;
  else return false;
  return true;
}

void print_row(const apps::RunResult& r) {
  if (r.valid) {
    std::printf("  %-10s %-10s kernel %10.4f ms  wall %8.1f ms  ok "
                "(checksum %016llx)\n",
                r.device.c_str(), r.version.c_str(), r.kernel_ms, r.wall_ms,
                static_cast<unsigned long long>(r.checksum));
  } else {
    std::printf("  %-10s %-10s kernel %10s     wall %8.1f ms  INVALID %s\n",
                r.device.c_str(), r.version.c_str(), "-", r.wall_ms,
                r.note.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --trace[=path] / --san[=checks] before positional parsing;
  // the RAII guards dump the trace and the sanitizer report whenever
  // main returns.
  std::string trace_path;
  std::uint32_t san_checks = 0;
  {
    std::vector<char*> kept;
    for (int i = 0; i < argc; ++i) {
      const std::string arg = argv[i];
      if (i > 0 && arg == "--trace")
        trace_path = "run_benchmark_trace.json";
      else if (i > 0 && arg.rfind("--trace=", 0) == 0)
        trace_path = arg.substr(8);
      else if (i > 0 && arg == "--san")
        san_checks = simt::kSanAll;
      else if (i > 0 && arg.rfind("--san=", 0) == 0)
        san_checks = simt::San::parse_checks(arg.substr(6).c_str());
      else
        kept.push_back(argv[i]);
    }
    argc = static_cast<int>(kept.size());
    std::copy(kept.begin(), kept.end(), argv);
  }
  std::unique_ptr<ompx::Profiler> profiler;
  if (!trace_path.empty()) {
    profiler = std::make_unique<ompx::Profiler>(trace_path);
    std::fprintf(stderr, "tracing launches to %s\n", trace_path.c_str());
  }
  std::unique_ptr<ompx::San> san;
  if (san_checks != 0) san = std::make_unique<ompx::San>(san_checks);

  if (argc < 2) {
    list_apps();
    return 0;
  }
  const apps::AppDesc* app = nullptr;
  for (const auto& a : apps::registry())
    if (a.name == argv[1]) app = &a;
  if (app == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n\n", argv[1]);
    list_apps();
    return 1;
  }

  std::printf("%s — %s\nscaled parameters: %s\n\n", app->name.c_str(),
              app->description.c_str(), app->scaled_params.c_str());

  if (argc >= 4) {
    apps::Version v;
    if (!parse_version(argv[2], &v)) {
      std::fprintf(stderr, "unknown version '%s'\n", argv[2]);
      return 1;
    }
    simt::Device& dev = simt::device_by_name(argv[3]);
    if (argc > 4) {
      // Remaining arguments are the benchmark's own (paper) CLI,
      // parsed per app and scaled for the CPU-hosted engine.
      const apps::cli::Args extra(argv + 4, argv + argc);
      apps::RunResult r;
      if (app->name == "XSBench")
        r = apps::xsbench::run(v, dev, apps::cli::parse_xsbench(extra));
      else if (app->name == "RSBench")
        r = apps::rsbench::run(v, dev, apps::cli::parse_rsbench(extra));
      else if (app->name == "SU3")
        r = apps::su3::run(v, dev, apps::cli::parse_su3(extra));
      else if (app->name == "AIDW")
        r = apps::aidw::run(v, dev, apps::cli::parse_aidw(extra));
      else if (app->name == "Adam")
        r = apps::adam::run(v, dev, apps::cli::parse_adam(extra));
      else
        r = apps::stencil1d::run(v, dev, apps::cli::parse_stencil1d(extra));
      r.version = apps::bar_label(v, dev);
      r.device = dev.config().name;
      print_row(r);
      return r.valid || v == apps::Version::kOmp ? 0 : 2;
    }
    print_row(apps::run_cell(*app, v, dev));
    return 0;
  }

  for (simt::Device* dev : simt::device_registry())
    for (apps::Version v :
         {apps::Version::kOmpx, apps::Version::kOmp, apps::Version::kNative,
          apps::Version::kNativeVendor})
      print_row(apps::run_cell(*app, v, *dev));
  return 0;
}
