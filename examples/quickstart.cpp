// Quickstart: the paper's Figure 1 CUDA program ported to the OpenMP
// kernel language — the "porting by text replacement" story.
//
//   CUDA (Figure 1)                      ompx (this file)
//   ---------------                      ----------------
//   __global__ void kernel(...)          a lambda passed to ompx::launch
//   __shared__ int shared[128];          ompx::groupprivate<int>(128)
//   threadIdx.x                          ompx_thread_id_x()
//   blockIdx.x * blockDim.x + tid        ompx_block_id_x() * ompx_block_dim_x() + tid
//   __syncthreads()                      ompx_sync_thread_block()
//   cudaMalloc(&d_a, size)               d_a = ompx_malloc(size)
//   cudaMemcpy(d_a, h_a, size, H2D)      ompx_memcpy(d_a, h_a, size)
//   kernel<<<gsize, bsize>>>(...)        ompx::launch(spec, [=]{...})
//   cudaDeviceSynchronize()              launch(...).wait() or ompx_device_synchronize()
//   cudaFree(d_a)                        ompx_free(d_a)
//
// Build & run:  ./quickstart
#include <cstdio>
#include <cstdlib>

#include "core/ompx.h"

namespace {

// The __device__ helper from Figure 1: no annotation needed — any
// function reachable from the kernel body just works.
int use(int& a, int& b) { return a + b; }

}  // namespace

int main() {
  constexpr int n = 100000;
  constexpr std::size_t size = n * sizeof(int);

  // Allocate host memory for input and output.
  int* h_a = new int[n];
  int* h_b = new int[n];
  for (int i = 0; i < n; ++i) h_a[i] = i;

  // Allocate device memory for the input and output (§3.4 host APIs).
  int* d_a = static_cast<int*>(ompx_malloc(size));
  int* d_b = static_cast<int*>(ompx_malloc(size));

  // Copy inputs to device (direction inferred, like cudaMemcpyDefault).
  OMPX_CHECK(ompx_memcpy(d_a, h_a, size));

  // Set up grid size (launch parameters), exactly as in Figure 1.
  const int bsize = 128;
  const int gsize = (n + bsize - 1) / bsize;

  // Launch the kernel: #pragma omp target teams ompx_bare
  //                        num_teams(gsize) thread_limit(bsize)
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(gsize)};
  spec.thread_limit = {static_cast<unsigned>(bsize)};
  spec.name = "quickstart_kernel";
  spec.cost.global_bytes_per_thread = 8;
  ompx::launch(spec, [=] {
    // __shared__ int shared[128];
    int* shared = ompx::groupprivate<int>(bsize);

    const int tid = ompx_thread_id_x();
    if (tid == 0) {
      for (int i = 0; i < bsize; ++i) shared[i] = 1000 + i;  // initialize
    }
    ompx_sync_thread_block();

    const int idx = ompx_block_id_x() * ompx_block_dim_x() + tid;
    if (idx < n) d_b[idx] = use(d_a[idx], shared[tid]);
  });

  // Copy output back to host. Launches are asynchronous (the call above
  // returned a ticket), but ompx_memcpy follows CUDA's legacy-stream
  // rule: it synchronizes the device before copying, so no explicit
  // wait is needed here.
  OMPX_CHECK(ompx_memcpy(h_b, d_b, size));

  // Verify.
  for (int i = 0; i < n; ++i) {
    const int expect = i + 1000 + (i % bsize);
    if (h_b[i] != expect) {
      std::fprintf(stderr, "MISMATCH at %d: %d != %d\n", i, h_b[i], expect);
      return EXIT_FAILURE;
    }
  }
  std::printf("quickstart: OK — %d elements computed on %s "
              "(modeled kernel time %.3f us)\n",
              n, ompx::default_device().config().name.c_str(),
              ompx::launch_record().time.total_ms * 1e3);

  // Free device and host memory.
  OMPX_CHECK(ompx_free(d_a));
  OMPX_CHECK(ompx_free(d_b));
  delete[] h_a;
  delete[] h_b;
  return EXIT_SUCCESS;
}
