// The vendor-library wrapper layer (paper §3.6): one code path calling
// ompx::blas, dispatched to the simulated cuBLAS on the CUDA-shaped
// device and the simulated rocBLAS on the HIP-shaped device.
//
// Solves a small least-squares problem via the normal equations
// (A^T A x = A^T b, one Jacobi-ish refinement loop) using only wrapper
// calls — gemm, gemv, axpy, dot, nrm2 — so every entry point runs.
//
// Build & run:  ./blas_portable
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/ompx_blas.h"

namespace {

constexpr int kM = 64;  // rows
constexpr int kN = 16;  // cols

double run_on(simt::Device& dev) {
  std::printf("-- %s (%s) --\n", dev.config().name.c_str(),
              dev.config().vendor == simt::Vendor::kNvidia
                  ? "dispatching to nvblas, the simulated cuBLAS"
                  : "dispatching to rocblas_sim, the simulated rocBLAS");

  // Column-major A (m x n), b, all deterministic.
  std::vector<double> a(static_cast<std::size_t>(kM) * kN);
  std::vector<double> b(kM);
  for (int j = 0; j < kN; ++j)
    for (int i = 0; i < kM; ++i)
      a[i + static_cast<std::size_t>(j) * kM] =
          1.0 / (1.0 + i + j) + (i == j ? 1.0 : 0.0);
  for (int i = 0; i < kM; ++i) b[i] = 1.0 + 0.01 * i;

  ompx::blas::Handle h(dev);

  // G = A^T A  (n x n), c = A^T b.
  std::vector<double> g(static_cast<std::size_t>(kN) * kN, 0.0);
  std::vector<double> c(kN, 0.0);
  h.gemm(ompx::blas::Op::kT, ompx::blas::Op::kN, kN, kN, kM, 1.0, a.data(),
         kM, a.data(), kM, 0.0, g.data(), kN);
  h.gemv(ompx::blas::Op::kT, kM, kN, 1.0, a.data(), kM, b.data(), 0.0,
         c.data());

  // Richardson iteration: x += w * (c - G x).
  std::vector<double> x(kN, 0.0), r(kN, 0.0);
  const double w = 0.5 / h.nrm2(kN * kN, g.data());
  double resid = 0.0;
  for (int it = 0; it < 200; ++it) {
    // r = c - G x
    r = c;
    h.gemv(ompx::blas::Op::kN, kN, kN, -1.0, g.data(), kN, x.data(), 1.0,
           r.data());
    h.axpy(kN, w, r.data(), x.data());
    resid = h.nrm2(kN, r.data());
    if (resid < 1e-12) break;
  }

  const double xtc = h.dot(kN, x.data(), c.data());
  std::printf("   residual ||c - Gx|| = %.3e,  x.c = %.12f\n", resid, xtc);
  return xtc;
}

}  // namespace

int main() {
  std::printf("blas_portable: normal-equations solve through the ompx BLAS "
              "wrapper (§3.6)\n\n");
  const double nv = run_on(simt::sim_a100());
  const double amd = run_on(simt::sim_mi250());
  if (std::abs(nv - amd) > 1e-9) {
    std::fprintf(stderr, "vendor backends disagree: %.15f vs %.15f\n", nv, amd);
    return EXIT_FAILURE;
  }
  std::printf("\nidentical numerics from both vendor backends — the wrapper "
              "layer hides the\nvendor APIs (scalar-by-pointer cuBLAS vs "
              "scalar-by-value rocBLAS) entirely.\n");
  return EXIT_SUCCESS;
}
