// Three ways to write one GPU computation in OpenMP — the paper's
// Figures 2, 3 and 4 side by side:
//
//   (1) classic directives  : target teams distribute parallel for
//   (2) SIMT-style OpenMP   : target teams + parallel, manual indexing
//                             (possible pre-extension, but convoluted
//                             and still paying the runtime — Figure 3)
//   (3) ompx_bare           : the kernel-language form this paper adds
//                             (Figure 4)
//
// All three compute the same block-shared histogram-smoothing kernel
// and must agree bit-for-bit; the modeled cost shows what each layer of
// runtime machinery costs.
//
// Build & run:  ./simt_style
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/ompx.h"

namespace {

constexpr std::int64_t kN = 1 << 16;
constexpr int kBlock = 128;

std::vector<int> make_input() {
  std::vector<int> v(kN);
  for (std::int64_t i = 0; i < kN; ++i) v[i] = static_cast<int>(i % 31);
  return v;
}

/// (1) Figure 2: the idiomatic directive version. Work distribution is
/// automatic; the tile is staged per team via groupprivate.
double classic_directives(simt::Device& dev, const std::vector<int>& in,
                          std::vector<int>& out) {
  dev.clear_launch_log();
  omp::TargetClauses c;
  c.device = &dev;
  c.num_teams = static_cast<int>(kN / kBlock);
  c.thread_limit = kBlock;
  c.name = "classic";
  c.cost.global_bytes_per_thread = 8;
  const int* pin = in.data();
  int* pout = out.data();
  omp::target_teams_distribute_parallel_for(c, kN, [&](omp::DeviceEnv&) {
    return [=](std::int64_t i) { pout[i] = 2 * pin[i] + 1; };
  });
  return dev.modeled_kernel_ms_total();
}

/// (2) Figure 3: SIMT style under the stock execution model — a
/// `parallel` region per team, indexing via omp_get_* equivalents. The
/// runtime is still initialized and the region still pays the OpenMP
/// execution-model bookkeeping.
double simt_style_omp(simt::Device& dev, const std::vector<int>& in,
                      std::vector<int>& out) {
  dev.clear_launch_log();
  const int* pin = in.data();
  int* pout = out.data();
  ompx::LaunchSpec spec;
  spec.bare = false;  // stock execution model: runtime init stays
  spec.num_teams = {static_cast<unsigned>(kN / kBlock)};
  spec.thread_limit = {kBlock};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "simt_omp";
  spec.cost.global_bytes_per_thread = 8;
  spec.device = &dev;
  ompx::launch(spec, [=] {
    const int thread_id = omp::thread_num();        // omp_get_thread_num()
    const int block_id = omp::team_num();           // omp_get_team_num()
    const int block_dim = omp::num_threads();       // omp_get_team_size()
    const std::int64_t id =
        static_cast<std::int64_t>(block_id) * block_dim + thread_id;
    if (id < kN) pout[id] = 2 * pin[id] + 1;
  }).wait();
  return dev.modeled_kernel_ms_total();
}

/// (3) Figure 4: the bare-metal extension — all threads of all teams
/// active, no runtime, kernel-language indexing APIs.
double ompx_bare(simt::Device& dev, const std::vector<int>& in,
                 std::vector<int>& out) {
  dev.clear_launch_log();
  const int* pin = in.data();
  int* pout = out.data();
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(kN / kBlock)};
  spec.thread_limit = {kBlock};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "ompx_bare";
  spec.cost.global_bytes_per_thread = 8;
  spec.device = &dev;
  ompx::launch(spec, [=] {
    const std::int64_t id = ompx::global_thread_id();
    if (id < kN) pout[id] = 2 * pin[id] + 1;
  }).wait();
  return dev.modeled_kernel_ms_total();
}

}  // namespace

int main() {
  simt::Device& dev = simt::sim_a100();
  const std::vector<int> in = make_input();
  std::vector<int> out1(kN), out2(kN), out3(kN);

  const double t1 = classic_directives(dev, in, out1);
  const double t2 = simt_style_omp(dev, in, out2);
  const double t3 = ompx_bare(dev, in, out3);

  if (out1 != out2 || out1 != out3) {
    std::fprintf(stderr, "versions disagree!\n");
    return EXIT_FAILURE;
  }

  std::printf("simt_style: all three forms agree (sum %lld)\n\n",
              static_cast<long long>(
                  std::accumulate(out1.begin(), out1.end(), 0LL)));
  std::printf("%-44s %10.3f us\n",
              "(1) target teams distribute parallel for", t1 * 1e3);
  std::printf("%-44s %10.3f us\n",
              "(2) SIMT-style under the stock runtime", t2 * 1e3);
  std::printf("%-44s %10.3f us\n", "(3) target teams ompx_bare", t3 * 1e3);
  std::printf("\n(3) is both the fastest and — per the paper — the one that "
              "ports from CUDA\nby text replacement.\n");
  return EXIT_SUCCESS;
}
