// cuda2ompx command-line tool — the code-rewriting integration the
// paper's §6 lists as future work, built on src/rewrite.
//
//   ./cuda2ompx_tool < kernel.cu > kernel_ompx.cpp
//   ./cuda2ompx_tool --no-launches < kernel.cu
//   ./cuda2ompx_tool --lint < kernel.cu     # also lint the ported output
//   ./cuda2ompx_tool --analyze < kernel.cu  # + per-kernel exec verdicts
//
// Reads CUDA source on stdin, writes ompx source on stdout, and prints
// a rewrite report (counts + anything left for a human) on stderr.
// With --lint, the *rewritten* output is run through ompx_lint too —
// anything the rewriter left behind shows up as unported-builtin, and
// divergence/sync hazards survive the port unchanged. With --analyze,
// the full ompx-analyze pass runs instead: the same findings plus one
// exec verdict per ported kernel (convergent / atomics inline-safe /
// needs fibers), so a port lands together with its lane-exec proof.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "rewrite/analyze.h"
#include "rewrite/cuda2ompx.h"
#include "rewrite/lint.h"

int main(int argc, char** argv) {
  rewrite::Options opt;
  bool lint = false;
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-launches") == 0)
      opt.rewrite_launches = false;
    else if (std::strcmp(argv[i], "--lint") == 0)
      lint = true;
    else if (std::strcmp(argv[i], "--analyze") == 0)
      analyze = true;
    else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(
          stderr,
          "usage: %s [--no-launches] [--lint] [--analyze] < cuda.cu > "
          "ompx.cpp\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  std::ostringstream in;
  in << std::cin.rdbuf();

  rewrite::Report report;
  const std::string out = rewrite::cuda_to_ompx(in.str(), &report, opt);
  std::cout << out;

  std::fprintf(stderr, "cuda2ompx: %d replacements\n", report.replacements);
  for (const auto& n : report.notes)
    std::fprintf(stderr, "  %s\n", n.c_str());
  if (!report.unported.empty()) {
    std::fprintf(stderr, "needs a human:\n");
    for (const auto& u : report.unported)
      std::fprintf(stderr, "  ! %s\n", u.c_str());
  }

  if (analyze) {
    rewrite::AnalysisResult r = rewrite::analyze_source(out);
    // Fold in the unported scan so --analyze subsumes --lint.
    rewrite::LintOptions uopt;
    uopt.check_divergent_sync = false;
    uopt.check_shared_sync = false;
    uopt.check_contract = false;
    for (auto& f : rewrite::lint_source(out, uopt))
      r.findings.push_back(std::move(f));
    std::fputs(rewrite::format_analysis(r, "<ported>").c_str(), stderr);
    if (!r.findings.empty()) {
      std::fprintf(stderr, "ompx-analyze: %zu finding(s)\n",
                   r.findings.size());
      return 2;
    }
    std::fprintf(stderr, "ompx-analyze: clean\n");
  } else if (lint) {
    const auto findings = rewrite::lint_source(out);
    if (findings.empty()) {
      std::fprintf(stderr, "ompx_lint: clean\n");
    } else {
      std::fprintf(stderr, "ompx_lint: %zu finding(s)\n", findings.size());
      std::fputs(rewrite::format_lint(findings, "<ported>").c_str(), stderr);
      return 2;
    }
  }
  return 0;
}
