// MPS-style multi-tenant service layer over the simulated GPU fleet.
//
// The paper's runtime assumes one process owns its devices outright; a
// production serving deployment multiplexes many clients onto the same
// fixed fleet (CUDA MPS, pocl's per-queue command machinery). This
// layer adds that without forking the engine: a ClientContext is a thin
// tenant handle (its own stream, quota-charged allocation accounting,
// per-client launch/fault/watchdog stats), and the Server time-slices
// each device among its clients at block granularity — every launch is
// executed as a sequence of grid chunks through the sharding hooks
// (grid_offset / logical_grid), with a scheduling decision between
// chunks, so one tenant's huge grid cannot starve the rest.
//
// Scheduling is weighted round-robin within the highest non-empty
// priority class (higher classes run first; equal-priority clients
// converge to shares proportional to their weights). Admission control
// rejects submits beyond a client's queue depth with AdmissionError
// (OMPX_ERROR_ADMISSION) and allocations beyond its memory quota with
// DeviceOOMError (OMPX_ERROR_OUT_OF_MEMORY). A watchdog timeout or
// device-lost fault while one client's chunk runs fails only that
// client's request; the device is reset and sibling clients continue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "simt/device.h"
#include "simt/kernel.h"

namespace serve {

struct Request;  // one queued launch (internal to serve.cpp)

/// Per-client resource bounds; all zeros mean "unlimited, default share".
struct ClientLimits {
  std::uint64_t memory_quota_bytes = 0;  ///< 0 = no quota
  std::uint32_t max_pending = 0;         ///< submit queue depth; 0 = unbounded
  int priority = 0;                      ///< higher classes preempt lower ones
  std::uint32_t weight = 1;              ///< WRR weight within the class
};

/// Per-client accounting, all cumulative unless noted.
struct ClientStats {
  std::uint64_t launches = 0;             ///< requests completed OK
  std::uint64_t launches_failed = 0;      ///< requests failed (any cause)
  std::uint64_t blocks_executed = 0;      ///< grid blocks run on the device
  std::uint64_t quanta = 0;               ///< scheduler quanta consumed
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes_live = 0;           ///< current, not cumulative
  std::uint64_t bytes_peak = 0;
  std::uint64_t quota_rejections = 0;     ///< malloc refused by the quota
  std::uint64_t admission_rejections = 0; ///< submit refused by queue depth
  std::uint64_t timeouts = 0;             ///< requests failed by the watchdog
  std::uint64_t device_losses = 0;        ///< requests failed device-lost
};

class Server;

/// One tenant's handle onto a shared device. Create/destroy through the
/// Server; all methods are thread-safe. Allocation goes through the
/// client so bytes are charged to its quota; a pointer one client
/// allocated cannot be freed through another (isolation).
class ClientContext {
 public:
  ClientContext(const ClientContext&) = delete;
  ClientContext& operator=(const ClientContext&) = delete;

  [[nodiscard]] simt::Device& device() const { return dev_; }
  /// The client's private stream (async copies ordered per client).
  [[nodiscard]] simt::Stream& stream() const { return *stream_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] ClientLimits limits() const { return limits_; }

  /// Quota-charged device allocation. Throws simt::DeviceOOMError when
  /// the client's quota (or the device capacity) would be exceeded.
  void* malloc(std::size_t bytes);
  /// Frees a pointer this client allocated; std::invalid_argument for
  /// anything else (including another client's pointer).
  void free(void* ptr);

  /// Enqueues a launch request; returns immediately with a request id.
  /// Throws simt::AdmissionError beyond the queue-depth limit. A failed
  /// request stores its error: synchronize() rethrows the first one.
  std::uint64_t submit(simt::LaunchParams params, simt::KernelFn body);
  /// Blocking request: submit + wait; returns the combined record or
  /// rethrows the request's failure.
  simt::LaunchRecord launch(simt::LaunchParams params, simt::KernelFn body);
  /// Waits until every submitted request has finished, then rethrows
  /// the first stored async error, if any (clearing it).
  void synchronize();

  [[nodiscard]] ClientStats stats() const;

  /// Public only so the Server's owning container can delete; use
  /// Server::destroy_client, never delete a handle yourself.
  ~ClientContext();

 private:
  friend class Server;
  ClientContext(Server& server, simt::Device& dev, ClientLimits limits,
                std::uint64_t id);

  Server& server_;
  simt::Device& dev_;
  simt::Stream* stream_ = nullptr;
  const ClientLimits limits_;
  const std::uint64_t id_;

  // Guarded by Server::mu_.
  ClientStats stats_;
  std::unordered_map<const void*, std::size_t> owned_;  ///< ptr -> bytes
  std::deque<std::shared_ptr<Request>> pending_;
  std::exception_ptr first_error_;
  double wrr_progress_ = 0.0;  ///< quanta / weight, for the WRR pick
};

/// The process-wide serving daemon: one scheduler thread per device,
/// time-slicing runnable client requests in `quantum_blocks()` chunks.
class Server {
 public:
  /// Lazily started singleton (the C ABI's backing instance).
  static Server& instance();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates a client on `dev` (nullptr = least-loaded device).
  ClientContext* create_client(simt::Device* dev = nullptr,
                               const ClientLimits& limits = {});
  /// Drains the client's queue, releases its leaked allocations, and
  /// destroys it. Throws std::invalid_argument for an unknown handle.
  void destroy_client(ClientContext* client);

  /// True while `client` is a live handle from create_client.
  [[nodiscard]] bool is_live(const ClientContext* client) const;
  [[nodiscard]] std::size_t client_count() const;

  /// Preemption quantum in grid blocks (min 1). Default 64.
  void set_quantum_blocks(std::uint32_t blocks);
  [[nodiscard]] std::uint32_t quantum_blocks() const;

  Server();   // public for tests that want an isolated server
  ~Server();  // drains queues, stops scheduler threads

 private:
  friend class ClientContext;
  struct DeviceSched {
    simt::Device* dev = nullptr;
    std::thread worker;
    std::condition_variable cv_work;
    std::vector<ClientContext*> clients;  ///< rotation order
  };

  void scheduler_loop(DeviceSched& sched);
  std::shared_ptr<Request> pick_locked(DeviceSched& sched);
  void run_quantum(DeviceSched& sched, const std::shared_ptr<Request>& r);
  DeviceSched& sched_for(simt::Device& dev);
  void submit_locked(ClientContext& client,
                     const std::shared_ptr<Request>& r);

  mutable std::mutex mu_;
  std::condition_variable cv_done_;  ///< broadcast on request completion
  bool stopping_ = false;
  std::uint32_t quantum_blocks_ = 64;
  std::uint64_t next_client_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::unique_ptr<DeviceSched>> scheds_;
  std::unordered_map<const ClientContext*, std::unique_ptr<ClientContext>>
      clients_;
};

}  // namespace serve
