#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "simt/fault.h"
#include "simt/stream.h"
#include "simt/watchdog.h"

namespace serve {
namespace {

std::uint32_t& dim_axis(simt::Dim3& d, int axis) {
  return axis == 0 ? d.x : axis == 1 ? d.y : d.z;
}

/// Chunk-into-request accumulation, the time-sliced sibling of the
/// shard_launch combine: stats sum; modeled time sums too (chunks run
/// sequentially on one device, not concurrently across devices);
/// occupancy is blocks-weighted by the caller.
void accumulate(simt::LaunchRecord& into, const simt::LaunchRecord& rec) {
  into.stats.blocks += rec.stats.blocks;
  into.stats.threads += rec.stats.threads;
  into.stats.block_barriers += rec.stats.block_barriers;
  into.stats.warp_collectives += rec.stats.warp_collectives;
  into.stats.warp_syncs += rec.stats.warp_syncs;
  into.stats.atomics += rec.stats.atomics;
  into.stats.parallel_handshakes += rec.stats.parallel_handshakes;
  into.stats.workshare_dispatches += rec.stats.workshare_dispatches;
  into.stats.globalized_bytes += rec.stats.globalized_bytes;
  into.stats.fibers_created += rec.stats.fibers_created;
  into.stats.fiber_reuses += rec.stats.fiber_reuses;
  into.stats.sched_steals += rec.stats.sched_steals;
  into.stats.sched_lane_loops += rec.stats.sched_lane_loops;
  into.stats.sched_deflations += rec.stats.sched_deflations;
  into.time.compute_ms += rec.time.compute_ms;
  into.time.memory_ms += rec.time.memory_ms;
  into.time.overhead_ms += rec.time.overhead_ms;
  into.time.total_ms += rec.time.total_ms;
}

}  // namespace

/// One client launch making its way through the scheduler. The chunking
/// fields are touched only by the owning device's scheduler thread; the
/// completion fields are guarded by Server::mu_.
struct Request {
  ClientContext* client = nullptr;
  simt::LaunchParams params;
  simt::KernelFn body;
  std::uint64_t id = 0;

  // Chunk progress (scheduler thread only).
  bool started = false;
  int axis = 0;
  std::uint32_t total = 0;            ///< extent along the split axis
  std::uint32_t next = 0;             ///< next chunk's begin along the axis
  std::uint32_t blocks_per_unit = 1;  ///< grid blocks per unit of the axis
  simt::LaunchRecord combined;
  double occ_weighted = 0.0;
  double modeled_ms = 0.0;
  std::chrono::steady_clock::time_point t0;

  // Completion (Server::mu_).
  bool done = false;
  std::exception_ptr error;
};

// ------------------------------------------------------- ClientContext

ClientContext::ClientContext(Server& server, simt::Device& dev,
                             ClientLimits limits, std::uint64_t id)
    : server_(server), dev_(dev), limits_(limits), id_(id) {
  stream_ = dev.create_stream();
}

ClientContext::~ClientContext() {
  if (stream_ != nullptr) {
    // A timed-out stream is parked by the executor; either way the
    // handle must not leak past the client.
    try {
      dev_.destroy_stream(stream_);
    } catch (...) {
    }
    stream_ = nullptr;
  }
}

void* ClientContext::malloc(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  {
    std::lock_guard lock(server_.mu_);
    if (limits_.memory_quota_bytes != 0 &&
        stats_.bytes_live + bytes > limits_.memory_quota_bytes) {
      stats_.quota_rejections++;
      throw simt::DeviceOOMError(
          "client " + std::to_string(id_) + ": allocation of " +
          std::to_string(bytes) + " bytes exceeds the memory quota (" +
          std::to_string(stats_.bytes_live) + " of " +
          std::to_string(limits_.memory_quota_bytes) + " bytes in use)");
    }
    // Charge before allocating so two racing allocations cannot both
    // slip under the quota.
    stats_.bytes_live += bytes;
    stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_live);
    stats_.allocs++;
  }
  void* p = nullptr;
  try {
    p = dev_.memory().allocate(bytes);
  } catch (...) {
    std::lock_guard lock(server_.mu_);
    stats_.bytes_live -= bytes;
    stats_.allocs--;
    throw;
  }
  std::lock_guard lock(server_.mu_);
  owned_[p] = bytes;
  return p;
}

void ClientContext::free(void* ptr) {
  if (ptr == nullptr) return;
  std::size_t bytes = 0;
  {
    std::lock_guard lock(server_.mu_);
    auto it = owned_.find(ptr);
    if (it == owned_.end())
      throw std::invalid_argument(
          "client " + std::to_string(id_) +
          ": pointer was not allocated by this client (tenant isolation "
          "forbids cross-client frees)");
    bytes = it->second;
    owned_.erase(it);
  }
  dev_.memory().deallocate(ptr);
  std::lock_guard lock(server_.mu_);
  stats_.frees++;
  stats_.bytes_live -= bytes;
}

// Only the shape is validated at submit time (an empty grid would break
// the chunking arithmetic). Device-level validation — launch limits,
// lost-device state, injected faults — happens when the scheduler runs
// the request, where the failure is classified against the client's
// stats and a lost device is reset without the submitting thread racing
// the worker. That matches CUDA: most launch errors surface
// asynchronously.
static void check_shape(const simt::LaunchParams& p) {
  if (p.grid.count() == 0 || p.block.count() == 0)
    throw std::invalid_argument(std::string("launch '") + p.name +
                                "': empty grid or block");
}

std::uint64_t ClientContext::submit(simt::LaunchParams params,
                                    simt::KernelFn body) {
  check_shape(params);
  auto r = std::make_shared<Request>();
  r->client = this;
  r->params = params;
  r->body = std::move(body);
  std::lock_guard lock(server_.mu_);
  server_.submit_locked(*this, r);
  return r->id;
}

simt::LaunchRecord ClientContext::launch(simt::LaunchParams params,
                                         simt::KernelFn body) {
  check_shape(params);
  auto r = std::make_shared<Request>();
  r->client = this;
  r->params = params;
  r->body = std::move(body);
  std::unique_lock lock(server_.mu_);
  server_.submit_locked(*this, r);
  server_.cv_done_.wait(lock, [&] { return r->done; });
  if (r->error) {
    // The blocking caller consumes this failure; don't surface it a
    // second time from a later synchronize().
    if (first_error_ == r->error) first_error_ = nullptr;
    std::rethrow_exception(r->error);
  }
  return r->combined;
}

void ClientContext::synchronize() {
  std::unique_lock lock(server_.mu_);
  server_.cv_done_.wait(lock, [&] { return pending_.empty(); });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

ClientStats ClientContext::stats() const {
  std::lock_guard lock(server_.mu_);
  return stats_;
}

// --------------------------------------------------------------- Server

Server& Server::instance() {
  // Touch the registry first: the sim devices are intentionally leaked,
  // so constructing the server after them keeps every scheduler thread's
  // device alive through static destruction.
  simt::device_registry();
  static Server s;
  return s;
}

Server::Server() = default;

Server::~Server() {
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    // Whatever is still queued fails cleanly instead of hanging a
    // waiter: shutdown is an admission decision like any other.
    for (auto& [raw, client] : clients_) {
      for (auto& r : client->pending_) {
        if (r->done) continue;
        r->error = std::make_exception_ptr(
            simt::AdmissionError("serve: server shut down with the request "
                                 "still queued"));
        r->done = true;
      }
      client->pending_.clear();
    }
    cv_done_.notify_all();
    for (auto& s : scheds_) s->cv_work.notify_all();
  }
  for (auto& s : scheds_)
    if (s->worker.joinable()) s->worker.join();
  // Destroy surviving clients (leaked handles): release their device
  // allocations, then the contexts themselves.
  for (auto& [raw, client] : clients_) {
    for (auto& [p, bytes] : client->owned_)
      try {
        client->dev_.memory().deallocate(const_cast<void*>(p));
      } catch (...) {
      }
  }
  clients_.clear();
}

Server::DeviceSched& Server::sched_for(simt::Device& dev) {
  for (auto& s : scheds_)
    if (s->dev == &dev) return *s;
  scheds_.push_back(std::make_unique<DeviceSched>());
  DeviceSched& s = *scheds_.back();
  s.dev = &dev;
  s.worker = std::thread([this, &s] { scheduler_loop(s); });
  return s;
}

ClientContext* Server::create_client(simt::Device* dev,
                                     const ClientLimits& limits) {
  ClientLimits l = limits;
  if (l.weight == 0) l.weight = 1;
  std::lock_guard lock(mu_);
  if (stopping_)
    throw std::invalid_argument("serve: server is shutting down");
  simt::Device* target = dev;
  if (target == nullptr) {
    // Least-loaded placement across the registry fleet.
    std::size_t best = 0;
    for (simt::Device* d : simt::device_registry()) {
      std::size_t n = 0;
      for (auto& s : scheds_)
        if (s->dev == d) n = s->clients.size();
      if (target == nullptr || n < best) {
        target = d;
        best = n;
      }
    }
    if (target == nullptr)
      throw std::invalid_argument("serve: no devices registered");
  }
  auto client = std::unique_ptr<ClientContext>(
      new ClientContext(*this, *target, l, next_client_id_++));
  DeviceSched& sched = sched_for(*target);
  sched.clients.push_back(client.get());
  ClientContext* raw = client.get();
  clients_[raw] = std::move(client);
  return raw;
}

void Server::destroy_client(ClientContext* client) {
  std::unique_lock lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end())
    throw std::invalid_argument(
        "serve: not a live client handle (already destroyed?)");
  // Teardown ordering: drain the queue first (the scheduler may be
  // mid-quantum on this client's request), then unhook from the
  // rotation, then release memory.
  cv_done_.wait(lock, [&] { return client->pending_.empty(); });
  for (auto& s : scheds_) {
    auto pos = std::find(s->clients.begin(), s->clients.end(), client);
    if (pos != s->clients.end()) s->clients.erase(pos);
  }
  std::unique_ptr<ClientContext> owned = std::move(it->second);
  clients_.erase(it);
  auto leaked = std::move(owned->owned_);
  lock.unlock();
  for (auto& [p, bytes] : leaked)
    try {
      owned->dev_.memory().deallocate(const_cast<void*>(p));
    } catch (...) {
    }
  // ~ClientContext destroys the client's stream.
}

bool Server::is_live(const ClientContext* client) const {
  std::lock_guard lock(mu_);
  return clients_.count(client) != 0;
}

std::size_t Server::client_count() const {
  std::lock_guard lock(mu_);
  return clients_.size();
}

void Server::set_quantum_blocks(std::uint32_t blocks) {
  std::lock_guard lock(mu_);
  quantum_blocks_ = std::max(1u, blocks);
}

std::uint32_t Server::quantum_blocks() const {
  std::lock_guard lock(mu_);
  return quantum_blocks_;
}

void Server::submit_locked(ClientContext& client,
                           const std::shared_ptr<Request>& r) {
  if (stopping_)
    throw simt::AdmissionError("serve: server is shutting down");
  if (client.limits_.max_pending != 0 &&
      client.pending_.size() >= client.limits_.max_pending) {
    client.stats_.admission_rejections++;
    throw simt::AdmissionError(
        "client " + std::to_string(client.id_) + ": queue depth limit " +
        std::to_string(client.limits_.max_pending) +
        " reached; retry after pending requests drain");
  }
  r->id = next_request_id_++;
  // An idle client re-entering the rotation must not replay the share
  // it "saved" while idle: start from the busiest sibling's progress.
  if (client.pending_.empty()) {
    double floor = client.wrr_progress_;
    for (auto& s : scheds_) {
      if (s->dev != &client.dev_) continue;
      for (ClientContext* c : s->clients)
        if (c != &client && !c->pending_.empty())
          floor = std::max(floor, c->wrr_progress_);
    }
    client.wrr_progress_ = floor;
  }
  client.pending_.push_back(r);
  for (auto& s : scheds_)
    if (s->dev == &client.dev_) s->cv_work.notify_all();
}

std::shared_ptr<Request> Server::pick_locked(DeviceSched& sched) {
  // Strict priority across classes; within the winning class, the
  // client with the least weighted progress runs next (weighted
  // round-robin that is deterministic and starvation-free).
  ClientContext* best = nullptr;
  for (ClientContext* c : sched.clients) {
    if (c->pending_.empty()) continue;
    if (best == nullptr || c->limits_.priority > best->limits_.priority ||
        (c->limits_.priority == best->limits_.priority &&
         c->wrr_progress_ < best->wrr_progress_))
      best = c;
  }
  return best != nullptr ? best->pending_.front() : nullptr;
}

void Server::scheduler_loop(DeviceSched& sched) {
  for (;;) {
    std::shared_ptr<Request> r;
    {
      std::unique_lock lock(mu_);
      sched.cv_work.wait(
          lock, [&] { return stopping_ || (r = pick_locked(sched)) != nullptr; });
      if (r == nullptr) return;  // stopping, queues drained
    }
    run_quantum(sched, r);
  }
}

void Server::run_quantum(DeviceSched& sched,
                         const std::shared_ptr<Request>& r) {
  simt::Device& dev = *sched.dev;
  ClientContext* client = r->client;

  if (!r->started) {
    const std::uint32_t extents[3] = {r->params.grid.x, r->params.grid.y,
                                      r->params.grid.z};
    r->axis = 0;
    if (extents[1] > extents[r->axis]) r->axis = 1;
    if (extents[2] > extents[r->axis]) r->axis = 2;
    r->total = extents[r->axis];
    const std::uint64_t grid_blocks = static_cast<std::uint64_t>(extents[0]) *
                                      extents[1] * extents[2];
    r->blocks_per_unit =
        static_cast<std::uint32_t>(std::max<std::uint64_t>(
            1, grid_blocks / std::max<std::uint32_t>(1, r->total)));
    r->combined.name = r->params.name;
    r->combined.grid = r->params.grid;
    r->combined.block = r->params.block;
    r->t0 = std::chrono::steady_clock::now();
    r->started = true;
  }

  std::uint32_t quantum;
  {
    std::lock_guard lock(mu_);
    quantum = quantum_blocks_;
  }
  const std::uint32_t remaining = r->total - r->next;
  const std::uint32_t chunk = std::min(
      remaining,
      std::max<std::uint32_t>(1, quantum / r->blocks_per_unit));

  simt::LaunchParams p = r->params;
  p.log = false;  // only the combined record enters the launch log
  p.logical_grid = r->params.grid;
  dim_axis(p.grid, r->axis) = chunk;
  dim_axis(p.grid_offset, r->axis) = r->next;

  simt::LaunchRecord rec;
  std::exception_ptr err;
  bool lost = false;
  try {
    dev.check_not_lost("serve launch");
    rec = dev.launch_sync(p, r->body);
  } catch (const simt::DeviceLostError&) {
    err = std::current_exception();
    lost = true;
  } catch (...) {
    err = std::current_exception();
  }

  bool timed_out = false;
  if (!err) {
    if (r->combined.stats.blocks == 0) {
      r->combined.exec_mode = rec.exec_mode;
      r->combined.stats.runtime_init = rec.stats.runtime_init;
      r->combined.stats.generic_mode = rec.stats.generic_mode;
      r->combined.stats.spill_in_shared = rec.stats.spill_in_shared;
    }
    accumulate(r->combined, rec);
    r->occ_weighted +=
        rec.time.occupancy * static_cast<double>(rec.stats.blocks);
    r->modeled_ms += rec.time.total_ms;
    r->next += chunk;
    // The modeled watchdog is a per-launch budget: time-slicing must not
    // let a runaway kernel dodge it by being metered in small chunks.
    const double budget_ms = simt::watchdog_ms();
    if (budget_ms > 0.0 && r->modeled_ms > budget_ms) {
      err = std::make_exception_ptr(simt::TimeoutError(
          "serve: kernel '" + std::string(r->params.name) +
          "' exceeded the watchdog budget across its time slices"));
      timed_out = true;
    }
  } else if (!lost) {
    // Single-chunk watchdog overruns arrive as TimeoutError too.
    try {
      std::rethrow_exception(err);
    } catch (const simt::TimeoutError&) {
      timed_out = true;
    } catch (...) {
    }
  }

  {
    std::lock_guard lock(mu_);
    client->stats_.quanta++;
    client->wrr_progress_ +=
        1.0 / static_cast<double>(std::max(1u, client->limits_.weight));
    if (!err) client->stats_.blocks_executed += rec.stats.blocks;

    // The request may have been failed under our feet by server
    // shutdown; don't double-complete it.
    const bool still_queued =
        !client->pending_.empty() && client->pending_.front() == r && !r->done;
    if (still_queued && (err || r->next >= r->total)) {
      if (err) {
        client->stats_.launches_failed++;
        if (timed_out) client->stats_.timeouts++;
        if (lost) client->stats_.device_losses++;
        r->error = err;
        if (!client->first_error_) client->first_error_ = err;
      } else {
        if (r->combined.stats.blocks != 0)
          r->combined.time.occupancy =
              r->occ_weighted / static_cast<double>(r->combined.stats.blocks);
        r->combined.wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - r->t0)
                                  .count();
        client->stats_.launches++;
      }
      r->done = true;
      client->pending_.pop_front();
      cv_done_.notify_all();
    }
  }

  if (!err && r->done) dev.append_launch_record(r->combined);

  if (lost) {
    // Graceful degradation: one tenant's poisoned chunk must not take
    // the device away from its siblings.
    try {
      dev.reset();
    } catch (...) {
    }
  }
}

}  // namespace serve
