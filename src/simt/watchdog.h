// Kernel watchdog budget.
//
// One process-wide budget in milliseconds (OMPX_WATCHDOG_MS env,
// ompx_set_watchdog_ms, klSetWatchdogMs; 0 disables) applied two ways:
//
//   * modeled time — Device::launch_sync fails a launch whose modeled
//     duration exceeds the budget (TimeoutError before the launch is
//     logged), the simulator analogue of cudaErrorLaunchTimeout;
//   * wall clock — each StreamExecutor runs a monitor thread that
//     abandons a worker stuck past the budget on one op (a hung kernel
//     or an injected stall), fails the stream with TimeoutError, and
//     drains its queue so host waits return instead of hanging.
//
// A stream the wall-clock watchdog killed is permanently timed out:
// further submissions fail with TimeoutError; destroy it and create a
// new one. Other streams and devices keep working — graceful
// degradation, not process death.
#pragma once

namespace simt {

/// Sets the watchdog budget in milliseconds; values <= 0 disable it.
void set_watchdog_ms(double ms);

/// The current budget (0 when disabled). Initialized once from
/// OMPX_WATCHDOG_MS.
[[nodiscard]] double watchdog_ms();

}  // namespace simt
