#include "simt/shared_arena.h"

#include <new>
#include <stdexcept>

namespace simt {

SharedArena::SharedArena(std::size_t capacity, std::size_t dynamic_bytes)
    : cap_(capacity), dynamic_bytes_(dynamic_bytes), offset_(dynamic_bytes),
      high_water_(dynamic_bytes) {
  if (dynamic_bytes > capacity)
    throw std::invalid_argument(
        "SharedArena: dynamic shared segment exceeds per-block capacity");
}

void* SharedArena::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0)
    throw std::invalid_argument("SharedArena::allocate: bad alignment");
  ensure_backing();
  // Align the *address*, not the offset: the backing buffer itself is
  // only allocator-aligned.
  const auto base = reinterpret_cast<std::uintptr_t>(buf_.data());
  std::size_t off = ((base + offset_ + align - 1) & ~(align - 1)) - base;
  if (off + bytes > buf_.size()) throw std::bad_alloc();
  void* p = buf_.data() + off;
  offset_ = off + bytes;
  if (offset_ > high_water_) high_water_ = offset_;
  return p;
}

}  // namespace simt
