// Device-scope atomics for kernel code (atomicAdd and friends).
//
// Implemented over std::atomic_ref so the same pointer can also be used
// non-atomically elsewhere in the kernel, exactly like CUDA atomics on
// global/shared memory. Each call is counted into the current launch's
// statistics for the performance model.
#pragma once

#include <atomic>
#include <type_traits>

#include "simt/block.h"
#include "simt/kernel.h"

namespace simt {

namespace detail {
inline void count_atomic() {
  // note_atomic also doubles as the convergent lane-loop deflation
  // trigger (atomics are non-idempotent; see BlockState::note_atomic) —
  // it must run before the RMW below executes.
  if (in_kernel()) {
    ThreadCtx& t = this_thread();
    t.block->note_atomic(t);
  }
}
}  // namespace detail

/// atomicAdd: returns the old value.
template <typename T>
T atomic_add(T* addr, T value) {
  detail::count_atomic();
  if constexpr (std::is_floating_point_v<T>) {
    std::atomic_ref<T> ref(*addr);
    T old = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(old, old + value,
                                      std::memory_order_relaxed)) {
    }
    return old;
  } else {
    return std::atomic_ref<T>(*addr).fetch_add(value,
                                               std::memory_order_relaxed);
  }
}

/// atomicMax: returns the old value.
template <typename T>
T atomic_max(T* addr, T value) {
  detail::count_atomic();
  std::atomic_ref<T> ref(*addr);
  T old = ref.load(std::memory_order_relaxed);
  while (old < value &&
         !ref.compare_exchange_weak(old, value, std::memory_order_relaxed)) {
  }
  return old;
}

/// atomicMin: returns the old value.
template <typename T>
T atomic_min(T* addr, T value) {
  detail::count_atomic();
  std::atomic_ref<T> ref(*addr);
  T old = ref.load(std::memory_order_relaxed);
  while (value < old &&
         !ref.compare_exchange_weak(old, value, std::memory_order_relaxed)) {
  }
  return old;
}

/// atomicExch: returns the old value.
template <typename T>
T atomic_exchange(T* addr, T value) {
  detail::count_atomic();
  return std::atomic_ref<T>(*addr).exchange(value, std::memory_order_relaxed);
}

/// atomicCAS: returns the old value.
template <typename T>
T atomic_cas(T* addr, T expected, T desired) {
  detail::count_atomic();
  std::atomic_ref<T> ref(*addr);
  T e = expected;
  ref.compare_exchange_strong(e, desired, std::memory_order_relaxed);
  return e;
}

/// __threadfence equivalent (sequentially consistent fence).
inline void threadfence() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

}  // namespace simt
