#include "simt/watchdog.h"

#include <atomic>
#include <cstdlib>

namespace simt {

namespace {

double env_watchdog_ms() {
  const char* e = std::getenv("OMPX_WATCHDOG_MS");
  if (e == nullptr || e[0] == '\0') return 0.0;
  const double v = std::atof(e);
  return v > 0.0 ? v : 0.0;
}

std::atomic<double> g_watchdog_ms{env_watchdog_ms()};

}  // namespace

void set_watchdog_ms(double ms) {
  g_watchdog_ms.store(ms > 0.0 ? ms : 0.0, std::memory_order_relaxed);
}

double watchdog_ms() {
  return g_watchdog_ms.load(std::memory_order_relaxed);
}

}  // namespace simt
