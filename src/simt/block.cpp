#include "simt/block.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "simt/device.h"
#include "simt/san.h"

namespace simt {

namespace {
thread_local ThreadCtx* t_ctx = nullptr;
}

ThreadCtx& this_thread() {
  if (t_ctx == nullptr)
    throw std::logic_error("simt::this_thread() called outside a kernel");
  return *t_ctx;
}

bool in_kernel() { return t_ctx != nullptr; }

BlockState::BlockState(Device& device, const LaunchParams& params,
                       Dim3 block_idx, const KernelFn& kernel,
                       FiberPool& fibers)
    : device_(device), params_(params), block_idx_(block_idx),
      kernel_(kernel), fiber_pool_(fibers),
      nthreads_(static_cast<std::uint32_t>(params.block.count())),
      live_(nthreads_),
      arena_(device.config().smem_per_block_max, params.dynamic_smem_bytes),
      use_ready_queue_(device.options().scheduler ==
                       BlockScheduler::kReadyQueue),
      convergent_(params.lane_exec == LaneExec::kConvergent &&
                  params.mode == ExecMode::kCooperative &&
                  use_ready_queue_) {
  const std::uint32_t ws = device.config().warp_size;
  const std::uint32_t nwarps = static_cast<std::uint32_t>(ceil_div(nthreads_, ws));
  warps_.reserve(nwarps);
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const std::uint32_t width = std::min(ws, nthreads_ - w * ws);
    warps_.push_back(std::make_unique<WarpState>(*this, w, width));
  }
  // slots_ stays empty here: only the fiber schedulers read it, and the
  // convergent fast path never does — they size it on entry instead.
  // Under the convergent lane loop the ctx array itself is also
  // deferred: one thread runs at a time, on a scratch ThreadCtx the
  // loop advances in place, so the array only materializes if the
  // block deflates to fibers.
  shared_alloc_ordinal_.assign(nthreads_, 0);
  if (!convergent_) {
    ctxs_.resize(nthreads_);
    setup_ctxs();
  }
}

void BlockState::setup_ctxs() {
  const std::uint32_t ws = device_.config().warp_size;
  const Dim3 bd = params_.block;
  // A shard of a multi-device launch reports the full logical grid, so
  // gridDim-based indexing (global_thread_id, grid-stride loops) sees
  // the same geometry as the unsharded launch.
  const Dim3 gd = params_.logical_grid.count() != 0 ? params_.logical_grid
                                                    : params_.grid;
  // Incremental carry arithmetic instead of per-thread delinearize /
  // div/mod: context setup is per-thread work on every launch path, so
  // the ~6 integer divisions it saves per thread are visible in
  // launches/s.
  Dim3 t{0, 0, 0};
  std::uint32_t lane = 0, warp = 0;
  for (std::uint32_t flat = 0; flat < nthreads_; ++flat) {
    ThreadCtx& ctx = ctxs_[flat];
    ctx.thread_idx = t;
    ctx.block_idx = block_idx_;
    ctx.block_dim = bd;
    ctx.grid_dim = gd;
    ctx.flat_tid = flat;
    ctx.warp_id = warp;
    ctx.lane = lane;
    ctx.block = this;
    ctx.warp = warps_[warp].get();
    ctx.device = &device_;
    ctx.fiber = nullptr;
    if (++t.x == bd.x) {
      t.x = 0;
      if (++t.y == bd.y) {
        t.y = 0;
        ++t.z;
      }
    }
    if (++lane == ws) {
      lane = 0;
      ++warp;
    }
  }
}

void BlockState::run() {
  if (params_.mode == ExecMode::kCooperative) {
    if (use_ready_queue_) {
      run_cooperative();
    } else {
      run_cooperative_sweep();
    }
  } else {
    run_direct();
  }
}

void BlockState::reset_for_replay() {
  if (params_.mode != ExecMode::kDirect)
    throw std::logic_error(
        "BlockState::reset_for_replay: direct-mode blocks only");
  live_ = nthreads_;
  counters_ = BlockCounters{};
  arena_.reset();
  shared_vars_.clear();
  std::fill(shared_alloc_ordinal_.begin(), shared_alloc_ordinal_.end(), 0);
  san_shadow_.clear();
}

void BlockState::run_direct() {
  for (std::uint32_t i = 0; i < nthreads_; ++i) {
    t_ctx = &ctxs_[i];
    kernel_();
    t_ctx = nullptr;
    live_--;
  }
}

// ---------------------------------------------------------------------------
// Ready-queue scheduler (default).
//
// The queue holds exactly the runnable threads: every thread starts
// enqueued (ascending), and a blocked thread is re-enqueued only by the
// event that wakes it — barrier release enqueues the barrier's waiters,
// a warp-epoch advance enqueues that warp's waiters, both in ascending
// thread order. Scheduling work is therefore O(threads woken), not
// O(nthreads) per round. An empty queue with unfinished threads is a
// deadlock by construction (threads only leave the queue by finishing
// or recording a wait state), so the census fires exactly when the
// sweep's no-progress check would.
//
// Fibers are acquired lazily at a thread's first resume and recycled
// through free_fibers_ the moment the thread finishes: a sync-free
// block executes all nthreads_ threads on a single fiber.
// ---------------------------------------------------------------------------

void BlockState::rq_push(std::uint32_t flat) {
  ready_[(rq_head_ + rq_count_) & rq_mask_] = flat;
  rq_count_++;
}

std::uint32_t BlockState::rq_pop() {
  const std::uint32_t flat = ready_[rq_head_];
  rq_head_ = (rq_head_ + 1) & rq_mask_;
  rq_count_--;
  return flat;
}

bool BlockState::next_runnable(std::uint32_t& flat) {
  if (drain_active_) {
    while (drain_bits_ == 0) {
      if (drain_word_ >= drain_map_.size()) {
        drain_active_ = false;
        goto ring;
      }
      drain_bits_ = drain_map_[drain_word_];
      drain_map_[drain_word_] = 0;  // keep the swap buffer all-zero
      drain_word_++;
    }
    flat = (drain_word_ - 1) * 64 +
           static_cast<std::uint32_t>(std::countr_zero(drain_bits_));
    drain_bits_ &= drain_bits_ - 1;
    return true;
  }
ring:
  if (rq_count_ == 0) return false;
  flat = rq_pop();
  return true;
}

Fiber* BlockState::acquire_fiber() {
  if (!free_fibers_.empty()) {
    // Re-arm lazily, on actual reuse: a block whose threads all suspend
    // recycles nothing and should pay nothing.
    Fiber* f = free_fibers_.back();
    free_fibers_.pop_back();
    f->reset();
    counters_.fiber_reuses++;
    return f;
  }
  const bool pooled = fiber_pool_.cached() > 0;
  fibers_.push_back(fiber_pool_.acquire([this] { kernel_(); }));
  if (pooled)
    counters_.fiber_reuses++;
  else
    counters_.fibers_created++;
  return fibers_.back().get();
}

void BlockState::recycle_fiber(Fiber* f) { free_fibers_.push_back(f); }

// Convergent lane loop: run each thread as a plain sequential call on
// the worker — zero context switches, no ready-queue traffic, no
// per-thread exit bookkeeping — betting none of them blocks. The bet
// is settled by DeflateSignal, thrown by the first blocking primitive
// *before* it mutates any engine state (require_fiber / note_atomic
// fire ahead of the barrier counter, rendezvous slots, and the atomic
// RMW itself): the deflating thread's prefix only performed idempotent
// work (plain writes, shared allocs replayed by ordinal, san shadow
// re-recorded same-tid), so restarting it on a fiber re-executes the
// prefix with identical effects. Kernels whose prefix hides a
// plain-memory read-modify-write are the one shape this cannot replay;
// they must be pinned via ExecHint needs_fibers (launch_hints / the
// lint classifier). Returns the number of threads that completed
// inline: nthreads_ means the whole block ran fiber-free, anything
// less is the index of the deflating thread, which the fiber
// scheduler must run first.
std::uint32_t BlockState::run_lane_loop() {
  const std::uint32_t ws = device_.config().warp_size;
  const Dim3 bd = params_.block;
  // One scratch context, advanced in place per lane (only one thread
  // exists at a time here): the invariant fields are written once, the
  // per-lane ones by carry updates — no ctx array, no divisions.
  ThreadCtx ctx;
  ctx.thread_idx = {0, 0, 0};
  ctx.block_idx = block_idx_;
  ctx.block_dim = bd;
  ctx.grid_dim = params_.logical_grid.count() != 0 ? params_.logical_grid
                                                   : params_.grid;
  ctx.flat_tid = 0;
  ctx.warp_id = 0;
  ctx.lane = 0;
  ctx.block = this;
  ctx.warp = warps_[0].get();
  ctx.device = &device_;
  ctx.fiber = nullptr;
  std::uint32_t i = 0;
  bool deflated = false;
  inline_phase_ = true;
  t_ctx = &ctx;
  try {
    for (; i < nthreads_; ++i) {
      inline_atomic_done_ = false;  // per-lane: each lane's own prefix
      kernel_();
      if (++ctx.thread_idx.x == bd.x) {
        ctx.thread_idx.x = 0;
        if (++ctx.thread_idx.y == bd.y) {
          ctx.thread_idx.y = 0;
          ++ctx.thread_idx.z;
        }
      }
      ctx.flat_tid = i + 1;
      if (++ctx.lane == ws && i + 1 < nthreads_) {
        ctx.lane = 0;
        ctx.warp = warps_[++ctx.warp_id].get();
      }
    }
  } catch (const detail::DeflateSignal&) {
    deflated = true;
  } catch (...) {
    t_ctx = nullptr;
    inline_phase_ = false;
    throw;
  }
  t_ctx = nullptr;
  inline_phase_ = false;
  counters_.sched_lane_loops += i;
  if (!deflated) return nthreads_;
  // Thread i's kernel does synchronize: remember the verdict so future
  // launches of this name skip the probe, reset its shared-alloc
  // cursor for the replay, and materialize the ctx array the fiber
  // scheduler needs. The completed prefix threads' exits are settled
  // by run_cooperative once the scheduler state exists.
  counters_.sched_deflations++;
  shared_alloc_ordinal_[i] = 0;
  convergent_ = false;
  note_exec_deflation(params_.name);
  ctxs_.resize(nthreads_);
  setup_ctxs();
  return i;
}

void BlockState::run_cooperative() {
  std::uint32_t first = 0;
  if (convergent_) {
    first = run_lane_loop();
    // The whole block ran inline: skip the scheduler (and its ring /
    // waitmap / slot / fiber-array setup) entirely. Nothing downstream
    // reads the per-thread exit state of a completed block — run_range
    // only merges counters_.
    if (first == nthreads_) return;
  }
  slots_.resize(nthreads_);
  // Settle the deflation prefix's deferred exits (threads 0..first-1
  // completed inline; barrier_arrived_ is still 0, so no barrier
  // release can fire from these).
  for (std::uint32_t j = 0; j < first; ++j) {
    slots_[j].wait = Wait::kDone;
    on_thread_exit(j);
  }
  ready_.resize(std::bit_ceil(nthreads_));
  rq_mask_ = static_cast<std::uint32_t>(ready_.size()) - 1;
  rq_head_ = 0;
  rq_count_ = nthreads_ - first;
  for (std::uint32_t i = first; i < nthreads_; ++i) ready_[i - first] = i;
  barrier_waitmap_.assign((nthreads_ + 63) / 64, 0);
  drain_map_.assign(barrier_waitmap_.size(), 0);
  // Pointer arrays only (the fibers themselves stay lazy): reserving up
  // front avoids ~2 log2(nthreads) growth reallocations per block.
  fibers_.reserve(nthreads_);
  free_fibers_.reserve(nthreads_);

  std::uint32_t finished = first;
  while (finished < nthreads_) {
    std::uint32_t i;
    if (!next_runnable(i)) deadlock("block scheduler");
    // slots_[i].wait is already kNone: threads start that way and every
    // wakeup clears it at enqueue time.
    ThreadCtx& ctx = ctxs_[i];
    if (ctx.fiber == nullptr) ctx.fiber = acquire_fiber();
    t_ctx = &ctx;
    ctx.fiber->resume();
    t_ctx = nullptr;
    if (ctx.fiber->done()) {
      finished++;
      Fiber* f = ctx.fiber;
      ctx.fiber = nullptr;
      slots_[i].wait = Wait::kDone;
      on_thread_exit(i);
      recycle_fiber(f);
    }
  }
  // All fibers are finished here: donate them to the cross-launch pool
  // (an exception unwinds past this instead, destroying any suspended
  // fibers and returning their stacks). Raw free-list pointers first —
  // they alias entries of fibers_.
  free_fibers_.clear();
  for (auto& f : fibers_) fiber_pool_.recycle(std::move(f));
  fibers_.clear();
}

// Legacy reference scheduler: eager one-fiber-per-thread allocation and
// an O(nthreads) sweep per round. Kept behind EngineOptions::scheduler
// so differential tests can pin "results identical to the sweep".
void BlockState::run_cooperative_sweep() {
  slots_.resize(nthreads_);
  FiberStackPool& stacks = fiber_pool_.stack_pool();
  fibers_.reserve(nthreads_);
  for (std::uint32_t i = 0; i < nthreads_; ++i) {
    fibers_.push_back(std::make_unique<Fiber>(stacks, [this] { kernel_(); }));
    ctxs_[i].fiber = fibers_[i].get();
    counters_.fibers_created++;
  }
  std::uint32_t remaining = nthreads_;
  while (remaining > 0) {
    bool progressed = false;
    for (std::uint32_t i = 0; i < nthreads_; ++i) {
      Fiber& f = *fibers_[i];
      if (f.done() || !runnable(i)) continue;
      slots_[i].wait = Wait::kNone;
      t_ctx = &ctxs_[i];
      f.resume();
      t_ctx = nullptr;
      progressed = true;
      if (f.done()) {
        remaining--;
        slots_[i].wait = Wait::kDone;
        on_thread_exit(i);
      }
    }
    if (!progressed && remaining > 0) deadlock("block scheduler");
  }
  // Free fibers (and return stacks to the pool) before the arena dies.
  fibers_.clear();
}

bool BlockState::runnable(std::uint32_t i) const {
  const Slot& s = slots_[i];
  switch (s.wait) {
    case Wait::kNone:
      return true;
    case Wait::kBarrier:
      return barrier_epoch_ != s.wait_epoch;
    case Wait::kWarp:
      return ctxs_[i].warp->epoch() != s.wait_epoch;
    case Wait::kDone:
      return false;
  }
  return true;
}

void BlockState::release_barrier() {
  barrier_arrived_ = 0;
  barrier_epoch_++;
  counters_.block_barriers++;
  if (!use_ready_queue_) return;  // sweep wakeups go through the epoch check
  if (rq_count_ == 0) {
    // Nothing else is runnable: snapshot the waiters and drain them
    // straight off the bitmap (ascending) instead of round-tripping
    // them through the ring. The snapshot is a buffer swap, not a copy:
    // next_runnable zeroes each drain word as it loads it, and a drain
    // always completes before the next release (a release needs every
    // live thread at the barrier, and drain-pending threads are still
    // suspended at this one), so the swapped-in buffer is all zeroes.
    drain_map_.swap(barrier_waitmap_);
    drain_active_ = true;
    drain_word_ = 0;
    drain_bits_ = 0;
    return;
  }
  // Wake waiters in ascending thread order (low-to-high bit scan): the
  // sweep resumed waiters in thread order, and warp rendezvous arrival
  // order (hence last-arrival identity) must stay deterministic.
  // Clearing the bit is what marks the thread runnable again (barrier
  // waits are tracked only in the bitmap under the ready queue; their
  // Slot stays kNone).
  for (std::size_t w = 0; w < barrier_waitmap_.size(); ++w) {
    std::uint64_t bits = barrier_waitmap_[w];
    barrier_waitmap_[w] = 0;
    while (bits != 0) {
      const std::uint32_t flat = static_cast<std::uint32_t>(w * 64) +
                                 static_cast<std::uint32_t>(
                                     std::countr_zero(bits));
      bits &= bits - 1;
      rq_push(flat);
    }
  }
}

void BlockState::on_thread_exit(std::uint32_t flat) {
  live_--;
  ctxs_[flat].warp->on_lane_exit(ctxs_[flat].lane);
  // A barrier waiting only on now-exited threads releases (kernel-language
  // behaviour: exited threads no longer participate in __syncthreads).
  if (live_ > 0 && barrier_arrived_ >= live_ && barrier_arrived_ > 0)
    release_barrier();
}

void BlockState::sync_threads(ThreadCtx& ctx) {
  // Deflation (or the kDirect error) fires before barrier_arrived_
  // moves: a deflating thread's prefix must leave no trace.
  require_fiber(ctx, "block barrier");
  barrier_arrived_++;
  if (barrier_arrived_ >= live_) {
    release_barrier();
    return;
  }
  wait_barrier(ctx);
}

void BlockState::wait_barrier(ThreadCtx& ctx) {
  if (use_ready_queue_) {
    // The bitmap alone records the wait (the Slot stays kNone): one RMW
    // instead of two stores, and release_barrier wakes by bit scan.
    barrier_waitmap_[ctx.flat_tid / 64] |= 1ull << (ctx.flat_tid % 64);
  } else {
    Slot& s = slots_[ctx.flat_tid];
    s.wait = Wait::kBarrier;
    s.wait_epoch = barrier_epoch_;
  }
  ctx.fiber->yield();
}

void BlockState::notify_warp_release(WarpState& warp) {
  if (!use_ready_queue_) return;
  // Enqueue the warp's suspended waiters in ascending lane (hence flat
  // thread) order. The releasing lane is still running and is not on
  // the queue; scanning one warp is O(warp_size) <= 64.
  const std::uint32_t base = warp.warp_id() * device_.config().warp_size;
  for (std::uint32_t l = 0; l < warp.width(); ++l) {
    const std::uint32_t flat = base + l;
    if (slots_[flat].wait == Wait::kWarp) {
      slots_[flat].wait = Wait::kNone;  // runnable now; see release_barrier
      rq_push(flat);
    }
  }
}

void BlockState::wait_warp(ThreadCtx& ctx, std::uint64_t epoch_at_entry) {
  Slot& s = slots_[ctx.flat_tid];
  s.wait = Wait::kWarp;
  s.wait_epoch = epoch_at_entry;
  ctx.fiber->yield();
}

void* BlockState::shared_alloc(ThreadCtx& ctx, std::size_t bytes,
                               std::size_t align) {
  const std::uint32_t k = shared_alloc_ordinal_[ctx.flat_tid]++;
  if (k < shared_vars_.size()) {
    const SharedVar& v = shared_vars_[k];
    if (v.bytes != bytes || v.align != align) {
      std::string msg =
          "shared allocation mismatch at ordinal " + std::to_string(k) +
          " (kernel '" + params_.name + "', block " + block_idx_.to_string() +
          "): thread " + std::to_string(ctx.flat_tid) + " requested " +
          std::to_string(bytes) + " byte(s) aligned " + std::to_string(align) +
          ", but thread " + std::to_string(v.first_tid) + " established " +
          std::to_string(v.bytes) + " byte(s) aligned " +
          std::to_string(v.align) +
          " — every thread of a block must reach identical shared/"
          "groupprivate allocations";
      SanDiag d;
      d.kind = SanKind::kSharedAllocMismatch;
      d.message = msg;
      d.kernel = params_.name;
      d.block = block_idx_;
      d.tid_a = ctx.flat_tid;
      d.tid_b = v.first_tid;
      d.bytes = bytes;
      San::instance().record(std::move(d));
      throw std::logic_error(msg);
    }
    return v.ptr;
  }
  if (k != shared_vars_.size())
    throw std::logic_error(
        "shared allocation sequence diverged across threads: thread " +
        std::to_string(ctx.flat_tid) + " is at ordinal " + std::to_string(k) +
        " but only " + std::to_string(shared_vars_.size()) +
        " block-level shared variables exist (kernel '" + params_.name +
        "', block " + block_idx_.to_string() + ")");
  void* p = arena_.allocate(bytes, align);
  shared_vars_.push_back({p, bytes, align, ctx.flat_tid});
  return p;
}

bool BlockState::san_shared_access(ThreadCtx& ctx, const void* ptr,
                                   std::size_t bytes, bool is_write,
                                   bool is_atomic) {
  if (!arena_.contains(ptr)) return false;
  if (!san_enabled(kSanRace) || bytes == 0) return true;
  // Atomics are ordered rendezvous points, never data races — they
  // bypass the shadow entirely (and do not clear prior state: a plain
  // access racing with a *different* plain access still reports).
  if (is_atomic) return true;
  if (san_shadow_.empty()) san_shadow_.resize(arena_.capacity());
  const std::size_t off = arena_.offset_of(ptr);
  const std::size_t end = std::min(off + bytes, san_shadow_.size());
  const std::uint32_t me = ctx.flat_tid + 1;
  const auto epoch = static_cast<std::uint32_t>(barrier_epoch_);
  bool reported = false;
  for (std::size_t i = off; i < end; ++i) {
    SanShadowCell& c = san_shadow_[i];
    std::uint32_t other = 0;
    const char* kind = nullptr;
    if (is_write) {
      if (c.writer != 0 && c.writer != me && c.writer_epoch == epoch) {
        other = c.writer;
        kind = "write-after-write";
      } else if (c.reader != 0 && c.reader != me && c.reader_epoch == epoch) {
        other = c.reader;
        kind = "write-after-read";
      }
      c.writer = me;
      c.writer_epoch = epoch;
    } else {
      if (c.writer != 0 && c.writer != me && c.writer_epoch == epoch) {
        other = c.writer;
        kind = "read-after-write";
      }
      if (c.reader == 0 || c.reader_epoch != epoch) {
        c.reader = me;
        c.reader_epoch = epoch;
      } else if (c.reader != me) {
        c.reader = kManyReaders;
      }
    }
    if (kind == nullptr || reported) continue;
    reported = true;  // one diagnostic per access, but keep updating shadow
    SanDiag d;
    d.kind = SanKind::kSharedRace;
    d.kernel = params_.name;
    d.block = block_idx_;
    d.tid_a = ctx.flat_tid;
    d.tid_b = other == kManyReaders ? kSanManyThreads : other - 1;
    d.addr = static_cast<const std::uint8_t*>(ptr) + (i - off);
    d.bytes = bytes;
    d.epoch = barrier_epoch_;
    char buf[256];
    char whobuf[32];
    if (other == kManyReaders) {
      std::snprintf(whobuf, sizeof whobuf, "several threads");
    } else {
      std::snprintf(whobuf, sizeof whobuf, "thread %u", other - 1);
    }
    std::snprintf(
        buf, sizeof buf,
        "shared-memory race (%s): thread %u %s %zu byte(s) at shared+%zu "
        "also touched by %s in the same barrier interval (epoch %" PRIu64
        ") (kernel '%s', block %s)",
        kind, ctx.flat_tid, is_write ? "writes" : "reads", bytes, i,
        whobuf, barrier_epoch_, params_.name,
        block_idx_.to_string().c_str());
    d.message = buf;
    San::instance().record(std::move(d));
  }
  return true;
}

void BlockState::deadlock(const char* where) const {
  std::string msg = std::string("SIMT deadlock in ") + where + " (kernel '" +
                    params_.name + "', block " + block_idx_.to_string() +
                    "): ";
  std::uint32_t at_barrier = 0, at_warp = 0;
  for (std::uint32_t i = 0; i < nthreads_; ++i) {
    if (slots_[i].wait == Wait::kBarrier) at_barrier++;
    if (slots_[i].wait == Wait::kWarp) at_warp++;
  }
  // Under the ready queue, barrier waits live in the bitmap, not slots.
  for (const std::uint64_t bits : barrier_waitmap_)
    at_barrier += static_cast<std::uint32_t>(std::popcount(bits));
  msg += std::to_string(live_) + " live threads, " +
         std::to_string(at_barrier) + " at block barrier, " +
         std::to_string(at_warp) + " in warp collectives. Divergent "
         "synchronization (threads of one block taking sync paths that can "
         "never all meet) is the usual cause.";
  if (at_barrier > 0) {
    msg += " [barrier divergence: the stranded threads wait at barrier "
           "epoch " + std::to_string(barrier_epoch_) +
           ", which the remaining threads can never release]";
    if (san_enabled(kSanSync)) {
      SanDiag d;
      d.kind = SanKind::kBarrierDivergence;
      d.kernel = params_.name;
      d.block = block_idx_;
      d.epoch = barrier_epoch_;
      d.message = msg;
      San::instance().record(std::move(d));
    }
  }
  throw std::runtime_error(msg);
}

}  // namespace simt
