#include "simt/block.h"

#include <stdexcept>
#include <string>

#include "simt/device.h"

namespace simt {

namespace {
thread_local ThreadCtx* t_ctx = nullptr;
}

ThreadCtx& this_thread() {
  if (t_ctx == nullptr)
    throw std::logic_error("simt::this_thread() called outside a kernel");
  return *t_ctx;
}

bool in_kernel() { return t_ctx != nullptr; }

BlockState::BlockState(Device& device, const LaunchParams& params,
                       Dim3 block_idx, const KernelFn& kernel,
                       FiberStackPool& stacks)
    : device_(device), params_(params), block_idx_(block_idx),
      kernel_(kernel), stacks_(stacks),
      nthreads_(static_cast<std::uint32_t>(params.block.count())),
      live_(nthreads_),
      arena_(device.config().smem_per_block_max, params.dynamic_smem_bytes) {
  const std::uint32_t ws = device.config().warp_size;
  const std::uint32_t nwarps = static_cast<std::uint32_t>(ceil_div(nthreads_, ws));
  warps_.reserve(nwarps);
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    const std::uint32_t width = std::min(ws, nthreads_ - w * ws);
    warps_.push_back(std::make_unique<WarpState>(*this, w, width));
  }
  ctxs_.resize(nthreads_);
  slots_.resize(nthreads_);
  shared_alloc_ordinal_.assign(nthreads_, 0);
  for (std::uint32_t i = 0; i < nthreads_; ++i) setup_ctx(i, ctxs_[i]);
}

void BlockState::setup_ctx(std::uint32_t flat, ThreadCtx& ctx) {
  const std::uint32_t ws = device_.config().warp_size;
  ctx.thread_idx = params_.block.delinearize(flat);
  ctx.block_idx = block_idx_;
  ctx.block_dim = params_.block;
  ctx.grid_dim = params_.grid;
  ctx.flat_tid = flat;
  ctx.warp_id = flat / ws;
  ctx.lane = flat % ws;
  ctx.block = this;
  ctx.warp = warps_[ctx.warp_id].get();
  ctx.device = &device_;
  ctx.fiber = nullptr;
}

void BlockState::run() {
  if (params_.mode == ExecMode::kCooperative) {
    run_cooperative(stacks_);
  } else {
    run_direct();
  }
}

void BlockState::run_direct() {
  for (std::uint32_t i = 0; i < nthreads_; ++i) {
    t_ctx = &ctxs_[i];
    kernel_();
    t_ctx = nullptr;
    live_--;
  }
}

void BlockState::run_cooperative(FiberStackPool& stacks) {
  fibers_.reserve(nthreads_);
  for (std::uint32_t i = 0; i < nthreads_; ++i) {
    fibers_.push_back(std::make_unique<Fiber>(stacks, [this] { kernel_(); }));
    ctxs_[i].fiber = fibers_[i].get();
  }
  std::uint32_t remaining = nthreads_;
  while (remaining > 0) {
    bool progressed = false;
    for (std::uint32_t i = 0; i < nthreads_; ++i) {
      Fiber& f = *fibers_[i];
      if (f.done() || !runnable(i)) continue;
      slots_[i].wait = Wait::kNone;
      t_ctx = &ctxs_[i];
      f.resume();
      t_ctx = nullptr;
      progressed = true;
      if (f.done()) {
        remaining--;
        on_thread_exit(i);
      }
    }
    if (!progressed && remaining > 0) deadlock("block scheduler");
  }
  // Free fibers (and return stacks to the pool) before the arena dies.
  fibers_.clear();
}

bool BlockState::runnable(std::uint32_t i) const {
  const Slot& s = slots_[i];
  switch (s.wait) {
    case Wait::kNone:
      return true;
    case Wait::kBarrier:
      return barrier_epoch_ != s.wait_epoch;
    case Wait::kWarp:
      return ctxs_[i].warp->epoch() != s.wait_epoch;
  }
  return true;
}

void BlockState::on_thread_exit(std::uint32_t flat) {
  live_--;
  ctxs_[flat].warp->on_lane_exit(ctxs_[flat].lane);
  // A barrier waiting only on now-exited threads releases (kernel-language
  // behaviour: exited threads no longer participate in __syncthreads).
  if (live_ > 0 && barrier_arrived_ >= live_ && barrier_arrived_ > 0) {
    barrier_arrived_ = 0;
    barrier_epoch_++;
    counters_.block_barriers++;
  }
}

void BlockState::sync_threads(ThreadCtx& ctx) {
  if (ctx.fiber == nullptr)
    throw std::logic_error(
        "block barrier in ExecMode::kDirect; launch cooperatively");
  barrier_arrived_++;
  if (barrier_arrived_ >= live_) {
    barrier_arrived_ = 0;
    barrier_epoch_++;
    counters_.block_barriers++;
    return;
  }
  wait_barrier(ctx);
}

void BlockState::wait_barrier(ThreadCtx& ctx) {
  Slot& s = slots_[ctx.flat_tid];
  s.wait = Wait::kBarrier;
  s.wait_epoch = barrier_epoch_;
  ctx.fiber->yield();
}

void BlockState::wait_warp(ThreadCtx& ctx, std::uint64_t epoch_at_entry) {
  Slot& s = slots_[ctx.flat_tid];
  s.wait = Wait::kWarp;
  s.wait_epoch = epoch_at_entry;
  ctx.fiber->yield();
}

void* BlockState::shared_alloc(ThreadCtx& ctx, std::size_t bytes,
                               std::size_t align) {
  const std::uint32_t k = shared_alloc_ordinal_[ctx.flat_tid]++;
  if (k < shared_vars_.size()) {
    if (shared_vars_[k].bytes != bytes)
      throw std::logic_error(
          "shared allocation size diverged across threads at ordinal " +
          std::to_string(k) + ": " + std::to_string(shared_vars_[k].bytes) +
          " vs " + std::to_string(bytes));
    return shared_vars_[k].ptr;
  }
  if (k != shared_vars_.size())
    throw std::logic_error("shared allocation sequence diverged across threads");
  void* p = arena_.allocate(bytes, align);
  shared_vars_.push_back({p, bytes});
  return p;
}

void BlockState::deadlock(const char* where) const {
  std::string msg = std::string("SIMT deadlock in ") + where + " (kernel '" +
                    params_.name + "', block " + block_idx_.to_string() +
                    "): ";
  std::uint32_t at_barrier = 0, at_warp = 0;
  for (std::uint32_t i = 0; i < nthreads_; ++i) {
    if (fibers_[i]->done()) continue;
    if (slots_[i].wait == Wait::kBarrier) at_barrier++;
    if (slots_[i].wait == Wait::kWarp) at_warp++;
  }
  msg += std::to_string(live_) + " live threads, " +
         std::to_string(at_barrier) + " at block barrier, " +
         std::to_string(at_warp) + " in warp collectives. Divergent "
         "synchronization (threads of one block taking sync paths that can "
         "never all meet) is the usual cause.";
  throw std::runtime_error(msg);
}

}  // namespace simt
