// Umbrella header for the SIMT execution engine.
#pragma once

#include "simt/atomics.h"
#include "simt/block.h"
#include "simt/device.h"
#include "simt/dim.h"
#include "simt/fault.h"
#include "simt/fiber.h"
#include "simt/graph.h"
#include "simt/kernel.h"
#include "simt/memory.h"
#include "simt/perf.h"
#include "simt/profiler.h"
#include "simt/san.h"
#include "simt/shared_arena.h"
#include "simt/stream.h"
#include "simt/warp.h"
#include "simt/watchdog.h"
