#include "simt/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && !defined(OMPX_USE_UCONTEXT)
#define SIMT_FIBER_ASM 1
#else
#define SIMT_FIBER_ASM 0
#include <ucontext.h>
#endif

#if SIMT_FIBER_ASM
#include <immintrin.h>
#endif

// ASan cannot follow a manual stack switch: it tracks one stack per OS
// thread and misattributes frames (or crashes in __asan_handle_no_return
// when an exception unwinds on a fiber stack) unless each switch is
// announced through the fiber API. The annotations compile away when
// ASan is off.
#if defined(__SANITIZE_ADDRESS__)
#define SIMT_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SIMT_FIBER_ASAN 1
#endif
#endif
#ifndef SIMT_FIBER_ASAN
#define SIMT_FIBER_ASAN 0
#endif

#if SIMT_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#define SIMT_ASAN_START_SWITCH(save, bottom, size) \
  __sanitizer_start_switch_fiber(save, bottom, size)
#define SIMT_ASAN_FINISH_SWITCH(fake, bottom, size) \
  __sanitizer_finish_switch_fiber(fake, bottom, size)
#else
#define SIMT_ASAN_START_SWITCH(save, bottom, size) ((void)0)
#define SIMT_ASAN_FINISH_SWITCH(fake, bottom, size) ((void)0)
#endif

// TSan has the same blind spot: it models one synchronization clock per
// OS thread and reports false races (or loses real ones) across a manual
// stack switch unless every switch is announced through its fiber API.
#if defined(__SANITIZE_THREAD__)
#define SIMT_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIMT_FIBER_TSAN 1
#endif
#endif
#ifndef SIMT_FIBER_TSAN
#define SIMT_FIBER_TSAN 0
#endif

#if SIMT_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#define SIMT_TSAN_CREATE_FIBER() __tsan_create_fiber(0)
#define SIMT_TSAN_DESTROY_FIBER(f) \
  do {                             \
    if ((f) != nullptr) __tsan_destroy_fiber(f); \
  } while (0)
#define SIMT_TSAN_CURRENT_FIBER() __tsan_get_current_fiber()
#define SIMT_TSAN_SWITCH_TO_FIBER(f) __tsan_switch_to_fiber(f, 0)
#else
#define SIMT_TSAN_CREATE_FIBER() nullptr
#define SIMT_TSAN_DESTROY_FIBER(f) ((void)0)
#define SIMT_TSAN_CURRENT_FIBER() nullptr
#define SIMT_TSAN_SWITCH_TO_FIBER(f) ((void)0)
#endif

namespace simt {

namespace {
thread_local Fiber* t_current_fiber = nullptr;

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}
}  // namespace

Fiber* Fiber::current() { return t_current_fiber; }

#if SIMT_FIBER_ASM

extern "C" void simt_fiber_swap(void** save_sp, void* restore_sp);
extern "C" void simt_fiber_entry_thunk();

struct Fiber::Context {
  void* sp = nullptr;
};

extern "C" [[noreturn]] void simt_fiber_trampoline(Fiber* self) {
  Fiber::trampoline(self);
  __builtin_unreachable();
}

Fiber::Fiber(FiberStackPool& pool, EntryFn entry)
    : pool_(pool),
      entry_(std::move(entry)),
      ctx_(std::make_unique<Context>()),
      link_(std::make_unique<Context>()) {
  stack_size_ = pool_.stack_size();
  stack_ = pool_.lease();
  tsan_fiber_ = SIMT_TSAN_CREATE_FIBER();
  arm();
}

void Fiber::arm() {
  // Seed the stack so the restore path of simt_fiber_swap "returns" into
  // simt_fiber_entry_thunk with this Fiber parked in r12. Layout must
  // mirror the save frame in fiber_switch_x86_64.S exactly.
  auto* top = reinterpret_cast<std::uint64_t*>(
      reinterpret_cast<std::uint8_t*>(stack_) + stack_size_);
  // `top` is page-aligned, hence 16-byte aligned; the thunk runs with
  // rsp == top, satisfying the call-site alignment rule.
  std::uint64_t* sp = top - 8;  // 64-byte seed frame
  const std::uint32_t mxcsr = _mm_getcsr();
  std::uint16_t fcw = 0;
  asm volatile("fnstcw %0" : "=m"(fcw));
  sp[0] = static_cast<std::uint64_t>(mxcsr) |
          (static_cast<std::uint64_t>(fcw) << 32);
  sp[1] = 0;                                      // r15
  sp[2] = 0;                                      // r14
  sp[3] = 0;                                      // r13
  sp[4] = reinterpret_cast<std::uint64_t>(this);  // r12 -> thunk's rdi
  sp[5] = 0;                                      // rbx
  sp[6] = 0;                                      // rbp
  sp[7] = reinterpret_cast<std::uint64_t>(&simt_fiber_entry_thunk);
  ctx_->sp = sp;
}

void Fiber::resume() {
  if (done_) throw std::logic_error("Fiber::resume on finished fiber");
  Fiber* prev = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  [[maybe_unused]] void* host_fake = nullptr;
  SIMT_ASAN_START_SWITCH(&host_fake, stack_, stack_size_);
  tsan_link_ = SIMT_TSAN_CURRENT_FIBER();
  SIMT_TSAN_SWITCH_TO_FIBER(tsan_fiber_);
  simt_fiber_swap(&link_->sp, ctx_->sp);
  SIMT_ASAN_FINISH_SWITCH(host_fake, nullptr, nullptr);
  t_current_fiber = prev;
  if (exception_) {
    auto e = exception_;
    exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  SIMT_ASAN_START_SWITCH(&asan_fake_stack_, asan_link_stack_,
                         asan_link_stack_size_);
  SIMT_TSAN_SWITCH_TO_FIBER(tsan_link_);
  simt_fiber_swap(&ctx_->sp, link_->sp);
  SIMT_ASAN_FINISH_SWITCH(asan_fake_stack_, &asan_link_stack_,
                          &asan_link_stack_size_);
}

void Fiber::trampoline(Fiber* self) {
  SIMT_ASAN_FINISH_SWITCH(nullptr, &self->asan_link_stack_,
                          &self->asan_link_stack_size_);
  try {
    self->entry_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->done_ = true;
  // nullptr save slot: the fiber is terminating, so ASan frees its fake
  // stack instead of keeping it for a return that never happens.
  SIMT_ASAN_START_SWITCH(nullptr, self->asan_link_stack_,
                         self->asan_link_stack_size_);
  SIMT_TSAN_SWITCH_TO_FIBER(self->tsan_link_);
  // Final switch back to the scheduler. The save slot is never resumed
  // again; it only exists because the swap routine unconditionally saves.
  simt_fiber_swap(&self->ctx_->sp, self->link_->sp);
}

#else  // ucontext fallback

struct Fiber::Context {
  ucontext_t uc;
};

extern "C" void simt_fiber_trampoline_uc(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  Fiber::trampoline(self);
}

Fiber::Fiber(FiberStackPool& pool, EntryFn entry)
    : pool_(pool),
      entry_(std::move(entry)),
      ctx_(std::make_unique<Context>()),
      link_(std::make_unique<Context>()) {
  stack_size_ = pool_.stack_size();
  stack_ = pool_.lease();
  tsan_fiber_ = SIMT_TSAN_CREATE_FIBER();
  arm();
}

void Fiber::arm() {
  if (getcontext(&ctx_->uc) != 0)
    throw std::runtime_error("getcontext failed");
  ctx_->uc.uc_stack.ss_sp = stack_;
  ctx_->uc.uc_stack.ss_size = stack_size_;
  ctx_->uc.uc_link = &link_->uc;
  const auto p = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_->uc, reinterpret_cast<void (*)()>(simt_fiber_trampoline_uc),
              2, static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
}

void Fiber::resume() {
  if (done_) throw std::logic_error("Fiber::resume on finished fiber");
  Fiber* prev = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  [[maybe_unused]] void* host_fake = nullptr;
  SIMT_ASAN_START_SWITCH(&host_fake, stack_, stack_size_);
  tsan_link_ = SIMT_TSAN_CURRENT_FIBER();
  SIMT_TSAN_SWITCH_TO_FIBER(tsan_fiber_);
  swapcontext(&link_->uc, &ctx_->uc);
  SIMT_ASAN_FINISH_SWITCH(host_fake, nullptr, nullptr);
  t_current_fiber = prev;
  if (exception_) {
    auto e = exception_;
    exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  SIMT_ASAN_START_SWITCH(&asan_fake_stack_, asan_link_stack_,
                         asan_link_stack_size_);
  SIMT_TSAN_SWITCH_TO_FIBER(tsan_link_);
  swapcontext(&ctx_->uc, &link_->uc);
  SIMT_ASAN_FINISH_SWITCH(asan_fake_stack_, &asan_link_stack_,
                          &asan_link_stack_size_);
}

void Fiber::trampoline(Fiber* self) {
  SIMT_ASAN_FINISH_SWITCH(nullptr, &self->asan_link_stack_,
                          &self->asan_link_stack_size_);
  try {
    self->entry_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->done_ = true;
  // nullptr save slot: the fiber is terminating, so ASan frees its fake
  // stack instead of keeping it for a return that never happens.
  SIMT_ASAN_START_SWITCH(nullptr, self->asan_link_stack_,
                         self->asan_link_stack_size_);
  SIMT_TSAN_SWITCH_TO_FIBER(self->tsan_link_);
  // uc_link returns to the scheduler when this function falls off the end.
}

#endif  // SIMT_FIBER_ASM

void Fiber::reset() {
  if (started_ && !done_)
    throw std::logic_error("Fiber::reset on a suspended fiber");
  started_ = false;
  done_ = false;
  exception_ = nullptr;
  arm();
}

void Fiber::reset(EntryFn entry) {
  if (started_ && !done_)
    throw std::logic_error("Fiber::reset on a suspended fiber");
  entry_ = std::move(entry);
  started_ = false;
  done_ = false;
  exception_ = nullptr;
  arm();
}

Fiber::~Fiber() {
  SIMT_TSAN_DESTROY_FIBER(tsan_fiber_);
  if (stack_ != nullptr) pool_.release(stack_);
}

FiberPool::FiberPool(FiberStackPool& stacks, std::size_t max_cached)
    : stacks_(stacks), max_cached_(max_cached) {}

std::unique_ptr<Fiber> FiberPool::acquire(Fiber::EntryFn entry) {
  if (!free_.empty()) {
    std::unique_ptr<Fiber> f = std::move(free_.back());
    free_.pop_back();
    f->reset(std::move(entry));
    return f;
  }
  return std::make_unique<Fiber>(stacks_, std::move(entry));
}

void FiberPool::recycle(std::unique_ptr<Fiber> fiber) {
  if (fiber == nullptr) return;
  // A suspended fiber cannot be re-armed (reset() would throw); let it
  // go — its destructor releases the stack back to the stack pool.
  if (fiber->done() && free_.size() < max_cached_)
    free_.push_back(std::move(fiber));
}

FiberStackPool::FiberStackPool(std::size_t stack_size, std::size_t max_cached)
    : stack_size_(round_up(stack_size, page_size())), max_cached_(max_cached) {}

FiberStackPool::~FiberStackPool() {
  for (void* s : free_) unmap_stack(s);
}

void* FiberStackPool::lease() {
  if (!free_.empty()) {
    void* s = free_.back();
    free_.pop_back();
    return s;
  }
  return map_stack();
}

void FiberStackPool::release(void* stack) {
  if (free_.size() < max_cached_) {
    free_.push_back(stack);
  } else {
    unmap_stack(stack);
    total_mapped_ -= 1;
  }
}

void* FiberStackPool::map_stack() {
  const std::size_t ps = page_size();
  // One guard page below the stack: overflow faults instead of silently
  // scribbling over a neighbouring fiber's stack.
  void* base = ::mmap(nullptr, stack_size_ + ps, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) throw std::bad_alloc();
  if (::mprotect(base, ps, PROT_NONE) != 0) {
    ::munmap(base, stack_size_ + ps);
    throw std::runtime_error("mprotect(guard) failed");
  }
  total_mapped_ += 1;
  return static_cast<std::uint8_t*>(base) + ps;
}

void FiberStackPool::unmap_stack(void* stack) {
  const std::size_t ps = page_size();
  ::munmap(static_cast<std::uint8_t*>(stack) - ps, stack_size_ + ps);
}

}  // namespace simt
