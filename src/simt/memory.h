// Device global-memory manager.
//
// Each simulated device owns a distinct allocation space. Allocations
// live in host memory (the simulation is in-process) but are tracked in
// a registry so the engine can enforce the device/host pointer
// distinction (is_device_ptr), device capacity, and double-free /
// invalid-free errors — the failure modes libomptarget and the CUDA
// runtime check for.
//
// The registry doubles as the memcheck substrate for ompxsan (see
// simt/san.h): with kSanMem enabled, allocations grow poisoned
// redzones (verified on free, so raw-pointer overruns surface),
// freed blocks are quarantined so use-after-free is detectable, and
// check_access() classifies an arbitrary pointer range for the
// instrumented accessors. Independent of the sanitizer, every free
// poison-fills the payload (0xDD) and leak_report() lists what is
// still live — Device teardown logs it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace simt {

enum class CopyKind { kHostToDevice, kDeviceToHost, kDeviceToDevice, kHostToHost };

/// Fill patterns (AddressSanitizer-style conventions).
inline constexpr unsigned char kRedzonePattern = 0xAB;  ///< guard bands
inline constexpr unsigned char kFreePattern = 0xDD;     ///< freed payload

/// Result of classifying a pointer range against the registry
/// (ompxsan memcheck; see DeviceMemory::check_access).
struct MemAccessCheck {
  enum class Status {
    kOk,       ///< fully inside one live allocation
    kOob,      ///< touches a live allocation's redzone / runs past it
    kFreed,    ///< inside a quarantined (freed) allocation
    kUnknown,  ///< no allocation of this space involved
  };
  Status status = Status::kUnknown;
  std::uintptr_t base = 0;  ///< user base of the allocation involved
  std::size_t size = 0;     ///< its user size in bytes
};

/// One live allocation, as reported at device teardown.
struct LeakInfo {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
};

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}
  ~DeviceMemory();

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocates `bytes` of device memory (256-byte aligned, like CUDA).
  /// Returns nullptr for bytes == 0. Throws DeviceOOMError (a
  /// std::bad_alloc) when the device capacity would be exceeded or the
  /// fault injector's "oom" site fires. With kSanMem enabled the block
  /// is bracketed by poisoned redzones (not counted against capacity).
  void* allocate(std::size_t bytes);

  /// Frees a pointer returned by allocate(). Throws std::invalid_argument
  /// on non-device or already-freed pointers. nullptr is a no-op.
  /// Always poison-fills the payload (kFreePattern); verifies redzone
  /// poison when present (corruption becomes a SanDiag); quarantines
  /// the block instead of releasing it while kSanMem is enabled.
  void deallocate(void* ptr);

  /// True if `ptr` points into any live device allocation (interior
  /// pointers included).
  [[nodiscard]] bool contains(const void* ptr) const;

  /// Size of the live allocation starting exactly at `ptr`, or 0.
  [[nodiscard]] std::size_t allocation_size(const void* ptr) const;

  [[nodiscard]] std::uint64_t bytes_in_use() const;
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t live_allocations() const;

  /// Every live allocation (base pointer + user size), for the
  /// teardown leak report.
  [[nodiscard]] std::vector<LeakInfo> leak_report() const;

  /// Classifies the byte range [ptr, ptr+bytes) for the memcheck
  /// accessors: inside a live allocation, out of its bounds (redzone /
  /// overrun / underrun), inside a quarantined free, or unknown to
  /// this space. bytes == 0 is treated as 1.
  [[nodiscard]] MemAccessCheck check_access(const void* ptr,
                                            std::size_t bytes) const;

  /// Copies with device-pointer validation appropriate to `kind`.
  /// Returns the byte count (for transfer accounting by the caller).
  std::size_t copy(void* dst, const void* src, std::size_t bytes, CopyKind kind) const;

  /// memset on a device allocation with bounds validation.
  void set(void* ptr, int value, std::size_t bytes) const;

  /// Validates that [ptr, ptr+bytes) lies within one live allocation of
  /// this space; throws std::out_of_range naming `what` otherwise. Used
  /// internally by copy()/set() and by the cross-device peer-copy path,
  /// which must bounds-check each endpoint against its own device.
  void validate_device_range(const void* ptr, std::size_t bytes,
                             const char* what) const;

  /// Pitched 2-D copy (cudaMemcpy2D): `height` rows of `width` bytes,
  /// rows `dpitch`/`spitch` bytes apart. Pitches must be >= width; the
  /// whole pitched footprint of the device side(s) is bounds-checked.
  /// Returns the payload byte count (width * height).
  std::size_t copy_2d(void* dst, std::size_t dpitch, const void* src,
                      std::size_t spitch, std::size_t width,
                      std::size_t height, CopyKind kind) const;

 private:
  /// Registry entry. real_base == user base and redzone == 0 for
  /// allocations made while the sanitizer was off.
  struct AllocInfo {
    std::size_t bytes = 0;         ///< user size
    std::uintptr_t real_base = 0;  ///< what aligned_alloc returned
    std::size_t redzone = 0;       ///< guard bytes on each side
    std::size_t footprint = 0;     ///< total bytes from real_base
  };

  void verify_redzones_locked(std::uintptr_t user_base, const AllocInfo& info);

  std::uint64_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t in_use_ = 0;
  // user base pointer -> info; ordered so interior-pointer lookup is
  // O(log n).
  std::map<std::uintptr_t, AllocInfo> allocs_;
  // Quarantine of freed blocks (kSanMem): storage stays resident so
  // use-after-free is classifiable; bounded FIFO eviction.
  std::map<std::uintptr_t, AllocInfo> quarantine_;
  std::deque<std::uintptr_t> quarantine_order_;
  std::uint64_t quarantine_bytes_ = 0;
  static constexpr std::uint64_t kQuarantineCap = 64ull << 20;
};

/// Aggregate accounting of a device's stream-ordered memory pool.
struct MemPoolStats {
  std::uint64_t reuse_hits = 0;    ///< malloc_async served from the pool
  std::uint64_t misses = 0;        ///< malloc_async fell back to allocate()
  std::uint64_t frees = 0;         ///< free_async blocks returned to the pool
  std::uint64_t bytes_reused = 0;  ///< payload bytes served from the pool
  std::uint64_t pooled_blocks = 0; ///< blocks currently cached
  std::uint64_t pooled_bytes = 0;  ///< bytes currently cached
  std::uint64_t reclaimed_blocks = 0;  ///< pooled blocks returned to the heap
  std::uint64_t reclaimed_bytes = 0;   ///< bytes returned by trim/trim_stream
};

/// The stream-ordered allocator's free pool (cudaMallocAsync semantics).
///
/// `Stream::free_async` returns a block to its stream's pool at *enqueue*
/// time: previously enqueued ops on the same stream still execute before
/// any op that uses the reused pointer, so same-stream reuse is ordered
/// by construction — exactly the guarantee CUDA's stream-ordered
/// allocator gives. Blocks stay live in DeviceMemory while pooled (no
/// poison/quarantine) and are only deallocate()d by trim(), which runs
/// on stream destroy and device teardown. Reuse requires an exact size
/// match and never crosses streams (cross-stream reuse would need event
/// ordering the pool cannot see).
class StreamMemPool {
 public:
  explicit StreamMemPool(DeviceMemory& mem) : mem_(mem) {}
  ~StreamMemPool() { trim(); }

  StreamMemPool(const StreamMemPool&) = delete;
  StreamMemPool& operator=(const StreamMemPool&) = delete;

  /// A pooled block of exactly `bytes` from `stream_id`'s pool, or
  /// nullptr on a miss (the caller then allocates fresh). Updates
  /// hit/miss accounting either way.
  void* acquire(std::uint64_t stream_id, std::size_t bytes);

  /// Returns `ptr` (a live DeviceMemory allocation of `bytes`) to
  /// `stream_id`'s pool for reuse by later malloc_asyncs on that stream.
  void release(std::uint64_t stream_id, void* ptr, std::size_t bytes);

  /// deallocate()s every pooled block (all streams / one stream).
  void trim();
  void trim_stream(std::uint64_t stream_id);

  /// Async-origin registry: every pointer currently live to a client
  /// that came from malloc_async, keyed back to its stream. The free
  /// paths consult it so a cross-API free (ompx_free of a malloc_async
  /// block, free_async of a plain ompx_malloc block) is rejected with a
  /// clean error instead of corrupting the pool — a pooled block that a
  /// later plain free also deallocates would dangle until trim
  /// double-frees it. trim_stream releases the stream's entries: once
  /// the owning stream is destroyed (including a timed-out stream the
  /// watchdog killed), its surviving blocks become plain-freeable, so
  /// they are never stranded.
  void note_async_live(const void* ptr, std::uint64_t stream_id);
  void note_async_dead(const void* ptr);
  [[nodiscard]] bool is_async_live(const void* ptr) const;

  [[nodiscard]] MemPoolStats stats() const;
  void reset_stats();

 private:
  DeviceMemory& mem_;
  mutable std::mutex mu_;
  // stream id -> exact-size free lists (size -> block), LIFO per size.
  std::unordered_map<std::uint64_t, std::multimap<std::size_t, void*>> pools_;
  std::unordered_map<const void*, std::uint64_t> async_live_;  ///< ptr -> stream
  MemPoolStats stats_;
};

}  // namespace simt
