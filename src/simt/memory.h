// Device global-memory manager.
//
// Each simulated device owns a distinct allocation space. Allocations
// live in host memory (the simulation is in-process) but are tracked in
// a registry so the engine can enforce the device/host pointer
// distinction (is_device_ptr), device capacity, and double-free /
// invalid-free errors — the failure modes libomptarget and the CUDA
// runtime check for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

namespace simt {

enum class CopyKind { kHostToDevice, kDeviceToHost, kDeviceToDevice, kHostToHost };

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}
  ~DeviceMemory();

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocates `bytes` of device memory (256-byte aligned, like CUDA).
  /// Returns nullptr for bytes == 0. Throws std::bad_alloc when the
  /// device capacity would be exceeded.
  void* allocate(std::size_t bytes);

  /// Frees a pointer returned by allocate(). Throws std::invalid_argument
  /// on non-device or already-freed pointers. nullptr is a no-op.
  void deallocate(void* ptr);

  /// True if `ptr` points into any live device allocation (interior
  /// pointers included).
  [[nodiscard]] bool contains(const void* ptr) const;

  /// Size of the live allocation starting exactly at `ptr`, or 0.
  [[nodiscard]] std::size_t allocation_size(const void* ptr) const;

  [[nodiscard]] std::uint64_t bytes_in_use() const;
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t live_allocations() const;

  /// Copies with device-pointer validation appropriate to `kind`.
  /// Returns the byte count (for transfer accounting by the caller).
  std::size_t copy(void* dst, const void* src, std::size_t bytes, CopyKind kind) const;

  /// memset on a device allocation with bounds validation.
  void set(void* ptr, int value, std::size_t bytes) const;

  /// Pitched 2-D copy (cudaMemcpy2D): `height` rows of `width` bytes,
  /// rows `dpitch`/`spitch` bytes apart. Pitches must be >= width; the
  /// whole pitched footprint of the device side(s) is bounds-checked.
  /// Returns the payload byte count (width * height).
  std::size_t copy_2d(void* dst, std::size_t dpitch, const void* src,
                      std::size_t spitch, std::size_t width,
                      std::size_t height, CopyKind kind) const;

 private:
  void validate_device_range(const void* ptr, std::size_t bytes,
                             const char* what) const;

  std::uint64_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t in_use_ = 0;
  // base pointer -> size; ordered so interior-pointer lookup is O(log n).
  std::map<std::uintptr_t, std::size_t> allocs_;
};

}  // namespace simt
