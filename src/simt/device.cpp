#include "simt/device.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "simt/block.h"
#include "simt/fault.h"
#include "simt/memory.h"
#include "simt/profiler.h"
#include "simt/san.h"
#include "simt/stream.h"
#include "simt/watchdog.h"

namespace simt {

namespace {

// Fiber stacks are recycled per OS thread (FiberStackPool is not
// thread-safe by design — a block and its fibers live on one thread).
std::atomic<std::size_t> g_fiber_stack_bytes{FiberStackPool::kDefaultStackSize};

FiberStackPool& thread_stack_pool() {
  thread_local FiberStackPool pool(g_fiber_stack_bytes.load());
  return pool;
}

// Finished fibers are recycled whole across launches (object + machine
// contexts + stack lease amount to several heap round-trips per
// simulated thread otherwise). Constructed after the stack pool, so it
// is destroyed first and cached fibers can return their stacks.
FiberPool& thread_fiber_pool() {
  thread_local FiberPool pool(thread_stack_pool());
  return pool;
}

// --- lane-execution policy + per-kernel hint registry --------------------

/// OMPX_EXEC=fiber|convergent|auto, parsed once at first use. Unknown
/// values fall back to auto (forward compatibility, like OMPX_SAN).
ExecPolicy env_exec_policy() {
  const char* spec = std::getenv("OMPX_EXEC");
  if (spec == nullptr) return ExecPolicy::kAuto;
  if (std::strcmp(spec, "fiber") == 0) return ExecPolicy::kFiber;
  if (std::strcmp(spec, "convergent") == 0) return ExecPolicy::kConvergent;
  return ExecPolicy::kAuto;
}

std::atomic<ExecPolicy> g_exec_policy{env_exec_policy()};

struct ExecHintRegistry {
  std::mutex mu;
  std::unordered_map<std::string, ExecHint> hints;

  static ExecHintRegistry& instance() {
    static ExecHintRegistry* r = new ExecHintRegistry;  // leaked: workers
    return *r;                                          // may outlive main
  }
};

}  // namespace

void set_exec_hint(const std::string& kernel, ExecHint hint) {
  ExecHintRegistry& r = ExecHintRegistry::instance();
  std::lock_guard lock(r.mu);
  r.hints[kernel] = hint;
}

ExecHint exec_hint(const std::string& kernel) {
  ExecHintRegistry& r = ExecHintRegistry::instance();
  std::lock_guard lock(r.mu);
  const auto it = r.hints.find(kernel);
  return it != r.hints.end() ? it->second : ExecHint{};
}

void clear_exec_hints() {
  ExecHintRegistry& r = ExecHintRegistry::instance();
  std::lock_guard lock(r.mu);
  r.hints.clear();
}

void note_exec_deflation(const char* kernel) {
  ExecHintRegistry& r = ExecHintRegistry::instance();
  std::lock_guard lock(r.mu);
  r.hints[kernel].needs_fibers = true;
}

void set_exec_policy(ExecPolicy policy) {
  g_exec_policy.store(policy, std::memory_order_relaxed);
}

ExecPolicy exec_policy() {
  return g_exec_policy.load(std::memory_order_relaxed);
}

const char* exec_mode_name(ExecMode mode, LaneExec lane_exec) {
  if (mode == ExecMode::kDirect) return "direct";
  return lane_exec == LaneExec::kConvergent ? "convergent" : "fiber";
}

LaneExec Device::resolve_lane_exec(const LaunchParams& params) const {
  // The lane loop is an optimization of the ready-queue cooperative
  // scheduler only: direct mode already runs plain calls, and the
  // legacy sweep allocates fibers eagerly by design.
  if (params.mode != ExecMode::kCooperative ||
      opts_.scheduler != BlockScheduler::kReadyQueue)
    return LaneExec::kFiber;
  // Precedence: per-launch request > device options > OMPX_EXEC policy.
  LaneExec want = params.lane_exec;
  if (want == LaneExec::kDefault) want = opts_.lane_exec;
  if (want == LaneExec::kDefault) {
    switch (exec_policy()) {
      case ExecPolicy::kFiber: return LaneExec::kFiber;
      case ExecPolicy::kConvergent: want = LaneExec::kConvergent; break;
      case ExecPolicy::kAuto:
        // Conservative default: only kernels hinted convergent take the
        // lane loop; everything unhinted keeps the proven fiber path.
        want = exec_hint(params.name).convergent ? LaneExec::kConvergent
                                                 : LaneExec::kFiber;
        break;
    }
  }
  if (want == LaneExec::kConvergent && exec_hint(params.name).needs_fibers) {
    // Known (declared or learned) to hit a collective: the convergent
    // probe would deflate and replay its prefix — skip straight to
    // fibers. Same results either way; this is the parity fast path.
    return LaneExec::kFiber;
  }
  return want;
}

Device::Device(DeviceConfig cfg, EngineOptions opts)
    : cfg_(std::move(cfg)), opts_(opts),
      mem_(std::make_unique<DeviceMemory>(cfg_.global_mem_bytes)),
      cmem_(std::make_unique<DeviceMemory>(cfg_.const_mem_bytes)),
      pool_(std::make_unique<StreamMemPool>(*mem_)),
      exec_(std::make_unique<StreamExecutor>(*this)) {
  if (opts_.fiber_stack_bytes != 0)
    g_fiber_stack_bytes.store(opts_.fiber_stack_bytes);
}

Device::~Device() {
  // Stop the stream workers first (an abandoned capture's graph-owned
  // allocations are released with it), then trim the stream-ordered
  // pool — pooled blocks are live-but-reusable, not leaks.
  exec_.reset();
  pool_.reset();
  // Teardown leak report, unconditional (cheap: one registry walk). A
  // process that exits with live device allocations almost always
  // forgot its frees — CUDA's cudaErrorLeak analogue. Under kSanMem the
  // leaks are additionally recorded as sanitizer diagnostics so they
  // appear in the OMPX_SAN exit report.
  const std::vector<LeakInfo> leaks = mem_->leak_report();
  if (!leaks.empty()) {
    std::uint64_t bytes = 0;
    for (const LeakInfo& l : leaks) bytes += l.bytes;
    std::fprintf(stderr,
                 "[simt] device '%s': %zu allocation(s) (%llu bytes) still "
                 "live at teardown\n",
                 cfg_.name.c_str(), leaks.size(),
                 static_cast<unsigned long long>(bytes));
    if (san_enabled(kSanMem)) {
      for (const LeakInfo& l : leaks) {
        SanDiag d;
        d.kind = SanKind::kLeak;
        d.addr = l.ptr;
        d.bytes = l.bytes;
        d.message = "leaked device allocation of " + std::to_string(l.bytes) +
                    " byte(s) still live at teardown of device '" + cfg_.name +
                    "'";
        San::instance().record(std::move(d));
      }
    }
  }
}

void Device::mark_lost(const std::string& reason) {
  {
    std::lock_guard lock(lost_mu_);
    lost_reason_ = reason;
  }
  lost_.store(true, std::memory_order_release);
}

void Device::check_not_lost(const char* who) const {
  if (!lost_.load(std::memory_order_acquire)) return;
  std::string reason;
  {
    std::lock_guard lock(lost_mu_);
    reason = lost_reason_;
  }
  throw DeviceLostError(std::string(who) + ": device '" + cfg_.name +
                        "' is lost (" + reason + ")");
}

void Device::reset() {
  {
    std::lock_guard lock(lost_mu_);
    lost_reason_.clear();
  }
  lost_.store(false, std::memory_order_release);
  // Drain every stream, discarding asynchronous errors as they surface.
  // synchronize_all returns early when an async error is pending, so
  // loop until the drain completes with no error left; the queues are
  // finite, so this terminates.
  for (;;) {
    exec_->synchronize_all();
    try {
      exec_->check_async_error();
    } catch (...) {
      continue;
    }
    break;
  }
}

void Device::validate(const LaunchParams& p) const {
  check_not_lost("kernel launch");
  if (fault_should_fire(FaultSite::kDeviceLost)) {
    const_cast<Device*>(this)->mark_lost("fault injection at launch of '" +
                                         std::string(p.name) + "'");
    check_not_lost("kernel launch");
  }
  if (p.grid.count() == 0 || p.block.count() == 0)
    throw std::invalid_argument(std::string("launch '") + p.name +
                                "': empty grid or block");
  if (p.block.count() > cfg_.max_threads_per_block)
    throw std::invalid_argument(
        std::string("launch '") + p.name + "': block " + p.block.to_string() +
        " exceeds max_threads_per_block=" +
        std::to_string(cfg_.max_threads_per_block));
  if (p.dynamic_smem_bytes > cfg_.smem_per_block_max)
    throw std::invalid_argument(
        std::string("launch '") + p.name + "': dynamic shared memory " +
        std::to_string(p.dynamic_smem_bytes) + " exceeds per-block limit " +
        std::to_string(cfg_.smem_per_block_max));
}

LaunchRecord Device::launch_sync(const LaunchParams& caller_params,
                                 const KernelFn& kernel) {
  validate(caller_params);
  const auto t0 = std::chrono::steady_clock::now();

  // Stamp the resolved lane-execution mode once per launch; every block
  // of this launch (and the record/trace span) sees the same decision.
  LaunchParams params = caller_params;
  params.lane_exec = resolve_lane_exec(caller_params);
  if (params.lane_exec == LaneExec::kConvergent &&
      exec_hint(params.name).atomics_ok)
    params.inline_atomics = true;

  const LaunchStats stats = run_blocks(params, kernel);

  LaunchRecord rec;
  rec.name = params.name;
  rec.grid = params.grid;
  rec.block = params.block;
  rec.exec_mode = exec_mode_name(params.mode, params.lane_exec);
  rec.stats = stats;
  rec.time = model_time(cfg_, params.profile, params.cost, stats,
                        static_cast<std::uint32_t>(params.block.count()),
                        params.dynamic_smem_bytes, costs_);
  // Modeled-time watchdog (the simulator's cudaErrorLaunchTimeout): a
  // launch whose modeled duration exceeds the budget fails instead of
  // being logged, so a runaway kernel surfaces as OMPX_ERROR_TIMEOUT.
  const double budget_ms = watchdog_ms();
  if (budget_ms > 0.0 && rec.time.total_ms > budget_ms)
    throw TimeoutError("kernel '" + rec.name +
                       "' exceeded the watchdog budget: modeled " +
                       std::to_string(rec.time.total_ms) + " ms > " +
                       std::to_string(budget_ms) + " ms");
  rec.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  if (params.log) {
    std::lock_guard lock(log_mu_);
    log_.push_back(rec);
  }
  // Stream kernels are spanned by the executor (it knows the stream
  // track and modeled start); only direct host-synchronous launches
  // record here, on the device's sync track.
  if (profiling_enabled() && !telemetry_detail::t_in_stream_op) {
    TraceSpan span;
    span.kind = SpanKind::kKernel;
    span.name = rec.name;
    span.dur_ms = rec.time.total_ms;
    span.wall_ms = rec.wall_ms;
    span.grid = rec.grid;
    span.block = rec.block;
    span.exec_mode = rec.exec_mode;
    span.stats = rec.stats;
    span.time = rec.time;
    Profiler::instance().record(*this, span);
  }
  return rec;
}

LaunchStats Device::run_blocks(const LaunchParams& params,
                               const KernelFn& kernel) {
  LaunchStats stats;
  stats.blocks = params.grid.count();
  stats.threads = stats.blocks * params.block.count();
  stats.runtime_init = params.rt.runtime_init;
  stats.generic_mode = params.rt.generic_mode;
  stats.spill_in_shared = params.rt.spill_in_shared;

  BlockCounters total;
  std::uint64_t steals_total = 0;
  const std::uint64_t nblocks = params.grid.count();
  const unsigned workers = std::max(
      1u, opts_.workers != 0 ? opts_.workers
                             : std::thread::hardware_concurrency());
  auto run_range = [&](std::uint64_t begin, std::uint64_t end,
                       BlockCounters& acc) {
    for (std::uint64_t b = begin; b < end; ++b) {
      Dim3 idx = params.grid.delinearize(b);
      idx.x += params.grid_offset.x;
      idx.y += params.grid_offset.y;
      idx.z += params.grid_offset.z;
      BlockState block(*this, params, idx, kernel, thread_fiber_pool());
      block.run();
      const BlockCounters& c = block.counters();
      acc.block_barriers += c.block_barriers;
      acc.warp_collectives += c.warp_collectives;
      acc.warp_syncs += c.warp_syncs;
      acc.atomics += c.atomics;
      acc.parallel_handshakes += c.parallel_handshakes;
      acc.workshare_dispatches += c.workshare_dispatches;
      acc.globalized_bytes += c.globalized_bytes;
      acc.fibers_created += c.fibers_created;
      acc.fiber_reuses += c.fiber_reuses;
      acc.sched_lane_loops += c.sched_lane_loops;
      acc.sched_deflations += c.sched_deflations;
    }
  };
  if (workers == 1 || nblocks < 2) {
    run_range(0, nblocks, total);
  } else {
    // Blocks are independent (CUDA semantics: no inter-block ordering),
    // so workers pull chunks from a shared atomic queue instead of a
    // static partition: an irregular block (XSBench/RSBench lookups)
    // delays only its own chunk while idle workers keep stealing the
    // rest. Results are identical for any worker count or chunk size;
    // per-worker counter accumulators are merged at join so stats stay
    // exact. Exceptions drain the queue (fail fast) and propagate.
    const unsigned n = static_cast<unsigned>(
        std::min<std::uint64_t>(workers, nblocks));
    const std::uint64_t chunk =
        opts_.steal_chunk_blocks != 0
            ? opts_.steal_chunk_blocks
            : std::max<std::uint64_t>(1, nblocks / (8ull * n));
    std::atomic<std::uint64_t> next{0};
    std::vector<BlockCounters> accs(n);
    std::vector<std::uint64_t> steals(n, 0);
    std::vector<std::exception_ptr> errs(n);
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
      pool.emplace_back([&, w] {
        try {
          bool first = true;
          for (;;) {
            const std::uint64_t b0 =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (b0 >= nblocks) break;
            if (!first) steals[w]++;
            first = false;
            run_range(b0, std::min(nblocks, b0 + chunk), accs[w]);
          }
        } catch (...) {
          errs[w] = std::current_exception();
          next.store(nblocks, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : pool) t.join();
    for (unsigned w = 0; w < n; ++w) {
      if (errs[w]) std::rethrow_exception(errs[w]);
      total.block_barriers += accs[w].block_barriers;
      total.warp_collectives += accs[w].warp_collectives;
      total.warp_syncs += accs[w].warp_syncs;
      total.atomics += accs[w].atomics;
      total.parallel_handshakes += accs[w].parallel_handshakes;
      total.workshare_dispatches += accs[w].workshare_dispatches;
      total.globalized_bytes += accs[w].globalized_bytes;
      total.fibers_created += accs[w].fibers_created;
      total.fiber_reuses += accs[w].fiber_reuses;
      total.sched_lane_loops += accs[w].sched_lane_loops;
      total.sched_deflations += accs[w].sched_deflations;
      steals_total += steals[w];
    }
  }
  stats.block_barriers = total.block_barriers;
  stats.warp_collectives = total.warp_collectives;
  stats.warp_syncs = total.warp_syncs;
  stats.atomics = total.atomics;
  stats.parallel_handshakes = total.parallel_handshakes;
  stats.workshare_dispatches = total.workshare_dispatches;
  stats.globalized_bytes = total.globalized_bytes;
  stats.fibers_created = total.fibers_created;
  stats.fiber_reuses = total.fiber_reuses;
  stats.sched_steals = steals_total;
  stats.sched_lane_loops = total.sched_lane_loops;
  stats.sched_deflations = total.sched_deflations;
  return stats;
}

Stream& Device::default_stream() { return exec_->default_stream(); }
Stream* Device::create_stream() { return exec_->create_stream(); }
Event* Device::create_event() { return exec_->create_event(); }
void Device::destroy_stream(Stream* stream) { exec_->destroy_stream(stream); }
void Device::destroy_event(Event* event) { exec_->destroy_event(event); }
unsigned Device::stream_worker_count() const { return exec_->worker_count(); }

void Device::synchronize() {
  check_not_lost("device synchronize");
  exec_->synchronize_all();
  exec_->check_async_error();
}

double Device::model_transfer_ms(std::uint64_t bytes) const {
  return simt::model_transfer_ms(cfg_, bytes, costs_);
}

void Device::enable_peer_access(const Device& peer) {
  if (&peer == this)
    throw std::invalid_argument("enable_peer_access: device is its own peer");
  std::lock_guard lock(peers_mu_);
  for (const Device* p : peers_)
    if (p == &peer) return;  // idempotent, unlike CUDA's AlreadyEnabled
  peers_.push_back(&peer);
}

void Device::disable_peer_access(const Device& peer) {
  std::lock_guard lock(peers_mu_);
  for (auto it = peers_.begin(); it != peers_.end(); ++it) {
    if (*it == &peer) {
      peers_.erase(it);
      return;
    }
  }
}

bool Device::peer_access_enabled(const Device& peer) const {
  std::lock_guard lock(peers_mu_);
  for (const Device* p : peers_)
    if (p == &peer) return true;
  return false;
}

std::vector<LaunchRecord> Device::launch_log() const {
  std::lock_guard lock(log_mu_);
  return log_;
}

LaunchRecord Device::last_launch() const {
  std::lock_guard lock(log_mu_);
  if (log_.empty()) throw std::logic_error("Device::last_launch: empty log");
  return log_.back();
}

void Device::append_launch_record(const LaunchRecord& rec) {
  std::lock_guard lock(log_mu_);
  log_.push_back(rec);
}

void Device::clear_launch_log() {
  std::lock_guard lock(log_mu_);
  log_.clear();
  transfer_ms_total_ = 0.0;
}

double Device::modeled_kernel_ms_total() const {
  std::lock_guard lock(log_mu_);
  double sum = 0.0;
  for (const auto& r : log_) sum += r.time.total_ms;
  return sum;
}

double Device::modeled_now_ms() const { return exec_->modeled_now_ms(); }

double Device::modeled_transfer_ms_total() const {
  std::lock_guard lock(log_mu_);
  return transfer_ms_total_;
}

void Device::add_transfer(std::uint64_t bytes) {
  const double ms = model_transfer_ms(bytes);
  {
    std::lock_guard lock(log_mu_);
    transfer_ms_total_ += ms;
  }
  // Stream memcpys are spanned by the executor; host-blocking transfers
  // (mapping layers, ompx_memcpy) record on the sync track here.
  if (profiling_enabled() && !telemetry_detail::t_in_stream_op) {
    TraceSpan span;
    span.kind = SpanKind::kMemcpy;
    span.name = "memcpy";
    span.dur_ms = ms;
    span.bytes = bytes;
    Profiler::instance().record(*this, span);
  }
}

void Device::add_transfer_ms(double ms, std::uint64_t bytes) {
  (void)bytes;  // accounted by the caller's span; kept for symmetry
  std::lock_guard lock(log_mu_);
  transfer_ms_total_ += ms;
}

DeviceConfig make_sim_a100_config() {
  DeviceConfig c;
  c.name = "sim-a100";
  c.vendor = Vendor::kNvidia;
  c.warp_size = 32;
  c.num_sms = 108;
  c.max_threads_per_block = 1024;
  c.max_threads_per_sm = 2048;
  c.max_blocks_per_sm = 32;
  c.regs_per_sm = 65536;
  c.smem_per_sm = 164 * 1024;
  c.smem_per_block_max = 48 * 1024;
  c.global_mem_bytes = 40ull << 30;
  c.clock_ghz = 1.41;
  c.fp_lanes_per_sm = 64;       // FP32 cores per SM (A100: 64)
  c.mem_bw_gbps = 1555.0;       // HBM2e
  c.shared_bw_gbps = 19400.0;   // 128 B/clk/SM aggregate
  c.link_bw_gbps = 64.0;        // PCIe 4.0 x16
  c.peer_bw_gbps = 300.0;       // NVLink 3.0, 6 links/GPU
  return c;
}

DeviceConfig make_sim_mi250_config() {
  DeviceConfig c;
  c.name = "sim-mi250";
  c.vendor = Vendor::kAmd;
  c.warp_size = 64;
  c.num_sms = 104;              // CUs of one MI250 GCD
  c.max_threads_per_block = 1024;
  c.max_threads_per_sm = 2048;
  c.max_blocks_per_sm = 32;
  c.regs_per_sm = 65536 * 2;    // CDNA2: 128 KB VGPR file per CU
  c.smem_per_sm = 64 * 1024;    // LDS per CU
  c.smem_per_block_max = 64 * 1024;
  c.global_mem_bytes = 64ull << 30;
  c.clock_ghz = 1.7;
  c.fp_lanes_per_sm = 64;
  c.mem_bw_gbps = 1638.0;       // HBM2e, one GCD
  c.shared_bw_gbps = 22600.0;
  c.link_bw_gbps = 64.0;
  c.peer_bw_gbps = 200.0;       // Infinity Fabric inter-GCD links
  return c;
}

std::vector<Device*>& device_registry() {
  static std::vector<Device*> reg = [] {
    // Intentionally leaked: devices own executor threads and must outlive
    // any static-destruction-order user.
    auto* a100 = new Device(make_sim_a100_config());
    auto* mi250 = new Device(make_sim_mi250_config());
    return std::vector<Device*>{a100, mi250};
  }();
  return reg;
}

Device* resolve_device(const void* ptr) {
  if (ptr == nullptr) return nullptr;
  for (Device* d : device_registry())
    if (d->memory().contains(ptr)) return d;
  return nullptr;
}

int resolve_device_index(const void* ptr) {
  if (ptr == nullptr) return -1;
  const std::vector<Device*>& reg = device_registry();
  for (std::size_t i = 0; i < reg.size(); ++i)
    if (reg[i]->memory().contains(ptr)) return static_cast<int>(i);
  return -1;
}

double peer_copy(Device& dst_dev, void* dst, Device& src_dev, const void* src,
                 std::size_t bytes) {
  if (&dst_dev == &src_dev) {
    // Same device: an ordinary D2D copy at memory bandwidth.
    dst_dev.memory().copy(dst, src, bytes, CopyKind::kDeviceToDevice);
    return static_cast<double>(bytes) / (dst_dev.config().mem_bw_gbps * 1e6);
  }
  dst_dev.check_not_lost("peer copy destination");
  src_dev.check_not_lost("peer copy source");
  src_dev.memory().validate_device_range(src, bytes, "peer copy source");
  dst_dev.memory().validate_device_range(dst, bytes, "peer copy destination");
  if (fault_should_fire(FaultSite::kPeerCopy))
    throw std::runtime_error("fault injection: peer copy of " +
                             std::to_string(bytes) + " byte(s) failed");
  std::memmove(dst, src, bytes);

  // Direct peer link if either endpoint can reach the other (CUDA
  // requires only one direction enabled for cudaMemcpyPeer to take the
  // fast path); otherwise two host-link legs, D2H then H2D.
  const bool direct = dst_dev.peer_access_enabled(src_dev) ||
                      src_dev.peer_access_enabled(dst_dev);
  const double ms =
      direct ? model_peer_transfer_ms(src_dev.config(), dst_dev.config(), bytes)
             : src_dev.model_transfer_ms(bytes) + dst_dev.model_transfer_ms(bytes);
  src_dev.add_transfer_ms(ms, bytes);
  dst_dev.add_transfer_ms(ms, bytes);

  if (profiling_enabled() && !telemetry_detail::t_in_stream_op) {
    // One span per endpoint, joined by a cross-device flow arrow (the
    // high bit keeps peer-copy ids disjoint from event flow ids).
    static std::atomic<std::uint64_t> next_flow{1};
    const std::uint64_t flow =
        (1ull << 63) | next_flow.fetch_add(1, std::memory_order_relaxed);
    const char* name = direct ? "memcpy P2P" : "memcpy P2P (via host)";
    TraceSpan out;
    out.kind = SpanKind::kMemcpy;
    out.name = name;
    out.dur_ms = ms;
    out.bytes = bytes;
    out.flow_id = flow;
    out.flow_out = true;
    Profiler::instance().record(src_dev, out);
    TraceSpan in = out;
    in.flow_out = false;
    Profiler::instance().record(dst_dev, in);
  }
  return ms;
}

Device& device_by_name(const std::string& name) {
  for (Device* d : device_registry())
    if (d->config().name == name) return *d;
  throw std::invalid_argument("unknown device: " + name);
}

Device& sim_a100() { return *device_registry()[0]; }
Device& sim_mi250() { return *device_registry()[1]; }

}  // namespace simt
