// Streams, events and the per-device executor.
//
// A stream is an ordered queue of device operations; operations in
// different streams may execute concurrently and are ordered only
// through events — CUDA/HIP semantics. The engine executes operations
// functionally on one executor thread per device, choosing any ready
// stream head (a legal interleaving), while a *modeled* timeline tracks
// what the concurrency would cost on the simulated device: each op
// begins at max(stream-ready, awaited-event timestamps) and advances
// its stream by the op's modeled duration. Cross-stream dependency
// cycles are detected and thrown instead of hanging.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "simt/kernel.h"
#include "simt/memory.h"

namespace simt {

class Device;
class StreamExecutor;
struct LaunchRecord;

/// An event marks a point in a stream; other streams (or the host) can
/// wait on it. Create via Device::create_event().
class Event {
 public:
  /// The device whose executor owns this event.
  [[nodiscard]] Device& device() const;
  /// Host-side wait until the marked point has executed.
  void synchronize();
  /// True once the marked point has executed (false if never recorded).
  [[nodiscard]] bool query() const;
  /// Modeled timestamp (ms on the device timeline) of the marked point.
  [[nodiscard]] double modeled_ms() const;

 private:
  friend class StreamExecutor;
  friend class Stream;
  friend class Device;
  explicit Event(StreamExecutor& ex) : ex_(ex) {}

  StreamExecutor& ex_;
  bool recorded_ = false;   // an EventRecord op executed
  bool pending_ = false;    // an EventRecord op is enqueued
  double modeled_ms_ = 0.0;
  std::uint64_t generation_ = 0;
  std::uint64_t uid_ = 0;   // stable id; seeds trace flow-arrow ids
};

/// An ordered queue of device operations. Create via
/// Device::create_stream(); Device::default_stream() always exists.
class Stream {
 public:
  Device& device() { return dev_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Enqueue a kernel. The launch executes asynchronously; use
  /// synchronize()/events to observe completion. Per-launch results
  /// (stats + modeled time) land in Device::launch_log().
  void launch(const LaunchParams& params, KernelFn kernel);

  /// Like launch(), additionally invoking `on_complete` with the
  /// finished record on the executor thread — how a sharded launch
  /// collects per-shard records whose log entries are suppressed
  /// (LaunchParams::log = false).
  void launch(const LaunchParams& params, KernelFn kernel,
              std::function<void(const LaunchRecord&)> on_complete);

  /// Asynchronous memcpy/memset on this stream.
  void memcpy_async(void* dst, const void* src, std::size_t bytes, CopyKind kind);
  void memset_async(void* ptr, int value, std::size_t bytes);

  /// Enqueue a host callback (runs on the executor thread when reached).
  void host_fn(std::function<void()> fn);

  /// Record `ev` at this point of the stream / make this stream wait
  /// for `ev` before executing later operations.
  void record(Event& ev);
  void wait(Event& ev);

  /// Host-side wait for everything enqueued so far on this stream.
  void synchronize();
  /// True if everything enqueued so far has executed.
  [[nodiscard]] bool query() const;

  /// Modeled device-timeline timestamp at which this stream is idle.
  [[nodiscard]] double modeled_ready_ms() const;

 private:
  friend class StreamExecutor;
  friend class Device;
  Stream(Device& dev, StreamExecutor& ex, std::uint64_t id)
      : dev_(dev), ex_(ex), id_(id) {}

  Device& dev_;
  StreamExecutor& ex_;
  std::uint64_t id_;
  double modeled_ready_ms_ = 0.0;   // guarded by executor mutex
  std::uint64_t submitted_ = 0;     // ops enqueued (executor mutex)
  std::uint64_t completed_ = 0;     // ops executed (executor mutex)
};

/// One executor per device: owns the op queues and the worker thread.
class StreamExecutor {
 public:
  explicit StreamExecutor(Device& dev);
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  Stream* create_stream();
  Event* create_event();
  Stream& default_stream() { return *streams_.front(); }

  /// Drains the stream's pending/in-flight ops, then releases it.
  /// Destroying the default stream throws; nullptr is a no-op.
  void destroy_stream(Stream* s);
  /// Waits until no queued or in-flight op references the event, then
  /// releases it. nullptr is a no-op.
  void destroy_event(Event* ev);

  /// Host-side wait for every op on every stream submitted so far.
  void synchronize_all();

  /// Max modeled ready time across all streams (the device timeline).
  [[nodiscard]] double modeled_now_ms() const;

  /// Rethrows (once) an exception raised by an asynchronous op, like
  /// cudaGetLastError surfacing async failures.
  void check_async_error();

 private:
  friend class Stream;
  friend class Event;

  struct Op {
    enum class Kind : std::uint8_t {
      kKernel, kMemcpy, kMemset, kHostFn, kEventRecord, kEventWait
    };
    Kind kind;
    // kernel
    LaunchParams params;
    KernelFn kernel;
    std::function<void(const LaunchRecord&)> on_complete;
    // memcpy / memset
    void* dst = nullptr;
    const void* src = nullptr;
    std::size_t bytes = 0;
    CopyKind copy_kind = CopyKind::kHostToDevice;
    int value = 0;
    // host fn
    std::function<void()> fn;
    // events
    Event* event = nullptr;
  };

  void submit(Stream& s, Op op);
  void worker_loop();
  /// Under lock: a stream whose head op can run now, or nullptr.
  Stream* pick_ready_locked();
  [[nodiscard]] bool head_blocked_locked(const Stream& s) const;
  void execute(Stream& s, Op& op);  // runs without the lock where possible
  /// Under lock: any queued (or in-flight) op referencing `ev`?
  [[nodiscard]] bool event_referenced_locked(const Event* ev) const;

  Device& dev_;
  mutable std::mutex mu_;
  std::condition_variable cv_submit_;   // worker waits for work
  std::condition_variable cv_complete_; // host waits for completion
  std::unordered_map<std::uint64_t, std::deque<Op>> queues_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Event>> events_;
  std::exception_ptr async_error_;
  bool shutdown_ = false;
  std::uint64_t next_stream_id_ = 0;
  std::uint64_t next_event_uid_ = 1;
  std::uint64_t total_submitted_ = 0;
  const Event* inflight_event_ = nullptr;  // event of the op being executed
  double destroyed_streams_max_ms_ = 0.0;  // keeps modeled_now_ms monotonic
  std::unique_ptr<std::thread> worker_;
};

}  // namespace simt
