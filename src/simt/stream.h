// Streams, events and the per-device executor.
//
// A stream is an ordered queue of device operations; operations in
// different streams may execute concurrently and are ordered only
// through events — CUDA/HIP semantics. The engine executes operations
// functionally on a small per-device worker pool (OMPX_STREAM_WORKERS /
// EngineOptions::stream_workers), one op per stream in flight at a
// time, choosing any ready stream head (a legal interleaving) — so
// independent streams genuinely overlap in host wall time. A *modeled*
// timeline tracks what the concurrency would cost on the simulated
// device: each op begins at max(stream-ready, awaited-event timestamps)
// and advances its stream by the op's modeled duration. Cross-stream
// dependency cycles are detected and thrown instead of hanging.
//
// Streams also feed two higher-level mechanisms:
//  - the stream-ordered allocator (malloc_async/free_async) reusing
//    freed blocks from a per-stream pool (see simt/memory.h), and
//  - graph capture (begin_capture/end_capture), which redirects
//    submitted ops into a simt::Graph for cheap replay (simt/graph.h).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "simt/kernel.h"
#include "simt/memory.h"

namespace simt {

class Device;
class Graph;
class StreamExecutor;
struct LaunchRecord;

/// An event marks a point in a stream; other streams (or the host) can
/// wait on it. Create via Device::create_event().
class Event {
 public:
  ~Event();  // unregisters from the live-handle registry

  /// The device whose executor owns this event.
  [[nodiscard]] Device& device() const;
  /// Host-side wait until the marked point has executed.
  void synchronize();
  /// True once the marked point has executed (false if never recorded).
  [[nodiscard]] bool query() const;
  /// Modeled timestamp (ms on the device timeline) of the marked point.
  [[nodiscard]] double modeled_ms() const;

 private:
  friend class StreamExecutor;
  friend class Stream;
  friend class Device;
  friend class Graph;
  explicit Event(StreamExecutor& ex);

  StreamExecutor& ex_;
  bool recorded_ = false;   // an EventRecord op executed
  bool pending_ = false;    // an EventRecord op is enqueued
  double modeled_ms_ = 0.0;
  std::uint64_t generation_ = 0;
  std::uint64_t uid_ = 0;   // stable id; seeds trace flow-arrow ids
};

/// One queued stream operation. Normally these live briefly in the
/// executor's per-stream rings; during graph capture they are recorded
/// into a simt::Graph instead and replayed from there.
struct StreamOp {
  enum class Kind : std::uint8_t {
    kKernel, kMemcpy, kMemset, kHostFn, kEventRecord, kEventWait,
    kAlloc, kFree, kGraph
  };
  Kind kind = Kind::kKernel;
  // kernel
  LaunchParams params;
  KernelFn kernel;
  std::function<void(const LaunchRecord&)> on_complete;
  // memcpy / memset / alloc / free (alloc & free carry the block in
  // `dst` and its size in `bytes`; the memory work happened at enqueue
  // time — executing the op only advances the modeled timeline)
  void* dst = nullptr;
  const void* src = nullptr;
  std::size_t bytes = 0;
  CopyKind copy_kind = CopyKind::kHostToDevice;
  int value = 0;
  bool pool_hit = false;  // kAlloc: served from the stream pool
  // host fn
  std::function<void()> fn;
  // events
  Event* event = nullptr;
  // graph replay
  Graph* graph = nullptr;
};

/// An ordered queue of device operations. Create via
/// Device::create_stream(); Device::default_stream() always exists.
class Stream {
 public:
  ~Stream();  // unregisters from the live-handle registry

  Device& device() { return dev_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Enqueue a kernel. The launch executes asynchronously; use
  /// synchronize()/events to observe completion. Per-launch results
  /// (stats + modeled time) land in Device::launch_log().
  void launch(const LaunchParams& params, KernelFn kernel);

  /// Like launch(), additionally invoking `on_complete` with the
  /// finished record on the executor thread — how a sharded launch
  /// collects per-shard records whose log entries are suppressed
  /// (LaunchParams::log = false), and how ompx::launch tickets complete.
  void launch(const LaunchParams& params, KernelFn kernel,
              std::function<void(const LaunchRecord&)> on_complete);

  /// Asynchronous memcpy/memset on this stream.
  void memcpy_async(void* dst, const void* src, std::size_t bytes, CopyKind kind);
  void memset_async(void* ptr, int value, std::size_t bytes);

  /// Stream-ordered allocation (cudaMallocAsync): the pointer is usable
  /// by any op enqueued on this stream after this call. Reuses an
  /// exact-size block from this stream's free pool when one is
  /// available, else allocates fresh device memory.
  void* malloc_async(std::size_t bytes);
  /// Stream-ordered free (cudaFreeAsync): the block joins this stream's
  /// free pool for reuse by later malloc_asyncs; it is only returned to
  /// the device heap when the pool is trimmed (stream destroy / device
  /// teardown / explicit trim). Throws std::invalid_argument unless
  /// `ptr` is the base of a live allocation on this stream's device.
  /// During capture, only graph-owned (captured-malloc_async) blocks
  /// may be freed.
  void free_async(void* ptr);

  /// Enqueue a host callback (runs on the executor thread when reached).
  void host_fn(std::function<void()> fn);

  /// Record `ev` at this point of the stream / make this stream wait
  /// for `ev` before executing later operations.
  void record(Event& ev);
  void wait(Event& ev);

  /// Graph capture (cudaStreamBeginCapture): until end_capture(), ops
  /// submitted to this stream are recorded into a Graph instead of
  /// executing. One capture may be active per device at a time.
  /// Synchronizing or destroying a capturing stream throws.
  void begin_capture();
  /// Ends capture and returns the recorded graph. Throws if the stream
  /// is not capturing.
  std::unique_ptr<Graph> end_capture();
  [[nodiscard]] bool capturing() const;

  /// Enqueue a replay of `g` (cudaGraphLaunch): the captured op
  /// sequence re-executes as a single stream op, skipping per-launch
  /// setup (validation, exec-mode resolution, record assembly).
  /// Instantiates the graph first if the caller has not.
  void launch_graph(Graph& g);

  /// Host-side wait for everything enqueued so far on this stream.
  void synchronize();
  /// True if everything enqueued so far has executed.
  [[nodiscard]] bool query() const;

  /// Modeled device-timeline timestamp at which this stream is idle.
  [[nodiscard]] double modeled_ready_ms() const;

 private:
  friend class StreamExecutor;
  friend class Device;
  friend class Graph;
  Stream(Device& dev, StreamExecutor& ex, std::uint64_t id);

  Device& dev_;
  StreamExecutor& ex_;
  std::uint64_t id_;
  double modeled_ready_ms_ = 0.0;   // guarded by executor mutex
  std::uint64_t submitted_ = 0;     // ops enqueued (executor mutex)
  std::uint64_t completed_ = 0;     // ops executed (executor mutex)
  bool inflight_ = false;           // a worker is executing this stream's
                                    // head (executor mutex)
  bool capturing_ = false;          // ops redirect into a Graph (executor
                                    // mutex)
  bool timed_out_ = false;          // the wall-clock watchdog killed this
                                    // stream; it stays dead (executor mutex)
};

/// Live-handle registries: true while the pointer refers to a Stream /
/// Event that has been created and not yet destroyed. The C ABIs use
/// these to reject use-after-destroy handles with a clean error code
/// instead of undefined behavior. nullptr returns false.
[[nodiscard]] bool stream_alive(const Stream* s);
[[nodiscard]] bool event_alive(const Event* ev);

/// One executor per device: owns the op queues and the worker pool.
class StreamExecutor {
 public:
  explicit StreamExecutor(Device& dev);
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  Stream* create_stream();
  Event* create_event();
  Stream& default_stream() { return *streams_.front(); }

  /// Drains the stream's pending/in-flight ops (including anything a
  /// pool worker is currently running), trims its memory pool, then
  /// releases it. Destroying the default stream or a capturing stream
  /// throws; nullptr is a no-op.
  void destroy_stream(Stream* s);
  /// Waits until no queued or in-flight op references the event, then
  /// releases it. nullptr is a no-op. (Captured graphs hold event
  /// references this cannot see; destroying an event a live graph uses
  /// invalidates that graph — re-instantiate to detect it.)
  void destroy_event(Event* ev);

  /// Host-side wait for every op on every stream submitted so far.
  void synchronize_all();

  /// Max modeled ready time across all streams (the device timeline).
  [[nodiscard]] double modeled_now_ms() const;

  /// Rethrows (once) an exception raised by an asynchronous op, like
  /// cudaGetLastError surfacing async failures.
  void check_async_error();

  /// True if `ev` is a live event of this executor (graphs validate
  /// their captured event references against this at instantiate).
  [[nodiscard]] bool event_alive(const Event* ev) const;

  /// Number of pool workers executing this device's stream ops.
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  friend class Stream;
  friend class Event;
  friend class Graph;

  using Op = StreamOp;

  /// One worker slot's in-flight state, watched by the wall-clock
  /// watchdog monitor. `epoch` is bumped when the monitor abandons the
  /// slot: the stuck worker sees the mismatch when (if) its op finally
  /// returns and exits as a zombie instead of touching state its
  /// replacement now owns.
  struct SlotState {
    const Event* event = nullptr;  ///< pins the op's event vs destroy_event
    Stream* stream = nullptr;      ///< stream whose op is executing
    std::uint64_t epoch = 0;
    bool busy = false;
    std::chrono::steady_clock::time_point start;
  };

  void submit(Stream& s, Op op);
  void worker_loop(unsigned slot, std::uint64_t my_epoch);
  /// Under lock: a stream whose head op can run now and that has no op
  /// already in flight, or nullptr.
  Stream* pick_ready_locked();
  [[nodiscard]] bool head_blocked_locked(const Stream& s) const;
  void execute(Stream& s, Op& op);  // runs without the lock where possible
  /// Under lock: any queued (or in-flight) op referencing `ev`?
  [[nodiscard]] bool event_referenced_locked(const Event* ev) const;
  /// Watchdog monitor: polls busy slots against simt::watchdog_ms().
  void monitor_loop();
  void start_monitor_locked();
  /// Under lock: fails `slot`'s stream with TimeoutError, drains its
  /// queue, and hands the slot to a fresh worker thread (the stuck one
  /// becomes a zombie that exits when its op returns).
  void abandon_slot_locked(unsigned slot, double elapsed_ms, double budget_ms);

  Device& dev_;
  mutable std::mutex mu_;
  std::condition_variable cv_submit_;   // workers wait for work
  std::condition_variable cv_complete_; // host waits for completion
  std::condition_variable cv_monitor_;  // wakes the watchdog monitor
  std::condition_variable cv_zombie_;   // teardown waits for zombies
  std::unordered_map<std::uint64_t, std::deque<Op>> queues_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Event>> events_;
  std::exception_ptr async_error_;
  bool shutdown_ = false;
  std::uint64_t next_stream_id_ = 0;
  std::uint64_t next_event_uid_ = 1;
  std::uint64_t total_submitted_ = 0;
  std::uint64_t total_completed_ = 0;
  unsigned executing_ = 0;                 // ops currently in flight
  std::vector<SlotState> slots_;           // per-worker-slot in-flight state
  /// Event pins moved out of an abandoned slot; the zombie drops its
  /// entry when it exits (destroy_event scans these too).
  std::vector<const Event*> zombie_event_pins_;
  /// Streams destroyed while timed out are parked here (not freed):
  /// their zombie worker may still touch them when its op returns.
  std::vector<std::unique_ptr<Stream>> abandoned_streams_;
  unsigned zombies_ = 0;
  double destroyed_streams_max_ms_ = 0.0;  // keeps modeled_now_ms monotonic
  // Graph capture: at most one capturing stream per device.
  Stream* capture_stream_ = nullptr;
  std::unique_ptr<Graph> capture_;
  std::vector<std::thread> workers_;
  std::thread monitor_;
  bool monitor_started_ = false;
};

}  // namespace simt
