#include "simt/san.h"

#include <cinttypes>
#include <cstdlib>

#include "simt/block.h"
#include "simt/device.h"
#include "simt/kernel.h"
#include "simt/memory.h"

namespace simt {

namespace san_detail {
constinit std::atomic<std::uint32_t> g_checks{0};
}  // namespace san_detail

namespace {

/// OMPX_SAN=race,mem,sync: enable at process start, print the report
/// to stderr at exit. Lives in this TU, which links in whenever any
/// layer references the sanitizer.
struct EnvActivation {
  EnvActivation() {
    const char* spec = std::getenv("OMPX_SAN");
    if (spec == nullptr || spec[0] == '\0') return;
    San::instance().enable(San::parse_checks(spec));
    std::atexit([] { San::instance().print_report(stderr); });
  }
} g_env_activation;

}  // namespace

const char* san_kind_name(SanKind k) {
  switch (k) {
    case SanKind::kSharedRace: return "shared-race";
    case SanKind::kGlobalOob: return "out-of-bounds";
    case SanKind::kUseAfterFree: return "use-after-free";
    case SanKind::kHostPointer: return "host-pointer";
    case SanKind::kRedzoneCorruption: return "redzone-corruption";
    case SanKind::kInvalidWarpMask: return "invalid-warp-mask";
    case SanKind::kBarrierDivergence: return "barrier-divergence";
    case SanKind::kSharedAllocMismatch: return "shared-alloc-mismatch";
    case SanKind::kLeak: return "leak";
  }
  return "?";
}

San& San::instance() {
  static San* s = new San;  // leaked: see header
  return *s;
}

void San::enable(std::uint32_t checks) {
  san_detail::g_checks.fetch_or(checks & kSanAll, std::memory_order_relaxed);
}

void San::disable() {
  san_detail::g_checks.store(0, std::memory_order_relaxed);
}

std::uint32_t San::parse_checks(const char* spec) {
  if (spec == nullptr) return kSanAll;
  const std::string s = spec;
  if (s.empty() || s == "1" || s == "on" || s == "true" || s == "all")
    return kSanAll;
  std::uint32_t checks = 0;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    if (tok == "race") checks |= kSanRace;
    else if (tok == "mem") checks |= kSanMem;
    else if (tok == "sync") checks |= kSanSync;
    else if (tok == "all") checks |= kSanAll;
    // unknown tokens are ignored (forward compatibility)
    pos = comma + 1;
  }
  return checks == 0 ? kSanAll : checks;
}

void San::reset() {
  std::lock_guard lock(mu_);
  diags_.clear();
  for (auto& c : by_kind_) c = 0;
  total_.store(0, std::memory_order_relaxed);
}

void San::record(SanDiag diag) {
  std::lock_guard lock(mu_);
  by_kind_[static_cast<std::size_t>(diag.kind)]++;
  total_.fetch_add(1, std::memory_order_relaxed);
  if (diags_.size() < kMaxStored) diags_.push_back(std::move(diag));
}

std::uint64_t San::count(SanKind k) const {
  std::lock_guard lock(mu_);
  return by_kind_[static_cast<std::size_t>(k)];
}

std::vector<SanDiag> San::diagnostics() const {
  std::lock_guard lock(mu_);
  return diags_;
}

std::string San::report() const {
  std::lock_guard lock(mu_);
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  std::string out = "== ompxsan report ==\n";
  out += "ompxsan: " + std::to_string(total) + " error(s)\n";
  if (total == 0) return out;
  constexpr SanKind kKinds[] = {
      SanKind::kSharedRace,        SanKind::kGlobalOob,
      SanKind::kUseAfterFree,      SanKind::kHostPointer,
      SanKind::kRedzoneCorruption, SanKind::kInvalidWarpMask,
      SanKind::kBarrierDivergence, SanKind::kSharedAllocMismatch,
      SanKind::kLeak};
  for (SanKind k : kKinds) {
    const std::uint64_t n = by_kind_[static_cast<std::size_t>(k)];
    if (n != 0)
      out += "  " + std::string(san_kind_name(k)) + ": " + std::to_string(n) +
             "\n";
  }
  for (const SanDiag& d : diags_)
    out += "  [" + std::string(san_kind_name(d.kind)) + "] " + d.message + "\n";
  if (total > diags_.size())
    out += "  (" + std::to_string(total - diags_.size()) +
           " further diagnostics elided)\n";
  return out;
}

std::uint64_t San::print_report(std::FILE* f) const {
  if (f == nullptr) f = stderr;
  const std::string r = report();
  std::fputs(r.c_str(), f);
  return error_count();
}

// --- hooks ---------------------------------------------------------------

void san_shared_access(const void* ptr, std::size_t bytes, bool is_write,
                       bool is_atomic) {
  if (!in_kernel()) return;
  ThreadCtx& t = this_thread();
  if (t.block->san_shared_access(t, ptr, bytes, is_write, is_atomic)) return;
  // Not a shared-arena pointer: treat it as a global access so a
  // Shared<T> wrapped around the wrong pointer still gets memcheck.
  if (san_enabled(kSanMem)) (void)san_global_access(ptr, bytes, is_write);
}

namespace {

std::string ptr_str(const void* p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%" PRIxPTR,
                reinterpret_cast<std::uintptr_t>(p));
  return buf;
}

std::string where_str(const ThreadCtx& t) {
  return std::string(" (kernel '") + t.block->params().name + "', block " +
         t.block_idx.to_string() + ", thread " + std::to_string(t.flat_tid) +
         ")";
}

}  // namespace

bool san_global_access(const void* ptr, std::size_t bytes, bool is_write) {
  if (!in_kernel()) return true;
  ThreadCtx& t = this_thread();
  using Status = MemAccessCheck::Status;
  MemAccessCheck chk = t.device->memory().check_access(ptr, bytes);
  if (chk.status == Status::kOk) return true;
  if (chk.status == Status::kUnknown) {
    const MemAccessCheck cchk =
        t.device->constant_memory().check_access(ptr, bytes);
    if (cchk.status == Status::kOk) return true;
    if (cchk.status != Status::kUnknown) chk = cchk;
  }
  Device* owner = t.device;
  if (chk.status == Status::kUnknown) {
    // Not this device's memory: consult the rest of the registry before
    // concluding "host pointer". A peer device's allocation is valid to
    // touch (the simulation is in-process, like UVA) but OOB/UAF there
    // must be reported against the *owning* device, and a pointer no
    // registered device knows really is a host pointer.
    for (Device* d : device_registry()) {
      if (d == t.device) continue;
      const MemAccessCheck pchk = d->memory().check_access(ptr, bytes);
      if (pchk.status == Status::kOk) return true;
      if (pchk.status != Status::kUnknown) {
        chk = pchk;
        owner = d;
        break;
      }
    }
  }
  const std::string owner_note =
      owner != t.device
          ? " on peer device '" + owner->config().name + "'"
          : "";

  const char* verb = is_write ? "write" : "read";
  SanDiag d;
  d.kernel = t.block->params().name;
  d.block = t.block_idx;
  d.tid_a = t.flat_tid;
  d.addr = ptr;
  d.bytes = bytes;
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  switch (chk.status) {
    case Status::kOob: {
      d.kind = SanKind::kGlobalOob;
      std::string rel;
      if (addr >= chk.base + chk.size)
        rel = std::to_string(addr - (chk.base + chk.size)) +
              " bytes past the end";
      else if (addr < chk.base)
        rel = std::to_string(chk.base - addr) + " bytes before the start";
      else
        rel = "overrunning the end";
      d.message = "out-of-bounds " + std::string(verb) + " of " +
                  std::to_string(bytes) + " byte(s) at " + ptr_str(ptr) +
                  ", " + rel + " of the " + std::to_string(chk.size) +
                  "-byte allocation at " +
                  ptr_str(reinterpret_cast<void*>(chk.base)) + owner_note +
                  where_str(t);
      break;
    }
    case Status::kFreed:
      d.kind = SanKind::kUseAfterFree;
      d.message = "use-after-free " + std::string(verb) + " of " +
                  std::to_string(bytes) + " byte(s) at " + ptr_str(ptr) +
                  " inside the freed " + std::to_string(chk.size) +
                  "-byte allocation at " +
                  ptr_str(reinterpret_cast<void*>(chk.base)) + owner_note +
                  where_str(t);
      break;
    default:
      d.kind = SanKind::kHostPointer;
      d.message = "kernel " + std::string(verb) + " of " +
                  std::to_string(bytes) + " byte(s) through " + ptr_str(ptr) +
                  ", which is not a device allocation "
                  "(host pointer reached kernel code?)" + where_str(t);
      break;
  }
  San::instance().record(std::move(d));
  return false;
}

}  // namespace simt
