// Graph capture & replay (the cudaGraph analogue).
//
// A Graph is a recorded sequence of stream operations — kernel
// launches, async copies/memsets, stream-ordered allocs/frees, host
// callbacks, event records/waits — captured between
// Stream::begin_capture() and Stream::end_capture(). instantiate()
// bakes the per-op setup that a normal launch pays every time
// (configuration validation, lane-exec resolution, span-name assembly);
// replay (Stream::launch_graph) then re-issues the whole sequence as a
// single stream op whose kernel nodes go straight to the block runner
// (Device::run_blocks), skipping per-launch validation, exec-policy
// lookup, record-string assembly, and launch-log pushes. That is what
// makes replay of a launch-bound iteration (Adam, Stencil-1D) several
// times cheaper than re-submitting the launches individually.
//
// Semantics (deliberately CUDA-faithful):
//  - malloc_async during capture allocates immediately; the graph owns
//    the block, every replay sees the same virtual address, and the
//    memory is returned to the device heap when the graph is destroyed.
//  - Replays do not append Device::launch_log records (cudaGraphLaunch
//    does not report per-kernel results either); equivalence with the
//    captured sequence is observed through memory effects and the
//    modeled timeline, and per-node spans still appear under tracing.
//  - Event records/waits replay as modeled-timeline operations: a
//    record publishes the stream's replay-time timestamp, a wait maxes
//    the timeline against the event's — cross-stream *blocking* is not
//    re-evaluated inside a replay (the captured order already encodes
//    one legal interleaving).
//  - Concurrent replays of one graph serialize on the graph's mutex;
//    replays of different graphs overlap freely.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simt/stream.h"

namespace simt {

class BlockState;

class Graph {
 public:
  ~Graph();

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  [[nodiscard]] Device& device() const { return dev_; }

  /// Captured nodes, in stream order (the two-call C enumeration idiom
  /// is built on this).
  struct NodeInfo {
    std::string kind;        ///< "kernel", "memcpy", "alloc", ...
    std::string name;        ///< kernel name / copy label / ""
    std::uint64_t bytes = 0; ///< payload for memory nodes
  };
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::vector<NodeInfo> nodes() const;

  /// Bakes per-node setup: validates every kernel configuration,
  /// resolves and pins each kernel's lane-execution mode, pre-assembles
  /// span names, and checks that captured event references are still
  /// alive. Idempotent; replay calls it automatically if the caller
  /// has not. Throws std::invalid_argument on a node that can no
  /// longer execute (e.g. a destroyed event).
  void instantiate();
  [[nodiscard]] bool instantiated() const;

  /// How many times this graph has been replayed to completion.
  [[nodiscard]] std::uint64_t replay_count() const;

 private:
  friend class Stream;
  friend class StreamExecutor;

  explicit Graph(Device& dev);

  void add_node(StreamOp op);      // capture path (executor lock held)
  void own_allocation(void* p);
  [[nodiscard]] bool owns_allocation(const void* p) const;

  /// What the executor needs to span the replay it just ran.
  struct ReplayExtent {
    double start_ms = 0.0;
    double end_ms = 0.0;
    std::uint64_t chain_flow_id = 0;  ///< incoming arrow from the
                                      ///< previous replay (0 = first)
  };
  /// Executes every node on an executor worker, advancing `s`'s modeled
  /// timeline once at the end. Serialized per graph.
  ReplayExtent execute_on(Stream& s);

  void instantiate_locked();

  /// Replays node `i` over its cached BlockStates (reset + run, one
  /// block at a time). Only called for nodes instantiate() cached.
  [[nodiscard]] LaunchStats run_cached(std::size_t i);

  Device& dev_;
  std::uint64_t uid_;
  std::vector<StreamOp> nodes_;
  std::vector<std::string> span_names_;  // per node, baked at instantiate
  std::vector<std::string> exec_modes_;  // kernel nodes' resolved mode
  // Direct-mode kernel nodes with small grids keep their BlockStates
  // across replays: block construction (warp states, thread contexts,
  // ordinal vectors) is the dominant per-launch cost of a launch-bound
  // graph, and a reset is ~free. Indexed like nodes_; an empty inner
  // vector means the node replays through Device::run_blocks. The
  // cached BlockStates hold references into nodes_ (params/kernel),
  // which is stable after capture ends.
  std::vector<std::vector<std::unique_ptr<BlockState>>> cached_blocks_;
  std::vector<void*> owned_allocs_;
  mutable std::mutex run_mu_;  // serializes replays and instantiation
  bool instantiated_ = false;
  std::uint64_t replays_ = 0;
};

/// True if `g` points at a live (not yet destroyed) Graph — the C ABI's
/// use-after-destroy check.
[[nodiscard]] bool graph_alive(const Graph* g);

/// Synchronizes the graph's device (draining any in-flight replay),
/// releases graph-owned allocations, and destroys the graph. nullptr
/// is a no-op; throws std::invalid_argument if `g` is not a live graph
/// (double destroy / never created).
void destroy_graph(Graph* g);

}  // namespace simt
