// Cooperative fibers: the execution vehicle for simulated GPU threads.
//
// Every GPU thread in a resident block is a fiber. Fibers are scheduled
// cooperatively by the block runner on a single OS thread; a fiber
// suspends (yields back to its scheduler) whenever the thread it models
// blocks at a barrier or a warp collective. This gives arbitrary kernel
// code — including `__syncthreads()` in divergent-looking positions —
// the same suspension semantics real SIMT hardware provides.
//
// The context switch is a hand-written x86-64 routine (callee-saved
// registers + stack pointer only, ~20 ns per switch). ucontext's
// swapcontext() performs a sigprocmask system call per switch, which is
// ~50x slower and dominates simulation time; it remains available as a
// portability fallback (-DOMPX_USE_UCONTEXT=ON).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace simt {

class FiberStackPool;

/// A single cooperative fiber. Not thread-safe: a fiber and its scheduler
/// must live on the same OS thread.
class Fiber {
 public:
  using EntryFn = std::function<void()>;

  /// Creates a fiber that will run `entry` when first resumed.
  /// The stack is leased from `pool` and returned on destruction.
  Fiber(FiberStackPool& pool, EntryFn entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Re-arms a finished (or never-started) fiber so it can run again,
  /// keeping its leased stack. This is the recycling primitive: a block
  /// whose threads run to completion without suspending needs one fiber,
  /// not one per thread. Throws if the fiber is suspended mid-run.
  void reset();

  /// Re-arms with a new entry function (same constraints as reset()).
  void reset(EntryFn entry);

  /// Runs the fiber until it yields or finishes. Must be called from the
  /// scheduler context (never from inside another fiber's resume).
  /// An exception escaping the entry function is captured on the fiber
  /// and rethrown here, on the scheduler's stack.
  void resume();

  /// Yields from inside the fiber back to whoever called resume().
  /// Must be called from inside this fiber.
  void yield();

  /// True once the entry function has returned.
  [[nodiscard]] bool done() const { return done_; }

  /// The fiber currently executing on this OS thread, or nullptr when in
  /// scheduler context.
  static Fiber* current();

  /// First-entry point invoked by the machine-specific thunk. Internal;
  /// public only because the extern "C" bridge must reach it.
  static void trampoline(Fiber* self);

 private:
  struct Context;  // opaque machine context

  /// (Re)builds the suspended context so the next resume() enters the
  /// trampoline at the top of the leased stack.
  void arm();

  FiberStackPool& pool_;
  EntryFn entry_;
  void* stack_ = nullptr;          // base of the leased stack
  std::size_t stack_size_ = 0;
  std::unique_ptr<Context> ctx_;   // this fiber's suspended context
  std::unique_ptr<Context> link_;  // scheduler context to return to
  std::exception_ptr exception_;   // escaped from entry, rethrown in resume
  bool started_ = false;
  bool done_ = false;

  // ASan fiber-switch bookkeeping (see SIMT_ASAN_* in fiber.cpp). Kept
  // unconditionally so the layout never depends on sanitizer flags.
  void* asan_fake_stack_ = nullptr;        // this fiber's fake-stack save
  const void* asan_link_stack_ = nullptr;  // scheduler stack bottom
  std::size_t asan_link_stack_size_ = 0;
  // TSan fiber-switch bookkeeping (see SIMT_TSAN_* in fiber.cpp). Same
  // rule: members exist whether or not TSan is enabled.
  void* tsan_fiber_ = nullptr;  // __tsan_create_fiber handle
  void* tsan_link_ = nullptr;   // scheduler's TSan fiber to return to
};

/// Recycles whole Fiber objects (and the stacks they lease) across
/// launches on one OS thread. Constructing a Fiber costs several heap
/// allocations (the object, two machine contexts, a stack lease); at
/// one fiber per simulated thread per launch that overhead dominates
/// barrier-heavy kernels, so the block runner re-arms pooled fibers
/// with Fiber::reset(entry) instead. Only finished fibers are cached;
/// anything else handed to recycle() is simply destroyed (releasing
/// its stack). Not thread-safe: like FiberStackPool, one pool per OS
/// thread.
class FiberPool {
 public:
  explicit FiberPool(FiberStackPool& stacks, std::size_t max_cached = 4096);

  FiberPool(const FiberPool&) = delete;
  FiberPool& operator=(const FiberPool&) = delete;

  /// A cached fiber re-armed with `entry`, or a newly constructed one.
  std::unique_ptr<Fiber> acquire(Fiber::EntryFn entry);

  /// Returns a fiber to the cache (or destroys it if suspended or the
  /// cache is full). The fiber must have been acquired from a pool
  /// backed by the same FiberStackPool.
  void recycle(std::unique_ptr<Fiber> fiber);

  [[nodiscard]] std::size_t cached() const { return free_.size(); }
  [[nodiscard]] FiberStackPool& stack_pool() { return stacks_; }

 private:
  FiberStackPool& stacks_;
  std::size_t max_cached_;
  std::vector<std::unique_ptr<Fiber>> free_;
};

/// Recycles fiber stacks. mmap/munmap per GPU thread would dominate the
/// simulation; the pool leases stacks and keeps a bounded free list.
class FiberStackPool {
 public:
  /// `stack_size` is rounded up to the page size; a guard page is placed
  /// below every stack so overflow faults instead of corrupting memory.
  explicit FiberStackPool(std::size_t stack_size = kDefaultStackSize,
                          std::size_t max_cached = 4096);
  ~FiberStackPool();

  FiberStackPool(const FiberStackPool&) = delete;
  FiberStackPool& operator=(const FiberStackPool&) = delete;

  void* lease();
  void release(void* stack);

  [[nodiscard]] std::size_t stack_size() const { return stack_size_; }
  [[nodiscard]] std::size_t cached() const { return free_.size(); }
  [[nodiscard]] std::size_t total_mapped() const { return total_mapped_; }

  static constexpr std::size_t kDefaultStackSize = 128 * 1024;

 private:
  void* map_stack();
  void unmap_stack(void* stack);

  std::size_t stack_size_;
  std::size_t max_cached_;
  std::size_t total_mapped_ = 0;
  std::vector<void*> free_;
};

}  // namespace simt
