// Analytic performance model for the SIMT engine.
//
// The engine executes kernels *functionally* (real results, verified by
// checksums) on the host CPU; wall-clock time of that simulation says
// nothing about GPU time. Instead, every launch produces a LaunchStats
// record of mechanistic event counts — threads, barriers, warp
// collectives, runtime handshakes, globalized traffic — measured during
// execution, combined with a per-kernel roofline characterization
// (KernelCost) declared by the application. model_time() converts the
// two into modeled milliseconds using a roofline with a concurrency
// (latency-hiding) term and an occupancy calculation.
//
// Every calibrated constant is either a published hardware number
// (bandwidth, clocks, SM counts) or a per-event cost documented in
// EXPERIMENTS.md. The *shape* of the paper's figures comes from the
// event counts, not from per-figure fudge factors.
#pragma once

#include <cstdint>
#include <string>

#include "simt/dim.h"

namespace simt {

struct DeviceConfig;  // device.h

/// Code-generation attributes of one compiled kernel version. On real
/// hardware these come out of the compiler (nvcc/hipcc/clang); here they
/// are declared per version, calibrated from the paper's own profiling
/// narrative where it gives them (e.g. SU3: 24 vs 26 registers, 3.9 KB
/// vs 29 KB device binary; RSBench omp: 162 registers + 2 KB smem).
struct CompilerProfile {
  std::string name = "llvm-clang";
  /// Registers per thread; drives the occupancy limit.
  int regs_per_thread = 32;
  /// Static shared memory per block in bytes (occupancy limit).
  std::uint64_t static_smem_bytes = 0;
  /// Device binary size in KiB; large binaries pay an icache penalty.
  double binary_kib = 8.0;
  /// Multiplier (>= ~0.5) on achievable compute throughput capturing
  /// instruction-selection quality differences between compilers.
  double compute_efficiency = 1.0;
  /// Multiplier on achievable memory bandwidth capturing address/
  /// coalescing code-generation quality (load vectorization, unrolling
  /// of gather loops). 1.0 = ideal for the kernel's access pattern.
  double mem_efficiency = 1.0;
};

/// Roofline characterization of one kernel, per thread. Declared by the
/// application from its arithmetic (documented per app); identical
/// across program versions except where a version mechanically differs
/// (e.g. globalization reroutes private arrays to global memory).
struct KernelCost {
  double flops_per_thread = 0.0;
  /// Bytes moved to/from device global memory per thread.
  double global_bytes_per_thread = 0.0;
  /// Bytes moved to/from block-shared memory per thread.
  double shared_bytes_per_thread = 0.0;
  /// Per-thread private data that did not fit in registers ("local
  /// memory" spill). Routed to global traffic by default; the OpenMP
  /// device runtime's heap-to-shared optimization can reroute it to
  /// shared memory instead (see LaunchStats::spill_in_shared).
  double local_spill_bytes_per_thread = 0.0;
  /// Iterations of serial work per thread beyond the SIMT parallelism
  /// (e.g. a grid-stride loop executes `n / total_threads` rounds).
  double serial_iterations = 1.0;
};

/// Mechanistic event counts measured while a launch executes.
struct LaunchStats {
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;
  std::uint64_t block_barriers = 0;    ///< __syncthreads-level events (per block)
  std::uint64_t warp_collectives = 0;  ///< shuffles/ballots/votes (per warp)
  std::uint64_t warp_syncs = 0;        ///< warp barrier events (per warp)
  std::uint64_t atomics = 0;           ///< device-scope atomic RMWs

  // --- populated by the OpenMP runtime emulation, zero in bare/native mode
  bool runtime_init = false;            ///< device runtime state init ran
  bool generic_mode = false;            ///< generic-mode state machine active
  std::uint64_t parallel_handshakes = 0;  ///< main->workers wake/join pairs
  std::uint64_t workshare_dispatches = 0; ///< loop-chunk scheduling events
  std::uint64_t globalized_bytes = 0;     ///< locals globalized to device heap
  bool spill_in_shared = false;  ///< heap-to-shared optimization applied

  // --- host-engine execution diagnostics. These describe how the
  // simulator ran (fiber recycling, work stealing), never feed
  // model_time(), and have no effect on modeled GPU time.
  std::uint64_t fibers_created = 0;  ///< Fiber objects constructed
  std::uint64_t fiber_reuses = 0;    ///< threads served by a recycled fiber
  std::uint64_t sched_steals = 0;    ///< block chunks grabbed beyond each
                                     ///< worker's first (dynamic rebalance)
  std::uint64_t sched_lane_loops = 0;  ///< threads run inline, fiber-free
                                       ///< (LaneExec::kConvergent fast path)
  std::uint64_t sched_deflations = 0;  ///< convergent probes that hit a
                                       ///< collective and restarted on a fiber

  void reset() { *this = LaunchStats{}; }
};

/// Result of the analytic model, all in milliseconds.
struct ModeledTime {
  double total_ms = 0.0;
  double compute_ms = 0.0;
  double memory_ms = 0.0;
  double shared_ms = 0.0;
  double overhead_ms = 0.0;  ///< launch + runtime + sync event costs
  double occupancy = 1.0;    ///< resident-thread fraction of device capacity
};

/// Per-event costs of the modeled machine. Shared across devices except
/// where noted; values documented in EXPERIMENTS.md §Calibration.
struct EventCosts {
  /// Device-side per-kernel dispatch cost. Host-side launch latency
  /// (~4 us) is hidden by queueing when kernels are submitted
  /// back-to-back, which is how every benchmark here measures (events
  /// around kernel sequences), so only the device-side cost is charged.
  double launch_us = 0.8;
  /// OpenMP device runtime init per kernel, after the IPDPS'22
  /// near-zero-overhead optimizations (SPMD mode).
  double runtime_init_us = 0.4;
  double handshake_ns = 350.0;       ///< SPMD-ized parallel wake+join
  /// Wake+join through the *unoptimized* generic state machine
  /// (indirect work-function dispatch through device memory, full-block
  /// barriers, no inlined work function) — the cost the CGO'22
  /// state-machine rewrite removes and the paper's Stencil-1D omp
  /// version cannot avoid (§4.2.6). Calibrated against the paper's
  /// ~100x Stencil-1D gap; see EXPERIMENTS.md §Calibration.
  double handshake_generic_ns = 60000.0;
  double dispatch_ns = 24.0;         ///< workshare chunk dispatch
  double barrier_ns = 18.0;          ///< block barrier per resident block
  double warp_collective_ns = 1.2;   ///< per warp collective
  double atomic_ns = 10.0;           ///< device-scope atomic
  double transfer_latency_us = 8.0;  ///< per host<->device copy
};

/// Occupancy: resident threads per SM given block resources.
/// Mirrors the CUDA occupancy calculation (thread, register, shared
/// memory and block-slot limits).
std::uint32_t resident_threads_per_sm(const DeviceConfig& dev,
                                      std::uint32_t threads_per_block,
                                      const CompilerProfile& prof,
                                      std::uint64_t dynamic_smem_bytes);

/// Convert declared cost + measured stats into modeled time on `dev`
/// using the given per-event costs (Device::costs() by default).
ModeledTime model_time(const DeviceConfig& dev, const CompilerProfile& prof,
                       const KernelCost& cost, const LaunchStats& stats,
                       std::uint32_t threads_per_block,
                       std::uint64_t dynamic_smem_bytes,
                       const EventCosts& ec = EventCosts{});

/// Modeled host<->device transfer time for `bytes` over the link.
double model_transfer_ms(const DeviceConfig& dev, std::uint64_t bytes,
                         const EventCosts& ec = EventCosts{});

/// Modeled device<->device transfer time for `bytes` over the peer
/// link between `src` and `dst`: one link latency plus the bytes at
/// the slower endpoint's peer bandwidth (a link is only as fast as its
/// narrower end). Used when peer access is enabled; with peer access
/// disabled the copy is staged through the host instead (two
/// model_transfer_ms legs).
double model_peer_transfer_ms(const DeviceConfig& src, const DeviceConfig& dst,
                              std::uint64_t bytes,
                              const EventCosts& ec = EventCosts{});

}  // namespace simt
