// Launch telemetry: per-operation trace spans, a process-wide counters
// registry, and a Chrome trace-event exporter.
//
// Every completed device operation — kernel launch, async memcpy/memset,
// host-synchronous transfer, event record/wait — can be captured as a
// TraceSpan carrying its position on the *modeled* device timeline
// (stream-track start + duration), the host wall time the simulation
// spent executing it, and (for kernels) the full LaunchStats counter
// set. Spans live in the process-wide Profiler singleton, which also
// aggregates counters across launches and renders the whole capture as
// Chrome trace-event JSON (open in chrome://tracing or Perfetto):
// streams become tracks, kernels and memcpys become slices at their
// modeled timestamps, and event record/wait pairs become flow arrows —
// so multi-stream overlap (bench/abl_interop_streams) is visually
// inspectable.
//
// The tracing-off path is one relaxed atomic load per operation
// (profiling_enabled()); nothing else on the engine hot path changes.
// Activation: Profiler::instance().start(), the layer APIs above
// (ompx_profiler_start / ompx::Profiler / klProfilerStart), or the
// OMPX_TRACE=<path> environment variable, which starts capture at
// process start and dumps the trace to <path> at exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simt/dim.h"
#include "simt/perf.h"

namespace simt {

class Device;

/// What kind of device operation a span describes.
enum class SpanKind : std::uint8_t {
  kKernel,
  kMemcpy,
  kMemset,
  kHostFn,
  kEventRecord,
  kEventWait,
  kAlloc,       ///< stream-ordered malloc_async
  kFree,        ///< stream-ordered free_async
  kGraph,       ///< a graph replay (umbrella slice over its node spans)
};

const char* span_kind_name(SpanKind k);

/// One captured operation. `track` 0 is the device's host-synchronous
/// track (direct launch_sync calls, blocking transfers); stream ops use
/// track = stream id + 1. Timestamps are modeled milliseconds on that
/// track's timeline, not host wall time.
struct TraceSpan {
  SpanKind kind = SpanKind::kKernel;
  std::string name;
  std::uint32_t device_pid = 0;   ///< assigned by the profiler per device
  std::uint64_t track = 0;        ///< 0 = host-sync, else stream id + 1
  double ts_ms = 0.0;             ///< modeled start on the track timeline
  double dur_ms = 0.0;            ///< modeled duration
  double wall_ms = 0.0;           ///< host wall time executing the op
  std::uint64_t bytes = 0;        ///< memcpy/memset payload
  std::uint64_t flow_id = 0;      ///< links an event record to its waits,
                                  ///< or a peer copy's two device spans
  bool flow_out = false;          ///< this span is the arrow's source
                                  ///< (event record / peer-copy src side)
  // --- kernels only
  Dim3 grid{0, 0, 0};
  Dim3 block{0, 0, 0};
  std::string exec_mode;          ///< "fiber" / "convergent" / "direct"
  LaunchStats stats;
  ModeledTime time;
};

/// Process-wide aggregation over every span recorded since the last
/// reset — the counters registry layered APIs expose.
struct ProfilerCounters {
  std::uint64_t launches = 0;
  std::uint64_t memcpys = 0;
  std::uint64_t memsets = 0;
  std::uint64_t event_records = 0;
  std::uint64_t event_waits = 0;
  std::uint64_t allocs = 0;         ///< stream-ordered malloc_asyncs
  std::uint64_t frees = 0;          ///< stream-ordered free_asyncs
  std::uint64_t graph_replays = 0;  ///< completed graph replays
  std::uint64_t bytes_copied = 0;
  std::uint64_t blocks = 0;
  std::uint64_t threads = 0;
  std::uint64_t block_barriers = 0;
  std::uint64_t warp_collectives = 0;
  std::uint64_t atomics = 0;
  std::uint64_t parallel_handshakes = 0;
  std::uint64_t globalized_bytes = 0;
  std::uint64_t lane_loops = 0;  ///< threads run fiber-free (convergent mode)
  double modeled_kernel_ms = 0.0;
  double modeled_memcpy_ms = 0.0;
  double host_wall_ms = 0.0;
};

namespace telemetry_detail {
/// The tracing switch. Read relaxed on every hot-path operation; set
/// only by Profiler::start/stop.
extern std::atomic<bool> g_enabled;
/// True on an executor thread while it runs a stream op: the executor
/// records the span itself (it knows the stream track and modeled
/// start), so the inner launch_sync/add_transfer must not double-record.
extern constinit thread_local bool t_in_stream_op;
}  // namespace telemetry_detail

/// The hot-path guard: one relaxed atomic load when tracing is off.
inline bool profiling_enabled() {
  return telemetry_detail::g_enabled.load(std::memory_order_relaxed);
}

/// The process-wide telemetry sink. Thread-safe; shared by every device.
class Profiler {
 public:
  /// The singleton (leaked, so atexit dumps and late spans stay safe).
  static Profiler& instance();

  void start();
  void stop();
  [[nodiscard]] bool enabled() const { return profiling_enabled(); }
  /// Drops captured spans, counters, and track cursors (keeps enabled).
  void reset();

  /// Appends a span and folds it into the counters. Spans on track 0
  /// (host-synchronous ops have no stream timeline) are placed at the
  /// device's sync-track cursor, which then advances by the duration —
  /// keeping per-track timestamps monotonic by construction.
  void record(const Device& dev, TraceSpan span);

  [[nodiscard]] ProfilerCounters counters() const;
  [[nodiscard]] std::vector<TraceSpan> spans() const;

  /// Renders every captured span as Chrome trace-event JSON: one
  /// process per device, one thread (track) per stream, "X" slices at
  /// modeled timestamps (microseconds), flow arrows for event
  /// record -> wait edges, and the counters registry under "otherData".
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool dump_chrome_trace(const std::string& path) const;

 private:
  Profiler() = default;

  struct DeviceEntry {
    const Device* dev = nullptr;
    std::string name;
    double sync_cursor_ms = 0.0;  ///< end of the last track-0 span
  };

  /// Registers `dev` on first sight; returns its stable pid index.
  std::size_t device_index_locked(const Device& dev);

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<DeviceEntry> devices_;
  ProfilerCounters counters_;
};

}  // namespace simt
