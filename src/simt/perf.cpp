#include "simt/perf.h"

#include <algorithm>
#include <cmath>

#include "simt/device.h"

namespace simt {

namespace {
// Fraction of peak resident threads needed to saturate the memory
// system / compute pipes (Little's-law style latency-hiding knee).
// Documented in EXPERIMENTS.md §Calibration.
constexpr double kMemSaturationFrac = 0.25;
constexpr double kCompSaturationFrac = 0.20;
// Device binaries larger than this start paying an instruction-cache
// penalty (the paper's SU3 analysis: 29 KiB ompx binary vs 3.9 KiB CUDA).
constexpr double kIcacheFreeKib = 8.0;
constexpr double kIcachePenaltyPerKib = 0.004;
}  // namespace

std::uint32_t resident_threads_per_sm(const DeviceConfig& dev,
                                      std::uint32_t threads_per_block,
                                      const CompilerProfile& prof,
                                      std::uint64_t dynamic_smem_bytes) {
  if (threads_per_block == 0) return 0;
  // Warp granularity: a block occupies whole warps.
  const std::uint32_t warps_per_block =
      static_cast<std::uint32_t>(ceil_div(threads_per_block, dev.warp_size));
  const std::uint32_t alloc_threads = warps_per_block * dev.warp_size;

  std::uint64_t blocks = dev.max_threads_per_sm / alloc_threads;
  blocks = std::min<std::uint64_t>(blocks, dev.max_blocks_per_sm);

  const std::uint64_t regs_per_block =
      static_cast<std::uint64_t>(std::max(prof.regs_per_thread, 1)) * alloc_threads;
  blocks = std::min(blocks, dev.regs_per_sm / std::max<std::uint64_t>(regs_per_block, 1));

  const std::uint64_t smem_per_block =
      prof.static_smem_bytes + dynamic_smem_bytes;
  if (smem_per_block > 0)
    blocks = std::min(blocks, dev.smem_per_sm / smem_per_block);

  // A kernel that fits no block at all still runs (one block at a time,
  // serialized); clamp so the model degrades instead of dividing by zero.
  blocks = std::max<std::uint64_t>(blocks, 1);
  return static_cast<std::uint32_t>(blocks * threads_per_block);
}

ModeledTime model_time(const DeviceConfig& dev, const CompilerProfile& prof,
                       const KernelCost& cost, const LaunchStats& stats,
                       std::uint32_t threads_per_block,
                       std::uint64_t dynamic_smem_bytes,
                       const EventCosts& ec) {
  ModeledTime out;

  const double threads = static_cast<double>(stats.threads);
  const std::uint32_t res_per_sm =
      resident_threads_per_sm(dev, threads_per_block, prof, dynamic_smem_bytes);
  const double resident = static_cast<double>(res_per_sm) * dev.num_sms;
  const double device_capacity =
      static_cast<double>(dev.max_threads_per_sm) * dev.num_sms;
  const double conc = std::min(threads, resident);
  out.occupancy = resident / device_capacity;

  // Latency hiding: below the saturation knee, achievable throughput
  // scales linearly with resident concurrency (Little's law).
  const double mem_eff =
      std::min(1.0, conc / (kMemSaturationFrac * device_capacity));
  const double comp_eff =
      std::min(1.0, conc / (kCompSaturationFrac * device_capacity));

  // Instruction-cache penalty for oversized device binaries.
  const double icache =
      prof.binary_kib <= kIcacheFreeKib
          ? 1.0
          : 1.0 / (1.0 + kIcachePenaltyPerKib * (prof.binary_kib - kIcacheFreeKib));

  // --- roofline terms -----------------------------------------------------
  const double flops = cost.flops_per_thread * threads;
  double global_bytes = cost.global_bytes_per_thread * threads;
  double shared_bytes = cost.shared_bytes_per_thread * threads;
  const double spill_bytes = cost.local_spill_bytes_per_thread * threads;
  if (stats.spill_in_shared) {
    shared_bytes += spill_bytes;  // heap-to-shared optimization (RSBench §4.2.2)
  } else {
    global_bytes += spill_bytes;
  }
  // Globalized locals live in the device heap: their traffic is global.
  global_bytes += static_cast<double>(stats.globalized_bytes);

  const double eff_gflops =
      dev.peak_gflops() * comp_eff * prof.compute_efficiency * icache;
  out.compute_ms = flops > 0 ? flops / (eff_gflops * 1e6) : 0.0;
  out.memory_ms =
      global_bytes > 0
          ? global_bytes / (dev.mem_bw_gbps * mem_eff * prof.mem_efficiency * 1e6)
          : 0.0;
  out.shared_ms = shared_bytes > 0
                      ? shared_bytes / (dev.shared_bw_gbps * comp_eff * 1e6)
                      : 0.0;

  // --- serialized overheads -----------------------------------------------
  // Per-block events execute concurrently across resident blocks; only
  // the wave count serializes them.
  const double blocks = static_cast<double>(std::max<std::uint64_t>(stats.blocks, 1));
  const std::uint32_t blocks_per_sm =
      std::max<std::uint32_t>(res_per_sm / std::max<std::uint32_t>(threads_per_block, 1), 1);
  const double resident_blocks = static_cast<double>(blocks_per_sm) * dev.num_sms;
  const double waves = std::ceil(blocks / resident_blocks);

  const double handshake_cost =
      stats.generic_mode ? ec.handshake_generic_ns : ec.handshake_ns;
  const double per_block_ns =
      (static_cast<double>(stats.block_barriers) / blocks) * ec.barrier_ns +
      (static_cast<double>(stats.parallel_handshakes) / blocks) * handshake_cost +
      (static_cast<double>(stats.workshare_dispatches) / blocks) * ec.dispatch_ns +
      (static_cast<double>(stats.warp_collectives + stats.warp_syncs) / blocks) *
          ec.warp_collective_ns +
      (static_cast<double>(stats.atomics) / blocks) * ec.atomic_ns;

  out.overhead_ms = ec.launch_us / 1000.0 +
                    (stats.runtime_init ? ec.runtime_init_us / 1000.0 : 0.0) +
                    per_block_ns * waves / 1e6;

  out.total_ms = out.overhead_ms +
                 std::max({out.compute_ms, out.memory_ms, out.shared_ms});
  return out;
}

double model_transfer_ms(const DeviceConfig& dev, std::uint64_t bytes,
                         const EventCosts& ec) {
  return ec.transfer_latency_us / 1000.0 +
         static_cast<double>(bytes) / (dev.link_bw_gbps * 1e6);
}

double model_peer_transfer_ms(const DeviceConfig& src, const DeviceConfig& dst,
                              std::uint64_t bytes, const EventCosts& ec) {
  const double bw = std::min(src.peer_bw_gbps, dst.peer_bw_gbps);
  return ec.transfer_latency_us / 1000.0 +
         static_cast<double>(bytes) / (bw * 1e6);
}

}  // namespace simt
