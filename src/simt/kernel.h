// Kernel representation and the per-thread execution context.
//
// A kernel is any callable run once per GPU thread. Thread identity is
// ambient — read through this_thread() — exactly as threadIdx/blockIdx
// are ambient in CUDA, so kernel bodies written against the kl/ompx
// layers look like kernel-language code.
#pragma once

#include <cstdint>
#include <functional>

#include "simt/dim.h"
#include "simt/perf.h"

namespace simt {

class BlockState;
class WarpState;
class Fiber;
class Device;

/// Per-thread execution context, valid while that thread's kernel body
/// runs. Owned by the block runner; kernels must not store it beyond
/// the call.
struct ThreadCtx {
  Dim3 thread_idx;
  Dim3 block_idx;
  Dim3 block_dim;
  Dim3 grid_dim;
  std::uint32_t lane = 0;       ///< lane within the warp
  std::uint32_t warp_id = 0;    ///< warp index within the block
  std::uint32_t flat_tid = 0;   ///< linear thread id within the block
  BlockState* block = nullptr;  ///< barrier / shared arena / warp table
  WarpState* warp = nullptr;
  Device* device = nullptr;
  Fiber* fiber = nullptr;       ///< null in direct (non-cooperative) mode
};

/// The context of the GPU thread currently executing on this OS thread.
/// Throws if called from host code (outside a kernel).
ThreadCtx& this_thread();

/// True when called from inside a kernel body.
bool in_kernel();

using KernelFn = std::function<void()>;

/// Execution mode for a launch.
///
/// kCooperative runs every GPU thread as a fiber so the kernel may use
/// barriers and warp collectives anywhere. kDirect runs threads as
/// plain calls (no suspension): ~3x faster host-side, but any blocking
/// primitive throws. Results are identical when both are legal.
enum class ExecMode { kCooperative, kDirect };

/// How a cooperative launch executes its lanes.
///
/// kFiber is the classic path: every GPU thread runs on a fiber from
/// the start, so it may suspend anywhere. kConvergent is the pocl-style
/// lane-loop fast path: threads run as plain sequential calls on the
/// worker thread (zero context switches) until one reaches its first
/// collective — block barrier, warp op, or atomic — at which point the
/// thread "deflates" onto a fiber and the rest of the block takes the
/// fiber path (see BlockState). kDefault defers the choice to
/// EngineOptions::lane_exec, the per-kernel ExecHint registry, and the
/// OMPX_EXEC environment policy (device.h). Results are identical in
/// both modes; only host overhead differs.
enum class LaneExec : std::uint8_t { kDefault, kFiber, kConvergent };

/// Execution-model flags the OpenMP runtime emulation sets on its
/// launches; bare/native launches leave them all false (that absence of
/// runtime machinery is exactly what the paper's ompx_bare buys).
struct RuntimeModeFlags {
  bool runtime_init = false;    ///< device runtime state initialized
  bool generic_mode = false;    ///< generic-mode state machine active
  bool spill_in_shared = false; ///< heap-to-shared optimization applied
};

/// Everything that defines one kernel launch.
struct LaunchParams {
  Dim3 grid;
  Dim3 block;
  std::uint64_t dynamic_smem_bytes = 0;
  ExecMode mode = ExecMode::kCooperative;
  /// Lane execution strategy for cooperative launches (see LaneExec).
  /// kDefault resolves through the engine options / hint registry /
  /// OMPX_EXEC policy at launch time; Device::launch_sync stamps the
  /// resolved value before blocks run.
  LaneExec lane_exec = LaneExec::kDefault;
  /// Stamped alongside lane_exec from the hint registry's atomics_ok:
  /// a convergent lane loop may run atomics inline (count them, keep
  /// going) instead of deflating to fibers. Only meaningful when the
  /// kernel is statically proven rendezvous-free — a barrier after an
  /// inline atomic is unrecoverable (the lane's prefix is no longer
  /// idempotent) and raises std::logic_error.
  bool inline_atomics = false;
  CompilerProfile profile;  ///< code-gen attributes of this version
  KernelCost cost;          ///< roofline characterization (see perf.h)
  RuntimeModeFlags rt;
  const char* name = "kernel";
  /// Sharded-launch support (ompx::shard_launch): this launch executes
  /// only the `grid` blocks starting at `grid_offset` of a logical
  /// `logical_grid`-sized grid split across several devices. Kernels
  /// observe block ids offset by `grid_offset` and `logical_grid` as
  /// their grid_dim, so global thread ids are shard-transparent.
  /// Defaults ({0,0,0}) mean "not a shard": no offset, grid_dim = grid.
  Dim3 grid_offset{0, 0, 0};
  Dim3 logical_grid{0, 0, 0};
  /// False suppresses the per-launch entry in Device::launch_log()
  /// (shards log one combined record on the primary device instead).
  bool log = true;
};

}  // namespace simt
