#include "simt/memory.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

namespace simt {

namespace {
constexpr std::size_t kAlignment = 256;  // cudaMalloc guarantees >= 256
}

DeviceMemory::~DeviceMemory() {
  std::lock_guard lock(mu_);
  for (auto& [base, size] : allocs_) {
    (void)size;
    std::free(reinterpret_cast<void*>(base));
  }
}

void* DeviceMemory::allocate(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  std::lock_guard lock(mu_);
  if (in_use_ + bytes > capacity_) throw std::bad_alloc();
  void* p = std::aligned_alloc(kAlignment, (bytes + kAlignment - 1) / kAlignment * kAlignment);
  if (p == nullptr) throw std::bad_alloc();
  allocs_.emplace(reinterpret_cast<std::uintptr_t>(p), bytes);
  in_use_ += bytes;
  return p;
}

void DeviceMemory::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard lock(mu_);
  auto it = allocs_.find(reinterpret_cast<std::uintptr_t>(ptr));
  if (it == allocs_.end())
    throw std::invalid_argument("DeviceMemory::deallocate: not a live device allocation");
  in_use_ -= it->second;
  allocs_.erase(it);
  std::free(ptr);
}

bool DeviceMemory::contains(const void* ptr) const {
  std::lock_guard lock(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = allocs_.upper_bound(addr);
  if (it == allocs_.begin()) return false;
  --it;
  return addr < it->first + it->second;
}

std::size_t DeviceMemory::allocation_size(const void* ptr) const {
  std::lock_guard lock(mu_);
  auto it = allocs_.find(reinterpret_cast<std::uintptr_t>(ptr));
  return it == allocs_.end() ? 0 : it->second;
}

std::uint64_t DeviceMemory::bytes_in_use() const {
  std::lock_guard lock(mu_);
  return in_use_;
}

std::uint64_t DeviceMemory::live_allocations() const {
  std::lock_guard lock(mu_);
  return allocs_.size();
}

void DeviceMemory::validate_device_range(const void* ptr, std::size_t bytes,
                                         const char* what) const {
  std::lock_guard lock(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = allocs_.upper_bound(addr);
  if (it != allocs_.begin()) {
    --it;
    if (addr >= it->first && addr + bytes <= it->first + it->second) return;
  }
  throw std::out_of_range(std::string(what) +
                          ": range is not within a live device allocation");
}

std::size_t DeviceMemory::copy(void* dst, const void* src, std::size_t bytes,
                               CopyKind kind) const {
  if (bytes == 0) return 0;
  if (dst == nullptr || src == nullptr)
    throw std::invalid_argument("DeviceMemory::copy: null pointer");
  switch (kind) {
    case CopyKind::kHostToDevice:
      validate_device_range(dst, bytes, "copy(H2D) dst");
      break;
    case CopyKind::kDeviceToHost:
      validate_device_range(src, bytes, "copy(D2H) src");
      break;
    case CopyKind::kDeviceToDevice:
      validate_device_range(dst, bytes, "copy(D2D) dst");
      validate_device_range(src, bytes, "copy(D2D) src");
      break;
    case CopyKind::kHostToHost:
      break;
  }
  std::memmove(dst, src, bytes);
  return bytes;
}

std::size_t DeviceMemory::copy_2d(void* dst, std::size_t dpitch,
                                  const void* src, std::size_t spitch,
                                  std::size_t width, std::size_t height,
                                  CopyKind kind) const {
  if (width == 0 || height == 0) return 0;
  if (dpitch < width || spitch < width)
    throw std::invalid_argument("copy_2d: pitch smaller than row width");
  if (dst == nullptr || src == nullptr)
    throw std::invalid_argument("copy_2d: null pointer");
  const std::size_t dst_span = dpitch * (height - 1) + width;
  const std::size_t src_span = spitch * (height - 1) + width;
  switch (kind) {
    case CopyKind::kHostToDevice:
      validate_device_range(dst, dst_span, "copy_2d(H2D) dst");
      break;
    case CopyKind::kDeviceToHost:
      validate_device_range(src, src_span, "copy_2d(D2H) src");
      break;
    case CopyKind::kDeviceToDevice:
      validate_device_range(dst, dst_span, "copy_2d(D2D) dst");
      validate_device_range(src, src_span, "copy_2d(D2D) src");
      break;
    case CopyKind::kHostToHost:
      break;
  }
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  for (std::size_t row = 0; row < height; ++row)
    std::memmove(d + row * dpitch, s + row * spitch, width);
  return width * height;
}

void DeviceMemory::set(void* ptr, int value, std::size_t bytes) const {
  if (bytes == 0) return;
  validate_device_range(ptr, bytes, "memset");
  std::memset(ptr, value, bytes);
}

}  // namespace simt
