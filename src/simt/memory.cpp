#include "simt/memory.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include "simt/fault.h"
#include "simt/san.h"

namespace simt {

namespace {
constexpr std::size_t kAlignment = 256;  // cudaMalloc guarantees >= 256

std::size_t round_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

DeviceMemory::~DeviceMemory() {
  std::lock_guard lock(mu_);
  for (auto& [base, info] : allocs_) {
    (void)base;
    std::free(reinterpret_cast<void*>(info.real_base));
  }
  for (auto& [base, info] : quarantine_) {
    (void)base;
    std::free(reinterpret_cast<void*>(info.real_base));
  }
}

void* DeviceMemory::allocate(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  if (fault_should_fire(FaultSite::kDeviceAlloc))
    throw DeviceOOMError("fault injection: device allocation of " +
                         std::to_string(bytes) + " byte(s) refused");
  std::lock_guard lock(mu_);
  if (in_use_ + bytes > capacity_)
    throw DeviceOOMError(
        "device out of memory: " + std::to_string(bytes) +
        " byte(s) requested with " + std::to_string(in_use_) + " of " +
        std::to_string(capacity_) + " byte(s) in use");
  AllocInfo info;
  info.bytes = bytes;
  // Redzone width is one alignment quantum so the user pointer keeps
  // the 256-byte guarantee. Only taken while the memcheck is enabled:
  // the registry remembers per allocation, so toggling the sanitizer
  // mid-process stays consistent.
  info.redzone = san_enabled(kSanMem) ? kAlignment : 0;
  info.footprint = round_up(bytes, kAlignment) + 2 * info.redzone;
  void* p = std::aligned_alloc(kAlignment, info.footprint);
  if (p == nullptr) throw std::bad_alloc();
  info.real_base = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t user = info.real_base + info.redzone;
  if (info.redzone != 0) {
    // Poison the leading redzone and everything past the user bytes
    // (alignment padding included — an overrun into it is still OOB).
    std::memset(p, kRedzonePattern, info.redzone);
    std::memset(reinterpret_cast<void*>(user + bytes), kRedzonePattern,
                info.footprint - info.redzone - bytes);
  }
  allocs_.emplace(user, info);
  in_use_ += bytes;
  return reinterpret_cast<void*>(user);
}

void DeviceMemory::verify_redzones_locked(std::uintptr_t user_base,
                                          const AllocInfo& info) {
  if (info.redzone == 0) return;
  const auto* bytes = reinterpret_cast<const unsigned char*>(info.real_base);
  const std::size_t lead = info.redzone;
  const std::size_t tail_start = lead + info.bytes;
  for (std::size_t i = 0; i < info.footprint; ++i) {
    if (i >= lead && i < tail_start) continue;
    if (bytes[i] == kRedzonePattern) continue;
    SanDiag d;
    d.kind = SanKind::kRedzoneCorruption;
    d.addr = reinterpret_cast<const void*>(info.real_base + i);
    d.bytes = 1;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "redzone corrupted at free: byte %+" PRIdPTR
                  " relative to the %zu-byte allocation at 0x%" PRIxPTR
                  " was overwritten (0x%02x)",
                  static_cast<std::intptr_t>(info.real_base + i) -
                      static_cast<std::intptr_t>(user_base),
                  info.bytes, user_base, bytes[i]);
    d.message = buf;
    San::instance().record(std::move(d));
    return;  // one finding per allocation is enough
  }
}

void DeviceMemory::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard lock(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = allocs_.find(addr);
  if (it == allocs_.end()) {
    if (quarantine_.count(addr) != 0)
      throw std::invalid_argument(
          "DeviceMemory::deallocate: double free (allocation was already "
          "freed and is held in the sanitizer quarantine)");
    throw std::invalid_argument(
        "DeviceMemory::deallocate: not a live device allocation");
  }
  AllocInfo info = it->second;
  in_use_ -= info.bytes;
  allocs_.erase(it);
  verify_redzones_locked(addr, info);
  // Poison-on-free, unconditionally: a stale read of freed memory sees
  // 0xDD garbage instead of plausible data, with or without ompxsan.
  std::memset(ptr, kFreePattern, info.bytes);
  if (!san_enabled(kSanMem)) {
    std::free(reinterpret_cast<void*>(info.real_base));
    return;
  }
  // Quarantine: keep the storage resident so instrumented accesses to
  // it classify as use-after-free instead of landing in a recycled
  // allocation. Bounded FIFO so long runs don't hoard memory.
  quarantine_bytes_ += info.footprint;
  quarantine_.emplace(addr, info);
  quarantine_order_.push_back(addr);
  while (quarantine_bytes_ > kQuarantineCap && !quarantine_order_.empty()) {
    const std::uintptr_t oldest = quarantine_order_.front();
    quarantine_order_.pop_front();
    auto qit = quarantine_.find(oldest);
    if (qit == quarantine_.end()) continue;
    quarantine_bytes_ -= qit->second.footprint;
    std::free(reinterpret_cast<void*>(qit->second.real_base));
    quarantine_.erase(qit);
  }
}

bool DeviceMemory::contains(const void* ptr) const {
  std::lock_guard lock(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = allocs_.upper_bound(addr);
  if (it == allocs_.begin()) return false;
  --it;
  return addr < it->first + it->second.bytes;
}

std::size_t DeviceMemory::allocation_size(const void* ptr) const {
  std::lock_guard lock(mu_);
  auto it = allocs_.find(reinterpret_cast<std::uintptr_t>(ptr));
  return it == allocs_.end() ? 0 : it->second.bytes;
}

std::uint64_t DeviceMemory::bytes_in_use() const {
  std::lock_guard lock(mu_);
  return in_use_;
}

std::uint64_t DeviceMemory::live_allocations() const {
  std::lock_guard lock(mu_);
  return allocs_.size();
}

std::vector<LeakInfo> DeviceMemory::leak_report() const {
  std::lock_guard lock(mu_);
  std::vector<LeakInfo> leaks;
  leaks.reserve(allocs_.size());
  for (const auto& [base, info] : allocs_)
    leaks.push_back({reinterpret_cast<const void*>(base), info.bytes});
  return leaks;
}

MemAccessCheck DeviceMemory::check_access(const void* ptr,
                                          std::size_t bytes) const {
  if (bytes == 0) bytes = 1;
  std::lock_guard lock(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  MemAccessCheck out;

  // Live allocation at or below addr: in-bounds, overrun, or a hit in
  // its footprint (tail redzone / padding).
  auto it = allocs_.upper_bound(addr);
  if (it != allocs_.begin()) {
    auto prev = std::prev(it);
    const std::uintptr_t user = prev->first;
    const AllocInfo& info = prev->second;
    if (addr < user + info.bytes) {
      out.base = user;
      out.size = info.bytes;
      out.status = addr + bytes <= user + info.bytes
                       ? MemAccessCheck::Status::kOk
                       : MemAccessCheck::Status::kOob;
      return out;
    }
    if (addr < info.real_base + info.footprint) {
      out.base = user;
      out.size = info.bytes;
      out.status = MemAccessCheck::Status::kOob;
      return out;
    }
  }
  // Leading redzone of the next allocation (underrun).
  if (it != allocs_.end()) {
    const AllocInfo& next = it->second;
    if (addr + bytes > next.real_base && addr >= next.real_base) {
      out.base = it->first;
      out.size = next.bytes;
      out.status = MemAccessCheck::Status::kOob;
      return out;
    }
  }
  // Quarantined (freed) allocations, full footprint.
  auto qit = quarantine_.upper_bound(addr);
  if (qit != quarantine_.begin()) {
    auto prev = std::prev(qit);
    const AllocInfo& info = prev->second;
    if (addr < info.real_base + info.footprint) {
      out.base = prev->first;
      out.size = info.bytes;
      out.status = MemAccessCheck::Status::kFreed;
      return out;
    }
  }
  return out;  // kUnknown
}

void DeviceMemory::validate_device_range(const void* ptr, std::size_t bytes,
                                         const char* what) const {
  std::lock_guard lock(mu_);
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = allocs_.upper_bound(addr);
  if (it != allocs_.begin()) {
    --it;
    if (addr >= it->first && addr + bytes <= it->first + it->second.bytes)
      return;
  }
  throw std::out_of_range(std::string(what) +
                          ": range is not within a live device allocation");
}

std::size_t DeviceMemory::copy(void* dst, const void* src, std::size_t bytes,
                               CopyKind kind) const {
  if (bytes == 0) return 0;
  if (dst == nullptr || src == nullptr)
    throw std::invalid_argument("DeviceMemory::copy: null pointer");
  switch (kind) {
    case CopyKind::kHostToDevice:
      validate_device_range(dst, bytes, "copy(H2D) dst");
      break;
    case CopyKind::kDeviceToHost:
      validate_device_range(src, bytes, "copy(D2H) src");
      break;
    case CopyKind::kDeviceToDevice:
      validate_device_range(dst, bytes, "copy(D2D) dst");
      validate_device_range(src, bytes, "copy(D2D) src");
      break;
    case CopyKind::kHostToHost:
      break;
  }
  std::memmove(dst, src, bytes);
  return bytes;
}

std::size_t DeviceMemory::copy_2d(void* dst, std::size_t dpitch,
                                  const void* src, std::size_t spitch,
                                  std::size_t width, std::size_t height,
                                  CopyKind kind) const {
  if (width == 0 || height == 0) return 0;
  if (dpitch < width || spitch < width)
    throw std::invalid_argument("copy_2d: pitch smaller than row width");
  if (dst == nullptr || src == nullptr)
    throw std::invalid_argument("copy_2d: null pointer");
  const std::size_t dst_span = dpitch * (height - 1) + width;
  const std::size_t src_span = spitch * (height - 1) + width;
  switch (kind) {
    case CopyKind::kHostToDevice:
      validate_device_range(dst, dst_span, "copy_2d(H2D) dst");
      break;
    case CopyKind::kDeviceToHost:
      validate_device_range(src, src_span, "copy_2d(D2H) src");
      break;
    case CopyKind::kDeviceToDevice:
      validate_device_range(dst, dst_span, "copy_2d(D2D) dst");
      validate_device_range(src, src_span, "copy_2d(D2D) src");
      break;
    case CopyKind::kHostToHost:
      break;
  }
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  for (std::size_t row = 0; row < height; ++row)
    std::memmove(d + row * dpitch, s + row * spitch, width);
  return width * height;
}

void DeviceMemory::set(void* ptr, int value, std::size_t bytes) const {
  if (bytes == 0) return;
  validate_device_range(ptr, bytes, "memset");
  std::memset(ptr, value, bytes);
}

// ---------------------------------------------------------- StreamMemPool

void* StreamMemPool::acquire(std::uint64_t stream_id, std::size_t bytes) {
  std::lock_guard lock(mu_);
  auto pit = pools_.find(stream_id);
  if (pit != pools_.end()) {
    auto bit = pit->second.find(bytes);
    if (bit != pit->second.end()) {
      void* p = bit->second;
      pit->second.erase(bit);
      stats_.reuse_hits++;
      stats_.bytes_reused += bytes;
      return p;
    }
  }
  stats_.misses++;
  return nullptr;
}

void StreamMemPool::release(std::uint64_t stream_id, void* ptr,
                            std::size_t bytes) {
  std::lock_guard lock(mu_);
  pools_[stream_id].emplace(bytes, ptr);
  stats_.frees++;
}

void StreamMemPool::trim() {
  std::lock_guard lock(mu_);
  for (auto& [id, pool] : pools_) {
    for (auto& [bytes, ptr] : pool) {
      mem_.deallocate(ptr);
      stats_.reclaimed_blocks++;
      stats_.reclaimed_bytes += bytes;
    }
  }
  pools_.clear();
}

void StreamMemPool::trim_stream(std::uint64_t stream_id) {
  std::lock_guard lock(mu_);
  // The stream is going away: release its async-origin claims so any
  // still-live malloc_async blocks become plain-freeable (ompx_free)
  // instead of being stranded behind a dead stream.
  for (auto ait = async_live_.begin(); ait != async_live_.end();) {
    if (ait->second == stream_id)
      ait = async_live_.erase(ait);
    else
      ++ait;
  }
  auto it = pools_.find(stream_id);
  if (it == pools_.end()) return;
  for (auto& [bytes, ptr] : it->second) {
    mem_.deallocate(ptr);
    stats_.reclaimed_blocks++;
    stats_.reclaimed_bytes += bytes;
  }
  pools_.erase(it);
}

void StreamMemPool::note_async_live(const void* ptr, std::uint64_t stream_id) {
  std::lock_guard lock(mu_);
  async_live_[ptr] = stream_id;
}

void StreamMemPool::note_async_dead(const void* ptr) {
  std::lock_guard lock(mu_);
  async_live_.erase(ptr);
}

bool StreamMemPool::is_async_live(const void* ptr) const {
  std::lock_guard lock(mu_);
  return async_live_.count(ptr) != 0;
}

MemPoolStats StreamMemPool::stats() const {
  std::lock_guard lock(mu_);
  MemPoolStats s = stats_;
  for (const auto& [id, pool] : pools_) {
    s.pooled_blocks += pool.size();
    for (const auto& [bytes, ptr] : pool) s.pooled_bytes += bytes;
  }
  return s;
}

void StreamMemPool::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = MemPoolStats{};
}

}  // namespace simt
