#include "simt/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace simt {

namespace fault_detail {
constinit std::atomic<std::uint32_t> g_armed{0};
}  // namespace fault_detail

namespace {

constexpr std::size_t kSiteCount = static_cast<std::size_t>(FaultSite::kCount);

const char* const kSiteNames[kSiteCount] = {
    "oom", "host_oom", "stall", "peer", "graph", "device_lost",
};

/// splitmix64 — the same mixer the apps use for deterministic data.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform [0,1) from (seed, site, call#).
double prob01(std::uint64_t seed, FaultSite site, std::uint64_t call) {
  const std::uint64_t h =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(site) + 1) ^ mix64(call));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("malformed fault spec '" + spec + "': " + why);
}

std::uint64_t parse_u64(const std::string& spec, const std::string& v) {
  unsigned long long n = 0;
  std::size_t pos = 0;
  try {
    n = std::stoull(v, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "expected an integer, got '" + v + "'");
  }
  if (pos != v.size()) bad_spec(spec, "trailing characters in '" + v + "'");
  return n;
}

double parse_f64(const std::string& spec, const std::string& v) {
  double f = 0.0;
  std::size_t pos = 0;
  try {
    f = std::stod(v, &pos);
  } catch (const std::exception&) {
    bad_spec(spec, "expected a number, got '" + v + "'");
  }
  if (pos != v.size()) bad_spec(spec, "trailing characters in '" + v + "'");
  return f;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  return i < kSiteCount ? kSiteNames[i] : "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector;  // leaked on purpose
  return *injector;
}

void FaultInjector::enable(const std::string& spec) {
  // Parse into a scratch rule set first so a malformed spec leaves the
  // previous configuration armed and untouched.
  Rule parsed[kSiteCount];
  std::size_t start = 0;
  bool any = false;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    const std::string site_name = clause.substr(0, colon);
    int site = -1;
    for (std::size_t i = 0; i < kSiteCount; ++i)
      if (site_name == kSiteNames[i]) site = static_cast<int>(i);
    if (site < 0) bad_spec(spec, "unknown site '" + site_name + "'");

    Rule& r = parsed[site];
    r.armed = true;
    any = true;
    if (colon == std::string::npos) continue;  // bare site: fire always

    std::string args = clause.substr(colon + 1);
    std::size_t astart = 0;
    while (astart <= args.size()) {
      std::size_t aend = args.find(',', astart);
      if (aend == std::string::npos) aend = args.size();
      const std::string arg = args.substr(astart, aend - astart);
      astart = aend + 1;
      if (arg.empty()) continue;
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos)
        bad_spec(spec, "argument '" + arg + "' is not key=value");
      const std::string key = arg.substr(0, eq);
      const std::string val = arg.substr(eq + 1);
      if (key == "after") {
        r.trigger = Trigger::kAfter;
        r.n = parse_u64(spec, val);
      } else if (key == "every") {
        r.trigger = Trigger::kEvery;
        r.n = parse_u64(spec, val);
        if (r.n == 0) bad_spec(spec, "every=0 never fires");
      } else if (key == "p") {
        r.trigger = Trigger::kProb;
        r.p = parse_f64(spec, val);
        if (r.p < 0.0 || r.p > 1.0)
          bad_spec(spec, "probability must be in [0,1]");
      } else if (key == "seed") {
        r.seed = parse_u64(spec, val);
      } else if (key == "ms") {
        // Clamp so a fuzzer-supplied spec cannot stall a worker for
        // longer than a second per op.
        r.ms = std::clamp(parse_f64(spec, val), 0.0, 1000.0);
      } else {
        bad_spec(spec, "unknown argument '" + key + "'");
      }
    }
  }
  if (!any) bad_spec(spec, "no sites armed");

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < kSiteCount; ++i) rules_[i] = parsed[i];
  spec_ = spec;
  fired_total_ = 0;
  fault_detail::g_armed.store(1, std::memory_order_release);
}

void FaultInjector::disable() {
  std::lock_guard<std::mutex> lock(mu_);
  fault_detail::g_armed.store(0, std::memory_order_release);
  for (Rule& r : rules_) r = Rule{};
  spec_.clear();
}

bool FaultInjector::active() const {
  return fault_detail::g_armed.load(std::memory_order_acquire) != 0;
}

std::string FaultInjector::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

bool FaultInjector::should_fire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  Rule& r = rules_[static_cast<std::size_t>(site)];
  if (!r.armed) return false;
  r.calls++;
  bool fire = false;
  switch (r.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kAfter:
      if (!r.exhausted && r.calls > r.n) {
        fire = true;
        r.exhausted = true;
      }
      break;
    case Trigger::kEvery:
      fire = r.calls % r.n == 0;
      break;
    case Trigger::kProb:
      fire = prob01(r.seed, site, r.calls) < r.p;
      break;
  }
  if (fire) {
    r.fired++;
    fired_total_++;
  }
  return fire;
}

double FaultInjector::stall_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_[static_cast<std::size_t>(FaultSite::kStreamStall)].ms;
}

std::uint64_t FaultInjector::injected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_total_;
}

std::uint64_t FaultInjector::injected_count(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_[static_cast<std::size_t>(site)].fired;
}

void FaultInjector::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Rule& r : rules_) {
    r.calls = 0;
    r.fired = 0;
    r.exhausted = false;
  }
  fired_total_ = 0;
}

namespace {

/// OMPX_FAULT arms injection for the whole process at static init —
/// the hook the fault-matrix CI leg uses to run existing binaries
/// under injection without recompiling.
const bool g_env_armed = [] {
  const char* spec = std::getenv("OMPX_FAULT");
  if (spec == nullptr || spec[0] == '\0') return false;
  try {
    FaultInjector::instance().enable(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[simt] ignoring OMPX_FAULT: %s\n", e.what());
    return false;
  }
  return true;
}();

}  // namespace

}  // namespace simt
