// ompxsan — the engine's compute-sanitizer (the analogue of NVIDIA's
// compute-sanitizer for this CPU-hosted reproduction).
//
// Three opt-in check families, combinable as a bitmask:
//
//  * kSanRace  — shared-memory racecheck. The cooperative block
//    scheduler runs every thread of a block on one OS thread with a
//    deterministic interleave, so a shadow cell per shared-arena byte
//    (last writer, last reader, each stamped with the block's barrier
//    epoch) detects RAW/WAW/WAR pairs *exactly*: two different threads
//    touching overlapping bytes inside the same barrier interval, at
//    least one write. Accesses flow in through the instrumented
//    accessors (ompx::san::Shared<T> / san_shared_access), never by
//    patching raw pointers — the sanitizer sees what you route
//    through it.
//  * kSanMem   — device memcheck. Instrumented global-memory accesses
//    (ompx::san::GlobalPtr<T> / DeviceBuffer::checked()) are validated
//    against DeviceMemory's registry: out-of-bounds, use-after-free
//    (freed blocks are quarantined while the check is on), and
//    host-pointer-in-kernel. Allocations additionally grow redzones
//    whose poison pattern is verified on free, so plain raw-pointer
//    overruns surface too, and frees poison-fill the payload (0xDD).
//  * kSanSync  — divergence/sync checks. Warp collective masks are
//    validated against the warp's live lanes (naming an exited lane is
//    an error, not a silent drop), and a deadlock whose census shows
//    threads stranded at the block barrier is reported as a named
//    barrier-divergence diagnostic with the barrier epoch.
//
// The off state costs one relaxed atomic load per instrumented access
// (san_enabled), mirroring simt/profiler.h. Activation is uniform
// across the layers: San::instance().enable(), ompx_san_enable (C),
// ompx::San (RAII), klSanEnable (kl), OMPX_SAN=race,mem,sync (env,
// which also prints the report at process exit), and --san on the
// bench CLIs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "simt/dim.h"

namespace simt {

/// Check families (bitmask).
inline constexpr std::uint32_t kSanRace = 1u;  ///< shared-memory racecheck
inline constexpr std::uint32_t kSanMem = 2u;   ///< device memcheck
inline constexpr std::uint32_t kSanSync = 4u;  ///< divergence/sync checks
inline constexpr std::uint32_t kSanAll = kSanRace | kSanMem | kSanSync;

namespace san_detail {
/// The sanitizer switch. Read relaxed on every instrumented access;
/// written only by San::enable/disable.
extern constinit std::atomic<std::uint32_t> g_checks;
}  // namespace san_detail

/// The hot-path guard: one relaxed atomic load when the sanitizer is
/// off. `checks` is any OR of kSanRace/kSanMem/kSanSync.
inline bool san_enabled(std::uint32_t checks) {
  return (san_detail::g_checks.load(std::memory_order_relaxed) & checks) != 0;
}

/// Diagnostic categories — the "exact diagnostic" tests assert on.
enum class SanKind : std::uint8_t {
  kSharedRace,          ///< RAW/WAW/WAR on shared memory, same epoch
  kGlobalOob,           ///< access outside a live allocation's bounds
  kUseAfterFree,        ///< access to a freed (quarantined) allocation
  kHostPointer,         ///< kernel access through a non-device pointer
  kRedzoneCorruption,   ///< redzone poison damaged, found at free
  kInvalidWarpMask,     ///< collective mask vs live/member lanes
  kBarrierDivergence,   ///< deadlock census: threads stranded at barrier
  kSharedAllocMismatch, ///< groupprivate size/align diverged per thread
  kLeak,                ///< live allocation at device teardown
};

const char* san_kind_name(SanKind k);

/// One sanitizer finding. tid fields are flat thread ids within the
/// block (~0u = not applicable; kSanManyThreads = several distinct).
struct SanDiag {
  SanKind kind = SanKind::kSharedRace;
  std::string message;       ///< full human-readable diagnostic
  std::string kernel;        ///< launch name ("" for host-side findings)
  Dim3 block{0, 0, 0};       ///< block index of the offending access
  std::uint32_t tid_a = ~0u; ///< second (reporting) thread of a pair
  std::uint32_t tid_b = ~0u; ///< first (recorded) thread of a pair
  const void* addr = nullptr;
  std::size_t bytes = 0;
  std::uint64_t epoch = 0;   ///< barrier epoch of the conflict
};

/// Sentinel for "several distinct threads" in SanDiag::tid_b.
inline constexpr std::uint32_t kSanManyThreads = 0xFFFFFFFEu;

/// The process-wide sanitizer: switch, diagnostic sink, report
/// formatter. Thread-safe; the singleton is leaked so atexit reports
/// and late host-side findings (device teardown) stay safe.
class San {
 public:
  static San& instance();

  /// Turns the given check families on (OR into the current mask).
  void enable(std::uint32_t checks = kSanAll);
  /// Turns every check off (diagnostics are kept until reset()).
  void disable();
  [[nodiscard]] std::uint32_t checks() const {
    return san_detail::g_checks.load(std::memory_order_relaxed);
  }

  /// Parses "race,mem,sync" / "all" / "1" (OMPX_SAN syntax) into a
  /// check mask. Unknown tokens are ignored; an empty or pure-boolean
  /// value means every check.
  static std::uint32_t parse_checks(const char* spec);

  /// Drops every recorded diagnostic and zeroes the counters (the
  /// enabled mask is untouched).
  void reset();

  /// Appends a finding. The first kMaxStored diagnostics are kept
  /// verbatim; later ones only count (the report says how many were
  /// elided). Never throws.
  void record(SanDiag diag);

  /// Total findings recorded since the last reset (including elided).
  [[nodiscard]] std::uint64_t error_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  /// Findings of one category.
  [[nodiscard]] std::uint64_t count(SanKind k) const;
  /// Copy of the stored diagnostics (at most kMaxStored).
  [[nodiscard]] std::vector<SanDiag> diagnostics() const;

  /// Human-readable report. Always contains the line
  /// "ompxsan: <N> error(s)" so scripts can assert on zero.
  [[nodiscard]] std::string report() const;
  /// Writes report() to `f` (default stderr); returns error_count().
  std::uint64_t print_report(std::FILE* f = nullptr) const;

  static constexpr std::size_t kMaxStored = 256;

 private:
  San() = default;

  mutable std::mutex mu_;
  std::vector<SanDiag> diags_;
  std::uint64_t by_kind_[9] = {};
  std::atomic<std::uint64_t> total_{0};
};

// --- instrumented-access hooks (called by the ompx::san accessors and
// --- any layer that wants checked loads/stores) --------------------------

/// Racecheck hook: records a shared-memory access by the calling GPU
/// thread. Outside a kernel, or for a pointer that is not in the
/// calling block's shared arena, this is a no-op (a pointer that is
/// device-global instead falls through to san_global_access when
/// kSanMem is also on). Call only under san_enabled(kSanRace).
void san_shared_access(const void* ptr, std::size_t bytes, bool is_write,
                       bool is_atomic = false);

/// Memcheck hook: validates a global-memory access by the calling GPU
/// thread against the device's allocation registry. Returns true when
/// the access is safe to perform; false when it must be skipped (OOB /
/// use-after-free / host pointer — a diagnostic has been recorded).
/// Outside a kernel it is a no-op returning true (host code touches
/// simulated device memory legitimately). Call only under
/// san_enabled(kSanMem).
[[nodiscard]] bool san_global_access(const void* ptr, std::size_t bytes,
                                     bool is_write);

}  // namespace simt
