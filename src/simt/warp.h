// Warp state and warp-level collectives (shuffle / ballot / vote / sync).
//
// A warp is a group of `DeviceConfig::warp_size` consecutive threads of
// a block (32 on sim-a100, 64 on sim-mi250). Collectives are modeled as
// a rendezvous: each participating lane deposits its operand and
// suspends; the last arriving lane computes every participant's result
// and releases the warp. This reproduces kernel-language semantics —
// including CUDA's "all lanes named in the mask must reach the
// collective" contract, whose violation the engine turns into a
// diagnosable error instead of a hang.
#pragma once

#include <cstdint>
#include <vector>

namespace simt {

class BlockState;
struct ThreadCtx;

/// Lane masks are 64-bit so a 64-wide AMD wavefront fits.
using LaneMask = std::uint64_t;

enum class WarpOp : std::uint8_t {
  kNone,
  kSync,      ///< warp barrier, no data
  kShflIdx,   ///< read lane `param` (per-lane parameter)
  kShflUp,    ///< read lane - delta
  kShflDown,  ///< read lane + delta
  kShflXor,   ///< read lane ^ lanemask
  kBallot,    ///< bit per lane with nonzero predicate
  kAny,       ///< vote.any
  kAll,       ///< vote.all
  kReduceAdd, ///< __reduce_add_sync (wrapping, int64 payload)
  kReduceMin, ///< __reduce_min_sync (int64 payload)
  kReduceMax, ///< __reduce_max_sync (int64 payload)
};

class WarpState {
 public:
  WarpState(BlockState& block, std::uint32_t warp_id, std::uint32_t width);

  /// Lane `lane` participates in a collective. `value` and `param` are
  /// raw 64-bit lanes of the operand (floating types are bit-cast by
  /// the caller). Blocks (yields) until all lanes in `mask` arrive;
  /// returns this lane's result.
  std::uint64_t collective(ThreadCtx& ctx, WarpOp op, std::uint64_t value,
                           std::uint64_t param, LaneMask mask);

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t warp_id() const { return warp_id_; }
  /// Lanes of this warp that exist (partial last warp of a block).
  [[nodiscard]] LaneMask member_mask() const { return member_mask_; }
  /// Lanes that have not returned from the kernel yet.
  [[nodiscard]] LaneMask live_mask() const { return live_mask_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] bool rendezvous_pending() const { return arrived_ != 0; }

  /// Called by the block runner when a lane's kernel body returns.
  /// Throws if the lane is still expected by a pending collective.
  void on_lane_exit(std::uint32_t lane);

 private:
  friend class BlockState;

  void release();  // compute results for all participants, advance epoch

  BlockState& block_;
  std::uint32_t warp_id_;
  std::uint32_t width_;
  LaneMask member_mask_;
  LaneMask live_mask_;

  // Rendezvous state for the in-flight collective (one at a time per warp).
  WarpOp op_ = WarpOp::kNone;
  LaneMask op_mask_ = 0;   ///< participants, fixed by the first arrival
  LaneMask arrived_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> param_;
  std::vector<std::uint64_t> result_;
};

}  // namespace simt
