// Block runner: executes one thread block of a launch.
//
// In cooperative mode every GPU thread is a fiber; a single-threaded
// round-robin scheduler resumes runnable fibers until all finish.
// Threads suspend at block barriers and warp rendezvous; the scheduler
// detects deadlock (no runnable fiber while threads remain), which is
// how invalid divergent synchronization surfaces as an error instead of
// a hang. In direct mode threads are plain calls — ~3x less host
// overhead — and any blocking primitive throws.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simt/dim.h"
#include "simt/fiber.h"
#include "simt/kernel.h"
#include "simt/shared_arena.h"
#include "simt/warp.h"

namespace simt {

class Device;

/// Per-launch counters a block accumulates locally and flushes once.
/// The runtime-emulation fields are incremented by the omp device
/// runtime layer when it executes inside a kernel.
struct BlockCounters {
  std::uint64_t block_barriers = 0;
  std::uint64_t warp_collectives = 0;
  std::uint64_t warp_syncs = 0;
  std::uint64_t atomics = 0;
  std::uint64_t parallel_handshakes = 0;
  std::uint64_t workshare_dispatches = 0;
  std::uint64_t globalized_bytes = 0;
};

class BlockState {
 public:
  BlockState(Device& device, const LaunchParams& params, Dim3 block_idx,
             const KernelFn& kernel, FiberStackPool& stacks);

  BlockState(const BlockState&) = delete;
  BlockState& operator=(const BlockState&) = delete;

  /// Runs every thread of the block to completion.
  void run();

  // --- device-side primitives, called from kernel code via ThreadCtx ---

  /// Block-wide barrier (__syncthreads / ompx_sync_thread_block).
  void sync_threads(ThreadCtx& ctx);

  /// Funnelled shared-memory allocation: the k-th call of every thread
  /// returns the same pointer (one block-level variable per call site
  /// ordinal, the library equivalent of a __shared__ declaration).
  /// Sizes must agree across threads.
  void* shared_alloc(ThreadCtx& ctx, std::size_t bytes, std::size_t align);

  /// Base of the dynamic shared segment (extern __shared__).
  void* dynamic_shared() { return arena_.dynamic_base(); }
  [[nodiscard]] std::size_t dynamic_shared_size() const {
    return arena_.dynamic_size();
  }

  [[nodiscard]] WarpState& warp(std::uint32_t warp_id) { return *warps_[warp_id]; }
  [[nodiscard]] std::uint32_t num_warps() const {
    return static_cast<std::uint32_t>(warps_.size());
  }
  [[nodiscard]] std::uint32_t live_threads() const { return live_; }
  [[nodiscard]] Device& device() { return device_; }
  [[nodiscard]] const LaunchParams& params() const { return params_; }
  [[nodiscard]] const BlockCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t shared_high_water() const {
    return arena_.high_water();
  }

  /// Yields the calling fiber marked as waiting on the block barrier /
  /// its warp. Internal to the engine's blocking primitives.
  void wait_barrier(ThreadCtx& ctx);
  void wait_warp(ThreadCtx& ctx, std::uint64_t epoch_at_entry);

  BlockCounters counters_;  // accessed by WarpState on release

 private:
  enum class Wait : std::uint8_t { kNone, kBarrier, kWarp };

  struct Slot {
    Wait wait = Wait::kNone;
    std::uint64_t wait_epoch = 0;
  };

  void run_cooperative(FiberStackPool& stacks);
  void run_direct();
  void setup_ctx(std::uint32_t flat, ThreadCtx& ctx);
  [[nodiscard]] bool runnable(std::uint32_t i) const;
  void on_thread_exit(std::uint32_t flat);
  [[noreturn]] void deadlock(const char* where) const;

  Device& device_;
  const LaunchParams& params_;
  Dim3 block_idx_;
  const KernelFn& kernel_;
  FiberStackPool& stacks_;
  std::uint32_t nthreads_;
  std::uint32_t live_;

  SharedArena arena_;
  std::vector<std::unique_ptr<WarpState>> warps_;

  // Barrier state (epoch-based; single-threaded scheduler, no atomics).
  std::uint32_t barrier_arrived_ = 0;
  std::uint64_t barrier_epoch_ = 0;

  // Shared-allocation funnel.
  struct SharedVar {
    void* ptr;
    std::size_t bytes;
  };
  std::vector<SharedVar> shared_vars_;
  std::vector<std::uint32_t> shared_alloc_ordinal_;  // per thread

  std::vector<ThreadCtx> ctxs_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
};

}  // namespace simt
