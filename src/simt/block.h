// Block runner: executes one thread block of a launch.
//
// In cooperative mode every GPU thread runs on a fiber; a
// single-threaded ready-queue scheduler resumes runnable threads until
// all finish. Fibers are allocated lazily and recycled: a thread that
// runs to completion without ever suspending hands its fiber straight
// to the next thread, so a sync-free block needs O(live-suspended)
// fibers instead of O(block-size). Threads suspend at block barriers
// and warp rendezvous; barrier release and warp-epoch advance enqueue
// exactly their waiters, in ascending thread order within each wakeup
// (warp rendezvous semantics depend on deterministic arrival order).
// An empty ready queue with threads remaining is a deadlock — reported
// with a census of who waits where, which is how invalid divergent
// synchronization surfaces as an error instead of a hang. The legacy
// O(nthreads)-per-round sweep scheduler is kept behind
// EngineOptions::scheduler as a reference implementation; both produce
// identical results. In direct mode threads are plain calls — ~3x less
// host overhead — and any blocking primitive throws.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simt/dim.h"
#include "simt/fiber.h"
#include "simt/kernel.h"
#include "simt/shared_arena.h"
#include "simt/warp.h"

namespace simt {

class Device;

/// Per-launch counters a block accumulates locally and flushes once.
/// The runtime-emulation fields are incremented by the omp device
/// runtime layer when it executes inside a kernel.
struct BlockCounters {
  std::uint64_t block_barriers = 0;
  std::uint64_t warp_collectives = 0;
  std::uint64_t warp_syncs = 0;
  std::uint64_t atomics = 0;
  std::uint64_t parallel_handshakes = 0;
  std::uint64_t workshare_dispatches = 0;
  std::uint64_t globalized_bytes = 0;
  // Host-engine diagnostics (never modeled; see LaunchStats).
  std::uint64_t fibers_created = 0;
  std::uint64_t fiber_reuses = 0;
  std::uint64_t sched_lane_loops = 0;
  std::uint64_t sched_deflations = 0;
};

namespace detail {
/// Thrown by a blocking primitive (barrier / warp op / atomic) when the
/// executing thread is running inline under LaneExec::kConvergent: the
/// scheduler catches it, discards the thread's prefix (counters and
/// shared-alloc cursor restored; the prefix performed no engine-visible
/// mutation because the signal fires *before* any), and restarts the
/// thread on a fiber. Never escapes BlockState::run_cooperative.
struct DeflateSignal {};
}  // namespace detail

class BlockState {
 public:
  BlockState(Device& device, const LaunchParams& params, Dim3 block_idx,
             const KernelFn& kernel, FiberPool& fibers);

  BlockState(const BlockState&) = delete;
  BlockState& operator=(const BlockState&) = delete;

  /// Runs every thread of the block to completion.
  void run();

  /// Rewinds per-run state (live count, counters, shared arena, shared
  /// variable funnel) so run() can execute again over the same
  /// construction. Graph replay caches direct-mode BlockStates across
  /// replays because construction — warps, thread contexts, ordinal
  /// vectors — dominates the per-launch cost of a launch-bound graph.
  /// Only valid for ExecMode::kDirect: cooperative runs retire fiber
  /// and scheduler state that a reset does not restore.
  void reset_for_replay();

  // --- device-side primitives, called from kernel code via ThreadCtx ---

  /// Block-wide barrier (__syncthreads / ompx_sync_thread_block).
  void sync_threads(ThreadCtx& ctx);

  /// Funnelled shared-memory allocation: the k-th call of every thread
  /// returns the same pointer (one block-level variable per call site
  /// ordinal, the library equivalent of a __shared__ declaration).
  /// Sizes and alignments must agree across threads; disagreement is
  /// diagnosed with both thread ids and both requests.
  void* shared_alloc(ThreadCtx& ctx, std::size_t bytes, std::size_t align);

  /// ompxsan racecheck entry (see simt/san.h): records a shared-memory
  /// access against the per-byte shadow cells. Returns false when `ptr`
  /// is not in this block's shared arena (the caller may then treat it
  /// as a global access); true when it was handled here — including
  /// "handled by doing nothing" when kSanRace is off or the access is
  /// atomic.
  bool san_shared_access(ThreadCtx& ctx, const void* ptr, std::size_t bytes,
                         bool is_write, bool is_atomic);

  /// Base of the dynamic shared segment (extern __shared__).
  void* dynamic_shared() { return arena_.dynamic_base(); }
  [[nodiscard]] std::size_t dynamic_shared_size() const {
    return arena_.dynamic_size();
  }

  [[nodiscard]] WarpState& warp(std::uint32_t warp_id) { return *warps_[warp_id]; }
  [[nodiscard]] std::uint32_t num_warps() const {
    return static_cast<std::uint32_t>(warps_.size());
  }
  [[nodiscard]] std::uint32_t live_threads() const { return live_; }
  [[nodiscard]] Device& device() { return device_; }
  [[nodiscard]] const LaunchParams& params() const { return params_; }
  [[nodiscard]] Dim3 block_index() const { return block_idx_; }
  [[nodiscard]] const BlockCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t shared_high_water() const {
    return arena_.high_water();
  }

  /// Yields the calling fiber marked as waiting on the block barrier /
  /// its warp. Internal to the engine's blocking primitives.
  void wait_barrier(ThreadCtx& ctx);
  void wait_warp(ThreadCtx& ctx, std::uint64_t epoch_at_entry);

  /// Gate every blocking primitive passes before touching engine state:
  /// a fiberless thread either deflates (convergent lane loop — restart
  /// this thread on a fiber) or is an ExecMode::kDirect error. Called
  /// with the fiber present it is a no-op.
  void require_fiber(ThreadCtx& ctx, const char* what) {
    if (ctx.fiber != nullptr) return;
    if (inline_phase_) {
      if (inline_atomic_done_)
        throw std::logic_error(
            std::string(what) +
            " after an inline atomic in a kernel hinted atomics_ok — the "
            "lane's prefix is no longer replayable; the atomics_ok exec "
            "hint is wrong for this kernel");
      throw detail::DeflateSignal{};
    }
    throw std::logic_error(std::string(what) +
                           " in ExecMode::kDirect; launch cooperatively");
  }

  /// Atomic accounting + the convergent-mode deflation trigger. An
  /// atomic is not a rendezvous, but it is a non-idempotent side effect:
  /// deflating *before* the first one executes keeps every inline-run
  /// prefix replayable. Direct-mode and fiber threads just count.
  /// With the launch's inline_atomics set (statically proven
  /// rendezvous-free, see ExecHint::atomics_ok) the lane loop runs the
  /// atomic in place instead — a later rendezvous on the same lane is
  /// then a hard error, caught by require_fiber above.
  void note_atomic(ThreadCtx& ctx) {
    if (ctx.fiber == nullptr && inline_phase_) {
      if (!params_.inline_atomics) throw detail::DeflateSignal{};
      inline_atomic_done_ = true;
    }
    counters_.atomics++;
  }

  /// Called by WarpState when a rendezvous completes: enqueues the
  /// warp's suspended waiters (ascending lane order) on the ready queue.
  void notify_warp_release(WarpState& warp);

  BlockCounters counters_;  // accessed by WarpState on release

 private:
  // kDone doubles as the thread-lifecycle terminal state so the
  // deadlock census can skip finished threads without consulting a
  // (possibly recycled) fiber.
  enum class Wait : std::uint8_t { kNone, kBarrier, kWarp, kDone };

  struct Slot {
    Wait wait = Wait::kNone;
    std::uint64_t wait_epoch = 0;
  };

  void run_cooperative();
  void run_cooperative_sweep();
  void run_direct();
  /// Convergent inline fast path: runs threads 0..n as plain calls
  /// until one deflates. Returns the count that completed inline
  /// (nthreads_ = whole block done fiber-free).
  std::uint32_t run_lane_loop();
  void setup_ctxs();
  [[nodiscard]] bool runnable(std::uint32_t i) const;
  void on_thread_exit(std::uint32_t flat);
  void release_barrier();
  [[noreturn]] void deadlock(const char* where) const;

  // Ready-queue plumbing. The queue is a fixed ring of nthreads_ slots:
  // a thread is enqueued only on the blocked->runnable transition (or at
  // start), so it can appear at most once and the ring never overflows.
  void rq_push(std::uint32_t flat);
  [[nodiscard]] std::uint32_t rq_pop();
  /// Next runnable thread (drain batch first, then the ring); false
  /// when nothing is runnable — the deadlock condition.
  [[nodiscard]] bool next_runnable(std::uint32_t& flat);

  // Fiber recycling: lazily acquire, reuse through a block-local free
  // list backed by fibers_ (which owns every fiber this block holds);
  // finished fibers are donated to the cross-launch FiberPool at the
  // end of a clean run.
  [[nodiscard]] Fiber* acquire_fiber();
  void recycle_fiber(Fiber* f);

  Device& device_;
  const LaunchParams& params_;
  Dim3 block_idx_;
  const KernelFn& kernel_;
  FiberPool& fiber_pool_;
  std::uint32_t nthreads_;
  std::uint32_t live_;

  SharedArena arena_;
  std::vector<std::unique_ptr<WarpState>> warps_;

  // Barrier state (epoch-based; single-threaded scheduler, no atomics).
  std::uint32_t barrier_arrived_ = 0;
  std::uint64_t barrier_epoch_ = 0;

  // Shared-allocation funnel. first_tid remembers who established the
  // variable so a mismatch diagnostic can name both threads.
  struct SharedVar {
    void* ptr;
    std::size_t bytes;
    std::size_t align;
    std::uint32_t first_tid;
  };
  std::vector<SharedVar> shared_vars_;
  std::vector<std::uint32_t> shared_alloc_ordinal_;  // per thread

  // ompxsan racecheck shadow: one cell per shared-arena byte, allocated
  // lazily on the first instrumented access. The block runs single-OS-
  // threaded, so no locking. tids are stored +1 (0 = no access yet);
  // reader == kManyReaders means several distinct threads read the byte
  // this epoch. Epochs are the block barrier epoch truncated to 32 bits.
  struct SanShadowCell {
    std::uint32_t writer = 0;
    std::uint32_t writer_epoch = 0;
    std::uint32_t reader = 0;
    std::uint32_t reader_epoch = 0;
  };
  static constexpr std::uint32_t kManyReaders = ~0u;
  std::vector<SanShadowCell> san_shadow_;

  std::vector<ThreadCtx> ctxs_;
  std::vector<Slot> slots_;

  // Ready queue (ring buffer of thread ids, power-of-two capacity
  // >= nthreads_ so wraparound is a mask, not a division).
  std::vector<std::uint32_t> ready_;
  std::uint32_t rq_mask_ = 0;
  std::uint32_t rq_head_ = 0;
  std::uint32_t rq_count_ = 0;
  bool use_ready_queue_ = true;

  // Convergent lane-loop state. convergent_ arms the inline fast path
  // for threads that have not acquired a fiber yet; the first deflation
  // clears it so the rest of the block pays for fibers only once the
  // kernel has proven it synchronizes. inline_phase_ is true exactly
  // while a thread body runs inline (it routes require_fiber /
  // note_atomic to DeflateSignal instead of the kDirect error).
  bool convergent_ = false;
  bool inline_phase_ = false;
  // True while the inline lane currently running has already executed
  // an atomic in place (params_.inline_atomics launches only). Reset
  // per lane by run_lane_loop; turns a subsequent rendezvous into a
  // hard error instead of an (unsound) deflation-and-replay.
  bool inline_atomic_done_ = false;

  // Bitmap of threads suspended at the current block barrier (one bit
  // per thread). Released by scanning set bits low-to-high, which gives
  // the deterministic ascending wakeup order without sorting.
  std::vector<std::uint64_t> barrier_waitmap_;

  // Batch-drain fast path: a barrier that releases while the ready ring
  // is empty (the common everyone-at-the-barrier case) snapshots the
  // bitmap into drain_map_ and the scheduler pops waiters straight off
  // it — one bit scan per wakeup instead of a ring push plus pop. The
  // snapshot is taken at release time, so bits the releaser or woken
  // threads set for the *next* barrier never join the current batch;
  // and a new release cannot fire while the batch has pending threads
  // (a release needs every live thread at the barrier, and pending
  // threads are suspended at the previous one), so one buffer suffices.
  std::vector<std::uint64_t> drain_map_;
  bool drain_active_ = false;
  std::uint32_t drain_word_ = 0;   // cursor into drain_map_
  std::uint64_t drain_bits_ = 0;   // word being drained

  // Declared after arena_ so suspended fibers (exception unwind) are
  // destroyed — stacks returned to the pool — before the arena dies.
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<Fiber*> free_fibers_;
};

}  // namespace simt
