#include "simt/graph.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>

#include "simt/block.h"
#include "simt/device.h"
#include "simt/fault.h"
#include "simt/perf.h"
#include "simt/profiler.h"
#include "simt/san.h"

namespace simt {

namespace {

/// Grid-size ceiling for the cached-BlockState replay path. Cached
/// blocks run serially under the graph's replay lock, so the cache is
/// reserved for grids small enough that block *construction*, not
/// block compute, dominates — larger grids keep the work-stealing
/// parallelism of Device::run_blocks.
constexpr std::uint64_t kMaxCachedBlocks = 8;

/// Cached direct-mode blocks never suspend, so the FiberPool reference
/// the BlockState constructor requires is never dereferenced; a
/// graph-local pool satisfies it without tying cached blocks to the
/// thread-local pool of whichever thread ran instantiate().
FiberPool& replay_fiber_pool() {
  static FiberStackPool stacks(FiberStackPool::kDefaultStackSize);
  static FiberPool pool(stacks);
  return pool;
}

// Live-graph registry: the C ABI checks handles against this instead of
// dereferencing whatever pointer it was handed (use-after-destroy
// becomes a result code, not UB).
std::mutex g_graphs_mu;
std::vector<const Graph*> g_graphs;

std::atomic<std::uint64_t> g_graph_uid{1};

/// Modeled cost of a replayed alloc/free node — matches the executor's
/// charge for the live op (see stream.cpp).
constexpr double kAllocModelMs = 0.0005;

const char* node_kind_name(StreamOp::Kind k) {
  switch (k) {
    case StreamOp::Kind::kKernel: return "kernel";
    case StreamOp::Kind::kMemcpy: return "memcpy";
    case StreamOp::Kind::kMemset: return "memset";
    case StreamOp::Kind::kHostFn: return "host-fn";
    case StreamOp::Kind::kEventRecord: return "event-record";
    case StreamOp::Kind::kEventWait: return "event-wait";
    case StreamOp::Kind::kAlloc: return "alloc";
    case StreamOp::Kind::kFree: return "free";
    case StreamOp::Kind::kGraph: return "graph";
  }
  return "?";
}

const char* copy_label(CopyKind k) {
  switch (k) {
    case CopyKind::kHostToDevice: return "memcpy H2D";
    case CopyKind::kDeviceToHost: return "memcpy D2H";
    case CopyKind::kDeviceToDevice: return "memcpy D2D";
    case CopyKind::kHostToHost: return "memcpy H2H";
  }
  return "memcpy";
}

/// Flow id for the arrow chaining replay k to replay k+1 of one graph.
/// Bit 62 keeps these disjoint from event flows ((uid<<20)+gen) and
/// peer-copy flows (bit 63).
std::uint64_t chain_flow_id(std::uint64_t graph_uid, std::uint64_t k) {
  return (1ull << 62) | (graph_uid << 20) | (k & 0xFFFFF);
}

}  // namespace

Graph::Graph(Device& dev)
    : dev_(dev), uid_(g_graph_uid.fetch_add(1, std::memory_order_relaxed)) {
  std::lock_guard lock(g_graphs_mu);
  g_graphs.push_back(this);
}

Graph::~Graph() {
  {
    std::lock_guard lock(g_graphs_mu);
    g_graphs.erase(std::remove(g_graphs.begin(), g_graphs.end(), this),
                   g_graphs.end());
  }
  // Graph-owned memory (captured malloc_async) keeps its address across
  // replays and is returned to the device heap only now.
  for (void* p : owned_allocs_) {
    try {
      dev_.memory().deallocate(p);
    } catch (...) {
      // Teardown must not throw; a corrupted block already produced a
      // sanitizer diagnostic where it was detected.
    }
  }
}

void Graph::add_node(StreamOp op) { nodes_.push_back(std::move(op)); }

void Graph::own_allocation(void* p) { owned_allocs_.push_back(p); }

bool Graph::owns_allocation(const void* p) const {
  for (const void* q : owned_allocs_)
    if (q == p) return true;
  return false;
}

std::vector<Graph::NodeInfo> Graph::nodes() const {
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const StreamOp& n : nodes_) {
    NodeInfo info;
    info.kind = node_kind_name(n.kind);
    switch (n.kind) {
      case StreamOp::Kind::kKernel: info.name = n.params.name; break;
      case StreamOp::Kind::kMemcpy: info.name = copy_label(n.copy_kind); break;
      case StreamOp::Kind::kMemset: info.name = "memset"; break;
      case StreamOp::Kind::kAlloc: info.name = "malloc_async"; break;
      case StreamOp::Kind::kFree: info.name = "free_async"; break;
      default: break;
    }
    info.bytes = n.bytes;
    out.push_back(std::move(info));
  }
  return out;
}

void Graph::instantiate() {
  std::lock_guard lock(run_mu_);
  instantiate_locked();
}

bool Graph::instantiated() const {
  std::lock_guard lock(run_mu_);
  return instantiated_;
}

std::uint64_t Graph::replay_count() const {
  std::lock_guard lock(run_mu_);
  return replays_;
}

void Graph::instantiate_locked() {
  if (instantiated_) return;
  if (fault_should_fire(FaultSite::kGraphInstantiate))
    throw std::runtime_error(
        "fault injection: graph instantiate failed (" +
        std::to_string(nodes_.size()) + " node(s) discarded)");
  span_names_.assign(nodes_.size(), std::string());
  exec_modes_.assign(nodes_.size(), std::string());
  cached_blocks_.clear();
  cached_blocks_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    StreamOp& n = nodes_[i];
    switch (n.kind) {
      case StreamOp::Kind::kKernel:
        // Bake what launch_sync re-derives on every submission: the
        // configuration check and the resolved lane-execution mode.
        dev_.validate(n.params);
        n.params.lane_exec = dev_.resolve_lane_exec(n.params);
        if (n.params.lane_exec == LaneExec::kConvergent &&
            exec_hint(n.params.name).atomics_ok)
          n.params.inline_atomics = true;
        span_names_[i] = n.params.name;
        exec_modes_[i] = exec_mode_name(n.params.mode, n.params.lane_exec);
        // Pre-build the node's BlockStates when the grid is small and
        // sync-free: replay then pays a reset instead of reconstructing
        // warp states and thread contexts per launch. The references
        // the blocks capture (n.params, n.kernel) stay valid — nodes_
        // does not change after capture.
        if (n.params.mode == ExecMode::kDirect &&
            n.params.grid.count() <= kMaxCachedBlocks) {
          auto& cache = cached_blocks_[i];
          cache.reserve(n.params.grid.count());
          for (std::uint64_t b = 0; b < n.params.grid.count(); ++b) {
            Dim3 idx = n.params.grid.delinearize(b);
            idx.x += n.params.grid_offset.x;
            idx.y += n.params.grid_offset.y;
            idx.z += n.params.grid_offset.z;
            cache.push_back(std::make_unique<BlockState>(
                dev_, n.params, idx, n.kernel, replay_fiber_pool()));
          }
        }
        break;
      case StreamOp::Kind::kEventRecord:
      case StreamOp::Kind::kEventWait:
        if (!dev_.exec_->event_alive(n.event))
          throw std::invalid_argument(
              "graph instantiate: captured event was destroyed");
        break;
      default:
        break;
    }
  }
  instantiated_ = true;
}

LaunchStats Graph::run_cached(std::size_t i) {
  const StreamOp& n = nodes_[i];
  LaunchStats stats;
  stats.blocks = cached_blocks_[i].size();
  stats.threads = stats.blocks * n.params.block.count();
  stats.runtime_init = n.params.rt.runtime_init;
  stats.generic_mode = n.params.rt.generic_mode;
  stats.spill_in_shared = n.params.rt.spill_in_shared;
  for (auto& block : cached_blocks_[i]) {
    block->reset_for_replay();
    block->run();
    const BlockCounters& c = block->counters();
    stats.atomics += c.atomics;
    stats.parallel_handshakes += c.parallel_handshakes;
    stats.workshare_dispatches += c.workshare_dispatches;
    stats.globalized_bytes += c.globalized_bytes;
    // Direct-mode blocks cannot reach barriers, warp rendezvous, or the
    // fiber machinery, so the remaining counters are always zero here.
  }
  return stats;
}

Graph::ReplayExtent Graph::execute_on(Stream& s) {
  std::lock_guard run_lock(run_mu_);
  instantiate_locked();
  StreamExecutor& ex = s.ex_;
  const bool prof = profiling_enabled();
  double ts;
  {
    std::lock_guard lock(ex.mu_);
    ts = s.modeled_ready_ms_;
  }
  const double start_ms = ts;
  std::vector<TraceSpan> spans;
  if (prof) spans.reserve(nodes_.size() + 1);

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    StreamOp& n = nodes_[i];
    TraceSpan span;
    span.ts_ms = ts;
    switch (n.kind) {
      case StreamOp::Kind::kKernel: {
        // The replay fast path: straight to the block runner with the
        // baked params. No validation, no policy lookup, no launch-log
        // record — per-launch setup was paid once at instantiate.
        // Small direct-mode grids go further and reuse the BlockStates
        // built at instantiate; the sanitizer check routes instrumented
        // runs through the ordinary runner, whose fresh blocks carry
        // fresh shadow state.
        const LaunchStats stats =
            !cached_blocks_[i].empty() && !san_enabled(kSanAll)
                ? run_cached(i)
                : dev_.run_blocks(n.params, n.kernel);
        const ModeledTime t = model_time(
            dev_.cfg_, n.params.profile, n.params.cost, stats,
            static_cast<std::uint32_t>(n.params.block.count()),
            n.params.dynamic_smem_bytes, dev_.costs_);
        if (n.on_complete) {
          LaunchRecord rec;
          rec.name = span_names_[i];
          rec.grid = n.params.grid;
          rec.block = n.params.block;
          rec.stats = stats;
          rec.time = t;
          rec.exec_mode = exec_modes_[i];
          n.on_complete(rec);
        }
        ts += t.total_ms;
        if (prof) {
          span.kind = SpanKind::kKernel;
          span.name = span_names_[i];
          span.dur_ms = t.total_ms;
          span.grid = n.params.grid;
          span.block = n.params.block;
          span.exec_mode = exec_modes_[i];
          span.stats = stats;
          span.time = t;
        }
        break;
      }
      case StreamOp::Kind::kMemcpy: {
        dev_.memory().copy(n.dst, n.src, n.bytes, n.copy_kind);
        const double ms = n.copy_kind == CopyKind::kDeviceToDevice
                              ? static_cast<double>(n.bytes) /
                                    (dev_.config().mem_bw_gbps * 1e6)
                              : dev_.model_transfer_ms(n.bytes);
        if (n.copy_kind != CopyKind::kDeviceToDevice &&
            n.copy_kind != CopyKind::kHostToHost)
          dev_.add_transfer(n.bytes);
        ts += ms;
        if (prof) {
          span.kind = SpanKind::kMemcpy;
          span.name = copy_label(n.copy_kind);
          span.dur_ms = ms;
          span.bytes = n.bytes;
        }
        break;
      }
      case StreamOp::Kind::kMemset: {
        dev_.memory().set(n.dst, n.value, n.bytes);
        const double ms =
            static_cast<double>(n.bytes) / (dev_.config().mem_bw_gbps * 1e6);
        ts += ms;
        if (prof) {
          span.kind = SpanKind::kMemset;
          span.name = "memset";
          span.dur_ms = ms;
          span.bytes = n.bytes;
        }
        break;
      }
      case StreamOp::Kind::kAlloc:
      case StreamOp::Kind::kFree: {
        // Same virtual address every replay; only modeled time moves.
        ts += kAllocModelMs;
        if (prof) {
          span.kind = n.kind == StreamOp::Kind::kAlloc ? SpanKind::kAlloc
                                                       : SpanKind::kFree;
          span.name = n.kind == StreamOp::Kind::kAlloc ? "malloc_async"
                                                       : "free_async";
          span.dur_ms = kAllocModelMs;
          span.bytes = n.bytes;
        }
        break;
      }
      case StreamOp::Kind::kHostFn: {
        n.fn();
        if (prof) {
          span.kind = SpanKind::kHostFn;
          span.name = "host-fn";
        }
        break;
      }
      case StreamOp::Kind::kEventRecord: {
        std::lock_guard lock(ex.mu_);
        n.event->recorded_ = true;
        n.event->pending_ = false;
        n.event->generation_++;
        n.event->modeled_ms_ = ts;
        ex.cv_complete_.notify_all();
        if (prof) {
          span.kind = SpanKind::kEventRecord;
          span.name = "event record";
          span.flow_id = (n.event->uid_ << 20) + n.event->generation_;
          span.flow_out = true;
        }
        break;
      }
      case StreamOp::Kind::kEventWait: {
        // Replays re-use the captured interleaving: the wait only maxes
        // the modeled timeline, it does not block node execution.
        std::lock_guard lock(ex.mu_);
        const double before = ts;
        ts = std::max(ts, n.event->modeled_ms_);
        if (prof) {
          span.kind = SpanKind::kEventWait;
          span.name = "event wait";
          span.dur_ms = ts - before;
          span.flow_id = n.event->generation_ == 0
                             ? 0
                             : (n.event->uid_ << 20) + n.event->generation_;
        }
        break;
      }
      case StreamOp::Kind::kGraph:
        break;  // unreachable: submit() rejects captured graph launches
    }
    if (prof) {
      span.track = s.id_ + 1;
      spans.push_back(std::move(span));
    }
  }

  {
    std::lock_guard lock(ex.mu_);
    s.modeled_ready_ms_ = std::max(s.modeled_ready_ms_, ts);
  }
  replays_++;

  ReplayExtent ext;
  ext.start_ms = start_ms;
  ext.end_ms = ts;
  ext.chain_flow_id = replays_ > 1 ? chain_flow_id(uid_, replays_ - 1) : 0;
  if (prof) {
    // A zero-duration fence closes each replay; the *next* replay's
    // umbrella span consumes its arrow, so chained replays are visibly
    // linked even when they land on different stream tracks.
    TraceSpan fence;
    fence.kind = SpanKind::kGraph;
    fence.name = "graph fence";
    fence.ts_ms = ts;
    fence.track = s.id_ + 1;
    fence.flow_id = chain_flow_id(uid_, replays_);
    fence.flow_out = true;
    spans.push_back(std::move(fence));
    for (TraceSpan& sp : spans) Profiler::instance().record(dev_, sp);
  }
  return ext;
}

bool graph_alive(const Graph* g) {
  if (g == nullptr) return false;
  std::lock_guard lock(g_graphs_mu);
  return std::find(g_graphs.begin(), g_graphs.end(), g) != g_graphs.end();
}

void destroy_graph(Graph* g) {
  if (g == nullptr) return;
  if (!graph_alive(g))
    throw std::invalid_argument("destroy_graph: not a live graph");
  // Drain any in-flight replay before tearing the node list down.
  g->device().synchronize();
  delete g;
}

}  // namespace simt
