#include "simt/stream.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

#include "simt/device.h"
#include "simt/fault.h"
#include "simt/graph.h"
#include "simt/profiler.h"
#include "simt/watchdog.h"

namespace simt {

namespace {

/// Marks the executor thread as inside a stream op so the inner
/// launch_sync / add_transfer does not double-record: the executor
/// records the span itself, with the stream track and modeled start.
struct ScopedStreamOp {
  bool prev;
  ScopedStreamOp() : prev(telemetry_detail::t_in_stream_op) {
    telemetry_detail::t_in_stream_op = true;
  }
  ~ScopedStreamOp() { telemetry_detail::t_in_stream_op = prev; }
};

const char* copy_kind_label(CopyKind k) {
  switch (k) {
    case CopyKind::kHostToDevice: return "memcpy H2D";
    case CopyKind::kDeviceToHost: return "memcpy D2H";
    case CopyKind::kDeviceToDevice: return "memcpy D2D";
    case CopyKind::kHostToHost: return "memcpy H2H";
  }
  return "memcpy";
}

/// Flow-arrow id linking an event's record slice to the waits that
/// observed that recording (generation 0 = never recorded, no arrow).
std::uint64_t event_flow_id(std::uint64_t uid, std::uint64_t generation) {
  return generation == 0 ? 0 : (uid << 20) + generation;
}

/// Pool workers per device executor: explicit EngineOptions value, else
/// OMPX_STREAM_WORKERS, else a small share of the host (2..4). More
/// than a handful buys nothing — each op already fans blocks out over
/// the launch worker pool; these threads only provide stream overlap.
unsigned stream_worker_count(unsigned requested) {
  if (requested > 0) return std::min(requested, 64u);
  if (const char* e = std::getenv("OMPX_STREAM_WORKERS")) {
    const int v = std::atoi(e);
    if (v > 0) return std::min<unsigned>(static_cast<unsigned>(v), 64u);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return std::clamp(hw / 2, 2u, 4u);
}

/// Modeled cost of a stream-ordered alloc/free op: a fixed sliver of
/// device time (suballocation from a resident pool, not an OS call).
constexpr double kAllocModelMs = 0.0005;

/// Live-handle registries (same idiom as graph.cpp's): every Stream /
/// Event registers at construction and unregisters at destruction, so
/// the C ABIs can reject use-after-destroy handles instead of
/// dereferencing freed memory.
std::mutex g_handles_mu;
std::unordered_set<const void*>& live_streams() {
  static auto* s = new std::unordered_set<const void*>;  // leaked on purpose
  return *s;
}
std::unordered_set<const void*>& live_events() {
  static auto* s = new std::unordered_set<const void*>;  // leaked on purpose
  return *s;
}

void register_stream_handle(const Stream* s) {
  std::lock_guard lock(g_handles_mu);
  live_streams().insert(s);
}
void unregister_stream_handle(const Stream* s) {
  std::lock_guard lock(g_handles_mu);
  live_streams().erase(s);
}
void register_event_handle(const Event* ev) {
  std::lock_guard lock(g_handles_mu);
  live_events().insert(ev);
}
void unregister_event_handle(const Event* ev) {
  std::lock_guard lock(g_handles_mu);
  live_events().erase(ev);
}

}  // namespace

bool stream_alive(const Stream* s) {
  if (s == nullptr) return false;
  std::lock_guard lock(g_handles_mu);
  return live_streams().count(s) != 0;
}

bool event_alive(const Event* ev) {
  if (ev == nullptr) return false;
  std::lock_guard lock(g_handles_mu);
  return live_events().count(ev) != 0;
}

// ---------------------------------------------------------------- Event

Event::Event(StreamExecutor& ex) : ex_(ex) { register_event_handle(this); }

Event::~Event() { unregister_event_handle(this); }

Device& Event::device() const { return ex_.dev_; }

void Event::synchronize() {
  std::unique_lock lock(ex_.mu_);
  // CUDA semantics: synchronizing an event that was never recorded (and
  // has no record in flight) succeeds immediately.
  if (!recorded_ && !pending_) return;
  ex_.cv_complete_.wait(lock, [&] {
    return recorded_ || ex_.async_error_ != nullptr;
  });
}

bool Event::query() const {
  std::lock_guard lock(ex_.mu_);
  return recorded_;
}

double Event::modeled_ms() const {
  std::lock_guard lock(ex_.mu_);
  return modeled_ms_;
}

// ---------------------------------------------------------------- Stream

Stream::Stream(Device& dev, StreamExecutor& ex, std::uint64_t id)
    : dev_(dev), ex_(ex), id_(id) {
  register_stream_handle(this);
}

Stream::~Stream() { unregister_stream_handle(this); }

void Stream::launch(const LaunchParams& params, KernelFn kernel) {
  launch(params, std::move(kernel), nullptr);
}

void Stream::launch(const LaunchParams& params, KernelFn kernel,
                    std::function<void(const LaunchRecord&)> on_complete) {
  dev_.validate_launch(params);
  StreamOp op;
  op.kind = StreamOp::Kind::kKernel;
  op.params = params;
  op.kernel = std::move(kernel);
  op.on_complete = std::move(on_complete);
  ex_.submit(*this, std::move(op));
}

void Stream::memcpy_async(void* dst, const void* src, std::size_t bytes,
                          CopyKind kind) {
  StreamOp op;
  op.kind = StreamOp::Kind::kMemcpy;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  op.copy_kind = kind;
  ex_.submit(*this, std::move(op));
}

void Stream::memset_async(void* ptr, int value, std::size_t bytes) {
  StreamOp op;
  op.kind = StreamOp::Kind::kMemset;
  op.dst = ptr;
  op.value = value;
  op.bytes = bytes;
  ex_.submit(*this, std::move(op));
}

void* Stream::malloc_async(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  {
    std::lock_guard lock(ex_.mu_);
    if (capturing_) {
      // Captured allocation: materialize now so every replay sees the
      // same virtual address; the graph owns the block until destroy.
      void* p = nullptr;
      try {
        p = dev_.memory().allocate(bytes);
      } catch (const std::bad_alloc&) {
        // Pooled blocks are idle capacity; reclaim them and retry once
        // before reporting device OOM.
        dev_.mem_pool().trim();
        p = dev_.memory().allocate(bytes);
      }
      ex_.capture_->own_allocation(p);
      StreamOp op;
      op.kind = StreamOp::Kind::kAlloc;
      op.dst = p;
      op.bytes = bytes;
      ex_.capture_->add_node(std::move(op));
      return p;
    }
  }
  // Stream-ordered reuse happens at enqueue time: a block freed_async
  // earlier on this stream is safe to hand out because every op that
  // used it was enqueued (and thus executes) before any op that will
  // use it under its new life — the cudaMallocAsync guarantee.
  void* p = dev_.mem_pool().acquire(id_, bytes);
  const bool hit = p != nullptr;
  if (p == nullptr) {
    try {
      p = dev_.memory().allocate(bytes);
    } catch (const std::bad_alloc&) {
      // Device OOM with pooled blocks parked on other streams: those
      // blocks are live-but-idle capacity. Wait out pending work (their
      // last uses), return every pool to the device heap, and retry once
      // before letting the OOM surface — the cudaMallocAsync fallback.
      // On an executor thread (graph replay) skip the drain; waiting on
      // our own pool would deadlock.
      if (!telemetry_detail::t_in_stream_op) ex_.synchronize_all();
      dev_.mem_pool().trim();
      p = dev_.memory().allocate(bytes);
    }
  }
  StreamOp op;
  op.kind = StreamOp::Kind::kAlloc;
  op.dst = p;
  op.bytes = bytes;
  op.pool_hit = hit;
  try {
    ex_.submit(*this, std::move(op));
  } catch (...) {
    // Enqueue refused (timed-out stream, injected fault): return the
    // block to the heap before surfacing the error, or it is stranded
    // outside both the pool and the caller — a silent leak.
    dev_.memory().deallocate(p);
    throw;
  }
  dev_.mem_pool().note_async_live(p, id_);
  return p;
}

void Stream::free_async(void* ptr) {
  if (ptr == nullptr) return;
  const std::size_t bytes = dev_.memory().allocation_size(ptr);
  if (bytes == 0) {
    // A peer device's pointer gets a routing diagnostic; anything else
    // is an invalid free against this device's registry.
    Device* owner = resolve_device(ptr);
    if (owner != nullptr && owner != &dev_)
      throw std::invalid_argument(
          "free_async: pointer belongs to device '" + owner->config().name +
          "'; stream-ordered frees must target a stream on the owning "
          "device");
    throw std::invalid_argument(
        "free_async: pointer is not the base of a live allocation on this "
        "stream's device");
  }
  {
    std::lock_guard lock(ex_.mu_);
    if (capturing_) {
      if (!ex_.capture_->owns_allocation(ptr))
        throw std::invalid_argument(
            "free_async during capture: only blocks from a captured "
            "malloc_async may be freed (an external block would be freed "
            "again on every replay)");
      StreamOp op;
      op.kind = StreamOp::Kind::kFree;
      op.dst = ptr;
      op.bytes = bytes;
      ex_.capture_->add_node(std::move(op));
      return;
    }
  }
  if (!dev_.mem_pool().is_async_live(ptr))
    throw std::invalid_argument(
        "free_async: pointer was not allocated with malloc_async; use "
        "ompx_free for plain ompx_malloc blocks (a cross-API free would "
        "corrupt the stream-ordered pool)");
  StreamOp op;
  op.kind = StreamOp::Kind::kFree;
  op.dst = ptr;
  op.bytes = bytes;
  // Enqueue before pooling: if the stream refuses the op (timed out),
  // the allocation stays live and the caller's error is accurate —
  // pooling first would hand out a block whose free "failed".
  ex_.submit(*this, std::move(op));
  dev_.mem_pool().note_async_dead(ptr);
  dev_.mem_pool().release(id_, ptr, bytes);
}

void Stream::host_fn(std::function<void()> fn) {
  StreamOp op;
  op.kind = StreamOp::Kind::kHostFn;
  op.fn = std::move(fn);
  ex_.submit(*this, std::move(op));
}

void Stream::record(Event& ev) {
  StreamOp op;
  op.kind = StreamOp::Kind::kEventRecord;
  op.event = &ev;
  ex_.submit(*this, std::move(op));
}

void Stream::wait(Event& ev) {
  StreamOp op;
  op.kind = StreamOp::Kind::kEventWait;
  op.event = &ev;
  ex_.submit(*this, std::move(op));
}

void Stream::begin_capture() {
  std::lock_guard lock(ex_.mu_);
  if (ex_.capture_stream_ != nullptr)
    throw std::invalid_argument(
        "begin_capture: a capture is already active on this device");
  ex_.capture_ = std::unique_ptr<Graph>(new Graph(dev_));
  ex_.capture_stream_ = this;
  capturing_ = true;
}

std::unique_ptr<Graph> Stream::end_capture() {
  std::lock_guard lock(ex_.mu_);
  if (!capturing_)
    throw std::invalid_argument("end_capture: stream is not capturing");
  capturing_ = false;
  ex_.capture_stream_ = nullptr;
  return std::move(ex_.capture_);
}

bool Stream::capturing() const {
  std::lock_guard lock(ex_.mu_);
  return capturing_;
}

void Stream::launch_graph(Graph& g) {
  if (&g.device() != &dev_)
    throw std::invalid_argument(
        "launch_graph: graph was captured on a different device");
  g.instantiate();  // idempotent; no-op after the first call
  StreamOp op;
  op.kind = StreamOp::Kind::kGraph;
  op.graph = &g;
  ex_.submit(*this, std::move(op));
}

void Stream::synchronize() {
  std::unique_lock lock(ex_.mu_);
  if (capturing_)
    throw std::invalid_argument(
        "cannot synchronize a stream while it is capturing a graph");
  const std::uint64_t upto = submitted_;
  ex_.cv_complete_.wait(lock, [&] {
    return completed_ >= upto || ex_.async_error_ != nullptr;
  });
  const bool timed_out = timed_out_;
  lock.unlock();
  ex_.check_async_error();
  // The watchdog's first report goes through async_error_ above; every
  // later wait on the dead stream still fails deterministically.
  if (timed_out)
    throw TimeoutError(
        "stream synchronize: stream was timed out by the watchdog; destroy "
        "it and create a new one");
}

bool Stream::query() const {
  std::lock_guard lock(ex_.mu_);
  return completed_ >= submitted_;
}

double Stream::modeled_ready_ms() const {
  std::lock_guard lock(ex_.mu_);
  return modeled_ready_ms_;
}

// -------------------------------------------------------- StreamExecutor

StreamExecutor::StreamExecutor(Device& dev) : dev_(dev) {
  streams_.emplace_back(new Stream(dev_, *this, next_stream_id_++));
  queues_.emplace(streams_.front()->id(), std::deque<Op>{});
  const unsigned n = stream_worker_count(dev_.options().stream_workers);
  slots_.resize(n);
  workers_.reserve(n);
  for (unsigned slot = 0; slot < n; ++slot)
    workers_.emplace_back([this, slot] { worker_loop(slot, 0); });
}

StreamExecutor::~StreamExecutor() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_submit_.notify_all();
  cv_monitor_.notify_all();
  for (std::thread& w : workers_) w.join();
  if (monitor_.joinable()) monitor_.join();
  {
    // Watchdog-abandoned workers run detached; give stragglers a bounded
    // window to notice their epoch is stale and exit before their
    // executor disappears out from under them.
    std::unique_lock lock(mu_);
    if (!cv_zombie_.wait_for(lock, std::chrono::seconds(30),
                             [&] { return zombies_ == 0; }))
      std::fprintf(stderr,
                   "[simt] warning: %u watchdog-abandoned worker(s) still "
                   "running at device teardown\n",
                   zombies_);
  }
  // An abandoned capture (begin_capture with no end_capture) dies here:
  // ~Graph releases any graph-owned allocations.
}

Stream* StreamExecutor::create_stream() {
  dev_.check_not_lost("stream create");
  if (fault_should_fire(FaultSite::kHostAlloc))
    throw std::bad_alloc();  // modeled host allocation failure
  std::lock_guard lock(mu_);
  streams_.emplace_back(new Stream(dev_, *this, next_stream_id_++));
  queues_.emplace(streams_.back()->id(), std::deque<Op>{});
  return streams_.back().get();
}

Event* StreamExecutor::create_event() {
  dev_.check_not_lost("event create");
  if (fault_should_fire(FaultSite::kHostAlloc))
    throw std::bad_alloc();  // modeled host allocation failure
  std::lock_guard lock(mu_);
  events_.emplace_back(new Event(*this));
  events_.back()->uid_ = next_event_uid_++;
  return events_.back().get();
}

void StreamExecutor::destroy_stream(Stream* s) {
  if (s == nullptr) return;
  std::uint64_t id = 0;
  {
    std::unique_lock lock(mu_);
    if (!streams_.empty() && s == streams_.front().get())
      throw std::invalid_argument("cannot destroy the default stream");
    if (s->capturing_)
      throw std::invalid_argument(
          "cannot destroy a stream while it is capturing a graph");
    // Drain the stream's queued and in-flight work first (completed_ is
    // bumped only after execute() returns, so this also waits out an op
    // a pool worker is currently running). The dependency-deadlock
    // detector guarantees this terminates even for permanently blocked
    // heads.
    cv_complete_.wait(lock, [&] { return s->completed_ >= s->submitted_; });
    destroyed_streams_max_ms_ =
        std::max(destroyed_streams_max_ms_, s->modeled_ready_ms_);
    id = s->id_;
    queues_.erase(s->id_);
    for (auto it = streams_.begin(); it != streams_.end(); ++it) {
      if (it->get() == s) {
        if (s->timed_out_) {
          // A watchdog-abandoned worker may still hold a raw pointer to
          // this stream; park the object instead of freeing it. It dies
          // with the executor, after the bounded zombie wait. The handle
          // still reads as destroyed to the C ABIs from here on.
          unregister_stream_handle(s);
          abandoned_streams_.push_back(std::move(*it));
        }
        streams_.erase(it);
        break;
      }
    }
  }
  // The dead stream's free pool can never be reused; return it to the
  // device heap. Outside mu_ — trimming takes the memory locks.
  dev_.mem_pool().trim_stream(id);
}

void StreamExecutor::destroy_event(Event* ev) {
  if (ev == nullptr) return;
  std::unique_lock lock(mu_);
  // Queued EventRecord/EventWait ops hold a raw pointer to the event;
  // wait until none remain (workers notify cv_complete_ per op).
  cv_complete_.wait(lock, [&] { return !event_referenced_locked(ev); });
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->get() == ev) {
      events_.erase(it);
      break;
    }
  }
}

bool StreamExecutor::event_alive(const Event* ev) const {
  std::lock_guard lock(mu_);
  for (const auto& e : events_)
    if (e.get() == ev) return true;
  return false;
}

bool StreamExecutor::event_referenced_locked(const Event* ev) const {
  for (const SlotState& st : slots_)
    if (st.event == ev) return true;
  for (const Event* pinned : zombie_event_pins_)
    if (pinned == ev) return true;
  for (const auto& [id, q] : queues_)
    for (const Op& op : q)
      if (op.event == ev) return true;
  return false;
}

void StreamExecutor::submit(Stream& s, Op op) {
  dev_.check_not_lost("stream operation");
  {
    std::lock_guard lock(mu_);
    if (shutdown_) throw std::logic_error("submit on shut-down executor");
    if (s.timed_out_)
      throw TimeoutError(
          "stream operation: stream was timed out by the watchdog; destroy "
          "it and create a new one");
    // The watchdog thread is lazy: it spins up on the first submit made
    // while a budget is set, and then lives for the executor's lifetime
    // (it re-reads the budget every poll, so later changes apply).
    if (!monitor_started_ && watchdog_ms() > 0.0) start_monitor_locked();
    if (s.capturing_) {
      if (op.kind == Op::Kind::kGraph)
        throw std::invalid_argument(
            "cannot capture a graph launch (child graphs are not "
            "supported)");
      capture_->add_node(std::move(op));
      return;
    }
    if (op.kind == Op::Kind::kEventRecord) {
      op.event->pending_ = true;
      op.event->recorded_ = false;
    }
    queues_[s.id_].push_back(std::move(op));
    s.submitted_++;
    total_submitted_++;
  }
  cv_submit_.notify_all();
}

bool StreamExecutor::head_blocked_locked(const Stream& s) const {
  auto it = queues_.find(s.id_);
  if (it == queues_.end() || it->second.empty()) return false;
  const Op& head = it->second.front();
  return head.kind == Op::Kind::kEventWait && !head.event->recorded_;
}

Stream* StreamExecutor::pick_ready_locked() {
  for (auto& sp : streams_) {
    if (sp->inflight_) continue;  // stream order: one op in flight each
    auto it = queues_.find(sp->id_);
    if (it == queues_.end() || it->second.empty()) continue;
    if (!head_blocked_locked(*sp)) return sp.get();
  }
  return nullptr;
}

void StreamExecutor::start_monitor_locked() {
  if (monitor_started_) return;
  monitor_started_ = true;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void StreamExecutor::monitor_loop() {
  std::unique_lock lock(mu_);
  while (!shutdown_) {
    const double budget = watchdog_ms();
    // Poll at a quarter of the budget (clamped to 1..50 ms) so a timeout
    // is reported well within ~2x the budget; with the watchdog turned
    // off, idle at 50 ms waiting for it to be turned back on.
    const double poll_ms =
        budget > 0.0 ? std::clamp(budget / 4.0, 1.0, 50.0) : 50.0;
    cv_monitor_.wait_for(
        lock, std::chrono::duration<double, std::milli>(poll_ms));
    if (shutdown_) return;
    if (watchdog_ms() <= 0.0) continue;
    const double live_budget = watchdog_ms();
    const auto now = std::chrono::steady_clock::now();
    for (unsigned slot = 0; slot < slots_.size(); ++slot) {
      if (!slots_[slot].busy) continue;
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(now - slots_[slot].start)
              .count();
      if (elapsed_ms > live_budget)
        abandon_slot_locked(slot, elapsed_ms, live_budget);
    }
  }
}

void StreamExecutor::abandon_slot_locked(unsigned slot, double elapsed_ms,
                                         double budget_ms) {
  SlotState& st = slots_[slot];
  Stream* s = st.stream;
  if (async_error_ == nullptr)
    async_error_ = std::make_exception_ptr(TimeoutError(
        "watchdog: op on stream " + std::to_string(s->id_) +
        " exceeded the wall-clock budget (" + std::to_string(elapsed_ms) +
        " ms > " + std::to_string(budget_ms) +
        " ms); the stream is dead, other streams continue"));
  // The stream is permanently dead: inflight_ stays true so the
  // scheduler never picks it again, submit() refuses new work, and its
  // queue drains here so host-side waits return promptly.
  s->timed_out_ = true;
  s->completed_++;  // the abandoned in-flight op
  total_completed_++;
  executing_--;
  auto qit = queues_.find(s->id_);
  if (qit != queues_.end()) {
    s->completed_ += qit->second.size();
    total_completed_ += qit->second.size();
    qit->second.clear();
  }
  // Keep the abandoned op's event pinned until the zombie finishes with
  // it (destroy_event waits on this).
  if (st.event != nullptr) zombie_event_pins_.push_back(st.event);
  st.event = nullptr;
  st.stream = nullptr;
  st.busy = false;
  // Bumping the epoch tells the stuck worker — whenever it finally
  // returns from execute() — that its slot was given away: it must not
  // touch completion bookkeeping, just unpin and exit. A fresh worker
  // takes over the slot so the pool keeps its capacity.
  st.epoch++;
  zombies_++;
  workers_[slot].detach();
  const std::uint64_t epoch = st.epoch;
  workers_[slot] = std::thread([this, slot, epoch] { worker_loop(slot, epoch); });
  cv_complete_.notify_all();
  cv_submit_.notify_all();
}

void StreamExecutor::worker_loop(unsigned slot, std::uint64_t my_epoch) {
  std::unique_lock lock(mu_);
  while (true) {
    Stream* s = pick_ready_locked();
    if (s == nullptr) {
      bool any_pending = false;
      for (auto& [id, q] : queues_) any_pending |= !q.empty();
      if (any_pending && executing_ == 0 && async_error_ == nullptr) {
        // Every nonempty stream head waits on an unrecorded event and
        // no in-flight op can record one. Only workers record events,
        // so the queues can only unblock if the host submits the
        // missing record. Give it a grace period; if nothing changes,
        // declare a dependency deadlock (a wait submitted before its
        // record forming a cycle, or a wait on an event that is never
        // recorded) instead of hanging forever.
        const std::uint64_t subs_before = total_submitted_;
        const std::uint64_t comps_before = total_completed_;
        cv_submit_.wait_for(lock, std::chrono::milliseconds(250));
        if (total_submitted_ != subs_before ||
            total_completed_ != comps_before || executing_ != 0 || shutdown_)
          continue;
        if (async_error_ == nullptr)  // another worker may have raced us
          async_error_ = std::make_exception_ptr(std::runtime_error(
              "stream dependency deadlock: every stream head waits on an "
              "event whose record cannot execute"));
        // Drain everything so host-side synchronize() calls return.
        for (auto& sp : streams_) {
          auto& q = queues_[sp->id_];
          sp->completed_ += q.size();
          total_completed_ += q.size();
          q.clear();
        }
        cv_complete_.notify_all();
        continue;
      }
      if (shutdown_) return;
      cv_submit_.wait(lock);
      continue;
    }

    Op op = std::move(queues_[s->id_].front());
    queues_[s->id_].pop_front();
    s->inflight_ = true;
    executing_++;
    slots_[slot].event = op.event;  // pins against destroy_event
    slots_[slot].stream = s;
    slots_[slot].busy = true;
    slots_[slot].start = std::chrono::steady_clock::now();
    lock.unlock();
    try {
      execute(*s, op);
    } catch (...) {
      {
        std::lock_guard elock(mu_);
        // A watchdog-abandoned op's late failure is not news: the
        // TimeoutError was already posted when the slot was given away.
        if (slots_[slot].epoch == my_epoch && async_error_ == nullptr)
          async_error_ = std::current_exception();
      }
      // A failed kernel never reached its completion callback; release
      // any ticket waiter with an empty record (the error itself
      // surfaces at the next synchronize).
      if (op.kind == Op::Kind::kKernel && op.on_complete) {
        try {
          op.on_complete(LaunchRecord{});
        } catch (...) {
        }
      }
    }
    lock.lock();
    if (slots_[slot].epoch != my_epoch) {
      // The watchdog abandoned this slot while the op was running: the
      // monitor already did the completion bookkeeping and a fresh
      // worker owns the slot. Unpin the op's event and disappear.
      if (op.event != nullptr) {
        auto it = std::find(zombie_event_pins_.begin(),
                            zombie_event_pins_.end(), op.event);
        if (it != zombie_event_pins_.end()) zombie_event_pins_.erase(it);
      }
      zombies_--;
      cv_zombie_.notify_all();
      cv_complete_.notify_all();
      return;
    }
    slots_[slot].event = nullptr;
    slots_[slot].stream = nullptr;
    slots_[slot].busy = false;
    s->inflight_ = false;
    s->completed_++;
    total_completed_++;
    executing_--;
    cv_complete_.notify_all();
    // A completed op (an event record, or the drain of a full stream)
    // may unblock other streams' heads for parked workers.
    cv_submit_.notify_all();
  }
}

void StreamExecutor::execute(Stream& s, Op& op) {
  if (fault_should_fire(FaultSite::kStreamStall)) {
    // Injected wall-clock stall: the op sleeps here, on the worker
    // thread, exactly where a wedged device op would sit. With a
    // watchdog budget below the stall, the monitor abandons this slot
    // mid-sleep and this worker exits as a zombie.
    const double ms = FaultInjector::instance().stall_ms();
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
  // Tracing-off cost on this path: this one relaxed load.
  const bool prof = profiling_enabled();
  ScopedStreamOp in_stream_op;
  TraceSpan span;
  std::chrono::steady_clock::time_point t0;
  if (prof) t0 = std::chrono::steady_clock::now();

  switch (op.kind) {
    case Op::Kind::kKernel: {
      const LaunchRecord rec = dev_.launch_sync(op.params, op.kernel);
      if (op.on_complete) op.on_complete(rec);
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += rec.time.total_ms;
      if (prof) {
        span.kind = SpanKind::kKernel;
        span.name = rec.name;
        span.dur_ms = rec.time.total_ms;
        span.wall_ms = rec.wall_ms;
        span.grid = rec.grid;
        span.block = rec.block;
        span.exec_mode = rec.exec_mode;
        span.stats = rec.stats;
        span.time = rec.time;
      }
      break;
    }
    case Op::Kind::kMemcpy: {
      dev_.memory().copy(op.dst, op.src, op.bytes, op.copy_kind);
      const double ms = op.copy_kind == CopyKind::kDeviceToDevice
                            ? static_cast<double>(op.bytes) /
                                  (dev_.config().mem_bw_gbps * 1e6)
                            : dev_.model_transfer_ms(op.bytes);
      if (op.copy_kind != CopyKind::kDeviceToDevice &&
          op.copy_kind != CopyKind::kHostToHost)
        dev_.add_transfer(op.bytes);
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += ms;
      if (prof) {
        span.kind = SpanKind::kMemcpy;
        span.name = copy_kind_label(op.copy_kind);
        span.dur_ms = ms;
        span.bytes = op.bytes;
      }
      break;
    }
    case Op::Kind::kMemset: {
      dev_.memory().set(op.dst, op.value, op.bytes);
      const double ms =
          static_cast<double>(op.bytes) / (dev_.config().mem_bw_gbps * 1e6);
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += ms;
      if (prof) {
        span.kind = SpanKind::kMemset;
        span.name = "memset";
        span.dur_ms = ms;
        span.bytes = op.bytes;
      }
      break;
    }
    case Op::Kind::kAlloc:
    case Op::Kind::kFree: {
      // The memory work happened at enqueue time (pool acquire/release);
      // executing the op charges the modeled sliver and leaves a span.
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += kAllocModelMs;
      if (prof) {
        span.kind = op.kind == Op::Kind::kAlloc ? SpanKind::kAlloc
                                                : SpanKind::kFree;
        span.name = op.kind == Op::Kind::kFree ? "free_async"
                    : op.pool_hit              ? "malloc_async (pooled)"
                                               : "malloc_async";
        span.dur_ms = kAllocModelMs;
        span.bytes = op.bytes;
      }
      break;
    }
    case Op::Kind::kHostFn: {
      op.fn();
      if (prof) {
        std::lock_guard lock(mu_);
        span.kind = SpanKind::kHostFn;
        span.name = "host-fn";
        span.ts_ms = s.modeled_ready_ms_;  // instantaneous on the model
      }
      break;
    }
    case Op::Kind::kEventRecord: {
      std::lock_guard lock(mu_);
      op.event->recorded_ = true;
      op.event->pending_ = false;
      op.event->generation_++;
      op.event->modeled_ms_ = s.modeled_ready_ms_;
      if (prof) {
        span.kind = SpanKind::kEventRecord;
        span.name = "event record";
        span.ts_ms = s.modeled_ready_ms_;
        span.flow_id =
            event_flow_id(op.event->uid_, op.event->generation_);
        span.flow_out = true;
      }
      cv_complete_.notify_all();
      break;
    }
    case Op::Kind::kEventWait: {
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ =
          std::max(s.modeled_ready_ms_, op.event->modeled_ms_);
      if (prof) {
        span.kind = SpanKind::kEventWait;
        span.name = "event wait";
        // The stall the wait imposed on this stream's timeline.
        span.dur_ms = s.modeled_ready_ms_ - span.ts_ms;
        span.flow_id =
            event_flow_id(op.event->uid_, op.event->generation_);
      }
      break;
    }
    case Op::Kind::kGraph: {
      const Graph::ReplayExtent ext = op.graph->execute_on(s);
      if (prof) {
        span.kind = SpanKind::kGraph;
        span.name = "graph replay";
        span.ts_ms = ext.start_ms;
        span.dur_ms = ext.end_ms - ext.start_ms;
        // Destination of the previous replay's fence arrow: chained
        // replays are visually linked across stream tracks.
        span.flow_id = ext.chain_flow_id;
        span.flow_out = false;
      }
      break;
    }
  }

  if (prof) {
    span.track = s.id_ + 1;  // track 0 is the host-sync track
    span.wall_ms = span.kind == SpanKind::kKernel
                       ? span.wall_ms
                       : std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    Profiler::instance().record(dev_, span);  // outside mu_: no lock nesting
  }
}

void StreamExecutor::synchronize_all() {
  std::unique_lock lock(mu_);
  std::uint64_t upto_total = 0;
  for (auto& sp : streams_) upto_total += sp->submitted_;
  cv_complete_.wait(lock, [&] {
    std::uint64_t done = 0;
    for (auto& sp : streams_) done += sp->completed_;
    return done >= upto_total || async_error_ != nullptr;
  });
}

double StreamExecutor::modeled_now_ms() const {
  std::lock_guard lock(mu_);
  double now = destroyed_streams_max_ms_;
  for (const auto& sp : streams_) now = std::max(now, sp->modeled_ready_ms_);
  return now;
}

void StreamExecutor::check_async_error() {
  std::exception_ptr e;
  {
    std::lock_guard lock(mu_);
    e = async_error_;
    async_error_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace simt
