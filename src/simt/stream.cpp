#include "simt/stream.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "simt/device.h"
#include "simt/profiler.h"

namespace simt {

namespace {

/// Marks the executor thread as inside a stream op so the inner
/// launch_sync / add_transfer does not double-record: the executor
/// records the span itself, with the stream track and modeled start.
struct ScopedStreamOp {
  bool prev;
  ScopedStreamOp() : prev(telemetry_detail::t_in_stream_op) {
    telemetry_detail::t_in_stream_op = true;
  }
  ~ScopedStreamOp() { telemetry_detail::t_in_stream_op = prev; }
};

const char* copy_kind_label(CopyKind k) {
  switch (k) {
    case CopyKind::kHostToDevice: return "memcpy H2D";
    case CopyKind::kDeviceToHost: return "memcpy D2H";
    case CopyKind::kDeviceToDevice: return "memcpy D2D";
    case CopyKind::kHostToHost: return "memcpy H2H";
  }
  return "memcpy";
}

/// Flow-arrow id linking an event's record slice to the waits that
/// observed that recording (generation 0 = never recorded, no arrow).
std::uint64_t event_flow_id(std::uint64_t uid, std::uint64_t generation) {
  return generation == 0 ? 0 : (uid << 20) + generation;
}

}  // namespace

// ---------------------------------------------------------------- Event

Device& Event::device() const { return ex_.dev_; }

void Event::synchronize() {
  std::unique_lock lock(ex_.mu_);
  // CUDA semantics: synchronizing an event that was never recorded (and
  // has no record in flight) succeeds immediately.
  if (!recorded_ && !pending_) return;
  ex_.cv_complete_.wait(lock, [&] {
    return recorded_ || ex_.async_error_ != nullptr;
  });
}

bool Event::query() const {
  std::lock_guard lock(ex_.mu_);
  return recorded_;
}

double Event::modeled_ms() const {
  std::lock_guard lock(ex_.mu_);
  return modeled_ms_;
}

// ---------------------------------------------------------------- Stream

void Stream::launch(const LaunchParams& params, KernelFn kernel) {
  launch(params, std::move(kernel), nullptr);
}

void Stream::launch(const LaunchParams& params, KernelFn kernel,
                    std::function<void(const LaunchRecord&)> on_complete) {
  dev_.validate_launch(params);
  StreamExecutor::Op op;
  op.kind = StreamExecutor::Op::Kind::kKernel;
  op.params = params;
  op.kernel = std::move(kernel);
  op.on_complete = std::move(on_complete);
  ex_.submit(*this, std::move(op));
}

void Stream::memcpy_async(void* dst, const void* src, std::size_t bytes,
                          CopyKind kind) {
  StreamExecutor::Op op;
  op.kind = StreamExecutor::Op::Kind::kMemcpy;
  op.dst = dst;
  op.src = src;
  op.bytes = bytes;
  op.copy_kind = kind;
  ex_.submit(*this, std::move(op));
}

void Stream::memset_async(void* ptr, int value, std::size_t bytes) {
  StreamExecutor::Op op;
  op.kind = StreamExecutor::Op::Kind::kMemset;
  op.dst = ptr;
  op.value = value;
  op.bytes = bytes;
  ex_.submit(*this, std::move(op));
}

void Stream::host_fn(std::function<void()> fn) {
  StreamExecutor::Op op;
  op.kind = StreamExecutor::Op::Kind::kHostFn;
  op.fn = std::move(fn);
  ex_.submit(*this, std::move(op));
}

void Stream::record(Event& ev) {
  StreamExecutor::Op op;
  op.kind = StreamExecutor::Op::Kind::kEventRecord;
  op.event = &ev;
  {
    std::lock_guard lock(ex_.mu_);
    ev.pending_ = true;
    ev.recorded_ = false;
  }
  ex_.submit(*this, std::move(op));
}

void Stream::wait(Event& ev) {
  StreamExecutor::Op op;
  op.kind = StreamExecutor::Op::Kind::kEventWait;
  op.event = &ev;
  ex_.submit(*this, std::move(op));
}

void Stream::synchronize() {
  std::unique_lock lock(ex_.mu_);
  const std::uint64_t upto = submitted_;
  ex_.cv_complete_.wait(lock, [&] {
    return completed_ >= upto || ex_.async_error_ != nullptr;
  });
  lock.unlock();
  ex_.check_async_error();
}

bool Stream::query() const {
  std::lock_guard lock(ex_.mu_);
  return completed_ >= submitted_;
}

double Stream::modeled_ready_ms() const {
  std::lock_guard lock(ex_.mu_);
  return modeled_ready_ms_;
}

// -------------------------------------------------------- StreamExecutor

StreamExecutor::StreamExecutor(Device& dev) : dev_(dev) {
  streams_.emplace_back(new Stream(dev_, *this, next_stream_id_++));
  queues_.emplace(streams_.front()->id(), std::deque<Op>{});
  worker_ = std::make_unique<std::thread>([this] { worker_loop(); });
}

StreamExecutor::~StreamExecutor() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_submit_.notify_all();
  worker_->join();
}

Stream* StreamExecutor::create_stream() {
  std::lock_guard lock(mu_);
  streams_.emplace_back(new Stream(dev_, *this, next_stream_id_++));
  queues_.emplace(streams_.back()->id(), std::deque<Op>{});
  return streams_.back().get();
}

Event* StreamExecutor::create_event() {
  std::lock_guard lock(mu_);
  events_.emplace_back(new Event(*this));
  events_.back()->uid_ = next_event_uid_++;
  return events_.back().get();
}

void StreamExecutor::destroy_stream(Stream* s) {
  if (s == nullptr) return;
  std::unique_lock lock(mu_);
  if (!streams_.empty() && s == streams_.front().get())
    throw std::invalid_argument("cannot destroy the default stream");
  // Drain the stream's queued and in-flight work first (completed_ is
  // bumped only after execute() returns, so this also covers the op the
  // worker is currently running). The dependency-deadlock detector
  // guarantees this terminates even for permanently blocked heads.
  cv_complete_.wait(lock, [&] { return s->completed_ >= s->submitted_; });
  destroyed_streams_max_ms_ =
      std::max(destroyed_streams_max_ms_, s->modeled_ready_ms_);
  queues_.erase(s->id_);
  for (auto it = streams_.begin(); it != streams_.end(); ++it) {
    if (it->get() == s) {
      streams_.erase(it);
      break;
    }
  }
}

void StreamExecutor::destroy_event(Event* ev) {
  if (ev == nullptr) return;
  std::unique_lock lock(mu_);
  // Queued EventRecord/EventWait ops hold a raw pointer to the event;
  // wait until none remain (the worker notifies cv_complete_ per op).
  cv_complete_.wait(lock, [&] { return !event_referenced_locked(ev); });
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->get() == ev) {
      events_.erase(it);
      break;
    }
  }
}

bool StreamExecutor::event_referenced_locked(const Event* ev) const {
  if (inflight_event_ == ev) return true;
  for (const auto& [id, q] : queues_)
    for (const Op& op : q)
      if (op.event == ev) return true;
  return false;
}

void StreamExecutor::submit(Stream& s, Op op) {
  {
    std::lock_guard lock(mu_);
    if (shutdown_) throw std::logic_error("submit on shut-down executor");
    queues_[s.id_].push_back(std::move(op));
    s.submitted_++;
    total_submitted_++;
  }
  cv_submit_.notify_all();
}

bool StreamExecutor::head_blocked_locked(const Stream& s) const {
  auto it = queues_.find(s.id_);
  if (it == queues_.end() || it->second.empty()) return false;
  const Op& head = it->second.front();
  return head.kind == Op::Kind::kEventWait && !head.event->recorded_;
}

Stream* StreamExecutor::pick_ready_locked() {
  for (auto& sp : streams_) {
    auto it = queues_.find(sp->id_);
    if (it == queues_.end() || it->second.empty()) continue;
    if (!head_blocked_locked(*sp)) return sp.get();
  }
  return nullptr;
}

void StreamExecutor::worker_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    Stream* s = pick_ready_locked();
    if (s == nullptr) {
      bool any_pending = false;
      for (auto& [id, q] : queues_) any_pending |= !q.empty();
      if (any_pending && async_error_ == nullptr) {
        // Every nonempty stream head waits on an unrecorded event. Only
        // this worker records events, so the queues can only unblock if
        // the host submits the missing record. Give it a grace period;
        // if nothing new arrives, declare a dependency deadlock (a wait
        // submitted before its record forming a cycle, or a wait on an
        // event that is never recorded) instead of hanging forever.
        const std::uint64_t subs_before = total_submitted_;
        cv_submit_.wait_for(lock, std::chrono::milliseconds(250));
        if (total_submitted_ != subs_before || shutdown_) continue;
        async_error_ = std::make_exception_ptr(std::runtime_error(
            "stream dependency deadlock: every stream head waits on an "
            "event whose record cannot execute"));
        // Drain everything so host-side synchronize() calls return.
        for (auto& sp : streams_) {
          auto& q = queues_[sp->id_];
          sp->completed_ += q.size();
          q.clear();
        }
        cv_complete_.notify_all();
        continue;
      }
      if (shutdown_) return;
      cv_submit_.wait(lock);
      continue;
    }

    Op op = std::move(queues_[s->id_].front());
    queues_[s->id_].pop_front();
    inflight_event_ = op.event;  // pins the event against destroy_event
    lock.unlock();
    try {
      execute(*s, op);
    } catch (...) {
      std::lock_guard elock(mu_);
      if (async_error_ == nullptr) async_error_ = std::current_exception();
    }
    lock.lock();
    inflight_event_ = nullptr;
    s->completed_++;
    cv_complete_.notify_all();
  }
}

void StreamExecutor::execute(Stream& s, Op& op) {
  // Tracing-off cost on this path: this one relaxed load.
  const bool prof = profiling_enabled();
  ScopedStreamOp in_stream_op;
  TraceSpan span;
  std::chrono::steady_clock::time_point t0;
  if (prof) t0 = std::chrono::steady_clock::now();

  switch (op.kind) {
    case Op::Kind::kKernel: {
      const LaunchRecord rec = dev_.launch_sync(op.params, op.kernel);
      if (op.on_complete) op.on_complete(rec);
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += rec.time.total_ms;
      if (prof) {
        span.kind = SpanKind::kKernel;
        span.name = rec.name;
        span.dur_ms = rec.time.total_ms;
        span.wall_ms = rec.wall_ms;
        span.grid = rec.grid;
        span.block = rec.block;
        span.exec_mode = rec.exec_mode;
        span.stats = rec.stats;
        span.time = rec.time;
      }
      break;
    }
    case Op::Kind::kMemcpy: {
      dev_.memory().copy(op.dst, op.src, op.bytes, op.copy_kind);
      const double ms = op.copy_kind == CopyKind::kDeviceToDevice
                            ? static_cast<double>(op.bytes) /
                                  (dev_.config().mem_bw_gbps * 1e6)
                            : dev_.model_transfer_ms(op.bytes);
      if (op.copy_kind != CopyKind::kDeviceToDevice &&
          op.copy_kind != CopyKind::kHostToHost)
        dev_.add_transfer(op.bytes);
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += ms;
      if (prof) {
        span.kind = SpanKind::kMemcpy;
        span.name = copy_kind_label(op.copy_kind);
        span.dur_ms = ms;
        span.bytes = op.bytes;
      }
      break;
    }
    case Op::Kind::kMemset: {
      dev_.memory().set(op.dst, op.value, op.bytes);
      const double ms =
          static_cast<double>(op.bytes) / (dev_.config().mem_bw_gbps * 1e6);
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ += ms;
      if (prof) {
        span.kind = SpanKind::kMemset;
        span.name = "memset";
        span.dur_ms = ms;
        span.bytes = op.bytes;
      }
      break;
    }
    case Op::Kind::kHostFn: {
      op.fn();
      if (prof) {
        std::lock_guard lock(mu_);
        span.kind = SpanKind::kHostFn;
        span.name = "host-fn";
        span.ts_ms = s.modeled_ready_ms_;  // instantaneous on the model
      }
      break;
    }
    case Op::Kind::kEventRecord: {
      std::lock_guard lock(mu_);
      op.event->recorded_ = true;
      op.event->pending_ = false;
      op.event->generation_++;
      op.event->modeled_ms_ = s.modeled_ready_ms_;
      if (prof) {
        span.kind = SpanKind::kEventRecord;
        span.name = "event record";
        span.ts_ms = s.modeled_ready_ms_;
        span.flow_id =
            event_flow_id(op.event->uid_, op.event->generation_);
        span.flow_out = true;
      }
      cv_complete_.notify_all();
      break;
    }
    case Op::Kind::kEventWait: {
      std::lock_guard lock(mu_);
      span.ts_ms = s.modeled_ready_ms_;
      s.modeled_ready_ms_ =
          std::max(s.modeled_ready_ms_, op.event->modeled_ms_);
      if (prof) {
        span.kind = SpanKind::kEventWait;
        span.name = "event wait";
        // The stall the wait imposed on this stream's timeline.
        span.dur_ms = s.modeled_ready_ms_ - span.ts_ms;
        span.flow_id =
            event_flow_id(op.event->uid_, op.event->generation_);
      }
      break;
    }
  }

  if (prof) {
    span.track = s.id_ + 1;  // track 0 is the host-sync track
    span.wall_ms = span.kind == SpanKind::kKernel
                       ? span.wall_ms
                       : std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    Profiler::instance().record(dev_, span);  // outside mu_: no lock nesting
  }
}

void StreamExecutor::synchronize_all() {
  std::unique_lock lock(mu_);
  std::uint64_t upto_total = 0;
  for (auto& sp : streams_) upto_total += sp->submitted_;
  cv_complete_.wait(lock, [&] {
    std::uint64_t done = 0;
    for (auto& sp : streams_) done += sp->completed_;
    return done >= upto_total || async_error_ != nullptr;
  });
}

double StreamExecutor::modeled_now_ms() const {
  std::lock_guard lock(mu_);
  double now = destroyed_streams_max_ms_;
  for (const auto& sp : streams_) now = std::max(now, sp->modeled_ready_ms_);
  return now;
}

void StreamExecutor::check_async_error() {
  std::exception_ptr e;
  {
    std::lock_guard lock(mu_);
    e = async_error_;
    async_error_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

}  // namespace simt
