#include "simt/warp.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "simt/block.h"
#include "simt/kernel.h"

namespace simt {

WarpState::WarpState(BlockState& block, std::uint32_t warp_id, std::uint32_t width)
    : block_(block), warp_id_(warp_id), width_(width),
      value_(width), param_(width), result_(width) {
  member_mask_ = width >= 64 ? ~0ull : ((1ull << width) - 1);
  live_mask_ = member_mask_;
}

std::uint64_t WarpState::collective(ThreadCtx& ctx, WarpOp op,
                                    std::uint64_t value, std::uint64_t param,
                                    LaneMask mask) {
  if (ctx.fiber == nullptr)
    throw std::logic_error(
        "warp collective in ExecMode::kDirect; launch cooperatively");
  const std::uint32_t lane = ctx.lane;
  const LaneMask bit = 1ull << lane;
  mask &= member_mask_;
  if (mask == 0)
    throw std::invalid_argument("warp collective: empty lane mask");
  if ((mask & bit) == 0)
    throw std::logic_error("warp collective: calling lane " +
                           std::to_string(lane) + " not in its own mask");

  if (arrived_ == 0) {
    op_ = op;
    op_mask_ = mask & live_mask_;
  } else {
    if (op != op_)
      throw std::logic_error(
          "warp collective: lanes of one warp reached different collective "
          "operations (divergent collectives are not supported)");
    if ((mask & live_mask_) != op_mask_)
      throw std::logic_error(
          "warp collective: lanes passed different masks to one collective");
  }
  value_[lane] = value;
  param_[lane] = param;
  arrived_ |= bit;

  if (arrived_ == op_mask_) {
    release();
    return result_[lane];
  }
  block_.wait_warp(ctx, epoch_);
  return result_[lane];
}

void WarpState::release() {
  const LaneMask participants = op_mask_;
  switch (op_) {
    case WarpOp::kSync:
      block_.counters_.warp_syncs++;
      break;
    case WarpOp::kBallot: {
      LaneMask ballot = 0;
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1 && value_[l] != 0) ballot |= 1ull << l;
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1) result_[l] = ballot;
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kAny:
    case WarpOp::kAll: {
      bool any = false, all = true;
      for (std::uint32_t l = 0; l < width_; ++l) {
        if (((participants >> l) & 1) == 0) continue;
        if (value_[l] != 0) any = true;
        else all = false;
      }
      const std::uint64_t r = op_ == WarpOp::kAny ? any : all;
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1) result_[l] = r;
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kShflIdx:
    case WarpOp::kShflUp:
    case WarpOp::kShflDown:
    case WarpOp::kShflXor: {
      for (std::uint32_t l = 0; l < width_; ++l) {
        if (((participants >> l) & 1) == 0) continue;
        std::int64_t src = l;
        switch (op_) {
          case WarpOp::kShflIdx:
            // CUDA semantics: srcLane is taken modulo the warp width.
            src = static_cast<std::int64_t>(param_[l] % width_);
            break;
          case WarpOp::kShflUp:
            src = static_cast<std::int64_t>(l) -
                  static_cast<std::int64_t>(param_[l]);
            break;
          case WarpOp::kShflDown:
            src = static_cast<std::int64_t>(l) +
                  static_cast<std::int64_t>(param_[l]);
            break;
          case WarpOp::kShflXor:
            src = static_cast<std::int64_t>(l ^ param_[l]);
            break;
          default: break;
        }
        // Out-of-range or non-participating source keeps the lane's own
        // value (the defined kernel-language fallback for up/down; for
        // idx/xor reading an inactive lane is UB in CUDA — own value is
        // our deterministic choice, documented).
        if (src < 0 || src >= static_cast<std::int64_t>(width_) ||
            ((participants >> src) & 1) == 0) {
          result_[l] = value_[l];
        } else {
          result_[l] = value_[src];
        }
      }
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kReduceAdd:
    case WarpOp::kReduceMin:
    case WarpOp::kReduceMax: {
      // Payloads are int64 two's-complement; add wraps, min/max are
      // signed (CUDA's unsigned variants bit-cast cleanly for values
      // below 2^63, which the kl/ompx layers document).
      std::int64_t acc = 0;
      bool first = true;
      for (std::uint32_t l = 0; l < width_; ++l) {
        if (((participants >> l) & 1) == 0) continue;
        const auto v = static_cast<std::int64_t>(value_[l]);
        if (first) {
          acc = v;
          first = false;
        } else if (op_ == WarpOp::kReduceAdd) {
          acc = static_cast<std::int64_t>(static_cast<std::uint64_t>(acc) +
                                          static_cast<std::uint64_t>(v));
        } else if (op_ == WarpOp::kReduceMin) {
          acc = std::min(acc, v);
        } else {
          acc = std::max(acc, v);
        }
      }
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1)
          result_[l] = static_cast<std::uint64_t>(acc);
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kNone:
      throw std::logic_error("warp release with no pending op");
  }
  epoch_++;
  arrived_ = 0;
  op_ = WarpOp::kNone;
  op_mask_ = 0;
  // Wake exactly this warp's suspended waiters (the releasing lane keeps
  // running). Under the sweep scheduler this is a no-op; the epoch bump
  // above is what unblocks them there.
  block_.notify_warp_release(*this);
}

void WarpState::on_lane_exit(std::uint32_t lane) {
  const LaneMask bit = 1ull << lane;
  live_mask_ &= ~bit;
  if (arrived_ != 0 && (op_mask_ & bit) != 0 && (arrived_ & bit) == 0)
    throw std::logic_error(
        "thread exited its kernel while named in a pending warp collective "
        "mask (warp " + std::to_string(warp_id_) + ", lane " +
        std::to_string(lane) + ")");
}

}  // namespace simt
