#include "simt/warp.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "simt/block.h"
#include "simt/device.h"
#include "simt/kernel.h"
#include "simt/san.h"

namespace simt {

namespace {

/// kSanSync: record an invalid-mask / divergent-collective finding
/// before the throw that reports it to the kernel (record-and-throw:
/// the exception carries the story to the launch site, the SanDiag to
/// the report).
void record_mask_diag(BlockState& block, std::uint32_t flat_tid,
                      std::string msg) {
  if (!san_enabled(kSanSync)) return;
  SanDiag d;
  d.kind = SanKind::kInvalidWarpMask;
  d.kernel = block.params().name;
  d.block = block.block_index();
  d.tid_a = flat_tid;
  d.message = std::move(msg);
  d.message += std::string(" (kernel '") + block.params().name + "', block " +
               block.block_index().to_string() + ", thread " +
               std::to_string(flat_tid) + ")";
  San::instance().record(std::move(d));
}

}  // namespace

WarpState::WarpState(BlockState& block, std::uint32_t warp_id, std::uint32_t width)
    : block_(block), warp_id_(warp_id), width_(width) {
  member_mask_ = width >= 64 ? ~0ull : ((1ull << width) - 1);
  live_mask_ = member_mask_;
}

std::uint64_t WarpState::collective(ThreadCtx& ctx, WarpOp op,
                                    std::uint64_t value, std::uint64_t param,
                                    LaneMask mask) {
  // Deflation (or the kDirect error) fires before any rendezvous state
  // moves: a deflating thread's prefix must leave no trace.
  block_.require_fiber(ctx, "warp collective");
  // Rendezvous lanes materialize on the warp's first collective: a
  // block that never uses warp ops pays nothing for them.
  if (value_.empty()) {
    value_.resize(width_);
    param_.resize(width_);
    result_.resize(width_);
  }
  const std::uint32_t lane = ctx.lane;
  const LaneMask bit = 1ull << lane;
  const LaneMask requested = mask;
  mask &= member_mask_;
  if (mask == 0) {
    record_mask_diag(block_, ctx.flat_tid,
                     "warp collective: empty lane mask");
    throw std::invalid_argument("warp collective: empty lane mask");
  }
  if ((mask & bit) == 0) {
    std::string what = "warp collective: calling lane " +
                       std::to_string(lane) + " not in its own mask";
    record_mask_diag(block_, ctx.flat_tid, what);
    throw std::logic_error(what);
  }
  // kSanSync: a *partial* mask that explicitly names an already-exited
  // lane can never rendezvous — CUDA hangs; we diagnose. The default
  // full mask (~0ull, or all member lanes) is exempt: "everyone still
  // here" is its documented meaning, and exited lanes stop counting.
  if (san_enabled(kSanSync) && requested != ~0ull && mask != member_mask_ &&
      (mask & ~live_mask_) != 0) {
    const auto dead = mask & ~live_mask_;
    std::string what =
        "warp collective: mask names exited lane(s) (mask 0x" +
        [&] {
          char b[24];
          std::snprintf(b, sizeof b, "%llx, dead 0x%llx",
                        static_cast<unsigned long long>(requested),
                        static_cast<unsigned long long>(dead));
          return std::string(b);
        }() +
        ") — the collective could never complete on real hardware";
    record_mask_diag(block_, ctx.flat_tid, what);
    throw std::logic_error(what);
  }

  if (arrived_ == 0) {
    op_ = op;
    op_mask_ = mask & live_mask_;
  } else {
    if (op != op_) {
      std::string what =
          "warp collective: lanes of one warp reached different collective "
          "operations (divergent collectives are not supported)";
      record_mask_diag(block_, ctx.flat_tid, what);
      throw std::logic_error(what);
    }
    if ((mask & live_mask_) != op_mask_) {
      std::string what =
          "warp collective: lanes passed different masks to one collective";
      record_mask_diag(block_, ctx.flat_tid, what);
      throw std::logic_error(what);
    }
  }
  value_[lane] = value;
  param_[lane] = param;
  arrived_ |= bit;

  if (arrived_ == op_mask_) {
    release();
    return result_[lane];
  }
  block_.wait_warp(ctx, epoch_);
  return result_[lane];
}

void WarpState::release() {
  const LaneMask participants = op_mask_;
  switch (op_) {
    case WarpOp::kSync:
      block_.counters_.warp_syncs++;
      break;
    case WarpOp::kBallot: {
      LaneMask ballot = 0;
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1 && value_[l] != 0) ballot |= 1ull << l;
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1) result_[l] = ballot;
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kAny:
    case WarpOp::kAll: {
      bool any = false, all = true;
      for (std::uint32_t l = 0; l < width_; ++l) {
        if (((participants >> l) & 1) == 0) continue;
        if (value_[l] != 0) any = true;
        else all = false;
      }
      const std::uint64_t r = op_ == WarpOp::kAny ? any : all;
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1) result_[l] = r;
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kShflIdx:
    case WarpOp::kShflUp:
    case WarpOp::kShflDown:
    case WarpOp::kShflXor: {
      for (std::uint32_t l = 0; l < width_; ++l) {
        if (((participants >> l) & 1) == 0) continue;
        std::int64_t src = l;
        switch (op_) {
          case WarpOp::kShflIdx:
            // CUDA semantics: srcLane is taken modulo the warp width.
            src = static_cast<std::int64_t>(param_[l] % width_);
            break;
          case WarpOp::kShflUp:
            src = static_cast<std::int64_t>(l) -
                  static_cast<std::int64_t>(param_[l]);
            break;
          case WarpOp::kShflDown:
            src = static_cast<std::int64_t>(l) +
                  static_cast<std::int64_t>(param_[l]);
            break;
          case WarpOp::kShflXor:
            src = static_cast<std::int64_t>(l ^ param_[l]);
            break;
          default: break;
        }
        // Out-of-range or non-participating source keeps the lane's own
        // value (the defined kernel-language fallback for up/down; for
        // idx/xor reading an inactive lane is UB in CUDA — own value is
        // our deterministic choice, documented).
        if (src < 0 || src >= static_cast<std::int64_t>(width_) ||
            ((participants >> src) & 1) == 0) {
          result_[l] = value_[l];
        } else {
          result_[l] = value_[src];
        }
      }
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kReduceAdd:
    case WarpOp::kReduceMin:
    case WarpOp::kReduceMax: {
      // Payloads are int64 two's-complement; add wraps, min/max are
      // signed (CUDA's unsigned variants bit-cast cleanly for values
      // below 2^63, which the kl/ompx layers document).
      std::int64_t acc = 0;
      bool first = true;
      for (std::uint32_t l = 0; l < width_; ++l) {
        if (((participants >> l) & 1) == 0) continue;
        const auto v = static_cast<std::int64_t>(value_[l]);
        if (first) {
          acc = v;
          first = false;
        } else if (op_ == WarpOp::kReduceAdd) {
          acc = static_cast<std::int64_t>(static_cast<std::uint64_t>(acc) +
                                          static_cast<std::uint64_t>(v));
        } else if (op_ == WarpOp::kReduceMin) {
          acc = std::min(acc, v);
        } else {
          acc = std::max(acc, v);
        }
      }
      for (std::uint32_t l = 0; l < width_; ++l)
        if ((participants >> l) & 1)
          result_[l] = static_cast<std::uint64_t>(acc);
      block_.counters_.warp_collectives++;
      break;
    }
    case WarpOp::kNone:
      throw std::logic_error("warp release with no pending op");
  }
  epoch_++;
  arrived_ = 0;
  op_ = WarpOp::kNone;
  op_mask_ = 0;
  // Wake exactly this warp's suspended waiters (the releasing lane keeps
  // running). Under the sweep scheduler this is a no-op; the epoch bump
  // above is what unblocks them there.
  block_.notify_warp_release(*this);
}

void WarpState::on_lane_exit(std::uint32_t lane) {
  const LaneMask bit = 1ull << lane;
  live_mask_ &= ~bit;
  if (arrived_ != 0 && (op_mask_ & bit) != 0 && (arrived_ & bit) == 0) {
    std::string what =
        "thread exited its kernel while named in a pending warp collective "
        "mask (warp " + std::to_string(warp_id_) + ", lane " +
        std::to_string(lane) + ")";
    record_mask_diag(block_, warp_id_ * block_.device().config().warp_size +
                                 lane,
                     what);
    throw std::logic_error(what);
  }
}

}  // namespace simt
