// Dimension types shared by the SIMT engine and every layer above it.
//
// `Dim3` mirrors CUDA's `dim3`: a three-component extent whose unspecified
// components default to 1, so `Dim3(128)` is a 1-D extent of 128.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace simt {

struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(std::uint32_t x_, std::uint32_t y_ = 1, std::uint32_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  /// Total number of points in the extent.
  [[nodiscard]] constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }

  /// Row-major linearization of a coordinate within this extent
  /// (x fastest), matching CUDA's thread-numbering convention.
  [[nodiscard]] constexpr std::uint64_t linear(const Dim3& p) const {
    return (static_cast<std::uint64_t>(p.z) * y + p.y) * x + p.x;
  }

  /// Inverse of linear(): recover the coordinate from a flat index.
  [[nodiscard]] constexpr Dim3 delinearize(std::uint64_t i) const {
    const std::uint32_t px = static_cast<std::uint32_t>(i % x);
    const std::uint32_t py = static_cast<std::uint32_t>((i / x) % y);
    const std::uint32_t pz = static_cast<std::uint32_t>(i / (static_cast<std::uint64_t>(x) * y));
    return {px, py, pz};
  }

  [[nodiscard]] constexpr bool contains(const Dim3& p) const {
    return p.x < x && p.y < y && p.z < z;
  }

  constexpr bool operator==(const Dim3&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "(" + std::to_string(x) + "," + std::to_string(y) + "," +
           std::to_string(z) + ")";
  }
};

/// Ceiling division, the ubiquitous grid-size helper.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace simt
