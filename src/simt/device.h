// Simulated GPU devices.
//
// The paper evaluates on an NVIDIA A100 (40 GB) under CUDA 11.8 and one
// GCD of an AMD MI250 under ROCm 5.5 (Figure 7). We register two device
// configurations with the published architectural parameters of those
// parts; warp size (32 vs 64) is the semantically visible difference the
// ompx warp APIs must handle, the rest feeds the performance model.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simt/dim.h"
#include "simt/kernel.h"
#include "simt/perf.h"

namespace simt {

class Device;

enum class Vendor { kNvidia, kAmd };

struct DeviceConfig {
  std::string name;
  Vendor vendor = Vendor::kNvidia;
  std::uint32_t warp_size = 32;
  std::uint32_t num_sms = 108;                 ///< SMs (NVIDIA) / CUs (AMD)
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t max_threads_per_sm = 2048;
  std::uint32_t max_blocks_per_sm = 32;
  std::uint32_t regs_per_sm = 65536;
  std::uint64_t smem_per_sm = 164 * 1024;      ///< shared memory / LDS per SM
  std::uint64_t smem_per_block_max = 48 * 1024;
  std::uint64_t global_mem_bytes = 40ull << 30;
  std::uint64_t const_mem_bytes = 64 * 1024;   ///< __constant__ space
  double clock_ghz = 1.41;
  double fp_lanes_per_sm = 64;                 ///< FP32 FMA lanes per SM
  double mem_bw_gbps = 1555.0;                 ///< global memory bandwidth
  double shared_bw_gbps = 19400.0;             ///< aggregate smem bandwidth
  double link_bw_gbps = 64.0;                  ///< host link (PCIe 4.0 x16)
  /// Device<->device peer link bandwidth (NVLink / Infinity Fabric
  /// class). A peer copy runs at the slower endpoint's rate; with peer
  /// access disabled it is staged through the host link instead.
  double peer_bw_gbps = 200.0;
  std::uint32_t grid_dims_supported = 3;

  /// Peak FLOP/s (FMA counted as two ops).
  [[nodiscard]] double peak_gflops() const {
    return 2.0 * fp_lanes_per_sm * num_sms * clock_ghz;
  }
};

/// Which cooperative block scheduler a device's launches use. Both
/// produce identical results, counters, and modeled time; kReadyQueue
/// is the fast path (O(waiters) wakeups, fiber recycling), kSweep the
/// legacy O(nthreads)-per-round reference kept for differential tests.
enum class BlockScheduler { kReadyQueue, kSweep };

/// Per-kernel execution classification, keyed by kernel name in a
/// process-wide registry. `convergent` marks a kernel safe and
/// profitable for the lane-loop fast path (no collectives expected);
/// `needs_fibers` pins it to the fiber path — set explicitly (via
/// ompx::launch_hints / the lint classifier) or learned when a launch
/// deflates, so subsequent launches skip the doomed convergent probe.
struct ExecHint {
  bool convergent = false;
  bool needs_fibers = false;
  /// Convergent AND its atomics are inline-safe: the lane loop may run
  /// atomics in place instead of deflating (no barrier can follow one —
  /// the static analyzer proves the kernel rendezvous-free before
  /// setting this, see rewrite::register_exec_hints).
  bool atomics_ok = false;
};

/// Process-wide lane-execution policy, initialized from the OMPX_EXEC
/// environment variable (fiber | convergent | auto; default auto).
/// kAuto consults the ExecHint registry per kernel and falls back to
/// fibers for unhinted kernels; kConvergent tries the lane loop on
/// every cooperative launch (deflation keeps it correct); kFiber
/// disables the fast path entirely.
enum class ExecPolicy : std::uint8_t { kAuto, kFiber, kConvergent };

/// Registers/overwrites the hint for `kernel` (launch-time names).
void set_exec_hint(const std::string& kernel, ExecHint hint);
/// The registered hint, or a default-constructed one when unhinted.
[[nodiscard]] ExecHint exec_hint(const std::string& kernel);
/// Drops every registered hint (benchmarks/tests isolation).
void clear_exec_hints();
/// Records that a convergent launch of `kernel` deflated: pins
/// needs_fibers so later launches take the fiber path directly.
/// Called by the block runner; safe from any worker thread.
void note_exec_deflation(const char* kernel);

/// Overrides the OMPX_EXEC policy at run time (tests/benchmarks).
void set_exec_policy(ExecPolicy policy);
[[nodiscard]] ExecPolicy exec_policy();

/// Stable display name of a resolved lane-execution mode: "fiber",
/// "convergent", or "direct" (ExecMode::kDirect launches).
const char* exec_mode_name(ExecMode mode, LaneExec lane_exec);

/// Engine-wide execution options (host-side knobs, not device model).
struct EngineOptions {
  /// OS worker threads used to execute blocks. Defaults to the host's
  /// hardware concurrency (>= 1). Simulation results are identical for
  /// any value; only host wall time changes.
  unsigned workers = 0;
  /// Fiber stack size per simulated GPU thread (0 = pool default).
  std::size_t fiber_stack_bytes = 0;
  /// Cooperative block scheduler (results identical either way).
  BlockScheduler scheduler = BlockScheduler::kReadyQueue;
  /// Blocks grabbed per atomic fetch of the work-stealing launch queue
  /// (0 = auto: ~8 chunks per worker, at least 1 block).
  std::uint64_t steal_chunk_blocks = 0;
  /// Device-wide lane-execution override. kDefault defers to the
  /// per-launch request, the hint registry, and the OMPX_EXEC policy;
  /// kFiber/kConvergent force that path for every cooperative launch
  /// on this device (convergent still deflates dynamically).
  LaneExec lane_exec = LaneExec::kDefault;
  /// Stream-executor pool threads per device (how many stream ops run
  /// concurrently in host wall time). 0 = auto: OMPX_STREAM_WORKERS if
  /// set, else a small share of the host (2..4). Simulation results
  /// are identical for any value; only overlap/wall time changes.
  unsigned stream_workers = 0;
};

/// One completed kernel launch: measured stats + modeled time.
struct LaunchRecord {
  std::string name;
  Dim3 grid;
  Dim3 block;
  LaunchStats stats;
  ModeledTime time;
  double wall_ms = 0.0;
  /// Resolved lane-execution mode this launch ran under: "fiber",
  /// "convergent", or "direct" (see exec_mode_name).
  std::string exec_mode = "fiber";
};

class Stream;
class Event;
class StreamExecutor;
class DeviceMemory;
class StreamMemPool;
class Graph;

/// A simulated GPU: configuration, global memory, streams, and the
/// launch path. Thread-safe for host-side use.
class Device {
 public:
  explicit Device(DeviceConfig cfg, EngineOptions opts = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceConfig& config() const { return cfg_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  DeviceMemory& memory() { return *mem_; }
  /// The stream-ordered allocator's free pool (malloc_async /
  /// free_async reuse; see simt/memory.h).
  StreamMemPool& mem_pool() { return *pool_; }
  /// The __constant__ memory space (§2.5's fourth space): small,
  /// host-writable, broadcast-read by kernels. Same allocation API as
  /// global memory with the 64 KiB capacity CUDA gives it.
  DeviceMemory& constant_memory() { return *cmem_; }
  EventCosts& costs() { return costs_; }

  /// Executes a kernel synchronously on the calling thread (every block,
  /// every thread, functionally) and returns measured stats + modeled
  /// time. Streams use this internally; tests may call it directly.
  LaunchRecord launch_sync(const LaunchParams& params, const KernelFn& kernel);

  /// Throws std::invalid_argument for an unlaunchable configuration.
  /// Streams call this at submit time so configuration errors surface
  /// synchronously, as the CUDA runtime does.
  void validate_launch(const LaunchParams& params) const { validate(params); }

  /// Streams and events (owned by the device). create_* handles live
  /// until destroy_* or device teardown; the default stream always
  /// exists and cannot be destroyed.
  Stream& default_stream();
  Stream* create_stream();
  Event* create_event();
  /// Drains the stream's pending work, then releases it. Destroying the
  /// default stream throws; nullptr is a no-op (CUDA tolerance).
  void destroy_stream(Stream* stream);
  /// Waits until no queued or in-flight op references the event, then
  /// releases it. nullptr is a no-op.
  void destroy_event(Event* event);
  /// Wait for every operation on every stream (cudaDeviceSynchronize),
  /// then rethrow any asynchronous error.
  void synchronize();

  /// Device-loss poisoning (the simulator's cudaErrorDevicesUnavailable):
  /// once marked lost — by the fault injector's "device_lost" site or a
  /// test — every subsequent entry point that touches this device throws
  /// DeviceLostError (mapped to OMPX_ERROR_DEVICE_LOST / klErrorDeviceLost)
  /// until reset() clears the poison.
  void mark_lost(const std::string& reason);
  [[nodiscard]] bool lost() const {
    return lost_.load(std::memory_order_acquire);
  }
  /// Throws DeviceLostError naming `who` when the device is lost.
  void check_not_lost(const char* who) const;
  /// cudaDeviceReset-shaped recovery: clears the lost poison, drains
  /// every stream, and discards any pending asynchronous error so the
  /// device is usable again. Streams the watchdog timed out stay dead
  /// (destroy and recreate them).
  void reset();
  /// Pool threads executing this device's stream ops (see
  /// EngineOptions::stream_workers / OMPX_STREAM_WORKERS).
  [[nodiscard]] unsigned stream_worker_count() const;

  /// Modeled host<->device transfer time for `bytes` (used by the data
  /// mapping layers; also accumulated when stream memcpys execute).
  [[nodiscard]] double model_transfer_ms(std::uint64_t bytes) const;

  /// Peer access (cudaDeviceEnablePeerAccess semantics): directional
  /// "this device may read/write `peer`'s memory over the peer link".
  /// Disabled by default; peer copies then stage through the host.
  void enable_peer_access(const Device& peer);
  void disable_peer_access(const Device& peer);
  [[nodiscard]] bool peer_access_enabled(const Device& peer) const;

  // --- bookkeeping for benchmarks and tests ---
  [[nodiscard]] std::vector<LaunchRecord> launch_log() const;
  [[nodiscard]] LaunchRecord last_launch() const;
  /// Appends an externally assembled record (the combined record of a
  /// sharded launch) as if it were a completed launch on this device.
  void append_launch_record(const LaunchRecord& rec);
  void clear_launch_log();
  /// Sum of modeled kernel time over the launch log.
  [[nodiscard]] double modeled_kernel_ms_total() const;
  /// Modeled device-timeline "now" (max stream-ready time).
  [[nodiscard]] double modeled_now_ms() const;
  /// Accumulated modeled transfer time since last clear_launch_log().
  [[nodiscard]] double modeled_transfer_ms_total() const;
  void add_transfer(std::uint64_t bytes);  // used by mapping layers
  /// Accounts an already-costed transfer (peer copies charge each
  /// endpoint with the externally modeled time; no span is recorded —
  /// the caller owns the telemetry for cross-device operations).
  void add_transfer_ms(double ms, std::uint64_t bytes);

 private:
  friend class StreamExecutor;
  friend class Graph;

  void validate(const LaunchParams& params) const;
  /// Resolves a launch's LaneExec request (per-launch > engine options
  /// > OMPX_EXEC policy + hint registry) to kFiber or kConvergent.
  [[nodiscard]] LaneExec resolve_lane_exec(const LaunchParams& params) const;
  /// The block-execution core of launch_sync (grid fan-out over the
  /// work-stealing launch pool, folded counters). Shared with graph
  /// replay, which skips the per-launch setup around it — callers own
  /// validation, lane-exec resolution, timing, logging, telemetry.
  [[nodiscard]] LaunchStats run_blocks(const LaunchParams& params,
                                       const KernelFn& kernel);

  DeviceConfig cfg_;
  EngineOptions opts_;
  EventCosts costs_;
  std::unique_ptr<DeviceMemory> mem_;
  std::unique_ptr<DeviceMemory> cmem_;
  std::unique_ptr<StreamMemPool> pool_;
  std::unique_ptr<StreamExecutor> exec_;

  mutable std::mutex log_mu_;
  std::vector<LaunchRecord> log_;
  double transfer_ms_total_ = 0.0;

  mutable std::mutex peers_mu_;
  std::vector<const Device*> peers_;  // peer access enabled toward these

  std::atomic<bool> lost_{false};
  mutable std::mutex lost_mu_;
  std::string lost_reason_;
};

/// Returns the process-wide registry of simulated devices. Index 0 is
/// "sim-a100" (CUDA-shaped) and index 1 is "sim-mi250" (HIP-shaped, one
/// GCD), matching the paper's two systems.
std::vector<Device*>& device_registry();

/// Registry-wide pointer->device resolution: the registered device
/// whose global-memory space contains `ptr` (interior pointers
/// included), or nullptr for host pointers. This is what makes the
/// host APIs device-aware — a copy's direction is inferred from the
/// *owning* devices, never from a single device's registry.
Device* resolve_device(const void* ptr);
/// Registry index of resolve_device(ptr), or -1 for host pointers.
int resolve_device_index(const void* ptr);

/// Copies `bytes` from `src` (an allocation of `src_dev`) to `dst` (an
/// allocation of `dst_dev`) — cudaMemcpyPeer. Both ranges are bounds-
/// validated against their own device's registry. Returns the modeled
/// milliseconds: the peer link when either endpoint has peer access
/// enabled toward the other, else a device-to-host-to-device staging
/// (two host-link legs). The time and bytes are accounted on *both*
/// devices, and under tracing the copy appears as a span on each
/// device joined by a cross-device flow arrow.
double peer_copy(Device& dst_dev, void* dst, Device& src_dev, const void* src,
                 std::size_t bytes);

/// Look up a registered device by name; throws if unknown.
Device& device_by_name(const std::string& name);

/// Convenience: the registered sim-a100 / sim-mi250 devices.
Device& sim_a100();
Device& sim_mi250();

/// The published configurations used to build the registry (also used
/// by tests and the Fig. 7 table printer).
DeviceConfig make_sim_a100_config();
DeviceConfig make_sim_mi250_config();

}  // namespace simt
