// Deterministic fault injection for the SIMT engine.
//
// The injector arms per-site rules from a spec string (the OMPX_FAULT
// environment variable, ompx_fault_enable, klFaultInject, or the
// ompx::FaultScope RAII guard):
//
//   spec    := clause (';' clause)*
//   clause  := site [':' arg (',' arg)*]
//   site    := oom | host_oom | stall | peer | graph | device_lost
//   arg     := after=N          first N calls succeed, call N+1 fires once
//            | every=N          every Nth call fires
//            | p=F [seed=S]     each call fires with probability F,
//                               deterministically derived from the seed
//            | ms=D             stall duration in milliseconds (stall only,
//                               clamped to [0, 1000], default 25)
//
// A bare site with no trigger argument fires on every call. Sites map
// to engine chokepoints:
//
//   oom          DeviceMemory::allocate (covers ompx_malloc, klMalloc,
//                malloc_async pool refill, constant memory)
//   host_oom     host-side control allocation (stream/event creation)
//   stall        a stream worker sleeps `ms` before executing an op —
//                the wall-clock hang the watchdog exists to catch
//   peer         cross-device peer copy fails
//   graph        graph instantiation fails
//   device_lost  Device::mark_lost at launch validation; every later
//                entry point on that device reports device-lost until
//                Device::reset (ompx_device_reset / klDeviceReset)
//
// Injection decisions are deterministic: countdown and every-Nth
// triggers are exact call counters, and probability triggers hash
// (seed, site, call#) with splitmix64 — the same spec replays the same
// faults. The hot-path cost when injection is disarmed is one relaxed
// atomic load (`fault_armed()`), mirroring the sanitizer switch in
// san.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>

namespace simt {

/// Engine chokepoints that can be made to fail.
enum class FaultSite : std::uint8_t {
  kDeviceAlloc = 0,    ///< "oom": device memory allocation
  kHostAlloc,          ///< "host_oom": host-side control allocation
  kStreamStall,        ///< "stall": delay a stream op (wall-clock hang)
  kPeerCopy,           ///< "peer": cross-device copy failure
  kGraphInstantiate,   ///< "graph": graph instantiation failure
  kDeviceLost,         ///< "device_lost": poison the device
  kCount,
};

/// The spec-grammar name of a site ("oom", "stall", ...).
const char* fault_site_name(FaultSite site);

/// Device memory exhausted (real capacity overflow or injected).
/// Derives from std::bad_alloc so pre-existing handlers keep working;
/// the C ABIs map it to OMPX_ERROR_OUT_OF_MEMORY / klErrorMemoryAllocation.
class DeviceOOMError : public std::bad_alloc {
 public:
  explicit DeviceOOMError(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// The device has been poisoned (injected loss): every entry point on
/// it reports OMPX_ERROR_DEVICE_LOST / klErrorDeviceLost until reset.
class DeviceLostError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A launch exceeded the watchdog budget (modeled time) or a stream op
/// exceeded it in wall-clock time; maps to OMPX_ERROR_TIMEOUT /
/// klErrorTimeout.
class TimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The serving layer's admission control refused a request (per-client
/// queue depth exceeded); maps to OMPX_ERROR_ADMISSION / klErrorAdmission.
/// Lives in simt (not serve) so the core C ABI can translate it without
/// depending on the service layer.
class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace fault_detail {
/// Global injection switch; non-zero while a spec is armed.
extern constinit std::atomic<std::uint32_t> g_armed;
}  // namespace fault_detail

/// True when fault injection is armed. One relaxed load — cheap enough
/// for allocation and submit hot paths.
inline bool fault_armed() {
  return fault_detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/// The process-wide injector. Leaked singleton (like the sanitizer and
/// the device registry) so injection stays valid during static
/// teardown of client code.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Parses and arms `spec`. Throws std::invalid_argument on a
  /// malformed spec and leaves the previous configuration armed.
  void enable(const std::string& spec);
  /// Disarms all sites.
  void disable();

  [[nodiscard]] bool active() const;
  /// The currently armed spec string (empty when disarmed).
  [[nodiscard]] std::string spec() const;

  /// Advances the site's call counter and reports whether this call
  /// should fail. Counts fired faults.
  bool should_fire(FaultSite site);
  /// Stall duration for kStreamStall (milliseconds).
  [[nodiscard]] double stall_ms() const;

  /// Total faults fired since enable()/reset_counters().
  [[nodiscard]] std::uint64_t injected_count() const;
  [[nodiscard]] std::uint64_t injected_count(FaultSite site) const;
  void reset_counters();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  enum class Trigger : std::uint8_t { kAlways, kAfter, kEvery, kProb };
  struct Rule {
    bool armed = false;
    Trigger trigger = Trigger::kAlways;
    std::uint64_t n = 0;       ///< after=N / every=N argument
    double p = 0.0;            ///< p=F argument
    std::uint64_t seed = 0;    ///< seed=S argument
    double ms = 25.0;          ///< ms=D argument (stall duration)
    std::uint64_t calls = 0;   ///< calls seen since enable()
    std::uint64_t fired = 0;   ///< faults fired since enable()
    bool exhausted = false;    ///< one-shot `after` trigger consumed
  };

  mutable std::mutex mu_;
  Rule rules_[static_cast<std::size_t>(FaultSite::kCount)];
  std::string spec_;
  std::uint64_t fired_total_ = 0;
};

/// should_fire() behind the armed fast path: false in one relaxed load
/// when injection is off.
inline bool fault_should_fire(FaultSite site) {
  return fault_armed() && FaultInjector::instance().should_fire(site);
}

}  // namespace simt
