// Per-block shared-memory arena.
//
// Models __shared__ / LDS storage: a bump allocator over a fixed-size
// buffer that lives exactly as long as one thread block. Static shared
// variables and the dynamic shared segment both come from here; the
// high-water mark is reported to the occupancy model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simt {

class SharedArena {
 public:
  /// `capacity` is the device's per-block shared memory limit;
  /// `dynamic_bytes` is the launch's dynamic segment, reserved up front
  /// at the base of the arena (CUDA's extern __shared__ convention).
  SharedArena(std::size_t capacity, std::size_t dynamic_bytes);

  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;

  /// Allocates `bytes` of block-shared storage. All threads of the
  /// block must reach the same allocation sequence (they receive the
  /// same pointer — see BlockState::shared_alloc, which funnels every
  /// thread's request through one allocation per call site ordinal).
  /// Throws std::bad_alloc if the block's shared capacity is exceeded.
  void* allocate(std::size_t bytes, std::size_t align = 16);

  /// Base of the dynamic shared segment (size = dynamic_bytes).
  [[nodiscard]] void* dynamic_base() {
    ensure_backing();
    return buf_.data();
  }
  [[nodiscard]] std::size_t dynamic_size() const { return dynamic_bytes_; }

  /// Rewinds the allocation cursor to the start of the static segment
  /// for another run over the same block (graph replay reuses
  /// BlockStates instead of rebuilding them). The backing store, if
  /// already materialized, is kept.
  void reset() {
    offset_ = dynamic_bytes_;
    high_water_ = dynamic_bytes_;
  }

  [[nodiscard]] std::size_t used() const { return offset_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// True if `p` points into this arena's storage (ompxsan uses this to
  /// route an instrumented access to the racecheck shadow cells).
  [[nodiscard]] bool contains(const void* p) const {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const auto b = reinterpret_cast<std::uintptr_t>(buf_.data());
    return a >= b && a < b + buf_.size();
  }
  /// Byte offset of `p` from the arena base. Only valid when contains(p).
  [[nodiscard]] std::size_t offset_of(const void* p) const {
    return static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(p) -
                                    reinterpret_cast<std::uintptr_t>(buf_.data()));
  }

 private:
  /// The backing store materializes on first use (allocate /
  /// dynamic_base): a block whose kernel never touches shared memory
  /// pays nothing for the arena. contains() on an untouched arena is
  /// correctly false — no pointer into it can exist yet.
  void ensure_backing() {
    if (buf_.empty() && cap_ != 0) buf_.resize(cap_);
  }

  std::size_t cap_;
  std::vector<std::uint8_t> buf_;
  std::size_t dynamic_bytes_;
  std::size_t offset_;
  std::size_t high_water_;
};

}  // namespace simt
