#include "simt/profiler.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "simt/device.h"

namespace simt {

namespace telemetry_detail {
std::atomic<bool> g_enabled{false};
constinit thread_local bool t_in_stream_op = false;
}  // namespace telemetry_detail

namespace {

/// Minimal JSON string escaping for kernel names.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// OMPX_TRACE=<path>: start capturing at process start, dump at exit.
/// Lives in this TU, which links in whenever the engine records spans.
struct EnvActivation {
  EnvActivation() {
    const char* path = std::getenv("OMPX_TRACE");
    if (path == nullptr || path[0] == '\0') return;
    static std::string trace_path;  // outlives the atexit callback
    trace_path = path;
    Profiler::instance().start();
    std::atexit([] {
      if (!Profiler::instance().dump_chrome_trace(trace_path))
        std::fprintf(stderr, "ompx telemetry: cannot write OMPX_TRACE=%s\n",
                     trace_path.c_str());
    });
  }
} g_env_activation;

}  // namespace

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kMemcpy: return "memcpy";
    case SpanKind::kMemset: return "memset";
    case SpanKind::kHostFn: return "host-fn";
    case SpanKind::kEventRecord: return "event-record";
    case SpanKind::kEventWait: return "event-wait";
    case SpanKind::kAlloc: return "alloc";
    case SpanKind::kFree: return "free";
    case SpanKind::kGraph: return "graph";
  }
  return "?";
}

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler;  // leaked: see header
  return *p;
}

void Profiler::start() {
  telemetry_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::stop() {
  telemetry_detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Profiler::reset() {
  std::lock_guard lock(mu_);
  spans_.clear();
  counters_ = ProfilerCounters{};
  for (auto& d : devices_) d.sync_cursor_ms = 0.0;
}

std::size_t Profiler::device_index_locked(const Device& dev) {
  for (std::size_t i = 0; i < devices_.size(); ++i)
    if (devices_[i].dev == &dev) return i;
  devices_.push_back({&dev, dev.config().name, 0.0});
  return devices_.size() - 1;
}

void Profiler::record(const Device& dev, TraceSpan span) {
  std::lock_guard lock(mu_);
  const std::size_t di = device_index_locked(dev);
  span.device_pid = static_cast<std::uint32_t>(di);
  if (span.track == 0) {
    // Host-synchronous ops have no stream timeline: serialize them on
    // the device's sync track so per-track timestamps stay monotonic.
    span.ts_ms = devices_[di].sync_cursor_ms;
    devices_[di].sync_cursor_ms += span.dur_ms;
  }

  switch (span.kind) {
    case SpanKind::kKernel:
      counters_.launches++;
      counters_.blocks += span.stats.blocks;
      counters_.threads += span.stats.threads;
      counters_.block_barriers += span.stats.block_barriers;
      counters_.warp_collectives += span.stats.warp_collectives;
      counters_.atomics += span.stats.atomics;
      counters_.parallel_handshakes += span.stats.parallel_handshakes;
      counters_.globalized_bytes += span.stats.globalized_bytes;
      counters_.lane_loops += span.stats.sched_lane_loops;
      counters_.modeled_kernel_ms += span.dur_ms;
      break;
    case SpanKind::kMemcpy:
      counters_.memcpys++;
      counters_.bytes_copied += span.bytes;
      counters_.modeled_memcpy_ms += span.dur_ms;
      break;
    case SpanKind::kMemset:
      counters_.memsets++;
      break;
    case SpanKind::kEventRecord:
      counters_.event_records++;
      break;
    case SpanKind::kEventWait:
      counters_.event_waits++;
      break;
    case SpanKind::kAlloc:
      counters_.allocs++;
      break;
    case SpanKind::kFree:
      counters_.frees++;
      break;
    case SpanKind::kGraph:
      // Umbrella replay slices only; per-node spans count themselves
      // (the zero-duration fence spans are filtered by duration).
      if (span.dur_ms > 0.0 || span.flow_out == false)
        counters_.graph_replays++;
      break;
    case SpanKind::kHostFn:
      break;
  }
  counters_.host_wall_ms += span.wall_ms;
  spans_.push_back(std::move(span));
}

ProfilerCounters Profiler::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

std::vector<TraceSpan> Profiler::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::string Profiler::chrome_trace_json() const {
  std::lock_guard lock(mu_);
  std::string out;
  out.reserve(256 + spans_.size() * 200);
  out += "{\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: one Chrome "process" per device, one named "thread" per
  // track (host-sync + each stream seen in the capture).
  for (std::size_t di = 0; di < devices_.size(); ++di) {
    sep();
    append(out,
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,\"tid\":0,"
           "\"args\":{\"name\":\"%s\"}}",
           di, json_escape(devices_[di].name).c_str());
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> tracks;
  for (const TraceSpan& s : spans_) {
    const std::pair<std::uint32_t, std::uint64_t> key{s.device_pid, s.track};
    bool seen = false;
    for (const auto& t : tracks) seen |= t == key;
    if (seen) continue;
    tracks.push_back(key);
    sep();
    if (s.track == 0) {
      append(out,
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
             "\"args\":{\"name\":\"host-sync\"}}",
             s.device_pid);
    } else {
      append(out,
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%llu,"
             "\"args\":{\"name\":\"stream %llu%s\"}}",
             s.device_pid, static_cast<unsigned long long>(s.track),
             static_cast<unsigned long long>(s.track - 1),
             s.track == 1 ? " (default)" : "");
    }
  }

  // Spans: complete ("X") slices at modeled microsecond timestamps,
  // plus flow arrows ("s" -> "f") for event record/wait pairs.
  for (const TraceSpan& s : spans_) {
    const double ts_us = s.ts_ms * 1000.0;
    const double dur_us = s.dur_ms * 1000.0;
    sep();
    append(out,
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%u,"
           "\"tid\":%llu,\"ts\":%.4f,\"dur\":%.4f,\"args\":{",
           json_escape(s.name).c_str(), span_kind_name(s.kind), s.device_pid,
           static_cast<unsigned long long>(s.track), ts_us, dur_us);
    append(out, "\"host_wall_ms\":%.6f", s.wall_ms);
    if (s.kind == SpanKind::kKernel) {
      append(out,
             ",\"grid\":\"%s\",\"block\":\"%s\",\"blocks\":%llu,"
             "\"threads\":%llu,\"block_barriers\":%llu,"
             "\"warp_collectives\":%llu,\"atomics\":%llu,"
             "\"parallel_handshakes\":%llu,\"globalized_bytes\":%llu",
             s.grid.to_string().c_str(), s.block.to_string().c_str(),
             static_cast<unsigned long long>(s.stats.blocks),
             static_cast<unsigned long long>(s.stats.threads),
             static_cast<unsigned long long>(s.stats.block_barriers),
             static_cast<unsigned long long>(s.stats.warp_collectives),
             static_cast<unsigned long long>(s.stats.atomics),
             static_cast<unsigned long long>(s.stats.parallel_handshakes),
             static_cast<unsigned long long>(s.stats.globalized_bytes));
      if (!s.exec_mode.empty())
        append(out, ",\"exec_mode\":\"%s\",\"lane_loops\":%llu",
               json_escape(s.exec_mode).c_str(),
               static_cast<unsigned long long>(s.stats.sched_lane_loops));
      append(out,
             ",\"modeled_compute_ms\":%.6f,\"modeled_memory_ms\":%.6f,"
             "\"modeled_overhead_ms\":%.6f,\"occupancy\":%.4f",
             s.time.compute_ms, s.time.memory_ms, s.time.overhead_ms,
             s.time.occupancy);
    }
    if (s.kind == SpanKind::kMemcpy || s.kind == SpanKind::kMemset ||
        s.kind == SpanKind::kAlloc || s.kind == SpanKind::kFree)
      append(out, ",\"bytes\":%llu",
             static_cast<unsigned long long>(s.bytes));
    out += "}}";
    if (s.flow_id != 0) {
      // Chrome flow events: "s" leaves the source slice (event record,
      // or the source-device side of a peer copy), "f" lands on the
      // sink slice (binding point "e" = enclosing slice). Peer copies
      // draw the arrow *across* device processes.
      sep();
      append(out,
             "{\"name\":\"%s\",\"cat\":\"flow\",\"ph\":\"%s\","
             "\"id\":%llu,\"pid\":%u,\"tid\":%llu,\"ts\":%.4f%s}",
             s.kind == SpanKind::kMemcpy   ? "peer-copy"
             : s.kind == SpanKind::kGraph  ? "graph-replay"
                                           : "event",
             s.flow_out ? "s" : "f",
             static_cast<unsigned long long>(s.flow_id), s.device_pid,
             static_cast<unsigned long long>(s.track), ts_us,
             s.flow_out ? "" : ",\"bp\":\"e\"");
    }
  }

  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  append(out,
         "\"launches\":%llu,\"memcpys\":%llu,\"memsets\":%llu,"
         "\"event_records\":%llu,\"event_waits\":%llu,"
         "\"allocs\":%llu,\"frees\":%llu,\"graph_replays\":%llu,"
         "\"bytes_copied\":%llu,\"blocks\":%llu,\"threads\":%llu,"
         "\"block_barriers\":%llu,\"warp_collectives\":%llu,"
         "\"atomics\":%llu,\"parallel_handshakes\":%llu,"
         "\"globalized_bytes\":%llu,\"lane_loops\":%llu,"
         "\"modeled_kernel_ms\":%.6f,\"modeled_memcpy_ms\":%.6f,"
         "\"host_wall_ms\":%.6f",
         static_cast<unsigned long long>(counters_.launches),
         static_cast<unsigned long long>(counters_.memcpys),
         static_cast<unsigned long long>(counters_.memsets),
         static_cast<unsigned long long>(counters_.event_records),
         static_cast<unsigned long long>(counters_.event_waits),
         static_cast<unsigned long long>(counters_.allocs),
         static_cast<unsigned long long>(counters_.frees),
         static_cast<unsigned long long>(counters_.graph_replays),
         static_cast<unsigned long long>(counters_.bytes_copied),
         static_cast<unsigned long long>(counters_.blocks),
         static_cast<unsigned long long>(counters_.threads),
         static_cast<unsigned long long>(counters_.block_barriers),
         static_cast<unsigned long long>(counters_.warp_collectives),
         static_cast<unsigned long long>(counters_.atomics),
         static_cast<unsigned long long>(counters_.parallel_handshakes),
         static_cast<unsigned long long>(counters_.globalized_bytes),
         static_cast<unsigned long long>(counters_.lane_loops),
         counters_.modeled_kernel_ms, counters_.modeled_memcpy_ms,
         counters_.host_wall_ms);
  out += "}\n}\n";
  return out;
}

bool Profiler::dump_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace simt
