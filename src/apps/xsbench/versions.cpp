// The four XSBench program versions (Figure 8a/8g bars).
#include <cmath>
#include <stdexcept>

#include "apps/xsbench/xsbench.h"
#include "core/ompx.h"
#include "kl/kl.h"

namespace apps::xsbench {

namespace {

/// Average nuclides touched per lookup, for the roofline declaration.
double avg_nucs_per_lookup(const SimulationData& d) {
  double others = 0.0;
  for (int m = 1; m < d.opt.n_mats; ++m) others += d.num_nucs[m];
  others /= std::max(d.opt.n_mats - 1, 1);
  return 0.5 * d.num_nucs[0] + 0.5 * others;
}

/// Roofline declaration shared by all versions: XSBench is a random-
/// gather kernel — per nuclide a binary search (log2(gp) uncoalesced
/// 8-byte probes) plus two 5-wide xs gridpoints, per lookup the
/// material tables.
simt::KernelCost cost_for(const SimulationData& d) {
  const double nucs = avg_nucs_per_lookup(d);
  const double probes = std::log2(static_cast<double>(d.opt.n_gridpoints));
  simt::KernelCost c;
  c.global_bytes_per_thread = nucs * (probes * 8.0 + 2 * 5 * 8.0 + 12.0) + 16.0;
  c.flops_per_thread = nucs * (probes * 2.0 + 5 * 3.0) + 8.0;
  return c;
}

/// Code-generation profiles, calibrated from the paper's §4.2.1
/// narrative (ompx consistently outperforms both native compilers on
/// both systems; the deltas are memory-path code quality on this
/// gather-bound kernel). See EXPERIMENTS.md §Calibration.
simt::CompilerProfile profile_for(Version v) {
  simt::CompilerProfile p;
  p.regs_per_thread = 40;
  switch (v) {
    case Version::kOmpx:
      p.name = "ompx-proto";
      p.binary_kib = 18.0;
      p.mem_efficiency = 1.00;
      break;
    case Version::kOmp:
      p.name = "llvm-clang-omp";
      p.binary_kib = 24.0;
      p.mem_efficiency = 0.90;
      break;
    case Version::kNative:
      p.name = "llvm-clang";
      p.binary_kib = 8.0;
      p.mem_efficiency = 0.93;
      break;
    case Version::kNativeVendor:
      p.name = "vendor";
      p.binary_kib = 7.0;
      p.mem_efficiency = 0.88;
      break;
  }
  return p;
}

struct DeviceData {
  double* energy;
  double* xs;
  int* num_nucs;
  int* mats;
  double* concs;
};

constexpr int kBlock = 256;

std::uint64_t run_kl(const SimulationData& d, simt::Device& dev, Version v) {
  using namespace kl;
  int index = dev.config().vendor == simt::Vendor::kNvidia ? 0 : 1;
  if (klSetDevice(index) != klSuccess)
    throw std::runtime_error("xsbench: klSetDevice failed");

  DeviceData dd{};
  check(klMalloc(&dd.energy, d.energy.size() * sizeof(double)),
        "klMalloc energy");
  check(klMalloc(&dd.xs, d.xs.size() * sizeof(double)), "klMalloc xs");
  check(klMalloc(&dd.num_nucs, d.num_nucs.size() * sizeof(int)),
        "klMalloc num_nucs");
  check(klMalloc(&dd.mats, d.mats.size() * sizeof(int)), "klMalloc mats");
  check(klMalloc(&dd.concs, d.concs.size() * sizeof(double)),
        "klMalloc concs");
  check(klMemcpy(dd.energy, d.energy.data(), d.energy.size() * sizeof(double),
           klMemcpyHostToDevice),
        "klMemcpy energy");
  check(klMemcpy(dd.xs, d.xs.data(), d.xs.size() * sizeof(double),
           klMemcpyHostToDevice),
        "klMemcpy xs");
  check(klMemcpy(dd.num_nucs, d.num_nucs.data(),
                 d.num_nucs.size() * sizeof(int), klMemcpyHostToDevice),
        "klMemcpy num_nucs");
  check(klMemcpy(dd.mats, d.mats.data(), d.mats.size() * sizeof(int),
           klMemcpyHostToDevice),
        "klMemcpy mats");
  check(klMemcpy(dd.concs, d.concs.data(), d.concs.size() * sizeof(double),
           klMemcpyHostToDevice),
        "klMemcpy concs");

  std::uint64_t* d_hash = nullptr;
  check(klMalloc(&d_hash, sizeof(std::uint64_t)), "klMalloc hash");
  check(klMemset(d_hash, 0, sizeof(std::uint64_t)), "klMemset hash");

  const std::int64_t n = d.opt.lookups;
  const int gp = d.opt.n_gridpoints, mx = d.opt.max_nucs_per_mat,
            nm = d.opt.n_mats;
  KernelAttrs attrs;
  attrs.name = "xsbench_event";
  attrs.mode = simt::ExecMode::kDirect;
  attrs.profile = profile_for(v);
  attrs.cost = cost_for(d);
  const DeviceData cd = dd;
  check(
      launch({static_cast<unsigned>(simt::ceil_div(n, kBlock))}, {kBlock}, 0,
         nullptr, attrs, [=] {
           const std::int64_t i =
               static_cast<std::int64_t>(global_thread_id_x());
           if (i >= n) return;
           const int arg =
               lookup_one(static_cast<std::uint64_t>(i), cd.energy, cd.xs,
                          cd.num_nucs, cd.mats, cd.concs, gp, mx, nm);
           const std::uint64_t contrib =
               mix64(static_cast<std::uint64_t>(i) ^
                     (static_cast<std::uint64_t>(arg) + 1));
           // XOR hash via CAS loop (order-independent, race-free).
           std::uint64_t seen = *d_hash;
           while (true) {
             const std::uint64_t prev =
                 atomicCAS(d_hash, seen, seen ^ contrib);
             if (prev == seen) break;
             seen = prev;
           }
         }),
      "xsbench_event launch");
  check(klDeviceSynchronize(), "klDeviceSynchronize");
  std::uint64_t h = 0;
  check(klMemcpy(&h, d_hash, sizeof(h), klMemcpyDeviceToHost), "klMemcpy D2H");
  for (void* p : {static_cast<void*>(dd.energy), static_cast<void*>(dd.xs),
                  static_cast<void*>(dd.num_nucs), static_cast<void*>(dd.mats),
                  static_cast<void*>(dd.concs), static_cast<void*>(d_hash)})
    check(klFree(p), "klFree");
  return h;
}

std::uint64_t run_ompx(const SimulationData& d, simt::Device& dev) {
  // The port the paper describes: the CUDA source after "text
  // replacement" — same SIMT structure through ompx APIs.
  ompx::set_default_device(dev);
  auto* energy = ompx::malloc_n<double>(d.energy.size());
  auto* xs = ompx::malloc_n<double>(d.xs.size());
  auto* num_nucs = ompx::malloc_n<int>(d.num_nucs.size());
  auto* mats = ompx::malloc_n<int>(d.mats.size());
  auto* concs = ompx::malloc_n<double>(d.concs.size());
  auto* hash = ompx::malloc_n<std::uint64_t>(1);
  OMPX_REQUIRE(ompx_memcpy(energy, d.energy.data(), d.energy.size() * sizeof(double)));
  OMPX_REQUIRE(ompx_memcpy(xs, d.xs.data(), d.xs.size() * sizeof(double)));
  OMPX_REQUIRE(ompx_memcpy(num_nucs, d.num_nucs.data(), d.num_nucs.size() * sizeof(int)));
  OMPX_REQUIRE(ompx_memcpy(mats, d.mats.data(), d.mats.size() * sizeof(int)));
  OMPX_REQUIRE(ompx_memcpy(concs, d.concs.data(), d.concs.size() * sizeof(double)));
  OMPX_REQUIRE(ompx_memset(hash, 0, sizeof(std::uint64_t)));

  const std::int64_t n = d.opt.lookups;
  const int gp = d.opt.n_gridpoints, mx = d.opt.max_nucs_per_mat,
            nm = d.opt.n_mats;
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(simt::ceil_div(n, kBlock))};
  spec.thread_limit = {kBlock};
  spec.mode = d.opt.mode;
  spec.name = "xsbench_event";
  spec.profile = profile_for(Version::kOmpx);
  spec.cost = cost_for(d);
  spec.device = &dev;
  ompx::launch(spec, [=] {
    const std::int64_t i = ompx::global_thread_id();
    if (i >= n) return;
    const int arg = lookup_one(static_cast<std::uint64_t>(i), energy, xs,
                               num_nucs, mats, concs, gp, mx, nm);
    const std::uint64_t contrib = mix64(static_cast<std::uint64_t>(i) ^
                                        (static_cast<std::uint64_t>(arg) + 1));
    std::uint64_t seen = *hash;
    while (true) {
      const std::uint64_t prev = simt::atomic_cas(hash, seen, seen ^ contrib);
      if (prev == seen) break;
      seen = prev;
    }
  }).wait();
  const std::uint64_t h = *hash;
  for (void* p : {static_cast<void*>(energy), static_cast<void*>(xs),
                  static_cast<void*>(num_nucs), static_cast<void*>(mats),
                  static_cast<void*>(concs), static_cast<void*>(hash)})
    ompx::free_on(dev, p);
  return h;
}

std::uint64_t run_omp(const SimulationData& d, simt::Device& dev) {
  // The upstream OpenMP target-offloading port. It reproduces the
  // defect the paper reports ("the benchmark reporting an invalid
  // checksum"): the port derives each lookup's RNG seed from the
  // OpenMP thread enumeration rather than the loop index, so its
  // sampled particle population differs from the canonical versions
  // and the verification hash cannot match.
  std::uint64_t h = 0;
  omp::TargetClauses c;
  c.device = &dev;
  c.thread_limit = kBlock;
  c.name = "xsbench_event_omp";
  c.profile = profile_for(Version::kOmp);
  c.cost = cost_for(d);
  c.maps = {
      omp::map_to(d.energy.data(), d.energy.size() * sizeof(double)),
      omp::map_to(d.xs.data(), d.xs.size() * sizeof(double)),
      omp::map_to(d.num_nucs.data(), d.num_nucs.size() * sizeof(int)),
      omp::map_to(d.mats.data(), d.mats.size() * sizeof(int)),
      omp::map_to(d.concs.data(), d.concs.size() * sizeof(double)),
      omp::map_tofrom(&h, sizeof(h)),
  };
  const std::int64_t n = d.opt.lookups;
  const int gp = d.opt.n_gridpoints, mx = d.opt.max_nucs_per_mat,
            nm = d.opt.n_mats;
  omp::target_teams_distribute_parallel_for(c, n, [&](omp::DeviceEnv& env) {
    const double* energy = env.translate(d.energy.data());
    const double* xs = env.translate(d.xs.data());
    const int* num_nucs = env.translate(d.num_nucs.data());
    const int* mats = env.translate(d.mats.data());
    const double* concs = env.translate(d.concs.data());
    std::uint64_t* hash = env.translate(&h);
    return [=](std::int64_t i) {
      // The defective seeding: thread-centric instead of iteration-
      // centric (preserved from the upstream port).
      const std::uint64_t seed =
          static_cast<std::uint64_t>(omp::team_num()) * 1000003ull +
          static_cast<std::uint64_t>(omp::thread_num()) * 65537ull +
          static_cast<std::uint64_t>(i / (omp::num_threads() *
                                          static_cast<std::int64_t>(
                                              omp::num_teams())));
      const int arg =
          lookup_one(seed, energy, xs, num_nucs, mats, concs, gp, mx, nm);
      const std::uint64_t contrib =
          mix64(static_cast<std::uint64_t>(i) ^
                (static_cast<std::uint64_t>(arg) + 1));
      std::uint64_t seen = *hash;
      while (true) {
        const std::uint64_t prev =
            simt::atomic_cas(hash, seen, seen ^ contrib);
        if (prev == seen) break;
        seen = prev;
      }
    };
  });
  return h;
}

}  // namespace

RunResult run(Version v, simt::Device& dev, const Options& opt) {
  const SimulationData d = make_data(opt);
  const std::uint64_t ref = reference_hash(d);

  dev.clear_launch_log();
  RunResult r;
  r.app = "XSBench";
  switch (v) {
    case Version::kOmpx:
      r.checksum = run_ompx(d, dev);
      break;
    case Version::kOmp:
      r.checksum = run_omp(d, dev);
      break;
    case Version::kNative:
    case Version::kNativeVendor:
      r.checksum = run_kl(d, dev, v);
      break;
  }
  r.kernel_ms = modeled_kernel_ms(dev);
  r.valid = r.checksum == ref;
  if (!r.valid) r.note = "invalid checksum (excluded, as in the paper)";
  return r;
}

}  // namespace apps::xsbench
