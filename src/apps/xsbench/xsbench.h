// XSBench (Tramm et al., PHYSOR'14): the OpenMC proxy computing
// continuous-energy macroscopic neutron cross-section lookups. The
// paper runs the event-based variant (`-m event`): one independent
// lookup per GPU thread, dominated by random gather loads over the
// nuclide grids — the memory-intensive end of the pair of OpenMC
// proxies (RSBench is the compute-bound one).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"

namespace apps::xsbench {

struct Options {
  int n_nuclides = 32;       ///< nuclides in the problem
  int n_gridpoints = 1024;   ///< energy gridpoints per nuclide
  int n_mats = 12;           ///< materials
  int max_nucs_per_mat = 12; ///< densest material size
  std::int64_t lookups = 50000;  ///< events (paper CLI: -m event)
  /// Launch mode of the ompx version's event kernel. Direct by default
  /// (sync-free, one plain call per thread); tests flip it to
  /// cooperative to prove the analyzer's convergent verdict routes the
  /// kernel onto the lane-loop fast path.
  simt::ExecMode mode = simt::ExecMode::kDirect;
};

/// Flattened simulation data (SoA, as XSBench lays it out).
struct SimulationData {
  Options opt;
  std::vector<double> energy;   ///< [nuc][gp] ascending per nuclide
  std::vector<double> xs;       ///< [nuc][gp][5] micro cross sections
  std::vector<int> num_nucs;    ///< [mat]
  std::vector<int> mats;        ///< [mat][max_nucs] nuclide ids
  std::vector<double> concs;    ///< [mat][max_nucs] concentrations
};

/// Deterministic problem construction (same data for every version).
SimulationData make_data(const Options& opt);

/// One macroscopic XS lookup: samples (mat, energy) from `seed`,
/// accumulates the 5 macroscopic cross sections over the material's
/// nuclides (binary search + linear interpolation per nuclide), and
/// returns the index of the largest one — XSBench's verification value.
/// Pure function shared by the device kernels and the host reference.
int lookup_one(std::uint64_t seed, const double* energy, const double* xs,
               const int* num_nucs, const int* mats, const double* concs,
               int n_gridpoints, int max_nucs, int n_mats);

/// The benchmark's verification hash over all lookups, host-computed
/// with the canonical (loop-index) seeding.
std::uint64_t reference_hash(const SimulationData& data);

/// Runs one version on one device (the Figure 8a/8g cell).
RunResult run(Version v, simt::Device& dev, const Options& opt = {});

}  // namespace apps::xsbench
