#include "apps/xsbench/xsbench.h"

#include <algorithm>
#include <cmath>

namespace apps::xsbench {

SimulationData make_data(const Options& opt) {
  SimulationData d;
  d.opt = opt;
  const int nn = opt.n_nuclides, gp = opt.n_gridpoints;

  // Per-nuclide ascending energy grids with nuclide-dependent spacing
  // (XSBench's grids differ per nuclide so the binary searches diverge).
  d.energy.resize(static_cast<std::size_t>(nn) * gp);
  d.xs.resize(static_cast<std::size_t>(nn) * gp * 5);
  for (int n = 0; n < nn; ++n) {
    double e = 1e-11;  // MeV floor
    for (int g = 0; g < gp; ++g) {
      e += uniform01(mix64(n) ^ static_cast<std::uint64_t>(g)) / gp + 1e-9;
      d.energy[static_cast<std::size_t>(n) * gp + g] = e;
      for (int c = 0; c < 5; ++c)
        d.xs[(static_cast<std::size_t>(n) * gp + g) * 5 + c] =
            uniform01(mix64(n * 7919) ^ mix64(g * 31 + c));
    }
  }

  // Materials: first material is densest (the "fuel" pattern).
  d.num_nucs.resize(opt.n_mats);
  d.mats.assign(static_cast<std::size_t>(opt.n_mats) * opt.max_nucs_per_mat, 0);
  d.concs.assign(static_cast<std::size_t>(opt.n_mats) * opt.max_nucs_per_mat, 0.0);
  for (int m = 0; m < opt.n_mats; ++m) {
    const int count =
        m == 0 ? opt.max_nucs_per_mat
               : 2 + static_cast<int>(uniform01(mix64(m)) *
                                      (opt.max_nucs_per_mat - 2));
    d.num_nucs[m] = std::min(count, opt.max_nucs_per_mat);
    for (int i = 0; i < d.num_nucs[m]; ++i) {
      d.mats[static_cast<std::size_t>(m) * opt.max_nucs_per_mat + i] =
          static_cast<int>(uniform01(mix64(m * 131 + i)) * nn) % nn;
      d.concs[static_cast<std::size_t>(m) * opt.max_nucs_per_mat + i] =
          0.1 + uniform01(mix64(m * 257 + i));
    }
  }
  return d;
}

int lookup_one(std::uint64_t seed, const double* energy, const double* xs,
               const int* num_nucs, const int* mats, const double* concs,
               int n_gridpoints, int max_nucs, int n_mats) {
  // Sample the particle: material biased toward material 0 (fuel gets
  // ~50% of lookups in XSBench) and a uniform energy.
  const double m_sample = uniform01(seed);
  const int mat = m_sample < 0.5
                      ? 0
                      : 1 + static_cast<int>(uniform01(mix64(seed)) *
                                             (n_mats - 1)) % (n_mats - 1);
  const double e = uniform01(seed ^ 0xabcdef123456ull);

  double macro[5] = {0, 0, 0, 0, 0};
  const int nn = num_nucs[mat];
  for (int i = 0; i < nn; ++i) {
    const int nuc = mats[mat * max_nucs + i];
    const double conc = concs[mat * max_nucs + i];
    const double* grid = energy + static_cast<std::size_t>(nuc) * n_gridpoints;
    // Binary search for the bracketing gridpoints. The nuclide grids
    // span slightly different ranges; clamp into [0, gp-2].
    const double target = e * grid[n_gridpoints - 1];
    int lo = 0, hi = n_gridpoints - 1;
    while (hi - lo > 1) {
      const int mid = (lo + hi) / 2;
      if (grid[mid] < target) lo = mid;
      else hi = mid;
    }
    const double e0 = grid[lo], e1 = grid[lo + 1];
    const double f = e1 > e0 ? (target - e0) / (e1 - e0) : 0.0;
    const double* x0 =
        xs + (static_cast<std::size_t>(nuc) * n_gridpoints + lo) * 5;
    const double* x1 = x0 + 5;
    for (int c = 0; c < 5; ++c)
      macro[c] += conc * (x0[c] + f * (x1[c] - x0[c]));
  }

  int arg = 0;
  for (int c = 1; c < 5; ++c)
    if (macro[c] > macro[arg]) arg = c;
  return arg;
}

std::uint64_t reference_hash(const SimulationData& d) {
  std::uint64_t h = 0;
  for (std::int64_t i = 0; i < d.opt.lookups; ++i) {
    const int v = lookup_one(static_cast<std::uint64_t>(i), d.energy.data(),
                             d.xs.data(), d.num_nucs.data(), d.mats.data(),
                             d.concs.data(), d.opt.n_gridpoints,
                             d.opt.max_nucs_per_mat, d.opt.n_mats);
    h ^= mix64(static_cast<std::uint64_t>(i) ^
               (static_cast<std::uint64_t>(v) + 1));
  }
  return h;
}

}  // namespace apps::xsbench
