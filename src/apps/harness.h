// Shared benchmark-application harness.
//
// Every HeCBench port in apps/ exposes the same surface: a set of
// program versions (the paper's four bars), a deterministic workload,
// kernel-time measurement via the engine's launch log, and the
// benchmark's own verification. The harness runs a (version, device)
// pair and returns the row a figure printer consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simt/simt.h"

namespace apps {

/// The paper's four program versions (Figure 8's four bars).
enum class Version {
  kOmpx,          ///< OpenMP kernel language (this work)
  kOmp,           ///< classic OpenMP target offloading
  kNative,        ///< CUDA/HIP compiled with LLVM/Clang
  kNativeVendor,  ///< CUDA/HIP compiled with nvcc/hipcc
};

const char* version_name(Version v);
/// The per-device bar label the paper uses ("cuda" vs "hip", ...).
std::string bar_label(Version v, const simt::Device& dev);

/// One benchmark run's outcome.
struct RunResult {
  std::string app;
  std::string version;   ///< bar label
  std::string device;
  double kernel_ms = 0.0;     ///< modeled device time the app reports
  double wall_ms = 0.0;       ///< host wall time of the simulation
  std::uint64_t checksum = 0; ///< the benchmark's verification value
  bool valid = false;         ///< checksum matched the reference
  std::string note;
};

/// An application registered with the harness.
struct AppDesc {
  std::string name;
  std::string description;    ///< Fig. 6 row
  std::string paper_cli;      ///< Fig. 6 command line
  std::string scaled_params;  ///< what this reproduction runs
  /// Runs one version on one device and fills kernel_ms/checksum.
  std::function<RunResult(Version, simt::Device&)> run;
};

/// Registry of the six ported benchmarks (order matches Fig. 6/8).
const std::vector<AppDesc>& registry();

/// Executes one (app, version, device) cell with log bookkeeping and
/// wall-time measurement around the app's own run function.
RunResult run_cell(const AppDesc& app, Version v, simt::Device& dev);

/// Utility: sum of modeled kernel time currently in the device log.
double modeled_kernel_ms(simt::Device& dev);

/// Deterministic 64-bit mix (splitmix64) used by app RNGs and hashes.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0,1) from a seed (deterministic across versions).
constexpr double uniform01(std::uint64_t seed) {
  return static_cast<double>(mix64(seed) >> 11) * 0x1.0p-53;
}

}  // namespace apps
