// Paper-CLI parsing for the six benchmark ports.
//
// Each HeCBench application has its own command line (Figure 6). These
// parsers accept those exact argument vectors and map them onto the
// port's Options. With `scaled = true` (the default) the parsed problem
// is divided down by each app's documented scale factor so it runs in
// seconds on the CPU-hosted engine; `scaled = false` keeps paper-scale
// values (functional, but minutes-to-hours of simulation).
#pragma once

#include <string>
#include <vector>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"

namespace apps::cli {

using Args = std::vector<std::string>;

/// XSBench: `-m event [-l lookups] [-g gridpoints] [-s small|large]`.
/// Only the event-based method is supported (the paper's `-m event`).
xsbench::Options parse_xsbench(const Args& args, bool scaled = true);

/// RSBench: `-m event [-l lookups] [-p poles] [-w windows]`.
rsbench::Options parse_rsbench(const Args& args, bool scaled = true);

/// SU3: `-i iterations -l lattice_dim -t threads [-v level] [-w warmups]`
/// (sites = lattice_dim^4; the paper's `-l 32 -t 128`).
su3::Options parse_su3(const Args& args, bool scaled = true);

/// AIDW: `<dnum_k> <check> <inum_k>` — data/interpolated point counts in
/// thousands (the paper's `100 0 100`), check flag ignored.
aidw::Options parse_aidw(const Args& args, bool scaled = true);

/// Adam: `<n> <timesteps> <repeat>` (the paper's `10000 200 100`).
adam::Options parse_adam(const Args& args, bool scaled = true);

/// Stencil-1D: `<n> <iterations>` (the paper's `134217728 1000`).
stencil1d::Options parse_stencil1d(const Args& args, bool scaled = true);

}  // namespace apps::cli
