#include <cmath>

#include "apps/rsbench/rsbench.h"

namespace apps::rsbench {

SimulationData make_data(const Options& opt) {
  SimulationData d;
  d.opt = opt;
  const int nn = opt.n_nuclides;

  d.poles.resize(static_cast<std::size_t>(nn) * opt.n_poles);
  for (int n = 0; n < nn; ++n) {
    for (int p = 0; p < opt.n_poles; ++p) {
      const std::uint64_t s = mix64(n * 1000003ull + p);
      Pole& pl = d.poles[static_cast<std::size_t>(n) * opt.n_poles + p];
      // Pole energies ascend through (0,1) so window -> pole ranges are
      // physically ordered, as RSBench's generator arranges.
      const double e = (p + uniform01(s)) / opt.n_poles;
      pl.mp_ea = {e, 0.01 + 0.05 * uniform01(mix64(s))};
      pl.mp_rt = {uniform01(s ^ 0x1111) - 0.5, uniform01(s ^ 0x2222) - 0.5};
      pl.mp_ra = {uniform01(s ^ 0x3333) - 0.5, uniform01(s ^ 0x4444) - 0.5};
      pl.mp_rf = {uniform01(s ^ 0x5555) - 0.5, uniform01(s ^ 0x6666) - 0.5};
      pl.l_value = static_cast<short>(mix64(s ^ 0x7777) % 4);
    }
  }

  d.windows.resize(static_cast<std::size_t>(nn) * opt.n_windows);
  const int ppw = opt.n_poles / opt.n_windows;
  for (int n = 0; n < nn; ++n) {
    for (int w = 0; w < opt.n_windows; ++w) {
      const std::uint64_t s = mix64(n * 7919ull + w);
      Window& win = d.windows[static_cast<std::size_t>(n) * opt.n_windows + w];
      win.t_fit = uniform01(s) * 0.1;
      win.a_fit = uniform01(mix64(s)) * 0.1;
      win.f_fit = uniform01(mix64(mix64(s))) * 0.1;
      win.start = w * ppw;
      win.end = (w + 1) * ppw;
    }
  }

  d.pseudo_k0rs.resize(static_cast<std::size_t>(nn) * 4);
  for (int n = 0; n < nn; ++n)
    for (int l = 0; l < 4; ++l)
      d.pseudo_k0rs[static_cast<std::size_t>(n) * 4 + l] =
          0.5 + uniform01(mix64(n * 31 + l));

  // Materials: same composition scheme as XSBench (fuel material
  // densest, sampled half the time).
  d.num_nucs.resize(opt.n_mats);
  d.mats.assign(static_cast<std::size_t>(opt.n_mats) * opt.max_nucs_per_mat, 0);
  d.concs.assign(static_cast<std::size_t>(opt.n_mats) * opt.max_nucs_per_mat,
                 0.0);
  for (int m = 0; m < opt.n_mats; ++m) {
    const int count =
        m == 0 ? opt.max_nucs_per_mat
               : 2 + static_cast<int>(uniform01(mix64(m)) *
                                      (opt.max_nucs_per_mat - 2));
    d.num_nucs[m] = count;
    for (int i = 0; i < count; ++i) {
      d.mats[static_cast<std::size_t>(m) * opt.max_nucs_per_mat + i] =
          static_cast<int>(mix64(m * 131ull + i) % nn);
      d.concs[static_cast<std::size_t>(m) * opt.max_nucs_per_mat + i] =
          0.1 + uniform01(mix64(m * 257ull + i));
    }
  }
  return d;
}

namespace {

/// RSBench's calculate_sig_T: the per-nuclide phase factors, one per
/// angular momentum channel. This is the scratch array whose placement
/// (registers / local memory / shared) differentiates the versions.
void calculate_sig_t(int nuc, double energy, const double* pseudo_k0rs,
                     std::complex<double>* sig_t_factors) {
  for (int l = 0; l < 4; ++l) {
    const double phi_raw = pseudo_k0rs[nuc * 4 + l] * std::sqrt(energy);
    double phi = phi_raw;
    if (l == 1)
      phi -= std::atan(phi);
    else if (l == 2)
      phi -= std::atan(3.0 * phi / (3.0 - phi * phi));
    else if (l == 3)
      phi -= std::atan(phi * (15.0 - phi * phi) / (15.0 - 6.0 * phi * phi));
    phi *= 2.0;
    sig_t_factors[l] = {std::cos(phi), -std::sin(phi)};
  }
}

/// RSBench's fast_nuclear_W stand-in: the Faddeeva-style kernel applied
/// per pole (the hot complex arithmetic).
std::complex<double> faddeeva_like(std::complex<double> z) {
  // Pade-like rational form: cheap but non-trivial complex math.
  const std::complex<double> i(0.0, 1.0);
  const std::complex<double> z2 = z * z;
  return (i * z + 0.5) / (z2 - z + std::complex<double>(0.75, 0.1));
}

}  // namespace

int lookup_one(std::uint64_t seed, const Pole* poles, const Window* windows,
               const double* pseudo_k0rs, const int* num_nucs, const int* mats,
               const double* concs, const Options& opt,
               std::complex<double>* sig_t_factors) {
  const double m_sample = uniform01(seed);
  const int mat =
      m_sample < 0.5
          ? 0
          : 1 + static_cast<int>(uniform01(mix64(seed)) * (opt.n_mats - 1)) %
                    (opt.n_mats - 1);
  const double e = 1e-6 + uniform01(seed ^ 0xabcdef123456ull) * 0.9999;

  double macro[4] = {0, 0, 0, 0};
  const int nn = num_nucs[mat];
  for (int idx = 0; idx < nn; ++idx) {
    const int nuc = mats[mat * opt.max_nucs_per_mat + idx];
    const double conc = concs[mat * opt.max_nucs_per_mat + idx];

    calculate_sig_t(nuc, e, pseudo_k0rs, sig_t_factors);

    const int w = static_cast<int>(e * opt.n_windows) % opt.n_windows;
    const Window& win =
        windows[static_cast<std::size_t>(nuc) * opt.n_windows + w];
    double sig_t = win.t_fit * e, sig_a = win.a_fit * e, sig_f = win.f_fit * e;

    const double sqrt_e = std::sqrt(e);
    for (int p = win.start; p < win.end; ++p) {
      const Pole& pl = poles[static_cast<std::size_t>(nuc) * opt.n_poles + p];
      const std::complex<double> z = (pl.mp_ea - sqrt_e) * 20.0;
      const std::complex<double> fad = faddeeva_like(z);
      const std::complex<double> psi = fad * sig_t_factors[pl.l_value];
      sig_t += (pl.mp_rt * psi).real();
      sig_a += (pl.mp_ra * psi).real();
      sig_f += (pl.mp_rf * psi).real();
    }
    macro[0] += conc * sig_t;
    macro[1] += conc * sig_a;
    macro[2] += conc * sig_f;
    macro[3] += conc * (sig_t - sig_a);  // elastic
  }

  int arg = 0;
  for (int c = 1; c < 4; ++c)
    if (macro[c] > macro[arg]) arg = c;
  return arg;
}

std::uint64_t reference_hash(const SimulationData& d) {
  std::uint64_t h = 0;
  std::complex<double> scratch[4];
  for (std::int64_t i = 0; i < d.opt.lookups; ++i) {
    const int v = lookup_one(static_cast<std::uint64_t>(i), d.poles.data(),
                             d.windows.data(), d.pseudo_k0rs.data(),
                             d.num_nucs.data(), d.mats.data(), d.concs.data(),
                             d.opt, scratch);
    h ^= mix64(static_cast<std::uint64_t>(i) ^
               (static_cast<std::uint64_t>(v) + 1));
  }
  return h;
}

}  // namespace apps::rsbench
