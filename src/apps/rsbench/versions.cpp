// The four RSBench program versions (Figure 8b/8h bars).
#include <cmath>
#include <stdexcept>

#include "apps/rsbench/rsbench.h"
#include "core/ompx.h"
#include "kl/kl.h"

namespace apps::rsbench {

namespace {

double avg_nucs_per_lookup(const SimulationData& d) {
  double others = 0.0;
  for (int m = 1; m < d.opt.n_mats; ++m) others += d.num_nucs[m];
  others /= std::max(d.opt.n_mats - 1, 1);
  return 0.5 * d.num_nucs[0] + 0.5 * others;
}

/// Roofline: compute-heavy complex arithmetic per pole; the pole/window
/// tables are small enough to cache well (effective DRAM traffic is the
/// calibrated cached-gather estimate); the sig_t_factors scratch is the
/// per-thread spill whose placement differs per version (§4.2.2).
/// FP64 operations are counted as 2 units (half-rate on both parts).
simt::KernelCost base_cost(const SimulationData& d) {
  const double nucs = avg_nucs_per_lookup(d);
  const int ppw = d.opt.n_poles / d.opt.n_windows;
  simt::KernelCost c;
  c.flops_per_thread = nucs * (4 * 30.0 + ppw * 80.0) * 2.0;
  c.global_bytes_per_thread = nucs * 60.0 + 24.0;  // cached gathers
  c.local_spill_bytes_per_thread = nucs * (64.0 + ppw * 16.0) * 0.3;
  return c;
}

/// Code-gen profiles from the paper's profiling narrative: the omp
/// version uses 162 registers and 2 KB of shared memory (heap-to-shared
/// moved its scratch); the native versions spill the scratch to local
/// memory; ompx keeps it in registers. EXPERIMENTS.md §Calibration.
struct VersionTraits {
  simt::CompilerProfile profile;
  bool spill_in_registers;
  bool heap_to_shared;  ///< omp runtime optimization (sim-a100 only)
};

VersionTraits traits_for(Version v, const simt::Device& dev) {
  VersionTraits t{};
  switch (v) {
    case Version::kOmpx:
      t.profile.name = "ompx-proto";
      t.profile.regs_per_thread = 96;
      t.profile.binary_kib = 20.0;
      t.spill_in_registers = true;
      break;
    case Version::kOmp:
      t.profile.name = "llvm-clang-omp";
      t.profile.regs_per_thread = 162;      // paper §4.2.2
      t.profile.static_smem_bytes = 2048;   // paper §4.2.2
      t.profile.binary_kib = 26.0;
      t.heap_to_shared = dev.config().vendor == simt::Vendor::kNvidia;
      break;
    case Version::kNative:
      t.profile.name = "llvm-clang";
      t.profile.regs_per_thread = 64;
      t.profile.binary_kib = 10.0;
      break;
    case Version::kNativeVendor:
      t.profile.name = "vendor";
      t.profile.regs_per_thread = 70;
      t.profile.binary_kib = 9.0;
      t.profile.compute_efficiency = 0.97;
      break;
  }
  return t;
}

simt::KernelCost cost_for(const SimulationData& d, const VersionTraits& t) {
  simt::KernelCost c = base_cost(d);
  if (t.spill_in_registers) c.local_spill_bytes_per_thread = 0.0;
  return c;
}

struct DeviceData {
  const Pole* poles;
  const Window* windows;
  const double* k0rs;
  const int* num_nucs;
  const int* mats;
  const double* concs;
};

constexpr int kBlock = 128;

/// XOR-accumulate a lookup's hash contribution (order independent).
void xor_into(std::uint64_t* hash, std::uint64_t contrib) {
  std::uint64_t seen = *hash;
  while (true) {
    const std::uint64_t prev = simt::atomic_cas(hash, seen, seen ^ contrib);
    if (prev == seen) break;
    seen = prev;
  }
}

std::uint64_t run_kl(const SimulationData& d, simt::Device& dev, Version v) {
  using namespace kl;
  check(klSetDevice(dev.config().vendor == simt::Vendor::kNvidia ? 0 : 1),
        "klSetDevice");
  const VersionTraits t = traits_for(v, dev);

  Pole* poles = nullptr;
  Window* windows = nullptr;
  double *k0rs = nullptr, *concs = nullptr;
  int *num_nucs = nullptr, *mats = nullptr;
  std::uint64_t* hash = nullptr;
  check(klMalloc(&poles, d.poles.size() * sizeof(Pole)), "klMalloc poles");
  check(klMalloc(&windows, d.windows.size() * sizeof(Window)),
        "klMalloc windows");
  check(klMalloc(&k0rs, d.pseudo_k0rs.size() * sizeof(double)),
        "klMalloc k0rs");
  check(klMalloc(&num_nucs, d.num_nucs.size() * sizeof(int)),
        "klMalloc num_nucs");
  check(klMalloc(&mats, d.mats.size() * sizeof(int)), "klMalloc mats");
  check(klMalloc(&concs, d.concs.size() * sizeof(double)), "klMalloc concs");
  check(klMalloc(&hash, sizeof(std::uint64_t)), "klMalloc hash");
  check(klMemcpy(poles, d.poles.data(), d.poles.size() * sizeof(Pole),
           klMemcpyHostToDevice),
        "klMemcpy poles");
  check(klMemcpy(windows, d.windows.data(), d.windows.size() * sizeof(Window),
           klMemcpyHostToDevice),
        "klMemcpy windows");
  check(klMemcpy(k0rs, d.pseudo_k0rs.data(),
                 d.pseudo_k0rs.size() * sizeof(double), klMemcpyHostToDevice),
        "klMemcpy k0rs");
  check(klMemcpy(num_nucs, d.num_nucs.data(), d.num_nucs.size() * sizeof(int),
           klMemcpyHostToDevice),
        "klMemcpy num_nucs");
  check(klMemcpy(mats, d.mats.data(), d.mats.size() * sizeof(int),
           klMemcpyHostToDevice),
        "klMemcpy mats");
  check(klMemcpy(concs, d.concs.data(), d.concs.size() * sizeof(double),
           klMemcpyHostToDevice),
        "klMemcpy concs");
  check(klMemset(hash, 0, sizeof(std::uint64_t)), "klMemset hash");

  const Options opt = d.opt;
  const std::int64_t n = opt.lookups;
  KernelAttrs attrs;
  attrs.name = "rsbench_event";
  attrs.mode = simt::ExecMode::kDirect;
  attrs.profile = t.profile;
  attrs.cost = cost_for(d, t);
  const DeviceData dd{poles, windows, k0rs, num_nucs, mats, concs};
  check(
      launch({static_cast<unsigned>(simt::ceil_div(n, kBlock))}, {kBlock}, 0,
         nullptr, attrs, [=] {
           const std::int64_t i =
               static_cast<std::int64_t>(global_thread_id_x());
           if (i >= n) return;
           std::complex<double> scratch[4];  // spills to local memory
           const int arg = lookup_one(static_cast<std::uint64_t>(i), dd.poles,
                                      dd.windows, dd.k0rs, dd.num_nucs,
                                      dd.mats, dd.concs, opt, scratch);
           xor_into(hash, mix64(static_cast<std::uint64_t>(i) ^
                                (static_cast<std::uint64_t>(arg) + 1)));
         }),
      "rsbench_event launch");
  check(klDeviceSynchronize(), "klDeviceSynchronize");
  std::uint64_t h = 0;
  check(klMemcpy(&h, hash, sizeof(h), klMemcpyDeviceToHost), "klMemcpy D2H");
  for (void* p :
       {static_cast<void*>(poles), static_cast<void*>(windows),
        static_cast<void*>(k0rs), static_cast<void*>(num_nucs),
        static_cast<void*>(mats), static_cast<void*>(concs),
        static_cast<void*>(hash)})
    check(klFree(p), "klFree");
  return h;
}

std::uint64_t run_ompx(const SimulationData& d, simt::Device& dev) {
  ompx::set_default_device(dev);
  const VersionTraits t = traits_for(Version::kOmpx, dev);
  auto* poles = ompx::malloc_n<Pole>(d.poles.size());
  auto* windows = ompx::malloc_n<Window>(d.windows.size());
  auto* k0rs = ompx::malloc_n<double>(d.pseudo_k0rs.size());
  auto* num_nucs = ompx::malloc_n<int>(d.num_nucs.size());
  auto* mats = ompx::malloc_n<int>(d.mats.size());
  auto* concs = ompx::malloc_n<double>(d.concs.size());
  auto* hash = ompx::malloc_n<std::uint64_t>(1);
  OMPX_REQUIRE(ompx_memcpy(poles, d.poles.data(), d.poles.size() * sizeof(Pole)));
  OMPX_REQUIRE(ompx_memcpy(windows, d.windows.data(), d.windows.size() * sizeof(Window)));
  OMPX_REQUIRE(ompx_memcpy(k0rs, d.pseudo_k0rs.data(),
              d.pseudo_k0rs.size() * sizeof(double)));
  OMPX_REQUIRE(ompx_memcpy(num_nucs, d.num_nucs.data(), d.num_nucs.size() * sizeof(int)));
  OMPX_REQUIRE(ompx_memcpy(mats, d.mats.data(), d.mats.size() * sizeof(int)));
  OMPX_REQUIRE(ompx_memcpy(concs, d.concs.data(), d.concs.size() * sizeof(double)));
  OMPX_REQUIRE(ompx_memset(hash, 0, sizeof(std::uint64_t)));

  const Options opt = d.opt;
  const std::int64_t n = opt.lookups;
  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(simt::ceil_div(n, kBlock))};
  spec.thread_limit = {kBlock};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "rsbench_event";
  spec.profile = t.profile;
  spec.cost = cost_for(d, t);
  spec.device = &dev;
  const DeviceData dd{poles, windows, k0rs, num_nucs, mats, concs};
  ompx::launch(spec, [=] {
    const std::int64_t i = ompx::global_thread_id();
    if (i >= n) return;
    std::complex<double> scratch[4];  // stays in registers (ompx codegen)
    const int arg =
        lookup_one(static_cast<std::uint64_t>(i), dd.poles, dd.windows,
                   dd.k0rs, dd.num_nucs, dd.mats, dd.concs, opt, scratch);
    xor_into(hash, mix64(static_cast<std::uint64_t>(i) ^
                         (static_cast<std::uint64_t>(arg) + 1)));
  }).wait();
  const std::uint64_t h = *hash;
  for (void* p :
       {static_cast<void*>(poles), static_cast<void*>(windows),
        static_cast<void*>(k0rs), static_cast<void*>(num_nucs),
        static_cast<void*>(mats), static_cast<void*>(concs),
        static_cast<void*>(hash)})
    ompx::free_on(dev, p);
  return h;
}

std::uint64_t run_omp(const SimulationData& d, simt::Device& dev) {
  const VersionTraits t = traits_for(Version::kOmp, dev);
  std::uint64_t h = 0;
  omp::TargetClauses c;
  c.device = &dev;
  c.thread_limit = kBlock;
  c.name = "rsbench_event_omp";
  c.profile = t.profile;
  c.cost = cost_for(d, t);
  c.spill_in_shared = t.heap_to_shared;  // §4.2.2 heap-to-shared opt
  c.maps = {
      omp::map_to(d.poles.data(), d.poles.size() * sizeof(Pole)),
      omp::map_to(d.windows.data(), d.windows.size() * sizeof(Window)),
      omp::map_to(d.pseudo_k0rs.data(), d.pseudo_k0rs.size() * sizeof(double)),
      omp::map_to(d.num_nucs.data(), d.num_nucs.size() * sizeof(int)),
      omp::map_to(d.mats.data(), d.mats.size() * sizeof(int)),
      omp::map_to(d.concs.data(), d.concs.size() * sizeof(double)),
      omp::map_tofrom(&h, sizeof(h)),
  };
  const Options opt = d.opt;
  omp::target_teams_distribute_parallel_for(c, opt.lookups,
                                            [&](omp::DeviceEnv& env) {
    const DeviceData dd{
        env.translate(d.poles.data()),    env.translate(d.windows.data()),
        env.translate(d.pseudo_k0rs.data()), env.translate(d.num_nucs.data()),
        env.translate(d.mats.data()),     env.translate(d.concs.data())};
    std::uint64_t* hash = env.translate(&h);
    return [=](std::int64_t i) {
      std::complex<double> scratch[4];  // globalized -> shared by the rt
      const int arg =
          lookup_one(static_cast<std::uint64_t>(i), dd.poles, dd.windows,
                     dd.k0rs, dd.num_nucs, dd.mats, dd.concs, opt, scratch);
      xor_into(hash, mix64(static_cast<std::uint64_t>(i) ^
                           (static_cast<std::uint64_t>(arg) + 1)));
    };
  });
  return h;
}

}  // namespace

RunResult run(Version v, simt::Device& dev, const Options& opt) {
  const SimulationData d = make_data(opt);
  const std::uint64_t ref = reference_hash(d);
  dev.clear_launch_log();
  RunResult r;
  r.app = "RSBench";
  switch (v) {
    case Version::kOmpx:
      r.checksum = run_ompx(d, dev);
      break;
    case Version::kOmp:
      r.checksum = run_omp(d, dev);
      break;
    case Version::kNative:
    case Version::kNativeVendor:
      r.checksum = run_kl(d, dev, v);
      break;
  }
  r.kernel_ms = modeled_kernel_ms(dev);
  r.valid = r.checksum == ref;
  return r;
}

}  // namespace apps::rsbench
