// RSBench (Tramm et al., EASC'14): the multipole-representation OpenMC
// proxy. Computes the same macroscopic cross-section lookups as
// XSBench but from windowed multipole data — heavy complex arithmetic
// per pole instead of large table gathers, i.e. the compute-bound
// sibling (paper §4.2.2). Event-based variant (`-m event`).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/harness.h"

namespace apps::rsbench {

struct Options {
  int n_nuclides = 32;
  int n_poles = 512;     ///< poles per nuclide
  int n_windows = 64;    ///< windows per nuclide (8 poles per window)
  int n_mats = 12;
  int max_nucs_per_mat = 12;
  std::int64_t lookups = 20000;
};

/// One windowed-multipole pole (the RSBench Pole struct).
struct Pole {
  std::complex<double> mp_ea;  ///< pole energy
  std::complex<double> mp_rt;  ///< total residue
  std::complex<double> mp_ra;  ///< absorption residue
  std::complex<double> mp_rf;  ///< fission residue
  short l_value;               ///< angular momentum index (0..3)
};

/// Per-window curve-fit background (RSBench Window struct).
struct Window {
  double t_fit, a_fit, f_fit;
  int start, end;  ///< pole index range
};

struct SimulationData {
  Options opt;
  std::vector<Pole> poles;      ///< [nuc][n_poles]
  std::vector<Window> windows;  ///< [nuc][n_windows]
  std::vector<double> pseudo_k0rs;  ///< [nuc][4] channel radii
  std::vector<int> num_nucs;    ///< [mat]
  std::vector<int> mats;        ///< [mat][max_nucs]
  std::vector<double> concs;    ///< [mat][max_nucs]
};

SimulationData make_data(const Options& opt);

/// One lookup: samples (mat, E), evaluates the windowed multipole
/// cross sections (sigT/sigA/sigF/sigE) over the material, returns the
/// argmax channel — the verification value. `sig_t_factors` is the
/// per-thread scratch of 4 complex values RSBench recomputes per
/// nuclide; callers pass their own storage so each program version can
/// place it where its compiler would (registers / local / shared).
int lookup_one(std::uint64_t seed, const Pole* poles, const Window* windows,
               const double* pseudo_k0rs, const int* num_nucs, const int* mats,
               const double* concs, const Options& opt,
               std::complex<double>* sig_t_factors);

std::uint64_t reference_hash(const SimulationData& d);

RunResult run(Version v, simt::Device& dev, const Options& opt = {});

}  // namespace apps::rsbench
