// SU3 data construction and the four program versions (Figure 8c/8i).
#include <cmath>

#include "apps/su3/su3.h"
#include "core/ompx.h"
#include "kl/kl.h"

namespace apps::su3 {

SimulationData make_data(const Options& opt) {
  SimulationData d;
  d.opt = opt;
  d.a.resize(static_cast<std::size_t>(opt.lattice_sites) * 4);
  d.b.resize(4);
  for (std::size_t i = 0; i < d.a.size(); ++i)
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        d.a[i].e[r][c] = {
            static_cast<float>(uniform01(mix64(i * 9 + r * 3 + c)) - 0.5),
            static_cast<float>(uniform01(mix64(i * 9 + r * 3 + c + 1)) - 0.5)};
  for (int i = 0; i < 4; ++i)
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c)
        d.b[i].e[r][c] = {
            static_cast<float>(0.1 + 0.01 * (i * 9 + r * 3 + c)),
            static_cast<float>(0.05 - 0.01 * (i + r + c))};
  return d;
}

std::uint64_t checksum_of(const std::vector<Matrix>& c) {
  double sum_re = 0.0, sum_im = 0.0;
  for (const Matrix& m : c)
    for (int r = 0; r < 3; ++r)
      for (int col = 0; col < 3; ++col) {
        sum_re += m.e[r][col].real();
        sum_im += m.e[r][col].imag();
      }
  // Quantize so float accumulation-order noise does not flip the check.
  return static_cast<std::uint64_t>(std::llround(sum_re * 1e3)) ^
         (static_cast<std::uint64_t>(std::llround(sum_im * 1e3)) << 1);
}

namespace {

/// One sweep on the host (reference and the functional ground truth).
void host_sweep(const SimulationData& d, std::vector<Matrix>& c) {
  for (int s = 0; s < d.opt.lattice_sites; ++s)
    for (int dir = 0; dir < 4; ++dir)
      c[static_cast<std::size_t>(s) * 4 + dir] =
          mult_su3_nn(d.a[static_cast<std::size_t>(s) * 4 + dir], d.b[dir]);
}

/// Roofline: per site 4 matrix products = 4*27 complex FMAs (~8 flops
/// each, fp32); traffic = 4 links in + 4 results out (b matrices are
/// cached). The kernel is strongly memory-bound, which is why the
/// paper's §4.2.3 codegen effects surface on the load/store path.
simt::KernelCost su3_cost() {
  simt::KernelCost c;
  c.flops_per_thread = 4 * 27 * 8.0;
  c.global_bytes_per_thread = 8.0 * sizeof(Matrix);
  return c;
}

/// §4.2.3 calibration: on sim-a100 the CUDA version uses 24 registers
/// vs ompx's 26, and its device binary is 3.9 KiB vs 29 KiB (functions
/// inlined but not eliminated) -> ompx trails cuda by ~9%. On sim-mi250
/// the hip version's generated addressing is markedly worse (the paper
/// reports ompx +28% but gives no further mechanism; the hip
/// mem_efficiency below is the calibrated stand-in).
simt::CompilerProfile profile_for(Version v, const simt::Device& dev) {
  const bool nv = dev.config().vendor == simt::Vendor::kNvidia;
  simt::CompilerProfile p;
  switch (v) {
    case Version::kOmpx:
      p.name = "ompx-proto";
      p.regs_per_thread = 26;   // paper §4.2.3
      p.binary_kib = 29.0;      // paper §4.2.3
      p.mem_efficiency = nv ? 0.93 : 1.0;
      break;
    case Version::kOmp:
      p.name = "llvm-clang-omp";
      p.regs_per_thread = 32;
      p.binary_kib = 34.0;
      p.mem_efficiency = nv ? 0.88 : 0.90;
      break;
    case Version::kNative:
      p.name = "llvm-clang";
      p.regs_per_thread = 24;   // paper §4.2.3
      p.binary_kib = 3.9;       // paper §4.2.3
      p.mem_efficiency = nv ? 1.0 : 0.78;
      break;
    case Version::kNativeVendor:
      p.name = "vendor";
      p.regs_per_thread = 24;
      p.binary_kib = 4.2;
      p.mem_efficiency = nv ? 0.99 : 0.80;
      break;
  }
  return p;
}

std::uint64_t run_kl(const SimulationData& d, simt::Device& dev, Version v) {
  using namespace kl;
  check(klSetDevice(dev.config().vendor == simt::Vendor::kNvidia ? 0 : 1),
        "klSetDevice");
  const int sites = d.opt.lattice_sites;
  Matrix *da = nullptr, *db = nullptr, *dc = nullptr;
  check(klMalloc(&da, d.a.size() * sizeof(Matrix)), "klMalloc da");
  check(klMalloc(&db, d.b.size() * sizeof(Matrix)), "klMalloc db");
  check(klMalloc(&dc, d.a.size() * sizeof(Matrix)), "klMalloc dc");
  check(klMemcpy(da, d.a.data(), d.a.size() * sizeof(Matrix),
                 klMemcpyHostToDevice),
        "klMemcpy da");
  check(klMemcpy(db, d.b.data(), d.b.size() * sizeof(Matrix),
                 klMemcpyHostToDevice),
        "klMemcpy db");

  KernelAttrs attrs;
  attrs.name = "su3_mult";
  attrs.mode = simt::ExecMode::kDirect;
  attrs.profile = profile_for(v, dev);
  attrs.cost = su3_cost();
  const unsigned bs = static_cast<unsigned>(d.opt.threads_per_block);
  for (int it = 0; it < d.opt.iterations; ++it) {
    check(
        launch({static_cast<unsigned>(simt::ceil_div(sites, bs))}, {bs}, 0,
           nullptr, attrs, [=] {
             const int s = static_cast<int>(global_thread_id_x());
             if (s >= sites) return;
             for (int dir = 0; dir < 4; ++dir)
               dc[static_cast<std::size_t>(s) * 4 + dir] = mult_su3_nn(
                   da[static_cast<std::size_t>(s) * 4 + dir], db[dir]);
           }),
        "su3_mult launch");
  }
  check(klDeviceSynchronize(), "klDeviceSynchronize");
  std::vector<Matrix> c(d.a.size());
  check(klMemcpy(c.data(), dc, c.size() * sizeof(Matrix),
                 klMemcpyDeviceToHost),
        "klMemcpy D2H");
  check(klFree(da), "klFree da");
  check(klFree(db), "klFree db");
  check(klFree(dc), "klFree dc");
  return checksum_of(c);
}

std::uint64_t run_ompx(const SimulationData& d, simt::Device& dev) {
  ompx::set_default_device(dev);
  const int sites = d.opt.lattice_sites;
  auto* da = ompx::malloc_n<Matrix>(d.a.size());
  auto* db = ompx::malloc_n<Matrix>(d.b.size());
  auto* dc = ompx::malloc_n<Matrix>(d.a.size());
  OMPX_REQUIRE(ompx_memcpy(da, d.a.data(), d.a.size() * sizeof(Matrix)));
  OMPX_REQUIRE(ompx_memcpy(db, d.b.data(), d.b.size() * sizeof(Matrix)));

  ompx::LaunchSpec spec;
  const unsigned bs = static_cast<unsigned>(d.opt.threads_per_block);
  spec.num_teams = {static_cast<unsigned>(simt::ceil_div(sites, bs))};
  spec.thread_limit = {bs};
  spec.mode = simt::ExecMode::kDirect;
  spec.name = "su3_mult";
  spec.profile = profile_for(Version::kOmpx, dev);
  spec.cost = su3_cost();
  spec.device = &dev;
  for (int it = 0; it < d.opt.iterations; ++it) {
    ompx::launch(spec, [=] {
      const int s = static_cast<int>(ompx::global_thread_id());
      if (s >= sites) return;
      for (int dir = 0; dir < 4; ++dir)
        dc[static_cast<std::size_t>(s) * 4 + dir] =
            mult_su3_nn(da[static_cast<std::size_t>(s) * 4 + dir], db[dir]);
    });
  }
  std::vector<Matrix> c(d.a.size());
  OMPX_REQUIRE(ompx_memcpy(c.data(), dc, c.size() * sizeof(Matrix)));
  ompx::free_on(dev, da);
  ompx::free_on(dev, db);
  ompx::free_on(dev, dc);
  return checksum_of(c);
}

}  // namespace

std::uint64_t reference_checksum(const SimulationData& d) {
  std::vector<Matrix> c(d.a.size());
  host_sweep(d, c);
  return checksum_of(c);
}

RunResult run(Version v, simt::Device& dev, const Options& opt) {
  const SimulationData d = make_data(opt);
  const std::uint64_t ref = reference_checksum(d);
  dev.clear_launch_log();
  RunResult r;
  r.app = "SU3";
  switch (v) {
    case Version::kOmpx:
      r.checksum = run_ompx(d, dev);
      break;
    case Version::kOmp: {
      std::vector<Matrix> c(d.a.size());
      {
        omp::TargetData data(
            dev, {omp::map_to(d.a.data(), d.a.size() * sizeof(Matrix)),
                  omp::map_to(d.b.data(), d.b.size() * sizeof(Matrix)),
                  omp::map_from(c.data(), c.size() * sizeof(Matrix))});
        omp::TargetClauses cl;
        cl.device = &dev;
        cl.thread_limit = d.opt.threads_per_block;
        cl.name = "su3_mult_omp";
        cl.profile = profile_for(Version::kOmp, dev);
        cl.cost = su3_cost();
        for (int it = 0; it < d.opt.iterations; ++it) {
          omp::target_teams_distribute_parallel_for(
              cl, d.opt.lattice_sites, [&](omp::DeviceEnv& env) {
                const Matrix* da = env.translate(d.a.data());
                const Matrix* db = env.translate(d.b.data());
                Matrix* dc = env.translate(c.data());
                return [=](std::int64_t s) {
                  for (int dir = 0; dir < 4; ++dir)
                    dc[static_cast<std::size_t>(s) * 4 + dir] = mult_su3_nn(
                        da[static_cast<std::size_t>(s) * 4 + dir], db[dir]);
                };
              });
        }
      }
      r.checksum = checksum_of(c);
      break;
    }
    case Version::kNative:
    case Version::kNativeVendor:
      r.checksum = run_kl(d, dev, v);
      break;
  }
  r.kernel_ms = modeled_kernel_ms(dev);
  r.valid = r.checksum == ref;
  return r;
}

}  // namespace apps::su3
