// SU3 (MILC lattice-QCD kernel, DeTar et al.): per lattice site,
// multiply the site's four SU(3) link matrices (3x3 complex) by four
// constant gauge matrices. The paper runs the HeCBench su3_bench port
// with `-i 1000 -l 32 -t 128 -v 3 -w 1` (paper §4.2.3).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/harness.h"

namespace apps::su3 {

using cmplx = std::complex<float>;

/// A 3x3 complex matrix (MILC su3_matrix).
struct Matrix {
  cmplx e[3][3];
};

struct Options {
  int lattice_sites = 32768;  ///< paper: 32^4 = 1,048,576 (scaled)
  int iterations = 10;        ///< paper: 1000 (scaled)
  int threads_per_block = 128;  ///< the -t 128 CLI argument
};

struct SimulationData {
  Options opt;
  std::vector<Matrix> a;  ///< [sites][4] link matrices
  std::vector<Matrix> b;  ///< [4] constant gauge matrices
};

SimulationData make_data(const Options& opt);

/// c = a * b for 3x3 complex matrices (the MILC mult_su3_nn kernel).
inline Matrix mult_su3_nn(const Matrix& a, const Matrix& b) {
  Matrix c;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      cmplx s{0.0f, 0.0f};
      for (int k = 0; k < 3; ++k) s += a.e[i][k] * b.e[k][j];
      c.e[i][j] = s;
    }
  return c;
}

/// The benchmark's verification value: quantized sum of all result
/// elements' real and imaginary parts after `iterations` sweeps.
std::uint64_t reference_checksum(const SimulationData& d);
std::uint64_t checksum_of(const std::vector<Matrix>& c);

RunResult run(Version v, simt::Device& dev, const Options& opt = {});

}  // namespace apps::su3
