// AIDW (Mei et al., arXiv:1601.05904): adaptive inverse distance
// weighting interpolation. Each GPU thread interpolates one query
// point over all data points; the block stages data-point tiles in
// shared memory (the pattern whose shared-variable demotion the paper
// discusses in §4.2.4). Paper CLI: `100 0 100`.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"

namespace apps::aidw {

struct Options {
  int n_data = 4096;     ///< scattered data points
  int n_query = 4096;    ///< interpolated points
  int tile = 256;        ///< shared-memory tile = block size
};

struct SimulationData {
  Options opt;
  std::vector<float> dx, dy, dz;  ///< data points + values
  std::vector<float> qx, qy;      ///< query points
  float avg_spacing = 0.0f;       ///< for the adaptive power parameter
};

SimulationData make_data(const Options& opt);

/// The adaptive power parameter: AIDW picks the IDW exponent from the
/// local density (here the normalized distance to the nearest staged
/// neighbour against the expected spacing).
float adaptive_alpha(float nearest_d2, float avg_spacing);

/// Host reference interpolation of one query point.
float interpolate_one_host(const SimulationData& d, int q);

/// Quantized sum of all interpolated values (the verification value).
std::uint64_t reference_checksum(const SimulationData& d);
std::uint64_t checksum_of(const std::vector<float>& out);

RunResult run(Version v, simt::Device& dev, const Options& opt = {});

}  // namespace apps::aidw
