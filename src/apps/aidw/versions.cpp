// AIDW data construction and the four program versions (Figure 8d/8j).
#include <algorithm>
#include <cmath>
#include <tuple>

#include "apps/aidw/aidw.h"
#include "core/ompx.h"
#include "kl/kl.h"

namespace apps::aidw {

SimulationData make_data(const Options& opt) {
  SimulationData d;
  d.opt = opt;
  d.dx.resize(opt.n_data);
  d.dy.resize(opt.n_data);
  d.dz.resize(opt.n_data);
  for (int i = 0; i < opt.n_data; ++i) {
    d.dx[i] = static_cast<float>(uniform01(mix64(i * 3 + 0)) * 100.0);
    d.dy[i] = static_cast<float>(uniform01(mix64(i * 3 + 1)) * 100.0);
    d.dz[i] = static_cast<float>(
        std::sin(d.dx[i] * 0.1) + std::cos(d.dy[i] * 0.1) +
        uniform01(mix64(i * 3 + 2)) * 0.01);
  }
  d.qx.resize(opt.n_query);
  d.qy.resize(opt.n_query);
  for (int i = 0; i < opt.n_query; ++i) {
    d.qx[i] = static_cast<float>(uniform01(mix64(0x9100 + i * 2)) * 100.0);
    d.qy[i] = static_cast<float>(uniform01(mix64(0x9200 + i * 2)) * 100.0);
  }
  d.avg_spacing =
      100.0f / std::sqrt(static_cast<float>(opt.n_data));  // expected spacing
  return d;
}

float adaptive_alpha(float nearest_d2, float avg_spacing) {
  // Normalized local density: ratio of nearest-neighbour distance to
  // the expected spacing; denser neighbourhoods get smaller exponents.
  const float r = std::sqrt(nearest_d2) / avg_spacing;
  if (r < 0.5f) return 1.0f;
  if (r > 2.0f) return 3.0f;
  return 1.0f + (r - 0.5f) * (2.0f / 1.5f);
}

namespace {

/// The interpolation loop body shared (in structure) by every version:
/// pass 1 finds the nearest staged neighbour (the adaptive part), pass
/// 2 accumulates IDW weights with the adapted exponent. Sequential
/// over data points in global order so host and device agree exactly.
template <typename TileLoader>
float interpolate_point(float x, float y, int n_data, float avg_spacing,
                        TileLoader&& point_at) {
  float nearest = 1e30f;
  for (int j = 0; j < n_data; ++j) {
    const auto [px, py, pz] = point_at(j);
    (void)pz;
    const float ddx = x - px, ddy = y - py;
    const float d2 = ddx * ddx + ddy * ddy;
    if (d2 < nearest) nearest = d2;
  }
  const float alpha = adaptive_alpha(nearest, avg_spacing);
  double num = 0.0, den = 0.0;
  for (int j = 0; j < n_data; ++j) {
    const auto [px, py, pz] = point_at(j);
    const float ddx = x - px, ddy = y - py;
    const float d2 = ddx * ddx + ddy * ddy + 1e-12f;
    const float w = 1.0f / std::pow(d2, alpha * 0.5f);
    num += static_cast<double>(w) * pz;
    den += w;
  }
  return static_cast<float>(num / den);
}

}  // namespace

float interpolate_one_host(const SimulationData& d, int q) {
  return interpolate_point(
      d.qx[q], d.qy[q], d.opt.n_data, d.avg_spacing, [&](int j) {
        return std::tuple<float, float, float>(d.dx[j], d.dy[j], d.dz[j]);
      });
}

std::uint64_t checksum_of(const std::vector<float>& out) {
  double sum = 0.0;
  for (float v : out) sum += v;
  return static_cast<std::uint64_t>(std::llround(sum * 1e2));
}

std::uint64_t reference_checksum(const SimulationData& d) {
  std::vector<float> out(d.opt.n_query);
  for (int q = 0; q < d.opt.n_query; ++q) out[q] = interpolate_one_host(d, q);
  return checksum_of(out);
}

namespace {

/// Roofline: two passes over all data points staged through shared
/// memory; per point ~14 fp32 ops (pass 2's pow dominates); global
/// traffic = each tile loaded once per block.
simt::KernelCost aidw_cost(const Options& opt) {
  simt::KernelCost c;
  c.flops_per_thread = 2.0 * opt.n_data * 14.0;
  c.global_bytes_per_thread = 2.0 * opt.n_data * 12.0 / opt.tile + 16.0;
  c.shared_bytes_per_thread = 2.0 * opt.n_data * 12.0;
  return c;
}

/// §4.2.4 calibration: on sim-a100 the clang CUDA version demotes the
/// shared staging variables (to registers/L1), cutting shared-memory
/// traffic — ~5% ahead of ompx; nvcc keeps them in shared and matches
/// ompx. On sim-mi250 every version aligns.
simt::CompilerProfile profile_for(Version v, const simt::Device& dev) {
  const bool nv = dev.config().vendor == simt::Vendor::kNvidia;
  simt::CompilerProfile p;
  switch (v) {
    case Version::kOmpx:
      p.name = "ompx-proto";
      p.regs_per_thread = 40;
      p.binary_kib = 16.0;
      break;
    case Version::kOmp:
      p.name = "llvm-clang-omp";
      p.regs_per_thread = 46;
      p.binary_kib = 20.0;
      p.compute_efficiency = 0.97;
      break;
    case Version::kNative:
      p.name = "llvm-clang";
      p.regs_per_thread = nv ? 48 : 40;  // demotion costs registers
      p.binary_kib = 12.0;
      break;
    case Version::kNativeVendor:
      p.name = "vendor";
      p.regs_per_thread = 40;
      p.binary_kib = 11.0;
      break;
  }
  return p;
}

simt::KernelCost cost_for(Version v, const Options& opt,
                          const simt::Device& dev) {
  simt::KernelCost c = aidw_cost(opt);
  if (v == Version::kNative && dev.config().vendor == simt::Vendor::kNvidia) {
    // clang-cuda shared-variable demotion (§4.2.4).
    c.shared_bytes_per_thread *= 0.45;
  }
  return c;
}

/// The tiled kernel body, written once against an abstract "this
/// thread" surface so the kl and ompx versions stay textually parallel.
template <typename Shared, typename Sync>
void kernel_body(int q_count, int n_data, int tile, float avg_spacing,
                 const float* dx, const float* dy, const float* dz,
                 const float* qx, const float* qy, float* out,
                 std::int64_t gid, int tid_in_block, Shared&& shared_alloc,
                 Sync&& sync) {
  float* sx = static_cast<float*>(shared_alloc(0));
  float* sy = static_cast<float*>(shared_alloc(1));
  float* sz = static_cast<float*>(shared_alloc(2));

  const bool active = gid < q_count;
  const float x = active ? qx[gid] : 0.0f;
  const float y = active ? qy[gid] : 0.0f;

  // Pass 1: nearest neighbour over staged tiles.
  float nearest = 1e30f;
  for (int base = 0; base < n_data; base += tile) {
    const int j = base + tid_in_block;
    if (j < n_data) {
      sx[tid_in_block] = dx[j];
      sy[tid_in_block] = dy[j];
      sz[tid_in_block] = dz[j];
    }
    sync();
    const int limit = std::min(tile, n_data - base);
    if (active) {
      for (int t = 0; t < limit; ++t) {
        const float ddx = x - sx[t], ddy = y - sy[t];
        const float d2 = ddx * ddx + ddy * ddy;
        if (d2 < nearest) nearest = d2;
      }
    }
    sync();
  }
  const float alpha = adaptive_alpha(nearest, avg_spacing);

  // Pass 2: adaptive IDW accumulation over staged tiles.
  double num = 0.0, den = 0.0;
  for (int base = 0; base < n_data; base += tile) {
    const int j = base + tid_in_block;
    if (j < n_data) {
      sx[tid_in_block] = dx[j];
      sy[tid_in_block] = dy[j];
      sz[tid_in_block] = dz[j];
    }
    sync();
    const int limit = std::min(tile, n_data - base);
    if (active) {
      for (int t = 0; t < limit; ++t) {
        const float ddx = x - sx[t], ddy = y - sy[t];
        const float d2 = ddx * ddx + ddy * ddy + 1e-12f;
        const float w = 1.0f / std::pow(d2, alpha * 0.5f);
        num += static_cast<double>(w) * sz[t];
        den += w;
      }
    }
    sync();
  }
  if (active) out[gid] = static_cast<float>(num / den);
}

std::vector<float> run_kl(const SimulationData& d, simt::Device& dev,
                          Version v) {
  using namespace kl;
  check(klSetDevice(dev.config().vendor == simt::Vendor::kNvidia ? 0 : 1),
        "klSetDevice");
  const Options& o = d.opt;
  float *dx = nullptr, *dy = nullptr, *dz = nullptr, *qx = nullptr,
        *qy = nullptr, *out = nullptr;
  check(klMalloc(&dx, o.n_data * sizeof(float)), "klMalloc dx");
  check(klMalloc(&dy, o.n_data * sizeof(float)), "klMalloc dy");
  check(klMalloc(&dz, o.n_data * sizeof(float)), "klMalloc dz");
  check(klMalloc(&qx, o.n_query * sizeof(float)), "klMalloc qx");
  check(klMalloc(&qy, o.n_query * sizeof(float)), "klMalloc qy");
  check(klMalloc(&out, o.n_query * sizeof(float)), "klMalloc out");
  check(klMemcpy(dx, d.dx.data(), o.n_data * sizeof(float),
                 klMemcpyHostToDevice),
        "klMemcpy dx");
  check(klMemcpy(dy, d.dy.data(), o.n_data * sizeof(float),
                 klMemcpyHostToDevice),
        "klMemcpy dy");
  check(klMemcpy(dz, d.dz.data(), o.n_data * sizeof(float),
                 klMemcpyHostToDevice),
        "klMemcpy dz");
  check(klMemcpy(qx, d.qx.data(), o.n_query * sizeof(float),
                 klMemcpyHostToDevice),
        "klMemcpy qx");
  check(klMemcpy(qy, d.qy.data(), o.n_query * sizeof(float),
                 klMemcpyHostToDevice),
        "klMemcpy qy");

  KernelAttrs attrs;
  attrs.name = "aidw";
  attrs.profile = profile_for(v, dev);
  attrs.cost = cost_for(v, o, dev);
  const int tile = o.tile;
  const float spacing = d.avg_spacing;
  const int nq = o.n_query, nd = o.n_data;
  check(
      launch({static_cast<unsigned>(simt::ceil_div(nq, tile))},
         {static_cast<unsigned>(tile)}, 0, nullptr, attrs, [=] {
           kernel_body(
               nq, nd, tile, spacing, dx, dy, dz, qx, qy, out,
               static_cast<std::int64_t>(global_thread_id_x()),
               static_cast<int>(threadIdx().x),
               [&](int) { return shared_array<float>(tile); },
               [] { syncthreads(); });
         }),
      "aidw launch");
  check(klDeviceSynchronize(), "klDeviceSynchronize");
  std::vector<float> result(o.n_query);
  check(klMemcpy(result.data(), out, o.n_query * sizeof(float),
           klMemcpyDeviceToHost),
        "klMemcpy D2H");
  for (void* p : {static_cast<void*>(dx), static_cast<void*>(dy),
                  static_cast<void*>(dz), static_cast<void*>(qx),
                  static_cast<void*>(qy), static_cast<void*>(out)})
    check(klFree(p), "klFree");
  return result;
}

std::vector<float> run_ompx(const SimulationData& d, simt::Device& dev) {
  ompx::set_default_device(dev);
  const Options& o = d.opt;
  auto* dx = ompx::malloc_n<float>(o.n_data);
  auto* dy = ompx::malloc_n<float>(o.n_data);
  auto* dz = ompx::malloc_n<float>(o.n_data);
  auto* qx = ompx::malloc_n<float>(o.n_query);
  auto* qy = ompx::malloc_n<float>(o.n_query);
  auto* out = ompx::malloc_n<float>(o.n_query);
  OMPX_REQUIRE(ompx_memcpy(dx, d.dx.data(), o.n_data * sizeof(float)));
  OMPX_REQUIRE(ompx_memcpy(dy, d.dy.data(), o.n_data * sizeof(float)));
  OMPX_REQUIRE(ompx_memcpy(dz, d.dz.data(), o.n_data * sizeof(float)));
  OMPX_REQUIRE(ompx_memcpy(qx, d.qx.data(), o.n_query * sizeof(float)));
  OMPX_REQUIRE(ompx_memcpy(qy, d.qy.data(), o.n_query * sizeof(float)));

  ompx::LaunchSpec spec;
  const int tile = o.tile;
  spec.num_teams = {static_cast<unsigned>(simt::ceil_div(o.n_query, tile))};
  spec.thread_limit = {static_cast<unsigned>(tile)};
  spec.name = "aidw";
  spec.profile = profile_for(Version::kOmpx, dev);
  spec.cost = cost_for(Version::kOmpx, o, dev);
  spec.device = &dev;
  const float spacing = d.avg_spacing;
  const int nq = o.n_query, nd = o.n_data;
  ompx::launch(spec, [=] {
    kernel_body(
        nq, nd, tile, spacing, dx, dy, dz, qx, qy, out,
        ompx::global_thread_id(), ompx_thread_id_x(),
        [&](int) { return ompx::groupprivate<float>(tile); },
        [] { ompx_sync_thread_block(); });
  });
  std::vector<float> result(o.n_query);
  OMPX_REQUIRE(ompx_memcpy(result.data(), out, o.n_query * sizeof(float)));
  for (void* p : {static_cast<void*>(dx), static_cast<void*>(dy),
                  static_cast<void*>(dz), static_cast<void*>(qx),
                  static_cast<void*>(qy), static_cast<void*>(out)})
    ompx::free_on(dev, p);
  return result;
}

std::vector<float> run_omp(const SimulationData& d, simt::Device& dev) {
  // The upstream OpenMP port flattens the tiling: a plain distribute
  // parallel for over query points reading data points from global
  // memory (no shared staging; the directive model has no portable
  // equivalent pre-groupprivate).
  const Options& o = d.opt;
  std::vector<float> result(o.n_query, 0.0f);
  omp::TargetClauses c;
  c.device = &dev;
  c.thread_limit = o.tile;
  c.name = "aidw_omp";
  c.profile = profile_for(Version::kOmp, dev);
  c.cost = cost_for(Version::kOmp, o, dev);
  // Without staging, the data-point traffic hits global memory but is
  // well cached across the block; charge it at tile-equivalent rate
  // plus a cache-miss premium.
  c.cost.shared_bytes_per_thread = 0.0;
  c.cost.global_bytes_per_thread = 2.0 * o.n_data * 12.0 / o.tile * 2.5 + 16.0;
  c.maps = {omp::map_to(d.dx.data(), o.n_data * sizeof(float)),
            omp::map_to(d.dy.data(), o.n_data * sizeof(float)),
            omp::map_to(d.dz.data(), o.n_data * sizeof(float)),
            omp::map_to(d.qx.data(), o.n_query * sizeof(float)),
            omp::map_to(d.qy.data(), o.n_query * sizeof(float)),
            omp::map_from(result.data(), o.n_query * sizeof(float))};
  const float spacing = d.avg_spacing;
  const int nd = o.n_data;
  omp::target_teams_distribute_parallel_for(c, o.n_query,
                                            [&](omp::DeviceEnv& env) {
    const float* dx = env.translate(d.dx.data());
    const float* dy = env.translate(d.dy.data());
    const float* dz = env.translate(d.dz.data());
    const float* qx = env.translate(d.qx.data());
    const float* qy = env.translate(d.qy.data());
    float* out = env.translate(result.data());
    return [=](std::int64_t q) {
      out[q] = interpolate_point(
          qx[q], qy[q], nd, spacing, [&](int j) {
            return std::tuple<float, float, float>(dx[j], dy[j], dz[j]);
          });
    };
  });
  return result;
}

}  // namespace

RunResult run(Version v, simt::Device& dev, const Options& opt) {
  const SimulationData d = make_data(opt);
  const std::uint64_t ref = reference_checksum(d);
  dev.clear_launch_log();
  RunResult r;
  r.app = "AIDW";
  std::vector<float> out;
  switch (v) {
    case Version::kOmpx:
      out = run_ompx(d, dev);
      break;
    case Version::kOmp:
      out = run_omp(d, dev);
      break;
    case Version::kNative:
    case Version::kNativeVendor:
      out = run_kl(d, dev, v);
      break;
  }
  r.kernel_ms = modeled_kernel_ms(dev);
  r.checksum = checksum_of(out);
  r.valid = r.checksum == ref;
  return r;
}

}  // namespace apps::aidw
