#include "apps/harness.h"

#include <chrono>

#include "apps/adam/adam.h"
#include "apps/aidw/aidw.h"
#include "apps/rsbench/rsbench.h"
#include "apps/stencil1d/stencil1d.h"
#include "apps/su3/su3.h"
#include "apps/xsbench/xsbench.h"

namespace apps {

const char* version_name(Version v) {
  switch (v) {
    case Version::kOmpx: return "ompx";
    case Version::kOmp: return "omp";
    case Version::kNative: return "native";
    case Version::kNativeVendor: return "native-vendor";
  }
  return "?";
}

std::string bar_label(Version v, const simt::Device& dev) {
  const bool nv = dev.config().vendor == simt::Vendor::kNvidia;
  switch (v) {
    case Version::kOmpx: return "ompx";
    case Version::kOmp: return "omp";
    case Version::kNative: return nv ? "cuda" : "hip";
    case Version::kNativeVendor: return nv ? "cuda-nvcc" : "hip-hipcc";
  }
  return "?";
}

double modeled_kernel_ms(simt::Device& dev) {
  return dev.modeled_kernel_ms_total();
}

RunResult run_cell(const AppDesc& app, Version v, simt::Device& dev) {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r = app.run(v, dev);
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  r.version = bar_label(v, dev);
  r.device = dev.config().name;
  return r;
}

const std::vector<AppDesc>& registry() {
  static const std::vector<AppDesc> apps = {
      {"XSBench", "Monte Carlo neutron transport algorithm", "-m event",
       "nuclides=32 gridpoints=1024 lookups=50000",
       [](Version v, simt::Device& dev) { return xsbench::run(v, dev); }},
      {"RSBench", "Monte Carlo neutron transport algorithm", "-m event",
       "nuclides=32 poles=512 windows=64 lookups=20000",
       [](Version v, simt::Device& dev) { return rsbench::run(v, dev); }},
      {"SU3", "Lattice QCD SU3 matrix multiply",
       "-i 1000 -l 32 -t 128 -v 3 -w 1", "sites=32768 iterations=10 block=128",
       [](Version v, simt::Device& dev) { return su3::run(v, dev); }},
      {"AIDW", "Adaptive inverse distance weighting", "100 0 100",
       "data=4096 queries=4096 tile=256",
       [](Version v, simt::Device& dev) { return aidw::run(v, dev); }},
      {"Adam", "Adaptive moment estimation", "10000 200 100",
       "n=10000 steps=50",
       [](Version v, simt::Device& dev) { return adam::run(v, dev); }},
      {"Stencil 1D", "1D version of stencil computation", "134217728 1000",
       "n=2^20 radius=7 iterations=8",
       [](Version v, simt::Device& dev) { return stencil1d::run(v, dev); }},
  };
  return apps;
}

}  // namespace apps
