// Stencil-1D data construction and the four program versions
// (Figure 8f/8l).
#include <algorithm>
#include <cmath>

#include "apps/stencil1d/stencil1d.h"
#include "core/ompx.h"
#include "kl/kl.h"

namespace apps::stencil1d {

SimulationData make_data(const Options& opt) {
  SimulationData d;
  d.opt = opt;
  d.input.resize(opt.n + 2 * kRadius);
  for (std::size_t i = 0; i < d.input.size(); ++i)
    d.input[i] = static_cast<int>(mix64(i) % 97);
  return d;
}

std::uint64_t checksum_of(const std::vector<int>& out) {
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    h += static_cast<std::uint64_t>(out[i]) * (i % 1009 + 1);
  return h;
}

std::uint64_t reference_checksum(const SimulationData& d) {
  std::vector<int> out(d.opt.n);
  for (std::int64_t i = 0; i < d.opt.n; ++i) {
    int acc = 0;
    for (int o = -kRadius; o <= kRadius; ++o)
      acc += d.input[i + kRadius + o];
    out[i] = acc;
  }
  return checksum_of(out);
}

namespace {

/// Roofline (tiled versions): each element is read once into shared
/// and summed from there; the window reads hit shared memory.
simt::KernelCost tiled_cost() {
  simt::KernelCost c;
  c.flops_per_thread = 2.0 * kRadius + 1.0;
  c.global_bytes_per_thread = 8.5;  // in + out + halo amortized
  c.shared_bytes_per_thread = (2.0 * kRadius + 2.0) * 4.0;
  return c;
}

simt::CompilerProfile profile_for(Version v, const simt::Device& dev) {
  const bool nv = dev.config().vendor == simt::Vendor::kNvidia;
  simt::CompilerProfile p;
  switch (v) {
    case Version::kOmpx:
      // §4.2.6: ompx outperforms the native versions on both systems;
      // the tutorial CUDA kernel's generated addressing is slightly
      // worse (calibrated).
      p.name = "ompx-proto";
      p.regs_per_thread = 24;
      p.binary_kib = 10.0;
      break;
    case Version::kOmp:
      p.name = "llvm-clang-omp";
      p.regs_per_thread = 42;
      p.binary_kib = 30.0;
      break;
    case Version::kNative:
      p.name = "llvm-clang";
      p.regs_per_thread = 24;
      p.binary_kib = 6.0;
      p.mem_efficiency = nv ? 0.94 : 0.92;
      break;
    case Version::kNativeVendor:
      p.name = "vendor";
      p.regs_per_thread = 22;
      p.binary_kib = 5.0;
      p.mem_efficiency = nv ? 0.92 : 0.94;
      break;
  }
  return p;
}

std::vector<int> run_kl(const SimulationData& d, simt::Device& dev,
                        Version v) {
  using namespace kl;
  check(klSetDevice(dev.config().vendor == simt::Vendor::kNvidia ? 0 : 1),
        "klSetDevice");
  const std::int64_t n = d.opt.n;
  int *din = nullptr, *dout = nullptr;
  check(klMalloc(&din, d.input.size() * sizeof(int)), "klMalloc din");
  check(klMalloc(&dout, n * sizeof(int)), "klMalloc dout");
  check(klMemcpy(din, d.input.data(), d.input.size() * sizeof(int),
                 klMemcpyHostToDevice),
        "klMemcpy H2D");

  KernelAttrs attrs;
  attrs.name = "stencil1d";
  attrs.profile = profile_for(v, dev);
  attrs.cost = tiled_cost();
  for (int it = 0; it < d.opt.iterations; ++it) {
    check(
        launch({static_cast<unsigned>(simt::ceil_div(n, kBlock))}, {kBlock}, 0,
           nullptr, attrs, [=] {
             int* tile = shared_array<int>(kBlock + 2 * kRadius);
             const std::int64_t g =
                 static_cast<std::int64_t>(global_thread_id_x());
             const int l = static_cast<int>(threadIdx().x) + kRadius;
             const std::int64_t src = std::min(g, n - 1) + kRadius;
             tile[l] = din[src];
             if (threadIdx().x < kRadius) {
               tile[l - kRadius] = din[src - kRadius];
               tile[l + kBlock] =
                   din[std::min<std::int64_t>(src + kBlock, n + 2 * kRadius - 1)];
             }
             syncthreads();
             if (g < n) {
               int acc = 0;
               for (int o = -kRadius; o <= kRadius; ++o) acc += tile[l + o];
               dout[g] = acc;
             }
           }),
        "stencil1d launch");
  }
  check(klDeviceSynchronize(), "klDeviceSynchronize");
  std::vector<int> out(n);
  check(klMemcpy(out.data(), dout, n * sizeof(int), klMemcpyDeviceToHost),
        "klMemcpy D2H");
  check(klFree(din), "klFree din");
  check(klFree(dout), "klFree dout");
  return out;
}

std::vector<int> run_ompx(const SimulationData& d, simt::Device& dev) {
  ompx::set_default_device(dev);
  const std::int64_t n = d.opt.n;
  auto* din = ompx::malloc_n<int>(d.input.size());
  auto* dout = ompx::malloc_n<int>(n);
  OMPX_REQUIRE(ompx_memcpy(din, d.input.data(), d.input.size() * sizeof(int)));

  ompx::LaunchSpec spec;
  spec.num_teams = {static_cast<unsigned>(simt::ceil_div(n, kBlock))};
  spec.thread_limit = {kBlock};
  spec.name = "stencil1d";
  spec.profile = profile_for(Version::kOmpx, dev);
  spec.cost = tiled_cost();
  spec.device = &dev;
  for (int it = 0; it < d.opt.iterations; ++it) {
    ompx::launch(spec, [=] {
      int* tile = ompx::groupprivate<int>(kBlock + 2 * kRadius);
      const std::int64_t g = ompx::global_thread_id();
      const int l = ompx_thread_id_x() + kRadius;
      const std::int64_t src = std::min(g, n - 1) + kRadius;
      tile[l] = din[src];
      if (ompx_thread_id_x() < kRadius) {
        tile[l - kRadius] = din[src - kRadius];
        tile[l + kBlock] =
            din[std::min<std::int64_t>(src + kBlock, n + 2 * kRadius - 1)];
      }
      ompx_sync_thread_block();
      if (g < n) {
        int acc = 0;
        for (int o = -kRadius; o <= kRadius; ++o) acc += tile[l + o];
        dout[g] = acc;
      }
    });
  }
  std::vector<int> out(n);
  OMPX_REQUIRE(ompx_memcpy(out.data(), dout, n * sizeof(int)));
  ompx::free_on(dev, din);
  ompx::free_on(dev, dout);
  return out;
}

std::vector<int> run_omp(const SimulationData& d, simt::Device& dev) {
  // The classic port mirrors the CUDA structure — `target teams` with
  // an inner `parallel` staging the tile — which LLVM cannot SPMD-ize:
  // the kernel runs in generic mode behind the unoptimized state
  // machine, and the tile array is globalized to the device heap
  // (§4.2.6, Huber et al. CGO'22).
  const std::int64_t n = d.opt.n;
  std::vector<int> out(n, 0);
  omp::TargetData data(
      dev, {omp::map_to(d.input.data(), d.input.size() * sizeof(int)),
            omp::map_from(out.data(), n * sizeof(int))});
  const std::int64_t teams = simt::ceil_div(n, kBlock);
  omp::TargetClauses c;
  c.device = &dev;
  c.num_teams = static_cast<int>(teams);
  c.thread_limit = kBlock;
  c.name = "stencil1d_omp";
  c.profile = profile_for(Version::kOmp, dev);
  c.cost = tiled_cost();
  // The window reads hit the globalized (device-heap) tile, not shared.
  c.cost.shared_bytes_per_thread = 0.0;
  c.cost.global_bytes_per_thread += (2.0 * kRadius + 2.0) * 4.0;
  for (int it = 0; it < d.opt.iterations; ++it) {
    omp::target_teams_generic(c, [&](omp::DeviceEnv& env) {
      const int* din = env.translate(d.input.data());
      int* dout = env.translate(out.data());
      return [=](omp::TeamCtx& team) {
        // Globalized tile: shared-memory placement is not expressible
        // pre-groupprivate, so the runtime moves it to the heap.
        int* tile =
            static_cast<int*>(team.globalized((kBlock + 2 * kRadius) *
                                              sizeof(int)));
        const std::int64_t base =
            static_cast<std::int64_t>(team.team()) * kBlock;
        team.parallel(0, [=](int tid) {
          const std::int64_t g = base + tid;
          const int l = tid + kRadius;
          const std::int64_t src = std::min(g, n - 1) + kRadius;
          tile[l] = din[src];
          if (tid < kRadius) {
            tile[l - kRadius] = din[src - kRadius];
            tile[l + kBlock] =
                din[std::min<std::int64_t>(src + kBlock, n + 2 * kRadius - 1)];
          }
        });
        team.parallel(0, [=](int tid) {
          const std::int64_t g = base + tid;
          if (g < n) {
            const int l = tid + kRadius;
            int acc = 0;
            for (int o = -kRadius; o <= kRadius; ++o) acc += tile[l + o];
            dout[g] = acc;
          }
        });
      };
    });
  }
  omp::target_update_from(dev, out.data(), n * sizeof(int));
  return out;
}

}  // namespace

RunResult run(Version v, simt::Device& dev, const Options& opt) {
  const SimulationData d = make_data(opt);
  const std::uint64_t ref = reference_checksum(d);
  dev.clear_launch_log();
  RunResult r;
  r.app = "Stencil1D";
  std::vector<int> out;
  switch (v) {
    case Version::kOmpx:
      out = run_ompx(d, dev);
      break;
    case Version::kOmp:
      out = run_omp(d, dev);
      break;
    case Version::kNative:
    case Version::kNativeVendor:
      out = run_kl(d, dev, v);
      break;
  }
  r.kernel_ms = modeled_kernel_ms(dev);
  r.checksum = checksum_of(out);
  r.valid = r.checksum == ref;
  return r;
}

}  // namespace apps::stencil1d
