// Stencil-1D: the classic shared-memory 1-D stencil from the CUDA
// tutorials (paper §4.2.6): each block stages a tile plus halo in
// shared memory, synchronizes, and sums a (2*RADIUS+1)-point window.
// The omp version cannot avoid the generic-mode state machine and is
// dramatically slower. Paper CLI: `134217728 1000` (scaled here).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"

namespace apps::stencil1d {

inline constexpr int kRadius = 7;
inline constexpr int kBlock = 256;

struct Options {
  std::int64_t n = 1 << 20;  ///< elements (paper: 2^27, scaled)
  int iterations = 8;        ///< repetitions (paper: 1000, scaled)
};

struct SimulationData {
  Options opt;
  std::vector<int> input;  ///< n + 2*kRadius with halo padding
};

SimulationData make_data(const Options& opt);

std::uint64_t reference_checksum(const SimulationData& d);
std::uint64_t checksum_of(const std::vector<int>& out);

RunResult run(Version v, simt::Device& dev, const Options& opt = {});

}  // namespace apps::stencil1d
