#include "apps/cli.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apps::cli {

namespace {

std::int64_t to_i64(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + ": bad integer '" + s +
                                "'");
  }
}

/// Flag-style lookup: returns the value after `flag`, or empty.
const std::string* flag_value(const Args& args, const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i)
    if (args[i] == flag) return &args[i + 1];
  return nullptr;
}

std::int64_t scale_down(std::int64_t v, std::int64_t factor,
                        std::int64_t floor_v) {
  return std::max<std::int64_t>(v / factor, floor_v);
}

}  // namespace

xsbench::Options parse_xsbench(const Args& args, bool scaled) {
  xsbench::Options o;
  if (const auto* m = flag_value(args, "-m"); m != nullptr && *m != "event")
    throw std::invalid_argument(
        "xsbench: only the event-based method (-m event) is ported");
  // XSBench "small" preset: 68 nuclides, 11303 gridpoints, 17M lookups.
  std::int64_t lookups = 17000000;
  int gridpoints = 11303;
  if (const auto* s = flag_value(args, "-s"); s != nullptr && *s == "large") {
    gridpoints = 11303;
    lookups = 17000000;  // HeCBench default lookups regardless of size
  }
  if (const auto* l = flag_value(args, "-l")) lookups = to_i64(*l, "xsbench -l");
  if (const auto* g = flag_value(args, "-g"))
    gridpoints = static_cast<int>(to_i64(*g, "xsbench -g"));
  if (scaled) {
    lookups = scale_down(lookups, 340, 1000);   // 17M -> 50k
    gridpoints = static_cast<int>(scale_down(gridpoints, 11, 64));  // ~1k
  }
  o.lookups = lookups;
  o.n_gridpoints = gridpoints;
  return o;
}

rsbench::Options parse_rsbench(const Args& args, bool scaled) {
  rsbench::Options o;
  if (const auto* m = flag_value(args, "-m"); m != nullptr && *m != "event")
    throw std::invalid_argument(
        "rsbench: only the event-based method (-m event) is ported");
  std::int64_t lookups = 10000000;  // RSBench default
  std::int64_t poles = 1000, windows = 100;
  if (const auto* l = flag_value(args, "-l")) lookups = to_i64(*l, "rsbench -l");
  if (const auto* p = flag_value(args, "-p")) poles = to_i64(*p, "rsbench -p");
  if (const auto* w = flag_value(args, "-w")) windows = to_i64(*w, "rsbench -w");
  if (scaled) {
    lookups = scale_down(lookups, 500, 1000);  // 10M -> 20k
    poles = scale_down(poles, 2, 64);
    windows = scale_down(windows, 2, 8);
  }
  // The port keeps poles a multiple of windows (whole windows).
  poles = std::max<std::int64_t>(windows, poles / windows * windows);
  o.lookups = lookups;
  o.n_poles = static_cast<int>(poles);
  o.n_windows = static_cast<int>(windows);
  return o;
}

su3::Options parse_su3(const Args& args, bool scaled) {
  su3::Options o;
  std::int64_t iters = 1000, ldim = 32, threads = 128;
  if (const auto* i = flag_value(args, "-i")) iters = to_i64(*i, "su3 -i");
  if (const auto* l = flag_value(args, "-l")) ldim = to_i64(*l, "su3 -l");
  if (const auto* t = flag_value(args, "-t")) threads = to_i64(*t, "su3 -t");
  // -v (verbosity) and -w (warmups) accepted and ignored, as upstream.
  std::int64_t sites = ldim * ldim * ldim * ldim;
  if (scaled) {
    iters = scale_down(iters, 100, 2);      // 1000 -> 10
    sites = scale_down(sites, 32, 4096);    // 32^4 -> 32768
  }
  if (sites > (1ll << 31))
    throw std::invalid_argument("su3: lattice too large");
  o.lattice_sites = static_cast<int>(sites);
  o.iterations = static_cast<int>(iters);
  o.threads_per_block = static_cast<int>(std::clamp<std::int64_t>(threads, 32, 1024));
  return o;
}

aidw::Options parse_aidw(const Args& args, bool scaled) {
  if (args.size() < 3)
    throw std::invalid_argument("aidw: expected <dnum_k> <check> <inum_k>");
  aidw::Options o;
  std::int64_t dnum = to_i64(args[0], "aidw dnum") * 1000;
  std::int64_t inum = to_i64(args[2], "aidw inum") * 1000;
  if (scaled) {
    dnum = scale_down(dnum, 24, 512);  // 100k -> ~4k
    inum = scale_down(inum, 24, 512);
  }
  o.n_data = static_cast<int>(dnum);
  o.n_query = static_cast<int>(inum);
  return o;
}

adam::Options parse_adam(const Args& args, bool scaled) {
  if (args.size() < 3)
    throw std::invalid_argument("adam: expected <n> <timesteps> <repeat>");
  adam::Options o;
  o.n = static_cast<int>(to_i64(args[0], "adam n"));
  std::int64_t steps = to_i64(args[1], "adam timesteps");
  const std::int64_t repeat = to_i64(args[2], "adam repeat");
  // The benchmark repeats the whole optimization `repeat` times for
  // timing stability; the kernel-time shape is per optimization run.
  (void)repeat;
  if (scaled) steps = scale_down(steps, 4, 10);  // 200 -> 50
  o.steps = static_cast<int>(steps);
  return o;
}

stencil1d::Options parse_stencil1d(const Args& args, bool scaled) {
  if (args.size() < 2)
    throw std::invalid_argument("stencil1d: expected <n> <iterations>");
  stencil1d::Options o;
  std::int64_t n = to_i64(args[0], "stencil n");
  std::int64_t iters = to_i64(args[1], "stencil iterations");
  if (scaled) {
    n = scale_down(n, 128, 1 << 14);       // 2^27 -> 2^20
    iters = scale_down(iters, 125, 2);     // 1000 -> 8
  }
  o.n = n;
  o.iterations = static_cast<int>(iters);
  return o;
}

}  // namespace apps::cli
