// Adam (Kingma & Ba, ICLR'15): the adaptive-moment-estimation
// optimizer update, the HeCBench `adam` kernel — one fused elementwise
// update of (param, m, v) from gradients, launched once per timestep.
// Small n makes it latency-bound, which is why the LLVM 32-thread
// launch issue costs the omp version 8x (paper §4.2.5).
// Paper CLI: `10000 200 100`.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/harness.h"

namespace apps::adam {

struct Options {
  int n = 10000;        ///< parameters (paper CLI arg 1)
  int steps = 50;       ///< timesteps (paper: 200, scaled)
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

struct SimulationData {
  Options opt;
  std::vector<float> params0;  ///< initial parameters
  std::vector<float> grads;    ///< per-step synthetic gradient basis
};

SimulationData make_data(const Options& opt);

/// One fused Adam update for element i at timestep t (1-based),
/// identical across host reference and every device version.
void adam_update(int i, int t, const Options& o, const float* g, float* p,
                 float* m, float* v);

/// Host reference: full optimization, returns quantized parameter sum.
std::uint64_t reference_checksum(const SimulationData& d);
std::uint64_t checksum_of(const std::vector<float>& params);

RunResult run(Version v, simt::Device& dev, const Options& opt = {});

}  // namespace apps::adam
